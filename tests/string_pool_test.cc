// Unit tests for the interned-string pool: hash-consing identity, empty-id
// semantics, string-like ergonomics of InternedString, and the arena's
// oversized-block path (regression: a >64KB string must not hijack the bump
// block and let later small interns corrupt it).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/tordir/string_pool.h"

namespace tordir {
namespace {

TEST(StringPoolTest, HashConsingGivesEqualIdsForEqualStrings) {
  InternedString a = "string-pool-test-value";
  InternedString b = std::string("string-pool-test-value");
  InternedString c = std::string_view("string-pool-test-value");
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(b.id(), c.id());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.id(), InternedString("string-pool-test-other").id());
}

TEST(StringPoolTest, DefaultIsEmptyStringWithIdZero) {
  InternedString empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.id(), 0u);
  EXPECT_EQ(empty.view(), "");
  EXPECT_EQ(InternedString("").id(), 0u);
  EXPECT_EQ(empty, InternedString(std::string()));
}

TEST(StringPoolTest, ComparesAgainstPlainStrings) {
  InternedString s = "Tor 0.4.8.10";
  EXPECT_EQ(s, "Tor 0.4.8.10");
  EXPECT_EQ(s, std::string("Tor 0.4.8.10"));
  EXPECT_EQ(s, std::string_view("Tor 0.4.8.10"));
  EXPECT_NE(s, "Tor 0.4.8.9");
  EXPECT_EQ(s.size(), 12u);
  EXPECT_FALSE(s.empty());
}

// Regression: an oversized (> one arena block) string gets a dedicated block
// that must not become the bump block — earlier and later small interns keep
// their bytes, and the oversized entry stays intact while small strings fill
// the pool around it.
TEST(StringPoolTest, OversizedStringsDoNotCorruptTheArena) {
  const std::string before = "small-before-oversized-entry";
  InternedString small_before = before;

  const std::string big(70 * 1024, 'B');
  InternedString big_interned = big;
  EXPECT_EQ(big_interned.view().size(), big.size());

  std::vector<std::pair<InternedString, std::string>> smalls;
  for (int i = 0; i < 256; ++i) {
    std::string value = "small-after-oversized-" + std::to_string(i);
    smalls.emplace_back(InternedString(value), value);
  }

  EXPECT_EQ(small_before.view(), before);
  EXPECT_EQ(big_interned.view(), big) << "oversized entry was overwritten";
  for (const auto& [interned, value] : smalls) {
    EXPECT_EQ(interned.view(), value);
  }
  // Dedup still works across the oversized insertion (index keys intact).
  EXPECT_EQ(InternedString(big).id(), big_interned.id());
  EXPECT_EQ(InternedString(before).id(), small_before.id());
}

TEST(StringPoolTest, ManyDistinctStringsSpanChunksAndStayStable) {
  // More than one 4096-entry chunk worth of fresh strings.
  std::vector<uint32_t> ids;
  ids.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(InternedString("chunk-span-" + std::to_string(i)).id());
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(StringPool::Global().View(ids[i]), "chunk-span-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace tordir
