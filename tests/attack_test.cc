// Tests for the attack layer (src/attack): window composition on one target,
// windows outliving the run horizon, per-target residual bandwidth, and the
// deterministic victim sequences of the rolling and adaptive schedules.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "src/attack/ddos.h"
#include "src/attack/schedule.h"
#include "src/metrics/experiment.h"
#include "src/scenario/runner.h"
#include "src/sim/actor.h"

namespace torattack {
namespace {

using torbase::Minutes;
using torbase::NodeId;
using torbase::Seconds;

torsim::NetworkConfig NetConfig(uint32_t n) {
  torsim::NetworkConfig config;
  config.node_count = n;
  config.default_bandwidth_bps = torsim::MegabitsPerSecond(250);
  config.default_latency = torbase::Millis(10);
  return config;
}

TEST(AttackWindowTest, OverlappingWindowsComposeLastWriterWins) {
  torsim::Harness harness(NetConfig(3));
  AttackWindow first;
  first.targets = {0};
  first.start = 0;
  first.end = Seconds(300);
  first.available_bps = 0.5e6;
  AttackWindow second;
  second.targets = {0};
  second.start = Seconds(200);
  second.end = Seconds(400);
  second.available_bps = 1e6;
  ApplyAttack(harness.net(), first);
  ApplyAttack(harness.net(), second);

  const auto& schedule = harness.net().egress(0);
  EXPECT_DOUBLE_EQ(schedule.RateAt(Seconds(100)), 0.5e6);
  // The overlap [200, 300) belongs to the later window.
  EXPECT_DOUBLE_EQ(schedule.RateAt(Seconds(250)), 1e6);
  EXPECT_DOUBLE_EQ(schedule.RateAt(Seconds(350)), 1e6);
  EXPECT_DOUBLE_EQ(schedule.RateAt(Seconds(450)), 250e6);
  // The untouched direction of another node keeps the base rate.
  EXPECT_DOUBLE_EQ(harness.net().egress(1).RateAt(0), 250e6);
}

TEST(AttackWindowTest, PerTargetResidualBandwidth) {
  torsim::Harness harness(NetConfig(3));
  AttackWindow window;
  window.targets = {0, 1, 2};
  window.start = 0;
  window.end = Seconds(60);
  window.available_bps = 0.5e6;
  window.available_bps_by_target[1] = 2e6;  // weaker flood against node 1
  ApplyAttack(harness.net(), window);
  EXPECT_DOUBLE_EQ(harness.net().ingress(0).RateAt(Seconds(30)), 0.5e6);
  EXPECT_DOUBLE_EQ(harness.net().ingress(1).RateAt(Seconds(30)), 2e6);
  EXPECT_DOUBLE_EQ(harness.net().ingress(2).RateAt(Seconds(30)), 0.5e6);
}

TEST(AttackWindowTest, HistoryReportsPerTargetResidualRates) {
  torsim::Harness harness(NetConfig(3));
  AttackWindow window;
  window.targets = {0, 1, 2};
  window.start = 0;
  window.end = Seconds(60);
  window.available_bps = 0.5e6;
  window.available_bps_by_target[1] = 2e6;
  WindowedAttack attack({window});
  AttackContext context;
  context.authority_count = 3;
  context.horizon = Seconds(60);
  attack.Install(harness, context);

  // Two samples: the default-rate victims and the overridden one.
  ASSERT_EQ(attack.history().size(), 2u);
  EXPECT_EQ(attack.history()[0].available_bps, 0.5e6);
  EXPECT_EQ(attack.history()[0].victims, (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(attack.history()[1].available_bps, 2e6);
  EXPECT_EQ(attack.history()[1].victims, (std::vector<NodeId>{1}));
}

TEST(AttackWindowTest, BandwidthRequirementHonoursStandingAttacks) {
  // base.attacks already knocks out authorities 5-8; the probe clamp on 0-3
  // must join those attacks, not replace them. With the standing outage the
  // run only succeeds when the four probed victims can move their votes, so
  // the search cannot return lo (which it would if base.attacks were dropped:
  // 5 healthy authorities are a self-sufficient majority).
  tormetrics::ExperimentConfig base;
  base.protocol = "current";
  base.relay_count = 800;
  base.run_limit = Minutes(15);
  AttackWindow standing;
  standing.targets = {5, 6, 7, 8};
  standing.start = 0;
  standing.end = base.run_limit;
  standing.available_bps = 0.0;
  base.attacks.push_back(standing);
  const double required =
      tormetrics::FindBandwidthRequirement(base, /*victim_count=*/4, 0.2e6, 25e6, /*probes=*/2);
  EXPECT_GT(required, 0.2e6);
  EXPECT_LE(required, 25e6);
}

TEST(AttackWindowTest, WindowEndingAfterRunLimitStillFailsTheRun) {
  // A clamp that outlives the simulation horizon must behave exactly like a
  // whole-run clamp — no crash, failed run, NaN metrics.
  tormetrics::ExperimentConfig config;
  config.protocol = "current";
  config.relay_count = 600;
  config.run_limit = Minutes(15);
  AttackWindow window;
  window.targets = FirstTargets(5);
  window.start = 0;
  window.end = torbase::Hours(100);  // far beyond run_limit
  config.attacks.push_back(window);
  const auto result = tormetrics::RunExperiment(config);
  EXPECT_FALSE(result.succeeded);
  EXPECT_TRUE(std::isnan(result.latency_seconds));
  EXPECT_TRUE(std::isnan(result.finish_time_seconds));
}

TEST(RollingAttackTest, LinearRotationIsDeterministic) {
  RollingAttackConfig config;
  config.victim_count = 3;
  config.period = Seconds(10);
  config.start = 0;
  config.end = Seconds(50);
  RollingAttack attack(config);

  // Victim arithmetic: epoch k starts at authority (k * stride) % n.
  EXPECT_EQ(attack.VictimsOf(0, 9), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(attack.VictimsOf(1, 9), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(attack.VictimsOf(8, 9), (std::vector<NodeId>{8, 0, 1}));

  torsim::Harness harness(NetConfig(9));
  AttackContext context;
  context.authority_count = 9;
  context.horizon = Seconds(50);
  attack.Install(harness, context);

  ASSERT_EQ(attack.history().size(), 5u);
  for (size_t epoch = 0; epoch < attack.history().size(); ++epoch) {
    EXPECT_EQ(attack.history()[epoch].at, epoch * Seconds(10));
    EXPECT_EQ(attack.history()[epoch].victims, attack.VictimsOf(epoch, 9));
  }
  // The clamps are really on the NICs: node 3 is only attacked in epochs 1-3.
  EXPECT_DOUBLE_EQ(harness.net().egress(3).RateAt(Seconds(5)), 250e6);
  EXPECT_DOUBLE_EQ(harness.net().egress(3).RateAt(Seconds(15)), kUnderAttackBps);
}

TEST(RollingAttackTest, SeededRotationIsDeterministicAndScrambled) {
  RollingAttackConfig config;
  config.victim_count = 2;
  config.period = Seconds(10);
  config.end = Seconds(100);
  config.seed = 7;
  RollingAttack a(config);
  RollingAttack b(config);
  std::set<NodeId> heads;
  for (uint64_t epoch = 0; epoch < 10; ++epoch) {
    EXPECT_EQ(a.VictimsOf(epoch, 9), b.VictimsOf(epoch, 9)) << epoch;
    heads.insert(a.VictimsOf(epoch, 9)[0]);
  }
  // Scrambled: the 10 epochs do not all start at the same authority.
  EXPECT_GT(heads.size(), 2u);
}

TEST(AdaptiveLeaderAttackTest, FallsBackToRotationWithoutALeaderProbe) {
  AdaptiveLeaderConfig config;
  config.victim_count = 2;
  config.period = Seconds(10);
  config.start = 0;
  config.end = Seconds(40);
  AdaptiveLeaderAttack attack(config);

  torsim::Harness harness(NetConfig(5));
  AttackContext context;
  context.authority_count = 5;
  context.horizon = Seconds(40);
  attack.Install(harness, context);
  harness.sim().RunUntil(Seconds(40));

  ASSERT_EQ(attack.history().size(), 4u);
  for (size_t epoch = 0; epoch < 4; ++epoch) {
    const NodeId head = static_cast<NodeId>(epoch % 5);
    EXPECT_EQ(attack.history()[epoch].victims,
              (std::vector<NodeId>{head, static_cast<NodeId>((head + 1) % 5)}));
  }
}

TEST(AdaptiveLeaderAttackTest, ChasesTheReportedLeader) {
  AdaptiveLeaderConfig config;
  config.victim_count = 1;
  config.period = Seconds(10);
  config.end = Seconds(30);
  AdaptiveLeaderAttack attack(config);

  torsim::Harness harness(NetConfig(4));
  // A scripted "agreement": the leader advances every probe.
  NodeId next_leader = 2;
  AttackContext context;
  context.authority_count = 4;
  context.horizon = Seconds(30);
  context.current_leader = [&next_leader]() -> std::optional<NodeId> {
    const NodeId leader = next_leader;
    next_leader = static_cast<NodeId>((next_leader + 1) % 4);
    return leader;
  };
  attack.Install(harness, context);
  harness.sim().RunUntil(Seconds(30));

  ASSERT_EQ(attack.history().size(), 3u);
  EXPECT_EQ(attack.history()[0].victims, std::vector<NodeId>{2});
  EXPECT_EQ(attack.history()[1].victims, std::vector<NodeId>{3});
  EXPECT_EQ(attack.history()[2].victims, std::vector<NodeId>{0});
  // Each epoch's clamp landed on the chased node.
  EXPECT_DOUBLE_EQ(harness.net().egress(2).RateAt(Seconds(5)), kUnderAttackBps);
  EXPECT_DOUBLE_EQ(harness.net().egress(3).RateAt(Seconds(15)), kUnderAttackBps);
  EXPECT_DOUBLE_EQ(harness.net().egress(0).RateAt(Seconds(25)), kUnderAttackBps);
  EXPECT_DOUBLE_EQ(harness.net().egress(1).RateAt(Seconds(25)), 250e6);
}

TEST(AttackScheduleTest, HistoryClearsBetweenRuns) {
  RollingAttackConfig config;
  config.victim_count = 1;
  config.period = Seconds(10);
  config.end = Seconds(20);
  RollingAttack attack(config);
  AttackContext context;
  context.authority_count = 3;
  context.horizon = Seconds(20);
  {
    torsim::Harness harness(NetConfig(3));
    attack.Install(harness, context);
  }
  EXPECT_EQ(attack.history().size(), 2u);
  attack.ClearHistory();
  EXPECT_TRUE(attack.history().empty());
  {
    torsim::Harness harness(NetConfig(3));
    attack.Install(harness, context);
  }
  EXPECT_EQ(attack.history().size(), 2u);
}

}  // namespace
}  // namespace torattack
