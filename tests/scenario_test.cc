// Tests for the scenario engine (src/scenario) and the protocol registry
// (src/protocols/directory_protocol.h): registry enumeration, declarative
// rolling/adaptive attack scenarios, workload caching across sweep cells,
// heterogeneous per-authority bandwidth, and churn events.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>

#include "src/attack/schedule.h"
#include "src/protocols/directory_protocol.h"
#include "src/scenario/runner.h"
#include "src/scenario/spec_digest.h"

namespace torscenario {
namespace {

using torbase::Minutes;
using torbase::Seconds;

ScenarioSpec SmallSpec(const std::string& protocol) {
  ScenarioSpec spec;
  spec.name = "test";
  spec.protocol = protocol;
  spec.relay_count = 200;
  spec.seed = 1;
  return spec;
}

TEST(ProtocolRegistryTest, EnumeratesBuiltinsAndRunsEachUnattacked) {
  const auto names = torproto::RegisteredProtocolNames();
  ASSERT_GE(names.size(), 3u);
  for (const char* expected : {"current", "icps", "synchronous"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end()) << expected;
  }

  // One small healthy scenario per registered protocol: all must succeed.
  ScenarioRunner runner;
  for (const auto& name : names) {
    const auto result = runner.Run(SmallSpec(name));
    EXPECT_TRUE(result.succeeded) << name;
    EXPECT_EQ(result.valid_count, 9u) << name;
    EXPECT_GT(result.consensus_relays, 190u) << name;
  }
  // All protocols shared one generated workload.
  EXPECT_EQ(runner.workload_cache_misses(), 1u);
  EXPECT_EQ(runner.workload_cache_hits(), names.size() - 1);
}

TEST(ProtocolRegistryTest, LookupAndDisplayNames) {
  EXPECT_EQ(torproto::GetProtocol("icps").display_name(), "Ours");
  EXPECT_EQ(torproto::GetProtocol("current").display_name(), "Current");
  EXPECT_EQ(torproto::FindProtocol("no-such-protocol"), nullptr);
}

TEST(ScenarioRunnerTest, WorkloadCacheKeysOnRelaysSeedAndAuthorityCount) {
  ScenarioRunner runner;
  ScenarioSpec spec = SmallSpec("current");
  runner.Run(spec);
  EXPECT_EQ(runner.workload_cache_misses(), 1u);

  spec.bandwidth_bps = 50e6;  // bandwidth is not part of the workload key
  runner.Run(spec);
  EXPECT_EQ(runner.workload_cache_misses(), 1u);
  EXPECT_EQ(runner.workload_cache_hits(), 1u);

  spec.seed = 2;  // a new seed is a new workload
  runner.Run(spec);
  EXPECT_EQ(runner.workload_cache_misses(), 2u);

  spec.relay_count = 150;  // and so is a new relay count
  runner.Run(spec);
  EXPECT_EQ(runner.workload_cache_misses(), 3u);
  EXPECT_EQ(runner.workload_cache_size(), 3u);
}

TEST(ScenarioRunnerTest, CachedWorkloadRunsMatchFreshRuns) {
  // Reusing the cached votes must not change results: actors get copies.
  ScenarioSpec spec = SmallSpec("icps");
  ScenarioRunner shared;
  const auto first = shared.Run(spec);
  const auto second = shared.Run(spec);
  ScenarioRunner fresh;
  const auto baseline = fresh.Run(spec);
  EXPECT_EQ(first.succeeded, baseline.succeeded);
  EXPECT_DOUBLE_EQ(first.latency_seconds, baseline.latency_seconds);
  EXPECT_EQ(first.total_bytes_sent, baseline.total_bytes_sent);
  EXPECT_DOUBLE_EQ(second.latency_seconds, baseline.latency_seconds);
  EXPECT_EQ(second.total_bytes_sent, baseline.total_bytes_sent);
}

TEST(ScenarioRunnerTest, ResultMemoServesRenamedRepeatsAndKeysOnDeepFields) {
  ScenarioRunner runner;
  ASSERT_TRUE(runner.memoize());  // on by default

  ScenarioSpec spec = SmallSpec("icps");
  spec.byzantine.behaviors[0] = torproto::ByzantineBehavior::kEquivocate;
  const ScenarioResult first = runner.Run(spec);
  EXPECT_EQ(runner.result_memo_misses(), 1u);
  EXPECT_EQ(runner.result_memo_hits(), 0u);

  // Renaming is the documented digest exemption: the repeat is the same
  // simulation, served from the memo bit-identically.
  ScenarioSpec renamed = spec;
  renamed.name = "same-but-renamed";
  EXPECT_EQ(SpecDigest(renamed), SpecDigest(spec));
  const ScenarioResult repeat = runner.Run(renamed);
  EXPECT_EQ(runner.result_memo_hits(), 1u);
  EXPECT_EQ(runner.result_memo_misses(), 1u);
  EXPECT_TRUE(BitIdentical(first, repeat));

  // Flipping one deep field — a single byzantine behavior — must be a new
  // digest and a fresh simulation with its own result, never a silent false
  // hit on the kEquivocate entry.
  ScenarioSpec deep = spec;
  deep.byzantine.behaviors[0] = torproto::ByzantineBehavior::kReplay;
  EXPECT_NE(SpecDigest(deep), SpecDigest(spec));
  const ScenarioResult different = runner.Run(deep);
  EXPECT_EQ(runner.result_memo_misses(), 2u);
  EXPECT_EQ(runner.result_memo_size(), 2u);
  EXPECT_FALSE(BitIdentical(first, different));

  // Memo off bypasses the table in both directions: no probe, no publication,
  // and the recomputed result still matches the memoized one exactly.
  runner.set_memoize(false);
  const ScenarioResult unmemoized = runner.Run(spec);
  EXPECT_EQ(runner.result_memo_hits(), 1u);
  EXPECT_EQ(runner.result_memo_misses(), 2u);
  EXPECT_TRUE(BitIdentical(first, unmemoized));

  runner.ClearResultMemo();
  EXPECT_EQ(runner.result_memo_size(), 0u);
}

TEST(ScenarioTest, RollingAttackScenarioIsDeterministic) {
  torattack::RollingAttackConfig attack_config;
  attack_config.victim_count = 5;
  attack_config.period = Minutes(1);
  attack_config.start = 0;
  attack_config.end = Minutes(5);

  ScenarioSpec spec = SmallSpec("current");
  spec.relay_count = 400;
  spec.attack = std::make_shared<torattack::RollingAttack>(attack_config);
  spec.horizon = torbase::Hours(1);

  ScenarioRunner runner;
  const auto first = runner.Run(spec);
  const auto second = runner.Run(spec);

  // Same victim sequence, same outcome, run after run.
  ASSERT_EQ(first.attack_history.size(), 5u);
  EXPECT_EQ(first.attack_history, second.attack_history);
  EXPECT_EQ(first.succeeded, second.succeeded);
  EXPECT_EQ(first.total_bytes_sent, second.total_bytes_sent);
  // Epoch k floods authorities k..k+4 (mod 9).
  EXPECT_EQ(first.attack_history[2].victims,
            (std::vector<torbase::NodeId>{2, 3, 4, 5, 6}));
}

TEST(ScenarioTest, AdaptiveLeaderScenarioIsDeterministicAndRecordsVictims) {
  torattack::AdaptiveLeaderConfig attack_config;
  attack_config.victim_count = 1;
  attack_config.period = Seconds(30);
  attack_config.start = 0;
  attack_config.end = Minutes(10);

  ScenarioSpec spec = SmallSpec("icps");
  spec.relay_count = 300;
  spec.attack = std::make_shared<torattack::AdaptiveLeaderAttack>(attack_config);
  spec.horizon = torbase::Hours(1);

  ScenarioRunner runner;
  const auto first = runner.Run(spec);
  const auto second = runner.Run(spec);

  EXPECT_FALSE(first.attack_history.empty());
  EXPECT_EQ(first.attack_history, second.attack_history);
  EXPECT_EQ(first.succeeded, second.succeeded);
  EXPECT_EQ(first.total_bytes_sent, second.total_bytes_sent);
  for (const auto& sample : first.attack_history) {
    ASSERT_EQ(sample.victims.size(), 1u);
    EXPECT_LT(sample.victims[0], spec.authority_count);
  }
  // Flooding one authority at a time never blocks ICPS (f = 2): it finishes.
  EXPECT_TRUE(first.succeeded);
}

TEST(ScenarioTest, HeterogeneousBandwidthStarvesOnlyTheSlowAuthorities) {
  // 5 of 9 authorities on links far below the Figure-7 requirement: the
  // current protocol fails, even though the network-wide default is ample.
  ScenarioSpec spec = SmallSpec("current");
  spec.relay_count = 800;
  spec.horizon = Minutes(15);
  for (torbase::NodeId node = 0; node < 5; ++node) {
    spec.bandwidth_by_authority[node] = torattack::kUnderAttackBps;
  }
  ScenarioRunner runner;
  EXPECT_FALSE(runner.Run(spec).succeeded);

  // Fast links for the same 5: healthy again.
  for (torbase::NodeId node = 0; node < 5; ++node) {
    spec.bandwidth_by_authority[node] = 250e6;
  }
  EXPECT_TRUE(runner.Run(spec).succeeded);
}

TEST(ScenarioTest, ChurnCrashMinorityIsToleratedMajorityIsNot) {
  ScenarioRunner runner;

  // ICPS tolerates f = 2 crashes: one authority dead from the start is
  // survivable — the other 8 proceed with n - f documents after Δ.
  ScenarioSpec icps = SmallSpec("icps");
  icps.churn.push_back({/*node=*/8, /*at=*/0, ChurnEvent::Kind::kCrash});
  const auto tolerated = runner.Run(icps);
  EXPECT_TRUE(tolerated.succeeded);
  EXPECT_EQ(tolerated.valid_count, 8u);  // the dead authority cannot finish

  // The current protocol cannot compute a consensus when a majority crashes
  // before the vote exchange.
  ScenarioSpec current = SmallSpec("current");
  current.relay_count = 400;
  current.horizon = Minutes(15);
  for (torbase::NodeId node = 0; node < 5; ++node) {
    current.churn.push_back({node, Seconds(1), ChurnEvent::Kind::kCrash});
  }
  EXPECT_FALSE(runner.Run(current).succeeded);
}

TEST(ScenarioTest, CrashedNodeStaysDownWhenAnAttackWindowEnds) {
  // A crash mid attack-window must not be undone by the window's restore
  // point: the node is dead, not merely clamped.
  torattack::AttackWindow window;
  window.targets = {8};
  window.start = 0;
  window.end = Minutes(5);
  window.available_bps = torattack::kUnderAttackBps;

  ScenarioSpec spec = SmallSpec("icps");
  spec.attack = std::make_shared<torattack::WindowedAttack>(
      std::vector<torattack::AttackWindow>{window});
  spec.churn.push_back({/*node=*/8, /*at=*/Seconds(5), ChurnEvent::Kind::kCrash});

  ScenarioRunner runner;
  const auto result = runner.Run(spec);
  // The other 8 finish; the crashed authority never does, even though its
  // attack window expired at t=5min.
  EXPECT_TRUE(result.succeeded);
  EXPECT_EQ(result.valid_count, 8u);
}

TEST(ScenarioTest, ChurnRecoverRestoresTheConfiguredRate) {
  // Crash-then-recover is exactly the Figure 11 shape: ICPS finishes shortly
  // after the crashed majority returns.
  ScenarioSpec spec = SmallSpec("icps");
  spec.relay_count = 300;
  for (torbase::NodeId node = 0; node < 5; ++node) {
    spec.churn.push_back({node, 0, ChurnEvent::Kind::kCrash});
    spec.churn.push_back({node, Minutes(5), ChurnEvent::Kind::kRecover});
  }
  ScenarioRunner runner;
  const auto result = runner.Run(spec);
  EXPECT_TRUE(result.succeeded);
  EXPECT_GT(result.finish_time_seconds, torbase::ToSeconds(Minutes(5)));
}

TEST(ScenarioTest, UndeliverableDropsAreSurfacedAndAlerted) {
  // A node that is down for the whole run silently eats every message sent to
  // it; those drops must show up in the result and as a dropped-messages
  // health alert. A clean run drops nothing.
  ScenarioSpec spec = SmallSpec("current");
  spec.churn.push_back({0, 0, ChurnEvent::Kind::kCrash});
  ScenarioRunner runner;
  const auto result = runner.Run(spec);
  EXPECT_GT(result.undeliverable_messages, 0u);
  bool dropped = false;
  for (const auto& alert : result.health_alerts) {
    dropped |= alert.kind == tordir::HealthAlertKind::kDroppedMessages;
  }
  EXPECT_TRUE(dropped);

  const auto clean = runner.Run(SmallSpec("current"));
  EXPECT_EQ(clean.undeliverable_messages, 0u);
  for (const auto& alert : clean.health_alerts) {
    EXPECT_NE(alert.kind, tordir::HealthAlertKind::kDroppedMessages);
  }
}

TEST(ScenarioTest, SweepRunsEveryCellInOrder) {
  std::vector<ScenarioSpec> specs;
  for (const char* protocol : {"current", "icps"}) {
    for (double bw_mbps : {50.0, 10.0}) {
      ScenarioSpec spec = SmallSpec(protocol);
      spec.bandwidth_bps = bw_mbps * 1e6;
      specs.push_back(std::move(spec));
    }
  }
  ScenarioRunner runner;
  const auto results = runner.Sweep(specs);
  ASSERT_EQ(results.size(), specs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].succeeded) << i;
  }
  EXPECT_EQ(runner.workload_cache_misses(), 1u);
  EXPECT_EQ(runner.workload_cache_hits(), specs.size() - 1);
}

// Per-field diagnostics for a BitIdentical failure; the authoritative
// comparison (covering every ScenarioResult field) is BitIdentical itself.
void ExpectSameResult(const ScenarioResult& a, const ScenarioResult& b, size_t cell) {
  EXPECT_TRUE(BitIdentical(a, b)) << "cell " << cell;
  EXPECT_EQ(a.succeeded, b.succeeded) << "cell " << cell;
  EXPECT_EQ(a.valid_count, b.valid_count) << "cell " << cell;
  EXPECT_EQ(a.consensus_relays, b.consensus_relays) << "cell " << cell;
  EXPECT_EQ(a.total_bytes_sent, b.total_bytes_sent) << "cell " << cell;
  EXPECT_EQ(a.bytes_by_kind, b.bytes_by_kind) << "cell " << cell;
  EXPECT_EQ(a.attack_history, b.attack_history) << "cell " << cell;
  if (a.succeeded && b.succeeded) {
    EXPECT_EQ(a.latency_seconds, b.latency_seconds) << "cell " << cell;
    EXPECT_EQ(a.finish_time_seconds, b.finish_time_seconds) << "cell " << cell;
  }
}

TEST(ScenarioTest, ParallelSweepIsBitIdenticalToSerial) {
  // A 12-cell grid mixing the hard cases for parallelism: a shared rolling
  // attack-schedule object across cells (must be cloned per cell), churn, and
  // failed cells (NaN latencies). Every thread count must reproduce the serial
  // results exactly, including the workload-cache telemetry.
  torattack::RollingAttackConfig attack_config;
  attack_config.victim_count = 5;
  attack_config.period = Minutes(1);
  attack_config.start = 0;
  attack_config.end = Minutes(4);
  const auto rolling = std::make_shared<torattack::RollingAttack>(attack_config);

  // Diff-enabled cells need a previous-round document; one healthy prep run
  // per protocol supplies it (results retain the published consensus whenever
  // the client plane is on).
  std::map<std::string, std::shared_ptr<const tordir::ConsensusDocument>> baselines;
  {
    ScenarioRunner prep;
    for (const char* protocol : {"current", "icps"}) {
      ScenarioSpec spec = SmallSpec(protocol);
      spec.client_load.client_count = 1;
      baselines[protocol] = prep.Run(spec).consensus_document;
      ASSERT_NE(baselines[protocol], nullptr) << protocol;
    }
  }

  std::vector<ScenarioSpec> specs;
  for (const char* protocol : {"current", "icps"}) {
    for (size_t relays : {200, 300}) {
      for (int variant = 0; variant < 3; ++variant) {
        ScenarioSpec spec = SmallSpec(protocol);
        spec.relay_count = relays;
        spec.horizon = torbase::Hours(1);
        if (variant != 1) {
          spec.attack = rolling;  // deliberately shared across cells
        }
        if (variant != 0) {
          spec.churn.push_back({/*node=*/7, /*at=*/Seconds(30), ChurnEvent::Kind::kCrash});
          spec.churn.push_back({/*node=*/7, /*at=*/Minutes(6), ChurnEvent::Kind::kRecover});
        }
        if (variant == 1) {
          // Byzantine cells exercise the fault-injection fields (alerts with
          // evidence timestamps, detection metrics) under the identity
          // contract too.
          spec.byzantine.behaviors[4] = torproto::ByzantineBehavior::kEquivocate;
          spec.byzantine.behaviors[5] = torproto::ByzantineBehavior::kMalformedWire;
        }
        if (variant == 2) {
          // Client load exercises the consumption-plane fields (availability
          // metrics, publish metadata, consensus size) under the identity
          // contract too — with diff serving on, so the diff codec's size
          // accounting and the byte-denominated capacity split are covered.
          spec.client_load.client_count = 2'000'000;
          spec.client_load.diff_capable_fraction = 0.8;
          spec.previous_consensus = baselines[protocol];
        }
        specs.push_back(std::move(spec));
      }
    }
  }
  ASSERT_GE(specs.size(), 12u);

  ScenarioRunner serial_runner;
  const auto serial = serial_runner.Sweep(specs);

  for (unsigned threads : {1u, 2u, 8u}) {
    ScenarioRunner parallel_runner;
    const auto parallel = parallel_runner.Sweep(specs, SweepOptions{threads});
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (size_t i = 0; i < serial.size(); ++i) {
      ExpectSameResult(serial[i], parallel[i], i);
    }
    EXPECT_EQ(parallel_runner.workload_cache_misses(), serial_runner.workload_cache_misses())
        << threads << " threads";
    EXPECT_EQ(parallel_runner.workload_cache_hits(), serial_runner.workload_cache_hits())
        << threads << " threads";
  }
}

// --- consumption plane -------------------------------------------------------

ScenarioSpec Fig1StyleSpec(bool attacked) {
  ScenarioSpec spec = SmallSpec("current");
  spec.relay_count = 800;
  spec.horizon = torbase::Hours(1);
  spec.client_load.client_count = 1'000'000;
  if (attacked) {
    torattack::AttackWindow window;
    window.targets = torattack::FirstTargets(5);
    window.start = 0;
    window.end = Minutes(5);
    window.available_bps = torattack::kUnderAttackBps;
    spec.attack = std::make_shared<torattack::WindowedAttack>(
        std::vector<torattack::AttackWindow>{window});
  }
  return spec;
}

TEST(ClientPlaneTest, UnattackedRunServesMillionClientsFresh) {
  ScenarioRunner runner;
  const auto result = runner.Run(Fig1StyleSpec(/*attacked=*/false));
  ASSERT_TRUE(result.succeeded);

  // Publish metadata flows out of the protocol probe: published inside the
  // vote-lead window, with the generator's 1 h / 3 h validity shape.
  EXPECT_GT(result.consensus_published_seconds, 0.0);
  EXPECT_LT(result.consensus_published_seconds, 600.0);
  EXPECT_EQ(result.consensus_fresh_until, result.consensus_valid_after + 3600);
  EXPECT_EQ(result.consensus_valid_until, result.consensus_valid_after + 3 * 3600);
  EXPECT_GT(result.consensus_size_bytes, 0u);

  // A million clients, all served fresh: the new document lands before the
  // prior one goes stale.
  const auto& clients = result.client_availability;
  ASSERT_TRUE(clients.enabled);
  EXPECT_DOUBLE_EQ(clients.total_fetches, 1e6);
  EXPECT_GT(clients.fresh_fraction, 0.99);
  EXPECT_EQ(clients.outage_seconds, 0.0);
  EXPECT_EQ(clients.hard_down_seconds, 0.0);
  EXPECT_TRUE(std::isnan(clients.time_to_first_stale_seconds));
}

TEST(ClientPlaneTest, AttackedRunReportsClientVisibleOutage) {
  // The paper's title claim, client-side: a five-minute flood on 5 of 9
  // authorities breaks the round, so once the prior consensus goes stale at
  // the vote lead there is nothing fresh for the rest of the period.
  ScenarioRunner runner;
  const auto result = runner.Run(Fig1StyleSpec(/*attacked=*/true));
  ASSERT_FALSE(result.succeeded);
  EXPECT_TRUE(std::isnan(result.consensus_published_seconds));

  const auto& clients = result.client_availability;
  ASSERT_TRUE(clients.enabled);
  EXPECT_DOUBLE_EQ(clients.time_to_first_stale_seconds, 600.0);
  EXPECT_DOUBLE_EQ(clients.outage_start_seconds, 600.0);
  EXPECT_DOUBLE_EQ(clients.outage_seconds, 3000.0);
  EXPECT_NEAR(clients.fresh_fraction, 600.0 / 3600.0, 1e-9);
  // Still inside the prior document's validity: degraded, not yet halted.
  EXPECT_EQ(clients.hard_down_seconds, 0.0);
}

TEST(ClientPlaneTest, NoClientLoadLeavesTheResultInert) {
  ScenarioSpec spec = SmallSpec("current");
  ScenarioRunner runner;
  const auto result = runner.Run(spec);
  EXPECT_FALSE(result.client_availability.enabled);
  EXPECT_EQ(result.consensus_size_bytes, 0u);  // serialization skipped
  // Publish metadata is probed regardless (it is cheap and deterministic).
  EXPECT_FALSE(std::isnan(result.consensus_published_seconds));
}

// --- consensus-health monitor ------------------------------------------------

TEST(HealthMonitorWiringTest, AttackedRunRaisesTheDdosSignature) {
  ScenarioRunner runner;
  const auto result = runner.Run(Fig1StyleSpec(/*attacked=*/true));

  bool missing_votes = false;
  bool no_consensus = false;
  for (const auto& alert : result.health_alerts) {
    if (alert.kind == tordir::HealthAlertKind::kMissingVotes) {
      missing_votes = true;
      // The five flooded authorities are implicated (their votes moved
      // nowhere); observers behind clamped links may implicate more.
      for (torbase::NodeId victim : torattack::FirstTargets(5)) {
        EXPECT_NE(std::find(alert.authorities.begin(), alert.authorities.end(), victim),
                  alert.authorities.end())
            << victim;
      }
    }
    if (alert.kind == tordir::HealthAlertKind::kNoConsensus) {
      no_consensus = true;
    }
  }
  EXPECT_TRUE(missing_votes);
  EXPECT_TRUE(no_consensus);
}

TEST(HealthMonitorWiringTest, HealthyRunsRaiseNoAlertsAcrossProtocols) {
  ScenarioRunner runner;
  for (const char* protocol : {"current", "synchronous", "icps"}) {
    const auto result = runner.Run(SmallSpec(protocol));
    EXPECT_TRUE(result.health_alerts.empty()) << protocol;
  }
}

TEST(HealthMonitorWiringTest, MonitoringCanBeDisabled) {
  ScenarioSpec spec = Fig1StyleSpec(/*attacked=*/true);
  spec.monitor_health = false;
  ScenarioRunner runner;
  EXPECT_TRUE(runner.Run(spec).health_alerts.empty());
}

// --- byzantine fault injection -----------------------------------------------

bool AlertImplicates(const tordir::HealthAlert& alert, torbase::NodeId authority) {
  return std::find(alert.authorities.begin(), alert.authorities.end(), authority) !=
         alert.authorities.end();
}

TEST(ByzantineScenarioTest, EachBehaviorIsDetectedUnderEveryProtocol) {
  // One faulty authority per run (well below every protocol's tolerance):
  // the run must stay live, the monitor must implicate exactly that
  // authority, and the behavior's signature alert kind must be present with
  // a timestamped first-evidence instant.
  struct Case {
    torproto::ByzantineBehavior behavior;
    tordir::HealthAlertKind expected;
  };
  const Case cases[] = {
      {torproto::ByzantineBehavior::kEquivocate, tordir::HealthAlertKind::kVoteEquivocation},
      {torproto::ByzantineBehavior::kReplay, tordir::HealthAlertKind::kReplayedVote},
      {torproto::ByzantineBehavior::kMalformedWire, tordir::HealthAlertKind::kMalformedVote},
      {torproto::ByzantineBehavior::kInflateBandwidth,
       tordir::HealthAlertKind::kBandwidthInflation},
  };
  ScenarioRunner runner;
  for (const char* protocol : {"current", "synchronous", "icps"}) {
    for (const Case& c : cases) {
      ScenarioSpec spec = SmallSpec(protocol);
      spec.horizon = torbase::Hours(1);
      spec.byzantine.behaviors[4] = c.behavior;
      const auto result = runner.Run(spec);
      const std::string label = std::string(protocol) + " / " +
                                torproto::ByzantineBehaviorName(c.behavior);
      EXPECT_TRUE(result.succeeded) << label;
      EXPECT_EQ(result.byzantine_count, 1u) << label;
      EXPECT_EQ(result.faults_detected, 1u) << label;
      EXPECT_FALSE(std::isnan(result.fault_detection_latency_seconds)) << label;
      bool signature_alert = false;
      for (const auto& alert : result.health_alerts) {
        if (alert.kind == c.expected && AlertImplicates(alert, 4)) {
          signature_alert = true;
          EXPECT_GE(alert.first_evidence_seconds, 0.0) << label;
        }
        // No honest authority is ever implicated by a sender-attributed
        // alert (fork/no-consensus alerts describe the outcome, not blame).
        if (alert.kind == c.expected) {
          for (const torbase::NodeId authority : alert.authorities) {
            EXPECT_EQ(authority, 4u) << label;
          }
        }
      }
      EXPECT_TRUE(signature_alert) << label;
    }
  }
}

TEST(ByzantineScenarioTest, BehaviorsOnOutOfRangeIdsNeverInstantiate) {
  ScenarioSpec spec = SmallSpec("current");
  spec.byzantine.behaviors[40] = torproto::ByzantineBehavior::kEquivocate;
  ScenarioRunner runner;
  const auto result = runner.Run(spec);
  EXPECT_TRUE(result.succeeded);
  EXPECT_EQ(result.byzantine_count, 0u);
  EXPECT_EQ(result.faults_detected, 0u);
  EXPECT_TRUE(result.health_alerts.empty());
}

TEST(ByzantineScenarioTest, IcpsStaysLiveBelowOneThirdFaulty) {
  // f = 2 of 9: two simultaneously faulty authorities with different
  // behaviors. ICPS must still assemble a valid consensus on every honest
  // authority, and both faults must be flagged.
  ScenarioSpec spec = SmallSpec("icps");
  spec.horizon = torbase::Hours(1);
  spec.byzantine.behaviors[1] = torproto::ByzantineBehavior::kEquivocate;
  spec.byzantine.behaviors[4] = torproto::ByzantineBehavior::kReplay;
  ScenarioRunner runner;
  const auto result = runner.Run(spec);
  EXPECT_TRUE(result.succeeded);
  EXPECT_GE(result.valid_count, 7u);  // all honest authorities finish
  EXPECT_EQ(result.byzantine_count, 2u);
  EXPECT_EQ(result.faults_detected, 2u);
}

// --- BitIdentical field coverage ---------------------------------------------

// Guards the BitIdentical <-> ScenarioResult contract from both sides:
// (1) the mutation sweep below proves every *current* field participates in
// the comparison; (2) the size pin makes adding a field without revisiting
// BitIdentical (and this test) a compile error on the reference ABI.
#if defined(__GLIBCXX__) && defined(__x86_64__) && !defined(_GLIBCXX_DEBUG)
static_assert(sizeof(ScenarioResult) == 368 && sizeof(ClientAvailabilityResult) == 120,
              "ScenarioResult changed shape: extend BitIdentical (scenario.h), the mutation "
              "sweep in ResultFieldListIsCoveredByBitIdentical, then update these constants");
#endif

TEST(ScenarioResultContractTest, ResultFieldListIsCoveredByBitIdentical) {
  const auto baseline = [] {
    ScenarioResult r;
    r.succeeded = true;
    r.valid_count = 9;
    r.latency_seconds = 1.0;
    r.finish_time_seconds = 2.0;
    r.consensus_relays = 100;
    r.total_bytes_sent = 1000;
    r.bytes_by_kind = {{"VOTE", 10}};
    r.undeliverable_messages = 3;
    r.consensus_holders = {0, 1, 2};
    r.attack_history = {torattack::AttackSample{1, {0}, 2.0}};
    r.consensus_published_seconds = 3.0;
    r.consensus_valid_after = 4;
    r.consensus_fresh_until = 5;
    r.consensus_valid_until = 6;
    r.consensus_size_bytes = 7;
    r.consensus_diff_size_bytes = 70;
    {
      auto doc = std::make_shared<tordir::ConsensusDocument>();
      doc->valid_after = 4;
      r.consensus_document = doc;
    }
    r.client_availability.enabled = true;
    r.client_availability.total_fetches = 8.0;
    r.client_availability.fresh_fetches = 9.0;
    r.client_availability.stale_fetches = 10.0;
    r.client_availability.unserved_fetches = 11.0;
    r.client_availability.fresh_fraction = 0.5;
    r.client_availability.time_to_first_stale_seconds = 12.0;
    r.client_availability.outage_seconds = 13.0;
    r.client_availability.outage_start_seconds = 14.0;
    r.client_availability.hard_down_seconds = 15.0;
    r.client_availability.hard_down_start_seconds = 16.0;
    r.client_availability.peak_backlog_fetches = 17.0;
    r.client_availability.served_bytes = 20.0;
    r.client_availability.bytes_per_client_hour = 21.0;
    r.client_availability.full_doc_bytes_per_client_hour = 22.0;
    r.health_alerts = {
        tordir::HealthAlert{tordir::HealthAlertKind::kNoConsensus, {1}, "detail", 18.0}};
    r.byzantine_count = 2;
    r.faults_detected = 2;
    r.fault_detection_latency_seconds = 19.0;
    return r;
  }();
  ASSERT_TRUE(BitIdentical(baseline, baseline));
  // NaN == NaN under this equality (failed runs carry NaN latencies).
  {
    ScenarioResult a = baseline;
    ScenarioResult b = baseline;
    a.latency_seconds = b.latency_seconds = std::numeric_limits<double>::quiet_NaN();
    EXPECT_TRUE(BitIdentical(a, b));
  }

  // One mutator per field; BitIdentical must catch each in isolation.
  const std::vector<std::function<void(ScenarioResult&)>> mutators = {
      [](ScenarioResult& r) { r.succeeded = false; },
      [](ScenarioResult& r) { r.valid_count = 0; },
      [](ScenarioResult& r) { r.latency_seconds += 1; },
      [](ScenarioResult& r) { r.finish_time_seconds += 1; },
      [](ScenarioResult& r) { r.consensus_relays += 1; },
      [](ScenarioResult& r) { r.total_bytes_sent += 1; },
      [](ScenarioResult& r) { r.bytes_by_kind["VOTE"] += 1; },
      [](ScenarioResult& r) { r.undeliverable_messages += 1; },
      [](ScenarioResult& r) { r.consensus_holders.push_back(3); },
      [](ScenarioResult& r) { r.attack_history[0].at += 1; },
      [](ScenarioResult& r) { r.consensus_published_seconds += 1; },
      [](ScenarioResult& r) { r.consensus_valid_after += 1; },
      [](ScenarioResult& r) { r.consensus_fresh_until += 1; },
      [](ScenarioResult& r) { r.consensus_valid_until += 1; },
      [](ScenarioResult& r) { r.consensus_size_bytes += 1; },
      [](ScenarioResult& r) { r.consensus_diff_size_bytes += 1; },
      [](ScenarioResult& r) {
        auto doc = std::make_shared<tordir::ConsensusDocument>(*r.consensus_document);
        doc->valid_after += 1;
        r.consensus_document = doc;
      },
      [](ScenarioResult& r) { r.consensus_document = nullptr; },
      [](ScenarioResult& r) { r.client_availability.enabled = false; },
      [](ScenarioResult& r) { r.client_availability.total_fetches += 1; },
      [](ScenarioResult& r) { r.client_availability.fresh_fetches += 1; },
      [](ScenarioResult& r) { r.client_availability.stale_fetches += 1; },
      [](ScenarioResult& r) { r.client_availability.unserved_fetches += 1; },
      [](ScenarioResult& r) { r.client_availability.fresh_fraction += 0.1; },
      [](ScenarioResult& r) { r.client_availability.time_to_first_stale_seconds += 1; },
      [](ScenarioResult& r) { r.client_availability.outage_seconds += 1; },
      [](ScenarioResult& r) { r.client_availability.outage_start_seconds += 1; },
      [](ScenarioResult& r) { r.client_availability.hard_down_seconds += 1; },
      [](ScenarioResult& r) { r.client_availability.hard_down_start_seconds += 1; },
      [](ScenarioResult& r) { r.client_availability.peak_backlog_fetches += 1; },
      [](ScenarioResult& r) { r.client_availability.served_bytes += 1; },
      [](ScenarioResult& r) { r.client_availability.bytes_per_client_hour += 1; },
      [](ScenarioResult& r) { r.client_availability.full_doc_bytes_per_client_hour += 1; },
      [](ScenarioResult& r) { r.health_alerts[0].detail += "x"; },
      [](ScenarioResult& r) { r.health_alerts[0].first_evidence_seconds += 1; },
      [](ScenarioResult& r) { r.health_alerts.clear(); },
      [](ScenarioResult& r) { r.byzantine_count += 1; },
      [](ScenarioResult& r) { r.faults_detected += 1; },
      [](ScenarioResult& r) { r.fault_detection_latency_seconds += 1; },
  };
  for (size_t i = 0; i < mutators.size(); ++i) {
    ScenarioResult mutated = baseline;
    mutators[i](mutated);
    EXPECT_FALSE(BitIdentical(baseline, mutated)) << "mutator " << i;
  }
}

// A protocol registered from outside the built-ins participates in dispatch:
// the registry is genuinely pluggable, not a closed enum in disguise.
class RenamedIcps : public torproto::DirectoryProtocol {
 public:
  std::string_view name() const override { return "icps-alias"; }
  std::string_view display_name() const override { return "Ours (alias)"; }
  std::unique_ptr<torsim::Actor> MakeAuthority(const torproto::ProtocolRunConfig& config,
                                               const torcrypto::KeyDirectory* directory,
                                               torbase::NodeId id,
                                               torproto::AuthorityMaterials materials) const override {
    return torproto::GetProtocol("icps").MakeAuthority(config, directory, id,
                                                       std::move(materials));
  }
  torproto::UnifiedOutcome ProbeOutcome(const torsim::Actor& actor) const override {
    return torproto::GetProtocol("icps").ProbeOutcome(actor);
  }
  torproto::PublishedConsensus ProbeConsensus(const torsim::Actor& actor) const override {
    return torproto::GetProtocol("icps").ProbeConsensus(actor);
  }
  std::vector<torbase::NodeId> ProbeVoteSenders(const torsim::Actor& actor) const override {
    return torproto::GetProtocol("icps").ProbeVoteSenders(actor);
  }
};

TEST(ProtocolRegistryTest, DownstreamRegistrationIsDispatchable) {
  torproto::RegisterProtocol(std::make_unique<RenamedIcps>());
  ScenarioRunner runner;
  const auto result = runner.Run(SmallSpec("icps-alias"));
  EXPECT_TRUE(result.succeeded);
  EXPECT_EQ(result.valid_count, 9u);
}

}  // namespace
}  // namespace torscenario
