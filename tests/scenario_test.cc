// Tests for the scenario engine (src/scenario) and the protocol registry
// (src/protocols/directory_protocol.h): registry enumeration, declarative
// rolling/adaptive attack scenarios, workload caching across sweep cells,
// heterogeneous per-authority bandwidth, and churn events.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/attack/schedule.h"
#include "src/protocols/directory_protocol.h"
#include "src/scenario/runner.h"

namespace torscenario {
namespace {

using torbase::Minutes;
using torbase::Seconds;

ScenarioSpec SmallSpec(const std::string& protocol) {
  ScenarioSpec spec;
  spec.name = "test";
  spec.protocol = protocol;
  spec.relay_count = 200;
  spec.seed = 1;
  return spec;
}

TEST(ProtocolRegistryTest, EnumeratesBuiltinsAndRunsEachUnattacked) {
  const auto names = torproto::RegisteredProtocolNames();
  ASSERT_GE(names.size(), 3u);
  for (const char* expected : {"current", "icps", "synchronous"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end()) << expected;
  }

  // One small healthy scenario per registered protocol: all must succeed.
  ScenarioRunner runner;
  for (const auto& name : names) {
    const auto result = runner.Run(SmallSpec(name));
    EXPECT_TRUE(result.succeeded) << name;
    EXPECT_EQ(result.valid_count, 9u) << name;
    EXPECT_GT(result.consensus_relays, 190u) << name;
  }
  // All protocols shared one generated workload.
  EXPECT_EQ(runner.workload_cache_misses(), 1u);
  EXPECT_EQ(runner.workload_cache_hits(), names.size() - 1);
}

TEST(ProtocolRegistryTest, LookupAndDisplayNames) {
  EXPECT_EQ(torproto::GetProtocol("icps").display_name(), "Ours");
  EXPECT_EQ(torproto::GetProtocol("current").display_name(), "Current");
  EXPECT_EQ(torproto::FindProtocol("no-such-protocol"), nullptr);
}

TEST(ScenarioRunnerTest, WorkloadCacheKeysOnRelaysSeedAndAuthorityCount) {
  ScenarioRunner runner;
  ScenarioSpec spec = SmallSpec("current");
  runner.Run(spec);
  EXPECT_EQ(runner.workload_cache_misses(), 1u);

  spec.bandwidth_bps = 50e6;  // bandwidth is not part of the workload key
  runner.Run(spec);
  EXPECT_EQ(runner.workload_cache_misses(), 1u);
  EXPECT_EQ(runner.workload_cache_hits(), 1u);

  spec.seed = 2;  // a new seed is a new workload
  runner.Run(spec);
  EXPECT_EQ(runner.workload_cache_misses(), 2u);

  spec.relay_count = 150;  // and so is a new relay count
  runner.Run(spec);
  EXPECT_EQ(runner.workload_cache_misses(), 3u);
  EXPECT_EQ(runner.workload_cache_size(), 3u);
}

TEST(ScenarioRunnerTest, CachedWorkloadRunsMatchFreshRuns) {
  // Reusing the cached votes must not change results: actors get copies.
  ScenarioSpec spec = SmallSpec("icps");
  ScenarioRunner shared;
  const auto first = shared.Run(spec);
  const auto second = shared.Run(spec);
  ScenarioRunner fresh;
  const auto baseline = fresh.Run(spec);
  EXPECT_EQ(first.succeeded, baseline.succeeded);
  EXPECT_DOUBLE_EQ(first.latency_seconds, baseline.latency_seconds);
  EXPECT_EQ(first.total_bytes_sent, baseline.total_bytes_sent);
  EXPECT_DOUBLE_EQ(second.latency_seconds, baseline.latency_seconds);
  EXPECT_EQ(second.total_bytes_sent, baseline.total_bytes_sent);
}

TEST(ScenarioTest, RollingAttackScenarioIsDeterministic) {
  torattack::RollingAttackConfig attack_config;
  attack_config.victim_count = 5;
  attack_config.period = Minutes(1);
  attack_config.start = 0;
  attack_config.end = Minutes(5);

  ScenarioSpec spec = SmallSpec("current");
  spec.relay_count = 400;
  spec.attack = std::make_shared<torattack::RollingAttack>(attack_config);
  spec.horizon = torbase::Hours(1);

  ScenarioRunner runner;
  const auto first = runner.Run(spec);
  const auto second = runner.Run(spec);

  // Same victim sequence, same outcome, run after run.
  ASSERT_EQ(first.attack_history.size(), 5u);
  EXPECT_EQ(first.attack_history, second.attack_history);
  EXPECT_EQ(first.succeeded, second.succeeded);
  EXPECT_EQ(first.total_bytes_sent, second.total_bytes_sent);
  // Epoch k floods authorities k..k+4 (mod 9).
  EXPECT_EQ(first.attack_history[2].victims,
            (std::vector<torbase::NodeId>{2, 3, 4, 5, 6}));
}

TEST(ScenarioTest, AdaptiveLeaderScenarioIsDeterministicAndRecordsVictims) {
  torattack::AdaptiveLeaderConfig attack_config;
  attack_config.victim_count = 1;
  attack_config.period = Seconds(30);
  attack_config.start = 0;
  attack_config.end = Minutes(10);

  ScenarioSpec spec = SmallSpec("icps");
  spec.relay_count = 300;
  spec.attack = std::make_shared<torattack::AdaptiveLeaderAttack>(attack_config);
  spec.horizon = torbase::Hours(1);

  ScenarioRunner runner;
  const auto first = runner.Run(spec);
  const auto second = runner.Run(spec);

  EXPECT_FALSE(first.attack_history.empty());
  EXPECT_EQ(first.attack_history, second.attack_history);
  EXPECT_EQ(first.succeeded, second.succeeded);
  EXPECT_EQ(first.total_bytes_sent, second.total_bytes_sent);
  for (const auto& sample : first.attack_history) {
    ASSERT_EQ(sample.victims.size(), 1u);
    EXPECT_LT(sample.victims[0], spec.authority_count);
  }
  // Flooding one authority at a time never blocks ICPS (f = 2): it finishes.
  EXPECT_TRUE(first.succeeded);
}

TEST(ScenarioTest, HeterogeneousBandwidthStarvesOnlyTheSlowAuthorities) {
  // 5 of 9 authorities on links far below the Figure-7 requirement: the
  // current protocol fails, even though the network-wide default is ample.
  ScenarioSpec spec = SmallSpec("current");
  spec.relay_count = 800;
  spec.horizon = Minutes(15);
  for (torbase::NodeId node = 0; node < 5; ++node) {
    spec.bandwidth_by_authority[node] = torattack::kUnderAttackBps;
  }
  ScenarioRunner runner;
  EXPECT_FALSE(runner.Run(spec).succeeded);

  // Fast links for the same 5: healthy again.
  for (torbase::NodeId node = 0; node < 5; ++node) {
    spec.bandwidth_by_authority[node] = 250e6;
  }
  EXPECT_TRUE(runner.Run(spec).succeeded);
}

TEST(ScenarioTest, ChurnCrashMinorityIsToleratedMajorityIsNot) {
  ScenarioRunner runner;

  // ICPS tolerates f = 2 crashes: one authority dead from the start is
  // survivable — the other 8 proceed with n - f documents after Δ.
  ScenarioSpec icps = SmallSpec("icps");
  icps.churn.push_back({/*node=*/8, /*at=*/0, ChurnEvent::Kind::kCrash});
  const auto tolerated = runner.Run(icps);
  EXPECT_TRUE(tolerated.succeeded);
  EXPECT_EQ(tolerated.valid_count, 8u);  // the dead authority cannot finish

  // The current protocol cannot compute a consensus when a majority crashes
  // before the vote exchange.
  ScenarioSpec current = SmallSpec("current");
  current.relay_count = 400;
  current.horizon = Minutes(15);
  for (torbase::NodeId node = 0; node < 5; ++node) {
    current.churn.push_back({node, Seconds(1), ChurnEvent::Kind::kCrash});
  }
  EXPECT_FALSE(runner.Run(current).succeeded);
}

TEST(ScenarioTest, CrashedNodeStaysDownWhenAnAttackWindowEnds) {
  // A crash mid attack-window must not be undone by the window's restore
  // point: the node is dead, not merely clamped.
  torattack::AttackWindow window;
  window.targets = {8};
  window.start = 0;
  window.end = Minutes(5);
  window.available_bps = torattack::kUnderAttackBps;

  ScenarioSpec spec = SmallSpec("icps");
  spec.attack = std::make_shared<torattack::WindowedAttack>(
      std::vector<torattack::AttackWindow>{window});
  spec.churn.push_back({/*node=*/8, /*at=*/Seconds(5), ChurnEvent::Kind::kCrash});

  ScenarioRunner runner;
  const auto result = runner.Run(spec);
  // The other 8 finish; the crashed authority never does, even though its
  // attack window expired at t=5min.
  EXPECT_TRUE(result.succeeded);
  EXPECT_EQ(result.valid_count, 8u);
}

TEST(ScenarioTest, ChurnRecoverRestoresTheConfiguredRate) {
  // Crash-then-recover is exactly the Figure 11 shape: ICPS finishes shortly
  // after the crashed majority returns.
  ScenarioSpec spec = SmallSpec("icps");
  spec.relay_count = 300;
  for (torbase::NodeId node = 0; node < 5; ++node) {
    spec.churn.push_back({node, 0, ChurnEvent::Kind::kCrash});
    spec.churn.push_back({node, Minutes(5), ChurnEvent::Kind::kRecover});
  }
  ScenarioRunner runner;
  const auto result = runner.Run(spec);
  EXPECT_TRUE(result.succeeded);
  EXPECT_GT(result.finish_time_seconds, torbase::ToSeconds(Minutes(5)));
}

TEST(ScenarioTest, SweepRunsEveryCellInOrder) {
  std::vector<ScenarioSpec> specs;
  for (const char* protocol : {"current", "icps"}) {
    for (double bw_mbps : {50.0, 10.0}) {
      ScenarioSpec spec = SmallSpec(protocol);
      spec.bandwidth_bps = bw_mbps * 1e6;
      specs.push_back(std::move(spec));
    }
  }
  ScenarioRunner runner;
  const auto results = runner.Sweep(specs);
  ASSERT_EQ(results.size(), specs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].succeeded) << i;
  }
  EXPECT_EQ(runner.workload_cache_misses(), 1u);
  EXPECT_EQ(runner.workload_cache_hits(), specs.size() - 1);
}

// Per-field diagnostics for a BitIdentical failure; the authoritative
// comparison (covering every ScenarioResult field) is BitIdentical itself.
void ExpectSameResult(const ScenarioResult& a, const ScenarioResult& b, size_t cell) {
  EXPECT_TRUE(BitIdentical(a, b)) << "cell " << cell;
  EXPECT_EQ(a.succeeded, b.succeeded) << "cell " << cell;
  EXPECT_EQ(a.valid_count, b.valid_count) << "cell " << cell;
  EXPECT_EQ(a.consensus_relays, b.consensus_relays) << "cell " << cell;
  EXPECT_EQ(a.total_bytes_sent, b.total_bytes_sent) << "cell " << cell;
  EXPECT_EQ(a.bytes_by_kind, b.bytes_by_kind) << "cell " << cell;
  EXPECT_EQ(a.attack_history, b.attack_history) << "cell " << cell;
  if (a.succeeded && b.succeeded) {
    EXPECT_EQ(a.latency_seconds, b.latency_seconds) << "cell " << cell;
    EXPECT_EQ(a.finish_time_seconds, b.finish_time_seconds) << "cell " << cell;
  }
}

TEST(ScenarioTest, ParallelSweepIsBitIdenticalToSerial) {
  // A 12-cell grid mixing the hard cases for parallelism: a shared rolling
  // attack-schedule object across cells (must be cloned per cell), churn, and
  // failed cells (NaN latencies). Every thread count must reproduce the serial
  // results exactly, including the workload-cache telemetry.
  torattack::RollingAttackConfig attack_config;
  attack_config.victim_count = 5;
  attack_config.period = Minutes(1);
  attack_config.start = 0;
  attack_config.end = Minutes(4);
  const auto rolling = std::make_shared<torattack::RollingAttack>(attack_config);

  std::vector<ScenarioSpec> specs;
  for (const char* protocol : {"current", "icps"}) {
    for (size_t relays : {200, 300}) {
      for (int variant = 0; variant < 3; ++variant) {
        ScenarioSpec spec = SmallSpec(protocol);
        spec.relay_count = relays;
        spec.horizon = torbase::Hours(1);
        if (variant != 1) {
          spec.attack = rolling;  // deliberately shared across cells
        }
        if (variant != 0) {
          spec.churn.push_back({/*node=*/7, /*at=*/Seconds(30), ChurnEvent::Kind::kCrash});
          spec.churn.push_back({/*node=*/7, /*at=*/Minutes(6), ChurnEvent::Kind::kRecover});
        }
        specs.push_back(std::move(spec));
      }
    }
  }
  ASSERT_GE(specs.size(), 12u);

  ScenarioRunner serial_runner;
  const auto serial = serial_runner.Sweep(specs);

  for (unsigned threads : {1u, 2u, 8u}) {
    ScenarioRunner parallel_runner;
    const auto parallel = parallel_runner.Sweep(specs, SweepOptions{threads});
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (size_t i = 0; i < serial.size(); ++i) {
      ExpectSameResult(serial[i], parallel[i], i);
    }
    EXPECT_EQ(parallel_runner.workload_cache_misses(), serial_runner.workload_cache_misses())
        << threads << " threads";
    EXPECT_EQ(parallel_runner.workload_cache_hits(), serial_runner.workload_cache_hits())
        << threads << " threads";
  }
}

// A protocol registered from outside the built-ins participates in dispatch:
// the registry is genuinely pluggable, not a closed enum in disguise.
class RenamedIcps : public torproto::DirectoryProtocol {
 public:
  std::string_view name() const override { return "icps-alias"; }
  std::string_view display_name() const override { return "Ours (alias)"; }
  std::unique_ptr<torsim::Actor> MakeAuthority(const torproto::ProtocolRunConfig& config,
                                               const torcrypto::KeyDirectory* directory,
                                               torbase::NodeId id, tordir::VoteDocument vote,
                                               std::string vote_text) const override {
    return torproto::GetProtocol("icps").MakeAuthority(config, directory, id, std::move(vote),
                                                       std::move(vote_text));
  }
  torproto::UnifiedOutcome ProbeOutcome(const torsim::Actor& actor) const override {
    return torproto::GetProtocol("icps").ProbeOutcome(actor);
  }
};

TEST(ProtocolRegistryTest, DownstreamRegistrationIsDispatchable) {
  torproto::RegisterProtocol(std::make_unique<RenamedIcps>());
  ScenarioRunner runner;
  const auto result = runner.Run(SmallSpec("icps-alias"));
  EXPECT_TRUE(result.succeeded);
  EXPECT_EQ(result.valid_count, 9u);
}

}  // namespace
}  // namespace torscenario
