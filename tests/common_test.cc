// Unit tests for src/common: bytes/hex, serialization, rng, stats, logging,
// table rendering and time formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/bytes.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/serialize.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/table.h"
#include "src/common/time.h"

namespace torbase {
namespace {

TEST(BytesTest, HexEncodeLowerAndUpper) {
  const Bytes data = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x7f};
  EXPECT_EQ(HexEncode(data), "deadbeef007f");
  EXPECT_EQ(HexEncodeUpper(data), "DEADBEEF007F");
}

TEST(BytesTest, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xff, 0x10, 0xab};
  auto decoded = HexDecode(HexEncode(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(BytesTest, HexDecodeAcceptsMixedCase) {
  auto decoded = HexDecode("DeAdBeEf");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(BytesTest, HexDecodeRejectsOddLength) { EXPECT_FALSE(HexDecode("abc").has_value()); }

TEST(BytesTest, HexDecodeRejectsNonHex) { EXPECT_FALSE(HexDecode("zz").has_value()); }

TEST(BytesTest, StringConversionRoundTrip) {
  const std::string s = "hello tor";
  EXPECT_EQ(StringOfBytes(BytesOfString(s)), s);
}

TEST(BytesTest, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing vote");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing vote");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, IntegerRoundTrip) {
  Writer w;
  w.WriteU8(0xab);
  w.WriteU16(0xbeef);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefull);
  w.WriteBool(true);
  w.WriteBool(false);

  Reader r(w.buffer());
  EXPECT_EQ(*r.ReadU8(), 0xab);
  EXPECT_EQ(*r.ReadU16(), 0xbeef);
  EXPECT_EQ(*r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789abcdefull);
  EXPECT_TRUE(*r.ReadBool());
  EXPECT_FALSE(*r.ReadBool());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, StringAndBytesRoundTrip) {
  Writer w;
  w.WriteString("consensus");
  w.WriteBytes(Bytes{9, 8, 7});

  Reader r(w.buffer());
  EXPECT_EQ(*r.ReadString(), "consensus");
  EXPECT_EQ(*r.ReadBytes(), (Bytes{9, 8, 7}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TruncatedReadsFail) {
  Writer w;
  w.WriteU32(7);
  Reader r(w.buffer());
  EXPECT_TRUE(r.ReadU64().status().code() == StatusCode::kOutOfRange);
}

TEST(SerializeTest, TruncatedLengthPrefixFails) {
  Writer w;
  w.WriteU32(100);  // claims 100 bytes follow; none do
  Reader r(w.buffer());
  auto res = r.ReadBytes();
  EXPECT_FALSE(res.ok());
}

TEST(SerializeTest, EmptyString) {
  Writer w;
  w.WriteString("");
  Reader r(w.buffer());
  EXPECT_EQ(*r.ReadString(), "");
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformWithinBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    uint64_t v = rng.UniformRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all 4 values hit over 500 draws
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalRoughMoments) {
  Rng rng(42);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(rng.Normal(10.0, 2.0));
  }
  EXPECT_NEAR(Mean(samples), 10.0, 0.1);
  EXPECT_NEAR(StdDev(samples), 2.0, 0.1);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.Fork();
  // Forking is deterministic: rebuilding the child from the parent's first
  // draw yields the same stream.
  Rng expected(Rng(5).NextU64());
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(child.NextU64(), expected.NextU64());
  }
  // And the forked child does not replay the parent's subsequent stream.
  Rng child2 = Rng(5).Fork();
  EXPECT_NE(child2.NextU64(), parent.NextU64());
}

TEST(RngTest, RandomBytesLengthAndDeterminism) {
  Rng a(11);
  Rng b(11);
  auto ba = a.RandomBytes(37);
  auto bb = b.RandomBytes(37);
  EXPECT_EQ(ba.size(), 37u);
  EXPECT_EQ(ba, bb);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(StatsTest, MedianLowOdd) { EXPECT_EQ(MedianLow({5, 1, 9}), 5u); }

TEST(StatsTest, MedianLowEvenTakesLower) { EXPECT_EQ(MedianLow({1, 2, 3, 4}), 2u); }

TEST(StatsTest, MedianEmpty) { EXPECT_EQ(MedianLow({}), 0u); }

TEST(StatsTest, MedianSingle) { EXPECT_EQ(MedianLow({42}), 42u); }

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);
}

TEST(StatsTest, Percentile) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 6.0);
}

TEST(StatsTest, FitLineExact) {
  std::vector<double> xs = {1, 2, 3, 4};
  std::vector<double> ys = {3, 5, 7, 9};  // y = 2x + 1
  auto fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(StatsTest, GrowthExponentQuadratic) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 4; x <= 64; x *= 2) {
    xs.push_back(x);
    ys.push_back(3.0 * x * x);
  }
  EXPECT_NEAR(GrowthExponent(xs, ys), 2.0, 1e-6);
}

TEST(TimeTest, UnitArithmetic) {
  EXPECT_EQ(Seconds(1), 1000 * Millis(1));
  EXPECT_EQ(Minutes(2), 120 * kSecond);
  EXPECT_EQ(Hours(1), 3600 * kSecond);
  EXPECT_DOUBLE_EQ(ToSeconds(Millis(1500)), 1.5);
}

TEST(TimeTest, FormatTime) {
  EXPECT_EQ(FormatTime(0), "00:00:00.000");
  EXPECT_EQ(FormatTime(Seconds(3661) + Millis(42)), "01:01:01.042");
}

TEST(LoggingTest, RecordsAndFormats) {
  Logger log("auth3");
  log.Notice(Seconds(90), "Time to fetch any votes that we're missing.");
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].Format(),
            "Jan 01 00:01:30.000 [notice] auth3: Time to fetch any votes that we're missing.");
}

TEST(LoggingTest, MinLevelFilters) {
  Logger log;
  log.set_min_level(LogLevel::kWarn);
  log.Info(0, "dropped");
  log.Warn(0, "kept");
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].message, "kept");
}

TEST(LoggingTest, ContainsSearchesMessages) {
  Logger log;
  log.Warn(0, "We don't have enough votes to generate a consensus: 4 of 5");
  EXPECT_TRUE(log.Contains("enough votes"));
  EXPECT_FALSE(log.Contains("absent"));
}

TEST(LoggingTest, CapacityEvictsOldest) {
  Logger log;
  log.set_capacity(2);
  log.Info(0, "a");
  log.Info(0, "b");
  log.Info(0, "c");
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].message, "b");
  EXPECT_EQ(log.records()[1].message, "c");
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"Relays", "Latency(s)"});
  t.AddRow({"1000", "3.20"});
  t.AddRow({"10000", "31.73"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("Relays  Latency(s)"), std::string::npos);
  EXPECT_NE(out.find("10000"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, NumFormatsAndNan) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(std::nan(""), 2), "-");
  EXPECT_EQ(Table::Int(-7), "-7");
}

}  // namespace
}  // namespace torbase
