// Tests for the canonical scenario-spec digest (src/scenario/spec_digest.h):
// the field-coverage contract behind the ScenarioRunner's result memo. The
// mutation sweep proves every result-influencing ScenarioSpec field — down
// through attack-schedule configs, churn events, the byzantine spec, the
// client-load spec and the previous-consensus baseline — changes the digest,
// and that the one documented exemption (spec.name, a display label) does
// not. The sizeof tripwires make adding a field without teaching the digest
// (and this sweep) about it a compile error on the reference ABI.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/attack/schedule.h"
#include "src/common/serialize.h"
#include "src/scenario/runner.h"
#include "src/scenario/spec_digest.h"

namespace torscenario {
namespace {

using torbase::Hours;
using torbase::Millis;
using torbase::Minutes;
using torbase::Seconds;

// Guards the SpecDigest <-> ScenarioSpec contract from both sides, exactly
// like ResultFieldListIsCoveredByBitIdentical does for results: (1) the
// mutation sweep below proves every *current* field enters the digest; (2)
// the size pins make adding a field to any struct the digest walks — without
// revisiting SpecDigest (or the relevant Describe) and this test — a compile
// error on the reference ABI.
#if defined(__GLIBCXX__) && defined(__x86_64__) && !defined(_GLIBCXX_DEBUG)
static_assert(sizeof(ScenarioSpec) == 416 && sizeof(torclients::ClientLoadSpec) == 104 &&
                  sizeof(torproto::ByzantineSpec) == 64 && sizeof(ChurnEvent) == 24,
              "ScenarioSpec changed shape: extend SpecDigest (spec_digest.cc), the mutation "
              "sweep in SpecFieldListIsCoveredByDigest, then update these constants");
static_assert(sizeof(torattack::AttackWindow) == 96 &&
                  sizeof(torattack::RollingAttackConfig) == 56 &&
                  sizeof(torattack::AdaptiveLeaderConfig) == 40,
              "an attack schedule config changed shape: extend its Describe (schedule.cc), "
              "the mutation sweep here, then update these constants");
#endif

std::shared_ptr<const tordir::ConsensusDocument> SmallConsensus(uint64_t valid_after) {
  auto doc = std::make_shared<tordir::ConsensusDocument>();
  doc->valid_after = valid_after;
  doc->fresh_until = valid_after + 3600;
  doc->valid_until = valid_after + 3 * 3600;
  return doc;
}

// Every field non-default, so each mutator below flips a value the digest has
// actually seen.
ScenarioSpec RichSpec() {
  ScenarioSpec spec;
  spec.name = "rich";
  spec.protocol = "icps";
  spec.authority_count = 7;
  spec.relay_count = 321;
  spec.seed = 9;
  spec.bandwidth_bps = 100e6;
  spec.bandwidth_by_authority = {{2, 50e6}};
  spec.latency = Millis(75);
  torattack::AttackWindow window;
  window.targets = {0, 2};
  window.start = Minutes(1);
  window.end = Minutes(6);
  window.available_bps = 1e6;
  window.available_bps_by_target = {{2, 2e6}};
  spec.attack = std::make_shared<torattack::WindowedAttack>(
      std::vector<torattack::AttackWindow>{window});
  spec.churn = {ChurnEvent{3, Minutes(5), ChurnEvent::Kind::kCrash}};
  spec.horizon = Hours(2);
  spec.dissemination_timeout = Seconds(99);
  spec.two_phase_agreement = true;
  spec.client_load.client_count = 1000;
  spec.client_load.bootstrap_fraction = 0.1;
  spec.client_load.cache_count = 8;
  spec.client_load.cache_bandwidth_bps = 5e8;
  spec.client_load.cache_mirror_delay = Seconds(20);
  spec.client_load.fetch_period = Minutes(30);
  spec.client_load.vote_lead = Minutes(5);
  spec.client_load.validity_periods = 4;
  spec.client_load.evaluation_window = Hours(2);
  spec.client_load.prior_consensus = false;
  spec.client_load.consensus_size_hint_bytes = 123.0;
  spec.client_load.initial_backlog_fetches = 10.0;
  spec.client_load.diff_capable_fraction = 0.5;
  spec.monitor_health = false;
  spec.previous_consensus = SmallConsensus(7200);
  spec.byzantine.behaviors = {{1, torproto::ByzantineBehavior::kReplay}};
  spec.byzantine.mutation_seed = 7;
  spec.byzantine.bandwidth_multiplier = 8.0;
  spec.retain_consensus = true;
  return spec;
}

torattack::AttackWindow& FirstWindow(ScenarioSpec& spec) {
  return static_cast<torattack::WindowedAttack&>(*spec.attack).windows()[0];
}

TEST(SpecDigestTest, SpecFieldListIsCoveredByDigest) {
  const ScenarioSpec baseline = RichSpec();
  const torcrypto::Digest256 base_digest = SpecDigest(baseline);
  EXPECT_EQ(base_digest, SpecDigest(baseline));  // deterministic

  // The one exemption: name is a display label, echoed in reports but never
  // simulated. Quiet timeline rounds ("week/round3", "week/round4", ...)
  // dedupe into one simulation precisely because of this.
  {
    ScenarioSpec renamed = baseline;
    renamed.name = "completely-different";
    EXPECT_EQ(SpecDigest(renamed), base_digest);
  }

  // One mutator per field (nested fields included); each must change the
  // digest in isolation, or the memo would serve one cached result for two
  // specs that simulate differently.
  const std::vector<std::function<void(ScenarioSpec&)>> mutators = {
      [](ScenarioSpec& s) { s.protocol = "current"; },
      [](ScenarioSpec& s) { s.authority_count += 1; },
      [](ScenarioSpec& s) { s.relay_count += 1; },
      [](ScenarioSpec& s) { s.seed += 1; },
      [](ScenarioSpec& s) { s.bandwidth_bps += 1.0; },
      [](ScenarioSpec& s) { s.bandwidth_by_authority[2] += 1.0; },
      [](ScenarioSpec& s) { s.bandwidth_by_authority[5] = 10e6; },
      [](ScenarioSpec& s) { s.latency += 1; },
      [](ScenarioSpec& s) { s.attack = nullptr; },
      [](ScenarioSpec& s) { FirstWindow(s).targets.push_back(4); },
      [](ScenarioSpec& s) { FirstWindow(s).start += 1; },
      [](ScenarioSpec& s) { FirstWindow(s).end += 1; },
      [](ScenarioSpec& s) { FirstWindow(s).available_bps += 1.0; },
      [](ScenarioSpec& s) { FirstWindow(s).available_bps_by_target[2] += 1.0; },
      [](ScenarioSpec& s) { FirstWindow(s).available_bps_by_target[0] = 3e6; },
      [](ScenarioSpec& s) {
        static_cast<torattack::WindowedAttack&>(*s.attack).windows().push_back(
            torattack::AttackWindow{});
      },
      [](ScenarioSpec& s) { s.churn[0].node += 1; },
      [](ScenarioSpec& s) { s.churn[0].at += 1; },
      [](ScenarioSpec& s) { s.churn[0].kind = ChurnEvent::Kind::kRecover; },
      [](ScenarioSpec& s) { s.churn.push_back(ChurnEvent{}); },
      [](ScenarioSpec& s) { s.horizon += 1; },
      [](ScenarioSpec& s) { s.dissemination_timeout += 1; },
      [](ScenarioSpec& s) { s.two_phase_agreement = false; },
      [](ScenarioSpec& s) { s.client_load.client_count += 1; },
      [](ScenarioSpec& s) { s.client_load.bootstrap_fraction += 0.01; },
      [](ScenarioSpec& s) { s.client_load.cache_count += 1; },
      [](ScenarioSpec& s) { s.client_load.cache_bandwidth_bps += 1.0; },
      [](ScenarioSpec& s) { s.client_load.cache_mirror_delay += 1; },
      [](ScenarioSpec& s) { s.client_load.fetch_period += 1; },
      [](ScenarioSpec& s) { s.client_load.vote_lead += 1; },
      [](ScenarioSpec& s) { s.client_load.validity_periods += 1; },
      [](ScenarioSpec& s) { s.client_load.evaluation_window += 1; },
      [](ScenarioSpec& s) { s.client_load.prior_consensus = true; },
      [](ScenarioSpec& s) { s.client_load.consensus_size_hint_bytes += 1.0; },
      [](ScenarioSpec& s) { s.client_load.initial_backlog_fetches += 1.0; },
      [](ScenarioSpec& s) { s.client_load.diff_capable_fraction += 0.1; },
      [](ScenarioSpec& s) { s.monitor_health = true; },
      [](ScenarioSpec& s) { s.previous_consensus = nullptr; },
      [](ScenarioSpec& s) { s.previous_consensus = SmallConsensus(7200 + 3600); },
      [](ScenarioSpec& s) {
        s.byzantine.behaviors[1] = torproto::ByzantineBehavior::kEquivocate;
      },
      [](ScenarioSpec& s) {
        s.byzantine.behaviors[4] = torproto::ByzantineBehavior::kInflateBandwidth;
      },
      [](ScenarioSpec& s) { s.byzantine.mutation_seed += 1; },
      [](ScenarioSpec& s) { s.byzantine.bandwidth_multiplier += 1.0; },
      [](ScenarioSpec& s) { s.retain_consensus = false; },
  };
  for (size_t i = 0; i < mutators.size(); ++i) {
    ScenarioSpec mutated = baseline;
    // Deep-copy the attack before mutating it: RichSpec's windows are behind
    // a shared_ptr the baseline must keep unperturbed.
    if (mutated.attack != nullptr) {
      mutated.attack = mutated.attack->Clone();
    }
    mutators[i](mutated);
    EXPECT_NE(SpecDigest(mutated), base_digest) << "mutator " << i;
  }
}

// Per-config coverage for the two dynamic schedules (the windowed sweep above
// covers AttackWindow): every RollingAttackConfig / AdaptiveLeaderConfig
// field must reach the digest through Describe.
TEST(SpecDigestTest, DynamicScheduleConfigsAreCovered) {
  torattack::RollingAttackConfig rolling;
  rolling.victim_count = 3;
  rolling.start = Minutes(1);
  rolling.end = Minutes(9);
  rolling.period = Seconds(90);
  rolling.available_bps = 1.5e6;
  rolling.stride = 2;
  rolling.seed = 11;
  ScenarioSpec spec = RichSpec();
  spec.attack = std::make_shared<torattack::RollingAttack>(rolling);
  const torcrypto::Digest256 base = SpecDigest(spec);

  const std::vector<std::function<void(torattack::RollingAttackConfig&)>> rolling_mutators = {
      [](auto& c) { c.victim_count += 1; },
      [](auto& c) { c.start += 1; },
      [](auto& c) { c.end += 1; },
      [](auto& c) { c.period += 1; },
      [](auto& c) { c.available_bps += 1.0; },
      [](auto& c) { c.stride += 1; },
      [](auto& c) { c.seed += 1; },
  };
  for (size_t i = 0; i < rolling_mutators.size(); ++i) {
    torattack::RollingAttackConfig mutated = rolling;
    rolling_mutators[i](mutated);
    spec.attack = std::make_shared<torattack::RollingAttack>(mutated);
    EXPECT_NE(SpecDigest(spec), base) << "rolling mutator " << i;
  }

  torattack::AdaptiveLeaderConfig adaptive;
  adaptive.victim_count = 2;
  adaptive.start = Minutes(1);
  adaptive.end = Minutes(9);
  adaptive.period = Seconds(45);
  adaptive.available_bps = 1.5e6;
  spec.attack = std::make_shared<torattack::AdaptiveLeaderAttack>(adaptive);
  const torcrypto::Digest256 adaptive_base = SpecDigest(spec);

  const std::vector<std::function<void(torattack::AdaptiveLeaderConfig&)>> adaptive_mutators = {
      [](auto& c) { c.victim_count += 1; },
      [](auto& c) { c.start += 1; },
      [](auto& c) { c.end += 1; },
      [](auto& c) { c.period += 1; },
      [](auto& c) { c.available_bps += 1.0; },
  };
  for (size_t i = 0; i < adaptive_mutators.size(); ++i) {
    torattack::AdaptiveLeaderConfig mutated = adaptive;
    adaptive_mutators[i](mutated);
    spec.attack = std::make_shared<torattack::AdaptiveLeaderAttack>(mutated);
    EXPECT_NE(SpecDigest(spec), adaptive_base) << "adaptive mutator " << i;
  }
}

// Distinct schedule types can never collide (each description leads with the
// schedule's name), even when their scalar fields happen to match.
TEST(SpecDigestTest, ScheduleTypesAreDomainSeparated) {
  ScenarioSpec spec = RichSpec();
  spec.attack = std::make_shared<torattack::RollingAttack>(torattack::RollingAttackConfig{});
  const torcrypto::Digest256 rolling = SpecDigest(spec);
  spec.attack =
      std::make_shared<torattack::AdaptiveLeaderAttack>(torattack::AdaptiveLeaderConfig{});
  const torcrypto::Digest256 adaptive = SpecDigest(spec);
  spec.attack = std::make_shared<torattack::WindowedAttack>(std::vector<torattack::AttackWindow>{});
  const torcrypto::Digest256 windowed = SpecDigest(spec);
  EXPECT_NE(rolling, adaptive);
  EXPECT_NE(rolling, windowed);
  EXPECT_NE(adaptive, windowed);
}

// Mutable per-run state never enters the digest: a schedule that has already
// recorded a run's history digests identically to a fresh clone — the memo
// must hit on the second run of a shared schedule, not fork on history bytes.
TEST(SpecDigestTest, AttackHistoryDoesNotPerturbDigest) {
  ScenarioSpec spec;
  spec.name = "history";
  spec.protocol = "current";
  spec.relay_count = 60;
  spec.horizon = Minutes(20);
  torattack::AttackWindow window;
  window.targets = {0, 1};
  window.start = 0;
  window.end = Minutes(5);
  spec.attack = std::make_shared<torattack::WindowedAttack>(
      std::vector<torattack::AttackWindow>{window});

  const torcrypto::Digest256 before = SpecDigest(spec);
  torbase::Writer fresh_description;
  spec.attack->Clone()->Describe(fresh_description);

  ScenarioRunner runner;
  const ScenarioResult result = runner.Run(spec);
  EXPECT_FALSE(result.attack_history.empty());

  EXPECT_EQ(SpecDigest(spec), before);
  torbase::Writer ran_description;
  spec.attack->Describe(ran_description);
  EXPECT_EQ(ran_description.buffer(), fresh_description.buffer());
}

}  // namespace
}  // namespace torscenario
