// Integration tests for the Current (deployed v3) directory protocol under the
// simulator: healthy runs, the paper's DDoS scenarios (§4), fetch-round
// recovery, and the Figure 1 log lines.
#include <gtest/gtest.h>

#include <memory>

#include "src/attack/ddos.h"
#include "src/protocols/common.h"
#include "src/protocols/current/current_authority.h"
#include "src/sim/actor.h"
#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"

namespace torproto {
namespace {

using torattack::AttackWindow;
using torbase::Minutes;
using torbase::Seconds;

struct Fixture {
  std::unique_ptr<torsim::Harness> harness;
  std::vector<CurrentAuthority*> authorities;
  torcrypto::KeyDirectory directory{42, 9};

  // Builds a 9-authority network with `relay_count` relays and the given
  // uniform authority bandwidth.
  void Build(size_t relay_count, double bandwidth_bps,
             const std::vector<AttackWindow>& attacks = {}) {
    ProtocolConfig config;
    tordir::PopulationConfig pop_config;
    pop_config.relay_count = relay_count;
    pop_config.seed = 7;
    const auto population = tordir::GeneratePopulation(pop_config);
    auto votes = tordir::MakeAllVotes(config.authority_count, population, pop_config);

    torsim::NetworkConfig net_config;
    net_config.node_count = config.authority_count;
    net_config.default_bandwidth_bps = bandwidth_bps;
    net_config.default_latency = torbase::Millis(50);
    harness = std::make_unique<torsim::Harness>(net_config);
    for (const auto& window : attacks) {
      torattack::ApplyAttack(harness->net(), window);
    }
    authorities.clear();
    for (uint32_t a = 0; a < config.authority_count; ++a) {
      authorities.push_back(static_cast<CurrentAuthority*>(harness->AddActor(
          std::make_unique<CurrentAuthority>(config, &directory, std::move(votes[a])))));
    }
  }

  RunResult Run() {
    harness->StartAll();
    harness->sim().Run();
    RunResult result;
    for (auto* authority : authorities) {
      EXPECT_TRUE(authority->finished());
      result.outcomes.push_back(authority->outcome());
    }
    return result;
  }
};

TEST(CurrentProtocolTest, HealthyRunAllAuthoritiesValid) {
  Fixture fx;
  fx.Build(300, torattack::kAuthorityLinkBps);
  const RunResult result = fx.Run();
  ASSERT_TRUE(result.Succeeded());
  EXPECT_EQ(result.ValidCount(), 9u);
  for (const auto& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.computed_consensus);
    EXPECT_EQ(outcome.votes_held, 9u);
    EXPECT_GE(outcome.signatures_held, 5u);
    EXPECT_LT(outcome.all_votes_received_at, Seconds(150));
  }
}

TEST(CurrentProtocolTest, HealthyRunConsensusIdenticalEverywhere) {
  Fixture fx;
  fx.Build(200, torattack::kAuthorityLinkBps);
  const RunResult result = fx.Run();
  const auto digest0 = tordir::ConsensusDigest(result.outcomes[0].consensus);
  for (const auto& outcome : result.outcomes) {
    EXPECT_EQ(tordir::ConsensusDigest(outcome.consensus), digest0);
  }
  EXPECT_GT(result.outcomes[0].consensus.relays.size(), 190u);
}

TEST(CurrentProtocolTest, SignaturesVerifyAgainstDigest) {
  Fixture fx;
  fx.Build(100, torattack::kAuthorityLinkBps);
  const RunResult result = fx.Run();
  const auto& consensus = result.outcomes[3].consensus;
  const auto digest = tordir::ConsensusDigest(consensus);
  ASSERT_GE(consensus.signatures.size(), 5u);
  for (const auto& sig : consensus.signatures) {
    EXPECT_TRUE(fx.directory.Verify(digest.span(), sig));
  }
}

TEST(CurrentProtocolTest, FiveMinuteAttackOnFiveAuthoritiesBreaksConsensus) {
  // The paper's headline attack: flood 5 of 9 authorities for the first five
  // minutes (the two vote-transfer rounds).
  Fixture fx;
  AttackWindow attack;
  attack.targets = torattack::FirstTargets(5);
  attack.start = 0;
  attack.end = Minutes(5);
  attack.available_bps = torattack::kUnderAttackBps;
  fx.Build(1000, torattack::kAuthorityLinkBps, {attack});
  const RunResult result = fx.Run();
  EXPECT_FALSE(result.Succeeded());
  EXPECT_EQ(result.ValidCount(), 0u);
  // Unattacked authorities end up with exactly their own + 3 peers' votes.
  for (size_t a = 5; a < 9; ++a) {
    EXPECT_EQ(result.outcomes[a].votes_held, 4u) << "authority " << a;
    EXPECT_FALSE(result.outcomes[a].computed_consensus);
  }
}

TEST(CurrentProtocolTest, AttackLogMatchesFigureOne) {
  Fixture fx;
  AttackWindow attack;
  attack.targets = torattack::FirstTargets(5);
  attack.start = 0;
  attack.end = Minutes(5);
  fx.Build(800, torattack::kAuthorityLinkBps, {attack});
  fx.Run();
  // An unattacked authority logs the Figure 1 sequence.
  const auto& log = fx.authorities[8]->log();
  EXPECT_TRUE(log.Contains("Time to fetch any votes that we're missing."));
  EXPECT_TRUE(log.Contains("We're missing votes from 5 authorities"));
  EXPECT_TRUE(log.Contains("Asking every other authority for a copy."));
  EXPECT_TRUE(log.Contains("Giving up downloading votes"));
  EXPECT_TRUE(log.Contains("Time to compute a consensus."));
  EXPECT_TRUE(log.Contains("We don't have enough votes to generate a consensus: 4 of 5"));
}

TEST(CurrentProtocolTest, AttackingFourAuthoritiesIsNotEnough) {
  // A majority must be attacked; with only 4 victims the remaining 5
  // authorities have 5 votes and produce a valid consensus.
  Fixture fx;
  AttackWindow attack;
  attack.targets = torattack::FirstTargets(4);
  attack.start = 0;
  attack.end = Minutes(5);
  fx.Build(1000, torattack::kAuthorityLinkBps, {attack});
  const RunResult result = fx.Run();
  EXPECT_TRUE(result.Succeeded());
  for (size_t a = 4; a < 9; ++a) {
    EXPECT_TRUE(result.outcomes[a].valid_consensus) << "authority " << a;
    EXPECT_GE(result.outcomes[a].votes_held, 5u);
  }
}

TEST(CurrentProtocolTest, UniformLowBandwidthBreaksProtocolAtScale) {
  // Figure 10: at 1 Mbit/s even 1,000 relays exceed what the synchrony
  // deadline allows.
  Fixture fx;
  fx.Build(1000, torsim::MegabitsPerSecond(1));
  const RunResult result = fx.Run();
  EXPECT_FALSE(result.Succeeded());
}

TEST(CurrentProtocolTest, UniformModerateBandwidthStillWorksAtModerateScale) {
  Fixture fx;
  fx.Build(2000, torsim::MegabitsPerSecond(10));
  const RunResult result = fx.Run();
  EXPECT_TRUE(result.Succeeded());
  EXPECT_EQ(result.ValidCount(), 9u);
}

TEST(CurrentProtocolTest, FetchRoundRecoversVotesAfterShortAttack) {
  // Attack covers only the first round; fetches in round 2 run at full
  // bandwidth and recover the missing votes.
  Fixture fx;
  AttackWindow attack;
  attack.targets = torattack::FirstTargets(5);
  attack.start = 0;
  attack.end = Seconds(150);
  attack.available_bps = 0.0;  // fully offline during round 1
  fx.Build(500, torattack::kAuthorityLinkBps, {attack});
  const RunResult result = fx.Run();
  EXPECT_TRUE(result.Succeeded());
  EXPECT_EQ(result.ValidCount(), 9u);
  // The fetch round did the recovery: all votes arrived after round 1 ended.
  for (size_t a = 5; a < 9; ++a) {
    EXPECT_GT(result.outcomes[a].all_votes_received_at, Seconds(150));
    EXPECT_LT(result.outcomes[a].all_votes_received_at, Seconds(300));
  }
}

TEST(CurrentProtocolTest, LatencyGrowsWithRelayCount) {
  Fixture small;
  small.Build(500, torsim::MegabitsPerSecond(50));
  const RunResult small_run = small.Run();
  Fixture large;
  large.Build(4000, torsim::MegabitsPerSecond(50));
  const RunResult large_run = large.Run();
  ASSERT_TRUE(small_run.Succeeded());
  ASSERT_TRUE(large_run.Succeeded());
  EXPECT_GT(large_run.outcomes[0].all_votes_received_at,
            small_run.outcomes[0].all_votes_received_at);
}

TEST(CurrentProtocolTest, OutcomeTimestampsConsistent) {
  Fixture fx;
  fx.Build(300, torattack::kAuthorityLinkBps);
  const RunResult result = fx.Run();
  for (const auto& outcome : result.outcomes) {
    ASSERT_TRUE(outcome.valid_consensus);
    // Signatures can only be collected after the compute round begins.
    EXPECT_GE(outcome.finished_at, Seconds(300));
    EXPECT_LT(outcome.finished_at, Seconds(600));
    EXPECT_LE(outcome.all_votes_received_at, outcome.finished_at);
  }
}

}  // namespace
}  // namespace torproto
