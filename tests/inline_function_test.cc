// Unit tests for torbase::InlineFunction: SBO vs. heap fallback, move-only
// captures, relocation and destruction semantics — the properties the
// simulator's zero-allocation event path depends on.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <utility>

#include "src/common/inline_function.h"

namespace torbase {
namespace {

using Callback = InlineFunction<void(), 48>;

TEST(InlineFunctionTest, DefaultConstructedIsEmpty) {
  Callback fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  Callback null_fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(null_fn));
}

TEST(InlineFunctionTest, InvokesSmallCaptureInline) {
  int hits = 0;
  Callback fn = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunctionTest, ReturnsValuesAndTakesArguments) {
  InlineFunction<int(int, int), 48> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFunctionTest, MoveOnlyCaptureWorks) {
  auto value = std::make_unique<int>(41);
  Callback fn = [value = std::move(value)] { ++*value; };
  EXPECT_TRUE(fn.is_inline());
  fn();  // no observable effect; just must not crash or copy
}

TEST(InlineFunctionTest, CaptureAtBufferBoundaryStaysInline) {
  std::array<char, 48> blob{};
  blob[0] = 7;
  Callback fn = [blob] { EXPECT_EQ(blob[0], 7); };
  EXPECT_TRUE(fn.is_inline());
  fn();
}

TEST(InlineFunctionTest, OversizedCaptureFallsBackToHeap) {
  std::array<char, 128> blob{};
  blob[100] = 9;
  Callback fn = [blob] { EXPECT_EQ(blob[100], 9); };
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.is_inline());
  fn();
}

TEST(InlineFunctionTest, MoveTransfersTargetAndEmptiesSource) {
  int hits = 0;
  Callback a = [&hits] { ++hits; };
  Callback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  Callback c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunctionTest, MoveHeapTargetTransfersOwnership) {
  std::array<char, 128> blob{};
  auto counter = std::make_shared<int>(0);
  Callback a = [blob, counter] {
    (void)blob;
    ++*counter;
  };
  EXPECT_FALSE(a.is_inline());
  Callback b = std::move(a);
  b();
  EXPECT_EQ(*counter, 1);
}

struct DtorCounter {
  explicit DtorCounter(int* count) : count(count) {}
  DtorCounter(DtorCounter&& other) noexcept : count(other.count) { other.count = nullptr; }
  DtorCounter(const DtorCounter& other) = default;
  ~DtorCounter() {
    if (count != nullptr) {
      ++*count;
    }
  }
  int* count;
};

TEST(InlineFunctionTest, DestroysCaptureExactlyOnce) {
  int destroyed = 0;
  {
    Callback fn = [guard = DtorCounter(&destroyed)] { (void)guard; };
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineFunctionTest, NullAssignmentDestroysCaptureImmediately) {
  int destroyed = 0;
  Callback fn = [guard = DtorCounter(&destroyed)] { (void)guard; };
  EXPECT_EQ(destroyed, 0);
  fn = nullptr;
  EXPECT_EQ(destroyed, 1);
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunctionTest, SharedPtrCaptureReleasedOnDestroy) {
  auto payload = std::make_shared<std::string>("vote bytes");
  ASSERT_EQ(payload.use_count(), 1);
  {
    Callback fn = [payload] { (void)payload; };
    EXPECT_EQ(payload.use_count(), 2);
  }
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(InlineFunctionTest, MutableLambdaKeepsStateAcrossCalls) {
  InlineFunction<int(), 48> counter = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(counter(), 1);
  EXPECT_EQ(counter(), 2);
  EXPECT_EQ(counter(), 3);
}

}  // namespace
}  // namespace torbase
