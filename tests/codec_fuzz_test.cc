// Seeded mutation fuzzing for the wire codec (src/tordir/dirspec.cc) and the
// admission layer (src/tordir/admission.h). Thousands of deterministic
// byte/line/word mutants of canonical vote and consensus bytes, asserting:
//
//   * ParseVote / ParseConsensus never crash on any mutant;
//   * the canonical relay fast path and the fallback parser agree on
//     accept/reject — and on the parsed document — for every mutant
//     (ParseOptions::use_relay_fast_path is the differential switch);
//   * no accepted vote mutant whose re-serialization differs from its input
//     survives admission (the canonicality check AdmitVote enforces);
//   * every structural mutant (the byzantine malformed-wire generator) is
//     refused at admission — the guarantee the fault injector relies on.
//
// Everything is seed-indexed, so a failure reproduces from the seed printed
// in the assertion message.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/crypto/digest.h"
#include "src/tordir/admission.h"
#include "src/tordir/aggregate.h"
#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"
#include "src/tordir/wire_mutator.h"

namespace tordir {
namespace {

constexpr uint64_t kVoteMutants = 600;
constexpr uint64_t kStructuralMutants = 400;
constexpr uint64_t kConsensusMutants = 400;

PopulationConfig SmallConfig() {
  PopulationConfig config;
  config.relay_count = 40;
  config.seed = 7;
  return config;
}

const std::vector<std::string>& CanonicalVoteTexts() {
  static const std::vector<std::string>* texts = [] {
    const PopulationConfig config = SmallConfig();
    const auto population = GeneratePopulation(config);
    auto* result = new std::vector<std::string>();
    for (torbase::NodeId authority : {0u, 4u, 8u}) {
      result->push_back(SerializeVote(MakeVote(authority, 9, population, config)));
    }
    return result;
  }();
  return *texts;
}

const std::string& CanonicalConsensusText() {
  static const std::string* text = [] {
    const PopulationConfig config = SmallConfig();
    const auto population = GeneratePopulation(config);
    const auto votes = MakeAllVotes(9, population, config);
    std::vector<const VoteDocument*> vote_ptrs;
    for (const auto& vote : votes) {
      vote_ptrs.push_back(&vote);
    }
    return new std::string(SerializeConsensus(ComputeConsensus(vote_ptrs, {})));
  }();
  return *text;
}

// Parses with the canonical relay fast path and with the general fallback;
// asserts both agree on accept/reject and, when accepting, on the document.
// Returns the fast-path result.
torbase::Result<VoteDocument> ParseVoteBothWays(const std::string& text, uint64_t seed) {
  const auto fast = ParseVote(text, ParseOptions{/*use_relay_fast_path=*/true});
  const auto fallback = ParseVote(text, ParseOptions{/*use_relay_fast_path=*/false});
  EXPECT_EQ(fast.ok(), fallback.ok())
      << "fast path and fallback disagree on mutant seed " << seed << ": fast="
      << fast.status().ToString() << " fallback=" << fallback.status().ToString();
  if (fast.ok() && fallback.ok()) {
    EXPECT_TRUE(*fast == *fallback) << "documents differ on mutant seed " << seed;
  }
  return fast;
}

TEST(CodecFuzzTest, CanonicalTextsParseIdenticallyAndRoundTrip) {
  for (const std::string& text : CanonicalVoteTexts()) {
    const auto parsed = ParseVoteBothWays(text, /*seed=*/0);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(SerializeVote(*parsed), text);
  }
  const auto consensus = ParseConsensus(CanonicalConsensusText());
  ASSERT_TRUE(consensus.ok());
  EXPECT_EQ(SerializeConsensus(*consensus), CanonicalConsensusText());
}

TEST(CodecFuzzTest, VoteMutantsNeverCrashAndPathsAgree) {
  uint64_t accepted = 0;
  for (const std::string& text : CanonicalVoteTexts()) {
    for (uint64_t seed = 1; seed <= kVoteMutants; ++seed) {
      const std::string mutant = MutateWire(text, seed);
      const auto parsed = ParseVoteBothWays(mutant, seed);
      if (parsed.ok()) {
        ++accepted;
      }
    }
  }
  // The mutators hit parse-relevant bytes most of the time, but some mutants
  // (duplicated relay lines, trailing garbage after the footer, digit tweaks)
  // legitimately still parse. Both extremes would make this test vacuous.
  EXPECT_GT(accepted, 0u);
  EXPECT_LT(accepted, 3 * kVoteMutants / 2);
}

TEST(CodecFuzzTest, NoNonCanonicalAcceptSurvivesAdmission) {
  // The lenient parser may accept a mutant whose re-serialization differs
  // (silently overwritten duplicate items, ignored trailing content). The
  // admission layer must catch exactly those: an admitted text always
  // re-serializes to its own bytes.
  for (const std::string& text : CanonicalVoteTexts()) {
    const uint64_t period_start = ParseVote(text)->valid_after;
    for (uint64_t seed = 1; seed <= kVoteMutants; ++seed) {
      const std::string mutant = MutateWire(text, seed);
      const auto parsed = ParseVote(mutant);
      if (!parsed.ok()) {
        continue;
      }
      const VoteAdmission admission = AdmitVote(nullptr, mutant, period_start);
      if (admission.status.ok()) {
        EXPECT_EQ(SerializeVote(*admission.document), mutant)
            << "admitted non-canonical mutant, seed " << seed;
      } else {
        // Refused accepts must be refused for a classified reason, not a
        // parser inconsistency: the same text parsed above.
        EXPECT_NE(admission.reason, VoteRejectReason::kMalformed)
            << "parseable mutant classified malformed, seed " << seed;
      }
    }
  }
}

TEST(CodecFuzzTest, StructuralMutantsAreAlwaysRefusedAtAdmission) {
  // MutateWireStructural is the byzantine malformed-wire generator: its
  // guarantee is that *every* structural mutant of a canonical vote is
  // refused at admission (unparseable or non-canonical), so an injected
  // faulty authority is always detectable.
  for (const std::string& text : CanonicalVoteTexts()) {
    const uint64_t period_start = ParseVote(text)->valid_after;
    for (uint64_t seed = 1; seed <= kStructuralMutants; ++seed) {
      const std::string mutant = MutateWireStructural(text, seed);
      ASSERT_NE(mutant, text) << "structural mutator returned the input, seed " << seed;
      ParseVoteBothWays(mutant, seed);  // no-crash + differential agreement
      const VoteAdmission admission = AdmitVote(nullptr, mutant, period_start);
      EXPECT_FALSE(admission.status.ok()) << "structural mutant admitted, seed " << seed;
      EXPECT_NE(admission.reason, VoteRejectReason::kStaleWindow)
          << "structural mutant misclassified as replay, seed " << seed;
    }
  }
}

TEST(CodecFuzzTest, ReplayedVotesAreRefusedWithAStaleWindowStatus) {
  // A byte-identical vote re-sent after its validity window closed must be
  // refused as a replay (specific status), not silently admitted.
  const std::string& text = CanonicalVoteTexts()[0];
  const auto vote = ParseVote(text);
  ASSERT_TRUE(vote.ok());
  const VoteAdmission admission = AdmitVote(nullptr, text, vote->valid_until);
  ASSERT_FALSE(admission.status.ok());
  EXPECT_EQ(admission.reason, VoteRejectReason::kStaleWindow);
  EXPECT_EQ(admission.status.code(), torbase::StatusCode::kFailedPrecondition);
  EXPECT_NE(admission.status.message().find("replayed vote"), std::string::npos);
  // Attribution survives rejection: the document's own author is implicated.
  EXPECT_EQ(admission.author, vote->authority);
}

TEST(CodecFuzzTest, ConsensusMutantsNeverCrashAndPathsAgree) {
  const std::string& text = CanonicalConsensusText();
  uint64_t accepted = 0;
  for (uint64_t seed = 1; seed <= kConsensusMutants; ++seed) {
    const std::string mutant = MutateWire(text, seed);
    const auto fast = ParseConsensus(mutant, ParseOptions{/*use_relay_fast_path=*/true});
    const auto fallback = ParseConsensus(mutant, ParseOptions{/*use_relay_fast_path=*/false});
    EXPECT_EQ(fast.ok(), fallback.ok())
        << "consensus fast path and fallback disagree on mutant seed " << seed;
    if (fast.ok() && fallback.ok()) {
      EXPECT_TRUE(*fast == *fallback) << "consensus documents differ on mutant seed " << seed;
      ++accepted;
    }
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_LT(accepted, kConsensusMutants);
}

}  // namespace
}  // namespace tordir
