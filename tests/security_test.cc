// Security tests across the three protocols:
//
//   * The Luo et al. equivocation attack against the deployed protocol: a
//     single compromised authority sends different votes to different peers
//     and signs both resulting consensus documents, leaving the network split
//     over two *valid* consensuses (why Table 1 marks Current "Insecure").
//   * The Synchronous protocol's Dolev-Strong round defeats the same attack.
//   * The ICPS witness-directed document fetch: nodes that never received a
//     document named by the agreed vector retrieve it from proof witnesses.
//   * Consensus freshness rules and the three-hour availability horizon that
//     turns hourly consensus failures into a full network outage.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/core/digest_vector.h"
#include "src/core/icps_authority.h"
#include "src/protocols/common.h"
#include "src/protocols/current/current_authority.h"
#include "src/protocols/sync/sync_authority.h"
#include "src/sim/actor.h"
#include "src/tordir/aggregate.h"
#include "src/tordir/dirspec.h"
#include "src/tordir/freshness.h"
#include "src/tordir/generator.h"

namespace {

using torbase::NodeId;
using torbase::Seconds;

// Builds a vote set where relay[0]'s Guard flag is set in exactly
// `guard_votes` of the honest votes — the knife-edge the equivocator exploits.
std::vector<tordir::VoteDocument> MakeKnifeEdgeVotes(uint32_t n, uint32_t guard_votes) {
  tordir::PopulationConfig config;
  config.relay_count = 60;
  config.seed = 13;
  tordir::VoteViewConfig view;
  view.p_missing = 0.0;
  view.p_flag_flip = 0.0;
  const auto population = tordir::GeneratePopulation(config);
  auto votes = tordir::MakeAllVotes(n, population, config, view);
  for (uint32_t a = 0; a < n; ++a) {
    votes[a].relays[0].SetFlag(tordir::RelayFlag::kGuard, a < guard_votes + 1 && a != 0);
  }
  return votes;
}

// The compromised authority (id 0) in the *current* protocol: posts vote A
// (Guard set on relay[0]) to one half of the peers and vote B (Guard unset) to
// the other half, then signs whatever consensus digest each half computes.
class EquivocatingCurrentAuthority : public torsim::Actor {
 public:
  EquivocatingCurrentAuthority(const torproto::ProtocolConfig& config,
                               const torcrypto::KeyDirectory* directory,
                               tordir::VoteDocument own_vote)
      : config_(config), directory_(directory), vote_a_(std::move(own_vote)) {
    vote_b_ = vote_a_;
    vote_a_.relays[0].SetFlag(tordir::RelayFlag::kGuard, true);
    vote_b_.relays[0].SetFlag(tordir::RelayFlag::kGuard, false);
  }

  void Start() override {
    // Round 1: equivocate the vote.
    const std::string text_a = tordir::SerializeVote(vote_a_);
    const std::string text_b = tordir::SerializeVote(vote_b_);
    for (NodeId peer = 1; peer < node_count(); ++peer) {
      torbase::Writer w;
      w.WriteU8(1);  // kVotePost
      w.WriteU64(now());
      w.WriteString(peer <= 4 ? text_a : text_b);
      SendTo(peer, "VOTE", w.TakeBuffer());
    }
    // Round 3: compute both consensus variants and sign both digests.
    SetTimer(2 * config_.round_length + torbase::Millis(100), [this] { SignBothForks(); });
  }

  void OnMessage(NodeId from, const torbase::Bytes& payload) override {
    torbase::Reader r(payload);
    auto type = r.ReadU8();
    if (!type.ok() || *type != 1) {
      return;  // only collect honest votes
    }
    auto posted_at = r.ReadU64();
    auto text = r.ReadString();
    if (!posted_at.ok() || !text.ok()) {
      return;
    }
    auto parsed = tordir::ParseVote(*text);
    if (parsed.ok()) {
      honest_votes_.emplace(from, std::move(*parsed));
    }
  }

 private:
  void SignBothForks() {
    const auto signer = directory_->SignerFor(id());
    for (const tordir::VoteDocument* own : {&vote_a_, &vote_b_}) {
      std::vector<const tordir::VoteDocument*> votes;
      votes.push_back(own);
      for (const auto& [author, vote] : honest_votes_) {
        votes.push_back(&vote);
      }
      const auto consensus = tordir::ComputeConsensus(votes, config_.aggregation);
      const auto digest = tordir::ConsensusDigest(consensus);
      const auto sig = signer.Sign(digest.span());
      torbase::Writer w;
      w.WriteU8(4);  // kSigPost
      w.WriteU64(now());
      w.WriteRaw(digest.span());
      w.WriteU32(sig.signer);
      w.WriteRaw(sig.bytes);
      // Vote A went to peers 1..4; its consensus fork gets our signature
      // there, the B fork everywhere else.
      const bool is_a = own == &vote_a_;
      for (NodeId peer = 1; peer < node_count(); ++peer) {
        if ((peer <= 4) == is_a) {
          SendTo(peer, "SIG", w.buffer());
        }
      }
    }
  }

  torproto::ProtocolConfig config_;
  const torcrypto::KeyDirectory* directory_;
  tordir::VoteDocument vote_a_;
  tordir::VoteDocument vote_b_;
  std::map<NodeId, tordir::VoteDocument> honest_votes_;
};

TEST(SecurityTest, CurrentProtocolSplitsUnderEquivocation) {
  // Luo et al.'s attack: one compromised authority, two valid consensuses.
  torproto::ProtocolConfig config;
  auto votes = MakeKnifeEdgeVotes(9, /*guard_votes=*/4);
  torcrypto::KeyDirectory directory(42, 9);

  torsim::NetworkConfig net_config;
  net_config.node_count = 9;
  net_config.default_bandwidth_bps = 250e6;
  net_config.default_latency = torbase::Millis(50);
  torsim::Harness harness(net_config);

  harness.AddActor(std::make_unique<EquivocatingCurrentAuthority>(config, &directory,
                                                                  std::move(votes[0])));
  std::vector<torproto::CurrentAuthority*> honest;
  for (NodeId a = 1; a < 9; ++a) {
    honest.push_back(static_cast<torproto::CurrentAuthority*>(harness.AddActor(
        std::make_unique<torproto::CurrentAuthority>(config, &directory, std::move(votes[a])))));
  }
  harness.StartAll();
  harness.sim().Run();

  // Every honest authority ends up with a *valid* consensus...
  std::set<torcrypto::Digest256> digests;
  for (const auto* authority : honest) {
    ASSERT_TRUE(authority->outcome().valid_consensus);
    EXPECT_TRUE(tordir::ValidateConsensusSignatures(authority->outcome().consensus, directory, 9));
    digests.insert(tordir::ConsensusDigest(authority->outcome().consensus));
  }
  // ...but they are split across two different documents: the equivocation
  // attack succeeded against the deployed protocol.
  EXPECT_EQ(digests.size(), 2u);

  // The forks differ exactly in the Guard flag the attacker straddled.
  const auto& fork_a = honest[0]->outcome().consensus;   // authority 1 (group A)
  const auto& fork_b = honest.back()->outcome().consensus;  // authority 8 (group B)
  ASSERT_FALSE(fork_a.relays.empty());
  EXPECT_NE(fork_a.relays[0].HasFlag(tordir::RelayFlag::kGuard),
            fork_b.relays[0].HasFlag(tordir::RelayFlag::kGuard));
}

// The same equivocation against the Synchronous protocol: the compromised
// authority equivocates its relay list in the propose round but the
// Dolev-Strong round pins a single packed vote, so all honest authorities
// aggregate the same lists.
class EquivocatingSyncProposer : public torsim::Actor {
 public:
  explicit EquivocatingSyncProposer(tordir::VoteDocument vote) : vote_a_(std::move(vote)) {
    vote_b_ = vote_a_;
    vote_a_.relays[0].SetFlag(tordir::RelayFlag::kGuard, true);
    vote_b_.relays[0].SetFlag(tordir::RelayFlag::kGuard, false);
  }
  void Start() override {
    const std::string text_a = tordir::SerializeVote(vote_a_);
    const std::string text_b = tordir::SerializeVote(vote_b_);
    for (NodeId peer = 0; peer < node_count(); ++peer) {
      if (peer == id()) {
        continue;
      }
      torbase::Writer w;
      w.WriteU8(1);  // kProposePost
      w.WriteString(peer % 2 == 0 ? text_a : text_b);
      SendTo(peer, "SYNC_PROPOSE", w.TakeBuffer());
    }
  }
  void OnMessage(NodeId, const torbase::Bytes&) override {}

 private:
  tordir::VoteDocument vote_a_;
  tordir::VoteDocument vote_b_;
};

TEST(SecurityTest, SynchronousProtocolResistsVoteEquivocation) {
  torproto::ProtocolConfig config;
  auto votes = MakeKnifeEdgeVotes(9, /*guard_votes=*/4);
  torcrypto::KeyDirectory directory(42, 9);

  torsim::NetworkConfig net_config;
  net_config.node_count = 9;
  net_config.default_bandwidth_bps = 250e6;
  net_config.default_latency = torbase::Millis(50);
  torsim::Harness harness(net_config);

  // The equivocator is authority 3 (not the designated Dolev-Strong sender).
  std::vector<torproto::SyncAuthority*> honest;
  for (NodeId a = 0; a < 9; ++a) {
    if (a == 3) {
      harness.AddActor(std::make_unique<EquivocatingSyncProposer>(std::move(votes[a])));
    } else {
      honest.push_back(static_cast<torproto::SyncAuthority*>(harness.AddActor(
          std::make_unique<torproto::SyncAuthority>(config, &directory, std::move(votes[a])))));
    }
  }
  harness.StartAll();
  harness.sim().Run();

  std::set<torcrypto::Digest256> digests;
  for (const auto* authority : honest) {
    ASSERT_TRUE(authority->outcome().valid_consensus);
    digests.insert(tordir::ConsensusDigest(authority->outcome().consensus));
  }
  // One agreed packed vote -> one consensus document.
  EXPECT_EQ(digests.size(), 1u);
}

// A disseminator that sends its (single, honestly signed) document to only a
// subset of peers and otherwise stays silent — the scenario where the ICPS
// aggregation phase must fetch the document from proof witnesses.
class SelectiveDisseminator : public torsim::Actor {
 public:
  SelectiveDisseminator(const torcrypto::KeyDirectory* directory, tordir::VoteDocument vote,
                        std::set<NodeId> recipients)
      : directory_(directory), vote_(std::move(vote)), recipients_(std::move(recipients)) {}

  void Start() override {
    const std::string text = tordir::SerializeVote(vote_);
    const auto digest = torcrypto::Digest256::Of(text);
    const auto sig = directory_->SignerFor(id()).Sign(toricc::EntryPayload(id(), digest));
    for (NodeId peer : recipients_) {
      torbase::Writer w;
      w.WriteU8(0x10);  // kDocument
      w.WriteString(text);
      w.WriteRaw(digest.span());
      w.WriteU32(sig.signer);
      w.WriteRaw(sig.bytes);
      SendTo(peer, "DOCUMENT", w.TakeBuffer());
    }
  }
  void OnMessage(NodeId, const torbase::Bytes&) override {}

 private:
  const torcrypto::KeyDirectory* directory_;
  tordir::VoteDocument vote_;
  std::set<NodeId> recipients_;
};

TEST(SecurityTest, IcpsFetchesWithheldDocumentsFromWitnesses) {
  toricc::IcpsConfig config;
  config.dissemination_timeout = Seconds(30);
  tordir::PopulationConfig pop_config;
  pop_config.relay_count = 150;
  pop_config.seed = 21;
  const auto population = tordir::GeneratePopulation(pop_config);
  auto votes = tordir::MakeAllVotes(9, population, pop_config);
  torcrypto::KeyDirectory directory(42, 9);

  torsim::NetworkConfig net_config;
  net_config.node_count = 9;
  net_config.default_bandwidth_bps = 250e6;
  net_config.default_latency = torbase::Millis(50);
  torsim::Harness harness(net_config);

  // Node 2 sends its document only to nodes 0..5: nodes 6-8 never see it
  // during dissemination, yet f+1 witnesses prove it exists.
  std::vector<toricc::IcpsAuthority*> honest;
  for (NodeId a = 0; a < 9; ++a) {
    if (a == 2) {
      harness.AddActor(std::make_unique<SelectiveDisseminator>(&directory, std::move(votes[a]),
                                                               std::set<NodeId>{0, 1, 3, 4, 5}));
    } else {
      honest.push_back(static_cast<toricc::IcpsAuthority*>(harness.AddActor(
          std::make_unique<toricc::IcpsAuthority>(config, &directory, std::move(votes[a])))));
    }
  }
  harness.StartAll();
  harness.sim().Run();

  std::set<torcrypto::Digest256> digests;
  for (const auto* authority : honest) {
    ASSERT_TRUE(authority->outcome().decided);
    ASSERT_TRUE(authority->outcome().valid_consensus);
    digests.insert(tordir::ConsensusDigest(authority->outcome().consensus));
  }
  EXPECT_EQ(digests.size(), 1u);
}

// --- freshness / availability ------------------------------------------------

TEST(FreshnessTest, LifecycleStates) {
  tordir::ConsensusDocument consensus;
  consensus.valid_after = 1000;
  consensus.fresh_until = 1000 + 3600;
  consensus.valid_until = 1000 + 3 * 3600;
  EXPECT_EQ(tordir::EvaluateFreshness(consensus, 1500), tordir::ConsensusFreshness::kFresh);
  EXPECT_EQ(tordir::EvaluateFreshness(consensus, 1000 + 3600),
            tordir::ConsensusFreshness::kStale);
  EXPECT_EQ(tordir::EvaluateFreshness(consensus, 1000 + 3 * 3600),
            tordir::ConsensusFreshness::kInvalid);
  EXPECT_STREQ(tordir::FreshnessName(tordir::ConsensusFreshness::kStale), "stale");
}

TEST(FreshnessTest, SignatureValidationThreshold) {
  torcrypto::KeyDirectory directory(42, 9);
  tordir::ConsensusDocument consensus;
  consensus.valid_after = 1;
  const auto digest = tordir::ConsensusDigest(consensus);
  for (NodeId a = 0; a < 4; ++a) {
    consensus.signatures.push_back(directory.SignerFor(a).Sign(digest.span()));
  }
  EXPECT_FALSE(tordir::ValidateConsensusSignatures(consensus, directory, 9));  // 4 < 5
  consensus.signatures.push_back(directory.SignerFor(4).Sign(digest.span()));
  EXPECT_TRUE(tordir::ValidateConsensusSignatures(consensus, directory, 9));
  // Duplicate signers do not help.
  tordir::ConsensusDocument dup = consensus;
  dup.signatures.assign(5, consensus.signatures[0]);
  EXPECT_FALSE(tordir::ValidateConsensusSignatures(dup, directory, 9));
  // A single bad signature taints the document.
  tordir::ConsensusDocument tainted = consensus;
  tainted.signatures[2].bytes[0] ^= 1;
  EXPECT_FALSE(tordir::ValidateConsensusSignatures(tainted, directory, 9));
}

TEST(FreshnessTest, ThreeFailedRunsTakeTheNetworkDown) {
  // The paper's §2.1 arithmetic: an hourly 5-minute attack fails every run;
  // the last pre-attack consensus carries clients for 3 hours, then the
  // network is down until a run succeeds again.
  std::vector<bool> runs = {true, false, false, false, false, false, true, true};
  const auto timeline = tordir::AnalyzeAvailability(runs);
  ASSERT_TRUE(timeline.first_down_hour.has_value());
  EXPECT_EQ(*timeline.first_down_hour, 3u);  // hours 0-2 covered by run 0
  EXPECT_EQ(timeline.hours_down, 3u);        // hours 3,4,5; run at hour 6 restores
  EXPECT_TRUE(timeline.network_up[6]);
  EXPECT_TRUE(timeline.network_up[7]);
}

TEST(FreshnessTest, SingleFailureIsAbsorbedByValidityWindow) {
  std::vector<bool> runs = {true, false, true, false, false, true};
  const auto timeline = tordir::AnalyzeAvailability(runs);
  EXPECT_FALSE(timeline.first_down_hour.has_value());
  EXPECT_EQ(timeline.hours_down, 0u);
}

}  // namespace
