// Unit tests for src/crypto: SHA-256 against FIPS 180-4 / NIST vectors,
// HMAC-SHA256 against RFC 4231 vectors, Digest256 semantics and the simulated
// signature scheme's unforgeability-by-construction properties.
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/thread_pool.h"
#include "src/crypto/digest.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sha256_batch.h"
#include "src/crypto/sha256_tree.h"
#include "src/crypto/signature.h"

namespace torcrypto {
namespace {

using torbase::Bytes;
using torbase::HexDecode;
using torbase::HexEncode;

std::string HashHex(std::string_view input) { return HexEncode(Sha256Digest(input)); }

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HashHex(""), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HashHex("abc"), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, FourBlockMessage) {
  EXPECT_EQ(HashHex("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
                    "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    ctx.Update(chunk);
  }
  EXPECT_EQ(HexEncode(ctx.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 ctx;
    ctx.Update(std::string_view(msg).substr(0, split));
    ctx.Update(std::string_view(msg).substr(split));
    EXPECT_EQ(ctx.Finish(), Sha256Digest(msg)) << "split at " << split;
  }
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 ctx;
  ctx.Update(std::string_view("garbage"));
  ctx.Finish();
  ctx.Reset();
  ctx.Update(std::string_view("abc"));
  EXPECT_EQ(HexEncode(ctx.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding boundaries exercise the two-block
  // padding path. Compare the incremental API against itself at different
  // chunkings (self-consistency) plus a known 56-byte vector above.
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 a;
    a.Update(msg);
    Sha256 b;
    for (char c : msg) {
      b.Update(std::string_view(&c, 1));
    }
    EXPECT_EQ(a.Finish(), b.Finish()) << "len " << len;
  }
}

// Long-message vectors in the NIST long-message style (many blocks, lengths
// straddling the 64 KiB tree-leaf boundary). Expected digests were produced by
// an independent SHA-256 implementation (Python hashlib), not by this code.
std::string PatternMessage(size_t length) {
  std::string msg(length, '\0');
  for (size_t i = 0; i < length; ++i) {
    msg[i] = static_cast<char>((i * 7 + 3) & 0xFF);
  }
  return msg;
}

TEST(Sha256Test, LongMessages) {
  std::string l640;
  for (int i = 0; i < 80; ++i) l640 += "01234567";
  EXPECT_EQ(HashHex(l640), "594847328451bdfa85056225462cc1d867d877fb388df0ce35f25ab5562bfbb5");

  std::string l6400;
  for (int i = 0; i < 640; ++i) l6400 += "0123456789";
  EXPECT_EQ(HashHex(l6400), "abc1f6fb6106a253b34353c0122acf3355a2a1d26de96a51d0ac5c70d5b823d3");

  EXPECT_EQ(HashHex(std::string(100000, 'U')),
            "a8b8158fe9e60f80fd17d6915e86375266fb887dd33fbf408fd98dd4e9b5c463");

  EXPECT_EQ(HashHex(PatternMessage(3 * 65536 + 17)),
            "1695ce0b52d8faf8912dcfb2b13a287d11bec857415b99ff64adee24de04f4b4");
}

// Every chunking of a 3-block (192-byte) message: all two-Update splits, all
// three-Update splits, and every fixed chunk size. Pins the buffered/streaming
// boundary — exactly what a bulk-block compression refactor can silently
// break for inputs that arrive in awkward pieces.
TEST(Sha256Test, EveryChunkingOfThreeBlockMessage) {
  const std::string msg = PatternMessage(192);
  const auto expected = Sha256Digest(msg);
  const std::string_view view(msg);

  for (size_t i = 0; i <= msg.size(); ++i) {
    for (size_t j = i; j <= msg.size(); ++j) {
      Sha256 ctx;
      ctx.Update(view.substr(0, i));
      ctx.Update(view.substr(i, j - i));
      ctx.Update(view.substr(j));
      ASSERT_EQ(ctx.Finish(), expected) << "splits at " << i << "," << j;
    }
  }
  for (size_t chunk = 1; chunk <= msg.size(); ++chunk) {
    Sha256 ctx;
    for (size_t at = 0; at < msg.size(); at += chunk) {
      ctx.Update(view.substr(at, chunk));
    }
    ASSERT_EQ(ctx.Finish(), expected) << "chunk size " << chunk;
  }
}

// Every core the CPU supports must be byte-identical to scalar on all the
// boundary-exercising lengths (dispatch must be invisible).
TEST(Sha256Test, BackendsAreByteIdenticalToScalar) {
  std::vector<std::string> messages = {"", "abc", PatternMessage(192)};
  for (size_t len : {1u, 55u, 56u, 63u, 64u, 65u, 127u, 128u, 1000u, 100000u}) {
    messages.push_back(PatternMessage(len));
  }
  for (const Sha256Backend backend : {Sha256Backend::kShaNi, Sha256Backend::kAvx2x8}) {
    if (!Sha256BackendSupported(backend)) {
      GTEST_LOG_(INFO) << "skipping unsupported backend " << Sha256BackendName(backend);
      continue;
    }
    for (const auto& msg : messages) {
      EXPECT_EQ(Sha256DigestForBackend(backend, msg),
                Sha256DigestForBackend(Sha256Backend::kScalar, msg))
          << Sha256BackendName(backend) << " len " << msg.size();
    }
  }
}

TEST(Sha256Test, ActiveBackendIsSupported) {
  EXPECT_TRUE(Sha256BackendSupported(ActiveSha256Backend()));
  EXPECT_TRUE(Sha256BackendSupported(ActiveSha256BatchBackend()));
#ifdef TORCRYPTO_FORCE_SCALAR
  EXPECT_EQ(ActiveSha256Backend(), Sha256Backend::kScalar);
  EXPECT_EQ(ActiveSha256BatchBackend(), Sha256Backend::kScalar);
#endif
}

#if defined(GTEST_HAS_DEATH_TEST) && !defined(NDEBUG)
TEST(Sha256DeathTest, UpdateAfterFinishAsserts) {
  Sha256 ctx;
  ctx.Update(std::string_view("abc"));
  ctx.Finish();
  EXPECT_DEATH(ctx.Update(std::string_view("more")), "Finish");
}

TEST(Sha256DeathTest, DoubleFinishAsserts) {
  Sha256 ctx;
  ctx.Update(std::string_view("abc"));
  ctx.Finish();
  EXPECT_DEATH(ctx.Finish(), "Finish");
}
#endif  // GTEST_HAS_DEATH_TEST && !NDEBUG

// --- Sha256Batch -----------------------------------------------------------

// Lengths around every interesting boundary: empty, sub-block, block-aligned,
// the batch's 8-lane group size, and lengths forcing unequal per-lane tails.
std::vector<std::string> BatchMessages() {
  std::vector<std::string> messages;
  for (size_t len : {0u, 1u, 3u, 55u, 63u, 64u, 65u, 127u, 128u, 192u, 1000u, 4096u, 10000u}) {
    messages.push_back(PatternMessage(len));
  }
  for (size_t i = 0; i < 9; ++i) {  // spill past one 8-lane group
    messages.push_back(PatternMessage(100 + i * 37));
  }
  return messages;
}

TEST(Sha256BatchTest, MatchesPerMessageDigests) {
  const auto messages = BatchMessages();
  Sha256Batch batch;
  for (const auto& msg : messages) {
    batch.Add(std::string_view(msg));
  }
  const auto digests = batch.Finish();
  ASSERT_EQ(digests.size(), messages.size());
  for (size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(digests[i], Sha256Digest(messages[i])) << "message " << i;
  }
  EXPECT_EQ(batch.size(), 0u);  // Finish clears for reuse
}

TEST(Sha256BatchTest, AllBackendsMatchScalar) {
  const auto messages = BatchMessages();
  for (const Sha256Backend backend :
       {Sha256Backend::kScalar, Sha256Backend::kShaNi, Sha256Backend::kAvx2x8}) {
    if (!Sha256BackendSupported(backend)) {
      GTEST_LOG_(INFO) << "skipping unsupported backend " << Sha256BackendName(backend);
      continue;
    }
    Sha256Batch batch(backend);
    for (const auto& msg : messages) {
      batch.Add(std::string_view(msg));
    }
    const auto digests = batch.Finish();
    ASSERT_EQ(digests.size(), messages.size());
    for (size_t i = 0; i < messages.size(); ++i) {
      EXPECT_EQ(digests[i], Sha256Digest(messages[i]))
          << Sha256BackendName(backend) << " message " << i;
    }
  }
}

TEST(Sha256BatchTest, EmptyBatchAndReuse) {
  Sha256Batch batch;
  EXPECT_TRUE(batch.Finish().empty());
  batch.Add(std::string_view("abc"));
  const auto digests = batch.Finish();
  ASSERT_EQ(digests.size(), 1u);
  EXPECT_EQ(HexEncode(digests[0]),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// --- tree digests ----------------------------------------------------------

// Roots for the fixed "sha256-tree-v1" shape, computed by an independent
// implementation of the documented construction (Python hashlib). These pin
// the tree's wire definition: leaf size, domain tag, LE64 length, fold order.
TEST(Sha256TreeTest, GoldenRoots) {
  EXPECT_EQ(HexEncode(Sha256TreeDigest(std::string_view(""))),
            "a7f232ba390d03aa4675c687bef1894b5343c61856d8a1346511659c79995c94");
  EXPECT_EQ(HexEncode(Sha256TreeDigest(std::string_view("abc"))),
            "913796a3b57b26ec4abe572be5b741e8c5f99a790764668fb1de7828c9ec9d66");
  EXPECT_EQ(HexEncode(Sha256TreeDigest(std::string_view(PatternMessage(3 * 65536 + 17)))),
            "5835605122b70e8b370c40e8dda5d93b83c1d16688daff5914bf807303e2f681");
}

TEST(Sha256TreeTest, TreeRootDiffersFromPlainDigest) {
  const std::string msg = "abc";
  EXPECT_NE(Sha256TreeDigest(std::string_view(msg)), Sha256Digest(msg));
}

TEST(Sha256TreeTest, StreamingMatchesOneShotAtAwkwardChunkings) {
  const std::string msg = PatternMessage(2 * 65536 + 12345);
  const auto expected = Sha256TreeDigest(std::string_view(msg));
  for (size_t chunk : {1u, 7u, 64u, 1000u, 65535u, 65536u, 65537u, 200000u}) {
    Sha256TreeHasher hasher;
    for (size_t at = 0; at < msg.size(); at += chunk) {
      hasher.Update(std::string_view(msg).substr(at, chunk));
    }
    ASSERT_EQ(hasher.Finish(), expected) << "chunk " << chunk;
  }
}

TEST(Sha256TreeTest, BitIdenticalAcrossThreadCounts) {
  const std::string msg = PatternMessage(5 * 65536 + 999);
  const auto serial = Sha256TreeDigest(std::string_view(msg));
  for (const unsigned threads : {1u, 2u, 8u}) {
    torbase::ThreadPool pool(threads);
    EXPECT_EQ(Sha256TreeDigest(std::string_view(msg), &pool), serial)
        << threads << " threads";
  }
}

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const std::string data = "Hi There";
  const auto mac = HmacSha256(key, torbase::BytesOfString(data));
  EXPECT_EQ(HexEncode(mac), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const Bytes key = torbase::BytesOfString("Jefe");
  const std::string data = "what do ya want for nothing?";
  const auto mac = HmacSha256(key, torbase::BytesOfString(data));
  EXPECT_EQ(HexEncode(mac), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  const auto mac = HmacSha256(key, data);
  EXPECT_EQ(HexEncode(mac), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  const auto mac = HmacSha256(key, torbase::BytesOfString(data));
  EXPECT_EQ(HexEncode(mac), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(DigestTest, OfStringMatchesSha) {
  const auto d = Digest256::Of("abc");
  EXPECT_EQ(d.ToHex(), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(d.ShortHex(), "ba7816bf");
}

TEST(DigestTest, DefaultIsZero) {
  Digest256 d;
  EXPECT_TRUE(d.IsZero());
  EXPECT_FALSE(Digest256::Of("x").IsZero());
}

TEST(DigestTest, OrderingAndEquality) {
  const auto a = Digest256::Of("a");
  const auto b = Digest256::Of("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Digest256::Of("a"));
  EXPECT_TRUE(a < b || b < a);
}

TEST(DigestTest, UsableInHashSet) {
  std::unordered_set<Digest256> set;
  set.insert(Digest256::Of("x"));
  set.insert(Digest256::Of("y"));
  set.insert(Digest256::Of("x"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Digest256::Of("y")) > 0);
}

class SignatureTest : public ::testing::Test {
 protected:
  KeyDirectory directory_{/*seed=*/42, /*node_count=*/9};
};

TEST_F(SignatureTest, SignVerifyRoundTrip) {
  const Signer signer = directory_.SignerFor(3);
  const Signature sig = signer.Sign(std::string("vote digest"));
  EXPECT_EQ(sig.signer, 3u);
  EXPECT_TRUE(directory_.Verify(std::string("vote digest"), sig));
}

TEST_F(SignatureTest, RejectsTamperedMessage) {
  const Signature sig = directory_.SignerFor(0).Sign(std::string("original"));
  EXPECT_FALSE(directory_.Verify(std::string("tampered"), sig));
}

TEST_F(SignatureTest, RejectsWrongClaimedSigner) {
  Signature sig = directory_.SignerFor(1).Sign(std::string("msg"));
  sig.signer = 2;  // claim someone else authored it
  EXPECT_FALSE(directory_.Verify(std::string("msg"), sig));
}

TEST_F(SignatureTest, RejectsFlippedBit) {
  Signature sig = directory_.SignerFor(4).Sign(std::string("msg"));
  sig.bytes[10] ^= 0x01;
  EXPECT_FALSE(directory_.Verify(std::string("msg"), sig));
}

TEST_F(SignatureTest, RejectsOutOfRangeSigner) {
  Signature sig = directory_.SignerFor(0).Sign(std::string("msg"));
  sig.signer = 99;
  EXPECT_FALSE(directory_.Verify(std::string("msg"), sig));
}

TEST_F(SignatureTest, DistinctNodesProduceDistinctSignatures) {
  const Signature a = directory_.SignerFor(0).Sign(std::string("msg"));
  const Signature b = directory_.SignerFor(1).Sign(std::string("msg"));
  EXPECT_NE(a.bytes, b.bytes);
}

TEST_F(SignatureTest, DeterministicAcrossDirectoryInstances) {
  KeyDirectory other(/*seed=*/42, /*node_count=*/9);
  const Signature a = directory_.SignerFor(5).Sign(std::string("msg"));
  const Signature b = other.SignerFor(5).Sign(std::string("msg"));
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_TRUE(other.Verify(std::string("msg"), a));
}

TEST_F(SignatureTest, DifferentSeedsProduceIncompatibleKeys) {
  KeyDirectory other(/*seed=*/43, /*node_count=*/9);
  const Signature sig = directory_.SignerFor(5).Sign(std::string("msg"));
  EXPECT_FALSE(other.Verify(std::string("msg"), sig));
}

}  // namespace
}  // namespace torcrypto
