// Unit tests for src/crypto: SHA-256 against FIPS 180-4 / NIST vectors,
// HMAC-SHA256 against RFC 4231 vectors, Digest256 semantics and the simulated
// signature scheme's unforgeability-by-construction properties.
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

#include "src/common/bytes.h"
#include "src/crypto/digest.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha256.h"
#include "src/crypto/signature.h"

namespace torcrypto {
namespace {

using torbase::Bytes;
using torbase::HexDecode;
using torbase::HexEncode;

std::string HashHex(std::string_view input) { return HexEncode(Sha256Digest(input)); }

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HashHex(""), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HashHex("abc"), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, FourBlockMessage) {
  EXPECT_EQ(HashHex("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
                    "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    ctx.Update(chunk);
  }
  EXPECT_EQ(HexEncode(ctx.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 ctx;
    ctx.Update(std::string_view(msg).substr(0, split));
    ctx.Update(std::string_view(msg).substr(split));
    EXPECT_EQ(ctx.Finish(), Sha256Digest(msg)) << "split at " << split;
  }
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 ctx;
  ctx.Update(std::string_view("garbage"));
  ctx.Finish();
  ctx.Reset();
  ctx.Update(std::string_view("abc"));
  EXPECT_EQ(HexEncode(ctx.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding boundaries exercise the two-block
  // padding path. Compare the incremental API against itself at different
  // chunkings (self-consistency) plus a known 56-byte vector above.
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 a;
    a.Update(msg);
    Sha256 b;
    for (char c : msg) {
      b.Update(std::string_view(&c, 1));
    }
    EXPECT_EQ(a.Finish(), b.Finish()) << "len " << len;
  }
}

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const std::string data = "Hi There";
  const auto mac = HmacSha256(key, torbase::BytesOfString(data));
  EXPECT_EQ(HexEncode(mac), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const Bytes key = torbase::BytesOfString("Jefe");
  const std::string data = "what do ya want for nothing?";
  const auto mac = HmacSha256(key, torbase::BytesOfString(data));
  EXPECT_EQ(HexEncode(mac), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  const auto mac = HmacSha256(key, data);
  EXPECT_EQ(HexEncode(mac), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  const auto mac = HmacSha256(key, torbase::BytesOfString(data));
  EXPECT_EQ(HexEncode(mac), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(DigestTest, OfStringMatchesSha) {
  const auto d = Digest256::Of("abc");
  EXPECT_EQ(d.ToHex(), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(d.ShortHex(), "ba7816bf");
}

TEST(DigestTest, DefaultIsZero) {
  Digest256 d;
  EXPECT_TRUE(d.IsZero());
  EXPECT_FALSE(Digest256::Of("x").IsZero());
}

TEST(DigestTest, OrderingAndEquality) {
  const auto a = Digest256::Of("a");
  const auto b = Digest256::Of("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Digest256::Of("a"));
  EXPECT_TRUE(a < b || b < a);
}

TEST(DigestTest, UsableInHashSet) {
  std::unordered_set<Digest256> set;
  set.insert(Digest256::Of("x"));
  set.insert(Digest256::Of("y"));
  set.insert(Digest256::Of("x"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Digest256::Of("y")) > 0);
}

class SignatureTest : public ::testing::Test {
 protected:
  KeyDirectory directory_{/*seed=*/42, /*node_count=*/9};
};

TEST_F(SignatureTest, SignVerifyRoundTrip) {
  const Signer signer = directory_.SignerFor(3);
  const Signature sig = signer.Sign(std::string("vote digest"));
  EXPECT_EQ(sig.signer, 3u);
  EXPECT_TRUE(directory_.Verify(std::string("vote digest"), sig));
}

TEST_F(SignatureTest, RejectsTamperedMessage) {
  const Signature sig = directory_.SignerFor(0).Sign(std::string("original"));
  EXPECT_FALSE(directory_.Verify(std::string("tampered"), sig));
}

TEST_F(SignatureTest, RejectsWrongClaimedSigner) {
  Signature sig = directory_.SignerFor(1).Sign(std::string("msg"));
  sig.signer = 2;  // claim someone else authored it
  EXPECT_FALSE(directory_.Verify(std::string("msg"), sig));
}

TEST_F(SignatureTest, RejectsFlippedBit) {
  Signature sig = directory_.SignerFor(4).Sign(std::string("msg"));
  sig.bytes[10] ^= 0x01;
  EXPECT_FALSE(directory_.Verify(std::string("msg"), sig));
}

TEST_F(SignatureTest, RejectsOutOfRangeSigner) {
  Signature sig = directory_.SignerFor(0).Sign(std::string("msg"));
  sig.signer = 99;
  EXPECT_FALSE(directory_.Verify(std::string("msg"), sig));
}

TEST_F(SignatureTest, DistinctNodesProduceDistinctSignatures) {
  const Signature a = directory_.SignerFor(0).Sign(std::string("msg"));
  const Signature b = directory_.SignerFor(1).Sign(std::string("msg"));
  EXPECT_NE(a.bytes, b.bytes);
}

TEST_F(SignatureTest, DeterministicAcrossDirectoryInstances) {
  KeyDirectory other(/*seed=*/42, /*node_count=*/9);
  const Signature a = directory_.SignerFor(5).Sign(std::string("msg"));
  const Signature b = other.SignerFor(5).Sign(std::string("msg"));
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_TRUE(other.Verify(std::string("msg"), a));
}

TEST_F(SignatureTest, DifferentSeedsProduceIncompatibleKeys) {
  KeyDirectory other(/*seed=*/43, /*node_count=*/9);
  const Signature sig = directory_.SignerFor(5).Sign(std::string("msg"));
  EXPECT_FALSE(other.Verify(std::string("msg"), sig));
}

}  // namespace
}  // namespace torcrypto
