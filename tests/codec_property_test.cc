// Malformed-input properties for the single-pass wire codec. The parser was
// rewritten from a line-vector prefix chain to a cursor tokenizer with a
// strict canonical fast path; these tests pin the accept/reject behaviour
// (and the exact Status messages) of the pre-rewrite parser so the rewrite is
// observationally identical: truncations at every line boundary, bad hex
// digests, overlong word counts, missing footers, junk after signatures, and
// non-canonical-but-valid spacings that must fall back to the general path
// and still parse to the same document.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"

namespace tordir {
namespace {

VoteDocument SmallVote(size_t relays = 5) {
  PopulationConfig config;
  config.relay_count = relays;
  config.seed = 11;
  const auto population = GeneratePopulation(config);
  return MakeVote(0, 9, population, config);
}

std::vector<size_t> LineStarts(const std::string& text) {
  std::vector<size_t> starts{0};
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n' && i + 1 < text.size()) {
      starts.push_back(i + 1);
    }
  }
  return starts;
}

TEST(CodecPropertyTest, TruncationAtEveryLineBoundaryFailsCleanly) {
  const std::string text = SerializeVote(SmallVote());
  // Cutting the document at any line start (and just after any newline)
  // removes the footer or tears a relay entry: every prefix must be rejected,
  // and the full text accepted.
  for (const size_t start : LineStarts(text)) {
    if (start == 0) {
      EXPECT_FALSE(ParseVote(std::string()).ok());
      continue;
    }
    const auto result = ParseVote(text.substr(0, start));
    EXPECT_FALSE(result.ok()) << "prefix of " << start << " bytes parsed";
    EXPECT_EQ(result.status().code(), torbase::StatusCode::kInvalidArgument);
  }
  EXPECT_TRUE(ParseVote(text).ok());
}

TEST(CodecPropertyTest, TruncationMidLineFailsCleanly) {
  const std::string text = SerializeVote(SmallVote());
  // Cuts that land inside a line produce either a torn word or a missing
  // footer; never a crash, never an accept.
  for (size_t cut = 1; cut + 1 < text.size(); cut += 97) {
    EXPECT_FALSE(ParseVote(text.substr(0, cut)).ok()) << "cut at " << cut;
  }
}

TEST(CodecPropertyTest, BadHexDigestsAreRejectedWithTheHistoricalMessages) {
  const std::string text = SerializeVote(SmallVote());

  // Corrupt one fingerprint character ('G' is not hex).
  {
    std::string bad = text;
    const size_t r_pos = bad.find("\nr ");
    const size_t fp_pos = bad.find(' ', bad.find(' ', r_pos + 1) + 1) + 1;
    bad[fp_pos] = 'G';
    const auto result = ParseVote(bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message().substr(0, 16), "bad fingerprint:");
  }

  // Corrupt a microdesc digest character.
  {
    std::string bad = text;
    const size_t m_pos = bad.find("\nm ");
    bad[m_pos + 3] = 'x';
    const auto result = ParseVote(bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(), "bad microdesc digest");
  }

  // Odd-length digest (drop one hex char).
  {
    std::string bad = text;
    const size_t m_pos = bad.find("\nm ");
    bad.erase(m_pos + 3, 1);
    const auto result = ParseVote(bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(), "bad microdesc digest");
  }
}

TEST(CodecPropertyTest, OverlongWordCountsAreRejected) {
  const std::string text = SerializeVote(SmallVote());

  // A ninth word on an r line.
  {
    std::string bad = text;
    const size_t r_end = bad.find('\n', bad.find("\nr ") + 1);
    bad.insert(r_end, " extra");
    const auto result = ParseVote(bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message().substr(0, 17), "malformed r line:");
  }

  // A fourth word on the authority line.
  {
    std::string bad = text;
    const size_t line_end = bad.find('\n', bad.find("authority "));
    bad.insert(line_end, " extra");
    const auto result = ParseVote(bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(), "malformed authority line");
  }

  // Unknown flag words on the s line.
  {
    std::string bad = text;
    const size_t s_pos = bad.find("\ns ");
    bad.insert(s_pos + 3, "Bogus ");
    const auto result = ParseVote(bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(), "unknown flag: Bogus");
  }
}

TEST(CodecPropertyTest, MissingFooterIsRejected) {
  std::string text = SerializeVote(SmallVote());
  text.resize(text.size() - std::string("directory-footer\n").size());
  const auto result = ParseVote(text);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "missing directory-footer");
}

TEST(CodecPropertyTest, VoteIgnoresTrailingJunkAfterFooterConsensusDoesNot) {
  // Historical asymmetry, pinned: the vote parser stops at the footer (junk
  // after it is unreachable), while the consensus parser validates the
  // signature section to the end.
  const std::string vote_text = SerializeVote(SmallVote()) + "garbage trailing line\n";
  EXPECT_TRUE(ParseVote(vote_text).ok());

  ConsensusDocument consensus;
  consensus.vote_count = 3;
  consensus.relays = SmallVote().relays;
  torcrypto::Signature sig;
  sig.signer = 2;
  consensus.signatures.push_back(sig);
  const std::string consensus_text = SerializeConsensus(consensus);
  EXPECT_TRUE(ParseConsensus(consensus_text).ok());

  {
    const auto result = ParseConsensus(consensus_text + "garbage trailing line\n");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(), "unexpected line after footer: garbage trailing line");
  }
  {
    // A malformed signature line after valid ones.
    const auto result = ParseConsensus(consensus_text + "directory-signature 9\n");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(), "malformed directory-signature line");
  }
  {
    // Well-formed line, bad signature bytes.
    const auto result = ParseConsensus(consensus_text + "directory-signature 9 abcd\n");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(), "bad signature encoding");
  }
  {
    // Blank lines between signatures stay legal.
    std::string spaced = consensus_text;
    const size_t sig_pos = spaced.find("directory-signature");
    spaced.insert(sig_pos, "\n");
    EXPECT_TRUE(ParseConsensus(spaced).ok());
  }
}

TEST(CodecPropertyTest, NonCanonicalSpacingFallsBackAndParsesIdentically) {
  // The strict fast path only accepts the serializer's exact byte shape; any
  // deviation must take the general path and still produce the same document.
  const VoteDocument vote = SmallVote();
  const std::string text = SerializeVote(vote);
  const auto canonical = ParseVote(text);
  ASSERT_TRUE(canonical.ok());
  ASSERT_EQ(*canonical, vote);

  // Double the space after "r" on every r line (general path, same words).
  {
    std::string spaced = text;
    for (size_t pos = spaced.find("\nr "); pos != std::string::npos;
         pos = spaced.find("\nr ", pos + 3)) {
      spaced.insert(pos + 2, " ");
    }
    const auto parsed = ParseVote(spaced);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, vote);
  }

  // Reorder a relay's item lines (p before w): legal for the general parser,
  // impossible for the fast path.
  {
    std::string reordered = text;
    const size_t w_pos = reordered.find("\nw ");
    const size_t p_pos = reordered.find("\np ", w_pos);
    const size_t m_pos = reordered.find("\nm ", p_pos);
    const std::string w_line = reordered.substr(w_pos + 1, p_pos - w_pos);
    const std::string p_line = reordered.substr(p_pos + 1, m_pos - p_pos);
    reordered.replace(w_pos + 1, m_pos - w_pos, p_line + w_line);
    const auto parsed = ParseVote(reordered);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, vote);
  }

  // Re-serializing either way reproduces the canonical bytes.
  EXPECT_EQ(SerializeVote(*canonical), text);
}

TEST(CodecPropertyTest, NumericEdgeCasesMatchTheGeneralParser) {
  const std::string text = SerializeVote(SmallVote());

  // Overflowing bandwidth (> uint64) is "bad Bandwidth value".
  {
    std::string bad = text;
    const size_t w_pos = bad.find("Bandwidth=") + 10;
    const size_t w_end = bad.find_first_of(" \n", w_pos);
    bad.replace(w_pos, w_end - w_pos, "99999999999999999999999");
    const auto result = ParseVote(bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(), "bad Bandwidth value");
  }

  // Trailing junk in a numeric r-line field is "bad integer"-driven.
  {
    std::string bad = text;
    const size_t r_end = bad.find('\n', bad.find("\nr ") + 1);
    bad.insert(r_end, "x");  // glues junk onto the published field
    const auto result = ParseVote(bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(), "bad numeric field in r line");
  }
}

}  // namespace
}  // namespace tordir
