// Tests for the experiment driver (src/metrics): the layer every bench relies
// on. Covers success/latency/byte accounting for all three protocols, the
// bandwidth-requirement search, and the two-phase agreement plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "src/attack/ddos.h"
#include "src/metrics/experiment.h"

namespace tormetrics {
namespace {

TEST(ExperimentTest, CurrentProtocolHealthyRun) {
  ExperimentConfig config;
  config.protocol = "current";
  config.relay_count = 400;
  const auto result = RunExperiment(config);
  EXPECT_TRUE(result.succeeded);
  EXPECT_EQ(result.valid_count, 9u);
  EXPECT_GT(result.latency_seconds, 0.0);
  EXPECT_LT(result.latency_seconds, 60.0);
  EXPECT_GT(result.consensus_relays, 390u);
  EXPECT_GT(result.total_bytes_sent, 0u);
  EXPECT_GT(result.bytes_by_kind.at("VOTE"), result.bytes_by_kind.at("SIG"));
}

TEST(ExperimentTest, AllThreeProtocolsAgreeOnHealthySuccess) {
  for (const char* protocol : {"current", "synchronous", "icps"}) {
    ExperimentConfig config;
    config.protocol = protocol;
    config.relay_count = 300;
    const auto result = RunExperiment(config);
    EXPECT_TRUE(result.succeeded) << protocol;
    EXPECT_EQ(result.valid_count, 9u) << protocol;
  }
}

TEST(ExperimentTest, FailureYieldsNanLatency) {
  ExperimentConfig config;
  config.protocol = "current";
  config.relay_count = 800;
  torattack::AttackWindow attack;
  attack.targets = torattack::FirstTargets(5);
  attack.start = 0;
  attack.end = torbase::Minutes(5);
  config.attacks.push_back(attack);
  const auto result = RunExperiment(config);
  EXPECT_FALSE(result.succeeded);
  EXPECT_TRUE(std::isnan(result.latency_seconds));
  EXPECT_TRUE(std::isnan(result.finish_time_seconds));
}

TEST(ExperimentTest, ResultDefaultsToNanNotZero) {
  // The header promises NaN latency/finish on failed runs; a default
  // (unpopulated) result must not masquerade as a zero-latency success.
  ExperimentResult result;
  EXPECT_FALSE(result.succeeded);
  EXPECT_TRUE(std::isnan(result.latency_seconds));
  EXPECT_TRUE(std::isnan(result.finish_time_seconds));
}

TEST(ExperimentTest, DeterministicAcrossInvocations) {
  ExperimentConfig config;
  config.protocol = "icps";
  config.relay_count = 250;
  const auto a = RunExperiment(config);
  const auto b = RunExperiment(config);
  EXPECT_EQ(a.succeeded, b.succeeded);
  EXPECT_DOUBLE_EQ(a.latency_seconds, b.latency_seconds);
  EXPECT_EQ(a.total_bytes_sent, b.total_bytes_sent);
}

TEST(ExperimentTest, SynchronousMovesMoreBytesThanCurrent) {
  ExperimentConfig config;
  config.relay_count = 400;
  config.protocol = "current";
  const auto current = RunExperiment(config);
  config.protocol = "synchronous";
  const auto sync = RunExperiment(config);
  // The packed-vote phase replicates every list n more times: ~5-9x traffic.
  EXPECT_GT(sync.total_bytes_sent, 4 * current.total_bytes_sent);
}

TEST(ExperimentTest, TwoPhaseAgreementIsFasterNeverSlower) {
  ExperimentConfig config;
  config.protocol = "icps";
  config.relay_count = 300;
  config.two_phase_agreement = false;
  const auto three_phase = RunExperiment(config);
  config.two_phase_agreement = true;
  const auto two_phase = RunExperiment(config);
  ASSERT_TRUE(three_phase.succeeded);
  ASSERT_TRUE(two_phase.succeeded);
  EXPECT_LT(two_phase.latency_seconds, three_phase.latency_seconds);
}

TEST(ExperimentTest, SmallerAuthorityCountsWork) {
  for (uint32_t n : {4u, 7u, 13u}) {
    ExperimentConfig config;
    config.protocol = "icps";
    config.authority_count = n;
    config.relay_count = 150;
    const auto result = RunExperiment(config);
    EXPECT_TRUE(result.succeeded) << "n = " << n;
    EXPECT_EQ(result.valid_count, n) << "n = " << n;
  }
}

TEST(ExperimentTest, BandwidthRequirementBracketsAndIsMonotone) {
  ExperimentConfig config;
  config.protocol = "current";
  config.run_limit = torbase::Minutes(15);

  config.relay_count = 800;
  const double small = FindBandwidthRequirement(config, 5, 0.2e6, 25e6, /*probes=*/5);
  config.relay_count = 2400;
  const double large = FindBandwidthRequirement(config, 5, 0.2e6, 25e6, /*probes=*/5);
  EXPECT_GT(small, 0.2e6);
  EXPECT_LT(small, 25e6);
  // Requirement grows with the relay count (Figure 7's monotonicity).
  EXPECT_GT(large, small);
  // And roughly linearly: 3x the relays within [1.5x, 6x] the bandwidth.
  EXPECT_GT(large, 1.5 * small);
  EXPECT_LT(large, 6.0 * small);
}

TEST(ExperimentTest, IcpsSucceedsWhereCurrentFails) {
  // The headline comparison as a single assertion pair.
  ExperimentConfig config;
  config.relay_count = 1000;
  config.bandwidth_bps = torsim::MegabitsPerSecond(1);
  config.protocol = "current";
  EXPECT_FALSE(RunExperiment(config).succeeded);
  config.protocol = "icps";
  EXPECT_TRUE(RunExperiment(config).succeeded);
}

}  // namespace
}  // namespace tormetrics
