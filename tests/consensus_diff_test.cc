// Property and fuzz tests for the consensus diff codec
// (src/tordir/consensus_diff.h). The codec's contract has two halves:
//
//   * completeness — for any pair of documents, Apply(Compute(a, b), a) is
//     byte-identical to Serialize(b). Exercised here for every single-relay
//     mutation (bandwidth change, flag flip, removal, insertion) and for
//     bulk synthetic churn at live-network rates;
//   * soundness — a corrupted diff (or a diff applied to the wrong base) is
//     always refused, never applied silently wrong. Exercised with the same
//     seeded wire mutator the codec fuzz suite uses: every accepted mutant
//     must still produce the exact target bytes.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/tordir/aggregate.h"
#include "src/tordir/consensus_diff.h"
#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"
#include "src/tordir/wire_mutator.h"

namespace tordir {
namespace {

constexpr uint64_t kDiffMutants = 600;
constexpr uint64_t kBaseMutants = 300;

// A signed consensus over a generated population: the full document shape the
// codec serves, including the signature tail the diff carries verbatim.
ConsensusDocument BuildConsensus(size_t relay_count, uint64_t seed) {
  PopulationConfig config;
  config.relay_count = relay_count;
  config.seed = seed;
  const auto population = GeneratePopulation(config);
  const auto votes = MakeAllVotes(9, population, config);
  ConsensusDocument consensus = ComputeConsensus(votes, {});
  for (uint32_t a = 0; a < 9; ++a) {
    torcrypto::Signature sig;
    sig.signer = a;
    for (size_t i = 0; i < sig.bytes.size(); ++i) {
      sig.bytes[i] = static_cast<uint8_t>(seed + a * 64 + i);
    }
    consensus.signatures.push_back(sig);
  }
  return consensus;
}

// The round-trip property, asserted at byte granularity.
void ExpectRoundTrip(const ConsensusDocument& base, const ConsensusDocument& target,
                     const std::string& label) {
  const std::string diff = ComputeConsensusDiff(base, target);
  const auto patched = ApplyConsensusDiff(SerializeConsensus(base), diff);
  ASSERT_TRUE(patched.ok()) << label << ": " << patched.status().ToString();
  EXPECT_EQ(*patched, SerializeConsensus(target)) << label;
}

TEST(ConsensusDiffTest, IdentityDiffIsHeaderAndSignaturesOnly) {
  const ConsensusDocument doc = BuildConsensus(40, 7);
  const std::string diff = ComputeConsensusDiff(doc, doc);
  // No ops: framing, four header fields, footer, nine signature lines.
  EXPECT_EQ(diff.find(" A "), std::string::npos);
  EXPECT_LT(diff.size(), 2200u);
  ExpectRoundTrip(doc, doc, "identity");
}

TEST(ConsensusDiffTest, EverySingleRelayMutationRoundTrips) {
  const ConsensusDocument base = BuildConsensus(40, 7);
  for (size_t i = 0; i < base.relays.size(); ++i) {
    {
      ConsensusDocument target = base;
      target.relays[i].bandwidth += 1000;
      ExpectRoundTrip(base, target, "bandwidth change, relay " + std::to_string(i));
    }
    {
      ConsensusDocument target = base;
      target.relays[i].SetFlag(RelayFlag::kStable, !target.relays[i].HasFlag(RelayFlag::kStable));
      ExpectRoundTrip(base, target, "flag flip, relay " + std::to_string(i));
    }
    {
      ConsensusDocument target = base;
      target.relays.erase(target.relays.begin() + static_cast<ptrdiff_t>(i));
      ExpectRoundTrip(base, target, "removal, relay " + std::to_string(i));
    }
    {
      // Insertion: a fresh fingerprint one nibble off relay i's, re-sorted
      // into canonical position (possibly first or last).
      ConsensusDocument target = base;
      RelayStatus fresh = base.relays[i];
      fresh.fingerprint[19] ^= 0xFF;
      fresh.nickname = "inserted" + std::to_string(i);
      target.relays.push_back(fresh);
      target.SortRelays();
      ASSERT_EQ(target.relays.size(), base.relays.size() + 1);
      ExpectRoundTrip(base, target, "insertion near relay " + std::to_string(i));
    }
  }
}

TEST(ConsensusDiffTest, SyntheticChurnRoundTripsAtEveryRate) {
  const ConsensusDocument base = BuildConsensus(400, 11);
  for (const double rate : {0.0, 0.01, 0.10}) {
    ConsensusChurnConfig churn;
    churn.change_fraction = rate;
    churn.remove_fraction = rate / 2.0;
    churn.add_fraction = rate / 2.0;
    churn.seed = 3;
    const ConsensusDocument next = ChurnConsensus(base, churn);
    // The next round's validity window advanced by one period.
    EXPECT_GT(next.valid_after, base.valid_after);
    ExpectRoundTrip(base, next, "churn rate " + std::to_string(rate));
  }
}

TEST(ConsensusDiffTest, TypicalChurnCompressesBelowFivePercent) {
  // The serving-economics claim: at the live network's ~1%/hour row churn the
  // diff is a few percent of the full document.
  const ConsensusDocument base = BuildConsensus(2000, 13);
  ConsensusChurnConfig churn;
  churn.change_fraction = 0.01;
  churn.remove_fraction = 0.005;
  churn.add_fraction = 0.005;
  const ConsensusDocument next = ChurnConsensus(base, churn);
  const std::string full = SerializeConsensus(next);
  const std::string diff = ComputeConsensusDiff(base, next);
  EXPECT_LT(static_cast<double>(diff.size()), 0.05 * static_cast<double>(full.size()))
      << diff.size() << " of " << full.size();
  ExpectRoundTrip(base, next, "typical churn");
}

TEST(ConsensusDiffTest, FramingDigestsMatchTreeSignedConsensusDigest) {
  const ConsensusDocument base = BuildConsensus(40, 7);
  ConsensusChurnConfig churn;
  churn.change_fraction = 0.05;
  const ConsensusDocument next = ChurnConsensus(base, churn);
  const std::string diff = ComputeConsensusDiff(base, next);

  const auto header = ParseConsensusDiffHeader(diff);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->base_digest, TreeSignedConsensusDigest(base));
  EXPECT_EQ(header->target_digest, TreeSignedConsensusDigest(next));

  // Precomputed digests short-circuit the derivation but change no bytes.
  ConsensusDiffOptions options;
  options.base_digest = header->base_digest;
  options.target_digest = header->target_digest;
  EXPECT_EQ(ComputeConsensusDiff(base, next, options), diff);

  // Parallel digest derivation is bit-identical too (sha256-tree-v1
  // contract), so pooled and serial callers interoperate.
  torbase::ThreadPool pool(4);
  ConsensusDiffOptions pooled;
  pooled.pool = &pool;
  EXPECT_EQ(ComputeConsensusDiff(base, next, pooled), diff);
  ApplyDiffOptions apply_pooled;
  apply_pooled.verify_base = true;
  apply_pooled.pool = &pool;
  const auto patched = ApplyConsensusDiff(SerializeConsensus(base), diff, apply_pooled);
  ASSERT_TRUE(patched.ok()) << patched.status().ToString();
  EXPECT_EQ(*patched, SerializeConsensus(next));
}

TEST(ConsensusDiffTest, WrongBaseIsRefused) {
  const ConsensusDocument base = BuildConsensus(40, 7);
  const ConsensusDocument other = BuildConsensus(40, 8);
  ConsensusChurnConfig churn;
  churn.change_fraction = 0.05;
  const ConsensusDocument next = ChurnConsensus(base, churn);
  const std::string diff = ComputeConsensusDiff(base, next);

  // verify_base catches it up front with a precise status...
  ApplyDiffOptions strict;
  strict.verify_base = true;
  const auto checked = ApplyConsensusDiff(SerializeConsensus(other), diff, strict);
  EXPECT_FALSE(checked.ok());

  // ...and even without it, the target digest refuses the wrong output (the
  // patch may also fail structurally first; either way it never succeeds).
  const auto unchecked = ApplyConsensusDiff(SerializeConsensus(other), diff);
  EXPECT_FALSE(unchecked.ok());
}

TEST(ConsensusDiffTest, StructurallyEmptyOrTruncatedDiffsAreRefused) {
  const ConsensusDocument base = BuildConsensus(40, 7);
  const std::string base_text = SerializeConsensus(base);
  const std::string diff = ComputeConsensusDiff(base, ChurnConsensus(base, {0.05, 0.0, 0.0, 1}));

  EXPECT_FALSE(ApplyConsensusDiff(base_text, "").ok());
  EXPECT_FALSE(ApplyConsensusDiff(base_text, "network-status-diff-version 2\n").ok());
  EXPECT_FALSE(ApplyConsensusDiff("", diff).ok());
  for (const size_t cut : {diff.size() / 4, diff.size() / 2, diff.size() - 1}) {
    EXPECT_FALSE(ApplyConsensusDiff(base_text, diff.substr(0, cut)).ok()) << "cut " << cut;
  }
}

TEST(ConsensusDiffFuzzTest, MutatedDiffsAreRefusedOrByteIdentical) {
  // The soundness half under the seeded wire mutator: whatever the mutation
  // did — corrupted ops, reordered lines, damaged digests, spliced rows — an
  // accepted diff must still produce exactly the target bytes. "Accepted and
  // wrong" is the one forbidden outcome.
  const ConsensusDocument base = BuildConsensus(40, 7);
  ConsensusChurnConfig churn;
  churn.change_fraction = 0.10;
  churn.remove_fraction = 0.05;
  churn.add_fraction = 0.05;
  const ConsensusDocument next = ChurnConsensus(base, churn);
  const std::string base_text = SerializeConsensus(base);
  const std::string target_text = SerializeConsensus(next);
  const std::string diff = ComputeConsensusDiff(base, next);

  uint64_t accepted = 0;
  uint64_t refused = 0;
  for (uint64_t seed = 1; seed <= kDiffMutants; ++seed) {
    const std::string mutant = MutateWire(diff, seed);
    const auto patched = ApplyConsensusDiff(base_text, mutant);
    if (patched.ok()) {
      ++accepted;
      EXPECT_EQ(*patched, target_text) << "accepted mutant diff produced wrong bytes, seed "
                                       << seed;
    } else {
      ++refused;
    }
  }
  // Nearly every mutant must be refused; the rare accept is a mutation that
  // left the semantics intact (e.g. touched nothing the parser reads).
  EXPECT_GT(refused, kDiffMutants / 2);
}

TEST(ConsensusDiffFuzzTest, MutatedBasesNeverProduceWrongBytes) {
  // The same invariant from the other side: patching a corrupted *base* with
  // an intact diff either fails or — when the mutation was outside every
  // copied region — still reconstructs the exact target.
  const ConsensusDocument base = BuildConsensus(40, 7);
  ConsensusChurnConfig churn;
  churn.change_fraction = 0.10;
  const ConsensusDocument next = ChurnConsensus(base, churn);
  const std::string base_text = SerializeConsensus(base);
  const std::string target_text = SerializeConsensus(next);
  const std::string diff = ComputeConsensusDiff(base, next);

  for (uint64_t seed = 1; seed <= kBaseMutants; ++seed) {
    const std::string mutant = MutateWire(base_text, seed);
    const auto patched = ApplyConsensusDiff(mutant, diff);
    if (patched.ok()) {
      EXPECT_EQ(*patched, target_text) << "corrupted base slipped through, seed " << seed;
    }
  }
}

// A stream of consecutive rounds at live churn rates: documents[0] is the
// held base, documents[i+1] = ChurnConsensus(documents[i]).
std::vector<ConsensusDocument> ChurnStream(size_t rounds) {
  std::vector<ConsensusDocument> documents;
  documents.push_back(BuildConsensus(200, 17));
  ConsensusChurnConfig churn;
  churn.change_fraction = 0.02;
  churn.remove_fraction = 0.01;
  churn.add_fraction = 0.01;
  for (size_t i = 0; i < rounds; ++i) {
    churn.seed = 100 + i;
    documents.push_back(ChurnConsensus(documents.back(), churn));
  }
  return documents;
}

std::vector<std::string> StreamDiffs(const std::vector<ConsensusDocument>& documents) {
  std::vector<std::string> diffs;
  for (size_t i = 0; i + 1 < documents.size(); ++i) {
    diffs.push_back(ComputeConsensusDiff(documents[i], documents[i + 1]));
  }
  return diffs;
}

TEST(ConsensusDiffChainTest, ComposedChainIsByteIdenticalToFullDocument) {
  // Serving a client N rounds behind: composing the per-round diffs must land
  // on exactly the bytes of the newest full document, for every depth.
  const std::vector<ConsensusDocument> documents = ChurnStream(6);
  const std::vector<std::string> diffs = StreamDiffs(documents);
  const std::string base_text = SerializeConsensus(documents.front());

  for (size_t depth = 0; depth <= diffs.size(); ++depth) {
    const std::vector<std::string_view> chain(diffs.begin(),
                                              diffs.begin() + static_cast<ptrdiff_t>(depth));
    const auto patched = ApplyConsensusDiffChain(base_text, chain);
    ASSERT_TRUE(patched.ok()) << "depth " << depth << ": " << patched.status().ToString();
    EXPECT_EQ(*patched, SerializeConsensus(documents[depth])) << "depth " << depth;
  }
}

TEST(ConsensusDiffChainTest, ChainRefusesWrongAnchorGapsAndCorruptLinks) {
  const std::vector<ConsensusDocument> documents = ChurnStream(4);
  const std::vector<std::string> diffs = StreamDiffs(documents);
  const std::string base_text = SerializeConsensus(documents.front());
  const std::vector<std::string_view> chain(diffs.begin(), diffs.end());

  // Anchored to a document the chain does not start from: always refused,
  // even though per-link verify_base is off by default.
  const auto wrong_anchor =
      ApplyConsensusDiffChain(SerializeConsensus(documents[1]), chain);
  EXPECT_FALSE(wrong_anchor.ok());

  // A gap in the middle breaks the base->target digest linkage.
  std::vector<std::string_view> gapped = {diffs[0], diffs[2], diffs[3]};
  EXPECT_FALSE(ApplyConsensusDiffChain(base_text, gapped).ok());

  // Reordered links break it too.
  std::vector<std::string_view> reordered = {diffs[1], diffs[0], diffs[2], diffs[3]};
  EXPECT_FALSE(ApplyConsensusDiffChain(base_text, reordered).ok());

  // A corrupted link anywhere refuses the whole application — never a
  // silently wrong document.
  for (size_t i = 0; i < diffs.size(); ++i) {
    for (uint64_t seed = 1; seed <= 40; ++seed) {
      std::vector<std::string> mutated = diffs;
      mutated[i] = MutateWire(diffs[i], seed);
      if (mutated[i] == diffs[i]) {
        continue;
      }
      const std::vector<std::string_view> views(mutated.begin(), mutated.end());
      const auto patched = ApplyConsensusDiffChain(base_text, views);
      if (patched.ok()) {
        EXPECT_EQ(*patched, SerializeConsensus(documents.back()))
            << "accepted corrupted link " << i << " seed " << seed << " produced wrong bytes";
      }
    }
  }
}

}  // namespace
}  // namespace tordir
