// Tests for the ICPS core protocol (src/core): the Definition 5.1 properties
// (termination, agreement, value validity, common-set validity), the
// dissemination proof machinery, Byzantine disseminators, and recovery after a
// DDoS window (the Figure 11 scenario).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/attack/ddos.h"
#include "src/core/digest_vector.h"
#include "src/core/icps_authority.h"
#include "src/sim/actor.h"
#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"

namespace toricc {
namespace {

using torattack::AttackWindow;
using torbase::Minutes;
using torbase::NodeId;
using torbase::Seconds;

constexpr uint32_t kN = 9;

// A crashed authority.
class SilentActor : public torsim::Actor {
 public:
  void OnMessage(NodeId, const torbase::Bytes&) override {}
};

// A Byzantine disseminator: signs and sends two different vote documents to
// the two halves of the network, then stays silent.
class EquivocatingDisseminator : public torsim::Actor {
 public:
  EquivocatingDisseminator(const torcrypto::KeyDirectory* directory, tordir::VoteDocument vote)
      : directory_(directory), vote_(std::move(vote)) {}

  void Start() override {
    tordir::VoteDocument vote_b = vote_;
    vote_b.relays[0].bandwidth += 1;  // a second, conflicting version
    const std::string text_a = tordir::SerializeVote(vote_);
    const std::string text_b = tordir::SerializeVote(vote_b);
    const auto signer = directory_->SignerFor(id());
    for (NodeId peer = 0; peer < node_count(); ++peer) {
      if (peer == id()) {
        continue;
      }
      const std::string& text = (peer % 2 == 0) ? text_a : text_b;
      const auto digest = torcrypto::Digest256::Of(text);
      const auto sig = signer.Sign(EntryPayload(id(), digest));
      torbase::Writer w;
      w.WriteU8(0x10);  // kDocument
      w.WriteString(text);
      w.WriteRaw(digest.span());
      w.WriteU32(sig.signer);
      w.WriteRaw(sig.bytes);
      SendTo(peer, "DOCUMENT", w.TakeBuffer());
    }
  }
  void OnMessage(NodeId, const torbase::Bytes&) override {}

 private:
  const torcrypto::KeyDirectory* directory_;
  tordir::VoteDocument vote_;
};

struct Fleet {
  torcrypto::KeyDirectory directory{42, kN};
  std::unique_ptr<torsim::Harness> harness;
  std::vector<torsim::Actor*> actors;
  std::vector<tordir::VoteDocument> votes;

  IcpsConfig Config(torbase::Duration dissemination_timeout = Seconds(150)) const {
    IcpsConfig config;
    config.dissemination_timeout = dissemination_timeout;
    return config;
  }

  void Build(size_t relay_count, double bandwidth_bps, const IcpsConfig& config,
             const std::set<NodeId>& silent = {}, const std::set<NodeId>& equivocators = {},
             const std::vector<AttackWindow>& attacks = {}) {
    tordir::PopulationConfig pop_config;
    pop_config.relay_count = relay_count;
    pop_config.seed = 11;
    const auto population = tordir::GeneratePopulation(pop_config);
    votes = tordir::MakeAllVotes(kN, population, pop_config);

    torsim::NetworkConfig net_config;
    net_config.node_count = kN;
    net_config.default_bandwidth_bps = bandwidth_bps;
    net_config.default_latency = torbase::Millis(50);
    harness = std::make_unique<torsim::Harness>(net_config);
    for (const auto& window : attacks) {
      torattack::ApplyAttack(harness->net(), window);
    }
    actors.clear();
    for (NodeId i = 0; i < kN; ++i) {
      if (silent.count(i) > 0) {
        actors.push_back(harness->AddActor(std::make_unique<SilentActor>()));
      } else if (equivocators.count(i) > 0) {
        actors.push_back(harness->AddActor(
            std::make_unique<EquivocatingDisseminator>(&directory, votes[i])));
      } else {
        actors.push_back(harness->AddActor(
            std::make_unique<IcpsAuthority>(config, &directory, votes[i])));
      }
    }
  }

  IcpsAuthority* Authority(NodeId i) { return static_cast<IcpsAuthority*>(actors[i]); }

  void Run(torbase::TimePoint limit = Minutes(60)) {
    harness->StartAll();
    harness->sim().RunUntil(limit);
  }
};

TEST(IcpsTest, HealthyRunDecidesAndValidatesEverywhere) {
  Fleet fleet;
  fleet.Build(400, torattack::kAuthorityLinkBps, fleet.Config());
  fleet.Run();
  for (NodeId i = 0; i < kN; ++i) {
    const auto& outcome = fleet.Authority(i)->outcome();
    EXPECT_TRUE(outcome.decided) << "authority " << i;
    EXPECT_TRUE(outcome.valid_consensus) << "authority " << i;
    EXPECT_GE(outcome.consensus.signatures.size(), 5u);
  }
  // Fast path: no dissemination timeout needed, agreement in view 1.
  EXPECT_LT(fleet.Authority(0)->outcome().finished_at, Seconds(30));
}

TEST(IcpsTest, AgreementPropertyConsensusIdentical) {
  Fleet fleet;
  fleet.Build(300, torattack::kAuthorityLinkBps, fleet.Config());
  fleet.Run();
  const auto digest0 = tordir::ConsensusDigest(fleet.Authority(0)->outcome().consensus);
  for (NodeId i = 1; i < kN; ++i) {
    EXPECT_EQ(tordir::ConsensusDigest(fleet.Authority(i)->outcome().consensus), digest0)
        << "authority " << i;
  }
}

TEST(IcpsTest, ValueValidityAtGstZeroIncludesEveryDocument) {
  // GST = 0: every correct node's document must appear in the agreed vector
  // (Definition 5.1, Value Validity; Theorem A.3).
  Fleet fleet;
  fleet.Build(200, torattack::kAuthorityLinkBps, fleet.Config());
  fleet.Run();
  for (NodeId i = 0; i < kN; ++i) {
    const auto& outcome = fleet.Authority(i)->outcome();
    EXPECT_EQ(outcome.vector_non_empty, kN) << "authority " << i;
  }
}

TEST(IcpsTest, CommonSetValidityWithCrashedMinority) {
  // Two crashed authorities (f = 2): the agreed vector still contains at
  // least n - f = 7 documents and the consensus is valid.
  Fleet fleet;
  fleet.Build(200, torattack::kAuthorityLinkBps, fleet.Config(Seconds(30)),
              /*silent=*/{2, 6});
  fleet.Run();
  for (NodeId i = 0; i < kN; ++i) {
    if (i == 2 || i == 6) {
      continue;
    }
    const auto& outcome = fleet.Authority(i)->outcome();
    EXPECT_TRUE(outcome.decided) << "authority " << i;
    EXPECT_GE(outcome.vector_non_empty, kN - 2) << "authority " << i;
    EXPECT_TRUE(outcome.valid_consensus) << "authority " << i;
  }
}

TEST(IcpsTest, EquivocatingDisseminatorForcedToBottom) {
  // Node 3 sends different documents to different peers. The proposals expose
  // the two sender-signed digests, the leader emits an equivocation proof, and
  // the agreed vector carries ⟂ for node 3 — its vote is excluded from the
  // consensus, yet the protocol completes.
  Fleet fleet;
  fleet.Build(200, torattack::kAuthorityLinkBps, fleet.Config(Seconds(30)),
              /*silent=*/{}, /*equivocators=*/{3});
  fleet.Run();
  for (NodeId i = 0; i < kN; ++i) {
    if (i == 3) {
      continue;
    }
    const auto& outcome = fleet.Authority(i)->outcome();
    ASSERT_TRUE(outcome.decided) << "authority " << i;
    EXPECT_TRUE(outcome.valid_consensus) << "authority " << i;
    EXPECT_EQ(outcome.vector_non_empty, kN - 1) << "authority " << i;
  }
  // And all agree on the same consensus.
  const auto digest0 = tordir::ConsensusDigest(fleet.Authority(0)->outcome().consensus);
  for (NodeId i = 1; i < kN; ++i) {
    if (i != 3) {
      EXPECT_EQ(tordir::ConsensusDigest(fleet.Authority(i)->outcome().consensus), digest0);
    }
  }
}

TEST(IcpsTest, SurvivesFiveMinuteDdosAndRecoversQuickly) {
  // The Figure 11 scenario: 5 authorities knocked offline for 5 minutes at the
  // start; the network then returns to 250 Mbit/s. The protocol finishes
  // within seconds of the attack ending, instead of the 2100 s the lock-step
  // protocols need.
  Fleet fleet;
  AttackWindow attack;
  attack.targets = torattack::FirstTargets(5);
  attack.start = 0;
  attack.end = Minutes(5);
  attack.available_bps = 0.0;
  fleet.Build(1000, torattack::kAuthorityLinkBps, fleet.Config(), {}, {}, {attack});
  fleet.Run();
  for (NodeId i = 0; i < kN; ++i) {
    const auto& outcome = fleet.Authority(i)->outcome();
    ASSERT_TRUE(outcome.decided) << "authority " << i;
    ASSERT_TRUE(outcome.valid_consensus) << "authority " << i;
    EXPECT_GT(outcome.finished_at, Minutes(5));
    EXPECT_LT(outcome.finished_at, Minutes(5) + Seconds(90)) << "authority " << i;
  }
  // Everyone agreed.
  const auto digest0 = tordir::ConsensusDigest(fleet.Authority(0)->outcome().consensus);
  for (NodeId i = 1; i < kN; ++i) {
    EXPECT_EQ(tordir::ConsensusDigest(fleet.Authority(i)->outcome().consensus), digest0);
  }
}

TEST(IcpsTest, WorksUnderSustainedLowBandwidth) {
  // Figure 10 bottom panels: at 0.5 Mbit/s the lock-step protocols fail, but
  // ICPS tolerates arbitrary dissemination delay and still completes.
  Fleet fleet;
  fleet.Build(500, torsim::MegabitsPerSecond(0.5), fleet.Config());
  fleet.Run(Minutes(120));
  for (NodeId i = 0; i < kN; ++i) {
    const auto& outcome = fleet.Authority(i)->outcome();
    EXPECT_TRUE(outcome.decided) << "authority " << i;
    EXPECT_TRUE(outcome.valid_consensus) << "authority " << i;
  }
  // It takes minutes, not hours.
  EXPECT_GT(fleet.Authority(0)->outcome().finished_at, Seconds(30));
  EXPECT_LT(fleet.Authority(0)->outcome().finished_at, Minutes(60));
}

TEST(IcpsTest, StragglerCatchesUpAfterLongOutage) {
  // One authority is offline well past the others' completion; when it
  // returns, the decided value and signatures reach it.
  Fleet fleet;
  AttackWindow attack;
  attack.targets = {4};
  attack.start = 0;
  attack.end = Minutes(8);
  attack.available_bps = 0.0;
  fleet.Build(300, torattack::kAuthorityLinkBps, fleet.Config(Seconds(60)), {}, {}, {attack});
  fleet.Run(Minutes(30));
  // The other eight finish long before the straggler returns.
  for (NodeId i = 0; i < kN; ++i) {
    if (i == 4) {
      continue;
    }
    EXPECT_TRUE(fleet.Authority(i)->outcome().valid_consensus) << "authority " << i;
    EXPECT_LT(fleet.Authority(i)->outcome().finished_at, Minutes(8));
  }
  const auto& straggler = fleet.Authority(4)->outcome();
  EXPECT_TRUE(straggler.decided);
  EXPECT_TRUE(straggler.valid_consensus);
  EXPECT_GT(straggler.finished_at, Minutes(8));
  EXPECT_EQ(tordir::ConsensusDigest(straggler.consensus),
            tordir::ConsensusDigest(fleet.Authority(0)->outcome().consensus));
}

// --- digest-vector unit tests -----------------------------------------------

class DigestVectorTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kF = 2;
  torcrypto::KeyDirectory directory_{42, kN};

  torcrypto::Digest256 DocDigest(NodeId j) const {
    return torcrypto::Digest256::Of("doc-" + std::to_string(j));
  }

  // Builds an honest proposal from `proposer` that saw documents from `seen`.
  Proposal MakeProposal(NodeId proposer, const std::set<NodeId>& seen) const {
    Proposal proposal;
    proposal.proposer = proposer;
    proposal.entries.resize(kN);
    const auto signer = directory_.SignerFor(proposer);
    for (NodeId j = 0; j < kN; ++j) {
      auto& entry = proposal.entries[j];
      if (seen.count(j) > 0) {
        entry.digest = DocDigest(j);
        entry.sender_sig = directory_.SignerFor(j).Sign(EntryPayload(j, entry.digest));
      }
      entry.proposer_sig = signer.Sign(EntryPayload(j, entry.digest));
    }
    return proposal;
  }

  std::set<NodeId> AllNodes() const {
    std::set<NodeId> all;
    for (NodeId i = 0; i < kN; ++i) {
      all.insert(i);
    }
    return all;
  }
};

TEST_F(DigestVectorTest, ProposalRoundTripAndVerify) {
  const Proposal proposal = MakeProposal(2, {0, 1, 2, 5});
  torbase::Writer w;
  proposal.Encode(w);
  torbase::Reader r(w.buffer());
  auto decoded = Proposal::Decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->Verify(directory_, kN));
  EXPECT_EQ(decoded->proposer, 2u);
  EXPECT_TRUE(decoded->entries[0].digest.has_value());
  EXPECT_FALSE(decoded->entries[3].digest.has_value());
}

TEST_F(DigestVectorTest, ProposalVerifyRejectsForgedProposerSig) {
  Proposal proposal = MakeProposal(2, {0, 1});
  proposal.entries[0].proposer_sig =
      directory_.SignerFor(3).Sign(EntryPayload(0, proposal.entries[0].digest));
  EXPECT_FALSE(proposal.Verify(directory_, kN));
}

TEST_F(DigestVectorTest, ProposalVerifyRejectsMissingSenderSig) {
  Proposal proposal = MakeProposal(2, {0});
  proposal.entries[0].sender_sig.reset();
  EXPECT_FALSE(proposal.Verify(directory_, kN));
}

TEST_F(DigestVectorTest, BuildNeedsQuorumOfProposals) {
  std::map<NodeId, Proposal> proposals;
  for (NodeId i = 0; i < kN - kF - 1; ++i) {  // one short of n - f
    proposals[i] = MakeProposal(i, AllNodes());
  }
  EXPECT_FALSE(BuildCertifiedVector(proposals, kN, kF).has_value());
}

TEST_F(DigestVectorTest, BuildAllOkWhenEveryoneSawEverything) {
  std::map<NodeId, Proposal> proposals;
  for (NodeId i = 0; i < kN; ++i) {
    proposals[i] = MakeProposal(i, AllNodes());
  }
  auto vector = BuildCertifiedVector(proposals, kN, kF);
  ASSERT_TRUE(vector.has_value());
  EXPECT_EQ(vector->NonEmptyCount(), kN);
  EXPECT_TRUE(vector->Verify(directory_, kN, kF));
  for (NodeId j = 0; j < kN; ++j) {
    EXPECT_EQ(vector->entries[j].kind, VectorEntry::Kind::kOk);
    EXPECT_EQ(*vector->entries[j].digest, DocDigest(j));
  }
}

TEST_F(DigestVectorTest, BuildTimeoutEntryForUnseenSender) {
  // Nobody saw node 8's document.
  std::set<NodeId> seen = AllNodes();
  seen.erase(8);
  std::map<NodeId, Proposal> proposals;
  for (NodeId i = 0; i < kN - 1; ++i) {
    proposals[i] = MakeProposal(i, seen);
  }
  auto vector = BuildCertifiedVector(proposals, kN, kF);
  ASSERT_TRUE(vector.has_value());
  EXPECT_EQ(vector->entries[8].kind, VectorEntry::Kind::kTimeout);
  EXPECT_GE(vector->entries[8].witness_sigs.size(), kF + 1);
  EXPECT_EQ(vector->NonEmptyCount(), kN - 1);
  EXPECT_TRUE(vector->Verify(directory_, kN, kF));
}

TEST_F(DigestVectorTest, BuildEquivocationEntryFromConflictingSenderSigs) {
  // Node 0 signed two different digests; half the proposers saw each.
  std::map<NodeId, Proposal> proposals;
  const auto alt_digest = torcrypto::Digest256::Of("doc-0-evil");
  for (NodeId i = 0; i < kN; ++i) {
    Proposal proposal = MakeProposal(i, AllNodes());
    if (i % 2 == 1) {
      proposal.entries[0].digest = alt_digest;
      proposal.entries[0].sender_sig =
          directory_.SignerFor(0).Sign(EntryPayload(0, proposal.entries[0].digest));
      proposal.entries[0].proposer_sig =
          directory_.SignerFor(i).Sign(EntryPayload(0, proposal.entries[0].digest));
    }
    proposals[i] = proposal;
  }
  auto vector = BuildCertifiedVector(proposals, kN, kF);
  ASSERT_TRUE(vector.has_value());
  EXPECT_EQ(vector->entries[0].kind, VectorEntry::Kind::kEquivocation);
  EXPECT_FALSE(vector->entries[0].NonEmpty());
  EXPECT_TRUE(vector->Verify(directory_, kN, kF));
}

TEST_F(DigestVectorTest, BuildNotReadyWhenTooFewNonEmpty) {
  // Everyone saw only 3 documents: 6 entries are ⟂ -> not ready (needs 7).
  std::map<NodeId, Proposal> proposals;
  for (NodeId i = 0; i < kN; ++i) {
    proposals[i] = MakeProposal(i, {0, 1, 2});
  }
  EXPECT_FALSE(BuildCertifiedVector(proposals, kN, kF).has_value());
}

TEST_F(DigestVectorTest, VectorRoundTrip) {
  std::map<NodeId, Proposal> proposals;
  std::set<NodeId> seen = AllNodes();
  seen.erase(4);
  for (NodeId i = 0; i < kN; ++i) {
    proposals[i] = MakeProposal(i, seen);
  }
  auto vector = BuildCertifiedVector(proposals, kN, kF);
  ASSERT_TRUE(vector.has_value());
  auto decoded = CertifiedVector::Decode(vector->Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->NonEmptyCount(), vector->NonEmptyCount());
  EXPECT_TRUE(decoded->Verify(directory_, kN, kF));
}

TEST_F(DigestVectorTest, VerifyRejectsTooFewWitnesses) {
  std::map<NodeId, Proposal> proposals;
  for (NodeId i = 0; i < kN; ++i) {
    proposals[i] = MakeProposal(i, AllNodes());
  }
  auto vector = BuildCertifiedVector(proposals, kN, kF);
  ASSERT_TRUE(vector.has_value());
  vector->entries[2].witness_sigs.resize(kF);  // below f + 1
  EXPECT_FALSE(vector->Verify(directory_, kN, kF));
}

TEST_F(DigestVectorTest, VerifyRejectsFakeTimeoutAgainstSenderSig) {
  // An adversarial leader cannot fabricate a timeout entry without f + 1
  // signatures on ⟂: signatures on (j, h) do not verify as (j, ⟂).
  std::map<NodeId, Proposal> proposals;
  for (NodeId i = 0; i < kN; ++i) {
    proposals[i] = MakeProposal(i, AllNodes());
  }
  auto vector = BuildCertifiedVector(proposals, kN, kF);
  ASSERT_TRUE(vector.has_value());
  // Rewrite entry 0 as a timeout but keep the OK witnesses (wrong payload).
  VectorEntry fake;
  fake.kind = VectorEntry::Kind::kTimeout;
  fake.witness_sigs = vector->entries[0].witness_sigs;
  vector->entries[0] = fake;
  EXPECT_FALSE(vector->Verify(directory_, kN, kF));
}

TEST_F(DigestVectorTest, VerifyRejectsEqualEquivocationDigests) {
  std::map<NodeId, Proposal> proposals;
  for (NodeId i = 0; i < kN; ++i) {
    proposals[i] = MakeProposal(i, AllNodes());
  }
  auto vector = BuildCertifiedVector(proposals, kN, kF);
  ASSERT_TRUE(vector.has_value());
  VectorEntry fake;
  fake.kind = VectorEntry::Kind::kEquivocation;
  fake.equivocation_a = DocDigest(0);
  fake.equivocation_b = DocDigest(0);  // identical: not an equivocation
  fake.equivocation_sig_a = directory_.SignerFor(0).Sign(EntryPayload(0, fake.equivocation_a));
  fake.equivocation_sig_b = fake.equivocation_sig_a;
  vector->entries[0] = fake;
  EXPECT_FALSE(vector->Verify(directory_, kN, kF));
}

TEST_F(DigestVectorTest, EntryPayloadDistinguishesBottomFromDigest) {
  const auto digest = DocDigest(0);
  EXPECT_NE(EntryPayload(0, digest), EntryPayload(0, std::nullopt));
  EXPECT_NE(EntryPayload(0, digest), EntryPayload(1, digest));
}

}  // namespace
}  // namespace toricc
