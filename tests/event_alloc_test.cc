// Pins the zero-allocation contract of the simulator's event hot path: after
// warm-up (heap / slot-arena growth is amortized), scheduling, cancelling and
// firing events performs no heap allocation as long as the callback's captures
// fit SimCallback's inline buffer.
//
// The whole test binary routes allocations through the shared counting
// operator new/delete (src/common/counting_allocator.h); the assertions
// compare counter deltas around tight loops that themselves allocate nothing.
#include <gtest/gtest.h>

#include "src/common/counting_allocator.h"
#include "src/sim/event_probe.h"
#include "src/sim/simulator.h"

namespace torsim {
namespace {

using torbase::counting_allocator::AllocationCount;

constexpr size_t kBatch = 64;
constexpr size_t kRounds = 200;

TEST(EventAllocTest, ScheduleFireIsAllocationFreeAfterWarmup) {
  Simulator sim;
  uint64_t fired = 0;
  WarmUpProbe(sim, kBatch, &fired);

  const uint64_t before = AllocationCount();
  for (size_t round = 0; round < kRounds; ++round) {
    ScheduleProbeBatch(sim, kBatch, &fired);
    sim.Run();
  }
  const uint64_t after = AllocationCount();

  EXPECT_EQ(after - before, 0u) << "schedule->fire allocated on the hot path";
  EXPECT_EQ(fired, kBatch + kRounds * kBatch);
}

TEST(EventAllocTest, ScheduleCancelIsAllocationFreeAfterWarmup) {
  Simulator sim;
  uint64_t fired = 0;
  ScheduleCancelProbeBatch(sim, kBatch, &fired);
  sim.Run();

  const uint64_t before = AllocationCount();
  for (size_t round = 0; round < kRounds; ++round) {
    ScheduleCancelProbeBatch(sim, kBatch, &fired);
    sim.Run();
  }
  const uint64_t after = AllocationCount();

  EXPECT_EQ(after - before, 0u) << "schedule->cancel allocated on the hot path";
  EXPECT_EQ(fired, 0u);
}

}  // namespace
}  // namespace torsim
