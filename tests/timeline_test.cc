// Tests for the long-horizon timeline engine (src/scenario/timeline.h):
// calendar -> per-round spec derivation, thread-count bit-identity of
// RunTimeline, the golden 48-round recovery trace (who failed, who was fresh,
// who rejoined at what cost), and the per-protocol snapshot/restore
// round-trip that pins the AuthorityRoundState seam.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/attack/ddos.h"
#include "src/attack/schedule.h"
#include "src/crypto/signature.h"
#include "src/protocols/directory_protocol.h"
#include "src/scenario/runner.h"
#include "src/scenario/timeline.h"
#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"

namespace torscenario {
namespace {

using torbase::Hours;
using torbase::Minutes;

// The paper's 5-minute full DDoS on 5 of 9 authorities, at round-local time.
std::shared_ptr<torattack::AttackSchedule> FiveMinuteDdos() {
  torattack::AttackWindow window;
  window.targets = torattack::FirstTargets(5);
  window.start = 0;
  window.end = Minutes(5);
  window.available_bps = 0.0;
  return std::make_shared<torattack::WindowedAttack>(
      std::vector<torattack::AttackWindow>{window});
}

TimelineSpec SmallTimeline() {
  TimelineSpec timeline;
  timeline.name = "test";
  timeline.base.name = "test";
  timeline.base.protocol = "current";
  timeline.base.relay_count = 200;
  timeline.base.seed = 1;
  timeline.rounds = 6;
  timeline.round_period = Hours(1);
  return timeline;
}

TEST(TimelineSpecTest, BuildRoundSpecsResolvesCalendars) {
  TimelineSpec timeline = SmallTimeline();
  timeline.attacks.push_back(AttackCalendarEntry{1, 2, FiveMinuteDdos()});
  timeline.crashes.push_back(CrashCalendarEntry{7, 1, Minutes(10), 3, Minutes(5)});
  ByzantineCalendarEntry byz;
  byz.first_round = 2;
  byz.last_round = 3;
  byz.spec.behaviors[3] = torproto::ByzantineBehavior::kEquivocate;
  timeline.byzantine.push_back(byz);
  timeline.churn.push_back(
      ChurnCalendarEntry{4, ChurnEvent{8, Minutes(3), ChurnEvent::Kind::kCrash}});

  const std::vector<ScenarioSpec> specs = BuildTimelineRoundSpecs(timeline);
  ASSERT_EQ(specs.size(), 6u);
  for (const ScenarioSpec& spec : specs) {
    EXPECT_EQ(spec.horizon, Hours(1));
    EXPECT_EQ(spec.client_load.client_count, 0u);  // one plane, run by the stitch
    EXPECT_TRUE(spec.retain_consensus);
    EXPECT_EQ(spec.previous_consensus, nullptr);
  }
  // Attack windows land on exactly their calendar rounds.
  EXPECT_EQ(specs[0].attack, nullptr);
  EXPECT_NE(specs[1].attack, nullptr);
  EXPECT_NE(specs[2].attack, nullptr);
  EXPECT_EQ(specs[3].attack, nullptr);
  // The crash decomposes: offset crash in round 1, down-from-start in round 2,
  // down-from-start plus recover in round 3, gone afterwards.
  ASSERT_EQ(specs[1].churn.size(), 1u);
  EXPECT_EQ(specs[1].churn[0].at, Minutes(10));
  EXPECT_EQ(specs[1].churn[0].kind, ChurnEvent::Kind::kCrash);
  ASSERT_EQ(specs[2].churn.size(), 1u);
  EXPECT_EQ(specs[2].churn[0].at, 0);
  ASSERT_EQ(specs[3].churn.size(), 2u);
  EXPECT_EQ(specs[3].churn[0].kind, ChurnEvent::Kind::kCrash);
  EXPECT_EQ(specs[3].churn[0].at, 0);
  EXPECT_EQ(specs[3].churn[1].kind, ChurnEvent::Kind::kRecover);
  EXPECT_EQ(specs[3].churn[1].at, Minutes(5));
  EXPECT_TRUE(specs[4].churn.size() == 1u && specs[4].churn[0].node == 8);
  // The byzantine behavior flips on for rounds 2-3 only.
  EXPECT_TRUE(specs[1].byzantine.empty());
  EXPECT_EQ(specs[2].byzantine.behaviors.count(3), 1u);
  EXPECT_EQ(specs[3].byzantine.behaviors.count(3), 1u);
  EXPECT_TRUE(specs[4].byzantine.empty());
}

TEST(TimelineTest, TimelineIsBitIdenticalAcrossThreadCounts) {
  TimelineSpec timeline = SmallTimeline();
  timeline.base.client_load.client_count = 200000;
  timeline.base.client_load.diff_capable_fraction = 0.8;
  // One of everything: an attacked round, a crash spanning successful rounds
  // (so the rejoin composes a diff chain), a byzantine flip, a churn blip.
  timeline.attacks.push_back(AttackCalendarEntry{1, 1, FiveMinuteDdos()});
  timeline.crashes.push_back(CrashCalendarEntry{7, 1, Minutes(1), 4, Minutes(2)});
  ByzantineCalendarEntry byz;
  byz.first_round = 2;
  byz.last_round = 3;
  byz.spec.behaviors[3] = torproto::ByzantineBehavior::kEquivocate;
  timeline.byzantine.push_back(byz);
  timeline.churn.push_back(
      ChurnCalendarEntry{5, ChurnEvent{8, Minutes(3), ChurnEvent::Kind::kCrash}});
  timeline.churn.push_back(
      ChurnCalendarEntry{5, ChurnEvent{8, Minutes(10), ChurnEvent::Kind::kRecover}});

  ScenarioRunner runner;
  const TimelineResult serial = runner.RunTimeline(timeline);

  // The engine saw the calendar: the attacked round failed, the others
  // published, the crashed authority rejoined through the diff chain.
  ASSERT_EQ(serial.rounds.size(), 6u);
  ASSERT_EQ(serial.snapshots.size(), 6u);
  EXPECT_FALSE(serial.rounds[1].succeeded);
  EXPECT_EQ(serial.successful_rounds, 5u);
  EXPECT_EQ(serial.byzantine_injected, 2u);  // one equivocator, two rounds
  EXPECT_GT(serial.undeliverable_messages, 0u);
  ASSERT_EQ(serial.rejoins.size(), 1u);
  EXPECT_EQ(serial.rejoins[0].node, 7u);
  EXPECT_EQ(serial.rejoins[0].round, 4u);
  EXPECT_EQ(serial.rejoins[0].rounds_behind, 2u);  // held round 0; rounds 2, 3 missed
  EXPECT_TRUE(serial.rejoins[0].via_diff_chain);
  EXPECT_FALSE(serial.rejoins[0].chain_refused);
  EXPECT_GT(serial.rejoins[0].bytes, 0u);
  EXPECT_TRUE(serial.client_availability.enabled);
  // The failed round's boundary is carried by the previous document: stale,
  // not fresh — and the snapshot still points at round 0's consensus.
  EXPECT_TRUE(serial.snapshots[0].fresh_at_boundary);
  EXPECT_FALSE(serial.snapshots[1].fresh_at_boundary);
  EXPECT_EQ(serial.snapshots[1].consensus_round, 0u);
  EXPECT_EQ(serial.snapshots[1].crashed, (std::vector<torbase::NodeId>{7}));
  EXPECT_NE(serial.snapshots[2].diff_from_previous, nullptr);

  for (const unsigned threads : {2u, 8u}) {
    ScenarioRunner fresh;
    const TimelineResult parallel = fresh.RunTimeline(timeline, SweepOptions{threads});
    EXPECT_TRUE(BitIdentical(serial, parallel)) << threads << " threads";
  }
  // And rerunning serially on the warm runner changes nothing either.
  EXPECT_TRUE(BitIdentical(serial, runner.RunTimeline(timeline)));
}

// The golden 48-round recovery trace: a two-day horizon with an early crash
// pair and a sustained 8-round attack. Pins which rounds published, the
// client-visible freshness at every boundary, every rejoin, and the horizon
// alert set — the recovery dynamics as one deterministic artifact.
TEST(TimelineTest, GoldenFortyEightRoundRecoveryTrace) {
  TimelineSpec timeline = SmallTimeline();
  timeline.rounds = 48;
  timeline.base.client_load.client_count = 500000;
  timeline.base.client_load.diff_capable_fraction = 0.8;
  // Authority 7 crashes during round 2, recovers mid-round 5; authorities
  // 0-4 are flooded for the first five minutes of every round 8 through 15.
  timeline.crashes.push_back(CrashCalendarEntry{7, 2, Minutes(1), 5, Minutes(2)});
  timeline.attacks.push_back(AttackCalendarEntry{8, 15, FiveMinuteDdos()});

  ScenarioRunner runner;
  const TimelineResult result = runner.RunTimeline(timeline, SweepOptions{8});

  ASSERT_EQ(result.snapshots.size(), 48u);
  std::string published;   // S = this round published, . = failed
  std::string freshness;   // F = fresh at the boundary, s = stale/down
  for (const RoundSnapshot& snapshot : result.snapshots) {
    published += snapshot.succeeded ? 'S' : '.';
    freshness += snapshot.fresh_at_boundary ? 'F' : 's';
  }
  // Rounds 8-15 fail under the flood; everything else publishes.
  EXPECT_EQ(published,
            "SSSSSSSS........SSSSSSSSSSSSSSSSSSSSSSSSSSSSSSSS");
  // Round 7's document keeps boundaries fresh through 7, carries stale/valid
  // for two more periods, then the network is down until round 16 publishes.
  EXPECT_EQ(freshness,
            "FFFFFFFFssssssssFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF");

  // One rejoin: authority 7 comes back 3 published rounds behind (rounds 2-4
  // ran without it) and catches up over the composed diff chain.
  ASSERT_EQ(result.rejoins.size(), 1u);
  EXPECT_EQ(result.rejoins[0].node, 7u);
  EXPECT_EQ(result.rejoins[0].round, 5u);
  EXPECT_EQ(result.rejoins[0].rounds_behind, 3u);
  EXPECT_TRUE(result.rejoins[0].via_diff_chain);
  EXPECT_EQ(result.rejoin_bytes, result.rejoins[0].bytes);

  // Recovery dynamics: the calendar clears at the end of round 15; clients
  // are fresh again once round 16's consensus lands (~10 min later, the
  // vote_lead publish cadence).
  EXPECT_DOUBLE_EQ(result.last_fault_cleared_seconds, 16.0 * 3600.0);
  EXPECT_GT(result.time_to_fresh_seconds, 0.0);
  EXPECT_LT(result.time_to_fresh_seconds, 1200.0);
  // The 8 failed rounds leave the network hard-down long enough to build a
  // bootstrap retry herd above a quarter of the population.
  EXPECT_GT(result.peak_retry_backlog, 0.25 * 500000.0);
  EXPECT_GT(result.client_availability.hard_down_seconds, 3600.0);

  // Horizon alerts: the flood's silent drops and the oversized herd. The
  // recovery itself is prompt (fresh one round after the calendar cleared),
  // so no slow-recovery alert.
  bool dropped = false;
  bool herd = false;
  bool slow = false;
  for (const tordir::HealthAlert& alert : result.health_alerts) {
    dropped |= alert.kind == tordir::HealthAlertKind::kDroppedMessages;
    herd |= alert.kind == tordir::HealthAlertKind::kHerdOverload;
    slow |= alert.kind == tordir::HealthAlertKind::kSlowRecovery;
  }
  EXPECT_TRUE(dropped);
  EXPECT_TRUE(herd);
  EXPECT_FALSE(slow);

  // Diff serving priced in: steady refetchers moving diffs cut bytes per
  // client-hour below the full-document counterfactual.
  EXPECT_LT(result.client_availability.bytes_per_client_hour,
            result.client_availability.full_doc_bytes_per_client_hour);

  // The trace above was produced with the result memo on (the default): the
  // long quiet tail collapses to one simulation — 36 quiet rounds, the 8
  // identical attacked rounds, and the crash span's repeated middle rounds
  // all dedupe, leaving ≤ 5 distinct simulations for 48 rounds.
  EXPECT_LE(runner.result_memo_misses(), 5u);
  EXPECT_GE(runner.result_memo_hits(), 43u);

  // The memo must be invisible in the artifact: recomputing every round from
  // scratch (memo off) yields the bit-identical golden trace at any thread
  // count.
  for (const unsigned threads : {1u, 2u, 8u}) {
    ScenarioRunner unmemoized;
    unmemoized.set_memoize(false);
    const TimelineResult recomputed =
        unmemoized.RunTimeline(timeline, SweepOptions{threads});
    EXPECT_EQ(unmemoized.result_memo_hits() + unmemoized.result_memo_misses(), 0u);
    EXPECT_TRUE(BitIdentical(result, recomputed)) << threads << " threads, memo off";
  }
}

TEST(TimelineSnapshotTest, SnapshotRestoreRoundTripsPerProtocol) {
  // The round-boundary seam, per registered protocol: snapshot an authority
  // that assembled a consensus, hand the state to a fresh authority as its
  // restore materials, snapshot again — the document must survive the
  // round-trip byte-identically (with the restored marker set).
  tordir::PopulationConfig pop_config;
  pop_config.relay_count = 200;
  pop_config.seed = 1;
  const auto population = tordir::GeneratePopulation(pop_config);
  const auto votes = tordir::MakeAllVotes(9, population, pop_config);

  for (const std::string& name : torproto::RegisteredProtocolNames()) {
    const torproto::DirectoryProtocol& protocol = torproto::GetProtocol(name);
    ScenarioSpec spec;
    spec.name = "snapshot";
    spec.protocol = name;
    spec.relay_count = 200;
    spec.seed = 1;

    std::vector<torproto::AuthorityRoundState> snapshots;
    ScenarioRunner runner;
    const ScenarioResult result = runner.Run(
        spec, [&protocol, &snapshots](torsim::Harness&,
                                      const std::vector<torsim::Actor*>& actors) {
          for (const torsim::Actor* actor : actors) {
            snapshots.push_back(protocol.SnapshotAuthority(*actor));
          }
        });
    ASSERT_TRUE(result.succeeded) << name;
    ASSERT_EQ(snapshots.size(), 9u) << name;
    for (const torproto::AuthorityRoundState& state : snapshots) {
      ASSERT_NE(state.consensus, nullptr) << name;
      ASSERT_NE(state.consensus_text, nullptr) << name;
      EXPECT_FALSE(state.restored) << name;
      // The text is the canonical serialization of the snapshotted document.
      EXPECT_EQ(*state.consensus_text, tordir::SerializeConsensus(*state.consensus)) << name;
    }

    // Restore: a fresh authority that never ran, constructed with round 0's
    // snapshot as its carry-in state.
    torcrypto::KeyDirectory directory(42, 9);
    torproto::ProtocolRunConfig run_config;
    torproto::AuthorityMaterials materials = torproto::AuthorityMaterials::Own(
        votes[0], tordir::SerializeVote(votes[0]));
    materials.round_state =
        std::make_shared<const torproto::AuthorityRoundState>(snapshots[0]);
    const std::unique_ptr<torsim::Actor> actor =
        protocol.MakeAuthority(run_config, &directory, 0, std::move(materials));
    const torproto::AuthorityRoundState restored = protocol.SnapshotAuthority(*actor);
    ASSERT_NE(restored.consensus_text, nullptr) << name;
    EXPECT_TRUE(restored.restored) << name;
    EXPECT_EQ(*restored.consensus_text, *snapshots[0].consensus_text) << name;
  }
}

}  // namespace
}  // namespace torscenario
