// Property-style parameterized suites (TEST_P) covering cross-cutting
// invariants: aggregation determinism and threshold algebra, NIC conservation
// and monotonicity, serialization robustness under mutation (failure
// injection), the attack-majority threshold, and Definition 5.1 invariants
// over a parameter grid.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "src/attack/ddos.h"
#include "src/core/icps_authority.h"
#include "src/metrics/experiment.h"
#include "src/protocols/current/current_authority.h"
#include "src/sim/actor.h"
#include "src/sim/bandwidth.h"
#include "src/tordir/aggregate.h"
#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"

namespace {

using torbase::NodeId;

// --- aggregation properties --------------------------------------------------

class AggregationProperty : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(AggregationProperty, DeterministicOrderIndependentAndSorted) {
  const auto [vote_count, seed] = GetParam();
  tordir::PopulationConfig config;
  config.relay_count = 120;
  config.seed = seed;
  const auto population = tordir::GeneratePopulation(config);
  auto votes = tordir::MakeAllVotes(vote_count, population, config);

  const auto baseline = tordir::ComputeConsensus(votes);
  // Determinism.
  EXPECT_EQ(tordir::ComputeConsensus(votes), baseline);
  // Order independence.
  std::rotate(votes.begin(), votes.begin() + 1, votes.end());
  EXPECT_EQ(tordir::ComputeConsensus(votes), baseline);
  std::reverse(votes.begin(), votes.end());
  EXPECT_EQ(tordir::ComputeConsensus(votes), baseline);
  // Canonical order and no Measured fields in the output.
  EXPECT_TRUE(std::is_sorted(baseline.relays.begin(), baseline.relays.end(), tordir::RelayOrder));
  for (const auto& relay : baseline.relays) {
    EXPECT_FALSE(relay.measured.has_value());
  }
  // Inclusion threshold: every consensus relay is listed by a majority.
  const size_t threshold = vote_count / 2 + 1;
  for (const auto& relay : baseline.relays) {
    size_t listings = 0;
    for (const auto& vote : votes) {
      for (const auto& candidate : vote.relays) {
        if (candidate.fingerprint == relay.fingerprint) {
          ++listings;
          break;
        }
      }
    }
    EXPECT_GE(listings, threshold);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AggregationProperty,
                         ::testing::Combine(::testing::Values(3u, 5u, 7u, 9u),
                                            ::testing::Values(1u, 17u, 99u)));

// --- serialization robustness (failure injection) -----------------------------

class VoteMutationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VoteMutationProperty, MutatedDocumentsNeverCrashAndRoundTripsAreExact) {
  const uint64_t seed = GetParam();
  tordir::PopulationConfig config;
  config.relay_count = 40;
  config.seed = seed;
  const auto population = tordir::GeneratePopulation(config);
  const auto vote = tordir::MakeVote(seed % 9, 9, population, config);
  const std::string text = tordir::SerializeVote(vote);

  // Exact round trip.
  auto parsed = tordir::ParseVote(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, vote);
  EXPECT_EQ(tordir::SerializeVote(*parsed), text);

  // Byte-level mutations: the parser must either fail cleanly or produce a
  // well-formed document — never crash. Accepted documents must reach a
  // serialize/parse fixpoint (canonical form), which is what makes digests a
  // sound identity for equivocation detection.
  torbase::Rng rng(seed * 31 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = text;
    const size_t pos = rng.UniformU64(mutated.size());
    mutated[pos] = static_cast<char>(rng.UniformRange(32, 126));
    auto result = tordir::ParseVote(mutated);
    if (result.ok()) {
      const std::string canonical = tordir::SerializeVote(*result);
      auto reparsed = tordir::ParseVote(canonical);
      ASSERT_TRUE(reparsed.ok());
      EXPECT_EQ(tordir::SerializeVote(*reparsed), canonical);
    }
  }
  // Truncations that cut into the body fail cleanly.
  for (size_t cut : {size_t{0}, text.size() / 3, text.size() / 2}) {
    auto result = tordir::ParseVote(text.substr(0, cut));
    EXPECT_FALSE(result.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VoteMutationProperty, ::testing::Values(1, 2, 3, 4, 5));

// --- NIC properties ------------------------------------------------------------

class NicProperty : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(NicProperty, ConservationAndFairShareBounds) {
  const auto [bandwidth_mbps, message_count] = GetParam();
  torsim::Simulator sim;
  torsim::NetworkConfig config;
  config.node_count = 2;
  config.default_bandwidth_bps = bandwidth_mbps * 1e6;
  config.default_latency = torbase::Millis(10);
  config.per_message_overhead_bytes = 0;
  torsim::Network net(&sim, config);

  int delivered = 0;
  torbase::TimePoint last_delivery = 0;
  net.SetHandler(1, [&](NodeId, const torbase::Bytes&) {
    ++delivered;
    last_delivery = sim.now();
  });
  const size_t payload_bytes = 50000;
  for (int i = 0; i < message_count; ++i) {
    net.Send(0, 1, "DATA", torbase::Bytes(payload_bytes, 0xaa));
  }
  sim.Run();

  // Conservation: every message delivered exactly once.
  EXPECT_EQ(delivered, message_count);
  EXPECT_EQ(net.counters(1).messages_received, static_cast<uint64_t>(message_count));

  // Fluid bound: total bits through egress + ingress cannot beat the link
  // rate; completion >= 2 * total_bits / rate (egress then ingress stages).
  const double total_bits = 8.0 * payload_bytes * message_count;
  const double rate = bandwidth_mbps * 1e6;
  const double lower_bound_us = 2.0 * total_bits / rate * 1e6;
  EXPECT_GE(static_cast<double>(last_delivery) + 1, lower_bound_us);
  // And it is not absurdly slower (within 2x + latency slack).
  EXPECT_LE(static_cast<double>(last_delivery), 2.5 * lower_bound_us + 1e6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NicProperty,
                         ::testing::Combine(::testing::Values(0.5, 5.0, 100.0),
                                            ::testing::Values(1, 4, 16)));

TEST(NicMonotonicityTest, MoreBandwidthNeverDeliversLater) {
  torbase::TimePoint previous = torbase::kTimeNever;
  for (double mbps : {0.5, 1.0, 5.0, 25.0, 125.0}) {
    torsim::Simulator sim;
    torsim::NetworkConfig config;
    config.node_count = 2;
    config.default_bandwidth_bps = mbps * 1e6;
    config.default_latency = torbase::Millis(10);
    torsim::Network net(&sim, config);
    torbase::TimePoint delivered_at = 0;
    net.SetHandler(1, [&](NodeId, const torbase::Bytes&) { delivered_at = sim.now(); });
    for (int i = 0; i < 6; ++i) {
      net.Send(0, 1, "DATA", torbase::Bytes(200000, 1));
    }
    sim.Run();
    EXPECT_LE(delivered_at, previous) << "at " << mbps << " Mbit/s";
    previous = delivered_at;
  }
}

// --- attack threshold property -------------------------------------------------

class AttackMajorityProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(AttackMajorityProperty, AttackSucceedsIffMajorityTargeted) {
  const uint32_t victims = GetParam();
  tormetrics::ExperimentConfig config;
  config.protocol = "current";
  config.relay_count = 800;
  torattack::AttackWindow window;
  window.targets = torattack::FirstTargets(victims);
  window.start = 0;
  window.end = torbase::Minutes(5);
  window.available_bps = torattack::kUnderAttackBps;
  if (victims > 0) {
    config.attacks.push_back(window);
  }
  const auto result = tormetrics::RunExperiment(config);
  // The directory protocol tolerates any minority of unreachable authorities
  // (§4.2): flooding fewer than 5 of 9 must not break it.
  EXPECT_EQ(result.succeeded, victims < 5) << victims << " victims";
}

INSTANTIATE_TEST_SUITE_P(VictimCounts, AttackMajorityProperty,
                         ::testing::Values(0u, 3u, 4u, 5u, 6u));

// --- ICPS Definition 5.1 invariants over a grid ---------------------------------

class IcpsDefinitionProperty
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(IcpsDefinitionProperty, TerminationAgreementAndCommonSetValidity) {
  const auto [relay_count, bandwidth_mbps] = GetParam();
  tormetrics::ExperimentConfig config;
  config.protocol = "icps";
  config.relay_count = relay_count;
  config.bandwidth_bps = bandwidth_mbps * 1e6;
  config.run_limit = torbase::Hours(2);
  const auto result = tormetrics::RunExperiment(config);
  // Termination + validity at every authority, any bandwidth.
  EXPECT_TRUE(result.succeeded);
  EXPECT_EQ(result.valid_count, 9u);
  // Common-set validity: the consensus covers (almost) the full population —
  // all 9 documents flow in when every node is correct.
  EXPECT_GT(result.consensus_relays, relay_count * 95 / 100);
}

INSTANTIATE_TEST_SUITE_P(Grid, IcpsDefinitionProperty,
                         ::testing::Combine(::testing::Values(size_t{200}, size_t{1000}),
                                            ::testing::Values(2.0, 50.0)));

// --- bandwidth schedule algebra -------------------------------------------------

class ScheduleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScheduleProperty, FinishTimeConsistentWithCapacity) {
  const uint64_t seed = GetParam();
  torbase::Rng rng(seed);
  torsim::BandwidthSchedule schedule(torsim::MegabitsPerSecond(rng.UniformRange(1, 100)));
  // Random piecewise schedule.
  torbase::TimePoint t = 0;
  for (int i = 0; i < 8; ++i) {
    t += torbase::Seconds(rng.UniformRange(1, 30));
    schedule.SetRateFrom(t, torsim::MegabitsPerSecond(rng.UniformRange(0, 50)));
  }
  schedule.SetRateFrom(t + torbase::Minutes(10), torsim::MegabitsPerSecond(10));

  for (int trial = 0; trial < 20; ++trial) {
    const torbase::TimePoint start = torbase::Seconds(rng.UniformRange(0, 120));
    const double bits = static_cast<double>(rng.UniformRange(1000, 50'000'000));
    const torbase::TimePoint finish = schedule.FinishTime(start, bits);
    ASSERT_NE(finish, torbase::kTimeNever);
    ASSERT_GE(finish, start);
    // The interval [start, finish) carries at least `bits`…
    EXPECT_GE(schedule.CapacityDuring(start, finish) + 1.0, bits);
    // …and stopping 1 ms earlier would not have been enough (tightness),
    // unless the transfer was instantaneous.
    if (finish > start + torbase::Millis(1)) {
      EXPECT_LT(schedule.CapacityDuring(start, finish - torbase::Millis(1)), bits);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleProperty, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
