// Pins the allocation behaviour of the wire codec (mirroring
// tests/aggregate_alloc_test.cc for the consensus hot path): serializing,
// parsing and digesting an 8k-relay vote must perform a small constant number
// of heap allocations — the output string, the relay vector, a handful of
// shared-nothing scratch — never O(n) per-line vectors, per-field temporaries
// or per-relay string copies. Includes the binary-wide counting allocator
// (one TU per binary, like tests/event_alloc_test.cc).
#include "src/common/counting_allocator.h"

#include <gtest/gtest.h>

#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"

namespace {

using torbase::counting_allocator::AllocationCount;

class CodecAllocTest : public ::testing::Test {
 protected:
  static constexpr size_t kRelays = 8000;

  void SetUp() override {
    tordir::PopulationConfig config;
    config.relay_count = kRelays;
    config.seed = 3;
    const auto population = tordir::GeneratePopulation(config);
    vote_ = tordir::MakeVote(0, 9, population, config);
    // Warm-up: interns every string the workload uses, faults in allocator
    // metadata, and sizes the parser's reserve path.
    text_ = tordir::SerializeVote(vote_);
    const auto parsed = tordir::ParseVote(text_);
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(*parsed, vote_);
  }

  tordir::VoteDocument vote_;
  std::string text_;
};

TEST_F(CodecAllocTest, SerializeVoteAllocatesConstantNotPerRelay) {
  const uint64_t before = AllocationCount();
  const std::string text = tordir::SerializeVote(vote_);
  const uint64_t allocations = AllocationCount() - before;
  ASSERT_EQ(text.size(), text_.size());

  // Steady state: the output buffer plus at most a growth step when the size
  // estimate runs short. 8 leaves headroom without ever letting an O(n) term
  // (8000+ allocations) sneak back in.
  EXPECT_LE(allocations, 8u) << allocations << " allocations serializing " << kRelays
                             << " relays";
}

TEST_F(CodecAllocTest, ParseVoteAllocatesConstantNotPerRelay) {
  const uint64_t before = AllocationCount();
  const auto parsed = tordir::ParseVote(text_);
  const uint64_t allocations = AllocationCount() - before;
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->relays.size(), vote_.relays.size());

  // Steady state: the relay vector reservation plus a couple of Result /
  // document moves. Every string the document carries is already interned, so
  // re-parsing allocates no string storage at all.
  EXPECT_LE(allocations, 16u) << allocations << " allocations parsing " << kRelays << " relays";
  const double per_relay =
      static_cast<double>(allocations) / static_cast<double>(parsed->relays.size());
  EXPECT_LT(per_relay, 0.01);
}

TEST_F(CodecAllocTest, VoteDigestStreamsWithoutAllocating) {
  const torcrypto::Digest256 expected = torcrypto::Digest256::Of(text_);
  const uint64_t before = AllocationCount();
  const torcrypto::Digest256 digest = tordir::VoteDigest(vote_);
  const uint64_t allocations = AllocationCount() - before;

  // The digest streams through a stack sink into SHA-256: the multi-megabyte
  // serialized form is never materialized, so the heap is never touched.
  EXPECT_EQ(allocations, 0u);
  EXPECT_EQ(digest, expected) << "streaming digest must match digest-of-serialized-bytes";
}

TEST_F(CodecAllocTest, ConsensusDigestStreamsWithoutAllocating) {
  tordir::ConsensusDocument consensus;
  consensus.valid_after = 100;
  consensus.fresh_until = 200;
  consensus.valid_until = 300;
  consensus.vote_count = 9;
  consensus.relays = vote_.relays;
  const torcrypto::Digest256 expected =
      torcrypto::Digest256::Of(tordir::SerializeConsensusUnsigned(consensus));

  const uint64_t before = AllocationCount();
  const torcrypto::Digest256 digest = tordir::ConsensusDigest(consensus);
  EXPECT_EQ(AllocationCount() - before, 0u);
  EXPECT_EQ(digest, expected);
}

}  // namespace
