// Unit tests for src/sim: event-queue semantics, bandwidth-schedule integration
// (the DDoS mechanism), the NIC delivery model, and the actor harness.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/sim/actor.h"
#include "src/sim/bandwidth.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace torsim {
namespace {

using torbase::Bytes;
using torbase::kTimeNever;
using torbase::Millis;
using torbase::Minutes;
using torbase::NodeId;
using torbase::Seconds;

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(SimulatorTest, SameTimeFifoByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(5, [&] { order.push_back(1); });
  sim.ScheduleAt(5, [&] { order.push_back(2); });
  sim.ScheduleAt(5, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimePoint fired_at = 0;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { fired_at = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 150u);
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  sim.ScheduleAt(100, [] {});
  sim.Run();
  bool fired = false;
  sim.ScheduleAt(10, [&] { fired = true; });  // in the past
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.ScheduleAt(10, [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(SimulatorTest, CancelUnknownIsNoOp) {
  Simulator sim;
  sim.Cancel(12345);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<TimePoint> fired;
  for (TimePoint t : {10u, 20u, 30u, 40u}) {
    sim.ScheduleAt(t, [&, t] { fired.push_back(t); });
  }
  sim.RunUntil(25);
  EXPECT_EQ(fired, (std::vector<TimePoint>{10, 20}));
  EXPECT_EQ(sim.now(), 25u);
  sim.Run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SimulatorTest, RunWithLimit) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(static_cast<TimePoint>(i), [&] { ++count; });
  }
  EXPECT_EQ(sim.Run(3), 3u);
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, PendingCountNeverUnderflows) {
  // pending_count() tracks live events exactly: cancellation decrements it at
  // cancel time, and draining tombstones must not change it. Interleaving
  // cancellations with partial drains must keep it monotone-sane even in
  // pathological orders.
  Simulator sim;
  std::vector<EventId> ids;
  for (TimePoint t : {10u, 20u, 30u, 40u}) {
    ids.push_back(sim.ScheduleAt(t, [] {}));
  }
  EXPECT_EQ(sim.pending_count(), 4u);
  sim.Cancel(ids[1]);
  sim.Cancel(ids[3]);
  EXPECT_EQ(sim.pending_count(), 2u);
  // Cancelling twice, or cancelling unknown ids, changes nothing.
  sim.Cancel(ids[1]);
  sim.Cancel(987654);
  EXPECT_EQ(sim.pending_count(), 2u);

  sim.RunUntil(25);  // drains 10 (live) and the cancelled 20
  EXPECT_EQ(sim.pending_count(), 1u);
  EXPECT_LT(sim.pending_count(), 1u << 20) << "unsigned underflow";

  // Cancel-from-within-a-handler while the queue drains.
  EventId last = sim.ScheduleAt(50, [] {});
  sim.ScheduleAt(45, [&] { sim.Cancel(last); });
  sim.Run();
  EXPECT_EQ(sim.pending_count(), 0u);
  EXPECT_EQ(sim.now(), 45u);
}

TEST(SimulatorTest, PendingCountSaneAfterFullDrainWithManyCancels) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 32; ++i) {
    ids.push_back(sim.ScheduleAt(static_cast<TimePoint>(i), [] {}));
  }
  for (size_t i = 0; i < ids.size(); i += 2) {
    sim.Cancel(ids[i]);
  }
  EXPECT_EQ(sim.pending_count(), 16u);
  sim.Run();
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(SimulatorTest, CancelReleasesCapturedStateImmediately) {
  // Cancel destroys the callback right away, not when the cancelled instant
  // drains off the queue: captured resources (multi-megabyte payload buffers
  // in the network layer) must not linger until the event's time arrives.
  Simulator sim;
  auto payload = std::make_shared<std::string>("captured vote bytes");
  const EventId id = sim.ScheduleAt(Minutes(10), [payload] { (void)payload; });
  ASSERT_EQ(payload.use_count(), 2);
  sim.Cancel(id);
  EXPECT_EQ(payload.use_count(), 1) << "capture must be freed at cancel time";
  sim.Run();
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(SimulatorTest, StaleIdCannotCancelReusedSlot) {
  // After an event fires, its slot may be reused by a new event; the old
  // (stale) EventId must not cancel the newcomer (generation tags).
  Simulator sim;
  bool first_fired = false;
  const EventId first = sim.ScheduleAt(10, [&] { first_fired = true; });
  sim.Run();
  ASSERT_TRUE(first_fired);

  bool second_fired = false;
  sim.ScheduleAt(20, [&] { second_fired = true; });  // reuses the slot
  sim.Cancel(first);                                 // stale: must be a no-op
  sim.Run();
  EXPECT_TRUE(second_fired);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 5) {
      sim.ScheduleAfter(10, chain);
    }
  };
  sim.ScheduleAt(0, chain);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40u);
}

TEST(BandwidthTest, ConstantRateFinishTime) {
  BandwidthSchedule sched(BitsPerSecond(1e6));  // 1 Mbit/s
  // 1000 bits at 1 Mbit/s = 1 ms = 1000 us.
  EXPECT_EQ(sched.FinishTime(0, 1000), 1000u);
  EXPECT_EQ(sched.FinishTime(500, 1000), 1500u);
}

TEST(BandwidthTest, ZeroBitsFinishImmediately) {
  BandwidthSchedule sched(BitsPerSecond(1e6));
  EXPECT_EQ(sched.FinishTime(77, 0), 77u);
}

TEST(BandwidthTest, InfiniteRateIsInstant) {
  BandwidthSchedule sched(std::numeric_limits<double>::infinity());
  EXPECT_EQ(sched.FinishTime(10, 1e12), 10u);
}

TEST(BandwidthTest, ZeroRateForeverNeverFinishes) {
  BandwidthSchedule sched(0.0);
  EXPECT_EQ(sched.FinishTime(0, 1), kTimeNever);
}

TEST(BandwidthTest, RateChangeMidTransfer) {
  BandwidthSchedule sched(BitsPerSecond(1e6));
  sched.SetRateFrom(1000, BitsPerSecond(2e6));
  // 3000 bits starting at 0: first 1000 us at 1 Mbit/s carries 1000 bits,
  // remaining 2000 bits at 2 Mbit/s takes 1000 us -> finish at 2000 us.
  EXPECT_EQ(sched.FinishTime(0, 3000), 2000u);
}

TEST(BandwidthTest, StallDuringZeroRateWindowThenResume) {
  BandwidthSchedule sched(BitsPerSecond(1e6));
  sched.LimitDuring(Seconds(1), Seconds(4), 0.0);
  // Transfer starts during the outage; nothing moves until t=4 s.
  const TimePoint finish = sched.FinishTime(Seconds(2), 1000);
  EXPECT_EQ(finish, Seconds(4) + 1000);
}

TEST(BandwidthTest, LimitDuringRestoresPreviousRate) {
  BandwidthSchedule sched(BitsPerSecond(8e6));
  sched.LimitDuring(Seconds(10), Seconds(20), BitsPerSecond(1e6));
  EXPECT_DOUBLE_EQ(sched.RateAt(Seconds(5)), 8e6);
  EXPECT_DOUBLE_EQ(sched.RateAt(Seconds(15)), 1e6);
  EXPECT_DOUBLE_EQ(sched.RateAt(Seconds(25)), 8e6);
}

TEST(BandwidthTest, LimitDuringSwallowsInteriorChanges) {
  BandwidthSchedule sched(BitsPerSecond(8e6));
  sched.SetRateFrom(Seconds(12), BitsPerSecond(4e6));
  sched.LimitDuring(Seconds(10), Seconds(20), 0.0);
  EXPECT_DOUBLE_EQ(sched.RateAt(Seconds(13)), 0.0);
  // After the window the most recent underlying rate (4 Mbit/s) resumes.
  EXPECT_DOUBLE_EQ(sched.RateAt(Seconds(21)), 4e6);
}

TEST(BandwidthTest, CapacityDuring) {
  BandwidthSchedule sched(BitsPerSecond(1e6));
  sched.LimitDuring(Seconds(1), Seconds(2), 0.0);
  // [0,3): 1 s at 1 Mbit/s + 1 s at 0 + 1 s at 1 Mbit/s = 2e6 bits.
  EXPECT_DOUBLE_EQ(sched.CapacityDuring(0, Seconds(3)), 2e6);
}

TEST(BandwidthTest, AttackWindowDelaysTransferAcrossWindow) {
  // The paper's core mechanism: a transfer that would take 1 s under normal
  // bandwidth stretches across a 5-minute attack window.
  BandwidthSchedule sched(MegabitsPerSecond(250));
  sched.LimitDuring(0, Minutes(5), MegabitsPerSecond(0.5));
  const double vote_bits = 8.0 * 3.0e6;  // a 3 MB vote document
  const TimePoint finish = sched.FinishTime(0, vote_bits);
  // 0.5 Mbit/s for 300 s carries 150e6 bits > 24e6 bits, so it finishes during
  // the attack at 24e6/0.5e6 = 48 s.
  EXPECT_EQ(finish, Seconds(48));
  // But at 0.05 Mbit/s it cannot finish inside the window.
  BandwidthSchedule harsher(MegabitsPerSecond(250));
  harsher.LimitDuring(0, Minutes(5), MegabitsPerSecond(0.05));
  const TimePoint finish2 = harsher.FinishTime(0, vote_bits);
  EXPECT_GT(finish2, Minutes(5));
}

TEST(BandwidthTest, AdjacentEqualRateSegmentsMerge) {
  // Rolling attacks clamp-and-restore every epoch; repeated same-rate windows
  // must collapse instead of growing the change-point map per epoch.
  BandwidthSchedule sched(BitsPerSecond(8e6));
  EXPECT_EQ(sched.segment_count(), 1u);

  // Back-to-back windows at the same clamp rate: one clamp + one restore.
  for (int epoch = 0; epoch < 50; ++epoch) {
    const TimePoint start = Seconds(10) + static_cast<TimePoint>(epoch) * Seconds(2);
    sched.LimitDuring(start, start + Seconds(2), BitsPerSecond(1e6));
  }
  EXPECT_EQ(sched.segment_count(), 3u);  // t=0 anchor, clamp at 10 s, restore
  EXPECT_DOUBLE_EQ(sched.RateAt(Seconds(5)), 8e6);
  EXPECT_DOUBLE_EQ(sched.RateAt(Seconds(60)), 1e6);
  EXPECT_DOUBLE_EQ(sched.RateAt(Seconds(110) + 1), 8e6);

  // A redundant SetRateFrom (same rate as the active segment) adds nothing.
  sched.SetRateFrom(Minutes(10), BitsPerSecond(8e6));
  EXPECT_EQ(sched.segment_count(), 3u);

  // The step function itself is unchanged by merging.
  EXPECT_EQ(sched.NextChangeAfter(0), Seconds(10));
  EXPECT_EQ(sched.NextChangeAfter(Seconds(10)), Seconds(110));
  EXPECT_EQ(sched.NextChangeAfter(Seconds(110)), torbase::kTimeNever);
}

TEST(BandwidthTest, MergeKeepsRestorePointWhenRatesDiffer) {
  BandwidthSchedule sched(BitsPerSecond(8e6));
  sched.LimitDuring(Seconds(1), Seconds(2), BitsPerSecond(1e6));
  sched.LimitDuring(Seconds(2), Seconds(3), BitsPerSecond(2e6));
  EXPECT_EQ(sched.segment_count(), 4u);  // 0, clamp1, clamp2, restore
  EXPECT_DOUBLE_EQ(sched.RateAt(Seconds(1)), 1e6);
  EXPECT_DOUBLE_EQ(sched.RateAt(Seconds(2)), 2e6);
  EXPECT_DOUBLE_EQ(sched.RateAt(Seconds(3)), 8e6);
}

NetworkConfig SmallNetConfig(uint32_t n, double bw_bps, Duration latency) {
  NetworkConfig config;
  config.node_count = n;
  config.default_bandwidth_bps = bw_bps;
  config.default_latency = latency;
  config.per_message_overhead_bytes = 64;
  return config;
}

TEST(NetworkTest, DeliveryTimeMatchesNicModel) {
  Simulator sim;
  Network net(&sim, SmallNetConfig(2, BitsPerSecond(1e6), Millis(10)));
  TimePoint delivered_at = 0;
  Bytes got;
  net.SetHandler(1, [&](NodeId from, const Bytes& payload) {
    EXPECT_EQ(from, 0u);
    got = payload;
    delivered_at = sim.now();
  });
  // 936-byte payload + 64 overhead = 1000 bytes = 8000 bits.
  net.Send(0, 1, "TEST", Bytes(936, 0xaa));
  sim.Run();
  // egress 8000 us + latency 10000 us + ingress 8000 us.
  EXPECT_EQ(delivered_at, 26000u);
  EXPECT_EQ(got.size(), 936u);
}

TEST(NetworkTest, EgressFairSharesConcurrentSends) {
  Simulator sim;
  Network net(&sim, SmallNetConfig(3, BitsPerSecond(1e6), Millis(0)));
  std::vector<TimePoint> deliveries;
  for (NodeId r : {1u, 2u}) {
    net.SetHandler(r, [&](NodeId, const Bytes&) { deliveries.push_back(sim.now()); });
  }
  // Two concurrent messages from node 0: each gets half the egress rate, so
  // both finish egress at 16000 us, then each crosses its receiver's idle
  // ingress in 8000 us.
  net.Send(0, 1, "TEST", Bytes(936, 1));  // 8000 bits
  net.Send(0, 2, "TEST", Bytes(936, 2));  // 8000 bits
  sim.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 24000u);
  EXPECT_EQ(deliveries[1], 24000u);
}

TEST(NetworkTest, IngressFairSharesConcurrentSenders) {
  Simulator sim;
  Network net(&sim, SmallNetConfig(3, BitsPerSecond(1e6), Millis(0)));
  std::vector<TimePoint> deliveries;
  net.SetHandler(2, [&](NodeId, const Bytes&) { deliveries.push_back(sim.now()); });
  net.Send(0, 2, "TEST", Bytes(936, 1));
  net.Send(1, 2, "TEST", Bytes(936, 2));
  sim.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  // Both arrive at 8000 after their (parallel) egress; the receiver's ingress
  // fair-shares, so both complete together at 8000 + 16000.
  EXPECT_EQ(deliveries[0], 24000u);
  EXPECT_EQ(deliveries[1], 24000u);
}

TEST(NetworkTest, LateFlowSharesRemainingCapacity) {
  Simulator sim;
  Network net(&sim, SmallNetConfig(3, BitsPerSecond(1e6), Millis(0)));
  std::vector<std::pair<NodeId, TimePoint>> deliveries;
  for (NodeId r : {1u, 2u}) {
    net.SetHandler(r, [&, r](NodeId, const Bytes&) { deliveries.emplace_back(r, sim.now()); });
  }
  // Flow A: 16000 bits at t=0. Flow B: 4000 bits at t=8000 us.
  // [0,8000): A alone drains 8000 bits (8000 left).
  // [8000,16000): A and B share; each drains 4000 bits -> B egress done at
  // 16000 with 0 left, A has 4000 left, done at 20000.
  net.Send(0, 1, "A", Bytes(1936, 1));  // 16000 bits
  sim.ScheduleAt(8000, [&] { net.Send(0, 2, "B", Bytes(436, 2)); });  // 4000 bits
  sim.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  // B: egress done 16000, ingress (idle, 4000 bits) +4000 -> 20000.
  EXPECT_EQ(deliveries[0].first, 2u);
  EXPECT_EQ(deliveries[0].second, 20000u);
  // A: egress done 20000, ingress 16000 bits -> 36000.
  EXPECT_EQ(deliveries[1].first, 1u);
  EXPECT_EQ(deliveries[1].second, 36000u);
}

TEST(NetworkTest, SelfSendDeliversWithoutBandwidthCost) {
  Simulator sim;
  Network net(&sim, SmallNetConfig(2, BitsPerSecond(8.0), Millis(500)));
  bool delivered = false;
  net.SetHandler(0, [&](NodeId from, const Bytes&) {
    EXPECT_EQ(from, 0u);
    delivered = true;
  });
  net.Send(0, 0, "LOCAL", Bytes{1, 2, 3});
  sim.Run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(sim.now(), 0u);
}

TEST(NetworkTest, CountsTrafficPerNodeAndKind) {
  Simulator sim;
  Network net(&sim, SmallNetConfig(2, BitsPerSecond(1e9), Millis(1)));
  net.SetHandler(1, [](NodeId, const Bytes&) {});
  net.Send(0, 1, "VOTE", Bytes(100, 0));
  net.Send(0, 1, "VOTE", Bytes(100, 0));
  net.Send(0, 1, "SIG", Bytes(10, 0));
  sim.Run();
  EXPECT_EQ(net.counters(0).messages_sent, 3u);
  EXPECT_EQ(net.counters(0).bytes_sent, (100u + 64) * 2 + (10 + 64));
  EXPECT_EQ(net.counters(1).messages_received, 3u);
  EXPECT_EQ(net.bytes_by_kind().at("VOTE"), (100u + 64) * 2);
  EXPECT_EQ(net.bytes_by_kind().at("SIG"), 10u + 64);
}

TEST(NetworkTest, AsymmetricLatency) {
  Simulator sim;
  Network net(&sim, SmallNetConfig(2, std::numeric_limits<double>::infinity(), Millis(10)));
  net.SetLatency(0, 1, Millis(5));
  net.SetLatency(1, 0, Millis(50));
  TimePoint t01 = 0;
  TimePoint t10 = 0;
  net.SetHandler(1, [&](NodeId, const Bytes&) { t01 = sim.now(); });
  net.SetHandler(0, [&](NodeId, const Bytes&) { t10 = sim.now(); });
  net.Send(0, 1, "A", Bytes{1});
  net.Send(1, 0, "B", Bytes{1});
  sim.Run();
  EXPECT_EQ(t01, Millis(5));
  EXPECT_EQ(t10, Millis(50));
}

TEST(NetworkTest, UndeliverableWhenRateZeroForever) {
  Simulator sim;
  NetworkConfig config = SmallNetConfig(2, BitsPerSecond(1e6), Millis(1));
  Network net(&sim, config);
  net.egress(0).SetRateFrom(0, 0.0);  // node 0 permanently offline outbound
  bool delivered = false;
  net.SetHandler(1, [&](NodeId, const Bytes&) { delivered = true; });
  net.Send(0, 1, "X", Bytes{1});
  sim.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.undeliverable_count(), 1u);
}

TEST(NetworkTest, TransferStalledByAttackWindowResumesAfterIt) {
  Simulator sim;
  NetworkConfig config = SmallNetConfig(2, BitsPerSecond(1e6), Millis(0));
  Network net(&sim, config);
  // Node 0 offline (DDoS) during [0, 5 s); back to 1 Mbit/s afterwards.
  net.egress(0).LimitDuring(0, Seconds(5), 0.0);
  TimePoint delivered_at = 0;
  net.SetHandler(1, [&](NodeId, const Bytes&) { delivered_at = sim.now(); });
  net.Send(0, 1, "X", Bytes(936, 0));  // 8000 bits
  sim.Run();
  // Egress starts moving at t=5 s, takes 8000 us; ingress another 8000 us.
  EXPECT_EQ(delivered_at, Seconds(5) + 16000);
}

TEST(NetworkTest, MidRunLimitNodeSlowsInFlightTransfer) {
  // Dynamic attack schedules clamp NICs while transfers are draining; the NIC
  // must re-derive the completion time instead of honouring the stale one.
  Simulator sim;
  Network net(&sim, SmallNetConfig(2, BitsPerSecond(1e6), Millis(0)));
  TimePoint delivered_at = 0;
  net.SetHandler(1, [&](NodeId, const Bytes&) { delivered_at = sim.now(); });
  net.Send(0, 1, "X", Bytes(1936, 0));  // 16000 bits: egress alone takes 16 ms

  // At t=8 ms (half drained), clamp node 0 to a tenth of the rate for 1 s.
  sim.ScheduleAt(8000, [&] { net.LimitNode(0, 8000, Seconds(1) + 8000, BitsPerSecond(1e5)); });
  sim.Run();
  // Egress: 8000 bits at 1 Mbit/s (8 ms) + 8000 bits at 0.1 Mbit/s (80 ms),
  // then ingress at the unclamped 1 Mbit/s (16 ms).
  EXPECT_EQ(delivered_at, 8000u + 80000u + 16000u);
}

TEST(NetworkTest, MidRunLimitLiftsWhenWindowEnds) {
  Simulator sim;
  Network net(&sim, SmallNetConfig(2, BitsPerSecond(1e6), Millis(0)));
  TimePoint delivered_at = 0;
  net.SetHandler(1, [&](NodeId, const Bytes&) { delivered_at = sim.now(); });
  net.Send(0, 1, "X", Bytes(1936, 0));  // 16000 bits
  // Clamp to zero for [8 ms, 1 s): the transfer stalls, then resumes.
  sim.ScheduleAt(8000, [&] { net.LimitNode(0, 8000, Seconds(1), 0.0); });
  sim.Run();
  // 8 ms draining + stall until 1 s + remaining 8000 bits (8 ms) + ingress.
  EXPECT_EQ(delivered_at, Seconds(1) + 8000u + 16000u);
}

TEST(NetworkTest, SetNodeRateFromCrashesAndRecovers) {
  Simulator sim;
  Network net(&sim, SmallNetConfig(2, BitsPerSecond(1e6), Millis(0)));
  TimePoint delivered_at = 0;
  net.SetHandler(1, [&](NodeId, const Bytes&) { delivered_at = sim.now(); });
  // Crash node 0 from t=0; recover at t=2 s (installed before the run).
  net.SetNodeRateFrom(0, 0, 0.0);
  net.SetNodeRateFrom(0, Seconds(2), BitsPerSecond(1e6));
  net.Send(0, 1, "X", Bytes(936, 0));  // 8000 bits
  sim.Run();
  EXPECT_EQ(delivered_at, Seconds(2) + 8000u + 8000u);
}

// A ping-pong actor pair exercising the harness wiring.
class PingActor : public Actor {
 public:
  void Start() override {
    if (id() == 0) {
      SendTo(1, "PING", Bytes{0});
    }
  }
  void OnMessage(NodeId from, const Bytes& payload) override {
    ++received;
    if (payload[0] < 3) {
      SendTo(from, "PING", Bytes{static_cast<uint8_t>(payload[0] + 1)});
    }
  }
  int received = 0;
};

TEST(ActorTest, PingPongThroughHarness) {
  NetworkConfig config = SmallNetConfig(2, BitsPerSecond(1e9), Millis(1));
  Harness harness(config);
  auto* a = harness.AddActor(std::make_unique<PingActor>());
  auto* b = harness.AddActor(std::make_unique<PingActor>());
  harness.StartAll();
  harness.sim().Run();
  // Messages carry payload 0,1,2,3: b receives 0 and 2, a receives 1 and 3.
  EXPECT_EQ(static_cast<PingActor*>(b)->received, 2);
  EXPECT_EQ(static_cast<PingActor*>(a)->received, 2);
}

class BroadcastActor : public Actor {
 public:
  void Start() override {
    if (id() == 0) {
      SendToAllOthers("HELLO", Bytes{42});
    }
  }
  void OnMessage(NodeId, const Bytes&) override { ++received; }
  int received = 0;
};

TEST(ActorTest, BroadcastReachesAllOthers) {
  Harness harness(SmallNetConfig(5, BitsPerSecond(1e9), Millis(1)));
  std::vector<BroadcastActor*> actors;
  for (int i = 0; i < 5; ++i) {
    actors.push_back(
        static_cast<BroadcastActor*>(harness.AddActor(std::make_unique<BroadcastActor>())));
  }
  harness.StartAll();
  harness.sim().Run();
  EXPECT_EQ(actors[0]->received, 0);
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(actors[i]->received, 1) << "actor " << i;
  }
}

TEST(ActorTest, TimersFireAndCancel) {
  Harness harness(SmallNetConfig(2, BitsPerSecond(1e9), Millis(1)));
  struct TimerActor : Actor {
    void Start() override {
      SetTimer(Seconds(1), [this] { fired = true; });
      EventId id = SetTimer(Seconds(2), [this] { cancelled_fired = true; });
      CancelTimer(id);
    }
    void OnMessage(NodeId, const Bytes&) override {}
    bool fired = false;
    bool cancelled_fired = false;
  };
  auto* actor = static_cast<TimerActor*>(harness.AddActor(std::make_unique<TimerActor>()));
  harness.AddActor(std::make_unique<BroadcastActor>());
  harness.StartAll();
  harness.sim().Run();
  EXPECT_TRUE(actor->fired);
  EXPECT_FALSE(actor->cancelled_fired);
}

}  // namespace
}  // namespace torsim
