// Pins the allocation behaviour of the consensus hot path: ComputeConsensus
// over an n-relay, a-authority workload must perform a small constant number
// of heap allocations — scratch vectors and one relays reservation — never
// O(n) map nodes or per-relay string copies. Includes the binary-wide
// counting allocator (one TU per binary, like tests/event_alloc_test.cc).
#include "src/common/counting_allocator.h"

#include <gtest/gtest.h>

#include "src/tordir/aggregate.h"
#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"

namespace {

using torbase::counting_allocator::AllocationCount;

TEST(AggregateAllocTest, ComputeConsensusAllocatesConstantNotPerRelay) {
  constexpr size_t kRelays = 4000;
  constexpr uint32_t kAuthorities = 9;
  tordir::PopulationConfig config;
  config.relay_count = kRelays;
  config.seed = 3;
  const auto population = tordir::GeneratePopulation(config);
  const auto votes = tordir::MakeAllVotes(kAuthorities, population, config);

  // Warm-up: interns every string the workload uses and faults in the
  // allocator's metadata.
  const auto warmup = tordir::ComputeConsensus(votes);
  ASSERT_GT(warmup.relays.size(), kRelays * 9 / 10);

  const uint64_t before = AllocationCount();
  const auto consensus = tordir::ComputeConsensus(votes);
  const uint64_t allocations = AllocationCount() - before;
  ASSERT_EQ(consensus.relays.size(), warmup.relays.size());

  // Steady state: 3 metadata vectors + cursors + 4 scratch vectors + the
  // relays reservation + the vector<const VoteDocument*> of the convenience
  // overload ≈ 10; 64 leaves headroom without ever letting an O(n) term
  // (4000+ allocations) sneak back in.
  EXPECT_LE(allocations, 64u);
  const double per_relay =
      static_cast<double>(allocations) / static_cast<double>(consensus.relays.size());
  EXPECT_LT(per_relay, 0.02) << allocations << " allocations for "
                             << consensus.relays.size() << " relays";
}

TEST(AggregateAllocTest, RelayStatusCopyDoesNotAllocate) {
  tordir::PopulationConfig config;
  config.relay_count = 64;
  const auto population = tordir::GeneratePopulation(config);

  const uint64_t before = AllocationCount();
  tordir::RelayStatus copy = population[0];
  copy = population[63];
  const uint64_t allocations = AllocationCount() - before;
  EXPECT_EQ(allocations, 0u) << "interned RelayStatus copies must be allocation-free";
  EXPECT_EQ(copy, population[63]);
}

}  // namespace
