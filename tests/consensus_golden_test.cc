// Golden consensus-digest fixtures and large-n aggregation properties.
//
// The digests below were captured from the ORIGINAL map-based ComputeConsensus
// (pre flat-merge / string-interning refactor, commit 0d0315b) and pinned
// in-repo: the rewritten O(n·a) aggregation and the interned relay strings
// must reproduce the exact same consensus bytes for the refactor to count as
// semantics-preserving. If an intentional rule change ever touches these,
// re-derive them with the old implementation's rules in mind, not by pasting
// the new output.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "src/tordir/aggregate.h"
#include "src/tordir/consensus_diff.h"
#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"
#include "src/tordir/string_pool.h"

namespace tordir {
namespace {

struct GoldenCase {
  size_t relay_count;
  uint64_t seed;
  uint32_t authority_count;
  size_t consensus_relays;
  const char* digest_hex;
};

// Captured from the pre-refactor implementation; see file comment.
const GoldenCase kGoldenCases[] = {
    {200u, 77ull, 9u, 200u,
     "bd08eb439163f6509f86d8a9523e47292f7b8205a02e58d505610216d25c24b8"},
    {500u, 1ull, 5u, 500u,
     "f56ea5dc544172d73ab03fee8253e2f2283781710f585b0879bceed5301be261"},
    {1000u, 3ull, 9u, 1000u,
     "f0d44c642707bca93d8ec290f87c0fe029251bcdbbf3143db9a825bc02f36429"},
    {8000u, 5ull, 9u, 8000u,
     "c0f56d0cacfbd59bc28dc6205ba86ce0fb72d77d810084bf80985760712affc2"},
};

// Tree-digest goldens over the same fixtures ("sha256-tree-v1" shape; the
// construction itself is pinned against an independent implementation in
// tests/crypto_test.cc, these pin its application to consensus bytes). The
// streaming goldens above must stay untouched — tree digests are a separate
// domain, not a replacement.
const char* const kGoldenTreeDigests[] = {
    "1720cb82a65cb25a39edeccb1ef2fe1b431b1d14c91c8177a3d7e63f3500cd1f",
    "0c9c1df8b5ab0637822ced62d81c050b5b915ee2c7379344f4dbec313beda499",
    "532925a402b53de0af2e173195b0313a65ab7dffc68764eefa7a1abfaad2076c",
    "cd335db7c2e7427e8c18ab78eac3f7c9bca98d024cdd5b2a351ec979fa36f381",
};

ConsensusDocument GoldenConsensus(const GoldenCase& c) {
  PopulationConfig config;
  config.relay_count = c.relay_count;
  config.seed = c.seed;
  const auto population = GeneratePopulation(config);
  const auto votes = MakeAllVotes(c.authority_count, population, config);
  return ComputeConsensus(votes);
}

TEST(ConsensusGoldenTest, DigestsMatchPreRefactorImplementation) {
  for (const GoldenCase& c : kGoldenCases) {
    const ConsensusDocument consensus = GoldenConsensus(c);
    EXPECT_EQ(consensus.relays.size(), c.consensus_relays)
        << "relays=" << c.relay_count << " seed=" << c.seed;
    EXPECT_EQ(ConsensusDigest(consensus).ToHex(), c.digest_hex)
        << "relays=" << c.relay_count << " seed=" << c.seed;
  }
}

TEST(ConsensusGoldenTest, TreeDigestsMatchPinnedRoots) {
  for (size_t i = 0; i < std::size(kGoldenCases); ++i) {
    const ConsensusDocument consensus = GoldenConsensus(kGoldenCases[i]);
    EXPECT_EQ(TreeConsensusDigest(consensus).ToHex(), kGoldenTreeDigests[i])
        << "relays=" << kGoldenCases[i].relay_count;
  }
}

TEST(ConsensusGoldenTest, SerializedConsensusRoundTripsAtScale) {
  const ConsensusDocument consensus = GoldenConsensus(kGoldenCases[2]);  // 1k relays
  auto parsed = ParseConsensus(SerializeConsensus(consensus));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, consensus);
}

// The k-way merge must not depend on vote order, even at a relay count where
// every scratch buffer has been through thousands of reuse cycles. 8k relays
// x 9 authorities, several shuffles, digest-exact.
TEST(ConsensusGoldenTest, OrderIndependentAt8kRelays) {
  PopulationConfig config;
  config.relay_count = 8000;
  config.seed = 5;
  const auto population = GeneratePopulation(config);
  auto votes = MakeAllVotes(9, population, config);

  const auto baseline_digest = ConsensusDigest(ComputeConsensus(votes));
  std::mt19937 shuffle_rng(11);
  for (int trial = 0; trial < 3; ++trial) {
    std::shuffle(votes.begin(), votes.end(), shuffle_rng);
    EXPECT_EQ(ConsensusDigest(ComputeConsensus(votes)), baseline_digest) << "trial " << trial;
  }
}

// The merge assumes fingerprint-sorted relay lists but must fall back to a
// sorted shadow copy (not silently mis-aggregate) when a caller hands it an
// unsorted vote.
TEST(ConsensusGoldenTest, UnsortedVotesAggregateIdentically) {
  PopulationConfig config;
  config.relay_count = 300;
  config.seed = 9;
  const auto population = GeneratePopulation(config);
  auto votes = MakeAllVotes(5, population, config);
  const auto baseline_digest = ConsensusDigest(ComputeConsensus(votes));

  std::mt19937 shuffle_rng(7);
  for (auto& vote : votes) {
    std::shuffle(vote.relays.begin(), vote.relays.end(), shuffle_rng);
  }
  EXPECT_EQ(ConsensusDigest(ComputeConsensus(votes)), baseline_digest);
}

// Tie-breaking fixtures for the popular-vote fields, exercised through the
// merge path (single relay, controlled listings).
RelayStatus TieRelay() {
  RelayStatus relay;
  relay.fingerprint.fill(0x42);
  relay.nickname = "tie";
  relay.address = "10.0.0.1";
  relay.or_port = 9001;
  relay.published = 1735689600;
  relay.SetFlag(RelayFlag::kRunning, true);
  relay.version = "Tor 0.4.8.10";
  relay.protocols = "Cons=1-2 Link=1-5";
  relay.bandwidth = 100;
  relay.exit_policy = "reject 1-65535";
  relay.microdesc_digest.fill(0xcd);
  return relay;
}

std::vector<VoteDocument> TieVotes(const std::vector<RelayStatus>& relays) {
  std::vector<VoteDocument> votes;
  for (torbase::NodeId a = 0; a < relays.size(); ++a) {
    VoteDocument vote;
    vote.authority = a;
    vote.authority_nickname = "auth" + std::to_string(a);
    vote.relays = {relays[a]};
    votes.push_back(std::move(vote));
  }
  return votes;
}

TEST(ConsensusGoldenTest, VersionCountTieBreaksTowardsLargestVersion) {
  std::vector<RelayStatus> relays(4, TieRelay());
  relays[0].version = "Tor 0.4.8.9";
  relays[1].version = "Tor 0.4.8.12";
  relays[2].version = "Tor 0.4.8.12";
  relays[3].version = "Tor 0.4.8.9";
  const auto consensus = ComputeConsensus(TieVotes(relays));
  ASSERT_EQ(consensus.relays.size(), 1u);
  EXPECT_EQ(consensus.relays[0].version, "Tor 0.4.8.12");
}

// Distinct spellings that CompareVersions considers equal ("0.08" vs "0.8")
// merge their popular-vote counts; the merged group keeps the spelling of its
// lowest-authority listing, a rule that is independent of vote order (the old
// map-based code resolved this case by insertion order instead).
TEST(ConsensusGoldenTest, ComparatorEquivalentVersionsMergeCounts) {
  std::vector<RelayStatus> relays(5, TieRelay());
  relays[0].version = "Tor 0.4.08.9";
  relays[1].version = "Tor 0.4.8.9";
  relays[2].version = "Tor 0.4.8.12";
  relays[3].version = "Tor 0.4.8.12";
  relays[4].version = "Tor 0.4.8.9";
  // Class {0.4.08.9, 0.4.8.9} has 3 listings, {0.4.8.12} has 2: the merged
  // class wins and reports authority 0's spelling.
  auto votes = TieVotes(relays);
  const auto consensus = ComputeConsensus(votes);
  ASSERT_EQ(consensus.relays.size(), 1u);
  EXPECT_EQ(consensus.relays[0].version, "Tor 0.4.08.9");
  // And the choice is stable under reordering.
  std::reverse(votes.begin(), votes.end());
  EXPECT_EQ(ComputeConsensus(votes).relays[0].version, "Tor 0.4.08.9");
}

TEST(ConsensusGoldenTest, EndpointTieBreaksTowardsLargestAuthority) {
  std::vector<RelayStatus> relays(4, TieRelay());
  relays[0].address = "10.0.0.1";
  relays[1].address = "10.0.0.1";
  relays[2].address = "10.0.0.2";
  relays[3].address = "10.0.0.2";
  // 2-2 endpoint split: the group containing the largest authority (3) wins.
  const auto consensus = ComputeConsensus(TieVotes(relays));
  ASSERT_EQ(consensus.relays.size(), 1u);
  EXPECT_EQ(consensus.relays[0].address, "10.0.0.2");
}

// A (malformed but parseable) vote that lists the same fingerprint twice can
// produce endpoint groups tied on both count and max authority; the merge
// must resolve that towards the smallest endpoint tuple regardless of row
// order, like the original tuple-keyed map did.
TEST(ConsensusGoldenTest, DuplicateFingerprintEndpointTieIsOrderIndependent) {
  RelayStatus first = TieRelay();
  first.address = "10.0.0.9";
  RelayStatus second = TieRelay();
  second.address = "10.0.0.1";

  AggregationParams params;
  params.fixed_inclusion_threshold = 1;
  for (const bool swapped : {false, true}) {
    VoteDocument vote;
    vote.authority = 0;
    vote.authority_nickname = "auth0";
    vote.relays = swapped ? std::vector<RelayStatus>{second, first}
                          : std::vector<RelayStatus>{first, second};
    const auto consensus = ComputeConsensus(std::vector<VoteDocument>{vote}, params);
    ASSERT_EQ(consensus.relays.size(), 1u);
    EXPECT_EQ(consensus.relays[0].address, "10.0.0.1") << "swapped=" << swapped;
  }
}

// Consensus-diff goldens over the same fixtures: the diff of a deterministic
// churned successor is pinned by digest, and applying it reproduces the
// successor's serialization byte for byte. Any change to the diff wire format
// or to ChurnConsensus's row selection shows up here.
const char* const kGoldenDiffDigests[] = {
    "9e95539e45c124e9ee8987c3d82ed837aabbf1276c3994f3b92f52be99d4fdab",
    "96194e0b0dfec4f92b0fd6c1ba15c19611a99532ac5dd5336e7449df0bfc337d",
};

TEST(ConsensusGoldenTest, ChurnedConsensusDiffsMatchPinnedDigests) {
  for (size_t i = 0; i < std::size(kGoldenDiffDigests); ++i) {
    ConsensusDocument base = GoldenConsensus(kGoldenCases[i]);
    for (uint32_t a = 0; a < kGoldenCases[i].authority_count; ++a) {
      torcrypto::Signature sig;
      sig.signer = a;
      sig.bytes.fill(static_cast<uint8_t>(0xA0 + a));
      base.signatures.push_back(sig);
    }
    ConsensusChurnConfig churn;
    churn.change_fraction = 0.02;
    churn.remove_fraction = 0.01;
    churn.add_fraction = 0.01;
    churn.seed = kGoldenCases[i].seed;
    const ConsensusDocument next = ChurnConsensus(base, churn);

    const std::string diff = ComputeConsensusDiff(base, next);
    EXPECT_EQ(torcrypto::Digest256::Of(diff).ToHex(), kGoldenDiffDigests[i])
        << "relays=" << kGoldenCases[i].relay_count;
    const auto patched = ApplyConsensusDiff(SerializeConsensus(base), diff);
    ASSERT_TRUE(patched.ok()) << patched.status().ToString();
    EXPECT_EQ(*patched, SerializeConsensus(next))
        << "relays=" << kGoldenCases[i].relay_count;
  }
}

// Interned strings hash-cons: two independently parsed copies of the same
// document are bit-identical, including their interned ids.
TEST(ConsensusGoldenTest, ReparsedVotesAreIdentical) {
  PopulationConfig config;
  config.relay_count = 50;
  const auto population = GeneratePopulation(config);
  const auto vote = MakeVote(0, 9, population, config);
  const std::string text = SerializeVote(vote);
  auto first = ParseVote(text);
  auto second = ParseVote(text);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(*first, vote);
  EXPECT_EQ(first->relays[0].nickname.id(), second->relays[0].nickname.id());
}

}  // namespace
}  // namespace tordir
