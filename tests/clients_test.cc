// Tests for the consumption plane (src/clients): the aggregate fluid client
// model's freshness accounting, outage/hard-down detection, cache capacity
// limiting, backlog dynamics, and its O(caches) (client-count-independent)
// cost model.
#include <gtest/gtest.h>

#include <cmath>

#include "src/clients/population.h"

namespace torclients {
namespace {

constexpr double kPeriod = 3600.0;
constexpr double kLead = 600.0;

ClientLoadSpec MillionClients() {
  ClientLoadSpec spec;
  spec.client_count = 1'000'000;
  spec.bootstrap_fraction = 0.05;
  spec.cache_count = 16;
  spec.cache_bandwidth_bps = torsim::MegabitsPerSecond(1000);
  spec.cache_mirror_delay = torbase::Seconds(10);
  return spec;
}

// A healthy round: published at 300 s (inside the lead window), fresh for the
// following period.
PublishedDocument HealthyDocument() {
  PublishedDocument doc;
  doc.published_seconds = 300.0;
  doc.fresh_until_seconds = kLead + kPeriod;
  doc.valid_until_seconds = kLead + 3 * kPeriod;
  doc.size_bytes = 800e3;
  return doc;
}

TEST(ClientPopulationTest, HealthyRoundServesAllDemandFresh) {
  const auto result = SimulateClientLoad(MillionClients(), {HealthyDocument()}, kPeriod);

  // Demand conservation: one fetch per client per period.
  EXPECT_DOUBLE_EQ(result.total_fetches, 1e6);
  EXPECT_NEAR(result.fresh_fetches + result.stale_fetches + result.unserved_fetches,
              result.total_fetches, 1e-6);

  // The prior document covers [0, 600); the new one lands at 310 — fresh
  // service throughout, no outage, nothing unserved.
  EXPECT_DOUBLE_EQ(result.fresh_fraction, 1.0);
  EXPECT_EQ(result.stale_fetches, 0.0);
  EXPECT_EQ(result.unserved_fetches, 0.0);
  EXPECT_EQ(result.outage_seconds, 0.0);
  EXPECT_EQ(result.hard_down_seconds, 0.0);
  EXPECT_TRUE(std::isnan(result.time_to_first_stale_seconds));
  EXPECT_TRUE(std::isnan(result.outage_start_seconds));
}

TEST(ClientPopulationTest, FailedRoundGoesStaleWhenThePriorExpires) {
  ClientLoadSpec spec = MillionClients();
  spec.consensus_size_hint_bytes = 800e3;  // no document provides a size
  const auto result = SimulateClientLoad(spec, {}, kPeriod);

  // The prior document is fresh until vote_lead, stale afterwards: the
  // client-visible outage spans the rest of the period.
  EXPECT_DOUBLE_EQ(result.time_to_first_stale_seconds, kLead);
  EXPECT_DOUBLE_EQ(result.outage_start_seconds, kLead);
  EXPECT_DOUBLE_EQ(result.outage_seconds, kPeriod - kLead);
  EXPECT_NEAR(result.fresh_fraction, kLead / kPeriod, 1e-9);
  // Still valid for another two periods: served stale, not down.
  EXPECT_EQ(result.hard_down_seconds, 0.0);
  EXPECT_EQ(result.unserved_fetches, 0.0);
}

TEST(ClientPopulationTest, ThreeMissedRoundsHardDownTheNetwork) {
  // The paper's §2.1 arithmetic, client-side: with no successful round, the
  // prior document expires validity_periods - 1 periods after the lead and
  // every fetch after that fails outright.
  ClientLoadSpec spec = MillionClients();
  spec.consensus_size_hint_bytes = 800e3;
  const double window = 4 * kPeriod;
  const auto result = SimulateClientLoad(spec, {}, window);

  const double down_at = kLead + 2 * kPeriod;
  EXPECT_DOUBLE_EQ(result.hard_down_start_seconds, down_at);
  EXPECT_DOUBLE_EQ(result.hard_down_seconds, window - down_at);
  EXPECT_DOUBLE_EQ(result.outage_start_seconds, kLead);
  EXPECT_DOUBLE_EQ(result.outage_seconds, window - kLead);
  // While down, steady refetches fail and bootstrapping clients queue.
  EXPECT_GT(result.unserved_fetches, 0.0);
  EXPECT_GT(result.peak_backlog_fetches, 0.0);
}

TEST(ClientPopulationTest, RecoveryDrainsTheBootstrapBacklog) {
  // Down for two periods, then a round succeeds: the queued bootstraps are
  // served when the document returns (the post-outage thundering herd).
  ClientLoadSpec spec = MillionClients();
  spec.consensus_size_hint_bytes = 800e3;
  PublishedDocument late;
  late.published_seconds = kLead + 2.5 * kPeriod;
  late.fresh_until_seconds = kLead + 3.5 * kPeriod;
  late.valid_until_seconds = kLead + 5.5 * kPeriod;
  late.size_bytes = 800e3;
  const double window = 4 * kPeriod;
  const auto result = SimulateClientLoad(spec, {late}, window);

  EXPECT_GT(result.hard_down_seconds, 0.0);
  EXPECT_GT(result.peak_backlog_fetches, 0.0);
  // Every queued bootstrap is eventually served (ample cache capacity), so
  // unserved demand is exactly the steady fetches that failed while down.
  const double down = result.hard_down_seconds;
  const double steady_rate = 1e6 * (1.0 - spec.bootstrap_fraction) / kPeriod;
  EXPECT_NEAR(result.unserved_fetches, steady_rate * down, 1.0);
  // Demand is conserved.
  EXPECT_NEAR(result.fresh_fetches + result.stale_fetches + result.unserved_fetches,
              result.total_fetches, 1e-6);
}

TEST(ClientPopulationTest, CacheCapacityLimitsServedDemand) {
  // Starve the cache tier: 2 caches x 10 Mbit/s serving a million clients
  // fetching 800 KB documents cannot keep up; the backlog never drains.
  ClientLoadSpec spec = MillionClients();
  spec.cache_count = 2;
  spec.cache_bandwidth_bps = torsim::MegabitsPerSecond(10);
  const auto result = SimulateClientLoad(spec, {HealthyDocument()}, kPeriod);

  // 2 x 10 Mbit/s x 3600 s / 6.4 Mbit per fetch = 11,250 servable fetches.
  const double servable = 2 * 10e6 * kPeriod / (800e3 * 8.0);
  EXPECT_NEAR(result.fresh_fetches, servable, 1.0);
  EXPECT_LT(result.fresh_fraction, 0.02);
  EXPECT_GT(result.unserved_fetches, 9.5e5);
  // The backlog tracks blocked *bootstraps* only (50,000 = 5% of 1M);
  // capacity-starved steady refetches count unserved, they do not queue.
  EXPECT_NEAR(result.peak_backlog_fetches, 5e4, 1.0);
}

TEST(ClientPopulationTest, CostIsIndependentOfClientCount) {
  // The fluid model's cost is O(caches + documents), not O(clients): the
  // timeline (the work actually done) has the same shape for 1e3 and 5e6
  // clients, and scaling the population only scales the fluid counts.
  ClientLoadSpec small = MillionClients();
  small.client_count = 1'000;
  ClientLoadSpec large = MillionClients();
  large.client_count = 5'000'000;

  const auto small_result = SimulateClientLoad(small, {HealthyDocument()}, kPeriod);
  const auto large_result = SimulateClientLoad(large, {HealthyDocument()}, kPeriod);

  ASSERT_EQ(small_result.timeline.size(), large_result.timeline.size());
  for (size_t i = 0; i < small_result.timeline.size(); ++i) {
    EXPECT_EQ(small_result.timeline[i].state, large_result.timeline[i].state) << i;
    EXPECT_NEAR(large_result.timeline[i].fresh_fetches,
                5000.0 * small_result.timeline[i].fresh_fetches, 1e-3)
        << i;
  }
  EXPECT_DOUBLE_EQ(large_result.total_fetches, 5e6);
}

TEST(ClientPopulationTest, DeterministicAcrossCalls) {
  const ClientLoadSpec spec = MillionClients();
  const auto a = SimulateClientLoad(spec, {HealthyDocument()}, 2 * kPeriod);
  const auto b = SimulateClientLoad(spec, {HealthyDocument()}, 2 * kPeriod);
  EXPECT_EQ(a.fresh_fetches, b.fresh_fetches);
  EXPECT_EQ(a.stale_fetches, b.stale_fetches);
  EXPECT_EQ(a.unserved_fetches, b.unserved_fetches);
  EXPECT_EQ(a.outage_seconds, b.outage_seconds);
  EXPECT_EQ(a.timeline.size(), b.timeline.size());
}

TEST(ClientPopulationTest, TimelineSlicesTileTheWindowAndClassifyStates) {
  ClientLoadSpec spec = MillionClients();
  spec.consensus_size_hint_bytes = 800e3;
  const double window = 3 * kPeriod;
  const auto result = SimulateClientLoad(spec, {}, window);

  ASSERT_FALSE(result.timeline.empty());
  EXPECT_DOUBLE_EQ(result.timeline.front().begin_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.timeline.back().end_seconds, window);
  for (size_t i = 1; i < result.timeline.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.timeline[i].begin_seconds, result.timeline[i - 1].end_seconds);
  }
  // fresh (prior) -> stale -> down, in order.
  EXPECT_EQ(result.timeline.front().state, AvailabilitySlice::State::kFresh);
  EXPECT_EQ(result.timeline.back().state, AvailabilitySlice::State::kDown);
}

TEST(ClientPopulationTest, ZeroClientsOrEmptyWindowIsInert) {
  ClientLoadSpec spec = MillionClients();
  spec.client_count = 0;
  EXPECT_EQ(SimulateClientLoad(spec, {HealthyDocument()}, kPeriod).total_fetches, 0.0);
  EXPECT_EQ(SimulateClientLoad(MillionClients(), {HealthyDocument()}, 0.0).total_fetches, 0.0);
}

}  // namespace
}  // namespace torclients
