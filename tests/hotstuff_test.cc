// Tests for the single-shot HotStuff engine: agreement/termination/validity in
// the good case, leader failures, Byzantine leaders (invalid proposals and
// equivocation), unready proposers, and loss of synchrony until a GST.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>

#include "src/attack/ddos.h"
#include "src/consensus/hotstuff.h"
#include "src/sim/actor.h"

namespace torbft {
namespace {

using torbase::Bytes;
using torbase::Seconds;

constexpr uint32_t kN = 9;
constexpr uint32_t kF = 2;

// An actor hosting one HotStuffNode, with hooks for test behaviours.
class BftActor : public torsim::Actor {
 public:
  BftActor(const HotStuffConfig& config, const torcrypto::KeyDirectory* directory, Bytes proposal)
      : config_(config), directory_(directory), proposal_(std::move(proposal)) {}

  // When false, get_proposal() returns nullopt until MarkReady() is called.
  void set_initially_ready(bool ready) { ready_ = ready; }
  void MarkReady() {
    ready_ = true;
    if (node_) {
      node_->NotifyProposalReady();
    }
  }

  void Start() override {
    HotStuffNode::Callbacks callbacks;
    callbacks.send = [this](torbase::NodeId to, Bytes message) {
      SendTo(to, "BFT", std::move(message));
    };
    callbacks.set_timer = [this](torbase::Duration d, std::function<void()> fn) {
      return SetTimer(d, std::move(fn));
    };
    callbacks.cancel_timer = [this](torsim::EventId id) { CancelTimer(id); };
    callbacks.get_proposal = [this]() -> std::optional<Bytes> {
      if (!ready_) {
        return std::nullopt;
      }
      return proposal_;
    };
    callbacks.validate = [](const Bytes& value) { return !value.empty() && value[0] != 0xBA; };
    callbacks.on_decide = [this](const Bytes& value) { decided_value_ = value; };
    callbacks.now = [this]() { return now(); };
    node_.emplace(id(), config_, directory_, std::move(callbacks));
    node_->Start();
  }

  void OnMessage(torbase::NodeId from, const Bytes& payload) override {
    node_->OnMessage(from, payload);
  }

  const std::optional<Bytes>& decided_value() const { return decided_value_; }
  HotStuffNode& node() { return *node_; }

 private:
  HotStuffConfig config_;
  const torcrypto::KeyDirectory* directory_;
  Bytes proposal_;
  bool ready_ = true;
  std::optional<HotStuffNode> node_;
  std::optional<Bytes> decided_value_;
};

// A crashed node: never sends anything.
class SilentActor : public torsim::Actor {
 public:
  void OnMessage(torbase::NodeId, const Bytes&) override {}
};

// A Byzantine leader for view 1 (node id 1): sends proposal A to half the
// nodes and proposal B to the other half, then stays silent.
class EquivocatingLeader : public torsim::Actor {
 public:
  void Start() override {
    for (torbase::NodeId peer = 0; peer < node_count(); ++peer) {
      torbase::Writer w;
      w.WriteU8(2);  // kPrepare
      w.WriteU64(1);
      const char* text = (peer % 2 == 0) ? "value-A" : "value-B";
      w.WriteBytes(torbase::BytesOfString(text));
      w.WriteBool(false);  // no QC
      SendTo(peer, "BFT", w.TakeBuffer());
    }
  }
  void OnMessage(torbase::NodeId, const Bytes&) override {}
};

struct Fleet {
  torcrypto::KeyDirectory directory{7, kN};
  std::unique_ptr<torsim::Harness> harness;
  std::vector<torsim::Actor*> actors;
  bool two_phase = false;

  HotStuffConfig Config() const {
    HotStuffConfig config;
    config.node_count = kN;
    config.fault_tolerance = kF;
    config.view_timeout_base = Seconds(20);
    config.view_timeout_increment = Seconds(5);
    config.two_phase = two_phase;
    return config;
  }

  void Build(const std::set<torbase::NodeId>& silent = {},
             const std::set<torbase::NodeId>& equivocators = {}) {
    torsim::NetworkConfig net_config;
    net_config.node_count = kN;
    net_config.default_bandwidth_bps = torsim::MegabitsPerSecond(100);
    net_config.default_latency = torbase::Millis(50);
    harness = std::make_unique<torsim::Harness>(net_config);
    actors.clear();
    for (torbase::NodeId i = 0; i < kN; ++i) {
      if (silent.count(i) > 0) {
        actors.push_back(harness->AddActor(std::make_unique<SilentActor>()));
      } else if (equivocators.count(i) > 0) {
        actors.push_back(harness->AddActor(std::make_unique<EquivocatingLeader>()));
      } else {
        Bytes proposal = torbase::BytesOfString("proposal-from-" + std::to_string(i));
        actors.push_back(harness->AddActor(
            std::make_unique<BftActor>(Config(), &directory, std::move(proposal))));
      }
    }
  }

  BftActor* Honest(torbase::NodeId i) { return static_cast<BftActor*>(actors[i]); }

  // Returns the set of decided values among honest (BftActor) nodes; fails the
  // test if honest nodes decided different values.
  std::optional<Bytes> CheckAgreement(const std::set<torbase::NodeId>& non_honest = {}) {
    std::optional<Bytes> value;
    for (torbase::NodeId i = 0; i < kN; ++i) {
      if (non_honest.count(i) > 0) {
        continue;
      }
      const auto& decided = Honest(i)->decided_value();
      if (!decided.has_value()) {
        continue;
      }
      if (value.has_value()) {
        EXPECT_EQ(*value, *decided) << "agreement violated at node " << i;
      } else {
        value = decided;
      }
    }
    return value;
  }
};

TEST(HotStuffTest, AllHonestDecideInViewOne) {
  Fleet fleet;
  fleet.Build();
  fleet.harness->StartAll();
  fleet.harness->sim().Run();
  const auto value = fleet.CheckAgreement();
  ASSERT_TRUE(value.has_value());
  // View 1's leader is node 1 (view % n), so its proposal wins.
  EXPECT_EQ(torbase::StringOfBytes(*value), "proposal-from-1");
  for (torbase::NodeId i = 0; i < kN; ++i) {
    EXPECT_TRUE(fleet.Honest(i)->decided_value().has_value()) << "node " << i;
    EXPECT_EQ(fleet.Honest(i)->node().current_view(), 1u);
  }
  // Good case decides fast: 5 protocol rounds of ~100 ms RTT.
  EXPECT_LT(fleet.harness->sim().now(), Seconds(5));
}

TEST(HotStuffTest, SilentLeaderTriggersViewChange) {
  Fleet fleet;
  fleet.Build(/*silent=*/{1});  // view-1 leader crashed
  fleet.harness->StartAll();
  fleet.harness->sim().Run();
  const auto value = fleet.CheckAgreement({1});
  ASSERT_TRUE(value.has_value());
  // View 2's leader is node 2.
  EXPECT_EQ(torbase::StringOfBytes(*value), "proposal-from-2");
  // Decision comes after the view-1 timeout.
  EXPECT_GT(fleet.harness->sim().now(), Seconds(20));
}

TEST(HotStuffTest, ToleratesFSilentNodes) {
  Fleet fleet;
  fleet.Build(/*silent=*/{4, 7});  // two non-leader crashes (f = 2)
  fleet.harness->StartAll();
  fleet.harness->sim().Run();
  for (torbase::NodeId i = 0; i < kN; ++i) {
    if (i == 4 || i == 7) {
      continue;
    }
    EXPECT_TRUE(fleet.Honest(i)->decided_value().has_value()) << "node " << i;
  }
  fleet.CheckAgreement({4, 7});
}

TEST(HotStuffTest, MoreThanFSilentNodesBlocksProgressSafely) {
  Fleet fleet;
  fleet.Build(/*silent=*/{3, 5, 7});  // 3 > f crashes: no quorum of 7
  fleet.harness->StartAll();
  fleet.harness->sim().RunUntil(torbase::Minutes(30));
  for (torbase::NodeId i = 0; i < kN; ++i) {
    if (i == 3 || i == 5 || i == 7) {
      continue;
    }
    EXPECT_FALSE(fleet.Honest(i)->decided_value().has_value()) << "node " << i;
  }
}

TEST(HotStuffTest, EquivocatingLeaderCannotSplitDecision) {
  Fleet fleet;
  fleet.Build({}, /*equivocators=*/{1});
  fleet.harness->StartAll();
  fleet.harness->sim().Run();
  const auto value = fleet.CheckAgreement({1});
  ASSERT_TRUE(value.has_value());
  // The equivocator cannot gather a quorum on either fork; a later honest
  // leader decides, and the decided value is an honest proposal.
  EXPECT_NE(torbase::StringOfBytes(*value), "value-A");
  EXPECT_NE(torbase::StringOfBytes(*value), "value-B");
  for (torbase::NodeId i = 0; i < kN; ++i) {
    if (i == 1) {
      continue;
    }
    EXPECT_TRUE(fleet.Honest(i)->decided_value().has_value());
    EXPECT_GE(fleet.Honest(i)->node().current_view(), 2u);
  }
}

TEST(HotStuffTest, UnreadyLeaderProposesOnceNotified) {
  Fleet fleet;
  fleet.Build();
  for (torbase::NodeId i = 0; i < kN; ++i) {
    fleet.Honest(i)->set_initially_ready(false);
  }
  // All proposals become ready at t = 8 s, before the view-1 timeout (20 s).
  fleet.harness->sim().ScheduleAt(Seconds(8), [&] {
    for (torbase::NodeId i = 0; i < kN; ++i) {
      fleet.Honest(i)->MarkReady();
    }
  });
  fleet.harness->StartAll();
  fleet.harness->sim().Run();
  const auto value = fleet.CheckAgreement();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(torbase::StringOfBytes(*value), "proposal-from-1");
  EXPECT_GT(fleet.harness->sim().now(), Seconds(8));
  EXPECT_LT(fleet.harness->sim().now(), Seconds(20));
}

TEST(HotStuffTest, DecidesAfterGstWhenMajorityWasUnreachable) {
  // Partial synchrony: 5 of 9 nodes are flooded (0 bandwidth) for 90 s — the
  // quorum of 7 is unreachable, views churn, nobody decides. After GST the
  // protocol recovers and everyone decides the same value.
  Fleet fleet;
  fleet.Build();
  torattack::AttackWindow attack;
  attack.targets = torattack::FirstTargets(5);
  attack.start = 0;
  attack.end = Seconds(90);
  attack.available_bps = 0.0;
  torattack::ApplyAttack(fleet.harness->net(), attack);
  fleet.harness->StartAll();
  fleet.harness->sim().Run();
  const auto value = fleet.CheckAgreement();
  ASSERT_TRUE(value.has_value());
  for (torbase::NodeId i = 0; i < kN; ++i) {
    EXPECT_TRUE(fleet.Honest(i)->decided_value().has_value()) << "node " << i;
  }
  EXPECT_GT(fleet.harness->sim().now(), Seconds(90));
  // Recovery is prompt once synchrony returns (within a couple of view
  // timeouts, not hours).
  EXPECT_LT(fleet.harness->sim().now(), Seconds(90) + torbase::Minutes(3));
}

// Parameterized over the commit path: both the 3-phase textbook protocol and
// the Jolteon-style 2-phase variant must satisfy agreement, leader-failure
// recovery and post-GST liveness.
class HotStuffModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(HotStuffModeTest, AllHonestDecideSameValue) {
  Fleet fleet;
  fleet.two_phase = GetParam();
  fleet.Build();
  fleet.harness->StartAll();
  fleet.harness->sim().Run();
  const auto value = fleet.CheckAgreement();
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(torbase::StringOfBytes(*value), "proposal-from-1");
  for (torbase::NodeId i = 0; i < kN; ++i) {
    EXPECT_TRUE(fleet.Honest(i)->decided_value().has_value()) << "node " << i;
  }
}

TEST_P(HotStuffModeTest, SilentLeaderRecovery) {
  Fleet fleet;
  fleet.two_phase = GetParam();
  fleet.Build(/*silent=*/{1});
  fleet.harness->StartAll();
  fleet.harness->sim().Run();
  const auto value = fleet.CheckAgreement({1});
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(torbase::StringOfBytes(*value), "proposal-from-2");
}

TEST_P(HotStuffModeTest, EquivocatingLeaderSafe) {
  Fleet fleet;
  fleet.two_phase = GetParam();
  fleet.Build({}, /*equivocators=*/{1});
  fleet.harness->StartAll();
  fleet.harness->sim().Run();
  const auto value = fleet.CheckAgreement({1});
  ASSERT_TRUE(value.has_value());
  EXPECT_NE(torbase::StringOfBytes(*value), "value-A");
  EXPECT_NE(torbase::StringOfBytes(*value), "value-B");
}

TEST_P(HotStuffModeTest, RecoversAfterGst) {
  Fleet fleet;
  fleet.two_phase = GetParam();
  fleet.Build();
  torattack::AttackWindow attack;
  attack.targets = torattack::FirstTargets(5);
  attack.start = 0;
  attack.end = Seconds(90);
  attack.available_bps = 0.0;
  torattack::ApplyAttack(fleet.harness->net(), attack);
  fleet.harness->StartAll();
  fleet.harness->sim().Run();
  const auto value = fleet.CheckAgreement();
  ASSERT_TRUE(value.has_value());
  EXPECT_GT(fleet.harness->sim().now(), Seconds(90));
}

INSTANTIATE_TEST_SUITE_P(CommitPaths, HotStuffModeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "TwoPhase" : "ThreePhase";
                         });

TEST(HotStuffTest, TwoPhaseIsOneRoundTripFaster) {
  auto run = [](bool two_phase) {
    Fleet fleet;
    fleet.two_phase = two_phase;
    fleet.Build();
    fleet.harness->StartAll();
    fleet.harness->sim().Run();
    EXPECT_TRUE(fleet.Honest(0)->decided_value().has_value());
    return fleet.harness->sim().now();
  };
  const torbase::TimePoint three_phase = run(false);
  const torbase::TimePoint two_phase = run(true);
  // Skipping the pre-commit phase saves two message hops (leader broadcast +
  // votes) of ~50 ms latency each.
  EXPECT_LT(two_phase, three_phase);
  EXPECT_NEAR(static_cast<double>(three_phase - two_phase), 2.0 * 50e3, 30e3);
}

TEST(HotStuffTest, QuorumCertRoundTripAndVerification) {
  torcrypto::KeyDirectory directory(7, kN);
  QuorumCert qc;
  qc.phase = Phase::kPrepare;
  qc.view = 3;
  qc.digest = torcrypto::Digest256::Of("value");
  const torbase::Bytes payload = VotePayload(qc.phase, qc.view, qc.digest);
  for (torbase::NodeId i = 0; i < 7; ++i) {
    qc.signatures.push_back(directory.SignerFor(i).Sign(payload));
  }
  EXPECT_TRUE(qc.Verify(directory, 7));

  torbase::Writer w;
  qc.Encode(w);
  torbase::Reader r(w.buffer());
  auto decoded = QuorumCert::Decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, qc);
}

TEST(HotStuffTest, QuorumCertRejectsDuplicateSigners) {
  torcrypto::KeyDirectory directory(7, kN);
  QuorumCert qc;
  qc.phase = Phase::kCommit;
  qc.view = 1;
  qc.digest = torcrypto::Digest256::Of("value");
  const torbase::Bytes payload = VotePayload(qc.phase, qc.view, qc.digest);
  const auto sig = directory.SignerFor(0).Sign(payload);
  for (int i = 0; i < 7; ++i) {
    qc.signatures.push_back(sig);  // 7 copies of one signer
  }
  EXPECT_FALSE(qc.Verify(directory, 7));
}

TEST(HotStuffTest, QuorumCertRejectsWrongPayloadSignatures) {
  torcrypto::KeyDirectory directory(7, kN);
  QuorumCert qc;
  qc.phase = Phase::kPrepare;
  qc.view = 1;
  qc.digest = torcrypto::Digest256::Of("value");
  for (torbase::NodeId i = 0; i < 7; ++i) {
    // Signatures over a different view's payload.
    qc.signatures.push_back(
        directory.SignerFor(i).Sign(VotePayload(qc.phase, 2, qc.digest)));
  }
  EXPECT_FALSE(qc.Verify(directory, 7));
}

}  // namespace
}  // namespace torbft
