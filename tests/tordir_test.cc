// Unit tests for src/tordir: fingerprints, flags, version ordering, dir-spec
// serialization round-trips, the Figure-2 aggregation rules, and the synthetic
// workload generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "src/common/thread_pool.h"
#include "src/crypto/sha256_tree.h"
#include "src/tordir/aggregate.h"
#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"
#include "src/tordir/relay.h"
#include "src/tordir/vote.h"

namespace tordir {
namespace {

Fingerprint MakeFp(uint8_t fill) {
  Fingerprint fp;
  fp.fill(fill);
  return fp;
}

RelayStatus MakeRelay(uint8_t fp_fill, const std::string& nickname = "testrelay") {
  RelayStatus relay;
  relay.fingerprint = MakeFp(fp_fill);
  relay.nickname = nickname;
  relay.address = "10.0.0.1";
  relay.or_port = 9001;
  relay.dir_port = 9030;
  relay.published = 1735689600;
  relay.SetFlag(RelayFlag::kRunning, true);
  relay.SetFlag(RelayFlag::kValid, true);
  relay.version = "Tor 0.4.8.10";
  relay.protocols = "Cons=1-2 Link=1-5";
  relay.bandwidth = 1000;
  relay.exit_policy = "reject 1-65535";
  relay.microdesc_digest.fill(0xcd);
  return relay;
}

VoteDocument MakeVoteDoc(torbase::NodeId authority, std::vector<RelayStatus> relays) {
  VoteDocument vote;
  vote.authority = authority;
  vote.authority_nickname = "auth" + std::to_string(authority);
  vote.valid_after = 1735689600;
  vote.fresh_until = 1735693200;
  vote.valid_until = 1735700400;
  vote.relays = std::move(relays);
  vote.SortRelays();
  return vote;
}

TEST(FingerprintTest, HexRoundTrip) {
  Fingerprint fp;
  for (size_t i = 0; i < fp.size(); ++i) {
    fp[i] = static_cast<uint8_t>(i * 7 + 3);
  }
  const std::string hex = FingerprintHex(fp);
  EXPECT_EQ(hex.size(), 40u);
  auto back = FingerprintFromHex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, fp);
}

TEST(FingerprintTest, RejectsWrongLength) {
  EXPECT_FALSE(FingerprintFromHex("ABCD").has_value());
  EXPECT_FALSE(FingerprintFromHex(std::string(39, 'A')).has_value());
}

TEST(RelayFlagTest, NamesRoundTrip) {
  for (RelayFlag flag : kRelayFlagOrder) {
    auto parsed = RelayFlagFromName(RelayFlagName(flag));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, flag);
  }
  EXPECT_FALSE(RelayFlagFromName("Bogus").has_value());
}

TEST(RelayFlagTest, FlagsToStringCanonicalOrder) {
  RelayStatus relay;
  relay.SetFlag(RelayFlag::kValid, true);
  relay.SetFlag(RelayFlag::kExit, true);
  relay.SetFlag(RelayFlag::kFast, true);
  EXPECT_EQ(FlagsToString(relay.flags), "Exit Fast Valid");
}

TEST(RelayFlagTest, SetAndClear) {
  RelayStatus relay;
  relay.SetFlag(RelayFlag::kGuard, true);
  EXPECT_TRUE(relay.HasFlag(RelayFlag::kGuard));
  relay.SetFlag(RelayFlag::kGuard, false);
  EXPECT_FALSE(relay.HasFlag(RelayFlag::kGuard));
  EXPECT_EQ(relay.flags, 0);
}

TEST(VersionCompareTest, NumericComponents) {
  EXPECT_LT(CompareVersions("Tor 0.4.8.9", "Tor 0.4.8.10"), 0);
  EXPECT_GT(CompareVersions("Tor 0.4.8.10", "Tor 0.4.8.9"), 0);
  EXPECT_EQ(CompareVersions("Tor 0.4.8.10", "Tor 0.4.8.10"), 0);
}

TEST(VersionCompareTest, DifferentLengths) {
  EXPECT_LT(CompareVersions("Tor 0.4.8", "Tor 0.4.8.1"), 0);
  EXPECT_LT(CompareVersions("Tor 0.4", "Tor 0.4.0"), 0);
}

TEST(VersionCompareTest, ProtocolLines) {
  // "largest protocol" tie-break uses the same comparator.
  EXPECT_LT(CompareVersions("Cons=1-2 Link=1-4", "Cons=1-2 Link=1-5"), 0);
}

TEST(DirspecTest, VoteRoundTrip) {
  auto relay_a = MakeRelay(0x11, "alpha");
  relay_a.measured = 1500;
  relay_a.SetFlag(RelayFlag::kExit, true);
  relay_a.exit_policy = "accept 80,443";
  auto relay_b = MakeRelay(0x22, "beta");
  const VoteDocument vote = MakeVoteDoc(3, {relay_a, relay_b});

  const std::string text = SerializeVote(vote);
  auto parsed = ParseVote(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, vote);
}

TEST(DirspecTest, VoteDigestStableAndSensitive) {
  const VoteDocument vote = MakeVoteDoc(0, {MakeRelay(0x11)});
  VoteDocument vote2 = vote;
  EXPECT_EQ(VoteDigest(vote), VoteDigest(vote2));
  vote2.relays[0].bandwidth += 1;
  EXPECT_NE(VoteDigest(vote), VoteDigest(vote2));
}

TEST(DirspecTest, ConsensusRoundTripWithSignatures) {
  ConsensusDocument consensus;
  consensus.valid_after = 100;
  consensus.fresh_until = 200;
  consensus.valid_until = 300;
  consensus.vote_count = 7;
  consensus.relays = {MakeRelay(0x33)};
  torcrypto::Signature sig;
  sig.signer = 4;
  for (size_t i = 0; i < sig.bytes.size(); ++i) {
    sig.bytes[i] = static_cast<uint8_t>(i);
  }
  consensus.signatures.push_back(sig);

  auto parsed = ParseConsensus(SerializeConsensus(consensus));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, consensus);
}

TEST(DirspecTest, ConsensusDigestIgnoresSignatures) {
  ConsensusDocument consensus;
  consensus.relays = {MakeRelay(0x33)};
  const auto digest_before = ConsensusDigest(consensus);
  torcrypto::Signature sig;
  sig.signer = 1;
  consensus.signatures.push_back(sig);
  EXPECT_EQ(ConsensusDigest(consensus), digest_before);
}

// --- tree digests ----------------------------------------------------------
// Multi-megabyte documents (8k relays ≈ 3 MB ≈ 50 tree leaves) so the tree
// paths — streaming sink, materialize-then-parallel, pool fan-out — all cross
// many leaf boundaries.
VoteDocument BigGeneratedVote() {
  PopulationConfig config;
  config.relay_count = 8000;
  config.seed = 5;
  return MakeVote(0, 9, GeneratePopulation(config), config);
}

TEST(DirspecTest, TreeVoteDigestMatchesTreeOverSerializedBytes) {
  const VoteDocument vote = BigGeneratedVote();
  // The streaming tree sink (pool == nullptr) must equal the tree over the
  // materialized canonical bytes: one definition, two evaluation strategies.
  EXPECT_EQ(TreeVoteDigest(vote),
            torcrypto::Digest256(torcrypto::Sha256TreeDigest(SerializeVote(vote))));
}

TEST(DirspecTest, TreeVoteDigestBitIdenticalAcrossThreadCounts) {
  const VoteDocument vote = BigGeneratedVote();
  const auto serial = TreeVoteDigest(vote);
  for (const unsigned threads : {1u, 2u, 8u}) {
    torbase::ThreadPool pool(threads);
    EXPECT_EQ(TreeVoteDigest(vote, &pool), serial) << threads << " threads";
  }
}

TEST(DirspecTest, TreeVoteDigestIsDistinctDomainAndSensitive) {
  VoteDocument vote = MakeVoteDoc(0, {MakeRelay(0x11)});
  // Not interchangeable with the protocol-visible streaming digest.
  EXPECT_NE(TreeVoteDigest(vote), VoteDigest(vote));
  const auto before = TreeVoteDigest(vote);
  vote.relays[0].bandwidth += 1;
  EXPECT_NE(TreeVoteDigest(vote), before);
}

TEST(DirspecTest, TreeConsensusDigestIgnoresSignaturesAndParallelizes) {
  PopulationConfig config;
  config.relay_count = 2000;
  config.seed = 7;
  const auto population = GeneratePopulation(config);
  ConsensusDocument consensus = ComputeConsensus(MakeAllVotes(5, population, config));
  const auto unsigned_digest = TreeConsensusDigest(consensus);
  EXPECT_EQ(unsigned_digest,
            torcrypto::Digest256(
                torcrypto::Sha256TreeDigest(SerializeConsensusUnsigned(consensus))));

  torcrypto::Signature sig;
  sig.signer = 1;
  consensus.signatures.push_back(sig);
  EXPECT_EQ(TreeConsensusDigest(consensus), unsigned_digest);

  torbase::ThreadPool pool(4);
  EXPECT_EQ(TreeConsensusDigest(consensus, &pool), unsigned_digest);
}

TEST(DirspecTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseVote("not a vote").ok());
  EXPECT_FALSE(ParseConsensus("network-status-version 2\n").ok());
}

TEST(DirspecTest, ParseRejectsMissingFooter) {
  VoteDocument vote = MakeVoteDoc(0, {MakeRelay(0x11)});
  std::string text = SerializeVote(vote);
  text.resize(text.size() - std::string("directory-footer\n").size());
  EXPECT_FALSE(ParseVote(text).ok());
}

TEST(DirspecTest, ParseRejectsBadFingerprint) {
  std::string text =
      "network-status-version 3 vote\n"
      "authority auth0 0\n"
      "r nick NOTHEX deadbeefdeadbeef 1.2.3.4 9001 0 100\n"
      "directory-footer\n";
  EXPECT_FALSE(ParseVote(text).ok());
}

TEST(DirspecTest, ParseRejectsUnknownFlag) {
  VoteDocument vote = MakeVoteDoc(0, {MakeRelay(0x11)});
  std::string text = SerializeVote(vote);
  const size_t pos = text.find("s Running");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 9, "s Bananas");
  EXPECT_FALSE(ParseVote(text).ok());
}

TEST(DirspecTest, SizeScalesWithRelayCount) {
  PopulationConfig config;
  config.relay_count = 500;
  const auto population = GeneratePopulation(config);
  const auto vote = MakeVote(0, 9, population, config);
  const size_t size = SerializeVote(vote).size();
  const size_t estimate = EstimateVoteSizeBytes(vote.relays.size());
  // Within 15% of the analytic estimate used by benches.
  EXPECT_GT(size, estimate * 85 / 100);
  EXPECT_LT(size, estimate * 115 / 100);
}

TEST(DirspecTest, EstimateTracksActualSizeAcrossTheRelayAxis) {
  // EstimateVoteSizeBytes sizes serialization buffers (StringCursorSink) and
  // the benches' analytic checks; if the wire format drifts, this pins the
  // estimate to within +-20% of reality at three axis points — for both a
  // measuring (Measured= present) and a non-measuring authority's vote.
  for (const size_t relay_count : {size_t{100}, size_t{1000}, size_t{8000}}) {
    PopulationConfig config;
    config.relay_count = relay_count;
    config.seed = 3;
    const auto population = GeneratePopulation(config);
    for (const torbase::NodeId authority : {torbase::NodeId{0}, torbase::NodeId{8}}) {
      const auto vote = MakeVote(authority, 9, population, config);
      const size_t size = SerializeVote(vote).size();
      const size_t estimate = EstimateVoteSizeBytes(vote.relays.size());
      EXPECT_GT(size, estimate * 80 / 100)
          << relay_count << " relays, authority " << authority;
      EXPECT_LT(size, estimate * 120 / 100)
          << relay_count << " relays, authority " << authority;
    }
  }
}

// --- Figure 2 aggregation rules --------------------------------------------

TEST(AggregateTest, MajorityInclusionThreshold) {
  // 5 votes; relay 0x11 listed by 3 (majority), relay 0x22 by 2 (excluded).
  std::vector<VoteDocument> votes;
  for (torbase::NodeId a = 0; a < 5; ++a) {
    std::vector<RelayStatus> relays;
    if (a < 3) {
      relays.push_back(MakeRelay(0x11));
    }
    if (a >= 3) {
      relays.push_back(MakeRelay(0x22));
    }
    votes.push_back(MakeVoteDoc(a, std::move(relays)));
  }
  const auto consensus = ComputeConsensus(votes);
  ASSERT_EQ(consensus.relays.size(), 1u);
  EXPECT_EQ(consensus.relays[0].fingerprint, MakeFp(0x11));
  EXPECT_EQ(consensus.vote_count, 5u);
}

TEST(AggregateTest, ExactMajorityBoundary) {
  // With 4 votes the threshold is 3 (floor(4/2)+1).
  std::vector<VoteDocument> votes;
  for (torbase::NodeId a = 0; a < 4; ++a) {
    std::vector<RelayStatus> relays;
    if (a < 2) {
      relays.push_back(MakeRelay(0x11));  // exactly half: excluded
    }
    if (a < 3) {
      relays.push_back(MakeRelay(0x22));  // majority: included
    }
    votes.push_back(MakeVoteDoc(a, std::move(relays)));
  }
  const auto consensus = ComputeConsensus(votes);
  ASSERT_EQ(consensus.relays.size(), 1u);
  EXPECT_EQ(consensus.relays[0].fingerprint, MakeFp(0x22));
}

TEST(AggregateTest, ConfigurableThreshold) {
  std::vector<VoteDocument> votes;
  for (torbase::NodeId a = 0; a < 5; ++a) {
    std::vector<RelayStatus> relays;
    if (a == 0) {
      relays.push_back(MakeRelay(0x11));
    }
    votes.push_back(MakeVoteDoc(a, std::move(relays)));
  }
  AggregationParams params;
  params.fixed_inclusion_threshold = 1;
  EXPECT_EQ(ComputeConsensus(votes, params).relays.size(), 1u);
  params.fixed_inclusion_threshold = 2;
  EXPECT_EQ(ComputeConsensus(votes, params).relays.size(), 0u);
}

TEST(AggregateTest, NicknameFromLargestAuthorityId) {
  std::vector<VoteDocument> votes;
  for (torbase::NodeId a = 0; a < 3; ++a) {
    auto relay = MakeRelay(0x11, "name-from-" + std::to_string(a));
    votes.push_back(MakeVoteDoc(a, {relay}));
  }
  const auto consensus = ComputeConsensus(votes);
  ASSERT_EQ(consensus.relays.size(), 1u);
  EXPECT_EQ(consensus.relays[0].nickname, "name-from-2");
}

TEST(AggregateTest, FlagTieMeansUnset) {
  // 4 listing votes, 2 set Guard, 2 do not: tie -> unset.
  std::vector<VoteDocument> votes;
  for (torbase::NodeId a = 0; a < 4; ++a) {
    auto relay = MakeRelay(0x11);
    relay.SetFlag(RelayFlag::kGuard, a < 2);
    votes.push_back(MakeVoteDoc(a, {relay}));
  }
  const auto consensus = ComputeConsensus(votes);
  ASSERT_EQ(consensus.relays.size(), 1u);
  EXPECT_FALSE(consensus.relays[0].HasFlag(RelayFlag::kGuard));
  // Running was set by all: stays set.
  EXPECT_TRUE(consensus.relays[0].HasFlag(RelayFlag::kRunning));
}

TEST(AggregateTest, FlagStrictMajoritySets) {
  std::vector<VoteDocument> votes;
  for (torbase::NodeId a = 0; a < 5; ++a) {
    auto relay = MakeRelay(0x11);
    relay.SetFlag(RelayFlag::kStable, a < 3);
    votes.push_back(MakeVoteDoc(a, {relay}));
  }
  const auto consensus = ComputeConsensus(votes);
  EXPECT_TRUE(consensus.relays[0].HasFlag(RelayFlag::kStable));
}

TEST(AggregateTest, FlagMajorityCountsOnlyListingVotes) {
  // 5 votes total, but only 3 list the relay; 2 of those 3 set Exit.
  std::vector<VoteDocument> votes;
  for (torbase::NodeId a = 0; a < 5; ++a) {
    std::vector<RelayStatus> relays;
    if (a < 3) {
      auto relay = MakeRelay(0x11);
      relay.SetFlag(RelayFlag::kExit, a < 2);
      relays.push_back(relay);
    }
    votes.push_back(MakeVoteDoc(a, std::move(relays)));
  }
  const auto consensus = ComputeConsensus(votes);
  ASSERT_EQ(consensus.relays.size(), 1u);
  // 2 of 3 listing votes set Exit: strict majority among listings.
  EXPECT_TRUE(consensus.relays[0].HasFlag(RelayFlag::kExit));
}

TEST(AggregateTest, VersionPopularVote) {
  std::vector<VoteDocument> votes;
  const char* versions[] = {"Tor 0.4.8.9", "Tor 0.4.8.9", "Tor 0.4.8.12"};
  for (torbase::NodeId a = 0; a < 3; ++a) {
    auto relay = MakeRelay(0x11);
    relay.version = versions[a];
    votes.push_back(MakeVoteDoc(a, {relay}));
  }
  const auto consensus = ComputeConsensus(votes);
  EXPECT_EQ(consensus.relays[0].version, "Tor 0.4.8.9");
}

TEST(AggregateTest, VersionTieSelectsLargest) {
  std::vector<VoteDocument> votes;
  const char* versions[] = {"Tor 0.4.8.9", "Tor 0.4.8.12", "Tor 0.4.8.12", "Tor 0.4.8.9"};
  for (torbase::NodeId a = 0; a < 4; ++a) {
    auto relay = MakeRelay(0x11);
    relay.version = versions[a];
    votes.push_back(MakeVoteDoc(a, {relay}));
  }
  const auto consensus = ComputeConsensus(votes);
  EXPECT_EQ(consensus.relays[0].version, "Tor 0.4.8.12");
}

TEST(AggregateTest, VersionTieUsesNumericNotLexicographicOrder) {
  // Lexicographically "0.4.8.9" > "0.4.8.12", but numerically 12 > 9.
  std::vector<VoteDocument> votes;
  const char* versions[] = {"Tor 0.4.8.9", "Tor 0.4.8.12"};
  for (torbase::NodeId a = 0; a < 2; ++a) {
    auto relay = MakeRelay(0x11);
    relay.version = versions[a];
    votes.push_back(MakeVoteDoc(a, {relay}));
  }
  EXPECT_EQ(ComputeConsensus(votes).relays[0].version, "Tor 0.4.8.12");
}

TEST(AggregateTest, ExitPolicyTieLexicographicallyLarger) {
  std::vector<VoteDocument> votes;
  const char* policies[] = {"accept 443", "accept 80"};
  for (torbase::NodeId a = 0; a < 2; ++a) {
    auto relay = MakeRelay(0x11);
    relay.exit_policy = policies[a];
    votes.push_back(MakeVoteDoc(a, {relay}));
  }
  // "accept 80" > "accept 443" lexicographically ('8' > '4').
  EXPECT_EQ(ComputeConsensus(votes).relays[0].exit_policy, "accept 80");
}

TEST(AggregateTest, BandwidthMedianOfMeasured) {
  std::vector<VoteDocument> votes;
  const uint64_t measured[] = {100, 900, 300, 500, 700};
  for (torbase::NodeId a = 0; a < 5; ++a) {
    auto relay = MakeRelay(0x11);
    relay.bandwidth = 9999;  // claimed values should be ignored
    relay.measured = measured[a];
    votes.push_back(MakeVoteDoc(a, {relay}));
  }
  EXPECT_EQ(ComputeConsensus(votes).relays[0].bandwidth, 500u);
}

TEST(AggregateTest, BandwidthMedianIgnoresNonMeasuringVotes) {
  std::vector<VoteDocument> votes;
  for (torbase::NodeId a = 0; a < 5; ++a) {
    auto relay = MakeRelay(0x11);
    relay.bandwidth = 10;
    if (a < 2) {
      relay.measured = 1000 + a;  // only two measurements: low median = 1000
    }
    votes.push_back(MakeVoteDoc(a, {relay}));
  }
  EXPECT_EQ(ComputeConsensus(votes).relays[0].bandwidth, 1000u);
}

TEST(AggregateTest, BandwidthFallsBackToClaimedMedian) {
  std::vector<VoteDocument> votes;
  const uint64_t claimed[] = {10, 30, 20};
  for (torbase::NodeId a = 0; a < 3; ++a) {
    auto relay = MakeRelay(0x11);
    relay.bandwidth = claimed[a];
    votes.push_back(MakeVoteDoc(a, {relay}));
  }
  EXPECT_EQ(ComputeConsensus(votes).relays[0].bandwidth, 20u);
}

TEST(AggregateTest, ConsensusNeverCarriesMeasuredField) {
  std::vector<VoteDocument> votes;
  for (torbase::NodeId a = 0; a < 3; ++a) {
    auto relay = MakeRelay(0x11);
    relay.measured = 123;
    votes.push_back(MakeVoteDoc(a, {relay}));
  }
  EXPECT_FALSE(ComputeConsensus(votes).relays[0].measured.has_value());
}

TEST(AggregateTest, ScheduleMetadataIsMedian) {
  std::vector<VoteDocument> votes;
  for (torbase::NodeId a = 0; a < 3; ++a) {
    auto vote = MakeVoteDoc(a, {MakeRelay(0x11)});
    vote.valid_after = 100 + a * 10;  // 100, 110, 120 -> median 110
    votes.push_back(vote);
  }
  EXPECT_EQ(ComputeConsensus(votes).valid_after, 110u);
}

TEST(AggregateTest, OrderIndependent) {
  PopulationConfig config;
  config.relay_count = 200;
  config.seed = 77;
  const auto population = GeneratePopulation(config);
  auto votes = MakeAllVotes(9, population, config);

  const auto baseline = ComputeConsensus(votes);
  std::mt19937 shuffle_rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    std::shuffle(votes.begin(), votes.end(), shuffle_rng);
    EXPECT_EQ(ComputeConsensus(votes), baseline);
  }
}

TEST(AggregateTest, DeterministicAcrossRuns) {
  PopulationConfig config;
  config.relay_count = 100;
  const auto population = GeneratePopulation(config);
  const auto votes = MakeAllVotes(9, population, config);
  EXPECT_EQ(ConsensusDigest(ComputeConsensus(votes)), ConsensusDigest(ComputeConsensus(votes)));
}

TEST(AggregateTest, OutputSortedByFingerprint) {
  PopulationConfig config;
  config.relay_count = 300;
  const auto population = GeneratePopulation(config);
  const auto votes = MakeAllVotes(5, population, config);
  const auto consensus = ComputeConsensus(votes);
  EXPECT_TRUE(std::is_sorted(consensus.relays.begin(), consensus.relays.end(), RelayOrder));
}

TEST(AggregateTest, EmptyVoteSetYieldsEmptyConsensus) {
  const auto consensus = ComputeConsensus(std::vector<VoteDocument>{});
  EXPECT_TRUE(consensus.relays.empty());
  EXPECT_EQ(consensus.vote_count, 0u);
}

TEST(AggregateTest, MinorityVotesCannotInjectRelay) {
  // 9 votes, 4 "faulty" authorities list a bogus relay: excluded by majority.
  std::vector<VoteDocument> votes;
  for (torbase::NodeId a = 0; a < 9; ++a) {
    std::vector<RelayStatus> relays = {MakeRelay(0x11)};
    if (a >= 5) {
      relays.push_back(MakeRelay(0x66, "injected"));
    }
    votes.push_back(MakeVoteDoc(a, std::move(relays)));
  }
  const auto consensus = ComputeConsensus(votes);
  ASSERT_EQ(consensus.relays.size(), 1u);
  EXPECT_EQ(consensus.relays[0].fingerprint, MakeFp(0x11));
}

// --- generator ---------------------------------------------------------------

TEST(GeneratorTest, PopulationDeterministicAndSized) {
  PopulationConfig config;
  config.relay_count = 150;
  config.seed = 9;
  const auto a = GeneratePopulation(config);
  const auto b = GeneratePopulation(config);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 150u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(), RelayOrder));
}

TEST(GeneratorTest, DistinctSeedsDistinctPopulations) {
  PopulationConfig a_config;
  a_config.relay_count = 50;
  a_config.seed = 1;
  PopulationConfig b_config = a_config;
  b_config.seed = 2;
  EXPECT_NE(GeneratePopulation(a_config), GeneratePopulation(b_config));
}

TEST(GeneratorTest, AllRelaysRunningAndValid) {
  PopulationConfig config;
  config.relay_count = 100;
  for (const auto& relay : GeneratePopulation(config)) {
    EXPECT_TRUE(relay.HasFlag(RelayFlag::kRunning));
    EXPECT_TRUE(relay.HasFlag(RelayFlag::kValid));
    EXPECT_GE(relay.bandwidth, 20u);
    EXPECT_LE(relay.bandwidth, 400000u);
    EXPECT_FALSE(relay.nickname.empty());
  }
}

TEST(GeneratorTest, ExitPolicyMatchesExitFlag) {
  PopulationConfig config;
  config.relay_count = 400;
  for (const auto& relay : GeneratePopulation(config)) {
    if (!relay.HasFlag(RelayFlag::kExit)) {
      EXPECT_EQ(relay.exit_policy, "reject 1-65535");
    } else {
      EXPECT_EQ(relay.exit_policy.view().rfind("accept ", 0), 0u);
    }
  }
}

TEST(GeneratorTest, VotesDropSomeRelaysAndStaySorted) {
  PopulationConfig config;
  config.relay_count = 1000;
  const auto population = GeneratePopulation(config);
  const auto vote = MakeVote(2, 9, population, config);
  EXPECT_LT(vote.relays.size(), population.size());
  EXPECT_GT(vote.relays.size(), population.size() * 90 / 100);
  EXPECT_TRUE(std::is_sorted(vote.relays.begin(), vote.relays.end(), RelayOrder));
}

TEST(GeneratorTest, OnlyMeasuringAuthoritiesReportMeasured) {
  PopulationConfig config;
  config.relay_count = 50;
  const auto population = GeneratePopulation(config);
  VoteViewConfig view;
  view.measuring_fraction = 0.5;  // with n=9: authorities 0..4 measure
  const auto vote_measuring = MakeVote(0, 9, population, config, view);
  const auto vote_plain = MakeVote(8, 9, population, config, view);
  EXPECT_TRUE(vote_measuring.relays[0].measured.has_value());
  EXPECT_FALSE(vote_plain.relays[0].measured.has_value());
}

TEST(GeneratorTest, VotesDifferAcrossAuthorities) {
  PopulationConfig config;
  config.relay_count = 300;
  const auto population = GeneratePopulation(config);
  const auto votes = MakeAllVotes(9, population, config);
  EXPECT_NE(VoteDigest(votes[0]), VoteDigest(votes[1]));
}

TEST(GeneratorTest, AggregatedConsensusCoversMostOfPopulation) {
  PopulationConfig config;
  config.relay_count = 500;
  const auto population = GeneratePopulation(config);
  const auto votes = MakeAllVotes(9, population, config);
  const auto consensus = ComputeConsensus(votes);
  // With 2% per-authority drop probability, virtually every relay appears in a
  // majority of votes.
  EXPECT_GT(consensus.relays.size(), 490u);
  EXPECT_LE(consensus.relays.size(), 500u);
}

TEST(GeneratorTest, RelayCountSeriesMatchesPaperAverage) {
  const auto series = RelayCountSeries();
  ASSERT_EQ(series.size(), 26u);
  EXPECT_EQ(series.front().month, "2022-09");
  EXPECT_EQ(series.back().month, "2024-10");
  double mean = 0.0;
  for (const auto& point : series) {
    mean += point.relay_count;
    EXPECT_GT(point.relay_count, 5000.0);
    EXPECT_LT(point.relay_count, 9000.0);
  }
  mean /= static_cast<double>(series.size());
  EXPECT_NEAR(mean, kPaperAverageRelayCount, 0.01);
}

}  // namespace
}  // namespace tordir
