// Tests for the consensus-health monitor: each attack signature (DDoS vote
// starvation, vote equivocation, consensus fork, total failure), the
// admission-evidence taxonomy (malformed / replayed / inflated votes) and the
// healthy baseline.
#include <gtest/gtest.h>

#include "src/crypto/digest.h"
#include "src/tordir/health_monitor.h"

namespace tordir {
namespace {

using torcrypto::Digest256;

Digest256 VoteDigestOf(torbase::NodeId sender, int variant = 0) {
  return Digest256::Of("vote-" + std::to_string(sender) + "-" + std::to_string(variant));
}

// Populates a fully healthy period: everyone saw everyone's (single) vote and
// produced the same consensus.
void FillHealthy(HealthMonitor& monitor, uint32_t n) {
  for (torbase::NodeId observer = 0; observer < n; ++observer) {
    for (torbase::NodeId sender = 0; sender < n; ++sender) {
      if (observer != sender) {
        monitor.RecordVote(observer, sender, VoteDigestOf(sender));
      }
    }
    monitor.RecordConsensus(observer, Digest256::Of("consensus"));
  }
}

TEST(HealthMonitorTest, HealthyPeriodRaisesNothing) {
  HealthMonitor monitor(9);
  FillHealthy(monitor, 9);
  EXPECT_TRUE(monitor.Analyze().empty());
}

TEST(HealthMonitorTest, DetectsDdosVoteStarvation) {
  // The Figure 1 situation: votes from authorities 0-4 reach nobody.
  HealthMonitor monitor(9);
  for (torbase::NodeId observer = 0; observer < 9; ++observer) {
    for (torbase::NodeId sender = 5; sender < 9; ++sender) {
      if (observer != sender) {
        monitor.RecordVote(observer, sender, VoteDigestOf(sender));
      }
    }
    monitor.RecordConsensus(observer, std::nullopt);
  }
  const auto alerts = monitor.Analyze();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].kind, HealthAlertKind::kMissingVotes);
  EXPECT_EQ(alerts[0].authorities, (std::vector<torbase::NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(alerts[1].kind, HealthAlertKind::kNoConsensus);
}

TEST(HealthMonitorTest, DetectsVoteEquivocation) {
  HealthMonitor monitor(9);
  FillHealthy(monitor, 9);
  // Authority 3 also showed a second vote variant to someone.
  monitor.RecordVote(7, 3, VoteDigestOf(3, /*variant=*/1));
  const auto alerts = monitor.Analyze();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, HealthAlertKind::kVoteEquivocation);
  EXPECT_EQ(alerts[0].authorities, (std::vector<torbase::NodeId>{3}));
}

TEST(HealthMonitorTest, DetectsConsensusFork) {
  HealthMonitor monitor(9);
  FillHealthy(monitor, 9);
  monitor.RecordConsensus(1, Digest256::Of("fork-A"));
  monitor.RecordConsensus(2, Digest256::Of("fork-A"));
  const auto alerts = monitor.Analyze();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, HealthAlertKind::kConsensusFork);
}

TEST(HealthMonitorTest, MinorityMissingVotesIsNotAnAlert) {
  HealthMonitor monitor(9);
  FillHealthy(monitor, 9);
  HealthMonitor partial(9);
  // Authority 0's vote missing at only 3 of 8 peers: below the majority bar.
  for (torbase::NodeId observer = 0; observer < 9; ++observer) {
    for (torbase::NodeId sender = 0; sender < 9; ++sender) {
      if (observer == sender) {
        continue;
      }
      if (sender == 0 && observer >= 6) {
        continue;  // observers 6,7,8 miss it
      }
      partial.RecordVote(observer, sender, VoteDigestOf(sender));
    }
    partial.RecordConsensus(observer, Digest256::Of("consensus"));
  }
  EXPECT_TRUE(partial.Analyze().empty());
}

TEST(HealthMonitorTest, ResetClearsState) {
  HealthMonitor monitor(9);
  monitor.RecordVote(0, 1, VoteDigestOf(1));
  monitor.RecordVote(0, 1, VoteDigestOf(1, 1));
  EXPECT_FALSE(monitor.Analyze().empty());
  monitor.Reset();
  EXPECT_TRUE(monitor.Analyze().empty());
}

TEST(HealthMonitorTest, AlertNamesAreStable) {
  EXPECT_STREQ(HealthAlertName(HealthAlertKind::kMissingVotes), "missing-votes");
  EXPECT_STREQ(HealthAlertName(HealthAlertKind::kVoteEquivocation), "vote-equivocation");
  EXPECT_STREQ(HealthAlertName(HealthAlertKind::kConsensusFork), "consensus-fork");
  EXPECT_STREQ(HealthAlertName(HealthAlertKind::kNoConsensus), "no-consensus");
  EXPECT_STREQ(HealthAlertName(HealthAlertKind::kMalformedVote), "malformed-vote");
  EXPECT_STREQ(HealthAlertName(HealthAlertKind::kReplayedVote), "replayed-vote");
  EXPECT_STREQ(HealthAlertName(HealthAlertKind::kBandwidthInflation), "bandwidth-inflation");
  EXPECT_STREQ(HealthAlertName(HealthAlertKind::kDroppedMessages), "dropped-messages");
  EXPECT_STREQ(HealthAlertName(HealthAlertKind::kSlowRecovery), "slow-recovery");
  EXPECT_STREQ(HealthAlertName(HealthAlertKind::kHerdOverload), "herd-overload");
}

// --- admission-evidence taxonomy ---------------------------------------------
// One test per injected byzantine behavior: the exact alert kind, the exact
// implicated authority, and the evidence timestamp. The healthy baseline
// (observation feed) stays alert-free.

// Observation-feed twin of FillHealthy: timestamps and bandwidth evidence.
void FillHealthyObservations(HealthMonitor& monitor, uint32_t n) {
  for (torbase::NodeId observer = 0; observer < n; ++observer) {
    for (torbase::NodeId sender = 0; sender < n; ++sender) {
      if (observer != sender) {
        monitor.RecordObservation(
            observer, VoteObservation{sender, VoteDigestOf(sender),
                                      /*at_seconds=*/1.0 + sender, /*total_bandwidth=*/1000});
      }
    }
    monitor.RecordConsensus(observer, Digest256::Of("consensus"));
  }
}

TEST(HealthMonitorTaxonomyTest, HealthyObservationFeedRaisesNothing) {
  HealthMonitor monitor(9);
  FillHealthyObservations(monitor, 9);
  EXPECT_TRUE(monitor.Analyze().empty());
}

TEST(HealthMonitorTaxonomyTest, EquivocationCarriesSecondSightingTimestamp) {
  HealthMonitor monitor(9);
  FillHealthyObservations(monitor, 9);
  // Authority 3's second variant, first seen at t=42.5 by observer 7.
  monitor.RecordObservation(7, VoteObservation{3, VoteDigestOf(3, /*variant=*/1), 42.5, 1000});
  const auto alerts = monitor.Analyze();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, HealthAlertKind::kVoteEquivocation);
  EXPECT_EQ(alerts[0].authorities, (std::vector<torbase::NodeId>{3}));
  // Evidence instant = when the *second* distinct digest appeared, not the
  // first sighting of the vote.
  EXPECT_DOUBLE_EQ(alerts[0].first_evidence_seconds, 42.5);
}

TEST(HealthMonitorTaxonomyTest, MalformedRejectsClassifyAsMalformedVote) {
  HealthMonitor monitor(9);
  FillHealthyObservations(monitor, 9);
  // Unparseable and non-canonical bytes both land in the malformed bucket;
  // the evidence instant is the earliest reject.
  monitor.RecordReject(2, 4, VoteRejectReason::kMalformed, 7.5);
  monitor.RecordReject(6, 4, VoteRejectReason::kNonCanonical, 3.25);
  const auto alerts = monitor.Analyze();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, HealthAlertKind::kMalformedVote);
  EXPECT_EQ(alerts[0].authorities, (std::vector<torbase::NodeId>{4}));
  EXPECT_DOUBLE_EQ(alerts[0].first_evidence_seconds, 3.25);
  EXPECT_NE(alerts[0].detail.find("2 malformed votes"), std::string::npos);
}

TEST(HealthMonitorTaxonomyTest, StaleWindowRejectsClassifyAsReplayedVote) {
  HealthMonitor monitor(9);
  FillHealthyObservations(monitor, 9);
  monitor.RecordReject(1, 5, VoteRejectReason::kStaleWindow, 12.0);
  monitor.RecordReject(3, 5, VoteRejectReason::kStaleWindow, 9.0);
  const auto alerts = monitor.Analyze();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, HealthAlertKind::kReplayedVote);
  EXPECT_EQ(alerts[0].authorities, (std::vector<torbase::NodeId>{5}));
  EXPECT_DOUBLE_EQ(alerts[0].first_evidence_seconds, 9.0);
}

TEST(HealthMonitorTaxonomyTest, UnattributableRejectsImplicateNobody) {
  HealthMonitor monitor(9);
  FillHealthyObservations(monitor, 9);
  // Malformed bytes relayed through an honest middleman carry no sound
  // attribution; the monitor must not blame anyone.
  monitor.RecordReject(2, torbase::kNoNode, VoteRejectReason::kMalformed, 5.0);
  EXPECT_TRUE(monitor.Analyze().empty());
}

TEST(HealthMonitorTaxonomyTest, InflatedBandwidthFlagsTheOutlier) {
  HealthMonitor monitor(9);
  FillHealthyObservations(monitor, 9);
  // Authority 6's vote claims 64x the peers' ~1000 total; first seen at 2.0s
  // (the healthy fill already recorded sender 6 at 1.0 + 6 = 7.0s, so the
  // earlier sighting below becomes the first-observed instant).
  monitor.RecordObservation(0, VoteObservation{6, VoteDigestOf(6), 2.0, 64'000});
  const auto alerts = monitor.Analyze();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, HealthAlertKind::kBandwidthInflation);
  EXPECT_EQ(alerts[0].authorities, (std::vector<torbase::NodeId>{6}));
  EXPECT_DOUBLE_EQ(alerts[0].first_evidence_seconds, 2.0);
  EXPECT_NE(alerts[0].detail.find("64x"), std::string::npos);
}

TEST(HealthMonitorTaxonomyTest, ModestBandwidthSpreadIsNotInflation) {
  HealthMonitor monitor(9);
  for (torbase::NodeId observer = 0; observer < 9; ++observer) {
    for (torbase::NodeId sender = 0; sender < 9; ++sender) {
      if (observer != sender) {
        // Totals spread 1000..1800: well under the 8x-median bar.
        monitor.RecordObservation(observer, VoteObservation{sender, VoteDigestOf(sender), 1.0,
                                                            1000 + sender * 100ull});
      }
    }
    monitor.RecordConsensus(observer, Digest256::Of("consensus"));
  }
  EXPECT_TRUE(monitor.Analyze().empty());
}

TEST(HealthMonitorTaxonomyTest, RejectedVotesStillCountAsMissing) {
  // An authority whose vote every peer refuses at admission contributes
  // nothing to aggregation: the missing-votes signature fires alongside the
  // reject classification.
  HealthMonitor monitor(9);
  for (torbase::NodeId observer = 0; observer < 9; ++observer) {
    for (torbase::NodeId sender = 0; sender < 9; ++sender) {
      if (observer == sender || sender == 0) {
        continue;
      }
      monitor.RecordObservation(observer,
                                VoteObservation{sender, VoteDigestOf(sender), 1.0, 1000});
    }
    if (observer != 0) {
      monitor.RecordReject(observer, 0, VoteRejectReason::kMalformed, 0.5);
    }
    monitor.RecordConsensus(observer, Digest256::Of("consensus"));
  }
  const auto alerts = monitor.Analyze();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].kind, HealthAlertKind::kMalformedVote);
  EXPECT_EQ(alerts[0].authorities, (std::vector<torbase::NodeId>{0}));
  EXPECT_EQ(alerts[1].kind, HealthAlertKind::kMissingVotes);
  EXPECT_EQ(alerts[1].authorities, (std::vector<torbase::NodeId>{0}));
  EXPECT_DOUBLE_EQ(alerts[1].first_evidence_seconds, -1.0);  // absence: no instant
}

// --- network drops and timeline pathologies ----------------------------------

TEST(HealthMonitorTimelineTest, UndeliverableDropsRaiseDroppedMessages) {
  HealthMonitor monitor(9);
  monitor.RecordUndeliverable(0);
  EXPECT_TRUE(monitor.Analyze().empty());  // zero drops are not evidence

  monitor.RecordUndeliverable(5);
  monitor.RecordUndeliverable(2);  // accumulates across reports
  const auto alerts = monitor.Analyze();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, HealthAlertKind::kDroppedMessages);
  EXPECT_TRUE(alerts[0].authorities.empty());
  EXPECT_NE(alerts[0].detail.find("7 directory messages"), std::string::npos);
  EXPECT_DOUBLE_EQ(alerts[0].first_evidence_seconds, -1.0);

  monitor.Reset();
  EXPECT_TRUE(monitor.Analyze().empty());
}

// Feeds a horizon where rounds [0, faulted_through] are faulted and freshness
// returns at round fresh_from (never, when >= total).
void FillTimeline(HealthMonitor& monitor, uint64_t total, uint64_t faulted_through,
                  uint64_t fresh_from, double backlog_fraction = 0.0) {
  for (uint64_t r = 0; r < total; ++r) {
    TimelineRoundObservation round;
    round.round = r;
    round.faulted = r <= faulted_through;
    round.fresh_at_end = r >= fresh_from;
    round.peak_backlog_fraction = round.fresh_at_end ? 0.0 : backlog_fraction;
    monitor.RecordTimelineRound(round);
  }
}

TEST(HealthMonitorTimelineTest, PromptRecoveryRaisesNothing) {
  HealthMonitor monitor(9);
  // Faulted through round 3, fresh again by the end of round 4: within the
  // default one-round allowance.
  FillTimeline(monitor, 12, 3, 4);
  EXPECT_TRUE(monitor.Analyze().empty());
}

TEST(HealthMonitorTimelineTest, LingeringDegradationIsSlowRecovery) {
  HealthMonitor monitor(9);
  // Fault cleared after round 3 but serving only recovered at round 7: three
  // degraded tail rounds exceed the one-round default.
  FillTimeline(monitor, 12, 3, 7);
  const auto alerts = monitor.Analyze();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, HealthAlertKind::kSlowRecovery);
  EXPECT_NE(alerts[0].detail.find("3 rounds"), std::string::npos);

  // A laxer allowance clears it.
  HealthMonitor lax(9);
  lax.set_slow_recovery_rounds(3);
  FillTimeline(lax, 12, 3, 7);
  EXPECT_TRUE(lax.Analyze().empty());
}

TEST(HealthMonitorTimelineTest, NeverRecoveringIsSlowRecovery) {
  HealthMonitor monitor(9);
  FillTimeline(monitor, 12, 3, /*fresh_from=*/12);
  const auto alerts = monitor.Analyze();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, HealthAlertKind::kSlowRecovery);
  EXPECT_NE(alerts[0].detail.find("never returned"), std::string::npos);
}

TEST(HealthMonitorTimelineTest, FaultInTheLastRoundCannotBeJudged) {
  // No tail rounds after the last faulted one: nothing to measure recovery
  // against, so no alert (the next horizon will tell).
  HealthMonitor monitor(9);
  FillTimeline(monitor, 6, /*faulted_through=*/5, /*fresh_from=*/6);
  EXPECT_TRUE(monitor.Analyze().empty());
}

TEST(HealthMonitorTimelineTest, OversizedRetryHerdIsHerdOverload) {
  HealthMonitor monitor(9);
  // Backlog peaked at 40% of the population in the degraded rounds.
  FillTimeline(monitor, 12, 3, 4, /*backlog_fraction=*/0.4);
  const auto alerts = monitor.Analyze();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, HealthAlertKind::kHerdOverload);
  EXPECT_NE(alerts[0].detail.find("40%"), std::string::npos);

  // Below the threshold (default 25%) the herd is expected behavior.
  HealthMonitor calm(9);
  FillTimeline(calm, 12, 3, 4, /*backlog_fraction=*/0.2);
  EXPECT_TRUE(calm.Analyze().empty());

  // The threshold is a knob.
  HealthMonitor strict(9);
  strict.set_herd_overload_fraction(0.1);
  FillTimeline(strict, 12, 3, 4, /*backlog_fraction=*/0.2);
  ASSERT_EQ(strict.Analyze().size(), 1u);
}

}  // namespace
}  // namespace tordir
