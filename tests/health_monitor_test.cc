// Tests for the consensus-health monitor: each attack signature (DDoS vote
// starvation, vote equivocation, consensus fork, total failure) and the
// healthy baseline.
#include <gtest/gtest.h>

#include "src/crypto/digest.h"
#include "src/tordir/health_monitor.h"

namespace tordir {
namespace {

using torcrypto::Digest256;

Digest256 VoteDigestOf(torbase::NodeId sender, int variant = 0) {
  return Digest256::Of("vote-" + std::to_string(sender) + "-" + std::to_string(variant));
}

// Populates a fully healthy period: everyone saw everyone's (single) vote and
// produced the same consensus.
void FillHealthy(HealthMonitor& monitor, uint32_t n) {
  for (torbase::NodeId observer = 0; observer < n; ++observer) {
    for (torbase::NodeId sender = 0; sender < n; ++sender) {
      if (observer != sender) {
        monitor.RecordVote(observer, sender, VoteDigestOf(sender));
      }
    }
    monitor.RecordConsensus(observer, Digest256::Of("consensus"));
  }
}

TEST(HealthMonitorTest, HealthyPeriodRaisesNothing) {
  HealthMonitor monitor(9);
  FillHealthy(monitor, 9);
  EXPECT_TRUE(monitor.Analyze().empty());
}

TEST(HealthMonitorTest, DetectsDdosVoteStarvation) {
  // The Figure 1 situation: votes from authorities 0-4 reach nobody.
  HealthMonitor monitor(9);
  for (torbase::NodeId observer = 0; observer < 9; ++observer) {
    for (torbase::NodeId sender = 5; sender < 9; ++sender) {
      if (observer != sender) {
        monitor.RecordVote(observer, sender, VoteDigestOf(sender));
      }
    }
    monitor.RecordConsensus(observer, std::nullopt);
  }
  const auto alerts = monitor.Analyze();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].kind, HealthAlertKind::kMissingVotes);
  EXPECT_EQ(alerts[0].authorities, (std::vector<torbase::NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(alerts[1].kind, HealthAlertKind::kNoConsensus);
}

TEST(HealthMonitorTest, DetectsVoteEquivocation) {
  HealthMonitor monitor(9);
  FillHealthy(monitor, 9);
  // Authority 3 also showed a second vote variant to someone.
  monitor.RecordVote(7, 3, VoteDigestOf(3, /*variant=*/1));
  const auto alerts = monitor.Analyze();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, HealthAlertKind::kVoteEquivocation);
  EXPECT_EQ(alerts[0].authorities, (std::vector<torbase::NodeId>{3}));
}

TEST(HealthMonitorTest, DetectsConsensusFork) {
  HealthMonitor monitor(9);
  FillHealthy(monitor, 9);
  monitor.RecordConsensus(1, Digest256::Of("fork-A"));
  monitor.RecordConsensus(2, Digest256::Of("fork-A"));
  const auto alerts = monitor.Analyze();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, HealthAlertKind::kConsensusFork);
}

TEST(HealthMonitorTest, MinorityMissingVotesIsNotAnAlert) {
  HealthMonitor monitor(9);
  FillHealthy(monitor, 9);
  HealthMonitor partial(9);
  // Authority 0's vote missing at only 3 of 8 peers: below the majority bar.
  for (torbase::NodeId observer = 0; observer < 9; ++observer) {
    for (torbase::NodeId sender = 0; sender < 9; ++sender) {
      if (observer == sender) {
        continue;
      }
      if (sender == 0 && observer >= 6) {
        continue;  // observers 6,7,8 miss it
      }
      partial.RecordVote(observer, sender, VoteDigestOf(sender));
    }
    partial.RecordConsensus(observer, Digest256::Of("consensus"));
  }
  EXPECT_TRUE(partial.Analyze().empty());
}

TEST(HealthMonitorTest, ResetClearsState) {
  HealthMonitor monitor(9);
  monitor.RecordVote(0, 1, VoteDigestOf(1));
  monitor.RecordVote(0, 1, VoteDigestOf(1, 1));
  EXPECT_FALSE(monitor.Analyze().empty());
  monitor.Reset();
  EXPECT_TRUE(monitor.Analyze().empty());
}

TEST(HealthMonitorTest, AlertNamesAreStable) {
  EXPECT_STREQ(HealthAlertName(HealthAlertKind::kMissingVotes), "missing-votes");
  EXPECT_STREQ(HealthAlertName(HealthAlertKind::kVoteEquivocation), "vote-equivocation");
  EXPECT_STREQ(HealthAlertName(HealthAlertKind::kConsensusFork), "consensus-fork");
  EXPECT_STREQ(HealthAlertName(HealthAlertKind::kNoConsensus), "no-consensus");
}

}  // namespace
}  // namespace tordir
