// Integration tests for Luo et al.'s synchronous protocol: healthy runs,
// Dolev-Strong behaviour, DDoS failure (the same attack that breaks the
// current protocol), and the earlier bandwidth collapse from its O(n^3 d) vote
// phase.
#include <gtest/gtest.h>

#include <memory>

#include "src/attack/ddos.h"
#include "src/protocols/common.h"
#include "src/protocols/sync/sync_authority.h"
#include "src/sim/actor.h"
#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"

namespace torproto {
namespace {

using torattack::AttackWindow;
using torbase::Minutes;
using torbase::Seconds;

struct Fixture {
  std::unique_ptr<torsim::Harness> harness;
  std::vector<SyncAuthority*> authorities;
  torcrypto::KeyDirectory directory{42, 9};

  void Build(size_t relay_count, double bandwidth_bps,
             const std::vector<AttackWindow>& attacks = {}) {
    ProtocolConfig config;
    tordir::PopulationConfig pop_config;
    pop_config.relay_count = relay_count;
    pop_config.seed = 5;
    const auto population = tordir::GeneratePopulation(pop_config);
    auto votes = tordir::MakeAllVotes(config.authority_count, population, pop_config);

    torsim::NetworkConfig net_config;
    net_config.node_count = config.authority_count;
    net_config.default_bandwidth_bps = bandwidth_bps;
    net_config.default_latency = torbase::Millis(50);
    harness = std::make_unique<torsim::Harness>(net_config);
    for (const auto& window : attacks) {
      torattack::ApplyAttack(harness->net(), window);
    }
    authorities.clear();
    for (uint32_t a = 0; a < config.authority_count; ++a) {
      authorities.push_back(static_cast<SyncAuthority*>(harness->AddActor(
          std::make_unique<SyncAuthority>(config, &directory, std::move(votes[a])))));
    }
  }

  std::vector<SyncOutcome> Run() {
    harness->StartAll();
    harness->sim().Run();
    std::vector<SyncOutcome> outcomes;
    for (auto* authority : authorities) {
      EXPECT_TRUE(authority->finished());
      outcomes.push_back(authority->outcome());
    }
    return outcomes;
  }
};

TEST(SyncProtocolTest, HealthyRunAllValid) {
  Fixture fx;
  fx.Build(300, torattack::kAuthorityLinkBps);
  const auto outcomes = fx.Run();
  for (size_t a = 0; a < outcomes.size(); ++a) {
    EXPECT_TRUE(outcomes[a].decided) << "authority " << a;
    EXPECT_TRUE(outcomes[a].computed_consensus) << "authority " << a;
    EXPECT_TRUE(outcomes[a].valid_consensus) << "authority " << a;
    EXPECT_EQ(outcomes[a].lists_in_agreed_vote, 9u);
  }
}

TEST(SyncProtocolTest, ConsensusIdenticalEverywhere) {
  Fixture fx;
  fx.Build(200, torattack::kAuthorityLinkBps);
  const auto outcomes = fx.Run();
  const auto digest0 = tordir::ConsensusDigest(outcomes[0].consensus);
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(tordir::ConsensusDigest(outcome.consensus), digest0);
  }
}

TEST(SyncProtocolTest, FiveMinuteAttackBreaksIt) {
  // The same §4 attack breaks the synchronous fix: it shares the bounded
  // synchrony assumption.
  Fixture fx;
  AttackWindow attack;
  attack.targets = torattack::FirstTargets(5);
  attack.start = 0;
  attack.end = Minutes(5);
  attack.available_bps = torattack::kUnderAttackBps;
  fx.Build(1000, torattack::kAuthorityLinkBps, {attack});
  const auto outcomes = fx.Run();
  for (size_t a = 0; a < outcomes.size(); ++a) {
    EXPECT_FALSE(outcomes[a].valid_consensus) << "authority " << a;
  }
}

TEST(SyncProtocolTest, FailsAtSmallerRelayCountsThanCurrent) {
  // Figure 10 at 10 Mbit/s: the packed-vote phase (~9 lists per message) blows
  // through the round budget at relay counts where the current protocol is
  // still fine.
  Fixture fx;
  fx.Build(4000, torsim::MegabitsPerSecond(10));
  const auto outcomes = fx.Run();
  bool any_valid = false;
  for (const auto& outcome : outcomes) {
    any_valid = any_valid || outcome.valid_consensus;
  }
  EXPECT_FALSE(any_valid);
}

TEST(SyncProtocolTest, StillWorksAtModestScaleAndBandwidth) {
  Fixture fx;
  fx.Build(1000, torsim::MegabitsPerSecond(10));
  const auto outcomes = fx.Run();
  for (size_t a = 0; a < outcomes.size(); ++a) {
    EXPECT_TRUE(outcomes[a].valid_consensus) << "authority " << a;
  }
}

TEST(SyncProtocolTest, AgreedVoteIsTheDesignatedSenders) {
  Fixture fx;
  fx.Build(150, torattack::kAuthorityLinkBps);
  const auto outcomes = fx.Run();
  // Everyone decided the sender's packed vote, which packed all 9 lists.
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.lists_in_agreed_vote, 9u);
    EXPECT_GT(outcome.decided_at, Seconds(450) - Seconds(1));
  }
}

TEST(SyncProtocolTest, LatencyProbesOrdered) {
  Fixture fx;
  fx.Build(300, torattack::kAuthorityLinkBps);
  const auto outcomes = fx.Run();
  for (const auto& outcome : outcomes) {
    EXPECT_LT(outcome.all_lists_received_at, Seconds(150));
    EXPECT_GT(outcome.all_packed_received_at, Seconds(150));
    EXPECT_LT(outcome.all_packed_received_at, Seconds(300));
    EXPECT_GE(outcome.finished_at, Seconds(450));
    EXPECT_LT(outcome.finished_at, Seconds(600));
  }
}

}  // namespace
}  // namespace torproto
