// Performance report: times a representative fig7-style sweep grid serially
// vs. on N threads, micro-times the simulator's per-event hot path, counts
// heap allocations per event (the whole binary routes allocations through a
// counting operator new), verifies that parallel results are bit-identical to
// serial, and writes everything to BENCH_sweep.json — the measurement that
// seeds the repo's performance trajectory.
//
// Usage: perf_report [--quick] [--threads N] [--out PATH]
//   --quick      small grid for CI smoke runs
//   --threads N  parallel worker count (default: hardware concurrency)
//   --out PATH   JSON output path (default: BENCH_sweep.json)
//
// Exit code is non-zero if parallel results diverge from serial.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/attack/ddos.h"
#include "src/attack/schedule.h"
#include "src/clients/population.h"
#include "src/common/counting_allocator.h"
#include "src/common/thread_pool.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sha256_batch.h"
#include "src/scenario/runner.h"
#include "src/scenario/timeline.h"
#include "src/sim/event_probe.h"
#include "src/sim/simulator.h"
#include "src/tordir/aggregate.h"
#include "src/tordir/consensus_diff.h"
#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"

namespace {

using torbase::counting_allocator::AllocationCount;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Keeps timed digest loops observable without benchmark::DoNotOptimize.
volatile uint64_t benchmark_sink = 0;

// The fig7 shape: the current protocol with 5 of 9 authorities clamped to a
// fixed per-victim bandwidth for the whole run, across relay counts — each
// (relays, clamp) pair one independent deterministic cell.
std::vector<torscenario::ScenarioSpec> Fig7StyleGrid(bool quick) {
  const std::vector<size_t> relay_counts =
      quick ? std::vector<size_t>{400, 800} : std::vector<size_t>{800, 1600, 2400, 3200};
  const std::vector<double> victim_mbps =
      quick ? std::vector<double>{0.5, 8.0, 25.0}
            : std::vector<double>{0.5, 2.0, 4.0, 8.0, 16.0, 25.0};

  std::vector<torscenario::ScenarioSpec> specs;
  for (size_t relays : relay_counts) {
    for (double mbps : victim_mbps) {
      torattack::AttackWindow window;
      window.targets = torattack::FirstTargets(5);
      window.start = 0;
      window.end = torbase::Minutes(15);
      window.available_bps = mbps * 1e6;

      torscenario::ScenarioSpec spec;
      spec.name = "perf_report";
      spec.protocol = "current";
      spec.relay_count = relays;
      spec.horizon = torbase::Minutes(15);
      spec.attack = std::make_shared<torattack::WindowedAttack>(
          std::vector<torattack::AttackWindow>{window});
      specs.push_back(std::move(spec));
    }
  }
  // Two consumption-plane cells so the serial-vs-parallel identity check
  // covers the client-availability fields: one failed round (attacked — the
  // plane runs against the prior document only) and one healthy round (the
  // published consensus is serialized and served).
  for (const bool attacked : {true, false}) {
    torscenario::ScenarioSpec spec;
    spec.name = "perf_report_clients";
    spec.protocol = "current";
    spec.relay_count = 800;
    spec.horizon = torbase::Minutes(15);
    spec.client_load.client_count = 5'000'000;
    if (attacked) {
      torattack::AttackWindow window;
      window.targets = torattack::FirstTargets(5);
      window.start = 0;
      window.end = torbase::Minutes(5);
      window.available_bps = torattack::kUnderAttackBps;
      spec.attack = std::make_shared<torattack::WindowedAttack>(
          std::vector<torattack::AttackWindow>{window});
    }
    specs.push_back(std::move(spec));
  }
  // A diff-enabled consumption cell: a churned variant of the round's
  // document seeds the previous-consensus baseline and 80% of steady
  // refetchers are diff-capable, so the diff size accounting and the
  // byte-denominated serving split run under the serial-vs-parallel identity
  // check too.
  {
    tordir::PopulationConfig config;
    config.relay_count = 800;
    config.seed = 1;
    const auto population = tordir::GeneratePopulation(config);
    const tordir::ConsensusDocument consensus =
        tordir::ComputeConsensus(tordir::MakeAllVotes(9, population, config));
    tordir::ConsensusChurnConfig churn;
    churn.change_fraction = 0.02;
    churn.remove_fraction = 0.01;
    churn.add_fraction = 0.01;
    torscenario::ScenarioSpec spec;
    spec.name = "perf_report_clients_diff";
    spec.protocol = "current";
    spec.relay_count = 800;
    spec.horizon = torbase::Minutes(15);
    spec.client_load.client_count = 5'000'000;
    spec.client_load.diff_capable_fraction = 0.8;
    spec.previous_consensus =
        std::make_shared<const tordir::ConsensusDocument>(tordir::ChurnConsensus(consensus, churn));
    specs.push_back(std::move(spec));
  }
  return specs;
}

struct ClientPlaneMicro {
  // 5M clients, 24 h replay: aggregate demand integrated per wall-second.
  double fetches_per_second = 0.0;
  double run_micros_16_caches = 0.0;
  double run_micros_128_caches = 0.0;
  // Simulator events the plane adds per client fetch: 0 by construction
  // (closed-form aggregate flows) — the O(caches), not O(clients), contract.
  double events_per_fetch = 0.0;
  double allocations_per_fetch = 0.0;
};

// Times the consumption plane on a day-long timeline with a mid-day outage
// (the shape bench/client_availability reports). Cost must track the cache
// count, never the client count.
ClientPlaneMicro MeasureClientPlane() {
  constexpr int kHours = 24;
  constexpr uint64_t kClients = 5'000'000;
  std::vector<torclients::PublishedDocument> timeline;
  for (int hour = 0; hour < kHours; ++hour) {
    if (hour >= 2 && hour < 8) {
      continue;  // six missed rounds: stale -> hard-down -> recovery
    }
    torclients::PublishedDocument doc;
    doc.published_seconds = hour * 3600.0 + 300.0;
    doc.fresh_until_seconds = hour * 3600.0 + 600.0 + 3600.0;
    doc.valid_until_seconds = hour * 3600.0 + 600.0 + 3 * 3600.0;
    doc.size_bytes = 800e3;
    timeline.push_back(doc);
  }

  const auto time_plane = [&timeline](uint32_t caches, int rounds) {
    torclients::ClientLoadSpec spec;
    spec.client_count = kClients;
    spec.cache_count = caches;
    double sink = 0.0;
    const auto start = Clock::now();
    for (int i = 0; i < rounds; ++i) {
      sink += torclients::SimulateClientLoad(spec, timeline, kHours * 3600.0).fresh_fetches;
    }
    const double elapsed = SecondsSince(start);
    if (sink < 0.0) {
      std::abort();  // keep the optimizer honest
    }
    return elapsed / rounds;
  };

  constexpr int kRounds = 2000;
  ClientPlaneMicro micro;
  const uint64_t allocs_before = AllocationCount();
  const double seconds_16 = time_plane(16, kRounds);
  const double fetches = static_cast<double>(kClients) * kHours;  // one fetch/client/hour
  micro.allocations_per_fetch =
      static_cast<double>(AllocationCount() - allocs_before) / kRounds / fetches;
  micro.run_micros_16_caches = seconds_16 * 1e6;
  micro.run_micros_128_caches = time_plane(128, kRounds) * 1e6;
  micro.fetches_per_second = fetches / seconds_16;
  micro.events_per_fetch = 0.0;  // SimulateClientLoad owns no Simulator
  return micro;
}

struct AggregatePoint {
  size_t relays = 0;
  double relays_per_second = 0.0;
  double millis_per_op = 0.0;
};

struct AggregateMicro {
  // ComputeConsensus throughput across the relay axis (9 authorities), plus
  // the steady-state allocation rate — the flat-merge + interned-strings
  // contract (O(n·a) time, O(1) allocations; see src/tordir/aggregate.h).
  std::vector<AggregatePoint> points;
  double allocations_per_relay = 0.0;
};

// Times the consensus aggregation hot path at 1k/8k/64k relays (1k/8k in
// --quick). Pre-refactor map-based baseline at 8k x 9: ~78 ms/op, ~102k
// relays/s on the CI container class of hardware.
AggregateMicro MeasureAggregate(bool quick) {
  constexpr uint32_t kAuthorities = 9;
  const std::vector<size_t> relay_counts =
      quick ? std::vector<size_t>{1000, 8000} : std::vector<size_t>{1000, 8000, 64000};

  AggregateMicro micro;
  for (const size_t relays : relay_counts) {
    tordir::PopulationConfig config;
    config.relay_count = relays;
    config.seed = 3;
    const auto population = tordir::GeneratePopulation(config);
    const auto votes = tordir::MakeAllVotes(kAuthorities, population, config);

    size_t consensus_relays = tordir::ComputeConsensus(votes).relays.size();  // warm-up
    const int rounds = relays >= 64000 ? 3 : (relays >= 8000 ? 10 : 40);
    const uint64_t allocs_before = AllocationCount();
    const auto start = Clock::now();
    for (int i = 0; i < rounds; ++i) {
      consensus_relays = tordir::ComputeConsensus(votes).relays.size();
    }
    const double elapsed = SecondsSince(start);
    const uint64_t allocs = AllocationCount() - allocs_before;

    AggregatePoint point;
    point.relays = relays;
    point.millis_per_op = elapsed / rounds * 1e3;
    point.relays_per_second = static_cast<double>(relays) * rounds / elapsed;
    micro.points.push_back(point);
    if (relays == 8000) {
      micro.allocations_per_relay = static_cast<double>(allocs) / rounds /
                                    static_cast<double>(consensus_relays);
    }
  }
  return micro;
}

struct CodecPoint {
  size_t relays = 0;
  double serialize_mb_per_second = 0.0;
  double parse_mb_per_second = 0.0;
  double digest_mb_per_second = 0.0;
};

struct CodecMicro {
  // Wire-codec throughput across the relay axis plus steady-state allocation
  // rates — the streaming-serializer / cursor-parser contract
  // (src/tordir/dirspec.cc). Pre-refactor baseline at 8k relays: ~719 MB/s
  // serialize, ~212 MB/s parse, ~8 heap allocations per relay parsed.
  std::vector<CodecPoint> points;
  double serialize_allocations_per_relay = 0.0;
  double parse_allocations_per_relay = 0.0;
};

// Floors for the self-check: far below the ~4000/1100 MB/s the streaming
// codec measures on the CI container class, far above the ~719/212 MB/s
// pre-refactor baseline — a regression to per-field temporaries or per-line
// vectors trips them on any hardware tier. Absolute-throughput floors only
// make sense in optimized, unsanitized builds (TSan/ASan cost ~10-80x, -O0
// costs ~5-10x, and CI runs this binary in Debug for the scalar-fallback
// leg); the allocation and identity checks hold everywhere.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__) || !defined(NDEBUG)
constexpr bool kThroughputFloorsApply = false;
#else
constexpr bool kThroughputFloorsApply = true;
#endif
constexpr double kMinSerializeMbps = 1000.0;
constexpr double kMinParseMbps = 400.0;
constexpr double kMaxCodecAllocationsPerRelay = 0.05;

CodecMicro MeasureCodec(bool quick) {
  const std::vector<size_t> relay_counts =
      quick ? std::vector<size_t>{1000, 8000} : std::vector<size_t>{1000, 8000, 64000};

  CodecMicro micro;
  for (const size_t relays : relay_counts) {
    tordir::PopulationConfig config;
    config.relay_count = relays;
    config.seed = 3;
    const auto population = tordir::GeneratePopulation(config);
    const auto vote = tordir::MakeVote(0, 9, population, config);

    std::string text = tordir::SerializeVote(vote);  // warm-up (interns, heap)
    const double megabytes = static_cast<double>(text.size()) / 1e6;
    const int rounds = relays >= 64000 ? 4 : (relays >= 8000 ? 20 : 80);

    const uint64_t serialize_allocs_before = AllocationCount();
    const auto serialize_start = Clock::now();
    for (int i = 0; i < rounds; ++i) {
      text = tordir::SerializeVote(vote);
    }
    const double serialize_seconds = SecondsSince(serialize_start);
    const uint64_t serialize_allocs = AllocationCount() - serialize_allocs_before;

    auto parsed = tordir::ParseVote(text);  // warm-up
    const uint64_t parse_allocs_before = AllocationCount();
    const auto parse_start = Clock::now();
    for (int i = 0; i < rounds; ++i) {
      parsed = tordir::ParseVote(text);
    }
    const double parse_seconds = SecondsSince(parse_start);
    const uint64_t parse_allocs = AllocationCount() - parse_allocs_before;
    if (!parsed.ok() || parsed->relays.size() != vote.relays.size()) {
      std::abort();  // the codec row must measure a correct round trip
    }

    const auto digest_start = Clock::now();
    for (int i = 0; i < rounds; ++i) {
      benchmark_sink += tordir::VoteDigest(vote).bytes()[0];
    }
    const double digest_seconds = SecondsSince(digest_start);

    CodecPoint point;
    point.relays = relays;
    point.serialize_mb_per_second = megabytes * rounds / serialize_seconds;
    point.parse_mb_per_second = megabytes * rounds / parse_seconds;
    point.digest_mb_per_second = megabytes * rounds / digest_seconds;
    micro.points.push_back(point);
    if (relays == 8000) {
      const double per_round_relays = static_cast<double>(vote.relays.size()) * rounds;
      micro.serialize_allocations_per_relay =
          static_cast<double>(serialize_allocs) / per_round_relays;
      micro.parse_allocations_per_relay = static_cast<double>(parse_allocs) / per_round_relays;
    }
  }
  return micro;
}

struct DiffPoint {
  size_t relays = 0;
  double compute_mb_per_second = 0.0;  // target MB per second of ComputeConsensusDiff
  double apply_mb_per_second = 0.0;    // the patch merge itself (verification off)
  double apply_verified_mb_per_second = 0.0;  // serving path: patch + target digest
  double compression_ratio = 0.0;             // diff bytes / full target bytes
};

struct DiffMicro {
  // The consensus diff codec (src/tordir/consensus_diff.h) at live-network
  // churn (1% changed + 0.5% removed + 0.5% added rows per round): compute
  // and apply throughput against the full document size, the compression
  // ratio, apply-side allocation rate, and the byte-identity of every patched
  // output against the target serialization.
  std::vector<DiffPoint> points;
  double apply_allocations_per_relay = 0.0;
  bool byte_identical = true;
};

// The patch merge must beat 1 GiB/s at 8k relays: bulk copies between edit
// points, so a regression to per-row reparsing or per-op allocation trips
// this on any hardware tier. The verified number adds one SHA-256 pass over
// the output — hash-bound by construction (the hashing row floors that
// subsystem separately), so it is reported but not floored: on a single-core
// SHA-NI box it sits at the harmonic mean of the splice and ~1.3 GB/s.
constexpr double kMinApplyMbps = 1073.74;  // 1 GiB/s
constexpr double kMaxDiffCompressionRatio = 0.05;

DiffMicro MeasureDiff(bool quick, unsigned threads) {
  torbase::ThreadPool pool(threads);
  const std::vector<size_t> relay_counts =
      quick ? std::vector<size_t>{1000, 8000} : std::vector<size_t>{1000, 8000, 64000};

  DiffMicro micro;
  for (const size_t relays : relay_counts) {
    tordir::PopulationConfig config;
    config.relay_count = relays;
    config.seed = 3;
    const auto population = tordir::GeneratePopulation(config);
    tordir::ConsensusDocument base =
        tordir::ComputeConsensus(tordir::MakeAllVotes(9, population, config));
    for (uint32_t a = 0; a < 9; ++a) {
      torcrypto::Signature sig;
      sig.signer = a;
      sig.bytes.fill(static_cast<uint8_t>(0xB0 + a));
      base.signatures.push_back(sig);
    }
    tordir::ConsensusChurnConfig churn;
    churn.change_fraction = 0.01;
    churn.remove_fraction = 0.005;
    churn.add_fraction = 0.005;
    churn.seed = 3;
    const tordir::ConsensusDocument next = tordir::ChurnConsensus(base, churn);
    const std::string base_text = tordir::SerializeConsensus(base);
    const std::string target_text = tordir::SerializeConsensus(next);
    const double megabytes = static_cast<double>(target_text.size()) / 1e6;
    const int rounds = relays >= 64000 ? 8 : (relays >= 8000 ? 40 : 120);

    // Compute with precomputed framing digests — the cache workflow, where
    // documents are already named by their tree digest.
    tordir::ConsensusDiffOptions options;
    options.base_digest = tordir::TreeSignedConsensusDigest(base, &pool);
    options.target_digest = tordir::TreeSignedConsensusDigest(next, &pool);
    std::string diff = tordir::ComputeConsensusDiff(base, next, options);  // warm-up
    const auto compute_start = Clock::now();
    for (int i = 0; i < rounds; ++i) {
      diff = tordir::ComputeConsensusDiff(base, next, options);
    }
    const double compute_seconds = SecondsSince(compute_start);

    // The patch merge alone (digest check off, byte-identity asserted against
    // the target serialization instead) — the number the 1 GiB/s floor pins.
    tordir::ApplyDiffOptions patch_only;
    patch_only.verify_target = false;
    auto patched = tordir::ApplyConsensusDiff(base_text, diff, patch_only);  // warm-up
    if (!patched.ok() || *patched != target_text) {
      micro.byte_identical = false;
    }
    const auto patch_start = Clock::now();
    for (int i = 0; i < rounds; ++i) {
      patched = tordir::ApplyConsensusDiff(base_text, diff, patch_only);
    }
    const double patch_seconds = SecondsSince(patch_start);
    if (!patched.ok() || *patched != target_text) {
      micro.byte_identical = false;
    }

    // The serving path: patch + sha256-tree-v1 target verification.
    tordir::ApplyDiffOptions apply_options;
    apply_options.pool = &pool;
    patched = tordir::ApplyConsensusDiff(base_text, diff, apply_options);  // warm-up
    if (!patched.ok() || *patched != target_text) {
      micro.byte_identical = false;
    }
    const uint64_t apply_allocs_before = AllocationCount();
    const auto apply_start = Clock::now();
    for (int i = 0; i < rounds; ++i) {
      patched = tordir::ApplyConsensusDiff(base_text, diff, apply_options);
    }
    const double apply_seconds = SecondsSince(apply_start);
    const uint64_t apply_allocs = AllocationCount() - apply_allocs_before;
    if (!patched.ok() || *patched != target_text) {
      micro.byte_identical = false;
    }

    DiffPoint point;
    point.relays = relays;
    point.compute_mb_per_second = megabytes * rounds / compute_seconds;
    point.apply_mb_per_second = megabytes * rounds / patch_seconds;
    point.apply_verified_mb_per_second = megabytes * rounds / apply_seconds;
    point.compression_ratio =
        static_cast<double>(diff.size()) / static_cast<double>(target_text.size());
    micro.points.push_back(point);
    if (relays == 8000) {
      micro.apply_allocations_per_relay = static_cast<double>(apply_allocs) / rounds /
                                          static_cast<double>(next.relays.size());
    }
  }
  return micro;
}

struct HashingPoint {
  size_t relays = 0;
  double tree_serial_mb_per_second = 0.0;    // TreeVoteDigest, streaming sink
  double tree_parallel_mb_per_second = 0.0;  // TreeVoteDigest on the pool
};

struct HashingMicro {
  // The hardware-bound hashing subsystem (src/crypto/sha256_simd.cc /
  // sha256_batch.cc / sha256_tree.cc): dispatch-reported backends, flat-buffer
  // core throughput, and vote-digest throughput per relay axis. The scalar
  // rows pin the golden-reference core on the same machine so the speedup
  // ratio is hardware-independent.
  const char* stream_backend = "?";
  const char* batch_backend = "?";
  double scalar_mb_per_second = 0.0;      // 1 MiB buffer, pinned scalar core
  double dispatched_mb_per_second = 0.0;  // 1 MiB buffer, dispatched core
  double batch_mb_per_second = 0.0;       // 8 x 1 MiB, active batch backend
  double scalar_vote_digest_mb_per_second = 0.0;  // 8k vote bytes, scalar core
  double vote_digest_speedup_over_scalar = 0.0;   // best fast path / scalar, 8k
  std::vector<HashingPoint> points;
};

// The ISSUE-6 acceptance floor: vote-digest throughput at 8k relays must be
// >= 4x the scalar baseline measured in the same process. Only meaningful
// when a hardware single-stream core is live (SHA-NI); on scalar-only or
// AVX2-only machines — and under TSan/ASan via kThroughputFloorsApply — the
// ratio is reported but not enforced.
constexpr double kMinVoteDigestSpeedupOverScalar = 4.0;

HashingMicro MeasureHashing(bool quick, unsigned threads) {
  HashingMicro micro;
  micro.stream_backend = torcrypto::Sha256BackendName(torcrypto::ActiveSha256Backend());
  micro.batch_backend = torcrypto::Sha256BackendName(torcrypto::ActiveSha256BatchBackend());

  // Flat-buffer core throughput, 1 MiB messages.
  const std::vector<uint8_t> buffer(1 << 20, 0xab);
  const auto time_flat = [&buffer](auto&& hash_once, int rounds) {
    hash_once();  // warm-up
    const auto start = Clock::now();
    for (int i = 0; i < rounds; ++i) {
      hash_once();
    }
    return static_cast<double>(buffer.size()) * rounds / SecondsSince(start) / 1e6;
  };
  const int flat_rounds = quick ? 40 : 200;
  micro.scalar_mb_per_second = time_flat(
      [&buffer] {
        benchmark_sink += torcrypto::Sha256DigestForBackend(
            torcrypto::Sha256Backend::kScalar, std::span<const uint8_t>(buffer))[0];
      },
      flat_rounds);
  micro.dispatched_mb_per_second = time_flat(
      [&buffer] { benchmark_sink += torcrypto::Sha256Digest(std::span<const uint8_t>(buffer))[0]; },
      flat_rounds);
  micro.batch_mb_per_second = 8.0 * time_flat(
      [&buffer] {
        torcrypto::Sha256Batch batch;
        for (int lane = 0; lane < 8; ++lane) {
          batch.Add(std::span<const uint8_t>(buffer));
        }
        benchmark_sink += batch.Finish()[0][0];
      },
      flat_rounds / 8 + 1);

  // Vote-digest throughput per relay axis: the tree entry points end-to-end
  // (streaming sink vs pool fan-out), plus the pinned-scalar baseline at 8k.
  torbase::ThreadPool pool(threads);
  const std::vector<size_t> relay_counts =
      quick ? std::vector<size_t>{1000, 8000} : std::vector<size_t>{1000, 8000, 64000};
  for (const size_t relays : relay_counts) {
    tordir::PopulationConfig config;
    config.relay_count = relays;
    config.seed = 3;
    const auto population = tordir::GeneratePopulation(config);
    const auto vote = tordir::MakeVote(0, 9, population, config);
    const std::string text = tordir::SerializeVote(vote);
    const double megabytes = static_cast<double>(text.size()) / 1e6;
    const int rounds = relays >= 64000 ? 8 : (relays >= 8000 ? 40 : 120);

    const auto time_digest = [&](auto&& digest_once) {
      digest_once();  // warm-up
      const auto start = Clock::now();
      for (int i = 0; i < rounds; ++i) {
        digest_once();
      }
      return megabytes * rounds / SecondsSince(start);
    };

    HashingPoint point;
    point.relays = relays;
    point.tree_serial_mb_per_second =
        time_digest([&vote] { benchmark_sink += tordir::TreeVoteDigest(vote).bytes()[0]; });
    point.tree_parallel_mb_per_second = time_digest(
        [&vote, &pool] { benchmark_sink += tordir::TreeVoteDigest(vote, &pool).bytes()[0]; });
    if (relays == 8000) {
      micro.scalar_vote_digest_mb_per_second = time_digest([&text] {
        benchmark_sink += torcrypto::Sha256DigestForBackend(torcrypto::Sha256Backend::kScalar,
                                                            std::string_view(text))[0];
      });
      const double fast = std::max(point.tree_serial_mb_per_second,
                                   point.tree_parallel_mb_per_second);
      micro.vote_digest_speedup_over_scalar =
          micro.scalar_vote_digest_mb_per_second > 0.0
              ? fast / micro.scalar_vote_digest_mb_per_second
              : 0.0;
    }
    micro.points.push_back(point);
  }
  return micro;
}

struct TimelineMicro {
  uint32_t rounds = 0;
  double wall_seconds = 0.0;
  double rounds_per_second = 0.0;
  uint32_t successful_rounds = 0;
  size_t rejoin_count = 0;
  double peak_retry_backlog = 0.0;
  bool plane_enabled = false;
  size_t memo_hits = 0;
  size_t memo_misses = 0;
  double memo_hit_rate = 0.0;
};

// The long-horizon row: a week of hourly rounds (24 in --quick) under a fault
// calendar — an 8-round knock-out flood, an authority crash spanning
// published rounds (diff-chain rejoin), a churn blip — with 5M clients
// integrated across the whole horizon, all in one RunTimeline call fanned
// onto the sweep pool. The floor pins end-to-end round throughput: a
// regression anywhere in the stack (simulation, stitch, diff codec, client
// plane, result memo) drags rounds/s down. With the spec-digest result memo
// (the ~160 quiet rounds of the week collapse to one simulation) the 7-day
// horizon measures >100 rounds/s on a single-core CI container at 800
// relays; the floor sits far below that but well above the ~4 rounds/s the
// memo-less engine managed, so losing the memo — or any structural
// regression in what remains (per-round reserialization, a quadratic
// stitch, an eventful client plane) — trips it on any hardware tier.
constexpr double kMinTimelineRoundsPerSecond = 12.0;

// The memo's own self-check on the full 7-day calendar: 168 rounds shrink to
// ~7 distinct simulations, a ~0.96 hit rate. Checked only on the full
// horizon (the 24-round --quick calendar is mostly faulted, so its rate is
// structurally lower) and only where the throughput floors apply.
constexpr double kMinTimelineMemoHitRate = 0.8;

TimelineMicro MeasureTimeline(bool quick, unsigned threads) {
  torscenario::TimelineSpec timeline;
  timeline.name = "perf_timeline";
  timeline.rounds = quick ? 24 : 168;
  timeline.round_period = torbase::Hours(1);
  timeline.base.name = "perf_timeline";
  timeline.base.protocol = "current";
  timeline.base.relay_count = 800;
  timeline.base.client_load.client_count = 5'000'000;
  timeline.base.client_load.diff_capable_fraction = 0.8;

  torattack::AttackWindow window;
  window.targets = torattack::FirstTargets(5);
  window.start = 0;
  window.end = torbase::Minutes(5);
  window.available_bps = 0.0;
  timeline.attacks.push_back(torscenario::AttackCalendarEntry{
      8, quick ? 11u : 15u,
      std::make_shared<torattack::WindowedAttack>(
          std::vector<torattack::AttackWindow>{window})});
  timeline.crashes.push_back(
      torscenario::CrashCalendarEntry{7, 2, torbase::Minutes(1), 5, torbase::Minutes(2)});
  const uint32_t blip_round = quick ? 20 : 100;
  timeline.churn.push_back(torscenario::ChurnCalendarEntry{
      blip_round, {8, torbase::Seconds(30), torscenario::ChurnEvent::Kind::kCrash}});
  timeline.churn.push_back(torscenario::ChurnCalendarEntry{
      blip_round, {8, torbase::Minutes(5), torscenario::ChurnEvent::Kind::kRecover}});

  torscenario::ScenarioRunner runner;
  const auto start = Clock::now();
  const torscenario::TimelineResult result =
      runner.RunTimeline(timeline, torscenario::SweepOptions{threads});
  TimelineMicro micro;
  micro.wall_seconds = SecondsSince(start);
  micro.rounds = timeline.rounds;
  micro.rounds_per_second = static_cast<double>(timeline.rounds) / micro.wall_seconds;
  micro.successful_rounds = result.successful_rounds;
  micro.rejoin_count = result.rejoins.size();
  micro.peak_retry_backlog = result.peak_retry_backlog;
  micro.plane_enabled = result.client_availability.enabled;
  micro.memo_hits = runner.result_memo_hits();
  micro.memo_misses = runner.result_memo_misses();
  const size_t memo_runs = micro.memo_hits + micro.memo_misses;
  micro.memo_hit_rate =
      memo_runs > 0 ? static_cast<double>(micro.memo_hits) / static_cast<double>(memo_runs) : 0.0;
  return micro;
}

struct EventMicro {
  double schedule_fire_ns = 0.0;
  double schedule_cancel_ns = 0.0;
  double allocations_per_event = 0.0;
};

// Schedule/fire and schedule/cancel throughput with a capture that fills most
// of SimCallback's inline buffer (src/sim/event_probe.h), after warming the
// heap and slot arena.
EventMicro MeasureEventPath() {
  torsim::Simulator sim;
  uint64_t fired = 0;
  constexpr size_t kBatch = 64;
  constexpr size_t kRounds = 4000;
  torsim::WarmUpProbe(sim, kBatch, &fired);

  EventMicro micro;
  {
    const uint64_t allocs_before = AllocationCount();
    const auto start = Clock::now();
    for (size_t round = 0; round < kRounds; ++round) {
      torsim::ScheduleProbeBatch(sim, kBatch, &fired);
      sim.Run();
    }
    const double elapsed = SecondsSince(start);
    const double events = static_cast<double>(kBatch * kRounds);
    micro.schedule_fire_ns = elapsed / events * 1e9;
    micro.allocations_per_event =
        static_cast<double>(AllocationCount() - allocs_before) / events;
  }
  {
    const auto start = Clock::now();
    for (size_t round = 0; round < kRounds; ++round) {
      torsim::ScheduleCancelProbeBatch(sim, kBatch, &fired);
      sim.Run();
    }
    micro.schedule_cancel_ns = SecondsSince(start) / static_cast<double>(kBatch * kRounds) * 1e9;
  }
  return micro;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  unsigned threads = torbase::ThreadPool::DefaultThreads();
  std::string out_path = "BENCH_sweep.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--threads N] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  if (threads == 0) {
    threads = 1;
  }

  const auto specs = Fig7StyleGrid(quick);
  std::printf("=== perf_report: %zu-cell fig7-style sweep, serial vs %u thread(s) ===\n\n",
              specs.size(), threads);

  std::printf("per-event micro (64-cell batches, 48-byte captures)...\n");
  const EventMicro micro = MeasureEventPath();
  std::printf("  schedule->fire  : %7.1f ns/event\n", micro.schedule_fire_ns);
  std::printf("  schedule->cancel: %7.1f ns/event\n", micro.schedule_cancel_ns);
  std::printf("  allocations     : %7.3f per event\n\n", micro.allocations_per_event);

  std::printf("codec micro (SerializeVote / ParseVote / VoteDigest)...\n");
  const CodecMicro codec = MeasureCodec(quick);
  for (const CodecPoint& point : codec.points) {
    std::printf("  %6zu relays : %7.0f MB/s serialize  %7.0f MB/s parse  %7.0f MB/s digest\n",
                point.relays, point.serialize_mb_per_second, point.parse_mb_per_second,
                point.digest_mb_per_second);
  }
  std::printf("  allocations     : %7.4f serialize / %7.4f parse per relay (8k)\n\n",
              codec.serialize_allocations_per_relay, codec.parse_allocations_per_relay);

  std::printf("diff micro (ComputeConsensusDiff / ApplyConsensusDiff, 1%% churn + 0.5%% add/remove)...\n");
  const DiffMicro diff = MeasureDiff(quick, threads);
  for (const DiffPoint& point : diff.points) {
    std::printf(
        "  %6zu relays : %7.0f MB/s compute  %7.0f MB/s apply  %7.0f MB/s verified  ratio %.4f\n",
        point.relays, point.compute_mb_per_second, point.apply_mb_per_second,
        point.apply_verified_mb_per_second, point.compression_ratio);
  }
  std::printf("  allocations     : %7.4f apply per relay (8k); patched output %s\n\n",
              diff.apply_allocations_per_relay,
              diff.byte_identical ? "byte-identical" : "DIVERGED");

  std::printf("hashing micro (SHA-256 cores, Sha256Batch, tree vote digests)...\n");
  const HashingMicro hashing = MeasureHashing(quick, threads);
  std::printf("  backends        : stream=%s batch=%s forced_scalar=%s\n", hashing.stream_backend,
              hashing.batch_backend,
#ifdef TORCRYPTO_FORCE_SCALAR
              "on"
#else
              "off"
#endif
  );
  std::printf("  flat 1 MiB      : %7.0f MB/s scalar  %7.0f MB/s dispatched  %7.0f MB/s batch x8\n",
              hashing.scalar_mb_per_second, hashing.dispatched_mb_per_second,
              hashing.batch_mb_per_second);
  for (const HashingPoint& point : hashing.points) {
    std::printf("  %6zu relays : %7.0f MB/s tree-serial  %7.0f MB/s tree-parallel\n", point.relays,
                point.tree_serial_mb_per_second, point.tree_parallel_mb_per_second);
  }
  std::printf("  vote digest 8k  : %7.2fx over scalar (%.0f MB/s scalar baseline)\n\n",
              hashing.vote_digest_speedup_over_scalar, hashing.scalar_vote_digest_mb_per_second);

  std::printf("aggregate micro (ComputeConsensus, 9 authorities)...\n");
  const AggregateMicro aggregate = MeasureAggregate(quick);
  for (const AggregatePoint& point : aggregate.points) {
    std::printf("  %6zu relays : %8.2f ms/op  (%.2e relays/s)\n", point.relays,
                point.millis_per_op, point.relays_per_second);
  }
  std::printf("  allocations     : %7.4f per aggregated relay (8k)\n\n",
              aggregate.allocations_per_relay);

  std::printf("client plane (5M clients, 24 h replay, closed-form flows)...\n");
  const ClientPlaneMicro clients = MeasureClientPlane();
  std::printf("  16-cache run    : %7.1f us  (%.2e fetches/s)\n", clients.run_micros_16_caches,
              clients.fetches_per_second);
  std::printf("  128-cache run   : %7.1f us  (cost tracks caches, not clients)\n",
              clients.run_micros_128_caches);
  std::printf("  sim events      : %7.3f per client fetch\n\n", clients.events_per_fetch);

  std::printf("timeline (%s-horizon fault calendar, 5M clients, %u threads)...\n",
              quick ? "24-round" : "7-day", threads);
  const TimelineMicro timeline = MeasureTimeline(quick, threads);
  std::printf("  %u rounds       : %7.2f s wall  (%.2f rounds/s)\n", timeline.rounds,
              timeline.wall_seconds, timeline.rounds_per_second);
  std::printf("  horizon         : %u published, %zu rejoin(s), peak backlog %.0f\n",
              timeline.successful_rounds, timeline.rejoin_count, timeline.peak_retry_backlog);
  std::printf("  result memo     : %zu hit(s) / %zu simulated  (%.1f%% hit rate)\n\n",
              timeline.memo_hits, timeline.memo_misses, timeline.memo_hit_rate * 100.0);

  std::printf("serial sweep...\n");
  torscenario::ScenarioRunner serial_runner;
  const auto serial_start = Clock::now();
  const auto serial_results = serial_runner.Sweep(specs);
  const double serial_seconds = SecondsSince(serial_start);
  std::printf("  %.2f s (%zu workload generations)\n", serial_seconds,
              serial_runner.workload_cache_misses());

  std::printf("parallel sweep (%u threads)...\n", threads);
  torscenario::ScenarioRunner parallel_runner;
  const auto parallel_start = Clock::now();
  const auto parallel_results = parallel_runner.Sweep(specs, torscenario::SweepOptions{threads});
  const double parallel_seconds = SecondsSince(parallel_start);
  std::printf("  %.2f s\n", parallel_seconds);

  bool identical = serial_results.size() == parallel_results.size();
  for (size_t i = 0; identical && i < serial_results.size(); ++i) {
    identical = torscenario::BitIdentical(serial_results[i], parallel_results[i]);
  }
  const double speedup = parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  std::printf("  speedup %.2fx, results %s\n\n", speedup,
              identical ? "bit-identical" : "DIVERGED");

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"bench\": \"perf_report\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"grid_cells\": " << specs.size() << ",\n"
       << "  \"hardware_concurrency\": " << torbase::ThreadPool::DefaultThreads() << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"serial_seconds\": " << serial_seconds << ",\n"
       << "  \"parallel_seconds\": " << parallel_seconds << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"parallel_identical_to_serial\": " << (identical ? "true" : "false") << ",\n"
       << "  \"codec\": {\n";
  for (const CodecPoint& point : codec.points) {
    json << "    \"serialize_mb_per_second_" << point.relays / 1000 << "k\": "
         << point.serialize_mb_per_second << ",\n"
         << "    \"parse_mb_per_second_" << point.relays / 1000 << "k\": "
         << point.parse_mb_per_second << ",\n"
         << "    \"digest_mb_per_second_" << point.relays / 1000 << "k\": "
         << point.digest_mb_per_second << ",\n";
  }
  json << "    \"serialize_allocations_per_relay\": " << codec.serialize_allocations_per_relay
       << ",\n"
       << "    \"parse_allocations_per_relay\": " << codec.parse_allocations_per_relay << "\n"
       << "  },\n"
       << "  \"diff\": {\n";
  for (const DiffPoint& point : diff.points) {
    json << "    \"compute_mb_per_second_" << point.relays / 1000 << "k\": "
         << point.compute_mb_per_second << ",\n"
         << "    \"apply_mb_per_second_" << point.relays / 1000 << "k\": "
         << point.apply_mb_per_second << ",\n"
         << "    \"apply_verified_mb_per_second_" << point.relays / 1000 << "k\": "
         << point.apply_verified_mb_per_second << ",\n"
         << "    \"compression_ratio_" << point.relays / 1000 << "k\": "
         << point.compression_ratio << ",\n";
  }
  json << "    \"apply_allocations_per_relay\": " << diff.apply_allocations_per_relay << ",\n"
       << "    \"byte_identical\": " << (diff.byte_identical ? "true" : "false") << ",\n"
       << "    \"apply_mbps_floor\": " << kMinApplyMbps << ",\n"
       << "    \"compression_ratio_ceiling\": " << kMaxDiffCompressionRatio << ",\n"
       << "    \"apply_floor_enforced\": " << (kThroughputFloorsApply ? "true" : "false") << "\n"
       << "  },\n"
       << "  \"aggregate\": {\n";
  for (size_t i = 0; i < aggregate.points.size(); ++i) {
    const AggregatePoint& point = aggregate.points[i];
    json << "    \"relays_per_second_" << point.relays / 1000 << "k\": "
         << point.relays_per_second << ",\n"
         << "    \"millis_per_op_" << point.relays / 1000 << "k\": " << point.millis_per_op
         << ",\n";
  }
  json << "    \"allocations_per_relay\": " << aggregate.allocations_per_relay << "\n"
       << "  },\n"
       << "  \"hashing\": {\n"
       << "    \"stream_backend\": \"" << hashing.stream_backend << "\",\n"
       << "    \"batch_backend\": \"" << hashing.batch_backend << "\",\n"
       << "    \"scalar_mb_per_second\": " << hashing.scalar_mb_per_second << ",\n"
       << "    \"dispatched_mb_per_second\": " << hashing.dispatched_mb_per_second << ",\n"
       << "    \"batch_mb_per_second\": " << hashing.batch_mb_per_second << ",\n";
  for (const HashingPoint& point : hashing.points) {
    json << "    \"tree_vote_digest_serial_mb_per_second_" << point.relays / 1000 << "k\": "
         << point.tree_serial_mb_per_second << ",\n"
         << "    \"tree_vote_digest_parallel_mb_per_second_" << point.relays / 1000 << "k\": "
         << point.tree_parallel_mb_per_second << ",\n";
  }
  json << "    \"scalar_vote_digest_mb_per_second_8k\": "
       << hashing.scalar_vote_digest_mb_per_second << ",\n"
       << "    \"vote_digest_speedup_over_scalar_8k\": "
       << hashing.vote_digest_speedup_over_scalar << ",\n"
       << "    \"vote_digest_speedup_floor\": " << kMinVoteDigestSpeedupOverScalar << ",\n"
       << "    \"speedup_floor_enforced\": "
       << ((kThroughputFloorsApply &&
            torcrypto::ActiveSha256Backend() == torcrypto::Sha256Backend::kShaNi)
               ? "true"
               : "false")
       << "\n"
       << "  },\n"
       << "  \"timeline\": {\n"
       << "    \"rounds\": " << timeline.rounds << ",\n"
       << "    \"clients\": 5000000,\n"
       << "    \"wall_seconds\": " << timeline.wall_seconds << ",\n"
       << "    \"rounds_per_second\": " << timeline.rounds_per_second << ",\n"
       << "    \"successful_rounds\": " << timeline.successful_rounds << ",\n"
       << "    \"rejoins\": " << timeline.rejoin_count << ",\n"
       << "    \"peak_retry_backlog\": " << timeline.peak_retry_backlog << ",\n"
       << "    \"memo_hits\": " << timeline.memo_hits << ",\n"
       << "    \"memo_misses\": " << timeline.memo_misses << ",\n"
       << "    \"memo_hit_rate\": " << timeline.memo_hit_rate << ",\n"
       << "    \"memo_hit_rate_floor\": " << kMinTimelineMemoHitRate << ",\n"
       << "    \"memo_floor_enforced\": "
       << ((!quick && kThroughputFloorsApply) ? "true" : "false") << ",\n"
       << "    \"rounds_per_second_floor\": " << kMinTimelineRoundsPerSecond << ",\n"
       << "    \"floor_enforced\": " << (kThroughputFloorsApply ? "true" : "false") << "\n"
       << "  },\n"
       << "  \"event_schedule_fire_ns\": " << micro.schedule_fire_ns << ",\n"
       << "  \"event_schedule_cancel_ns\": " << micro.schedule_cancel_ns << ",\n"
       << "  \"event_allocations_per_event\": " << micro.allocations_per_event << ",\n"
       << "  \"client_plane_fetches_per_second\": " << clients.fetches_per_second << ",\n"
       << "  \"client_plane_run_micros_16_caches\": " << clients.run_micros_16_caches << ",\n"
       << "  \"client_plane_run_micros_128_caches\": " << clients.run_micros_128_caches << ",\n"
       << "  \"client_plane_events_per_fetch\": " << clients.events_per_fetch << ",\n"
       << "  \"client_plane_allocations_per_fetch\": " << clients.allocations_per_fetch << "\n"
       << "}\n";
  json.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr, "REGRESSION: parallel sweep diverged from serial\n");
    return 1;
  }
  if (micro.allocations_per_event > 0.0) {
    std::fprintf(stderr, "REGRESSION: event hot path allocates (%f per event)\n",
                 micro.allocations_per_event);
    return 1;
  }
  if (aggregate.allocations_per_relay > 0.05) {
    std::fprintf(stderr, "REGRESSION: consensus aggregation allocates (%f per relay)\n",
                 aggregate.allocations_per_relay);
    return 1;
  }
  for (const CodecPoint& point : codec.points) {
    if (point.relays != 8000 || !kThroughputFloorsApply) {
      continue;  // thresholds anchor on the 8k point benches track
    }
    if (point.serialize_mb_per_second < kMinSerializeMbps) {
      std::fprintf(stderr, "REGRESSION: SerializeVote below %.0f MB/s (%.0f)\n", kMinSerializeMbps,
                   point.serialize_mb_per_second);
      return 1;
    }
    if (point.parse_mb_per_second < kMinParseMbps) {
      std::fprintf(stderr, "REGRESSION: ParseVote below %.0f MB/s (%.0f)\n", kMinParseMbps,
                   point.parse_mb_per_second);
      return 1;
    }
  }
#ifdef TORCRYPTO_FORCE_SCALAR
  // The forced-scalar CI leg exists to prove the scalar core carries the whole
  // suite; dispatch silently picking a hardware core would defeat it.
  if (torcrypto::ActiveSha256Backend() != torcrypto::Sha256Backend::kScalar ||
      torcrypto::ActiveSha256BatchBackend() != torcrypto::Sha256Backend::kScalar) {
    std::fprintf(stderr, "REGRESSION: TORCRYPTO_FORCE_SCALAR build dispatched to %s/%s\n",
                 hashing.stream_backend, hashing.batch_backend);
    return 1;
  }
#endif
  if (kThroughputFloorsApply &&
      torcrypto::ActiveSha256Backend() == torcrypto::Sha256Backend::kShaNi &&
      hashing.vote_digest_speedup_over_scalar < kMinVoteDigestSpeedupOverScalar) {
    std::fprintf(stderr, "REGRESSION: vote digest only %.2fx over scalar at 8k (floor %.1fx)\n",
                 hashing.vote_digest_speedup_over_scalar, kMinVoteDigestSpeedupOverScalar);
    return 1;
  }
  if (codec.serialize_allocations_per_relay > kMaxCodecAllocationsPerRelay ||
      codec.parse_allocations_per_relay > kMaxCodecAllocationsPerRelay) {
    std::fprintf(stderr, "REGRESSION: codec allocates per relay (%f serialize, %f parse)\n",
                 codec.serialize_allocations_per_relay, codec.parse_allocations_per_relay);
    return 1;
  }
  if (!diff.byte_identical) {
    std::fprintf(stderr, "REGRESSION: consensus diff apply is not byte-identical to the target\n");
    return 1;
  }
  if (diff.apply_allocations_per_relay > kMaxCodecAllocationsPerRelay) {
    std::fprintf(stderr, "REGRESSION: diff apply allocates per relay (%f)\n",
                 diff.apply_allocations_per_relay);
    return 1;
  }
  for (const DiffPoint& point : diff.points) {
    if (point.relays != 8000) {
      continue;  // like the codec floors, anchor on the 8k point
    }
    if (point.compression_ratio > kMaxDiffCompressionRatio) {
      std::fprintf(stderr, "REGRESSION: diff is %.1f%% of the full document at 1%% churn\n",
                   point.compression_ratio * 100.0);
      return 1;
    }
    if (kThroughputFloorsApply && point.apply_mb_per_second < kMinApplyMbps) {
      std::fprintf(stderr, "REGRESSION: diff patch merge below %.0f MB/s (%.0f)\n", kMinApplyMbps,
                   point.apply_mb_per_second);
      return 1;
    }
  }
  // The timeline row self-checks: the horizon must actually publish, carry
  // the client plane, and rejoin the crashed authority — and in optimized,
  // unsanitized builds it must clear the end-to-end throughput floor.
  if (timeline.successful_rounds == 0 || !timeline.plane_enabled ||
      timeline.rejoin_count == 0) {
    std::fprintf(stderr,
                 "REGRESSION: timeline row degenerate (%u published, plane=%d, %zu rejoins)\n",
                 timeline.successful_rounds, timeline.plane_enabled, timeline.rejoin_count);
    return 1;
  }
  if (kThroughputFloorsApply && timeline.rounds_per_second < kMinTimelineRoundsPerSecond) {
    std::fprintf(stderr, "REGRESSION: timeline below %.1f rounds/s (%.2f)\n",
                 kMinTimelineRoundsPerSecond, timeline.rounds_per_second);
    return 1;
  }
  if (!quick && kThroughputFloorsApply && timeline.memo_hit_rate < kMinTimelineMemoHitRate) {
    std::fprintf(stderr,
                 "REGRESSION: timeline memo hit rate %.2f below %.2f "
                 "(%zu hits / %zu misses) — quiet rounds are not deduplicating\n",
                 timeline.memo_hit_rate, kMinTimelineMemoHitRate, timeline.memo_hits,
                 timeline.memo_misses);
    return 1;
  }
  return 0;
}
