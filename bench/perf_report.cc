// Performance report: times a representative fig7-style sweep grid serially
// vs. on N threads, micro-times the simulator's per-event hot path, counts
// heap allocations per event (the whole binary routes allocations through a
// counting operator new), verifies that parallel results are bit-identical to
// serial, and writes everything to BENCH_sweep.json — the measurement that
// seeds the repo's performance trajectory.
//
// Usage: perf_report [--quick] [--threads N] [--out PATH]
//   --quick      small grid for CI smoke runs
//   --threads N  parallel worker count (default: hardware concurrency)
//   --out PATH   JSON output path (default: BENCH_sweep.json)
//
// Exit code is non-zero if parallel results diverge from serial.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/attack/ddos.h"
#include "src/attack/schedule.h"
#include "src/common/counting_allocator.h"
#include "src/common/thread_pool.h"
#include "src/scenario/runner.h"
#include "src/sim/event_probe.h"
#include "src/sim/simulator.h"

namespace {

using torbase::counting_allocator::AllocationCount;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// The fig7 shape: the current protocol with 5 of 9 authorities clamped to a
// fixed per-victim bandwidth for the whole run, across relay counts — each
// (relays, clamp) pair one independent deterministic cell.
std::vector<torscenario::ScenarioSpec> Fig7StyleGrid(bool quick) {
  const std::vector<size_t> relay_counts =
      quick ? std::vector<size_t>{400, 800} : std::vector<size_t>{800, 1600, 2400, 3200};
  const std::vector<double> victim_mbps =
      quick ? std::vector<double>{0.5, 8.0, 25.0}
            : std::vector<double>{0.5, 2.0, 4.0, 8.0, 16.0, 25.0};

  std::vector<torscenario::ScenarioSpec> specs;
  for (size_t relays : relay_counts) {
    for (double mbps : victim_mbps) {
      torattack::AttackWindow window;
      window.targets = torattack::FirstTargets(5);
      window.start = 0;
      window.end = torbase::Minutes(15);
      window.available_bps = mbps * 1e6;

      torscenario::ScenarioSpec spec;
      spec.name = "perf_report";
      spec.protocol = "current";
      spec.relay_count = relays;
      spec.horizon = torbase::Minutes(15);
      spec.attack = std::make_shared<torattack::WindowedAttack>(
          std::vector<torattack::AttackWindow>{window});
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

struct EventMicro {
  double schedule_fire_ns = 0.0;
  double schedule_cancel_ns = 0.0;
  double allocations_per_event = 0.0;
};

// Schedule/fire and schedule/cancel throughput with a capture that fills most
// of SimCallback's inline buffer (src/sim/event_probe.h), after warming the
// heap and slot arena.
EventMicro MeasureEventPath() {
  torsim::Simulator sim;
  uint64_t fired = 0;
  constexpr size_t kBatch = 64;
  constexpr size_t kRounds = 4000;
  torsim::WarmUpProbe(sim, kBatch, &fired);

  EventMicro micro;
  {
    const uint64_t allocs_before = AllocationCount();
    const auto start = Clock::now();
    for (size_t round = 0; round < kRounds; ++round) {
      torsim::ScheduleProbeBatch(sim, kBatch, &fired);
      sim.Run();
    }
    const double elapsed = SecondsSince(start);
    const double events = static_cast<double>(kBatch * kRounds);
    micro.schedule_fire_ns = elapsed / events * 1e9;
    micro.allocations_per_event =
        static_cast<double>(AllocationCount() - allocs_before) / events;
  }
  {
    const auto start = Clock::now();
    for (size_t round = 0; round < kRounds; ++round) {
      torsim::ScheduleCancelProbeBatch(sim, kBatch, &fired);
      sim.Run();
    }
    micro.schedule_cancel_ns = SecondsSince(start) / static_cast<double>(kBatch * kRounds) * 1e9;
  }
  return micro;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  unsigned threads = torbase::ThreadPool::DefaultThreads();
  std::string out_path = "BENCH_sweep.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--threads N] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  if (threads == 0) {
    threads = 1;
  }

  const auto specs = Fig7StyleGrid(quick);
  std::printf("=== perf_report: %zu-cell fig7-style sweep, serial vs %u thread(s) ===\n\n",
              specs.size(), threads);

  std::printf("per-event micro (64-cell batches, 48-byte captures)...\n");
  const EventMicro micro = MeasureEventPath();
  std::printf("  schedule->fire  : %7.1f ns/event\n", micro.schedule_fire_ns);
  std::printf("  schedule->cancel: %7.1f ns/event\n", micro.schedule_cancel_ns);
  std::printf("  allocations     : %7.3f per event\n\n", micro.allocations_per_event);

  std::printf("serial sweep...\n");
  torscenario::ScenarioRunner serial_runner;
  const auto serial_start = Clock::now();
  const auto serial_results = serial_runner.Sweep(specs);
  const double serial_seconds = SecondsSince(serial_start);
  std::printf("  %.2f s (%zu workload generations)\n", serial_seconds,
              serial_runner.workload_cache_misses());

  std::printf("parallel sweep (%u threads)...\n", threads);
  torscenario::ScenarioRunner parallel_runner;
  const auto parallel_start = Clock::now();
  const auto parallel_results = parallel_runner.Sweep(specs, torscenario::SweepOptions{threads});
  const double parallel_seconds = SecondsSince(parallel_start);
  std::printf("  %.2f s\n", parallel_seconds);

  bool identical = serial_results.size() == parallel_results.size();
  for (size_t i = 0; identical && i < serial_results.size(); ++i) {
    identical = torscenario::BitIdentical(serial_results[i], parallel_results[i]);
  }
  const double speedup = parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  std::printf("  speedup %.2fx, results %s\n\n", speedup,
              identical ? "bit-identical" : "DIVERGED");

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"bench\": \"perf_report\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"grid_cells\": " << specs.size() << ",\n"
       << "  \"hardware_concurrency\": " << torbase::ThreadPool::DefaultThreads() << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"serial_seconds\": " << serial_seconds << ",\n"
       << "  \"parallel_seconds\": " << parallel_seconds << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"parallel_identical_to_serial\": " << (identical ? "true" : "false") << ",\n"
       << "  \"event_schedule_fire_ns\": " << micro.schedule_fire_ns << ",\n"
       << "  \"event_schedule_cancel_ns\": " << micro.schedule_cancel_ns << ",\n"
       << "  \"event_allocations_per_event\": " << micro.allocations_per_event << "\n"
       << "}\n";
  json.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr, "REGRESSION: parallel sweep diverged from serial\n");
    return 1;
  }
  if (micro.allocations_per_event > 0.0) {
    std::fprintf(stderr, "REGRESSION: event hot path allocates (%f per event)\n",
                 micro.allocations_per_event);
    return 1;
  }
  return 0;
}
