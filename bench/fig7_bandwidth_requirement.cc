// Figure 7: minimum per-victim bandwidth at which the current directory
// protocol still succeeds while 5 of 9 authorities are throttled, as a
// function of the number of relays. The paper finds the requirement grows
// linearly (≈10 Mbit/s at 8,000 relays) and that the 0.5 Mbit/s left under a
// DDoS flood is far below it at every relay count.
//
// The per-relay-count binary searches are independent, so they run
// concurrently on a thread pool, all sharing one (mutex-guarded) scenario
// runner; each search is internally sequential, so results are identical to a
// serial sweep.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/attack/ddos.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/metrics/experiment.h"
#include "src/scenario/runner.h"

int main() {
  std::printf("=== Figure 7: bandwidth required by an attacked authority ===\n");
  std::printf("(current protocol, 5 of 9 authorities bandwidth-limited for the whole run)\n\n");

  const std::vector<size_t> relay_counts = {1000, 2500, 5000, 7500, 10000};

  torscenario::ScenarioRunner runner;  // shared workload cache across searches
  torbase::ThreadPool pool;
  std::printf("running %zu binary searches on %u thread(s)...\n\n", relay_counts.size(),
              pool.thread_count());

  std::vector<double> required_bps(relay_counts.size(), 0.0);
  pool.ParallelFor(relay_counts.size(), [&](size_t i) {
    tormetrics::ExperimentConfig config;
    config.protocol = "current";
    config.relay_count = relay_counts[i];
    config.run_limit = torbase::Minutes(15);
    required_bps[i] = tormetrics::FindBandwidthRequirement(
        runner, config, /*victim_count=*/5, /*lo_bps=*/0.2e6, /*hi_bps=*/25e6, /*probes=*/7);
  });

  torbase::Table table({"Relays", "Required bandwidth (Mbit/s)", "Under attack (Mbit/s)",
                        "Attack succeeds"});
  std::vector<double> xs;
  std::vector<double> ys;
  for (size_t i = 0; i < relay_counts.size(); ++i) {
    xs.push_back(static_cast<double>(relay_counts[i]));
    ys.push_back(required_bps[i] / 1e6);
    const bool attack_works = torattack::kUnderAttackBps < required_bps[i];
    table.AddRow({torbase::Table::Int(static_cast<long long>(relay_counts[i])),
                  torbase::Table::Num(required_bps[i] / 1e6, 2),
                  torbase::Table::Num(torattack::kUnderAttackBps / 1e6, 1),
                  attack_works ? "yes" : "NO"});
  }
  table.Print(std::cout);

  const auto fit = torbase::FitLine(xs, ys);
  std::printf("\nLinear fit: requirement ≈ %.3f Mbit/s per 1000 relays (R² = %.3f)\n",
              fit.slope * 1000.0, fit.r2);
  std::printf("Paper: requirement grows linearly, ≈10 Mbit/s at 8,000 relays;\n");
  std::printf("0.5 Mbit/s residual bandwidth under attack is below the requirement at every "
              "relay count.\n");
  return 0;
}
