// Figure 7: minimum per-victim bandwidth at which the current directory
// protocol still succeeds while 5 of 9 authorities are throttled, as a
// function of the number of relays. The paper finds the requirement grows
// linearly (≈10 Mbit/s at 8,000 relays) and that the 0.5 Mbit/s left under a
// DDoS flood is far below it at every relay count.
//
// The per-relay-count binary searches are independent, so they run
// concurrently on a thread pool, all sharing one (mutex-guarded) scenario
// runner; each search is internally sequential, so results are identical to a
// serial sweep.
// After the requirement table, the with-diffs serving series re-prices the
// *defender's* bytes at each relay count: the full consensus a cache ships to
// every client hourly versus the consensus diff (src/tordir/consensus_diff.h)
// at typical 1%-changed + 0.5%-added + 0.5%-removed row churn, and the cache
// bandwidth needed to serve 5M clients each way.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/attack/ddos.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/metrics/experiment.h"
#include "src/scenario/runner.h"
#include "src/tordir/aggregate.h"
#include "src/tordir/consensus_diff.h"
#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"

int main() {
  std::printf("=== Figure 7: bandwidth required by an attacked authority ===\n");
  std::printf("(current protocol, 5 of 9 authorities bandwidth-limited for the whole run)\n\n");

  const std::vector<size_t> relay_counts = {1000, 2500, 5000, 7500, 10000};

  torscenario::ScenarioRunner runner;  // shared workload cache across searches
  torbase::ThreadPool pool;
  std::printf("running %zu binary searches on %u thread(s)...\n\n", relay_counts.size(),
              pool.thread_count());

  std::vector<double> required_bps(relay_counts.size(), 0.0);
  pool.ParallelFor(relay_counts.size(), [&](size_t i) {
    tormetrics::ExperimentConfig config;
    config.protocol = "current";
    config.relay_count = relay_counts[i];
    config.run_limit = torbase::Minutes(15);
    required_bps[i] = tormetrics::FindBandwidthRequirement(
        runner, config, /*victim_count=*/5, /*lo_bps=*/0.2e6, /*hi_bps=*/25e6, /*probes=*/7);
  });

  torbase::Table table({"Relays", "Required bandwidth (Mbit/s)", "Under attack (Mbit/s)",
                        "Attack succeeds"});
  std::vector<double> xs;
  std::vector<double> ys;
  for (size_t i = 0; i < relay_counts.size(); ++i) {
    xs.push_back(static_cast<double>(relay_counts[i]));
    ys.push_back(required_bps[i] / 1e6);
    const bool attack_works = torattack::kUnderAttackBps < required_bps[i];
    table.AddRow({torbase::Table::Int(static_cast<long long>(relay_counts[i])),
                  torbase::Table::Num(required_bps[i] / 1e6, 2),
                  torbase::Table::Num(torattack::kUnderAttackBps / 1e6, 1),
                  attack_works ? "yes" : "NO"});
  }
  table.Print(std::cout);

  // The searches run on the shared runner's result memo: every probe spec is
  // digested and memoized, so each search's final invariant confirmation (and
  // any probe the grid revisits) is served from the memo instead of paying a
  // re-simulation. Surface the redundancy next to the table.
  const size_t memo_runs = runner.result_memo_hits() + runner.result_memo_misses();
  std::printf("\nresult memo: %zu of %zu probe runs served from the memo (%zu simulated)\n",
              runner.result_memo_hits(), memo_runs, runner.result_memo_misses());

  // With-diffs serving series: the same relay axis priced in served bytes.
  // Steady-state clients (95%) fetch hourly; 80% of them are diff-capable
  // (the client_availability cohort); bootstraps always need the full
  // document. Serving rate = 5M clients x mean fetch size / hour.
  {
    constexpr double kClients = 5'000'000.0;
    constexpr double kBootstrapFraction = 0.05;
    constexpr double kDiffCapableFraction = 0.8;
    std::printf("\n=== With-diffs serving series (1%% churn/round, 5M clients hourly) ===\n\n");
    torbase::Table serving({"Relays", "Consensus KB", "Diff KB", "Ratio", "Serve full (Mbit/s)",
                            "Serve w/ diffs (Mbit/s)"});
    for (const size_t relays : relay_counts) {
      tordir::PopulationConfig config;
      config.relay_count = relays;
      config.seed = 3;
      const auto population = tordir::GeneratePopulation(config);
      tordir::ConsensusDocument base =
          tordir::ComputeConsensus(tordir::MakeAllVotes(9, population, config));
      for (uint32_t a = 0; a < 9; ++a) {
        torcrypto::Signature sig;
        sig.signer = a;
        sig.bytes.fill(static_cast<uint8_t>(0xC0 + a));
        base.signatures.push_back(sig);
      }
      tordir::ConsensusChurnConfig churn;
      churn.change_fraction = 0.01;
      churn.remove_fraction = 0.005;
      churn.add_fraction = 0.005;
      churn.seed = 3;
      const tordir::ConsensusDocument next = tordir::ChurnConsensus(base, churn);
      const double full_bytes = static_cast<double>(tordir::SerializeConsensus(next).size());
      const double diff_bytes = static_cast<double>(tordir::ComputeConsensusDiff(base, next).size());
      const double steady = kClients * (1.0 - kBootstrapFraction);
      const double boot = kClients * kBootstrapFraction;
      const double full_rate_bps = kClients * full_bytes * 8.0 / 3600.0;
      const double diff_rate_bps =
          (steady * (kDiffCapableFraction * diff_bytes + (1.0 - kDiffCapableFraction) * full_bytes) +
           boot * full_bytes) *
          8.0 / 3600.0;
      serving.AddRow({torbase::Table::Int(static_cast<long long>(relays)),
                      torbase::Table::Num(full_bytes / 1024.0, 1),
                      torbase::Table::Num(diff_bytes / 1024.0, 1),
                      torbase::Table::Num(diff_bytes / full_bytes, 4),
                      torbase::Table::Num(full_rate_bps / 1e6, 0),
                      torbase::Table::Num(diff_rate_bps / 1e6, 0)});
    }
    serving.Print(std::cout);
    std::printf("\nThe diff-capable cohort cuts the cache tier's steady serving load ~4x at\n"
                "every relay count; the defender's bytes stop scaling with the full document.\n");
  }

  const auto fit = torbase::FitLine(xs, ys);
  std::printf("\nLinear fit: requirement ≈ %.3f Mbit/s per 1000 relays (R² = %.3f)\n",
              fit.slope * 1000.0, fit.r2);
  std::printf("Paper: requirement grows linearly, ≈10 Mbit/s at 8,000 relays;\n");
  std::printf("0.5 Mbit/s residual bandwidth under attack is below the requirement at every "
              "relay count.\n");
  return 0;
}
