// Deterministic differential scenario fuzzer: sweeps
// (protocol x attack x churn x byzantine x seed) as one grid — thousands of
// cells — and checks every cell against the robustness contract:
//
//   * every injected byzantine authority is implicated by at least one
//     health alert (100% fault detection, evidence- or absence-based);
//   * ICPS assembles a valid consensus whenever fewer than 1/3 of the
//     authorities are faulty (byzantine or permanently crashed);
//   * clean cells (no attack, no churn, no byzantine) succeed alert-free;
//   * single-behavior clean cells raise the behavior's signature alert kind;
//   * the parallel sweep (8 threads) is bit-identical to the serial one;
//   * the result memo is invisible: replaying the grid on the warm runner is
//     all memo hits and bit-identical, and every timeline case recomputed on
//     a memo-disabled runner matches the memoized result exactly.
//
// A second leg runs multi-round fault calendars through RunTimeline: byzantine
// behaviors flipping on and off mid-horizon (every calendar-injected
// instantiation must be detected), crashes spanning published rounds (the
// rejoin must actually transfer bytes), and the whole stitched horizon must be
// bit-identical between a serial and an 8-thread run.
//
// Everything is seeded: the same invocation always runs the same cells with
// the same wire mutations, so a failure reproduces by cell name. `--quick`
// runs a fixed two-seed block (a few hundred cells) as the CI gate; the full
// grid (>= 1000 cells) is the local / manual target. Exit status is non-zero
// on any violation.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/attack/ddos.h"
#include "src/attack/schedule.h"
#include "src/common/table.h"
#include "src/protocols/byzantine.h"
#include "src/scenario/runner.h"
#include "src/scenario/timeline.h"

namespace {

using torproto::ByzantineBehavior;
using torscenario::ScenarioResult;
using torscenario::ScenarioSpec;

constexpr uint32_t kAuthorities = 9;
// ICPS partial-synchrony tolerance at n = 9: strictly fewer than 3 faulty.
constexpr uint32_t kIcpsTolerance = (kAuthorities - 1) / 3;

struct AttackAxis {
  const char* name;
  std::shared_ptr<torattack::AttackSchedule> schedule;  // shared; runner clones
};

std::vector<AttackAxis> AttackAxes() {
  std::vector<AttackAxis> axes;
  axes.push_back({"none", nullptr});

  // The paper's headline: five minutes of flooding on a majority of the
  // authorities, covering the lock-step vote phase.
  torattack::AttackWindow window;
  window.targets = torattack::FirstTargets(5);
  window.start = 0;
  window.end = torbase::Minutes(5);
  window.available_bps = torattack::kUnderAttackBps;
  axes.push_back({"window5m", std::make_shared<torattack::WindowedAttack>(
                                  std::vector<torattack::AttackWindow>{window})});

  // Rotating victim set: every authority gets flooded at some point.
  torattack::RollingAttackConfig rolling;
  rolling.victim_count = 5;
  rolling.period = torbase::Minutes(1);
  rolling.start = 0;
  rolling.end = torbase::Minutes(4);
  axes.push_back({"rolling4m", std::make_shared<torattack::RollingAttack>(rolling)});
  return axes;
}

struct ChurnAxis {
  const char* name;
  std::vector<torscenario::ChurnEvent> events;
  uint32_t permanent_crashes;  // crashes without a recover event
};

std::vector<ChurnAxis> ChurnAxes() {
  using torscenario::ChurnEvent;
  std::vector<ChurnAxis> axes;
  axes.push_back({"none", {}, 0});
  axes.push_back({"blip",
                  {{/*node=*/7, torbase::Seconds(30), ChurnEvent::Kind::kCrash},
                   {/*node=*/7, torbase::Minutes(5), ChurnEvent::Kind::kRecover}},
                  0});
  axes.push_back({"dead", {{/*node=*/8, 0, ChurnEvent::Kind::kCrash}}, 1});
  return axes;
}

struct ByzantineAxis {
  const char* name;
  torproto::ByzantineSpec spec;  // mutation_seed overwritten per cell
};

std::vector<ByzantineAxis> ByzantineAxes() {
  // Byzantine ids stay clear of the churn nodes (7, 8) so a crashed-and-
  // silent authority never masks an injected fault. `wire@0` targets the
  // synchronous protocol's designated Dolev-Strong sender: its mutated list
  // travels inside the agreed packed vote, exercising the unpack-time
  // admission path on every honest authority.
  std::vector<ByzantineAxis> axes;
  axes.push_back({"none", {}});
  {
    ByzantineAxis axis{"equiv@4", {}};
    axis.spec.behaviors[4] = ByzantineBehavior::kEquivocate;
    axes.push_back(std::move(axis));
  }
  {
    ByzantineAxis axis{"replay@4", {}};
    axis.spec.behaviors[4] = ByzantineBehavior::kReplay;
    axes.push_back(std::move(axis));
  }
  {
    ByzantineAxis axis{"wire@0", {}};
    axis.spec.behaviors[0] = ByzantineBehavior::kMalformedWire;
    axes.push_back(std::move(axis));
  }
  {
    ByzantineAxis axis{"inflate@4", {}};
    axis.spec.behaviors[4] = ByzantineBehavior::kInflateBandwidth;
    axes.push_back(std::move(axis));
  }
  {
    ByzantineAxis axis{"equiv+replay", {}};
    axis.spec.behaviors[1] = ByzantineBehavior::kEquivocate;
    axis.spec.behaviors[4] = ByzantineBehavior::kReplay;
    axes.push_back(std::move(axis));
  }
  {
    ByzantineAxis axis{"3-faulty", {}};
    axis.spec.behaviors[1] = ByzantineBehavior::kEquivocate;
    axis.spec.behaviors[4] = ByzantineBehavior::kReplay;
    axis.spec.behaviors[5] = ByzantineBehavior::kMalformedWire;
    axes.push_back(std::move(axis));
  }
  return axes;
}

struct Cell {
  ScenarioSpec spec;
  bool clean = false;       // no attack, no churn, no byzantine
  uint32_t faulty = 0;      // byzantine + permanently crashed authorities
};

std::vector<Cell> BuildGrid(const std::vector<uint64_t>& seeds) {
  const auto attacks = AttackAxes();
  const auto churns = ChurnAxes();
  const auto byzantines = ByzantineAxes();

  std::vector<Cell> cells;
  cells.reserve(seeds.size() * 3 * attacks.size() * churns.size() * byzantines.size());
  for (const uint64_t seed : seeds) {
    for (const char* protocol : {"current", "synchronous", "icps"}) {
      for (size_t a = 0; a < attacks.size(); ++a) {
        for (size_t c = 0; c < churns.size(); ++c) {
          for (size_t b = 0; b < byzantines.size(); ++b) {
            Cell cell;
            ScenarioSpec& spec = cell.spec;
            spec.protocol = protocol;
            spec.authority_count = kAuthorities;
            spec.relay_count = 120;
            spec.seed = seed;
            spec.horizon = torbase::Hours(1);
            spec.attack = attacks[a].schedule;
            spec.churn = churns[c].events;
            spec.byzantine = byzantines[b].spec;
            // Distinct wire mutations per cell, reproducible from the name.
            spec.byzantine.mutation_seed = seed * 7919 + a * 131 + c * 17 + b;
            spec.name = std::string(protocol) + "/" + attacks[a].name + "/" + churns[c].name +
                        "/" + byzantines[b].name + "/s" + std::to_string(seed);
            cell.clean = a == 0 && c == 0 && b == 0;
            cell.faulty = static_cast<uint32_t>(spec.byzantine.behaviors.size()) +
                          churns[c].permanent_crashes;
            cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return cells;
}

bool AlertImplicates(const tordir::HealthAlert& alert, torbase::NodeId authority) {
  return std::find(alert.authorities.begin(), alert.authorities.end(), authority) !=
         alert.authorities.end();
}

// The signature alert kind each injected behavior must produce in a cell with
// no attack and no churn (under interference the monitor may only see the
// absence-based missing-votes evidence instead).
tordir::HealthAlertKind SignatureAlert(ByzantineBehavior behavior) {
  switch (behavior) {
    case ByzantineBehavior::kEquivocate:
      return tordir::HealthAlertKind::kVoteEquivocation;
    case ByzantineBehavior::kReplay:
      return tordir::HealthAlertKind::kReplayedVote;
    case ByzantineBehavior::kMalformedWire:
      return tordir::HealthAlertKind::kMalformedVote;
    case ByzantineBehavior::kInflateBandwidth:
      return tordir::HealthAlertKind::kBandwidthInflation;
  }
  return tordir::HealthAlertKind::kMissingVotes;
}

struct Violations {
  uint64_t undetected_faults = 0;
  uint64_t icps_liveness = 0;
  uint64_t unclean_clean_cells = 0;
  uint64_t missing_signature_alerts = 0;
  uint64_t divergent_cells = 0;
  uint64_t timeline_violations = 0;
  uint64_t memo_divergences = 0;

  uint64_t Total() const {
    return undetected_faults + icps_liveness + unclean_clean_cells + missing_signature_alerts +
           divergent_cells + timeline_violations + memo_divergences;
  }
};

void CheckCell(const Cell& cell, const ScenarioResult& result, Violations& violations) {
  const ScenarioSpec& spec = cell.spec;

  if (result.faults_detected != result.byzantine_count) {
    ++violations.undetected_faults;
    std::printf("FAIL %-40s detected %u of %u injected faults\n", spec.name.c_str(),
                result.faults_detected, result.byzantine_count);
  }

  if (spec.protocol == "icps" && cell.faulty <= kIcpsTolerance && !result.succeeded) {
    ++violations.icps_liveness;
    std::printf("FAIL %-40s ICPS not live with %u faulty (tolerance %u)\n", spec.name.c_str(),
                cell.faulty, kIcpsTolerance);
  }

  if (cell.clean && (!result.succeeded || !result.health_alerts.empty())) {
    ++violations.unclean_clean_cells;
    std::printf("FAIL %-40s clean cell: succeeded=%d alerts=%zu\n", spec.name.c_str(),
                result.succeeded, result.health_alerts.size());
  }

  // Quiet single-fault cells must show the behavior's exact alert kind,
  // implicating exactly the injected authority.
  if (spec.attack == nullptr && spec.churn.empty() && spec.byzantine.behaviors.size() == 1) {
    const auto& [byz_id, behavior] = *spec.byzantine.behaviors.begin();
    const tordir::HealthAlertKind expected = SignatureAlert(behavior);
    bool found = false;
    for (const auto& alert : result.health_alerts) {
      if (alert.kind == expected && AlertImplicates(alert, byz_id)) {
        found = true;
      }
    }
    if (!found) {
      ++violations.missing_signature_alerts;
      std::printf("FAIL %-40s missing %s alert for authority %u\n", spec.name.c_str(),
                  tordir::HealthAlertName(expected), byz_id);
    }
  }
}

// --- the timeline leg -------------------------------------------------------
// Multi-round fault calendars through RunTimeline, fuzzing the dimensions a
// single-round cell cannot reach: byzantine behaviors flipping on and off
// mid-horizon, crashes spanning round boundaries with diff-chain rejoins, and
// the serial-vs-parallel bit-identity of the whole stitched horizon.

struct TimelineCase {
  std::string name;
  torscenario::TimelineSpec timeline;
  uint32_t expected_injections = 0;  // byzantine instantiations the calendar implies
  bool expect_rejoin = false;
};

std::vector<TimelineCase> TimelineCases(const std::vector<uint64_t>& seeds) {
  torattack::AttackWindow window;
  window.targets = torattack::FirstTargets(5);
  window.start = 0;
  window.end = torbase::Minutes(5);
  window.available_bps = torattack::kUnderAttackBps;
  const auto flood = std::make_shared<torattack::WindowedAttack>(
      std::vector<torattack::AttackWindow>{window});

  std::vector<TimelineCase> cases;
  for (const uint64_t seed : seeds) {
    for (const char* protocol : {"current", "synchronous", "icps"}) {
      torscenario::TimelineSpec base;
      base.rounds = 6;
      base.round_period = torbase::Minutes(30);
      base.base.protocol = protocol;
      base.base.authority_count = kAuthorities;
      base.base.relay_count = 120;
      base.base.seed = seed;

      // (a) byzantine behaviors flipping mid-horizon: an equivocator for
      // rounds 2-3, a replayer for round 4 only — 3 instantiations total.
      {
        TimelineCase tc;
        tc.timeline = base;
        tc.name = std::string(protocol) + "/timeline-flip/s" + std::to_string(seed);
        tc.timeline.name = tc.name;
        tc.timeline.base.name = tc.name;
        torscenario::ByzantineCalendarEntry equiv;
        equiv.first_round = 2;
        equiv.last_round = 3;
        equiv.spec.behaviors[4] = ByzantineBehavior::kEquivocate;
        equiv.spec.mutation_seed = seed * 31 + 1;
        tc.timeline.byzantine.push_back(std::move(equiv));
        torscenario::ByzantineCalendarEntry replay;
        replay.first_round = 4;
        replay.last_round = 4;
        replay.spec.behaviors[1] = ByzantineBehavior::kReplay;
        replay.spec.mutation_seed = seed * 31 + 2;
        tc.timeline.byzantine.push_back(std::move(replay));
        tc.expected_injections = 3;
        cases.push_back(std::move(tc));
      }

      // (b) a full fault calendar: flood round 1, authority 7 down across
      // rounds 2-4 (published rounds in between force a real catch-up), a
      // churn blip in round 5.
      {
        TimelineCase tc;
        tc.timeline = base;
        tc.name = std::string(protocol) + "/timeline-calendar/s" + std::to_string(seed);
        tc.timeline.name = tc.name;
        tc.timeline.base.name = tc.name;
        tc.timeline.attacks.push_back(torscenario::AttackCalendarEntry{1, 1, flood});
        tc.timeline.crashes.push_back(torscenario::CrashCalendarEntry{
            7, 2, torbase::Minutes(1), 4, torbase::Minutes(2)});
        tc.timeline.churn.push_back(torscenario::ChurnCalendarEntry{
            5, {8, torbase::Seconds(30), torscenario::ChurnEvent::Kind::kCrash}});
        tc.timeline.churn.push_back(torscenario::ChurnCalendarEntry{
            5, {8, torbase::Minutes(5), torscenario::ChurnEvent::Kind::kRecover}});
        tc.expect_rejoin = true;
        cases.push_back(std::move(tc));
      }
    }
  }
  return cases;
}

void CheckTimeline(const TimelineCase& tc, const torscenario::TimelineResult& serial,
                   const torscenario::TimelineResult& parallel,
                   const torscenario::TimelineResult& unmemoized, Violations& violations) {
  if (!BitIdentical(serial, parallel)) {
    ++violations.timeline_violations;
    std::printf("FAIL %-40s parallel timeline diverged from serial\n", tc.name.c_str());
  }
  // The memo-off differential: recomputing every round from scratch must
  // reproduce the (potentially memoized) serial artifact bit-for-bit.
  if (!BitIdentical(serial, unmemoized)) {
    ++violations.memo_divergences;
    std::printf("FAIL %-40s memo-off timeline diverged from memoized\n", tc.name.c_str());
  }
  if (serial.byzantine_injected != tc.expected_injections) {
    ++violations.timeline_violations;
    std::printf("FAIL %-40s calendar injected %u behaviors, expected %u\n", tc.name.c_str(),
                serial.byzantine_injected, tc.expected_injections);
  }
  if (serial.byzantine_detected != serial.byzantine_injected) {
    ++violations.timeline_violations;
    std::printf("FAIL %-40s detected %u of %u calendar-injected faults\n", tc.name.c_str(),
                serial.byzantine_detected, serial.byzantine_injected);
  }
  if (tc.expect_rejoin &&
      (serial.rejoins.size() != 1 || serial.rejoins[0].node != 7 ||
       serial.rejoins[0].rounds_behind == 0 || serial.rejoins[0].bytes == 0)) {
    ++violations.timeline_violations;
    std::printf("FAIL %-40s expected one real rejoin of authority 7 (got %zu)\n", tc.name.c_str(),
                serial.rejoins.size());
  }
  // ICPS keeps publishing through every calendar here (at most one crashed
  // authority plus the sub-knockout flood: well below tolerance).
  if (tc.timeline.base.protocol == "icps" &&
      serial.successful_rounds != static_cast<uint32_t>(serial.rounds.size())) {
    ++violations.timeline_violations;
    std::printf("FAIL %-40s ICPS lost %zu of %zu rounds\n", tc.name.c_str(),
                serial.rounds.size() - serial.successful_rounds, serial.rounds.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool memoize = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--no-memo") == 0) {
      memoize = false;  // run the whole grid with the result memo disabled
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--no-memo]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<uint64_t> seeds =
      quick ? std::vector<uint64_t>{1, 2} : std::vector<uint64_t>{1, 2, 3, 4, 5, 6};
  const std::vector<Cell> cells = BuildGrid(seeds);
  std::printf("=== Deterministic differential scenario fuzz: %zu cells (%s) ===\n\n",
              cells.size(), quick ? "quick" : "full");

  std::vector<ScenarioSpec> specs;
  specs.reserve(cells.size());
  for (const Cell& cell : cells) {
    specs.push_back(cell.spec);
  }

  torscenario::ScenarioRunner serial_runner;
  serial_runner.set_memoize(memoize);
  const std::vector<ScenarioResult> serial = serial_runner.Sweep(specs);

  torscenario::ScenarioRunner parallel_runner;
  parallel_runner.set_memoize(memoize);
  const std::vector<ScenarioResult> parallel =
      parallel_runner.Sweep(specs, torscenario::SweepOptions{8});

  Violations violations;
  uint64_t byzantine_cells = 0;
  uint64_t injected_faults = 0;
  uint64_t alerts_total = 0;
  double worst_detection_latency = 0.0;
  for (size_t i = 0; i < cells.size(); ++i) {
    CheckCell(cells[i], serial[i], violations);
    if (!BitIdentical(serial[i], parallel[i])) {
      ++violations.divergent_cells;
      std::printf("FAIL %-40s parallel sweep diverged from serial\n",
                  cells[i].spec.name.c_str());
    }
    if (serial[i].byzantine_count > 0) {
      ++byzantine_cells;
      injected_faults += serial[i].byzantine_count;
      if (!std::isnan(serial[i].fault_detection_latency_seconds)) {
        worst_detection_latency =
            std::max(worst_detection_latency, serial[i].fault_detection_latency_seconds);
      }
    }
    alerts_total += serial[i].health_alerts.size();
  }

  // Memo replay leg: sweeping the identical grid again on the warm serial
  // runner must serve every cell from the result memo — all hits, no fresh
  // simulations — and the served results must be bit-identical.
  uint64_t memo_replay_hits = 0;
  if (memoize) {
    const size_t hits_before = serial_runner.result_memo_hits();
    const size_t misses_before = serial_runner.result_memo_misses();
    const std::vector<ScenarioResult> replayed = serial_runner.Sweep(specs);
    for (size_t i = 0; i < cells.size(); ++i) {
      if (!BitIdentical(serial[i], replayed[i])) {
        ++violations.memo_divergences;
        std::printf("FAIL %-40s memo replay diverged from first sweep\n",
                    cells[i].spec.name.c_str());
      }
    }
    memo_replay_hits = serial_runner.result_memo_hits() - hits_before;
    if (memo_replay_hits != specs.size() ||
        serial_runner.result_memo_misses() != misses_before) {
      ++violations.memo_divergences;
      std::printf("FAIL grid replay missed the memo: %llu of %zu cells served as hits\n",
                  static_cast<unsigned long long>(memo_replay_hits), specs.size());
    }
  }

  // The timeline leg: multi-round calendars, serial vs 8 threads vs a
  // memo-disabled recomputation.
  const std::vector<TimelineCase> timeline_cases = TimelineCases(seeds);
  torscenario::ScenarioRunner nomemo_runner;
  nomemo_runner.set_memoize(false);
  uint64_t timeline_injected = 0;
  uint64_t timeline_rejoins = 0;
  for (const TimelineCase& tc : timeline_cases) {
    const torscenario::TimelineResult timeline_serial = serial_runner.RunTimeline(tc.timeline);
    const torscenario::TimelineResult timeline_parallel =
        parallel_runner.RunTimeline(tc.timeline, torscenario::SweepOptions{8});
    const torscenario::TimelineResult timeline_nomemo = nomemo_runner.RunTimeline(tc.timeline);
    CheckTimeline(tc, timeline_serial, timeline_parallel, timeline_nomemo, violations);
    timeline_injected += timeline_serial.byzantine_injected;
    timeline_rejoins += timeline_serial.rejoins.size();
  }

  torbase::Table table({"Metric", "Value"});
  table.AddRow({"Cells", torbase::Table::Int(cells.size())});
  table.AddRow({"Byzantine cells", torbase::Table::Int(byzantine_cells)});
  table.AddRow({"Injected faults", torbase::Table::Int(injected_faults)});
  table.AddRow({"Health alerts raised", torbase::Table::Int(alerts_total)});
  table.AddRow({"Worst detection latency (s)", torbase::Table::Num(worst_detection_latency, 1)});
  table.AddRow({"Undetected faults", torbase::Table::Int(violations.undetected_faults)});
  table.AddRow({"ICPS liveness violations", torbase::Table::Int(violations.icps_liveness)});
  table.AddRow({"Dirty clean cells", torbase::Table::Int(violations.unclean_clean_cells)});
  table.AddRow(
      {"Missing signature alerts", torbase::Table::Int(violations.missing_signature_alerts)});
  table.AddRow({"Serial/parallel divergences", torbase::Table::Int(violations.divergent_cells)});
  table.AddRow({"Memo replay hits", torbase::Table::Int(memo_replay_hits)});
  table.AddRow({"Memo divergences", torbase::Table::Int(violations.memo_divergences)});
  table.AddRow({"Timeline cases", torbase::Table::Int(timeline_cases.size())});
  table.AddRow({"Timeline calendar injections", torbase::Table::Int(timeline_injected)});
  table.AddRow({"Timeline rejoins", torbase::Table::Int(timeline_rejoins)});
  table.AddRow({"Timeline violations", torbase::Table::Int(violations.timeline_violations)});
  table.Print(std::cout);

  if (violations.Total() > 0) {
    std::printf("\n%llu violations.\n", static_cast<unsigned long long>(violations.Total()));
    return 1;
  }
  std::printf("\nAll cells clean: every fault detected, ICPS live below 1/3 faulty, "
              "parallel == serial, memo invisible.\n");
  return 0;
}
