// Figure 6: the number of Tor relays over time (September 2022 - October 2024)
// with the series average. The paper reads this from Tor Metrics; we print the
// synthetic reconstruction whose mean matches the paper's reported 7141.79
// (DESIGN.md §1 documents the substitution).
//
// With --max-relays N the bench instead walks the relay axis itself (1k, 2k,
// ... doubling up to N, capped at 256k): for each count it builds the 9-vote
// workload (timed, so a workload-build regression is visible next to the
// protocol costs), reports the vote wire size that drives every bandwidth
// experiment, times the streaming codec both directions, times the flat-merge
// ComputeConsensus — the scaling run that interned-string aggregation plus
// the zero-allocation codec made affordable at 256k relays — and prices the
// consensus diff at typical churn (2% of rows touched per round): diff wire
// bytes plus ComputeConsensusDiff / ApplyConsensusDiff throughput.
// --smoke caps the axis at 4k with a single timing rep so CI stays fast.
//
// Usage: fig6_relay_series [--max-relays N] [--smoke]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/common/table.h"
#include "src/tordir/aggregate.h"
#include "src/tordir/consensus_diff.h"
#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kRelayAxisCap = 262144;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int RunRelayAxis(size_t max_relays, bool smoke) {
  constexpr uint32_t kAuthorities = 9;
  if (smoke) {
    max_relays = std::min<size_t>(max_relays, 4000);
  }
  max_relays = std::min(max_relays, kRelayAxisCap);

  std::printf("=== Figure 6 relay axis: directory cost up to %zu relays ===\n\n", max_relays);
  torbase::Table table({"Relays", "Build ms", "Vote KB", "Ser MB/s", "Parse MB/s",
                        "Consensus relays", "Aggregate ms", "Relays/s", "Diff KB",
                        "Dcompute MB/s", "Dapply MB/s"});
  bool ok = true;
  for (size_t relays = 1000; relays <= max_relays; relays *= 2) {
    tordir::PopulationConfig config;
    config.relay_count = relays;
    config.seed = 3;
    const auto build_start = Clock::now();
    const auto population = tordir::GeneratePopulation(config);
    const auto votes = tordir::MakeAllVotes(kAuthorities, population, config);
    const double build_seconds = SecondsSince(build_start);

    const int reps = smoke ? 1 : (relays >= 128000 ? 2 : (relays >= 32000 ? 3 : 10));

    std::string vote_text = tordir::SerializeVote(votes[0]);  // warm-up
    const size_t vote_bytes = vote_text.size();
    const auto serialize_start = Clock::now();
    for (int i = 0; i < reps; ++i) {
      vote_text = tordir::SerializeVote(votes[0]);
    }
    const double serialize_seconds = SecondsSince(serialize_start) / reps;

    auto parsed = tordir::ParseVote(vote_text);  // warm-up
    const auto parse_start = Clock::now();
    for (int i = 0; i < reps; ++i) {
      parsed = tordir::ParseVote(vote_text);
    }
    const double parse_seconds = SecondsSince(parse_start) / reps;
    ok = ok && parsed.ok() && *parsed == votes[0];

    auto consensus = tordir::ComputeConsensus(votes);  // warm-up
    const auto start = Clock::now();
    for (int i = 0; i < reps; ++i) {
      consensus = tordir::ComputeConsensus(votes);
    }
    const double seconds = SecondsSince(start) / reps;

    ok = ok && consensus.relays.size() > relays * 9 / 10 &&
         consensus.relays.size() <= relays;

    // The consensus diff at typical round-to-round churn: 1% of rows changed,
    // 0.5% removed, 0.5% added. Throughput is against the full target
    // document — the bytes a cache would otherwise serialize or re-fetch.
    tordir::ConsensusChurnConfig churn_config;
    churn_config.change_fraction = 0.01;
    churn_config.remove_fraction = 0.005;
    churn_config.add_fraction = 0.005;
    churn_config.seed = 3;
    const tordir::ConsensusDocument churned = tordir::ChurnConsensus(consensus, churn_config);
    const std::string base_text = tordir::SerializeConsensus(consensus);
    const std::string target_text = tordir::SerializeConsensus(churned);
    std::string diff = tordir::ComputeConsensusDiff(consensus, churned);  // warm-up
    const auto diff_compute_start = Clock::now();
    for (int i = 0; i < reps; ++i) {
      diff = tordir::ComputeConsensusDiff(consensus, churned);
    }
    const double diff_compute_seconds = SecondsSince(diff_compute_start) / reps;
    auto patched = tordir::ApplyConsensusDiff(base_text, diff);  // warm-up
    const auto diff_apply_start = Clock::now();
    for (int i = 0; i < reps; ++i) {
      patched = tordir::ApplyConsensusDiff(base_text, diff);
    }
    const double diff_apply_seconds = SecondsSince(diff_apply_start) / reps;
    ok = ok && patched.ok() && *patched == target_text;

    table.AddRow({torbase::Table::Num(static_cast<double>(relays), 0),
                  torbase::Table::Num(build_seconds * 1e3, 1),
                  torbase::Table::Num(static_cast<double>(vote_bytes) / 1024.0, 1),
                  torbase::Table::Num(static_cast<double>(vote_bytes) / serialize_seconds / 1e6, 0),
                  torbase::Table::Num(static_cast<double>(vote_bytes) / parse_seconds / 1e6, 0),
                  torbase::Table::Num(static_cast<double>(consensus.relays.size()), 0),
                  torbase::Table::Num(seconds * 1e3, 2),
                  torbase::Table::Num(static_cast<double>(relays) / seconds, 0),
                  torbase::Table::Num(static_cast<double>(diff.size()) / 1024.0, 1),
                  torbase::Table::Num(
                      static_cast<double>(target_text.size()) / diff_compute_seconds / 1e6, 0),
                  torbase::Table::Num(
                      static_cast<double>(target_text.size()) / diff_apply_seconds / 1e6, 0)});
  }
  table.Print(std::cout);
  if (!ok) {
    std::fprintf(stderr, "REGRESSION: relay-axis results off the expected band\n");
    return 1;
  }
  return 0;
}

int RunTimeSeries() {
  std::printf("=== Figure 6: number of Tor relays over time ===\n\n");
  const auto series = tordir::RelayCountSeries();
  torbase::Table table({"Month", "Relays"});
  double mean = 0.0;
  for (const auto& point : series) {
    table.AddRow({point.month, torbase::Table::Num(point.relay_count, 0)});
    mean += point.relay_count;
  }
  mean /= static_cast<double>(series.size());
  table.Print(std::cout);
  std::printf("\nSeries average: %.2f relays (paper reports %.2f)\n", mean,
              tordir::kPaperAverageRelayCount);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t max_relays = 0;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-relays") == 0 && i + 1 < argc) {
      max_relays = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--max-relays N] [--smoke]\n", argv[0]);
      return 2;
    }
  }
  if (max_relays > 0 || smoke) {
    return RunRelayAxis(max_relays > 0 ? max_relays : kRelayAxisCap, smoke);
  }
  return RunTimeSeries();
}
