// Figure 6: the number of Tor relays over time (September 2022 - October 2024)
// with the series average. The paper reads this from Tor Metrics; we print the
// synthetic reconstruction whose mean matches the paper's reported 7141.79
// (DESIGN.md §1 documents the substitution).
#include <cstdio>
#include <iostream>

#include "src/common/table.h"
#include "src/tordir/generator.h"

int main() {
  std::printf("=== Figure 6: number of Tor relays over time ===\n\n");
  const auto series = tordir::RelayCountSeries();
  torbase::Table table({"Month", "Relays"});
  double mean = 0.0;
  for (const auto& point : series) {
    table.AddRow({point.month, torbase::Table::Num(point.relay_count, 0)});
    mean += point.relay_count;
  }
  mean /= static_cast<double>(series.size());
  table.Print(std::cout);
  std::printf("\nSeries average: %.2f relays (paper reports %.2f)\n", mean,
              tordir::kPaperAverageRelayCount);
  return 0;
}
