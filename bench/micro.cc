// Micro-benchmarks (google-benchmark) for the substrate hot paths: the
// simulator's per-event schedule/cancel/fire path, SHA-256, HMAC signatures,
// dir-spec serialization/parsing and the Figure-2 aggregation algorithm.
// These are the operations that dominate the wall-clock cost of the
// experiment harness.
#include <benchmark/benchmark.h>

#include "src/attack/ddos.h"
#include "src/attack/schedule.h"
#include "src/common/thread_pool.h"
#include "src/scenario/runner.h"
#include "src/scenario/spec_digest.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sha256_batch.h"
#include "src/crypto/signature.h"
#include "src/sim/event_probe.h"
#include "src/sim/simulator.h"
#include "src/tordir/aggregate.h"
#include "src/tordir/consensus_diff.h"
#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"

namespace {

// Per-event benches use the shared probe scaffolding (src/sim/event_probe.h):
// 48-byte captures modelled on the network delivery stages. Regressions that
// push the callback to the heap (or reintroduce per-event hash-map traffic)
// show up here directly.
void BM_EventScheduleFire(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  torsim::Simulator sim;
  uint64_t fired = 0;
  torsim::WarmUpProbe(sim, batch, &fired);
  for (auto _ : state) {
    torsim::ScheduleProbeBatch(sim, batch, &fired);
    sim.Run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_EventScheduleFire)->Arg(16)->Arg(64)->Arg(1024);

void BM_EventScheduleCancel(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  torsim::Simulator sim;
  uint64_t fired = 0;
  torsim::ScheduleCancelProbeBatch(sim, batch, &fired);
  sim.Run();
  for (auto _ : state) {
    torsim::ScheduleCancelProbeBatch(sim, batch, &fired);
    sim.Run();  // drains the tombstones
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_EventScheduleCancel)->Arg(16)->Arg(64)->Arg(1024);

void BM_EventSelfRescheduleChain(benchmark::State& state) {
  // The SharedNic pattern: one live event that keeps rescheduling itself —
  // the minimal schedule->fire round trip at heap depth 1.
  constexpr uint64_t kHops = 1024;
  struct Chain {
    torsim::Simulator* sim;
    uint64_t remaining;
    void operator()() {
      if (remaining > 0) {
        --remaining;
        sim->ScheduleAfter(1, *this);
      }
    }
  };
  torsim::Simulator sim;
  for (auto _ : state) {
    sim.ScheduleAfter(1, Chain{&sim, kHops});
    sim.Run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kHops + 1));
}
BENCHMARK(BM_EventSelfRescheduleChain);


void BM_Sha256(benchmark::State& state) {
  const std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(torcrypto::Sha256Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_HmacSign(benchmark::State& state) {
  torcrypto::KeyDirectory directory(1, 9);
  const auto signer = directory.SignerFor(0);
  const std::vector<uint8_t> message(256, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer.Sign(message));
  }
}
BENCHMARK(BM_HmacSign);

void BM_SignatureVerify(benchmark::State& state) {
  torcrypto::KeyDirectory directory(1, 9);
  const std::vector<uint8_t> message(256, 0x42);
  const auto sig = directory.SignerFor(0).Sign(message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(directory.Verify(message, sig));
  }
}
BENCHMARK(BM_SignatureVerify);

tordir::VoteDocument MakeBenchVote(size_t relays) {
  tordir::PopulationConfig config;
  config.relay_count = relays;
  config.seed = 3;
  const auto population = tordir::GeneratePopulation(config);
  return tordir::MakeVote(0, 9, population, config);
}

// Wire-codec throughput (bytes/s both directions). Pre-refactor baselines on
// the CI container class of hardware at 8k relays: ~719 MB/s serialize,
// ~212 MB/s parse; the streaming codec target is >=5x both.
void BM_SerializeVote(benchmark::State& state) {
  const auto vote = MakeBenchVote(static_cast<size_t>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    const std::string text = tordir::SerializeVote(vote);
    bytes = text.size();
    benchmark::DoNotOptimize(text);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_SerializeVote)->Arg(1000)->Arg(8000)->Arg(64000);

void BM_ParseVote(benchmark::State& state) {
  const std::string text = tordir::SerializeVote(MakeBenchVote(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    auto parsed = tordir::ParseVote(text);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_ParseVote)->Arg(1000)->Arg(8000)->Arg(64000);

// VoteDigest streams the serialized form straight into SHA-256: no
// multi-megabyte copy is ever materialized, so beyond hashing the only cost
// is the same field formatting BM_SerializeVote measures.
void BM_VoteDigestStreaming(benchmark::State& state) {
  const auto vote = MakeBenchVote(static_cast<size_t>(state.range(0)));
  const size_t bytes = tordir::SerializeVote(vote).size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tordir::VoteDigest(vote));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_VoteDigestStreaming)->Arg(8000);

// Multi-lane batch hashing: lanes x message-size grid. With 1 lane this is
// the plain dispatched core; 4/8 lanes show what lock-step batching adds on
// the active backend (on SHA-NI hardware the lanes run back-to-back through
// the single-stream unit, on AVX2-only hardware they interleave 8-wide).
void BM_Sha256Batch(benchmark::State& state) {
  const size_t lanes = static_cast<size_t>(state.range(0));
  const size_t message_bytes = static_cast<size_t>(state.range(1));
  const std::vector<uint8_t> data(message_bytes, 0xab);
  for (auto _ : state) {
    torcrypto::Sha256Batch batch;
    for (size_t i = 0; i < lanes; ++i) {
      batch.Add(std::span<const uint8_t>(data));
    }
    benchmark::DoNotOptimize(batch.Finish());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lanes * message_bytes));
  state.SetLabel(torcrypto::Sha256BackendName(torcrypto::ActiveSha256BatchBackend()));
}
BENCHMARK(BM_Sha256Batch)
    ->Args({1, 4096})
    ->Args({4, 4096})
    ->Args({8, 4096})
    ->Args({1, 1 << 20})
    ->Args({4, 1 << 20})
    ->Args({8, 1 << 20});

// Tree digest of a full vote document with leaf hashing fanned out over a
// pool ("sha256-tree-v1", 64 KiB leaves). The serial streaming tree and the
// pinned-thread-count runs are bit-identical; only throughput differs.
void BM_TreeVoteDigest(benchmark::State& state) {
  const auto vote = MakeBenchVote(static_cast<size_t>(state.range(0)));
  const size_t bytes = tordir::SerializeVote(vote).size();
  torbase::ThreadPool pool(static_cast<unsigned>(state.range(1)));
  torbase::ThreadPool* pool_arg = state.range(1) == 0 ? nullptr : &pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tordir::TreeVoteDigest(vote, pool_arg));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_TreeVoteDigest)
    ->ArgNames({"relays", "threads"})
    ->Args({8000, 0})
    ->Args({8000, 4})
    ->Args({64000, 0})
    ->Args({64000, 4})
    ->Args({256000, 0})
    ->Args({256000, 4});

// The consensus diff codec (src/tordir/consensus_diff.h) over a relays x
// churn grid. Bytes/s is against the full *target* document — the bytes the
// diff saves a cache from serializing or a client from fetching. Churn is
// per-mille of rows changed per round, with half that rate each added and
// removed (so 10 = the live network's typical ~1%/hour, 100 = 10%, 0 = the
// identity diff). Apply runs the serving path: target verification on.
tordir::ConsensusDocument MakeBenchConsensus(size_t relays) {
  tordir::PopulationConfig config;
  config.relay_count = relays;
  config.seed = 3;
  const auto population = tordir::GeneratePopulation(config);
  tordir::ConsensusDocument consensus =
      tordir::ComputeConsensus(tordir::MakeAllVotes(9, population, config));
  for (uint32_t a = 0; a < 9; ++a) {
    torcrypto::Signature sig;
    sig.signer = a;
    sig.bytes.fill(static_cast<uint8_t>(0xB0 + a));
    consensus.signatures.push_back(sig);
  }
  return consensus;
}

tordir::ConsensusDocument ChurnBenchConsensus(const tordir::ConsensusDocument& base,
                                              int churn_per_mille) {
  tordir::ConsensusChurnConfig churn;
  churn.change_fraction = static_cast<double>(churn_per_mille) / 1000.0;
  churn.remove_fraction = churn.change_fraction / 2.0;
  churn.add_fraction = churn.change_fraction / 2.0;
  churn.seed = 3;
  return tordir::ChurnConsensus(base, churn);
}

void BM_ComputeConsensusDiff(benchmark::State& state) {
  const tordir::ConsensusDocument base = MakeBenchConsensus(static_cast<size_t>(state.range(0)));
  const tordir::ConsensusDocument next =
      ChurnBenchConsensus(base, static_cast<int>(state.range(1)));
  const size_t target_bytes = tordir::SerializeConsensus(next).size();
  size_t diff_bytes = 0;
  for (auto _ : state) {
    const std::string diff = tordir::ComputeConsensusDiff(base, next);
    diff_bytes = diff.size();
    benchmark::DoNotOptimize(diff);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * target_bytes));
  state.SetLabel("diff=" + std::to_string(diff_bytes) + "B");
}
BENCHMARK(BM_ComputeConsensusDiff)
    ->ArgNames({"relays", "churn_pm"})
    ->Args({8000, 0})
    ->Args({8000, 10})
    ->Args({8000, 100})
    ->Args({64000, 0})
    ->Args({64000, 10})
    ->Args({64000, 100})
    ->Args({256000, 0})
    ->Args({256000, 10})
    ->Args({256000, 100});

void BM_ApplyConsensusDiff(benchmark::State& state) {
  const tordir::ConsensusDocument base = MakeBenchConsensus(static_cast<size_t>(state.range(0)));
  const tordir::ConsensusDocument next =
      ChurnBenchConsensus(base, static_cast<int>(state.range(1)));
  const std::string base_text = tordir::SerializeConsensus(base);
  const std::string target_text = tordir::SerializeConsensus(next);
  const std::string diff = tordir::ComputeConsensusDiff(base, next);
  for (auto _ : state) {
    auto patched = tordir::ApplyConsensusDiff(base_text, diff);
    benchmark::DoNotOptimize(patched);
  }
  const auto patched = tordir::ApplyConsensusDiff(base_text, diff);
  if (!patched.ok() || *patched != target_text) {
    state.SkipWithError("patched output is not byte-identical to the target");
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * target_text.size()));
}
BENCHMARK(BM_ApplyConsensusDiff)
    ->ArgNames({"relays", "churn_pm"})
    ->Args({8000, 0})
    ->Args({8000, 10})
    ->Args({8000, 100})
    ->Args({64000, 0})
    ->Args({64000, 10})
    ->Args({64000, 100})
    ->Args({256000, 0})
    ->Args({256000, 10})
    ->Args({256000, 100});

// The flat-merge aggregation hot path; items/s is relays aggregated per
// second (the `aggregate` row of BENCH_sweep.json tracks the same number at
// 1k/8k/64k relays). Pre-refactor map-based baseline at 8k x 9: ~78 ms/op.
void BM_ComputeConsensus(benchmark::State& state) {
  tordir::PopulationConfig config;
  config.relay_count = static_cast<size_t>(state.range(0));
  config.seed = 3;
  const auto population = tordir::GeneratePopulation(config);
  const auto votes = tordir::MakeAllVotes(9, population, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tordir::ComputeConsensus(votes));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ComputeConsensus)->Arg(1000)->Arg(4000)->Arg(8000);

// Cost of handing a vote document to an actor: with interned relay strings
// this is a flat vector copy, the property the scenario runner's per-cell
// actor construction leans on at large n.
void BM_CopyVoteDocument(benchmark::State& state) {
  const auto vote = MakeBenchVote(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    tordir::VoteDocument copy = vote;
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CopyVoteDocument)->Arg(8000);

// --- scenario result memo ----------------------------------------------------

// A field-rich spec exercising every branch of the canonical description:
// windowed attack with per-target overrides, churn, byzantine behaviors, a
// full client plane, heterogeneous bandwidth.
torscenario::ScenarioSpec MakeRichSpec() {
  torscenario::ScenarioSpec spec;
  spec.name = "bench";
  spec.protocol = "current";
  spec.relay_count = 800;
  spec.seed = 1;
  spec.bandwidth_by_authority = {{2, 50e6}, {5, 25e6}};
  torattack::AttackWindow window;
  window.targets = torattack::FirstTargets(5);
  window.start = 0;
  window.end = torbase::Minutes(5);
  window.available_bps = 0.0;
  window.available_bps_by_target = {{2, 1e6}};
  spec.attack = std::make_shared<torattack::WindowedAttack>(
      std::vector<torattack::AttackWindow>{window});
  spec.churn = {torscenario::ChurnEvent{7, torbase::Minutes(3),
                                        torscenario::ChurnEvent::Kind::kCrash}};
  spec.byzantine.behaviors[4] = torproto::ByzantineBehavior::kEquivocate;
  spec.client_load.client_count = 5'000'000;
  spec.client_load.diff_capable_fraction = 0.8;
  return spec;
}

// The memo's fixed cost per probe: serialize the spec canonically and hash
// it. This is what a memoized (quiet) round pays instead of a simulation —
// it must stay orders of magnitude below BM_TimelineRound/faulted.
void BM_SpecDigest(benchmark::State& state) {
  const torscenario::ScenarioSpec spec = MakeRichSpec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(torscenario::SpecDigest(spec));
  }
}
BENCHMARK(BM_SpecDigest);

// One timeline round, both ways the engine prices it: `quiet` re-runs a spec
// the runner has already memoized (digest probe + shared_ptr copy), `faulted`
// disables the memo and pays the full simulation. The ratio is the round
// memoization win on the ~95% of a long horizon the fault calendar never
// touches.
void BM_TimelineRound(benchmark::State& state) {
  const bool memoized = state.range(0) != 0;
  torscenario::ScenarioSpec spec = MakeRichSpec();
  spec.client_load.client_count = 0;  // rounds defer the client plane to the stitch
  spec.horizon = torbase::Hours(1);
  spec.retain_consensus = true;
  torscenario::ScenarioRunner runner;
  runner.set_memoize(memoized);
  benchmark::DoNotOptimize(runner.Run(spec));  // warm: workload cache + memo
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.Run(spec));
  }
}
BENCHMARK(BM_TimelineRound)->ArgName("memo")->Arg(1)->Arg(0);

}  // namespace
