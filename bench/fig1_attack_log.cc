// Figure 1: the log of an unattacked directory authority while five other
// authorities are under DDoS. Reproduces the "We're missing votes from 5
// authorities ... We don't have enough votes to generate a consensus: 4 of 5"
// sequence from the paper.
#include <cstdio>
#include <memory>

#include "src/attack/ddos.h"
#include "src/protocols/current/current_authority.h"
#include "src/sim/actor.h"
#include "src/tordir/generator.h"

int main() {
  std::printf("=== Figure 1: authority log under a 5-authority DDoS (current protocol) ===\n\n");

  torproto::ProtocolConfig config;
  tordir::PopulationConfig pop_config;
  pop_config.relay_count = 2000;
  pop_config.seed = 1;
  const auto population = tordir::GeneratePopulation(pop_config);
  auto votes = tordir::MakeAllVotes(config.authority_count, population, pop_config);

  torsim::NetworkConfig net_config;
  net_config.node_count = config.authority_count;
  net_config.default_bandwidth_bps = torattack::kAuthorityLinkBps;
  net_config.default_latency = torbase::Millis(50);
  torsim::Harness harness(net_config);

  torattack::AttackWindow attack;
  attack.targets = torattack::FirstTargets(5);
  attack.start = 0;
  attack.end = torbase::Minutes(5);
  attack.available_bps = torattack::kUnderAttackBps;
  torattack::ApplyAttack(harness.net(), attack);

  torcrypto::KeyDirectory directory(42, config.authority_count);
  std::vector<torproto::CurrentAuthority*> authorities;
  for (uint32_t a = 0; a < config.authority_count; ++a) {
    authorities.push_back(static_cast<torproto::CurrentAuthority*>(harness.AddActor(
        std::make_unique<torproto::CurrentAuthority>(config, &directory, std::move(votes[a])))));
  }
  harness.StartAll();
  harness.sim().Run();

  // Authority 8 is unattacked; its log shows the Figure 1 sequence.
  for (const auto& record : authorities[8]->log().records()) {
    std::printf("%s\n", record.Format().c_str());
  }

  std::printf("\nRun outcome: ");
  uint32_t valid = 0;
  for (const auto* authority : authorities) {
    if (authority->outcome().valid_consensus) {
      ++valid;
    }
  }
  std::printf("%u of %u authorities produced a valid consensus (paper: 0 — attack succeeds).\n",
              valid, config.authority_count);
  return 0;
}
