// Figure 1: the log of an unattacked directory authority while five other
// authorities are under DDoS. Reproduces the "We're missing votes from 5
// authorities ... We don't have enough votes to generate a consensus: 4 of 5"
// sequence from the paper. The run itself is a ScenarioSpec; the log lines are
// read through the runner's inspection hook.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/attack/ddos.h"
#include "src/attack/schedule.h"
#include "src/scenario/runner.h"

int main() {
  std::printf("=== Figure 1: authority log under a 5-authority DDoS (current protocol) ===\n\n");

  torattack::AttackWindow attack;
  attack.targets = torattack::FirstTargets(5);
  attack.start = 0;
  attack.end = torbase::Minutes(5);
  attack.available_bps = torattack::kUnderAttackBps;

  torscenario::ScenarioSpec spec;
  spec.name = "fig1";
  spec.protocol = "current";
  spec.relay_count = 2000;
  spec.seed = 1;
  spec.attack = std::make_shared<torattack::WindowedAttack>(
      std::vector<torattack::AttackWindow>{attack});

  torscenario::ScenarioRunner runner;
  const auto result = runner.Run(spec, [](torsim::Harness&,
                                          const std::vector<torsim::Actor*>& actors) {
    // Authority 8 is unattacked; its log shows the Figure 1 sequence.
    for (const auto& record : actors[8]->log().records()) {
      std::printf("%s\n", record.Format().c_str());
    }
  });

  std::printf("\nRun outcome: ");
  std::printf("%u of %u authorities produced a valid consensus (paper: 0 — attack succeeds).\n",
              result.valid_count, spec.authority_count);
  return 0;
}
