// Sweep-cache microbenchmark: fig10-style grids run the same
// (relay_count, seed) workload at many bandwidth settings, and generating the
// relay population + the 9 vote documents dominates per-cell setup. This bench
// runs one bandwidth sweep twice — a fresh ScenarioRunner per cell (no reuse,
// the pre-refactor behaviour) vs. one shared runner — and reports the
// generation counts and wall-clock times.
#include <chrono>
#include <cstdio>
#include <vector>

#include "src/scenario/runner.h"

namespace {

std::vector<torscenario::ScenarioSpec> Grid() {
  std::vector<torscenario::ScenarioSpec> specs;
  for (double bw_mbps : {100.0, 50.0, 20.0, 10.0, 5.0}) {
    for (const char* protocol : {"current", "icps"}) {
      torscenario::ScenarioSpec spec;
      spec.name = "sweep_cache";
      spec.protocol = protocol;
      spec.relay_count = 2500;  // all cells share (relay_count, seed)
      spec.seed = 1;
      spec.bandwidth_bps = bw_mbps * 1e6;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

int main() {
  std::printf("=== Sweep-cache microbenchmark (10-cell grid, one shared workload) ===\n\n");
  const auto specs = Grid();

  // Cold: a fresh runner per cell regenerates the population/votes every time.
  size_t cold_generations = 0;
  const auto cold_start = std::chrono::steady_clock::now();
  for (const auto& spec : specs) {
    torscenario::ScenarioRunner fresh;
    fresh.Run(spec);
    cold_generations += fresh.workload_cache_misses();
  }
  const auto cold_end = std::chrono::steady_clock::now();

  // Warm: one runner for the whole sweep.
  torscenario::ScenarioRunner shared;
  const auto warm_start = std::chrono::steady_clock::now();
  shared.Sweep(specs);
  const auto warm_end = std::chrono::steady_clock::now();

  const double cold_s = Seconds(cold_start, cold_end);
  const double warm_s = Seconds(warm_start, warm_end);
  std::printf("fresh runner per cell : %zu workload generations, %.2f s\n", cold_generations,
              cold_s);
  std::printf("shared runner sweep   : %zu generation(s), %zu cache hit(s), %.2f s\n",
              shared.workload_cache_misses(), shared.workload_cache_hits(), warm_s);
  std::printf("speedup               : %.2fx\n", warm_s > 0 ? cold_s / warm_s : 0.0);

  const bool cached = shared.workload_cache_misses() == 1 &&
                      shared.workload_cache_hits() == specs.size() - 1;
  std::printf("\n%s: cells sharing (relay_count, seed) %s re-generate the workload.\n",
              cached ? "OK" : "REGRESSION", cached ? "do not" : "DO");
  return cached ? 0 : 1;
}
