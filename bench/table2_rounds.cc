// Table 2 / Appendix B.2: round complexity of the ICPS sub-protocols.
//
// The paper counts 2 rounds for dissemination, 2 for aggregation, and a
// protocol-specific count for agreement (5 for its Jolteon-style HotStuff,
// giving 9 total). Our agreement engine is basic HotStuff (8 message rounds in
// the good case: NEW_VIEW + 3 phases of leader-broadcast/vote + DECIDE), so
// the total here is 12; both accountings are printed. We verify the structural
// claim empirically by timing a healthy run: end-to-end completion beyond
// dissemination should be a small multiple of the one-way network latency.
#include <cstdio>
#include <iostream>

#include "src/common/table.h"
#include "src/metrics/experiment.h"

int main() {
  std::printf("=== Table 2: rounds of each ICPS sub-protocol ===\n\n");

  torbase::Table table({"Sub-protocol", "Rounds (paper)", "3-phase mode", "2-phase mode"});
  table.AddRow({"Dissemination", "2", "2  (DOCUMENT, PROPOSAL)", "2"});
  table.AddRow({"Agreement", "protocol-specific (Jolteon: 5)",
                "8  (NEW_VIEW + 3x(propose, vote) + DECIDE)",
                "6  (NEW_VIEW + 2x(propose, vote) + DECIDE)"});
  table.AddRow({"Aggregation", "2", "2  (DOC_REQUEST/RESPONSE; 0 on fast path)", "2"});
  table.AddRow({"Total", "9", "12", "10"});
  table.Print(std::cout);

  // Empirical check: with ample bandwidth the post-dissemination part of the
  // run costs round_count * one-way latency (50 ms hops here), so the 2-phase
  // commit path should complete exactly two hops earlier.
  std::printf("\nEmpirical good case (500 relays, 1 Gbit/s, 50 ms hops):\n");
  for (bool two_phase : {false, true}) {
    tormetrics::ExperimentConfig config;
    config.protocol = "icps";
    config.relay_count = 500;
    config.bandwidth_bps = 1e9;
    config.two_phase_agreement = two_phase;
    const auto result = tormetrics::RunExperiment(config);
    std::printf("  %-8s end-to-end %.2f s (~%.0f one-way hops), %u/9 authorities valid\n",
                two_phase ? "2-phase:" : "3-phase:", result.latency_seconds,
                result.latency_seconds / 0.05, result.valid_count);
  }
  return 0;
}
