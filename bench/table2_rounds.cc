// Table 2 / Appendix B.2: round complexity of the ICPS sub-protocols.
//
// The paper counts 2 rounds for dissemination, 2 for aggregation, and a
// protocol-specific count for agreement (5 for its Jolteon-style HotStuff,
// giving 9 total). Our agreement engine is basic HotStuff (8 message rounds in
// the good case: NEW_VIEW + 3 phases of leader-broadcast/vote + DECIDE), so
// the total here is 12; both accountings are printed. We verify the structural
// claim empirically by timing a healthy run: end-to-end completion beyond
// dissemination should be a small multiple of the one-way network latency.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/table.h"
#include "src/metrics/experiment.h"
#include "src/scenario/runner.h"

int main() {
  std::printf("=== Table 2: rounds of each ICPS sub-protocol ===\n\n");

  torbase::Table table({"Sub-protocol", "Rounds (paper)", "3-phase mode", "2-phase mode"});
  table.AddRow({"Dissemination", "2", "2  (DOCUMENT, PROPOSAL)", "2"});
  table.AddRow({"Agreement", "protocol-specific (Jolteon: 5)",
                "8  (NEW_VIEW + 3x(propose, vote) + DECIDE)",
                "6  (NEW_VIEW + 2x(propose, vote) + DECIDE)"});
  table.AddRow({"Aggregation", "2", "2  (DOC_REQUEST/RESPONSE; 0 on fast path)", "2"});
  table.AddRow({"Total", "9", "12", "10"});
  table.Print(std::cout);

  // Empirical check: with ample bandwidth the post-dissemination part of the
  // run costs round_count * one-way latency (50 ms hops here), so the 2-phase
  // commit path should complete exactly two hops earlier. The two commit-path
  // runs are independent cells of one parallel sweep sharing a workload.
  std::printf("\nEmpirical good case (500 relays, 1 Gbit/s, 50 ms hops):\n");
  std::vector<torscenario::ScenarioSpec> specs;
  for (bool two_phase : {false, true}) {
    tormetrics::ExperimentConfig config;
    config.protocol = "icps";
    config.relay_count = 500;
    config.bandwidth_bps = 1e9;
    config.two_phase_agreement = two_phase;
    specs.push_back(tormetrics::ToScenarioSpec(config));
  }
  torscenario::ScenarioRunner runner;
  torscenario::SweepOptions sweep_options;
  sweep_options.threads = 0;  // hardware concurrency
  const auto results = runner.Sweep(specs, sweep_options);
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("  %-8s end-to-end %.2f s (~%.0f one-way hops), %u/9 authorities valid\n",
                i == 1 ? "2-phase:" : "3-phase:", results[i].latency_seconds,
                results[i].latency_seconds / 0.05, results[i].valid_count);
  }
  return 0;
}
