// §4.3 attack-cost analysis: the cost of renting stressor services to break
// one consensus run, and of keeping the Tor network down for a month. The
// paper's headline numbers are $0.074 per run and $53.28 per month.
#include <cstdio>
#include <iostream>

#include "src/attack/ddos.h"
#include "src/common/table.h"

int main() {
  std::printf("=== §4.3: DDoS-for-hire attack cost model ===\n\n");

  torattack::StressorCostModel model;
  std::printf("Inputs (paper values):\n");
  std::printf("  stressor cost           : $%.5f per Mbit/s per hour per target [22]\n",
              model.usd_per_mbps_hour);
  std::printf("  authority link capacity : %.0f Mbit/s [11]\n",
              torattack::kAuthorityLinkBps / 1e6);
  std::printf("  protocol bandwidth need : ~10 Mbit/s at 8,000 relays (Fig. 7)\n");
  std::printf("  flood volume per target : %.0f Mbit/s\n", model.flood_mbps);
  std::printf("  targets                 : %u of 9 authorities (majority)\n", model.targets);
  std::printf("  attack window           : %.0f minutes per hourly run (vote rounds)\n\n",
              model.attack_minutes_per_run);

  torbase::Table table({"Quantity", "Measured", "Paper"});
  table.AddRow({"Cost to break one consensus run",
                "$" + torbase::Table::Num(model.CostPerRunUsd(), 3), "$0.074"});
  table.AddRow({"Cost to keep Tor down for a month",
                "$" + torbase::Table::Num(model.CostPerMonthUsd(), 2), "$53.28"});
  table.Print(std::cout);

  std::printf("\nSensitivity (flood volume x targets):\n");
  torbase::Table sens({"Flood (Mbit/s)", "Targets", "$/run", "$/month"});
  for (double flood : {120.0, 240.0, 480.0}) {
    for (uint32_t targets : {5u, 9u}) {
      torattack::StressorCostModel m = model;
      m.flood_mbps = flood;
      m.targets = targets;
      sens.AddRow({torbase::Table::Num(flood, 0), torbase::Table::Int(targets),
                   torbase::Table::Num(m.CostPerRunUsd(), 3),
                   torbase::Table::Num(m.CostPerMonthUsd(), 2)});
    }
  }
  sens.Print(std::cout);
  return 0;
}
