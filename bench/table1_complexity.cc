// Table 1: communication complexity comparison.
//
//   Current      O(n^2 d + n^2 k)   bounded synchrony, insecure
//   Synchronous  O(n^3 d + n^4 k)   bounded synchrony, interactive consistency
//   Ours         O(n^2 d + n^4 k)   partial synchrony, ICPS
//
// We measure total bytes on the wire while sweeping (a) the document size d
// (via the relay count, fixed n = 9) and (b) the authority count n (fixed d),
// then fit growth exponents in log-log space. The d-exponent should be ~1 for
// all three (complexities are linear in d); the n-exponent of the
// document-bearing traffic should be ~2 for Current/Ours and ~3 for
// Synchronous. The k (signature) terms are asymptotically dominant in n only
// for unrealistically large n; we report control-plane bytes separately.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/metrics/experiment.h"

namespace {

using tormetrics::ExperimentConfig;

const std::vector<std::string> kProtocols = {"current", "synchronous", "icps"};

// Message kinds that carry full documents (the d-terms).
bool IsDocumentKind(const std::string& kind) {
  return kind == "VOTE" || kind == "VOTE_FETCH" || kind == "SYNC_PROPOSE" ||
         kind == "SYNC_PACKED" || kind == "DOCUMENT" || kind == "DOC_FETCH";
}

struct TrafficSplit {
  double document_bytes = 0;
  double control_bytes = 0;
};

TrafficSplit Run(const std::string& protocol, uint32_t n, size_t relays) {
  ExperimentConfig config;
  config.protocol = protocol;
  config.authority_count = n;
  config.relay_count = relays;
  const auto result = tormetrics::RunExperiment(config);
  TrafficSplit split;
  for (const auto& [message_kind, bytes] : result.bytes_by_kind) {
    if (IsDocumentKind(message_kind)) {
      split.document_bytes += static_cast<double>(bytes);
    } else {
      split.control_bytes += static_cast<double>(bytes);
    }
  }
  return split;
}

}  // namespace

int main() {
  std::printf("=== Table 1: measured communication complexity ===\n\n");

  std::printf("Total bytes per run (n = 9, sweeping document size via relay count):\n");
  const std::vector<size_t> relay_grid = {500, 1000, 2000, 4000};
  torbase::Table by_d({"Relays", "Current (MB)", "Synchronous (MB)", "Ours (MB)"});
  std::map<std::string, std::vector<double>> doc_bytes_by_d;
  for (size_t relays : relay_grid) {
    std::vector<std::string> row = {torbase::Table::Int(static_cast<long long>(relays))};
    for (const std::string& protocol : kProtocols) {
      const auto split = Run(protocol, 9, relays);
      doc_bytes_by_d[protocol].push_back(split.document_bytes);
      row.push_back(torbase::Table::Num((split.document_bytes + split.control_bytes) / 1e6, 1));
    }
    by_d.AddRow(std::move(row));
    std::fflush(stdout);
  }
  by_d.Print(std::cout);

  std::vector<double> d_axis(relay_grid.begin(), relay_grid.end());
  std::printf("\nGrowth exponent of document traffic vs d (expected ~1 for all):\n");
  for (auto [protocol, name] : {std::pair{"current", "Current"},
                                {"synchronous", "Synchronous"},
                                {"icps", "Ours"}}) {
    std::printf("  %-12s d-exponent = %.2f\n", name,
                torbase::GrowthExponent(d_axis, doc_bytes_by_d[protocol]));
  }

  std::printf("\nDocument traffic vs authority count (relays fixed at 800):\n");
  const std::vector<uint32_t> n_grid = {4, 7, 10, 13};
  torbase::Table by_n({"n", "Current doc (MB)", "Sync doc (MB)", "Ours doc (MB)",
                       "Current ctrl (KB)", "Sync ctrl (KB)", "Ours ctrl (KB)"});
  std::map<std::string, std::vector<double>> doc_by_n;
  std::map<std::string, std::vector<double>> ctrl_by_n;
  for (uint32_t n : n_grid) {
    std::vector<std::string> row = {torbase::Table::Int(n)};
    std::vector<std::string> ctrl_cells;
    for (const std::string& protocol : kProtocols) {
      const auto split = Run(protocol, n, 800);
      doc_by_n[protocol].push_back(split.document_bytes);
      ctrl_by_n[protocol].push_back(split.control_bytes);
      row.push_back(torbase::Table::Num(split.document_bytes / 1e6, 1));
      ctrl_cells.push_back(torbase::Table::Num(split.control_bytes / 1e3, 1));
    }
    for (auto& cell : ctrl_cells) {
      row.push_back(std::move(cell));
    }
    by_n.AddRow(std::move(row));
    std::fflush(stdout);
  }
  by_n.Print(std::cout);

  std::vector<double> n_axis(n_grid.begin(), n_grid.end());
  std::printf("\nGrowth exponents vs n:\n");
  torbase::Table exponents({"Protocol", "doc-traffic n-exp (expected)", "ctrl-traffic n-exp"});
  exponents.AddRow({"Current",
                    torbase::Table::Num(torbase::GrowthExponent(n_axis, doc_by_n["current"]), 2) +
                        "  (~2: n^2 d)",
                    torbase::Table::Num(torbase::GrowthExponent(n_axis, ctrl_by_n["current"]), 2)});
  exponents.AddRow({"Synchronous",
                    torbase::Table::Num(torbase::GrowthExponent(n_axis, doc_by_n["synchronous"]), 2) +
                        "  (~3: n^3 d)",
                    torbase::Table::Num(torbase::GrowthExponent(n_axis, ctrl_by_n["synchronous"]), 2)});
  exponents.AddRow({"Ours",
                    torbase::Table::Num(torbase::GrowthExponent(n_axis, doc_by_n["icps"]), 2) +
                        "  (~2: n^2 d)",
                    torbase::Table::Num(torbase::GrowthExponent(n_axis, ctrl_by_n["icps"]), 2)});
  exponents.Print(std::cout);

  std::printf("\nTable 1 (paper):\n");
  std::printf("  Current      Bounded Synchrony  Insecure    O(n^2 d + n^2 k)\n");
  std::printf("  Synchronous  Bounded Synchrony  Secure(IC)  O(n^3 d + n^4 k)\n");
  std::printf("  Ours         Partial Synchrony  Secure(ICPS) O(n^2 d + n^4 k)\n");
  return 0;
}
