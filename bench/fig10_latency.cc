// Figure 10: latency of generating a consensus document for the Current
// protocol, Luo et al.'s Synchronous protocol and Ours, across bandwidth
// settings (50/20/10/1/0.5 Mbit/s) and relay counts. "fail" marks runs where
// no authority assembled a valid consensus — the thick vertical lines in the
// paper's figure.
//
// The whole grid is materialized as ScenarioSpecs up front and executed by one
// parallel ScenarioRunner::Sweep: cells sharing (relay_count, seed) reuse the
// generated population/votes across all bandwidth settings and protocols, and
// independent cells run concurrently (bit-identical to a serial sweep).
//
// Paper expectations: Current fails between 9,000 and 10,000 relays at
// 10 Mbit/s; Synchronous fails beyond ~2,000 relays at 10 Mbit/s; both fail at
// 1 and 0.5 Mbit/s even with 1,000 relays; Ours completes everywhere, with
// second-scale overhead at high bandwidth and minute-scale latency at
// 0.5 Mbit/s.
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/protocols/directory_protocol.h"
#include "src/scenario/runner.h"

namespace {

std::string Cell(const torscenario::ScenarioResult& result) {
  if (!result.succeeded) {
    return "fail";
  }
  return torbase::Table::Num(result.latency_seconds, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  const bool full = mode == "--full";
  const bool smoke = mode == "--smoke";  // tiny grid: exercises the pipeline in seconds
  std::printf("=== Figure 10: consensus latency (seconds) by protocol / bandwidth / relays ===\n");
  std::printf("('fail' = no valid consensus; paper shows these as thick vertical lines)\n\n");

  const std::vector<double> bandwidths_mbps = {50, 20, 10, 1, 0.5};
  const std::vector<size_t> relay_counts =
      full    ? std::vector<size_t>{1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000}
      : smoke ? std::vector<size_t>{200, 400}
              : std::vector<size_t>{1000, 2500, 5000, 7500, 10000};
  const std::vector<std::string> protocols = {"current", "synchronous", "icps"};

  // Memory guards for the single-box harness: the Synchronous protocol's
  // packed votes hold ~n^2 copies of every list in RAM. Beyond 7,500 relays a
  // cell is skipped outright (it fails there at low bandwidth anyway); from
  // 5,000 relays up it runs, but serially — several such cells in flight at
  // once would multiply the serial run's peak memory by the thread count.
  const auto skipped = [](const std::string& protocol, size_t relays) {
    return protocol == "synchronous" && relays > 7500;
  };
  const auto memory_heavy = [](const std::string& protocol, size_t relays) {
    return protocol == "synchronous" && relays >= 5000;
  };

  std::vector<torscenario::ScenarioSpec> parallel_specs;
  std::vector<torscenario::ScenarioSpec> heavy_specs;
  // Grid position -> (is_heavy, index within its spec vector).
  std::vector<std::pair<bool, size_t>> cell_index;
  for (double bw : bandwidths_mbps) {
    for (size_t relays : relay_counts) {
      for (const std::string& protocol : protocols) {
        if (skipped(protocol, relays)) {
          cell_index.emplace_back(false, SIZE_MAX);  // placeholder, never read
          continue;
        }
        torscenario::ScenarioSpec spec;
        spec.name = "fig10";
        spec.protocol = protocol;
        spec.relay_count = relays;
        spec.bandwidth_bps = bw * 1e6;
        spec.horizon = torbase::Hours(4);
        const bool heavy = memory_heavy(protocol, relays);
        auto& bucket = heavy ? heavy_specs : parallel_specs;
        cell_index.emplace_back(heavy, bucket.size());
        bucket.push_back(std::move(spec));
      }
    }
  }

  torscenario::SweepOptions sweep_options;
  sweep_options.threads = torbase::ThreadPool::DefaultThreads();
  std::printf("running %zu grid cells on %u thread(s) (+ %zu memory-heavy cells serially)...\n\n",
              parallel_specs.size(), sweep_options.threads, heavy_specs.size());

  torscenario::ScenarioRunner runner;
  const auto parallel_results = runner.Sweep(parallel_specs, sweep_options);
  const auto heavy_results = runner.Sweep(heavy_specs);  // serial, shared cache

  size_t cell = 0;
  for (double bw : bandwidths_mbps) {
    std::printf("--- %.1f Mbit/s ---\n", bw);
    std::vector<std::string> headers = {"Relays"};
    for (const std::string& protocol : protocols) {
      headers.push_back(std::string(torproto::GetProtocol(protocol).display_name()));
    }
    torbase::Table table(std::move(headers));
    for (size_t relays : relay_counts) {
      std::vector<std::string> row = {torbase::Table::Int(static_cast<long long>(relays))};
      for (const std::string& protocol : protocols) {
        if (skipped(protocol, relays)) {
          row.push_back("(skipped)");
          ++cell;
          continue;
        }
        const auto [heavy, index] = cell_index[cell++];
        row.push_back(Cell(heavy ? heavy_results[index] : parallel_results[index]));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf("Workload cache: %zu generations served %zu grid cells.\n",
              runner.workload_cache_misses(),
              runner.workload_cache_misses() + runner.workload_cache_hits());
  std::printf("Paper shape check: Current fails only at 10 Mbit/s near 10,000 relays;\n"
              "Synchronous fails at a few-times-smaller relay counts; both fail at 1/0.5\n"
              "Mbit/s with 1,000 relays; Ours succeeds everywhere (minutes at 0.5 Mbit/s).\n");
  return 0;
}
