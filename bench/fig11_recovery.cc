// Figure 11: recovery after a complete DDoS knocks 5 authorities offline for
// the first 5 minutes of the round. The paper reports that our protocol
// produces a consensus ~10 s after the attack ends, while the lock-step
// protocols fail the run and fall back to a rerun 30 minutes later plus a
// 10-minute protocol run (2100 s total).
//
// Both halves run through ScenarioRunner::RunTimeline. The classic table is a
// one-round timeline per relay count; the second half generalizes Figure 11
// to a multi-round fault calendar — a two-round attack plus an authority
// crash that spans published rounds — and reports the recovery metrics the
// timeline engine derives: time from the calendar clearing to clients being
// fresh again, the client-visible outage, and the diff-chain rejoin cost of
// the crashed authority.
#include <cstdio>
#include <limits>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/attack/ddos.h"
#include "src/attack/schedule.h"
#include "src/common/table.h"
#include "src/scenario/runner.h"
#include "src/scenario/timeline.h"

namespace {

std::shared_ptr<torattack::AttackSchedule> KnockoutSchedule() {
  torattack::AttackWindow attack;
  attack.targets = torattack::FirstTargets(5);
  attack.start = 0;
  attack.end = torbase::Minutes(5);
  attack.available_bps = 0.0;  // knocked offline
  return std::make_shared<torattack::WindowedAttack>(
      std::vector<torattack::AttackWindow>{attack});
}

std::string RoundString(const torscenario::TimelineResult& result) {
  std::string s;
  for (const auto& round : result.rounds) {
    s += round.succeeded ? '+' : 'x';
  }
  return s;
}

}  // namespace

int main() {
  std::printf("=== Figure 11: recovery after a 5-minute full DDoS on 5 authorities ===\n\n");

  const std::vector<size_t> relay_counts = {1000, 2500, 5000, 7500, 10000};
  torbase::Table table({"Relays", "Ours: finish after attack end (s)", "Current (s)",
                        "Synchronous (s)"});

  const auto schedule = KnockoutSchedule();

  // The lock-step protocols fail the attacked run; Tor's fallback reruns the
  // protocol 30 minutes later and needs the full 10-minute window (paper §6.2).
  constexpr double kLockStepFallbackSeconds = 2100.0;

  torscenario::ScenarioRunner runner;
  for (size_t relays : relay_counts) {
    torscenario::TimelineSpec timeline;
    timeline.name = "fig11";
    timeline.rounds = 1;
    timeline.base.name = "fig11";
    timeline.base.protocol = "icps";
    timeline.base.relay_count = relays;
    timeline.attacks.push_back(torscenario::AttackCalendarEntry{0, 0, schedule});

    const auto ours = runner.RunTimeline(timeline);

    // Confirm the lock-step protocols actually fail this round (same
    // workload, served from the runner's cache).
    torscenario::TimelineSpec current_timeline = timeline;
    current_timeline.base.protocol = "current";
    const bool current_failed =
        !runner.RunTimeline(current_timeline).rounds[0].succeeded;

    const auto& round = ours.rounds[0];
    const double after_attack =
        round.succeeded
            ? round.finish_time_seconds - torbase::ToSeconds(torbase::Minutes(5))
            : std::numeric_limits<double>::quiet_NaN();
    table.AddRow({torbase::Table::Int(static_cast<long long>(relays)),
                  torbase::Table::Num(after_attack, 1),
                  current_failed ? torbase::Table::Num(kLockStepFallbackSeconds, 0) : "unexpected",
                  torbase::Table::Num(kLockStepFallbackSeconds, 0)});
    std::fflush(stdout);
  }
  table.Print(std::cout);
  std::printf("\nPaper: Ours finishes ~10 s after the attack ends; Current/Synchronous take\n"
              "2100 s (25 min until the next run after the 5-minute attack + 10-minute run).\n");

  // --- the multi-round generalization -------------------------------------
  // Six hourly rounds, 1M clients: the knock-out hits rounds 1 and 2, and
  // authority 7 crashes mid-round 1 and rejoins mid-round 3. Under ICPS the
  // network kept publishing while it was down, so the rejoiner is two rounds
  // behind and catches up the cheapest way (the attacked rounds' reduced vote
  // set changes the document enough that one full fetch can undercut the diff
  // chain); under the lock-step protocols the attacked rounds failed, so the
  // rejoiner is already current.
  std::printf("\n=== Multi-round fault calendar: attack rounds 1-2, authority 7 down 1->3 ===\n\n");
  torbase::Table recovery({"Protocol", "Rounds", "Time to fresh (s)", "Outage (h)",
                           "Hard down (h)", "Rejoin (rounds behind / KB)"});
  for (const char* protocol : {"current", "synchronous", "icps"}) {
    torscenario::TimelineSpec timeline;
    timeline.name = "fig11_calendar";
    timeline.rounds = 6;
    timeline.round_period = torbase::Hours(1);
    timeline.base.name = "fig11_calendar";
    timeline.base.protocol = protocol;
    timeline.base.relay_count = 2000;
    timeline.base.client_load.client_count = 1'000'000;
    timeline.base.client_load.diff_capable_fraction = 0.8;
    timeline.attacks.push_back(torscenario::AttackCalendarEntry{1, 2, schedule});
    timeline.crashes.push_back(torscenario::CrashCalendarEntry{
        7, 1, torbase::Minutes(1), 3, torbase::Minutes(2)});

    const auto result = runner.RunTimeline(timeline);
    std::string rejoin = "none";
    if (!result.rejoins.empty()) {
      const auto& event = result.rejoins.front();
      if (event.rounds_behind == 0) {
        rejoin = "already current";
      } else {
        rejoin = std::to_string(event.rounds_behind) + " / " +
                 torbase::Table::Num(static_cast<double>(event.bytes) / 1024.0, 1) +
                 (event.via_diff_chain ? " (diff chain)" : " (full fetch)");
      }
    }
    recovery.AddRow({protocol, RoundString(result),
                     torbase::Table::Num(result.time_to_fresh_seconds, 1),
                     torbase::Table::Num(result.client_availability.outage_seconds / 3600.0, 2),
                     torbase::Table::Num(result.client_availability.hard_down_seconds / 3600.0, 2),
                     rejoin});
    std::fflush(stdout);
  }
  recovery.Print(std::cout);
  std::printf("\nThe calendar clears when the attack window ends; 'time to fresh' is how\n"
              "long clients then wait for a fresh consensus. Lock-step protocols lose the\n"
              "attacked rounds and recover only when the next clean round publishes; ICPS\n"
              "publishes through the attack, so clients never leave freshness.\n");
  return 0;
}
