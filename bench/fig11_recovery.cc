// Figure 11: latency of generating a consensus document when a complete DDoS
// knocks 5 authorities offline for the first 5 minutes, after which the
// network returns to 250 Mbit/s. The paper reports that our protocol produces
// a consensus ~10 s after the attack ends, while the lock-step protocols fail
// the run and fall back to a rerun 30 minutes later plus a 10-minute protocol
// run (2100 s total).
#include <cstdio>
#include <limits>
#include <iostream>
#include <memory>
#include <vector>

#include "src/attack/ddos.h"
#include "src/attack/schedule.h"
#include "src/common/table.h"
#include "src/scenario/runner.h"

int main() {
  std::printf("=== Figure 11: recovery after a 5-minute full DDoS on 5 authorities ===\n\n");

  const std::vector<size_t> relay_counts = {1000, 2500, 5000, 7500, 10000};
  torbase::Table table({"Relays", "Ours: finish after attack end (s)", "Current (s)",
                        "Synchronous (s)"});

  torattack::AttackWindow attack;
  attack.targets = torattack::FirstTargets(5);
  attack.start = 0;
  attack.end = torbase::Minutes(5);
  attack.available_bps = 0.0;  // knocked offline
  const auto schedule = std::make_shared<torattack::WindowedAttack>(
      std::vector<torattack::AttackWindow>{attack});

  // The lock-step protocols fail the attacked run; Tor's fallback reruns the
  // protocol 30 minutes later and needs the full 10-minute window (paper §6.2).
  constexpr double kLockStepFallbackSeconds = 2100.0;

  torscenario::ScenarioRunner runner;
  for (size_t relays : relay_counts) {
    torscenario::ScenarioSpec spec;
    spec.name = "fig11";
    spec.protocol = "icps";
    spec.relay_count = relays;
    spec.attack = schedule;
    const auto ours = runner.Run(spec);

    // Confirm the lock-step protocols actually fail this run (same workload,
    // served from the runner's cache).
    torscenario::ScenarioSpec current_spec = spec;
    current_spec.protocol = "current";
    const bool current_failed = !runner.Run(current_spec).succeeded;

    const double after_attack =
        ours.succeeded ? ours.finish_time_seconds - torbase::ToSeconds(attack.end)
                       : std::numeric_limits<double>::quiet_NaN();
    table.AddRow({torbase::Table::Int(static_cast<long long>(relays)),
                  torbase::Table::Num(after_attack, 1),
                  current_failed ? torbase::Table::Num(kLockStepFallbackSeconds, 0) : "unexpected",
                  torbase::Table::Num(kLockStepFallbackSeconds, 0)});
    std::fflush(stdout);
  }
  table.Print(std::cout);
  std::printf("\nPaper: Ours finishes ~10 s after the attack ends; Current/Synchronous take\n"
              "2100 s (25 min until the next run after the 5-minute attack + 10-minute run).\n");
  return 0;
}
