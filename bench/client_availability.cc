// The paper's title claim, measured from the edge: replay a day of hourly
// directory rounds under the §4 attack timelines (Figure 1's 0.5 Mbit/s flood
// and Figure 11's full knock-out, starting at hour 2 and never stopping) and
// report the outage a population of millions of clients actually experiences.
//
// The day is one TimelineSpec: the attack shape is a fault-calendar entry
// spanning hours 2..end, and ScenarioRunner::RunTimeline does the rest —
// fans the hourly rounds onto the sweep pool (bit-identical to a serial
// replay at any --threads), stitches the published documents into the
// day-long diff chain (round N diffs against the last round that actually
// published, not a re-materialized workload), and integrates 5M clients'
// fetch demand against the directory-cache tier in closed form, once with
// the spec's diff-capable steady-state cohort and once as the all-full-
// document counterfactual.
//
// Usage: client_availability [--quick] [--threads N]
//   --quick      12 hours, 1,000 relays, flood shape only (CI smoke)
//   --threads N  sweep-pool width for the hourly rounds (default: hardware)
//
// Exit code is non-zero if the headline contrast disappears: the deployed
// protocol must hard-down its clients, ICPS must keep them 100% fresh —
// and diff serving must never *raise* the day's served bytes.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/attack/ddos.h"
#include "src/attack/schedule.h"
#include "src/clients/population.h"
#include "src/common/thread_pool.h"
#include "src/scenario/runner.h"
#include "src/scenario/timeline.h"

namespace {

struct AttackShape {
  const char* label;
  double available_bps;
};

// Fraction of steady-state refetchers assumed diff-capable in the serving-
// cost replay (real Tor clients have fetched consensus diffs since 0.3.1).
constexpr double kDiffCapableFraction = 0.8;

std::string RunString(const std::vector<torscenario::ScenarioResult>& rounds) {
  std::string s;
  for (const auto& round : rounds) {
    s += round.succeeded ? '+' : 'x';
  }
  return s;
}

void PrintAvailability(const torscenario::ClientAvailabilityResult& day) {
  const double total = day.total_fetches;
  std::printf("    demand served fresh : %6.2f %%  (%.0f of %.0f fetches)\n",
              100.0 * day.fresh_fetches / total, day.fresh_fetches, total);
  std::printf("    served stale        : %6.2f %%\n", 100.0 * day.stale_fetches / total);
  std::printf("    unserved            : %6.2f %%\n", 100.0 * day.unserved_fetches / total);
  if (day.outage_seconds > 0.0) {
    std::printf("    client outage       : %.2f h, from t = %.2f h (no fresh consensus)\n",
                day.outage_seconds / 3600.0, day.outage_start_seconds / 3600.0);
  } else {
    std::printf("    client outage       : none\n");
  }
  if (day.hard_down_seconds > 0.0) {
    std::printf("    HARD DOWN           : %.2f h, from t = %.2f h (no valid consensus)\n",
                day.hard_down_seconds / 3600.0, day.hard_down_start_seconds / 3600.0);
  } else {
    std::printf("    hard down           : never\n");
  }
  std::printf("    peak fetch backlog  : %.0f blocked bootstraps\n", day.peak_backlog_fetches);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  unsigned threads = torbase::ThreadPool::DefaultThreads();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--threads N]\n", argv[0]);
      return 2;
    }
  }

  const uint32_t hours = quick ? 12 : 24;
  const size_t relays = quick ? 1000 : 2000;
  constexpr uint32_t kAttackFromHour = 2;

  std::vector<AttackShape> shapes = {{"5-min flood @ 0.5 Mbit/s (Fig. 1)", torattack::kUnderAttackBps}};
  if (!quick) {
    shapes.push_back({"5-min knock-out @ 0 bit/s (Fig. 11)", 0.0});
  }

  torclients::ClientLoadSpec clients;
  clients.client_count = 5'000'000;

  std::printf("=== Client-visible availability: %u hourly rounds, attack from hour %u ===\n",
              hours, kAttackFromHour);
  std::printf("%llu clients (%.0f%% bootstrapping/period), %u caches x %.0f Mbit/s, "
              "%zu relays, %u sweep threads\n\n",
              static_cast<unsigned long long>(clients.client_count),
              100.0 * clients.bootstrap_fraction, clients.cache_count,
              clients.cache_bandwidth_bps / 1e6, relays, threads);

  torscenario::ScenarioRunner runner;
  torscenario::SweepOptions sweep;
  sweep.threads = threads;
  bool contrast_holds = true;
  for (const AttackShape& shape : shapes) {
    std::printf("--- attack shape: %s ---\n", shape.label);
    for (const char* protocol : {"current", "icps"}) {
      torscenario::TimelineSpec timeline;
      timeline.name = "client_availability";
      timeline.rounds = hours;
      timeline.round_period = torbase::Hours(1);
      timeline.base.name = "client_availability";
      timeline.base.protocol = protocol;
      timeline.base.relay_count = relays;
      timeline.base.client_load = clients;
      timeline.base.client_load.diff_capable_fraction = kDiffCapableFraction;

      torattack::AttackWindow window;
      window.targets = torattack::FirstTargets(5);
      window.start = 0;
      window.end = torbase::Minutes(5);
      window.available_bps = shape.available_bps;
      timeline.attacks.push_back(torscenario::AttackCalendarEntry{
          kAttackFromHour, hours - 1,
          std::make_shared<torattack::WindowedAttack>(
              std::vector<torattack::AttackWindow>{window})});

      const torscenario::TimelineResult day = runner.RunTimeline(timeline, sweep);
      const torscenario::ClientAvailabilityResult& plane = day.client_availability;

      std::printf("  %-12s rounds: %s\n", protocol, RunString(day.rounds).c_str());
      PrintAvailability(plane);

      // Wire sizes from the stitched diff chain: each published round after
      // the first carries a diff against the previous *published* document.
      size_t diff_rounds = 0;
      size_t full_size = 0;
      size_t diff_size = 0;
      for (const torscenario::RoundSnapshot& snapshot : day.snapshots) {
        if (snapshot.succeeded && snapshot.diff_from_previous != nullptr) {
          ++diff_rounds;
          full_size = snapshot.consensus_text->size();
          diff_size = snapshot.diff_from_previous->size();
        }
      }
      std::printf("    consensus wire      : %.1f KB full, %.1f KB diff (%zu of %u rounds "
                  "diffed against the previous published document)\n",
                  static_cast<double>(full_size) / 1024.0, static_cast<double>(diff_size) / 1024.0,
                  diff_rounds, hours);
      std::printf("    serving cost        : %.2f KB/client-hour all-full-document, "
                  "%.2f KB with a %.0f%% diff-capable cohort\n",
                  plane.full_doc_bytes_per_client_hour / 1024.0,
                  plane.bytes_per_client_hour / 1024.0, 100.0 * kDiffCapableFraction);
      for (const tordir::HealthAlert& alert : day.health_alerts) {
        std::printf("    horizon alert       : %s (%s)\n",
                    tordir::HealthAlertName(alert.kind), alert.detail.c_str());
      }
      std::fflush(stdout);

      if (std::string(protocol) == "current" && plane.hard_down_seconds <= 0.0) {
        contrast_holds = false;
      }
      if (std::string(protocol) == "icps" && plane.outage_seconds > 0.0) {
        contrast_holds = false;
      }
      // Diff serving can only shrink the day's served bytes (documents
      // without a diff are served in full to everyone).
      if (plane.bytes_per_client_hour >
          plane.full_doc_bytes_per_client_hour * (1.0 + 1e-9)) {
        contrast_holds = false;
      }
    }
    std::printf("\n");
  }

  std::printf("The deployed protocol loses every attacked round; its clients run out of\n"
              "valid consensuses ~2 h after the last successful round and stay hard-down\n"
              "while the attacker pays ~$0.074/hour. ICPS finishes each round minutes\n"
              "after the flood ends, so the same client population never sees an outage.\n");

  if (!contrast_holds) {
    std::fprintf(stderr, "REGRESSION: client-visible outage contrast disappeared\n");
    return 1;
  }
  return 0;
}
