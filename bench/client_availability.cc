// The paper's title claim, measured from the edge: replay a day of hourly
// directory rounds under the §4 attack timelines (Figure 1's 0.5 Mbit/s flood
// and Figure 11's full knock-out, starting at hour 2 and never stopping) and
// report the outage a population of millions of clients actually experiences.
//
// Each hourly round is one ScenarioSpec (all rounds share the runner's cached
// workload and run as one parallel sweep); the rounds' publish metadata is
// stitched into a day-long timeline and fed to the consumption plane
// (src/clients), which integrates 5M clients' fetch demand against the
// directory-cache tier in closed form.
//
// Each round also carries the previous round's *actual published document* as
// its diff baseline (ScenarioSpec::previous_consensus — round N diffs against
// round N−1's retained ScenarioResult::consensus_document, not against a
// re-materialized workload), so the with-diffs serving series below is honest:
// the day is replayed twice through the consumption plane, once all-full-
// document and once with a diff-capable steady-state cohort, and the
// bytes-per-client-hour contrast is printed side by side.
//
// Usage: client_availability [--quick] [--threads N]
//   --quick      12 hours, 1,000 relays, flood shape only (CI smoke)
//   --threads N  accepted for compatibility; the chained replay (round N
//                needs round N−1's document) runs cells sequentially
//
// Exit code is non-zero if the headline contrast disappears: the deployed
// protocol must hard-down its clients, ICPS must keep them 100% fresh —
// and diff serving must never *raise* the day's served bytes.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/attack/ddos.h"
#include "src/attack/schedule.h"
#include "src/clients/population.h"
#include "src/common/thread_pool.h"
#include "src/scenario/runner.h"

namespace {

struct AttackShape {
  const char* label;
  double available_bps;
};

// Fraction of steady-state refetchers assumed diff-capable in the serving-
// cost replay (real Tor clients have fetched consensus diffs since 0.3.1).
constexpr double kDiffCapableFraction = 0.8;

torclients::ClientLoadSpec DaySpec(int hours) {
  torclients::ClientLoadSpec clients;
  clients.client_count = 5'000'000;
  clients.evaluation_window = torbase::Hours(static_cast<uint64_t>(hours));
  return clients;
}

std::string RunString(const std::vector<torscenario::ScenarioResult>& rounds) {
  std::string s;
  for (const auto& round : rounds) {
    s += round.succeeded ? '+' : 'x';
  }
  return s;
}

// Stitches each round's publish metadata into the day-long virtual timeline:
// round h starts at h * 3600 s, and its document's unix validity window is
// mapped through the vote-lead clock convention (torclients::MapToTimeline).
// Rounds that published with a diff baseline carry their diff wire size, so
// the consumption plane can serve the diff-capable cohort at that size.
std::vector<torclients::PublishedDocument> DayTimeline(
    const std::vector<torscenario::ScenarioResult>& rounds,
    const torclients::ClientLoadSpec& clients) {
  std::vector<torclients::PublishedDocument> documents;
  for (size_t hour = 0; hour < rounds.size(); ++hour) {
    const auto& round = rounds[hour];
    if (!round.succeeded) {
      continue;
    }
    documents.push_back(torclients::MapToTimeline(
        static_cast<double>(hour) * 3600.0, round.consensus_published_seconds,
        round.consensus_valid_after, round.consensus_fresh_until, round.consensus_valid_until,
        static_cast<double>(round.consensus_size_bytes), clients.vote_lead));
    documents.back().diff_size_bytes = static_cast<double>(round.consensus_diff_size_bytes);
  }
  return documents;
}

void PrintAvailability(const torclients::ClientAvailability& day) {
  const double total = day.total_fetches;
  std::printf("    demand served fresh : %6.2f %%  (%.0f of %.0f fetches)\n",
              100.0 * day.fresh_fetches / total, day.fresh_fetches, total);
  std::printf("    served stale        : %6.2f %%\n", 100.0 * day.stale_fetches / total);
  std::printf("    unserved            : %6.2f %%\n", 100.0 * day.unserved_fetches / total);
  if (day.outage_seconds > 0.0) {
    std::printf("    client outage       : %.2f h, from t = %.2f h (no fresh consensus)\n",
                day.outage_seconds / 3600.0, day.outage_start_seconds / 3600.0);
  } else {
    std::printf("    client outage       : none\n");
  }
  if (day.hard_down_seconds > 0.0) {
    std::printf("    HARD DOWN           : %.2f h, from t = %.2f h (no valid consensus)\n",
                day.hard_down_seconds / 3600.0, day.hard_down_start_seconds / 3600.0);
  } else {
    std::printf("    hard down           : never\n");
  }
  std::printf("    peak fetch backlog  : %.0f blocked bootstraps\n", day.peak_backlog_fetches);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  unsigned threads = torbase::ThreadPool::DefaultThreads();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--threads N]\n", argv[0]);
      return 2;
    }
  }

  (void)threads;  // the chained replay is inherently sequential
  const int hours = quick ? 12 : 24;
  const size_t relays = quick ? 1000 : 2000;
  constexpr int kAttackFromHour = 2;
  const torclients::ClientLoadSpec clients = DaySpec(hours);

  std::vector<AttackShape> shapes = {{"5-min flood @ 0.5 Mbit/s (Fig. 1)", torattack::kUnderAttackBps}};
  if (!quick) {
    shapes.push_back({"5-min knock-out @ 0 bit/s (Fig. 11)", 0.0});
  }

  std::printf("=== Client-visible availability: %d hourly rounds, attack from hour %d ===\n",
              hours, kAttackFromHour);
  std::printf("%llu clients (%.0f%% bootstrapping/period), %u caches x %.0f Mbit/s, "
              "%zu relays\n\n",
              static_cast<unsigned long long>(clients.client_count),
              100.0 * clients.bootstrap_fraction, clients.cache_count,
              clients.cache_bandwidth_bps / 1e6, relays);

  torscenario::ScenarioRunner runner;
  bool contrast_holds = true;
  for (const AttackShape& shape : shapes) {
    std::printf("--- attack shape: %s ---\n", shape.label);
    for (const char* protocol : {"current", "icps"}) {
      // One run per hour; attacked hours flood the first 5 authorities for
      // the first 5 minutes of the round. Rounds run sequentially (sharing
      // the runner's workload cache) because each carries the previous
      // round's actual published document as its diff baseline — across a
      // failed round clients keep the older document, so the last successful
      // round's document stays the baseline.
      std::vector<torscenario::ScenarioResult> rounds;
      std::shared_ptr<const tordir::ConsensusDocument> previous_document;
      for (int hour = 0; hour < hours; ++hour) {
        torscenario::ScenarioSpec spec;
        spec.name = "client_availability";
        spec.protocol = protocol;
        spec.relay_count = relays;
        spec.horizon = torbase::Hours(1);
        spec.client_load = clients;
        spec.client_load.evaluation_window = torbase::Hours(1);
        spec.previous_consensus = previous_document;
        if (hour >= kAttackFromHour) {
          torattack::AttackWindow window;
          window.targets = torattack::FirstTargets(5);
          window.start = 0;
          window.end = torbase::Minutes(5);
          window.available_bps = shape.available_bps;
          spec.attack = std::make_shared<torattack::WindowedAttack>(
              std::vector<torattack::AttackWindow>{window});
        }
        rounds.push_back(runner.Run(spec));
        if (rounds.back().succeeded && rounds.back().consensus_document != nullptr) {
          previous_document = rounds.back().consensus_document;
        }
      }

      // The day through the consumption plane twice: all-full-document (the
      // availability headline, unchanged semantics) and with a diff-capable
      // steady-state cohort (the serving-cost headline).
      const auto timeline = DayTimeline(rounds, clients);
      const double window_seconds = static_cast<double>(hours) * 3600.0;
      const auto day = torclients::SimulateClientLoad(clients, timeline, window_seconds);
      torclients::ClientLoadSpec diff_clients = clients;
      diff_clients.diff_capable_fraction = kDiffCapableFraction;
      const auto diff_day = torclients::SimulateClientLoad(diff_clients, timeline, window_seconds);

      std::printf("  %-12s rounds: %s\n", protocol, RunString(rounds).c_str());
      PrintAvailability(day);
      size_t diff_rounds = 0;
      uint64_t full_size = 0;
      uint64_t diff_size = 0;
      for (const auto& round : rounds) {
        if (round.succeeded && round.consensus_diff_size_bytes > 0) {
          ++diff_rounds;
          full_size = round.consensus_size_bytes;
          diff_size = round.consensus_diff_size_bytes;
        }
      }
      const double client_hours =
          static_cast<double>(clients.client_count) * static_cast<double>(hours);
      std::printf("    consensus wire      : %.1f KB full, %.1f KB diff (%zu of %d rounds "
                  "diffed against the previous round's document)\n",
                  static_cast<double>(full_size) / 1024.0, static_cast<double>(diff_size) / 1024.0,
                  diff_rounds, hours);
      std::printf("    serving cost        : %.2f KB/client-hour all-full-document, "
                  "%.2f KB with a %.0f%% diff-capable cohort\n",
                  day.served_bytes / client_hours / 1024.0,
                  diff_day.served_bytes / client_hours / 1024.0, 100.0 * kDiffCapableFraction);
      std::fflush(stdout);

      if (std::string(protocol) == "current" && day.hard_down_seconds <= 0.0) {
        contrast_holds = false;
      }
      if (std::string(protocol) == "icps" && day.outage_seconds > 0.0) {
        contrast_holds = false;
      }
      // Diff serving can only shrink the day's served bytes (documents
      // without a diff are served in full to everyone).
      if (diff_day.served_bytes > day.served_bytes * (1.0 + 1e-9)) {
        contrast_holds = false;
      }
    }
    std::printf("\n");
  }

  std::printf("The deployed protocol loses every attacked round; its clients run out of\n"
              "valid consensuses ~2 h after the last successful round and stay hard-down\n"
              "while the attacker pays ~$0.074/hour. ICPS finishes each round minutes\n"
              "after the flood ends, so the same client population never sees an outage.\n");

  if (!contrast_holds) {
    std::fprintf(stderr, "REGRESSION: client-visible outage contrast disappeared\n");
    return 1;
  }
  return 0;
}
