// Quickstart: run one round of the partial-synchrony directory protocol (the
// paper's contribution) among 9 simulated authorities and print the resulting
// consensus document summary.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "src/clients/population.h"
#include "src/core/icps_authority.h"
#include "src/sim/actor.h"
#include "src/tordir/dirspec.h"
#include "src/tordir/generator.h"

int main() {
  // 1. A synthetic relay population and each authority's (noisy) vote over it.
  tordir::PopulationConfig population_config;
  population_config.relay_count = 2000;
  population_config.seed = 2026;
  const auto population = tordir::GeneratePopulation(population_config);

  toricc::IcpsConfig config;  // 9 authorities, f = 2, Δ = 150 s
  auto votes = tordir::MakeAllVotes(config.authority_count, population, population_config);
  std::printf("Generated %zu relays; vote documents are ~%zu KB each.\n", population.size(),
              tordir::SerializeVote(votes[0]).size() / 1024);

  // 2. A simulated authority network: 250 Mbit/s NICs, 50 ms hops.
  torsim::NetworkConfig net_config;
  net_config.node_count = config.authority_count;
  net_config.default_bandwidth_bps = 250e6;
  net_config.default_latency = torbase::Millis(50);
  torsim::Harness harness(net_config);

  torcrypto::KeyDirectory directory(/*seed=*/42, config.authority_count);
  std::vector<toricc::IcpsAuthority*> authorities;
  for (uint32_t a = 0; a < config.authority_count; ++a) {
    authorities.push_back(static_cast<toricc::IcpsAuthority*>(harness.AddActor(
        std::make_unique<toricc::IcpsAuthority>(config, &directory, std::move(votes[a])))));
  }

  // 3. Run the protocol to completion (virtual time).
  harness.StartAll();
  harness.sim().Run();

  // 4. Inspect the outcome.
  const auto& outcome = authorities[0]->outcome();
  std::printf("\nAuthority 0 outcome:\n");
  std::printf("  agreement decided at   : %.2f s\n", torbase::ToSeconds(outcome.decided_at));
  std::printf("  valid consensus at     : %.2f s\n", torbase::ToSeconds(outcome.finished_at));
  std::printf("  documents in vector    : %u of %u\n", outcome.vector_non_empty,
              config.authority_count);
  std::printf("  relays in consensus    : %zu\n", outcome.consensus.relays.size());
  std::printf("  signatures collected   : %zu\n", outcome.consensus.signatures.size());

  // Every authority holds the byte-identical consensus document.
  const auto digest = tordir::ConsensusDigest(outcome.consensus);
  bool all_equal = true;
  for (const auto* authority : authorities) {
    all_equal = all_equal &&
                tordir::ConsensusDigest(authority->outcome().consensus) == digest;
  }
  std::printf("  identical on all 9     : %s\n", all_equal ? "yes" : "NO");
  std::printf("\nConsensus digest: %s\n", digest.ToHex().c_str());

  // 5. What this round means for clients: feed the publish time into the
  // consumption plane (src/clients) — a million clients fetching through
  // directory caches, integrated in closed form.
  torclients::ClientLoadSpec clients;
  clients.client_count = 1'000'000;
  const torclients::PublishedDocument published = torclients::MapToTimeline(
      /*round_start_seconds=*/0.0, torbase::ToSeconds(outcome.finished_at),
      outcome.consensus.valid_after, outcome.consensus.fresh_until, outcome.consensus.valid_until,
      static_cast<double>(tordir::SerializeConsensus(outcome.consensus).size()),
      clients.vote_lead);
  const auto availability = torclients::SimulateClientLoad(
      clients, {published}, torbase::ToSeconds(clients.evaluation_window));
  std::printf("\nClient-visible availability (1M clients, this directory period):\n");
  std::printf("  demand served fresh    : %.2f %%\n",
              100.0 * availability.fresh_fraction);
  std::printf("  client outage          : %.1f s\n", availability.outage_seconds);
  return all_equal ? 0 : 1;
}
