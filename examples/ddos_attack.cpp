// The paper's headline attack (§4), end to end: rent stressor capacity against
// 5 of the 9 directory authorities for the five minutes in which votes are
// exchanged, watch the deployed protocol fail, and price the attack.
//
//   ./build/examples/ddos_attack
#include <cstdio>
#include <memory>

#include "src/attack/ddos.h"
#include "src/protocols/current/current_authority.h"
#include "src/sim/actor.h"
#include "src/tordir/generator.h"

int main() {
  std::printf("Five Minutes of DDoS Brings down Tor — attack walkthrough\n");
  std::printf("=========================================================\n\n");

  // The live network's scale: ~8,000 relays (Figure 6 average era).
  tordir::PopulationConfig population_config;
  population_config.relay_count = 8000;
  population_config.seed = 4;
  const auto population = tordir::GeneratePopulation(population_config);

  torproto::ProtocolConfig config;
  auto votes = tordir::MakeAllVotes(config.authority_count, population, population_config);

  torsim::NetworkConfig net_config;
  net_config.node_count = config.authority_count;
  net_config.default_bandwidth_bps = torattack::kAuthorityLinkBps;  // 250 Mbit/s
  net_config.default_latency = torbase::Millis(50);
  torsim::Harness harness(net_config);

  // The attack: flood authorities 0..4 for the first five minutes, leaving
  // them 0.5 Mbit/s of usable bandwidth (Jansen et al.'s measurement).
  torattack::AttackWindow attack;
  attack.targets = torattack::FirstTargets(5);
  attack.start = 0;
  attack.end = torbase::Minutes(5);
  attack.available_bps = torattack::kUnderAttackBps;
  torattack::ApplyAttack(harness.net(), attack);
  std::printf("Attack: authorities 0-4 limited to %.1f Mbit/s during [0, 5 min)\n\n",
              attack.available_bps / 1e6);

  torcrypto::KeyDirectory directory(42, config.authority_count);
  std::vector<torproto::CurrentAuthority*> authorities;
  for (uint32_t a = 0; a < config.authority_count; ++a) {
    authorities.push_back(static_cast<torproto::CurrentAuthority*>(harness.AddActor(
        std::make_unique<torproto::CurrentAuthority>(config, &directory, std::move(votes[a])))));
  }
  harness.StartAll();
  harness.sim().Run();

  std::printf("Log of authority 8 (not attacked) — compare with Figure 1:\n");
  std::printf("-----------------------------------------------------------\n");
  for (const auto& record : authorities[8]->log().records()) {
    if (record.level >= torbase::LogLevel::kNotice ||
        record.message.find("Giving up") != std::string::npos) {
      std::printf("%s\n", record.Format().c_str());
    }
  }

  uint32_t valid = 0;
  for (const auto* authority : authorities) {
    valid += authority->outcome().valid_consensus ? 1 : 0;
  }
  std::printf("\nResult: %u of 9 authorities produced a valid consensus.\n", valid);
  std::printf("Consensus documents expire after 3 hours; repeating this attack every hour\n");
  std::printf("takes the whole Tor network offline.\n\n");

  torattack::StressorCostModel cost;
  std::printf("Attack price (stressor-service rates from Jansen et al.):\n");
  std::printf("  one broken consensus run : $%.3f\n", cost.CostPerRunUsd());
  std::printf("  a full month of outage   : $%.2f\n", cost.CostPerMonthUsd());
  return valid == 0 ? 0 : 1;
}
