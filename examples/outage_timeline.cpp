// The §2.1 arithmetic that makes the attack catastrophic: consensus documents
// are valid for three hours and generated hourly, so an attacker who breaks
// every hourly run (five minutes of flooding each) takes the whole network
// down three hours after the first broken run — and keeps it down for
// $53.28/month. This example simulates a day of hourly runs under different
// protocols/attack policies and prints the availability timeline — both the
// authority-side view (did a consensus form?) and the client-side view (what
// fraction of a million clients' fetch demand was served fresh), alongside
// the consensus-health monitor's alerts for the first attacked hour.
//
//   ./build/examples/outage_timeline
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/attack/ddos.h"
#include "src/attack/schedule.h"
#include "src/clients/population.h"
#include "src/scenario/runner.h"
#include "src/tordir/freshness.h"

namespace {

constexpr int kHours = 12;

torclients::ClientLoadSpec MillionClients() {
  torclients::ClientLoadSpec clients;
  clients.client_count = 1'000'000;
  return clients;
}

// Simulates one hourly run: the attacker floods 5 authorities for the first
// five minutes of the run (if attacking this hour). Every hourly run shares
// the caller's runner, and with it the generated population and votes.
torscenario::ScenarioResult RunHour(torscenario::ScenarioRunner& runner,
                                    const std::string& protocol, bool attacked) {
  torscenario::ScenarioSpec spec;
  spec.name = "outage_timeline";
  spec.protocol = protocol;
  spec.relay_count = 2000;
  spec.horizon = torbase::Hours(1);
  spec.client_load = MillionClients();
  if (attacked) {
    torattack::AttackWindow window;
    window.targets = torattack::FirstTargets(5);
    window.start = 0;
    window.end = torbase::Minutes(5);
    window.available_bps = torattack::kUnderAttackBps;
    spec.attack = std::make_shared<torattack::WindowedAttack>(
        std::vector<torattack::AttackWindow>{window});
  }
  return runner.Run(spec);
}

// Stitches the hourly publish metadata into a day-long client timeline (the
// same mapping bench/client_availability uses).
torclients::ClientAvailability DayAvailability(
    const std::vector<torscenario::ScenarioResult>& rounds) {
  torclients::ClientLoadSpec clients = MillionClients();
  clients.evaluation_window = torbase::Hours(kHours);
  std::vector<torclients::PublishedDocument> documents;
  for (size_t hour = 0; hour < rounds.size(); ++hour) {
    if (!rounds[hour].succeeded) {
      continue;
    }
    const auto& round = rounds[hour];
    documents.push_back(torclients::MapToTimeline(
        static_cast<double>(hour) * 3600.0, round.consensus_published_seconds,
        round.consensus_valid_after, round.consensus_fresh_until, round.consensus_valid_until,
        static_cast<double>(round.consensus_size_bytes), clients.vote_lead));
  }
  return torclients::SimulateClientLoad(clients, std::move(documents), kHours * 3600.0);
}

void PrintTimeline(const char* label, const std::vector<torscenario::ScenarioResult>& rounds) {
  std::vector<bool> runs;
  for (const auto& round : rounds) {
    runs.push_back(round.succeeded);
  }
  const auto timeline = tordir::AnalyzeAvailability(runs);
  std::printf("%-34s runs: ", label);
  for (bool ok : runs) {
    std::printf("%c", ok ? '+' : 'x');
  }
  std::printf("\n%-34s  net: ", "");
  for (bool up : timeline.network_up) {
    std::printf("%c", up ? '+' : '!');
  }
  if (timeline.first_down_hour.has_value()) {
    std::printf("   DOWN from hour %zu (%zu h total)\n", *timeline.first_down_hour,
                timeline.hours_down);
  } else {
    std::printf("   network up throughout\n");
  }

  // The client-side view of the same hours: fresh-served share of each hourly
  // run's million-client demand, then the stitched day-long outage.
  std::printf("%-34s  clients fresh-served/hour: ", "");
  for (const auto& round : rounds) {
    const double fraction = round.client_availability.fresh_fraction;
    std::printf("%3.0f%% ", 100.0 * fraction);
  }
  const auto day = DayAvailability(rounds);
  std::printf("\n%-34s  day: %.1f%% fresh", "", 100.0 * day.fresh_fraction);
  if (day.hard_down_seconds > 0.0) {
    std::printf(", HARD DOWN %.1f h from t = %.1f h", day.hard_down_seconds / 3600.0,
                day.hard_down_start_seconds / 3600.0);
  } else if (day.outage_seconds > 0.0) {
    std::printf(", degraded (stale) for %.1f h", day.outage_seconds / 3600.0);
  } else {
    std::printf(", no client-visible outage");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Network availability under hourly attacks (%d hours simulated)\n", kHours);
  std::printf("'+' = run succeeded / network up, 'x' = run failed, '!' = network down\n\n");

  torscenario::ScenarioRunner runner;

  // The attacker starts flooding at hour 2 and never stops.
  std::vector<torscenario::ScenarioResult> current_rounds;
  std::vector<torscenario::ScenarioResult> icps_rounds;
  for (int hour = 0; hour < kHours; ++hour) {
    const bool attacked = hour >= 2;
    current_rounds.push_back(RunHour(runner, "current", attacked));
    icps_rounds.push_back(RunHour(runner, "icps", attacked));
    std::fflush(stdout);
  }
  PrintTimeline("Current, attack from hour 2:", current_rounds);
  std::printf("\n");
  PrintTimeline("Ours (ICPS), attack from hour 2:", icps_rounds);

  // What the deployed consensus-health monitor (Table 1's mitigation) sees
  // during the first attacked hour.
  std::printf("\nHealth-monitor alerts, hour 2 (current protocol):\n");
  for (const auto& alert : current_rounds[2].health_alerts) {
    std::printf("  [%s] %s\n", tordir::HealthAlertName(alert.kind), alert.detail.c_str());
  }

  std::printf("\nThe deployed protocol loses every attacked run; three hours after the first\n");
  std::printf("loss, clients have no valid consensus left and Tor is down — for as long as\n");
  std::printf("the attacker keeps paying ~$0.074/hour. The partial-synchrony protocol\n");
  std::printf("completes each run after the 5-minute flood ends, so the network never goes\n");
  std::printf("down and every client fetch is served fresh.\n");
  return 0;
}
