// The §2.1 arithmetic that makes the attack catastrophic: consensus documents
// are valid for three hours and generated hourly, so an attacker who breaks
// every hourly run (five minutes of flooding each) takes the whole network
// down three hours after the first broken run — and keeps it down for
// $53.28/month. This example simulates a day of hourly runs under different
// protocols/attack policies and prints the availability timeline.
//
//   ./build/examples/outage_timeline
#include <cstdio>
#include <memory>
#include <string>

#include "src/attack/ddos.h"
#include "src/attack/schedule.h"
#include "src/scenario/runner.h"
#include "src/tordir/freshness.h"

namespace {

// Simulates one hourly run: the attacker floods 5 authorities for the first
// five minutes of the run (if attacking this hour). Every hourly run shares
// the caller's runner, and with it the generated population and votes.
bool RunHour(torscenario::ScenarioRunner& runner, const std::string& protocol, bool attacked) {
  torscenario::ScenarioSpec spec;
  spec.name = "outage_timeline";
  spec.protocol = protocol;
  spec.relay_count = 2000;
  if (attacked) {
    torattack::AttackWindow window;
    window.targets = torattack::FirstTargets(5);
    window.start = 0;
    window.end = torbase::Minutes(5);
    window.available_bps = torattack::kUnderAttackBps;
    spec.attack = std::make_shared<torattack::WindowedAttack>(
        std::vector<torattack::AttackWindow>{window});
  }
  return runner.Run(spec).succeeded;
}

void PrintTimeline(const char* label, const std::vector<bool>& runs) {
  const auto timeline = tordir::AnalyzeAvailability(runs);
  std::printf("%-34s runs: ", label);
  for (bool ok : runs) {
    std::printf("%c", ok ? '+' : 'x');
  }
  std::printf("\n%-34s  net: ", "");
  for (bool up : timeline.network_up) {
    std::printf("%c", up ? '+' : '!');
  }
  if (timeline.first_down_hour.has_value()) {
    std::printf("   DOWN from hour %zu (%zu h total)\n", *timeline.first_down_hour,
                timeline.hours_down);
  } else {
    std::printf("   network up throughout\n");
  }
}

}  // namespace

int main() {
  std::printf("Network availability under hourly attacks (12 hours simulated)\n");
  std::printf("'+' = run succeeded / network up, 'x' = run failed, '!' = network down\n\n");

  constexpr int kHours = 12;
  torscenario::ScenarioRunner runner;

  // The attacker starts flooding at hour 2 and never stops.
  std::vector<bool> current_runs;
  std::vector<bool> icps_runs;
  for (int hour = 0; hour < kHours; ++hour) {
    const bool attacked = hour >= 2;
    current_runs.push_back(RunHour(runner, "current", attacked));
    icps_runs.push_back(RunHour(runner, "icps", attacked));
    std::fflush(stdout);
  }
  PrintTimeline("Current, attack from hour 2:", current_runs);
  std::printf("\n");
  PrintTimeline("Ours (ICPS), attack from hour 2:", icps_runs);

  std::printf("\nThe deployed protocol loses every attacked run; three hours after the first\n");
  std::printf("loss, clients have no valid consensus left and Tor is down — for as long as\n");
  std::printf("the attacker keeps paying ~$0.074/hour. The partial-synchrony protocol\n");
  std::printf("completes each run after the 5-minute flood ends, so the network never goes\n");
  std::printf("down.\n");
  return 0;
}
