// Side-by-side demonstration of the mitigation (§5/§6, Figure 11): the same
// five-minute DDoS that kills the deployed protocol only *delays* the
// partial-synchrony protocol, which produces a consensus seconds after
// connectivity returns. Each run is the same ScenarioSpec with a different
// protocol name — the workload is generated once.
//
//   ./build/examples/partial_synchrony_demo
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/attack/ddos.h"
#include "src/attack/schedule.h"
#include "src/protocols/directory_protocol.h"
#include "src/scenario/runner.h"

namespace {

void RunOne(torscenario::ScenarioRunner& runner, const torscenario::ScenarioSpec& base,
            const std::string& protocol, torbase::TimePoint attack_end) {
  torscenario::ScenarioSpec spec = base;
  spec.protocol = protocol;
  const auto result = runner.Run(spec);
  std::printf("  %-12s : ",
              std::string(torproto::GetProtocol(protocol).display_name()).c_str());
  if (result.succeeded) {
    const double after = result.finish_time_seconds - torbase::ToSeconds(attack_end);
    std::printf("valid consensus %.1f s after the attack ended (%u/9 authorities)\n", after,
                result.valid_count);
  } else {
    std::printf("FAILED — next chance is the rerun ~30 min later (2100 s total)\n");
  }
}

}  // namespace

int main() {
  std::printf("Partial synchrony vs. a 5-minute DDoS (4,000 relays)\n");
  std::printf("====================================================\n\n");
  std::printf("Attack: 5 of 9 authorities fully offline during [0, 5 min),\n");
  std::printf("network restored to 250 Mbit/s afterwards (the Figure 11 scenario).\n\n");

  torattack::AttackWindow attack;
  attack.targets = torattack::FirstTargets(5);
  attack.start = 0;
  attack.end = torbase::Minutes(5);
  attack.available_bps = 0.0;

  torscenario::ScenarioSpec base;
  base.name = "partial_synchrony_demo";
  base.relay_count = 4000;
  base.attack = std::make_shared<torattack::WindowedAttack>(
      std::vector<torattack::AttackWindow>{attack});

  torscenario::ScenarioRunner runner;
  for (const std::string& protocol : {std::string("current"), std::string("synchronous"),
                                      std::string("icps")}) {
    RunOne(runner, base, protocol, attack.end);
  }

  std::printf("\nWhy: the lock-step protocols bind vote transfers to fixed 150 s rounds, so\n");
  std::printf("a synchrony violation during the vote rounds is unrecoverable within the run.\n");
  std::printf("ICPS separates dissemination (arbitrary delay) from agreement (view-based\n");
  std::printf("HotStuff), so queued documents drain when the attack ends and the next view\n");
  std::printf("decides within seconds.\n");
  return 0;
}
