// Side-by-side demonstration of the mitigation (§5/§6, Figure 11): the same
// five-minute DDoS that kills the deployed protocol only *delays* the
// partial-synchrony protocol, which produces a consensus seconds after
// connectivity returns.
//
//   ./build/examples/partial_synchrony_demo
#include <cstdio>

#include "src/attack/ddos.h"
#include "src/metrics/experiment.h"

namespace {

void RunOne(tormetrics::ProtocolKind kind, const torattack::AttackWindow& attack) {
  tormetrics::ExperimentConfig config;
  config.kind = kind;
  config.relay_count = 4000;
  config.attacks = {attack};
  const auto result = tormetrics::RunExperiment(config);
  std::printf("  %-12s : ", tormetrics::ProtocolName(kind));
  if (result.succeeded) {
    const double after = result.finish_time_seconds - torbase::ToSeconds(attack.end);
    std::printf("valid consensus %.1f s after the attack ended (%u/9 authorities)\n", after,
                result.valid_count);
  } else {
    std::printf("FAILED — next chance is the rerun ~30 min later (2100 s total)\n");
  }
}

}  // namespace

int main() {
  std::printf("Partial synchrony vs. a 5-minute DDoS (4,000 relays)\n");
  std::printf("====================================================\n\n");
  std::printf("Attack: 5 of 9 authorities fully offline during [0, 5 min),\n");
  std::printf("network restored to 250 Mbit/s afterwards (the Figure 11 scenario).\n\n");

  torattack::AttackWindow attack;
  attack.targets = torattack::FirstTargets(5);
  attack.start = 0;
  attack.end = torbase::Minutes(5);
  attack.available_bps = 0.0;

  RunOne(tormetrics::ProtocolKind::kCurrent, attack);
  RunOne(tormetrics::ProtocolKind::kSynchronous, attack);
  RunOne(tormetrics::ProtocolKind::kIcps, attack);

  std::printf("\nWhy: the lock-step protocols bind vote transfers to fixed 150 s rounds, so\n");
  std::printf("a synchrony violation during the vote rounds is unrecoverable within the run.\n");
  std::printf("ICPS separates dissemination (arbitrary delay) from agreement (view-based\n");
  std::printf("HotStuff), so queued documents drain when the attack ends and the next view\n");
  std::printf("decides within seconds.\n");
  return 0;
}
