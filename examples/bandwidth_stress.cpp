// A miniature Figure 10: sweep the authorities' bandwidth for a fixed relay
// population and watch where each protocol stops producing consensus
// documents. The sweep is a list of ScenarioSpecs run through one
// ScenarioRunner, so the relay population and votes are generated once for
// the whole grid.
//
//   ./build/examples/bandwidth_stress [relay_count]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/protocols/directory_protocol.h"
#include "src/scenario/runner.h"

int main(int argc, char** argv) {
  const size_t relays = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 3000;
  std::printf("Bandwidth stress test at %zu relays (mini Figure 10)\n\n", relays);

  const std::vector<std::string> protocols = {"current", "synchronous", "icps"};
  std::vector<std::string> headers = {"Bandwidth (Mbit/s)"};
  for (const std::string& protocol : protocols) {
    headers.push_back(std::string(torproto::GetProtocol(protocol).display_name()));
  }

  torscenario::ScenarioRunner runner;
  torbase::Table table(std::move(headers));
  for (double bw : {100.0, 50.0, 20.0, 10.0, 5.0, 1.0, 0.5}) {
    std::vector<std::string> row = {torbase::Table::Num(bw, 1)};
    for (const std::string& protocol : protocols) {
      torscenario::ScenarioSpec spec;
      spec.name = "bandwidth_stress";
      spec.protocol = protocol;
      spec.relay_count = relays;
      spec.bandwidth_bps = bw * 1e6;
      const auto result = runner.Run(spec);
      row.push_back(result.succeeded ? torbase::Table::Num(result.latency_seconds, 1) + " s"
                                     : "fail");
      std::fflush(stdout);
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\nReading: latency of a successful run in seconds; 'fail' = no valid consensus.\n");
  std::printf("(population/votes generated %zu time(s) for %zu runs)\n",
              runner.workload_cache_misses(),
              runner.workload_cache_misses() + runner.workload_cache_hits());
  std::printf("The lock-step protocols hit their synchrony deadlines as bandwidth shrinks;\n");
  std::printf("the partial-synchrony protocol only slows down.\n");
  return 0;
}
