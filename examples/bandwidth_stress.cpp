// A miniature Figure 10: sweep the authorities' bandwidth for a fixed relay
// population and watch where each protocol stops producing consensus
// documents.
//
//   ./build/examples/bandwidth_stress [relay_count]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/common/table.h"
#include "src/metrics/experiment.h"

int main(int argc, char** argv) {
  const size_t relays = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 3000;
  std::printf("Bandwidth stress test at %zu relays (mini Figure 10)\n\n", relays);

  torbase::Table table({"Bandwidth (Mbit/s)", "Current", "Synchronous", "Ours"});
  for (double bw : {100.0, 50.0, 20.0, 10.0, 5.0, 1.0, 0.5}) {
    std::vector<std::string> row = {torbase::Table::Num(bw, 1)};
    for (auto kind : {tormetrics::ProtocolKind::kCurrent, tormetrics::ProtocolKind::kSynchronous,
                      tormetrics::ProtocolKind::kIcps}) {
      tormetrics::ExperimentConfig config;
      config.kind = kind;
      config.relay_count = relays;
      config.bandwidth_bps = bw * 1e6;
      const auto result = tormetrics::RunExperiment(config);
      row.push_back(result.succeeded ? torbase::Table::Num(result.latency_seconds, 1) + " s"
                                     : "fail");
      std::fflush(stdout);
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\nReading: latency of a successful run in seconds; 'fail' = no valid consensus.\n");
  std::printf("The lock-step protocols hit their synchrony deadlines as bandwidth shrinks;\n");
  std::printf("the partial-synchrony protocol only slows down.\n");
  return 0;
}
