// Consensus-health monitoring (Table 1: the emergency fix by Luo et al. that
// was applied to Tor's consensus-health monitor [35]). The monitor ingests
// what an observer can see of a directory round — which authorities' votes
// each authority received, and the signed consensus documents published — and
// raises alerts for the observable attack signatures:
//
//   * kMissingVotes      — a majority of authorities missing the same senders'
//                          votes (the §4 DDoS signature, Figure 1)
//   * kVoteEquivocation  — one authority's vote seen with two digests
//   * kConsensusFork     — two differently-signed consensus documents in one
//                          period (the Luo et al. equivocation attack)
//   * kNoConsensus       — nobody produced a valid consensus this period
//
// Detection does not *fix* the protocol (the paper's point), but it is the
// deployed mitigation for the current network and gives operators the Fig. 1
// style evidence this repository reproduces.
#ifndef SRC_TORDIR_HEALTH_MONITOR_H_
#define SRC_TORDIR_HEALTH_MONITOR_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/crypto/digest.h"
#include "src/tordir/vote.h"

namespace tordir {

enum class HealthAlertKind {
  kMissingVotes,
  kVoteEquivocation,
  kConsensusFork,
  kNoConsensus,
};

const char* HealthAlertName(HealthAlertKind kind);

struct HealthAlert {
  HealthAlertKind kind;
  // Authorities implicated (senders whose votes were missing / the
  // equivocator / signers of forked documents).
  std::vector<torbase::NodeId> authorities;
  std::string detail;

  // ScenarioResult carries alerts, so they participate in the parallel
  // sweep's BitIdentical equivalence.
  bool operator==(const HealthAlert&) const = default;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(uint32_t authority_count) : authority_count_(authority_count) {}

  // Records that `observer` received a vote from `sender` with `digest`.
  void RecordVote(torbase::NodeId observer, torbase::NodeId sender,
                  const torcrypto::Digest256& digest);

  // Records a consensus document an authority ended the period with
  // (`digest` of the unsigned body); nullopt when it failed to produce one.
  void RecordConsensus(torbase::NodeId authority,
                       std::optional<torcrypto::Digest256> digest);

  // Evaluates the period and returns all alerts (empty = healthy).
  std::vector<HealthAlert> Analyze() const;

  void Reset();

 private:
  uint32_t authority_count_;
  // sender -> set of digests observed for its vote (>=2 means equivocation).
  std::map<torbase::NodeId, std::set<torcrypto::Digest256>> vote_digests_;
  // observer -> senders it received votes from.
  std::map<torbase::NodeId, std::set<torbase::NodeId>> received_from_;
  // authority -> consensus digest (if it produced one).
  std::map<torbase::NodeId, std::optional<torcrypto::Digest256>> consensus_;
};

}  // namespace tordir

#endif  // SRC_TORDIR_HEALTH_MONITOR_H_
