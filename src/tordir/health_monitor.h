// Consensus-health monitoring (Table 1: the emergency fix by Luo et al. that
// was applied to Tor's consensus-health monitor [35]). The monitor ingests
// what an observer can see of a directory round — which authorities' votes
// each authority received (and rejected), and the signed consensus documents
// published — and raises alerts for the observable attack signatures:
//
//   * kMissingVotes        — a majority of authorities missing the same
//                            senders' votes (the §4 DDoS signature, Figure 1)
//   * kVoteEquivocation    — one authority's vote seen with two digests
//   * kConsensusFork       — two differently-signed consensus documents in
//                            one period (the Luo et al. equivocation attack)
//   * kNoConsensus         — nobody produced a valid consensus this period
//   * kMalformedVote       — an authority put unparseable or non-canonical
//                            bytes on the wire (rejected at admission)
//   * kReplayedVote        — an authority re-sent a vote whose validity
//                            window had already closed (replay/stale
//                            signature)
//   * kBandwidthInflation  — an authority's vote claims a total relay
//                            bandwidth far above the median of its peers
//                            (the TorMult-style inflation attack)
//   * kDroppedMessages     — the network silently dropped directory messages
//                            whose links could never carry them (flooded or
//                            dead NICs) — the §4 flood made observable
//   * kSlowRecovery        — a multi-round timeline stayed degraded past the
//                            allowed number of rounds after its fault
//                            calendar cleared
//   * kHerdOverload        — the post-outage bootstrap retry herd peaked
//                            above the allowed fraction of the population
//
// The last two come from the *timeline* feed (RecordTimelineRound): a
// multi-round engine reports one observation per round and Analyze() scans
// the horizon for recovery pathologies no single round can see.
//
// Detection does not *fix* the protocol (the paper's point), but it is the
// deployed mitigation for the current network and gives operators the Fig. 1
// style evidence this repository reproduces.
#ifndef SRC_TORDIR_HEALTH_MONITOR_H_
#define SRC_TORDIR_HEALTH_MONITOR_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/crypto/digest.h"
#include "src/tordir/admission.h"
#include "src/tordir/vote.h"

namespace tordir {

enum class HealthAlertKind {
  kMissingVotes,
  kVoteEquivocation,
  kConsensusFork,
  kNoConsensus,
  kMalformedVote,
  kReplayedVote,
  kBandwidthInflation,
  kDroppedMessages,
  kSlowRecovery,
  kHerdOverload,
};

const char* HealthAlertName(HealthAlertKind kind);

struct HealthAlert {
  HealthAlertKind kind;
  // Authorities implicated (senders whose votes were missing / the
  // equivocator / signers of forked documents).
  std::vector<torbase::NodeId> authorities;
  std::string detail;
  // Simulation time (seconds) of the earliest evidence supporting the alert:
  // the second distinct digest for equivocation, the first rejected message
  // for malformed/replayed votes, the first sighting of an inflated vote.
  // -1.0 when the alert is about an *absence* (missing votes, no consensus)
  // or predates evidence timestamps (legacy RecordVote feeds).
  double first_evidence_seconds = -1.0;

  // ScenarioResult carries alerts, so they participate in the parallel
  // sweep's BitIdentical equivalence.
  bool operator==(const HealthAlert&) const = default;
};

// Everything an observer learns from one *admitted* vote: who sent it, the
// digest of its canonical bytes, when it first arrived, and the total relay
// bandwidth it claims (for inflation detection).
struct VoteObservation {
  torbase::NodeId sender = torbase::kNoNode;
  torcrypto::Digest256 digest;
  double at_seconds = 0.0;
  uint64_t total_bandwidth = 0;
};

// What a multi-round timeline engine observed of one round, fed through
// RecordTimelineRound so Analyze() can scan the whole horizon: which rounds
// the fault calendar touched, whether clients ended the round served fresh,
// and how large the bootstrap retry backlog grew relative to the population.
struct TimelineRoundObservation {
  uint64_t round = 0;
  // The calendar injected a fault overlapping this round (attack window,
  // crash/recovery, byzantine behavior).
  bool faulted = false;
  // Clients were being served a *fresh* document at the round boundary.
  bool fresh_at_end = false;
  // Peak blocked-bootstrap backlog this round / population size (0 when the
  // engine ran without a client plane).
  double peak_backlog_fraction = 0.0;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(uint32_t authority_count) : authority_count_(authority_count) {}

  // Records that `observer` received a vote from `sender` with `digest`.
  // Legacy feed: equivalent to RecordObservation with no timestamp or
  // bandwidth evidence.
  void RecordVote(torbase::NodeId observer, torbase::NodeId sender,
                  const torcrypto::Digest256& digest);

  // Records an admitted vote with full evidence.
  void RecordObservation(torbase::NodeId observer, const VoteObservation& observation);

  // Records that `observer` rejected a vote attributed to `sender` at
  // admission. Rejected votes do NOT count as received for the missing-votes
  // check — an authority whose votes are rejected everywhere is missing from
  // aggregation just as surely as one that never sent them.
  void RecordReject(torbase::NodeId observer, torbase::NodeId sender, VoteRejectReason reason,
                    double at_seconds);

  // Records a consensus document an authority ended the period with
  // (`digest` of the unsigned body); nullopt when it failed to produce one.
  void RecordConsensus(torbase::NodeId authority,
                       std::optional<torcrypto::Digest256> digest);

  // Records `count` directory messages the network dropped because their
  // links could never carry them (flooded or dead NICs). Accumulates.
  void RecordUndeliverable(uint64_t count);

  // Timeline feed: one observation per round of a multi-round horizon, in
  // round order. Analyze() raises kSlowRecovery when serving stays degraded
  // more than slow_recovery_rounds past the last faulted round, and
  // kHerdOverload when any round's backlog fraction exceeds
  // herd_overload_fraction.
  void RecordTimelineRound(const TimelineRoundObservation& observation);
  void set_slow_recovery_rounds(uint32_t rounds) { slow_recovery_rounds_ = rounds; }
  void set_herd_overload_fraction(double fraction) { herd_overload_fraction_ = fraction; }

  // Evaluates the period and returns all alerts (empty = healthy).
  std::vector<HealthAlert> Analyze() const;

  void Reset();

 private:
  struct SenderStat {
    // digest -> earliest time this digest was seen (>=2 entries means
    // equivocation; the second-earliest time is the evidence instant).
    std::map<torcrypto::Digest256, double> first_seen;
    uint64_t max_total_bandwidth = 0;
    double first_observed_seconds = -1.0;
    bool has_bandwidth = false;
  };
  struct RejectStat {
    uint32_t count = 0;
    double earliest_seconds = -1.0;
  };

  uint32_t authority_count_;
  // sender -> everything observed about its vote(s).
  std::map<torbase::NodeId, SenderStat> senders_;
  // observer -> senders it received admitted votes from.
  std::map<torbase::NodeId, std::set<torbase::NodeId>> received_from_;
  // sender -> reason -> rejection evidence.
  std::map<torbase::NodeId, std::map<VoteRejectReason, RejectStat>> rejects_;
  // authority -> consensus digest (if it produced one).
  std::map<torbase::NodeId, std::optional<torcrypto::Digest256>> consensus_;

  // Undeliverable-message drops reported for this period (or horizon).
  uint64_t undeliverable_ = 0;

  // Timeline feed, in record order; empty outside multi-round analyses.
  std::vector<TimelineRoundObservation> timeline_rounds_;
  // A recovery is "slow" when clients are still not served fresh this many
  // full rounds after the calendar's last faulted round.
  uint32_t slow_recovery_rounds_ = 1;
  // A retry herd is an overload when blocked bootstraps exceed this fraction
  // of the whole population.
  double herd_overload_fraction_ = 0.25;
};

}  // namespace tordir

#endif  // SRC_TORDIR_HEALTH_MONITOR_H_
