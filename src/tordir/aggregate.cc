#include "src/tordir/aggregate.h"

#include <algorithm>
#include <cstdint>

#include "src/common/stats.h"

namespace tordir {
namespace {

// A relay as listed by one vote, tagged with the voting authority.
struct Listing {
  torbase::NodeId authority;
  const RelayStatus* status;
};

// Reusable per-relay counting scratch: every container below is cleared (not
// freed) between relays, so after the first few relays the merge performs no
// heap allocations at all. Sizes are bounded by the authority count a (~9 in
// the paper, ≤ a few dozen in any sweep), never by the relay count n.
struct AggregateScratch {
  std::vector<Listing> listings;

  // Distinct popular-vote candidates for one interned-string field.
  struct ValueGroup {
    InternedString value;
    uint32_t count = 0;
    torbase::NodeId min_authority = 0;  // representative owner under aliasing
  };
  std::vector<ValueGroup> groups;

  // Bandwidth median scratch.
  std::vector<uint64_t> bandwidths;

  // Endpoint-tuple popular vote.
  struct EndpointGroup {
    const RelayStatus* representative = nullptr;
    uint32_t count = 0;
    torbase::NodeId best_authority = 0;
  };
  std::vector<EndpointGroup> endpoints;
};

// One merge cursor per vote. `pos` walks the vote's fingerprint-sorted relay
// list exactly once across the whole aggregation.
struct Cursor {
  const RelayStatus* pos = nullptr;
  const RelayStatus* end = nullptr;
  torbase::NodeId authority = 0;
};

// Popular vote over one interned-string field. Counting is pure id equality
// (hash-consing makes that byte equality); `cmp` is consulted only to merge
// comparator-equivalent aliases (e.g. "0.08" vs "0.8" under CompareVersions —
// the alias group keeps the lowest listing authority's spelling, an
// order-independent rule) and to break count ties towards the largest value.
template <typename Cmp>
InternedString PopularString(const std::vector<Listing>& listings,
                             InternedString RelayStatus::*field, Cmp cmp,
                             std::vector<AggregateScratch::ValueGroup>& groups) {
  groups.clear();
  for (const Listing& listing : listings) {
    const InternedString value = listing.status->*field;
    bool found = false;
    for (auto& group : groups) {
      if (group.value == value) {
        ++group.count;
        group.min_authority = std::min(group.min_authority, listing.authority);
        found = true;
        break;
      }
    }
    if (!found) {
      groups.push_back({value, 1, listing.authority});
    }
  }
  // Merge alias groups: distinct interned values the comparator considers
  // equal. Nonexistent in generated workloads, so the quadratic sweep over
  // ≤ a distinct values is effectively free.
  for (size_t i = 0; i + 1 < groups.size(); ++i) {
    for (size_t j = groups.size(); j-- > i + 1;) {
      if (cmp(groups[i].value.view(), groups[j].value.view()) == 0) {
        groups[i].count += groups[j].count;
        if (groups[j].min_authority < groups[i].min_authority) {
          groups[i].min_authority = groups[j].min_authority;
          groups[i].value = groups[j].value;
        }
        groups.erase(groups.begin() + static_cast<ptrdiff_t>(j));
      }
    }
  }
  const AggregateScratch::ValueGroup* best = &groups.front();
  for (const auto& group : groups) {
    if (group.count > best->count ||
        (group.count == best->count && cmp(group.value.view(), best->value.view()) > 0)) {
      best = &group;
    }
  }
  return best->value;
}

int CompareLexicographic(std::string_view a, std::string_view b) { return a.compare(b); }

// Orders endpoint tuples the way the original std::map key
// (address, or_port, dir_port, published, microdesc_digest) did.
bool EndpointLess(const RelayStatus& a, const RelayStatus& b) {
  if (const int c = a.address.view().compare(b.address.view()); c != 0) {
    return c < 0;
  }
  if (a.or_port != b.or_port) {
    return a.or_port < b.or_port;
  }
  if (a.dir_port != b.dir_port) {
    return a.dir_port < b.dir_port;
  }
  if (a.published != b.published) {
    return a.published < b.published;
  }
  return a.microdesc_digest < b.microdesc_digest;
}

// Aggregates one relay's listings (Fig. 2 rules) into `out`, reusing
// `scratch` so the steady state allocates nothing.
void AggregateRelay(const std::vector<Listing>& listings, AggregateScratch& scratch,
                    RelayStatus& out) {
  out.fingerprint = listings.front().status->fingerprint;

  // Nickname: from the listing vote with the largest authority ID (Fig. 2).
  {
    const Listing* best = &listings.front();
    for (const auto& listing : listings) {
      if (listing.authority > best->authority) {
        best = &listing;
      }
    }
    out.nickname = best->status->nickname;
  }

  // Flags: per-flag strict majority among listing votes; ties unset.
  const size_t listing_count = listings.size();
  out.flags = 0;
  for (RelayFlag flag : kRelayFlagOrder) {
    size_t set_count = 0;
    for (const auto& listing : listings) {
      if (listing.status->HasFlag(flag)) {
        ++set_count;
      }
    }
    out.SetFlag(flag, 2 * set_count > listing_count);
  }

  // Version / protocols: popular vote, tie -> largest by version-aware
  // comparison. Exit policy: popular vote, tie -> lexicographically larger.
  out.version = PopularString(listings, &RelayStatus::version, CompareVersions, scratch.groups);
  out.protocols =
      PopularString(listings, &RelayStatus::protocols, CompareVersions, scratch.groups);
  out.exit_policy =
      PopularString(listings, &RelayStatus::exit_policy, CompareLexicographic, scratch.groups);

  // Bandwidth: median of Measured values where present, else of claimed.
  {
    scratch.bandwidths.clear();
    for (const auto& listing : listings) {
      if (listing.status->measured.has_value()) {
        scratch.bandwidths.push_back(*listing.status->measured);
      }
    }
    if (scratch.bandwidths.empty()) {
      for (const auto& listing : listings) {
        scratch.bandwidths.push_back(listing.status->bandwidth);
      }
    }
    out.bandwidth = torbase::MedianLowInPlace(scratch.bandwidths);
    out.measured.reset();
  }

  // Endpoint tuple (address, ports, published, microdesc digest): popular vote
  // over the whole tuple; tie -> value from the largest authority ID. Groups
  // from distinct authorities are disjoint, so (count, max authority) is a
  // total tie-break.
  {
    scratch.endpoints.clear();
    for (const auto& listing : listings) {
      const RelayStatus& s = *listing.status;
      bool found = false;
      for (auto& group : scratch.endpoints) {
        const RelayStatus& r = *group.representative;
        if (r.address == s.address && r.or_port == s.or_port && r.dir_port == s.dir_port &&
            r.published == s.published && r.microdesc_digest == s.microdesc_digest) {
          ++group.count;
          group.best_authority = std::max(group.best_authority, listing.authority);
          found = true;
          break;
        }
      }
      if (!found) {
        scratch.endpoints.push_back({&s, 1, listing.authority});
      }
    }
    const AggregateScratch::EndpointGroup* best = &scratch.endpoints.front();
    for (const auto& group : scratch.endpoints) {
      if (group.count > best->count ||
          (group.count == best->count && group.best_authority > best->best_authority) ||
          // A full tie (same count AND same max authority) only arises when
          // one vote lists a fingerprint twice; resolve towards the smallest
          // endpoint tuple so the result stays independent of input order,
          // exactly as the original tuple-keyed map iteration did.
          (group.count == best->count && group.best_authority == best->best_authority &&
           EndpointLess(*group.representative, *best->representative))) {
        best = &group;
      }
    }
    const RelayStatus& r = *best->representative;
    out.address = r.address;
    out.or_port = r.or_port;
    out.dir_port = r.dir_port;
    out.published = r.published;
    out.microdesc_digest = r.microdesc_digest;
  }
}

}  // namespace

ConsensusDocument ComputeConsensus(const std::vector<const VoteDocument*>& votes,
                                   const AggregationParams& params) {
  ConsensusDocument consensus;
  consensus.vote_count = static_cast<uint32_t>(votes.size());
  if (votes.empty()) {
    return consensus;
  }

  // Schedule metadata: medians across votes, robust against outlier clocks.
  {
    std::vector<uint64_t> scratch;
    scratch.reserve(votes.size());
    const auto median_of = [&votes, &scratch](uint64_t VoteDocument::*field) {
      scratch.clear();
      for (const auto* vote : votes) {
        scratch.push_back(vote->*field);
      }
      return torbase::MedianLowInPlace(scratch);
    };
    consensus.valid_after = median_of(&VoteDocument::valid_after);
    consensus.fresh_until = median_of(&VoteDocument::fresh_until);
    consensus.valid_until = median_of(&VoteDocument::valid_until);
  }

  // K-way merge over the votes' fingerprint-sorted relay lists: O(n·a) with a
  // linear min-scan over the ≤ a cursors per output relay, zero map nodes.
  // Votes are sorted by construction (SortRelays / the generator / the
  // serializer all maintain fingerprint order); a caller handing us an
  // unsorted vote gets a sorted shadow copy so the result stays
  // order-independent in every sense.
  std::vector<std::vector<RelayStatus>> sorted_shadows;
  std::vector<Cursor> cursors;
  cursors.reserve(votes.size());
  size_t total_listings = 0;
  for (const auto* vote : votes) {
    Cursor cursor;
    if (std::is_sorted(vote->relays.begin(), vote->relays.end(), RelayOrder)) {
      cursor.pos = vote->relays.data();
      cursor.end = vote->relays.data() + vote->relays.size();
    } else {
      sorted_shadows.emplace_back(vote->relays);
      std::sort(sorted_shadows.back().begin(), sorted_shadows.back().end(), RelayOrder);
      cursor.pos = sorted_shadows.back().data();
      cursor.end = cursor.pos + sorted_shadows.back().size();
    }
    cursor.authority = vote->authority;
    total_listings += vote->relays.size();
    cursors.push_back(cursor);
  }

  const size_t threshold = params.InclusionThreshold(votes.size());
  // Upper bound on the output size: every included relay consumes at least
  // `threshold` listings. One reservation, no per-relay growth.
  consensus.relays.reserve(std::min(total_listings, total_listings / threshold + 1));

  AggregateScratch scratch;
  scratch.listings.reserve(votes.size() + 1);
  scratch.groups.reserve(votes.size() + 1);
  scratch.bandwidths.reserve(votes.size() + 1);
  scratch.endpoints.reserve(votes.size() + 1);

  for (;;) {
    const Fingerprint* min_fp = nullptr;
    for (const Cursor& cursor : cursors) {
      if (cursor.pos != cursor.end &&
          (min_fp == nullptr || cursor.pos->fingerprint < *min_fp)) {
        min_fp = &cursor.pos->fingerprint;
      }
    }
    if (min_fp == nullptr) {
      break;  // all cursors exhausted
    }
    const Fingerprint fp = *min_fp;  // copy: the owning cursor advances below
    scratch.listings.clear();
    for (Cursor& cursor : cursors) {
      while (cursor.pos != cursor.end && cursor.pos->fingerprint == fp) {
        scratch.listings.push_back({cursor.authority, cursor.pos});
        ++cursor.pos;
      }
    }
    if (scratch.listings.size() >= threshold) {
      consensus.relays.emplace_back();
      AggregateRelay(scratch.listings, scratch, consensus.relays.back());
    }
  }
  // The merge emits fingerprints in ascending order: already canonical.
  return consensus;
}

ConsensusDocument ComputeConsensus(const std::vector<VoteDocument>& votes,
                                   const AggregationParams& params) {
  std::vector<const VoteDocument*> ptrs;
  ptrs.reserve(votes.size());
  for (const auto& vote : votes) {
    ptrs.push_back(&vote);
  }
  return ComputeConsensus(ptrs, params);
}

}  // namespace tordir
