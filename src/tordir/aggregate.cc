#include "src/tordir/aggregate.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "src/common/stats.h"

namespace tordir {
namespace {

// A relay as listed by one vote, tagged with the voting authority.
struct Listing {
  torbase::NodeId authority;
  const RelayStatus* status;
};

// Picks the most frequent value from (value, authority) pairs; ties are broken
// by `prefer_larger` over the value ordering supplied by `less`.
template <typename T, typename Less>
T PopularVote(std::vector<std::pair<T, torbase::NodeId>> entries, Less less) {
  std::map<T, size_t, Less> counts(less);
  for (const auto& [value, authority] : entries) {
    counts[value] += 1;
  }
  size_t best_count = 0;
  for (const auto& [value, count] : counts) {
    best_count = std::max(best_count, count);
  }
  // std::map iterates in ascending order, so taking the last maximal entry
  // yields the largest value among the tied ones.
  T best{};
  for (const auto& [value, count] : counts) {
    if (count == best_count) {
      best = value;
    }
  }
  return best;
}

RelayStatus AggregateRelay(const std::vector<Listing>& listings) {
  RelayStatus out;
  out.fingerprint = listings.front().status->fingerprint;

  // Nickname: from the listing vote with the largest authority ID (Fig. 2).
  {
    const Listing* best = &listings.front();
    for (const auto& listing : listings) {
      if (listing.authority > best->authority) {
        best = &listing;
      }
    }
    out.nickname = best->status->nickname;
  }

  // Flags: per-flag strict majority among listing votes; ties unset.
  const size_t listing_count = listings.size();
  for (RelayFlag flag : kRelayFlagOrder) {
    size_t set_count = 0;
    for (const auto& listing : listings) {
      if (listing.status->HasFlag(flag)) {
        ++set_count;
      }
    }
    out.SetFlag(flag, 2 * set_count > listing_count);
  }

  // Version: popular vote, tie -> largest version.
  {
    std::vector<std::pair<std::string, torbase::NodeId>> entries;
    for (const auto& listing : listings) {
      entries.emplace_back(listing.status->version, listing.authority);
    }
    out.version = PopularVote(std::move(entries), [](const std::string& a, const std::string& b) {
      return CompareVersions(a, b) < 0;
    });
  }

  // Protocols: popular vote, tie -> largest by version-aware comparison.
  {
    std::vector<std::pair<std::string, torbase::NodeId>> entries;
    for (const auto& listing : listings) {
      entries.emplace_back(listing.status->protocols, listing.authority);
    }
    out.protocols = PopularVote(std::move(entries), [](const std::string& a, const std::string& b) {
      return CompareVersions(a, b) < 0;
    });
  }

  // Exit policy: popular vote, tie -> lexicographically larger.
  {
    std::vector<std::pair<std::string, torbase::NodeId>> entries;
    for (const auto& listing : listings) {
      entries.emplace_back(listing.status->exit_policy, listing.authority);
    }
    out.exit_policy = PopularVote(std::move(entries), std::less<std::string>());
  }

  // Bandwidth: median of Measured values where present, else of claimed.
  {
    std::vector<uint64_t> measured;
    std::vector<uint64_t> claimed;
    for (const auto& listing : listings) {
      claimed.push_back(listing.status->bandwidth);
      if (listing.status->measured.has_value()) {
        measured.push_back(*listing.status->measured);
      }
    }
    out.bandwidth =
        torbase::MedianLow(measured.empty() ? std::move(claimed) : std::move(measured));
    out.measured.reset();
  }

  // Endpoint tuple (address, ports, published, microdesc digest): popular vote
  // over the whole tuple; tie -> value from the largest authority ID.
  {
    using Endpoint = std::tuple<std::string, uint16_t, uint16_t, uint64_t,
                                std::array<uint8_t, 32>>;
    std::map<Endpoint, std::pair<size_t, torbase::NodeId>> counts;
    for (const auto& listing : listings) {
      const RelayStatus& s = *listing.status;
      Endpoint key{s.address, s.or_port, s.dir_port, s.published, s.microdesc_digest};
      auto& entry = counts[key];
      entry.first += 1;
      entry.second = std::max(entry.second, listing.authority);
    }
    const Endpoint* best = nullptr;
    size_t best_count = 0;
    torbase::NodeId best_auth = 0;
    for (const auto& [key, entry] : counts) {
      if (entry.first > best_count ||
          (entry.first == best_count && entry.second > best_auth)) {
        best = &key;
        best_count = entry.first;
        best_auth = entry.second;
      }
    }
    out.address = std::get<0>(*best);
    out.or_port = std::get<1>(*best);
    out.dir_port = std::get<2>(*best);
    out.published = std::get<3>(*best);
    out.microdesc_digest = std::get<4>(*best);
  }

  return out;
}

}  // namespace

ConsensusDocument ComputeConsensus(const std::vector<const VoteDocument*>& votes,
                                   const AggregationParams& params) {
  ConsensusDocument consensus;
  consensus.vote_count = static_cast<uint32_t>(votes.size());
  if (votes.empty()) {
    return consensus;
  }

  // Schedule metadata: medians across votes, robust against outlier clocks.
  {
    std::vector<uint64_t> va;
    std::vector<uint64_t> fu;
    std::vector<uint64_t> vu;
    for (const auto* vote : votes) {
      va.push_back(vote->valid_after);
      fu.push_back(vote->fresh_until);
      vu.push_back(vote->valid_until);
    }
    consensus.valid_after = torbase::MedianLow(std::move(va));
    consensus.fresh_until = torbase::MedianLow(std::move(fu));
    consensus.valid_until = torbase::MedianLow(std::move(vu));
  }

  // Group listings by fingerprint. Votes are sorted by fingerprint already,
  // but the map makes the result provably order-independent.
  std::map<Fingerprint, std::vector<Listing>> by_relay;
  for (const auto* vote : votes) {
    for (const auto& relay : vote->relays) {
      by_relay[relay.fingerprint].push_back(Listing{vote->authority, &relay});
    }
  }

  const size_t threshold = params.InclusionThreshold(votes.size());
  for (const auto& [fingerprint, listings] : by_relay) {
    if (listings.size() >= threshold) {
      consensus.relays.push_back(AggregateRelay(listings));
    }
  }
  // std::map iteration is already fingerprint-ordered.
  return consensus;
}

ConsensusDocument ComputeConsensus(const std::vector<VoteDocument>& votes,
                                   const AggregationParams& params) {
  std::vector<const VoteDocument*> ptrs;
  ptrs.reserve(votes.size());
  for (const auto& vote : votes) {
    ptrs.push_back(&vote);
  }
  return ComputeConsensus(ptrs, params);
}

}  // namespace tordir
