#include "src/tordir/dirspec.h"

#include <array>
#include <charconv>
#include <cstring>
#include <optional>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/serialize.h"
#include "src/crypto/sha256_tree.h"

namespace tordir {
namespace {

using torbase::BufferedTextSink;
using torbase::Result;
using torbase::Status;

// The one prefix-match idiom in this file (the parser used to mix three:
// a StartsWith helper, rfind(prefix, 0) == 0 and substr(0, n) ==).
bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

// --- streaming serializer ----------------------------------------------------
// Every Serialize*/Digest entry point drives the same templated writer over a
// sink: Serialize* uses a StringCursorSink (cursor into the pre-sized output
// string), the digests a BufferedTextSink in front of Sha256::Update — the
// serialized form of a digested document is never materialized. Fields format
// in place (digit pairs, SWAR hex, a canonical-flags table), so serializing
// an n-relay document performs O(1) heap allocations and digesting none.

struct DigestSinkBackend {
  torcrypto::Sha256& hash;
  void Write(const char* data, size_t n) { hash.Update(data, n); }
};

struct TreeDigestSinkBackend {
  torcrypto::Sha256TreeHasher& hash;
  void Write(const char* data, size_t n) { hash.Update(data, n); }
};

template <typename Sink>
void AppendU64(Sink& sink, uint64_t value) {
  char* scratch = sink.Scratch(20);
  const auto result = std::to_chars(scratch, scratch + 20, value);
  sink.Commit(static_cast<size_t>(result.ptr - scratch));
}

template <typename Sink>
void AppendHexLower(Sink& sink, std::span<const uint8_t> data) {
  char* scratch = sink.Scratch(data.size() * 2);
  torbase::HexEncodeTo(data, scratch);
  sink.Commit(data.size() * 2);
}

template <typename Sink>
void AppendHexUpper(Sink& sink, std::span<const uint8_t> data) {
  char* scratch = sink.Scratch(data.size() * 2);
  torbase::HexEncodeUpperTo(data, scratch);
  sink.Commit(data.size() * 2);
}

// Canonical flags text, both directions: every one of the 1024 flag masks
// renders to exactly one canonical "s"-line payload (FlagsToString order), and
// honest documents only ever carry canonical payloads. Pre-rendering the table
// turns the serializer's per-relay flag loop into one append and gives the
// parser an exact-match fast path that skips per-word flag lookups entirely.
class FlagsTable {
 public:
  static const FlagsTable& Get() {
    static const FlagsTable table;  // magic static: thread-safe lazy init
    return table;
  }

  std::string_view Text(uint16_t flags) const { return texts_[flags & kAllRelayFlags]; }

  // Mask for a canonical payload; nullopt for any other spelling (duplicate
  // flags, non-canonical order, stray spaces, unknown names) — callers fall
  // back to the word-by-word path. Open-addressing probe over a fixed table
  // (1024 entries in 4096 slots): one fast hash, a slot load or two, and one
  // final byte compare.
  std::optional<uint16_t> Mask(std::string_view text) const {
    uint32_t idx = static_cast<uint32_t>(torbase::QuickKey(text)) & kSlotMask;
    while (slots_[idx] != 0) {
      const uint16_t mask = static_cast<uint16_t>(slots_[idx] - 1);
      if (texts_[mask] == text) {
        return mask;
      }
      idx = (idx + 1) & kSlotMask;
    }
    return std::nullopt;
  }

 private:
  FlagsTable() {
    for (uint32_t mask = 0; mask < kMaskCount; ++mask) {
      texts_[mask] = FlagsToString(static_cast<uint16_t>(mask));
      uint32_t idx = static_cast<uint32_t>(torbase::QuickKey(texts_[mask])) & kSlotMask;
      while (slots_[idx] != 0) {
        idx = (idx + 1) & kSlotMask;
      }
      slots_[idx] = static_cast<uint16_t>(mask + 1);
    }
  }

  static constexpr uint32_t kMaskCount = kAllRelayFlags + 1;
  static constexpr uint32_t kSlotMask = 4 * kMaskCount - 1;  // 25% load factor
  std::array<std::string, kMaskCount> texts_;
  std::array<uint16_t, 4 * kMaskCount> slots_{};
};

// Appends `s` at `p` and advances it; tolerates empty views with null data.
inline void CopyTo(char*& p, std::string_view s) {
  if (!s.empty()) {
    std::memcpy(p, s.data(), s.size());
    p += s.size();
  }
}

// Inline decimal formatter (digit-pair table, written backwards into a stack
// scratch): the serializer emits 4-5 integers per relay and the out-of-line
// std::to_chars call was a top-three cost in the profile. Output bytes are
// identical to std::to_chars.
inline constexpr std::array<std::array<char, 2>, 100> kDigitPairs = [] {
  std::array<std::array<char, 2>, 100> pairs{};
  for (int i = 0; i < 100; ++i) {
    pairs[i] = {static_cast<char>('0' + i / 10), static_cast<char>('0' + i % 10)};
  }
  return pairs;
}();

inline void PutU64(char*& p, uint64_t value) {
  char tmp[20];
  char* t = tmp + sizeof(tmp);
  while (value >= 100) {
    const uint64_t pair = value % 100;
    value /= 100;
    t -= 2;
    std::memcpy(t, kDigitPairs[pair].data(), 2);
  }
  if (value >= 10) {
    t -= 2;
    std::memcpy(t, kDigitPairs[value].data(), 2);
  } else {
    *--t = static_cast<char>('0' + value);
  }
  const size_t digits = static_cast<size_t>(tmp + sizeof(tmp) - t);
  std::memcpy(p, t, digits);
  p += digits;
}

// Slow path for relay rows whose variable-width strings exceed the one-block
// scratch budget below: per-field appends, any sizes.
template <typename Sink>
void AppendRelayGeneric(Sink& sink, std::string_view nickname, std::string_view address,
                        std::string_view version, std::string_view protocols,
                        std::string_view exit_policy, std::string_view flags_text,
                        const RelayStatus& relay, bool include_measured) {
  sink.Append("r ");
  sink.Append(nickname);
  sink.Push(' ');
  AppendHexUpper(sink, relay.fingerprint);
  sink.Push(' ');
  // Descriptor digest stand-in: first 8 bytes of the microdesc digest. Real
  // entries carry a base64 digest of similar width.
  AppendHexLower(sink, std::span<const uint8_t>(relay.microdesc_digest.data(), 8));
  sink.Push(' ');
  sink.Append(address);
  sink.Push(' ');
  AppendU64(sink, relay.or_port);
  sink.Push(' ');
  AppendU64(sink, relay.dir_port);
  sink.Push(' ');
  AppendU64(sink, relay.published);
  sink.Push('\n');

  sink.Append("s ");
  sink.Append(flags_text);
  sink.Push('\n');

  if (!version.empty()) {
    sink.Append("v ");
    sink.Append(version);
    sink.Push('\n');
  }
  if (!protocols.empty()) {
    sink.Append("pr ");
    sink.Append(protocols);
    sink.Push('\n');
  }

  sink.Append("w Bandwidth=");
  AppendU64(sink, relay.bandwidth);
  if (include_measured && relay.measured.has_value()) {
    sink.Append(" Measured=");
    AppendU64(sink, *relay.measured);
  }
  sink.Push('\n');

  sink.Append("p ");
  sink.Append(exit_policy);
  sink.Push('\n');

  sink.Append("m ");
  AppendHexLower(sink, relay.microdesc_digest);
  sink.Push('\n');
}

template <typename Sink>
void AppendRelay(Sink& sink, const StringPool& pool, const FlagsTable& flags_table,
                 const RelayStatus& relay, bool include_measured) {
  const std::string_view nickname = pool.View(relay.nickname.id());
  const std::string_view address = pool.View(relay.address.id());
  const std::string_view version = pool.View(relay.version.id());
  const std::string_view protocols = pool.View(relay.protocols.id());
  const std::string_view exit_policy = pool.View(relay.exit_policy.id());
  const std::string_view flags_text = flags_table.Text(relay.flags);

  // The whole r/s/v/pr/w/p/m group composes into one scratch block: fixed
  // text and hex account for at most ~290 bytes, so one size check on the
  // variable-width strings covers every write below. Realistic rows are a few
  // hundred bytes; anything larger takes the per-field path.
  const size_t variable_bytes = nickname.size() + address.size() + version.size() +
                                protocols.size() + exit_policy.size() + flags_text.size();
  if (variable_bytes > Sink::kScratchMax - 304) {
    AppendRelayGeneric(sink, nickname, address, version, protocols, exit_policy, flags_text,
                       relay, include_measured);
    return;
  }

  // The microdesc digest renders twice (16-char prefix on the r line, full 64
  // on the m line); encode it once.
  char digest_hex[64];
  torbase::HexEncodeTo(relay.microdesc_digest, digest_hex);

  char* const start = sink.Scratch(Sink::kScratchMax);
  char* p = start;
  // "r <nickname> <FP-40-hex> <digest-16-hex> <address> <orport> <dirport>
  // <published>\n"
  *p++ = 'r';
  *p++ = ' ';
  CopyTo(p, nickname);
  *p++ = ' ';
  torbase::HexEncodeUpperTo(relay.fingerprint, p);
  p += 40;
  *p++ = ' ';
  // Descriptor digest stand-in: first 8 bytes of the microdesc digest. Real
  // entries carry a base64 digest of similar width.
  std::memcpy(p, digest_hex, 16);
  p += 16;
  *p++ = ' ';
  CopyTo(p, address);
  *p++ = ' ';
  PutU64(p, relay.or_port);
  *p++ = ' ';
  PutU64(p, relay.dir_port);
  *p++ = ' ';
  PutU64(p, relay.published);
  *p++ = '\n';

  // "s <flags>\n": the canonical rendering is pre-built per mask.
  *p++ = 's';
  *p++ = ' ';
  CopyTo(p, flags_text);
  *p++ = '\n';

  if (!version.empty()) {
    *p++ = 'v';
    *p++ = ' ';
    CopyTo(p, version);
    *p++ = '\n';
  }
  if (!protocols.empty()) {
    *p++ = 'p';
    *p++ = 'r';
    *p++ = ' ';
    CopyTo(p, protocols);
    *p++ = '\n';
  }

  CopyTo(p, "w Bandwidth=");
  PutU64(p, relay.bandwidth);
  if (include_measured && relay.measured.has_value()) {
    CopyTo(p, " Measured=");
    PutU64(p, *relay.measured);
  }
  *p++ = '\n';

  *p++ = 'p';
  *p++ = ' ';
  CopyTo(p, exit_policy);
  *p++ = '\n';

  *p++ = 'm';
  *p++ = ' ';
  std::memcpy(p, digest_hex, 64);
  p += 64;
  *p++ = '\n';
  sink.Commit(static_cast<size_t>(p - start));
}

template <typename Sink>
void AppendRelays(Sink& sink, const std::vector<RelayStatus>& relays, bool include_measured) {
  const StringPool& pool = StringPool::Global();
  const FlagsTable& flags_table = FlagsTable::Get();
  for (size_t i = 0; i < relays.size(); ++i) {
    if (i + 1 < relays.size()) {
      // The next relay's unique strings live at effectively random pool
      // offsets (documents are fingerprint-sorted, ids are intern-order);
      // warming their entry cells overlaps the fetch with this relay's
      // formatting.
      pool.PrefetchView(relays[i + 1].nickname.id());
      pool.PrefetchView(relays[i + 1].address.id());
    }
    AppendRelay(sink, pool, flags_table, relays[i], include_measured);
  }
}

template <typename Sink>
void WriteVote(Sink& sink, const VoteDocument& vote) {
  sink.Append("network-status-version 3 vote\n");
  sink.Append("authority ");
  sink.Append(vote.authority_nickname);
  sink.Push(' ');
  AppendU64(sink, vote.authority);
  sink.Push('\n');
  sink.Append("valid-after ");
  AppendU64(sink, vote.valid_after);
  sink.Push('\n');
  sink.Append("fresh-until ");
  AppendU64(sink, vote.fresh_until);
  sink.Push('\n');
  sink.Append("valid-until ");
  AppendU64(sink, vote.valid_until);
  sink.Push('\n');
  sink.Append("known-flags Authority BadExit Exit Fast Guard HSDir Running Stable V2Dir Valid\n");
  AppendRelays(sink, vote.relays, /*include_measured=*/true);
  sink.Append("directory-footer\n");
}

template <typename Sink>
void WriteConsensusUnsigned(Sink& sink, const ConsensusDocument& consensus) {
  sink.Append("network-status-version 3\n");
  sink.Append("vote-status consensus\n");
  sink.Append("votes-counted ");
  AppendU64(sink, consensus.vote_count);
  sink.Push('\n');
  sink.Append("valid-after ");
  AppendU64(sink, consensus.valid_after);
  sink.Push('\n');
  sink.Append("fresh-until ");
  AppendU64(sink, consensus.fresh_until);
  sink.Push('\n');
  sink.Append("valid-until ");
  AppendU64(sink, consensus.valid_until);
  sink.Push('\n');
  // Consensus bandwidth is the aggregated value in `bandwidth`; no Measured.
  AppendRelays(sink, consensus.relays, /*include_measured=*/false);
  sink.Append("directory-footer\n");
}

template <typename Sink>
void WriteSignatureLines(Sink& sink, const std::vector<torcrypto::Signature>& signatures) {
  for (const auto& sig : signatures) {
    sink.Append("directory-signature ");
    AppendU64(sink, sig.signer);
    sink.Push(' ');
    AppendHexLower(sink, sig.bytes);
    sink.Push('\n');
  }
}

// --- single-pass tokenizer ---------------------------------------------------
// The parsers walk the document with two cursors: LineCursor yields '\n'-split
// views without materializing a whole-document line vector, WordCursor yields
// space-split words of one line without a per-line vector. Both only ever
// advance, so an n-relay vote parses in one pass with zero tokenizer
// allocations.

class LineCursor {
 public:
  explicit LineCursor(std::string_view text) : text_(text) { has_line_ = Fetch(); }

  bool done() const { return !has_line_; }
  std::string_view line() const { return line_; }
  void Advance() { has_line_ = Fetch(); }

  // Raw-text hooks for the strict relay-entry fast path: where the current
  // line starts in text(), and a re-seek that fetches the line at `pos`.
  std::string_view text() const { return text_; }
  size_t line_start() const { return line_start_; }
  void SeekTo(size_t pos) {
    next_ = pos;
    has_line_ = Fetch();
  }

 private:
  bool Fetch() {
    if (next_ >= text_.size()) {
      return false;
    }
    line_start_ = next_;
    const size_t end = text_.find('\n', next_);
    if (end == std::string_view::npos) {
      line_ = text_.substr(next_);
      next_ = text_.size();
    } else {
      line_ = text_.substr(next_, end - next_);
      next_ = end + 1;
    }
    return true;
  }

  std::string_view text_;
  std::string_view line_;
  size_t next_ = 0;
  size_t line_start_ = 0;
  bool has_line_ = false;
};

class WordCursor {
 public:
  explicit WordCursor(std::string_view line) : line_(line) {}

  // Returns the next word, or an empty view once exhausted (words are never
  // empty: runs of spaces are skipped). The word body is located with
  // find(' ') — memchr under the hood — so long words cost loads, not a
  // char-compare loop.
  std::string_view Next() {
    while (pos_ < line_.size() && line_[pos_] == ' ') {
      ++pos_;
    }
    if (pos_ == line_.size()) {
      return {};
    }
    const size_t start = pos_;
    size_t end = line_.find(' ', start);
    if (end == std::string_view::npos) {
      end = line_.size();
    }
    pos_ = end;
    return line_.substr(start, end - start);
  }

 private:
  std::string_view line_;
  size_t pos_ = 0;
};

Result<uint64_t> ParseU64(std::string_view word) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(word.data(), word.data() + word.size(), value);
  if (ec != std::errc() || ptr != word.data() + word.size()) {
    return Status::InvalidArgument("bad integer: " + std::string(word));
  }
  return value;
}

// Per-document intern memo: a vote repeats a handful of version / protocol /
// exit-policy spellings across thousands of relays; even the pool's lock-free
// probe costs a couple of dependent loads per call. The memo is a tiny
// direct-mapped cache over views into the document being parsed (valid for
// the duration of the Parse call): one hash, one slot, one compare.
// Nicknames and addresses are per-relay unique, so those always intern
// directly.
class InternMemo {
 public:
  InternedString Get(std::string_view s) {
    Entry& entry = entries_[static_cast<uint32_t>(torbase::QuickKey(s)) & (kEntries - 1)];
    if (entry.text == s) {
      return InternedString::FromId(entry.id);
    }
    const InternedString interned(s);
    entry = {s, interned.id()};
    return interned;
  }

 private:
  static constexpr size_t kEntries = 64;
  struct Entry {
    std::string_view text;
    uint32_t id = 0;
  };
  std::array<Entry, kEntries> entries_{};
};

// Shared relay-entry parser for votes and consensuses. The cursor sits on the
// leading "r " line (detected by the caller) and is left on the first line
// that is not part of this entry.
Status ParseRelayEntry(LineCursor& cursor, InternMemo& memo, RelayStatus& relay) {
  {
    const std::string_view r_line = cursor.line();
    WordCursor words(r_line);
    std::array<std::string_view, 8> w;
    size_t count = 0;
    while (count < w.size()) {
      w[count] = words.Next();
      if (w[count].empty()) {
        break;
      }
      ++count;
    }
    if (count != 8 || !words.Next().empty() || w[0] != "r") {
      return Status::InvalidArgument("malformed r line: " + std::string(r_line));
    }
    relay.nickname = w[1];
    if (!torbase::HexDecodeTo(w[2], relay.fingerprint)) {
      return Status::InvalidArgument("bad fingerprint: " + std::string(w[2]));
    }
    // w[3] is the descriptor digest prefix; re-derived from the m line.
    relay.address = w[4];
    auto orp = ParseU64(w[5]);
    auto dirp = ParseU64(w[6]);
    auto pub = ParseU64(w[7]);
    if (!orp.ok() || !dirp.ok() || !pub.ok()) {
      return Status::InvalidArgument("bad numeric field in r line");
    }
    relay.or_port = static_cast<uint16_t>(*orp);
    relay.dir_port = static_cast<uint16_t>(*dirp);
    relay.published = *pub;
    cursor.Advance();
  }
  // First-char dispatch over the per-relay s/v/pr/w/p/m item lines; each case
  // re-checks its full prefix so accept/reject behaviour (and error text)
  // matches the prefix-chain parser this replaces exactly.
  while (!cursor.done()) {
    const std::string_view line = cursor.line();
    bool entry_done = false;
    switch (line.empty() ? '\0' : line[0]) {
      case 's':
        if (StartsWith(line, "s ")) {
          // Canonical payloads (the only kind honest serializers emit) hit
          // the pre-built mask table; anything else takes the word loop.
          if (const auto mask = FlagsTable::Get().Mask(line.substr(2)); mask.has_value()) {
            relay.flags = *mask;
            break;
          }
        } else if (line != "s") {
          entry_done = true;
          break;
        }
        relay.flags = 0;
        {
          WordCursor words(line.substr(1));
          for (std::string_view word = words.Next(); !word.empty(); word = words.Next()) {
            auto flag = RelayFlagFromName(word);
            if (!flag.has_value()) {
              return Status::InvalidArgument("unknown flag: " + std::string(word));
            }
            relay.SetFlag(*flag, true);
          }
        }
        break;
      case 'v':
        if (!StartsWith(line, "v ")) {
          entry_done = true;
          break;
        }
        relay.version = memo.Get(line.substr(2));
        break;
      case 'p':
        if (StartsWith(line, "pr ")) {
          relay.protocols = memo.Get(line.substr(3));
        } else if (StartsWith(line, "p ")) {
          relay.exit_policy = memo.Get(line.substr(2));
        } else {
          entry_done = true;
        }
        break;
      case 'w': {
        if (!StartsWith(line, "w ")) {
          entry_done = true;
          break;
        }
        WordCursor words(line.substr(2));
        for (std::string_view word = words.Next(); !word.empty(); word = words.Next()) {
          if (StartsWith(word, "Bandwidth=")) {
            auto v = ParseU64(word.substr(10));
            if (!v.ok()) {
              return Status::InvalidArgument("bad Bandwidth value");
            }
            relay.bandwidth = *v;
          } else if (StartsWith(word, "Measured=")) {
            auto v = ParseU64(word.substr(9));
            if (!v.ok()) {
              return Status::InvalidArgument("bad Measured value");
            }
            relay.measured = *v;
          }
        }
        break;
      }
      case 'm':
        if (!StartsWith(line, "m ")) {
          entry_done = true;
          break;
        }
        if (!torbase::HexDecodeTo(line.substr(2), relay.microdesc_digest)) {
          return Status::InvalidArgument("bad microdesc digest");
        }
        break;
      default:
        entry_done = true;  // next entry or footer
        break;
    }
    if (entry_done) {
      break;
    }
    cursor.Advance();
  }
  return Status::Ok();
}

// --- strict relay-entry fast path --------------------------------------------
// Single-sweep parser for the exact byte shape AppendRelay emits: single
// spaces, fixed-width hex, canonical flag order, items in r/s/[v]/[pr]/w/p/m
// order. Every honest document is canonical, so this is the steady-state
// path; ANY deviation returns false with no verdict, and the caller re-parses
// the entry with the general ParseRelayEntry above, which preserves the exact
// accept set and error messages. Acceptance here implies the general parser
// would produce the identical RelayStatus, which is what keeps round-trip
// bytes and digests unchanged.

// Parses a decimal run at `pos` inline (the out-of-line std::from_chars call
// showed up in the parse profile). Runs of 19 digits always fit a uint64;
// longer runs (which might overflow) bail to the general parser.
inline bool ScanDigits(std::string_view text, size_t& pos, uint64_t& value) {
  const char* const start = text.data() + pos;
  const char* const end = text.data() + text.size();
  const char* p = start;
  uint64_t v = 0;
  while (p != end) {
    const unsigned digit = static_cast<unsigned char>(*p) - '0';
    if (digit > 9) {
      break;
    }
    v = v * 10 + digit;
    ++p;
  }
  const size_t digits = static_cast<size_t>(p - start);
  if (digits == 0 || digits > 19) {
    return false;
  }
  value = v;
  pos += digits;
  return true;
}

// Same, requiring the run to end exactly at `delim`; advances past it.
inline bool ScanU64(std::string_view text, size_t& pos, char delim, uint64_t& value) {
  if (!ScanDigits(text, pos, value) || pos >= text.size() || text[pos] != delim) {
    return false;
  }
  ++pos;
  return true;
}

// Slices a non-empty word ending at ' ' on the current line; advances past
// the space.
inline bool ScanWord(std::string_view text, size_t& pos, std::string_view& word) {
  const size_t space = text.find(' ', pos);
  if (space == std::string_view::npos || space == pos) {
    return false;
  }
  word = text.substr(pos, space - pos);
  if (word.find('\n') != std::string_view::npos) {
    return false;  // the line ended before the next space
  }
  pos = space + 1;
  return true;
}

bool TryParseRelayEntryFast(StringPool& pool, const FlagsTable& flags_table,
                            std::string_view text, size_t pos, InternMemo& memo,
                            RelayStatus& relay, size_t* end_pos) {
  pos += 2;  // caller verified the "r " prefix
  std::string_view nickname;
  if (!ScanWord(text, pos, nickname)) {
    return false;
  }
  // The unique strings intern through the pool's probe table; issuing the
  // prefetches here hides the dependent-load latency behind the hex and
  // integer decoding below.
  pool.PrefetchIntern(nickname);
  // Fingerprint: exactly 40 hex chars, then ' '.
  if (text.size() - pos < 41 || text[pos + 40] != ' ' ||
      !torbase::HexDecodeTo(text.substr(pos, 40), relay.fingerprint)) {
    return false;
  }
  pos += 41;
  // Descriptor digest stand-in: exactly 16 non-delimiter chars (the general
  // parser ignores the content), then ' '.
  if (text.size() - pos < 17 || text[pos + 16] != ' ') {
    return false;
  }
  for (size_t i = 0; i < 16; ++i) {
    const char c = text[pos + i];
    if (c == ' ' || c == '\n') {
      return false;
    }
  }
  pos += 17;
  std::string_view address;
  if (!ScanWord(text, pos, address)) {
    return false;
  }
  pool.PrefetchIntern(address);
  uint64_t or_port = 0;
  uint64_t dir_port = 0;
  uint64_t published = 0;
  if (!ScanU64(text, pos, ' ', or_port) || !ScanU64(text, pos, ' ', dir_port) ||
      !ScanU64(text, pos, '\n', published)) {
    return false;
  }
  relay.nickname = InternedString::FromId(pool.Intern(nickname));
  relay.address = InternedString::FromId(pool.Intern(address));
  relay.or_port = static_cast<uint16_t>(or_port);
  relay.dir_port = static_cast<uint16_t>(dir_port);
  relay.published = published;

  // "s <canonical flags>\n".
  if (text.size() - pos < 2 || text[pos] != 's' || text[pos + 1] != ' ') {
    return false;
  }
  size_t nl = text.find('\n', pos + 2);
  if (nl == std::string_view::npos) {
    return false;
  }
  const auto mask = flags_table.Mask(text.substr(pos + 2, nl - pos - 2));
  if (!mask.has_value()) {
    return false;
  }
  relay.flags = *mask;
  pos = nl + 1;

  // Optional "v <version>\n".
  if (text.size() - pos >= 2 && text[pos] == 'v' && text[pos + 1] == ' ') {
    nl = text.find('\n', pos + 2);
    if (nl == std::string_view::npos) {
      return false;
    }
    relay.version = memo.Get(text.substr(pos + 2, nl - pos - 2));
    pos = nl + 1;
  }
  // Optional "pr <protocols>\n".
  if (text.size() - pos >= 3 && text[pos] == 'p' && text[pos + 1] == 'r' &&
      text[pos + 2] == ' ') {
    nl = text.find('\n', pos + 3);
    if (nl == std::string_view::npos) {
      return false;
    }
    relay.protocols = memo.Get(text.substr(pos + 3, nl - pos - 3));
    pos = nl + 1;
  }

  // "w Bandwidth=<n>[ Measured=<n>]\n".
  constexpr std::string_view kBandwidth = "w Bandwidth=";
  if (text.substr(pos, kBandwidth.size()) != kBandwidth) {
    return false;
  }
  pos += kBandwidth.size();
  if (!ScanDigits(text, pos, relay.bandwidth) || pos >= text.size()) {
    return false;
  }
  if (text[pos] == '\n') {
    ++pos;
  } else {
    constexpr std::string_view kMeasured = " Measured=";
    if (text.substr(pos, kMeasured.size()) != kMeasured) {
      return false;
    }
    pos += kMeasured.size();
    uint64_t measured = 0;
    if (!ScanU64(text, pos, '\n', measured)) {
      return false;
    }
    relay.measured = measured;
  }

  // "p <policy>\n".
  if (text.size() - pos < 2 || text[pos] != 'p' || text[pos + 1] != ' ') {
    return false;
  }
  nl = text.find('\n', pos + 2);
  if (nl == std::string_view::npos) {
    return false;
  }
  relay.exit_policy = memo.Get(text.substr(pos + 2, nl - pos - 2));
  pos = nl + 1;

  // "m <64 hex>\n".
  if (text.size() - pos < 67 || text[pos] != 'm' || text[pos + 1] != ' ' ||
      text[pos + 66] != '\n' ||
      !torbase::HexDecodeTo(text.substr(pos + 2, 64), relay.microdesc_digest)) {
    return false;
  }
  pos += 67;

  // Termination: the general parser keeps absorbing any further s/v/pr/w/p/m
  // item lines into this entry. Canonical documents never have one here, so
  // anything that even starts like one falls back rather than diverging.
  if (pos < text.size()) {
    const char c = text[pos];
    if (c == 's' || c == 'v' || c == 'p' || c == 'w' || c == 'm') {
      return false;
    }
  }
  *end_pos = pos;
  return true;
}

// Serialized documents average well over 400 bytes per relay (see
// EstimateVoteSizeBytes); dividing by a slightly smaller figure reserves the
// relay vector once with a little headroom instead of growing it a dozen
// times while parsing.
size_t RelayCountUpperBound(size_t text_bytes) { return text_bytes / 400 + 1; }

}  // namespace

std::string SerializeVote(const VoteDocument& vote) {
  std::string out;
  torbase::StringCursorSink sink(out, EstimateVoteSizeBytes(vote.relays.size()));
  WriteVote(sink, vote);
  sink.Finish();
  return out;
}

Result<VoteDocument> ParseVote(const std::string& text) {
  return ParseVote(text, ParseOptions{});
}

Result<VoteDocument> ParseVote(const std::string& text, const ParseOptions& options) {
  LineCursor cursor(text);
  VoteDocument vote;
  if (cursor.done() || cursor.line() != "network-status-version 3 vote") {
    return Status::InvalidArgument("not a v3 vote document");
  }
  cursor.Advance();
  vote.relays.reserve(RelayCountUpperBound(text.size()));
  InternMemo memo;
  StringPool& pool = StringPool::Global();
  const FlagsTable& flags_table = FlagsTable::Get();
  bool saw_footer = false;
  while (!cursor.done()) {
    const std::string_view line = cursor.line();
    // Relay entries first: after the short header every line group starts
    // with "r ", and none of the header prefixes can match it.
    if (StartsWith(line, "r ")) {
      RelayStatus& relay = vote.relays.emplace_back();
      size_t end_pos = 0;
      if (options.use_relay_fast_path &&
          TryParseRelayEntryFast(pool, flags_table, cursor.text(), cursor.line_start(), memo,
                                 relay, &end_pos)) {
        cursor.SeekTo(end_pos);
      } else {
        relay = RelayStatus{};  // the strict sweep may have left partial fields
        if (Status s = ParseRelayEntry(cursor, memo, relay); !s.ok()) {
          return s;
        }
      }
    } else if (StartsWith(line, "authority ")) {
      WordCursor words(line);
      const std::string_view w0 = words.Next();
      const std::string_view w1 = words.Next();
      const std::string_view w2 = words.Next();
      if (w2.empty() || !words.Next().empty()) {
        return Status::InvalidArgument("malformed authority line");
      }
      (void)w0;  // "authority"
      vote.authority_nickname = w1;
      auto id = ParseU64(w2);
      if (!id.ok()) {
        return Status::InvalidArgument("bad authority id");
      }
      vote.authority = static_cast<torbase::NodeId>(*id);
      cursor.Advance();
    } else if (StartsWith(line, "valid-after ")) {
      auto v = ParseU64(line.substr(12));
      if (!v.ok()) {
        return v.status();
      }
      vote.valid_after = *v;
      cursor.Advance();
    } else if (StartsWith(line, "fresh-until ")) {
      auto v = ParseU64(line.substr(12));
      if (!v.ok()) {
        return v.status();
      }
      vote.fresh_until = *v;
      cursor.Advance();
    } else if (StartsWith(line, "valid-until ")) {
      auto v = ParseU64(line.substr(12));
      if (!v.ok()) {
        return v.status();
      }
      vote.valid_until = *v;
      cursor.Advance();
    } else if (StartsWith(line, "known-flags")) {
      cursor.Advance();
    } else if (line == "directory-footer") {
      saw_footer = true;
      cursor.Advance();
      break;
    } else if (line.empty()) {
      cursor.Advance();
    } else {
      return Status::InvalidArgument("unexpected line: " + std::string(line));
    }
  }
  if (!saw_footer) {
    return Status::InvalidArgument("missing directory-footer");
  }
  return vote;
}

torcrypto::Digest256 VoteDigest(const VoteDocument& vote) {
  torcrypto::Sha256 hash;
  DigestSinkBackend backend{hash};
  BufferedTextSink<DigestSinkBackend> sink(backend);
  WriteVote(sink, vote);
  sink.Flush();
  return torcrypto::Digest256(hash.Finish());
}

torcrypto::Digest256 TreeVoteDigest(const VoteDocument& vote, torbase::ThreadPool* pool) {
  if (pool != nullptr) {
    // Parallel leaves need the whole byte string up front; the serializer runs
    // at multiple GiB/s, so materializing it is not the bottleneck.
    return torcrypto::Digest256(torcrypto::Sha256TreeDigest(SerializeVote(vote), pool));
  }
  torcrypto::Sha256TreeHasher hash;
  TreeDigestSinkBackend backend{hash};
  BufferedTextSink<TreeDigestSinkBackend> sink(backend);
  WriteVote(sink, vote);
  sink.Flush();
  return torcrypto::Digest256(hash.Finish());
}

std::string SerializeConsensusUnsigned(const ConsensusDocument& consensus) {
  std::string out;
  torbase::StringCursorSink sink(out, EstimateVoteSizeBytes(consensus.relays.size()));
  WriteConsensusUnsigned(sink, consensus);
  sink.Finish();
  return out;
}

std::string SerializeConsensus(const ConsensusDocument& consensus) {
  std::string out;
  torbase::StringCursorSink sink(out, EstimateVoteSizeBytes(consensus.relays.size()) +
                                          consensus.signatures.size() * 160);
  WriteConsensusUnsigned(sink, consensus);
  WriteSignatureLines(sink, consensus.signatures);
  sink.Finish();
  return out;
}

Result<ConsensusDocument> ParseConsensus(const std::string& text) {
  return ParseConsensus(text, ParseOptions{});
}

Result<ConsensusDocument> ParseConsensus(const std::string& text, const ParseOptions& options) {
  LineCursor cursor(text);
  ConsensusDocument consensus;
  if (cursor.done() || cursor.line() != "network-status-version 3") {
    return Status::InvalidArgument("not a v3 consensus document");
  }
  cursor.Advance();
  consensus.relays.reserve(RelayCountUpperBound(text.size()));
  InternMemo memo;
  StringPool& pool = StringPool::Global();
  const FlagsTable& flags_table = FlagsTable::Get();
  bool saw_footer = false;
  while (!cursor.done()) {
    const std::string_view line = cursor.line();
    if (StartsWith(line, "r ")) {
      RelayStatus& relay = consensus.relays.emplace_back();
      size_t end_pos = 0;
      if (options.use_relay_fast_path &&
          TryParseRelayEntryFast(pool, flags_table, cursor.text(), cursor.line_start(), memo,
                                 relay, &end_pos)) {
        cursor.SeekTo(end_pos);
      } else {
        relay = RelayStatus{};  // the strict sweep may have left partial fields
        if (Status s = ParseRelayEntry(cursor, memo, relay); !s.ok()) {
          return s;
        }
      }
    } else if (line == "vote-status consensus") {
      cursor.Advance();
    } else if (StartsWith(line, "votes-counted ")) {
      auto v = ParseU64(line.substr(14));
      if (!v.ok()) {
        return v.status();
      }
      consensus.vote_count = static_cast<uint32_t>(*v);
      cursor.Advance();
    } else if (StartsWith(line, "valid-after ")) {
      auto v = ParseU64(line.substr(12));
      if (!v.ok()) {
        return v.status();
      }
      consensus.valid_after = *v;
      cursor.Advance();
    } else if (StartsWith(line, "fresh-until ")) {
      auto v = ParseU64(line.substr(12));
      if (!v.ok()) {
        return v.status();
      }
      consensus.fresh_until = *v;
      cursor.Advance();
    } else if (StartsWith(line, "valid-until ")) {
      auto v = ParseU64(line.substr(12));
      if (!v.ok()) {
        return v.status();
      }
      consensus.valid_until = *v;
      cursor.Advance();
    } else if (line == "directory-footer") {
      saw_footer = true;
      cursor.Advance();
      // Signature lines follow the footer.
      while (!cursor.done()) {
        const std::string_view sig_line = cursor.line();
        if (sig_line.empty()) {
          cursor.Advance();
          continue;
        }
        if (!StartsWith(sig_line, "directory-signature ")) {
          return Status::InvalidArgument("unexpected line after footer: " + std::string(sig_line));
        }
        WordCursor words(sig_line);
        const std::string_view w0 = words.Next();
        const std::string_view w1 = words.Next();
        const std::string_view w2 = words.Next();
        if (w2.empty() || !words.Next().empty()) {
          return Status::InvalidArgument("malformed directory-signature line");
        }
        (void)w0;  // "directory-signature"
        torcrypto::Signature sig;
        auto signer = ParseU64(w1);
        if (!signer.ok() || !torbase::HexDecodeTo(w2, sig.bytes)) {
          return Status::InvalidArgument("bad signature encoding");
        }
        sig.signer = static_cast<torbase::NodeId>(*signer);
        consensus.signatures.push_back(sig);
        cursor.Advance();
      }
      break;
    } else if (line.empty()) {
      cursor.Advance();
    } else {
      return Status::InvalidArgument("unexpected line: " + std::string(line));
    }
  }
  if (!saw_footer) {
    return Status::InvalidArgument("missing directory-footer");
  }
  return consensus;
}

torcrypto::Digest256 ConsensusDigest(const ConsensusDocument& consensus) {
  torcrypto::Sha256 hash;
  DigestSinkBackend backend{hash};
  BufferedTextSink<DigestSinkBackend> sink(backend);
  WriteConsensusUnsigned(sink, consensus);
  sink.Flush();
  return torcrypto::Digest256(hash.Finish());
}

torcrypto::Digest256 TreeConsensusDigest(const ConsensusDocument& consensus,
                                         torbase::ThreadPool* pool) {
  if (pool != nullptr) {
    return torcrypto::Digest256(
        torcrypto::Sha256TreeDigest(SerializeConsensusUnsigned(consensus), pool));
  }
  torcrypto::Sha256TreeHasher hash;
  TreeDigestSinkBackend backend{hash};
  BufferedTextSink<TreeDigestSinkBackend> sink(backend);
  WriteConsensusUnsigned(sink, consensus);
  sink.Flush();
  return torcrypto::Digest256(hash.Finish());
}

torcrypto::Digest256 TreeSignedConsensusDigest(const ConsensusDocument& consensus,
                                               torbase::ThreadPool* pool) {
  if (pool != nullptr) {
    return torcrypto::Digest256(torcrypto::Sha256TreeDigest(SerializeConsensus(consensus), pool));
  }
  torcrypto::Sha256TreeHasher hash;
  TreeDigestSinkBackend backend{hash};
  BufferedTextSink<TreeDigestSinkBackend> sink(backend);
  WriteConsensusUnsigned(sink, consensus);
  WriteSignatureLines(sink, consensus.signatures);
  sink.Flush();
  return torcrypto::Digest256(hash.Finish());
}

namespace {

// Backend appending onto an existing string: the fragment writers below add
// to a diff under construction rather than owning the whole output, so the
// cursor sink (which resizes its string up front) does not fit.
struct StringAppendBackend {
  std::string& out;
  void Write(const char* data, size_t n) { out.append(data, n); }
};

}  // namespace

void AppendRelayRowText(std::string& out, const RelayStatus& relay, bool include_measured) {
  StringAppendBackend backend{out};
  BufferedTextSink<StringAppendBackend> sink(backend);
  AppendRelay(sink, StringPool::Global(), FlagsTable::Get(), relay, include_measured);
  sink.Flush();
}

void AppendSignatureLinesText(std::string& out,
                              const std::vector<torcrypto::Signature>& signatures) {
  StringAppendBackend backend{out};
  BufferedTextSink<StringAppendBackend> sink(backend);
  WriteSignatureLines(sink, signatures);
  sink.Flush();
}

size_t EstimateVoteSizeBytes(size_t relay_count) {
  // Matches the serialization above: ~100 B "r" + ~40 B "s" + ~16 B "v" +
  // ~120 B "pr" + ~30 B "w" + ~20 B "p" + ~67 B "m" per relay (~390-405 B
  // measured on generator workloads), plus a small header/footer.
  // tests/tordir_test.cc pins the estimate to within 20% of the actual size
  // at 100/1k/8k relays, so drift in either direction fails loudly.
  return 170 + relay_count * 410;
}

}  // namespace tordir
