#include "src/tordir/dirspec.h"

#include <charconv>
#include <cstdio>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"

namespace tordir {
namespace {

using torbase::Result;
using torbase::Status;

void AppendRelay(std::string& out, const RelayStatus& relay, bool include_measured) {
  out += "r ";
  out += relay.nickname.view();
  out += ' ';
  out += FingerprintHex(relay.fingerprint);
  out += ' ';
  // Descriptor digest stand-in: first 8 bytes of the microdesc digest. Real
  // entries carry a base64 digest of similar width.
  out += torbase::HexEncode(
      std::span<const uint8_t>(relay.microdesc_digest.data(), 8));
  out += ' ';
  out += relay.address.view();
  out += ' ';
  out += std::to_string(relay.or_port);
  out += ' ';
  out += std::to_string(relay.dir_port);
  out += ' ';
  out += std::to_string(relay.published);
  out += '\n';

  out += "s ";
  out += FlagsToString(relay.flags);
  out += '\n';

  if (!relay.version.empty()) {
    out += "v ";
    out += relay.version.view();
    out += '\n';
  }
  if (!relay.protocols.empty()) {
    out += "pr ";
    out += relay.protocols.view();
    out += '\n';
  }

  out += "w Bandwidth=";
  out += std::to_string(relay.bandwidth);
  if (include_measured && relay.measured.has_value()) {
    out += " Measured=";
    out += std::to_string(*relay.measured);
  }
  out += '\n';

  out += "p ";
  out += relay.exit_policy.view();
  out += '\n';

  out += "m ";
  out += torbase::HexEncode(relay.microdesc_digest);
  out += '\n';
}

// The parsers below work on string_views into the original document text:
// votes are multi-megabyte and get parsed on every delivery, so avoiding
// per-line string copies matters for the bench harness.
std::vector<std::string_view> SplitWords(std::string_view line) {
  std::vector<std::string_view> words;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') {
      ++i;
    }
    size_t start = i;
    while (i < line.size() && line[i] != ' ') {
      ++i;
    }
    if (i > start) {
      words.push_back(line.substr(start, i - start));
    }
  }
  return words;
}

Result<uint64_t> ParseU64(std::string_view word) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(word.data(), word.data() + word.size(), value);
  if (ec != std::errc() || ptr != word.data() + word.size()) {
    return Status::InvalidArgument("bad integer: " + std::string(word));
  }
  return value;
}

bool StartsWith(std::string_view line, std::string_view prefix) {
  return line.substr(0, prefix.size()) == prefix;
}

// Shared relay-entry parser for votes and consensuses. `lines` is consumed from
// `idx`; the caller detected the leading "r " line.
Status ParseRelayEntry(const std::vector<std::string_view>& lines, size_t& idx,
                       RelayStatus& relay) {
  {
    const auto words = SplitWords(lines[idx]);
    if (words.size() != 8 || words[0] != "r") {
      return Status::InvalidArgument("malformed r line: " + std::string(lines[idx]));
    }
    relay.nickname = words[1];
    auto fp = FingerprintFromHex(words[2]);
    if (!fp.has_value()) {
      return Status::InvalidArgument("bad fingerprint: " + std::string(words[2]));
    }
    relay.fingerprint = *fp;
    // words[3] is the descriptor digest prefix; re-derived from the m line.
    relay.address = words[4];
    auto orp = ParseU64(words[5]);
    auto dirp = ParseU64(words[6]);
    auto pub = ParseU64(words[7]);
    if (!orp.ok() || !dirp.ok() || !pub.ok()) {
      return Status::InvalidArgument("bad numeric field in r line");
    }
    relay.or_port = static_cast<uint16_t>(*orp);
    relay.dir_port = static_cast<uint16_t>(*dirp);
    relay.published = *pub;
    ++idx;
  }
  while (idx < lines.size()) {
    const std::string_view line = lines[idx];
    if (StartsWith(line, "s ") || line == "s") {
      relay.flags = 0;
      for (const auto word : SplitWords(line.substr(1))) {
        auto flag = RelayFlagFromName(word);
        if (!flag.has_value()) {
          return Status::InvalidArgument("unknown flag: " + std::string(word));
        }
        relay.SetFlag(*flag, true);
      }
    } else if (StartsWith(line, "v ")) {
      relay.version = line.substr(2);
    } else if (StartsWith(line, "pr ")) {
      relay.protocols = line.substr(3);
    } else if (StartsWith(line, "w ")) {
      for (const auto word : SplitWords(line.substr(2))) {
        if (StartsWith(word, "Bandwidth=")) {
          auto v = ParseU64(word.substr(10));
          if (!v.ok()) {
            return Status::InvalidArgument("bad Bandwidth value");
          }
          relay.bandwidth = *v;
        } else if (StartsWith(word, "Measured=")) {
          auto v = ParseU64(word.substr(9));
          if (!v.ok()) {
            return Status::InvalidArgument("bad Measured value");
          }
          relay.measured = *v;
        }
      }
    } else if (StartsWith(line, "p ")) {
      relay.exit_policy = line.substr(2);
    } else if (StartsWith(line, "m ")) {
      auto decoded = torbase::HexDecode(line.substr(2));
      if (!decoded.has_value() || decoded->size() != 32) {
        return Status::InvalidArgument("bad microdesc digest");
      }
      std::copy(decoded->begin(), decoded->end(), relay.microdesc_digest.begin());
    } else {
      break;  // next entry or footer
    }
    ++idx;
  }
  return Status::Ok();
}

std::vector<std::string_view> SplitLines(const std::string& text) {
  std::vector<std::string_view> lines;
  const std::string_view view(text);
  size_t start = 0;
  while (start <= view.size()) {
    size_t end = view.find('\n', start);
    if (end == std::string_view::npos) {
      if (start < view.size()) {
        lines.push_back(view.substr(start));
      }
      break;
    }
    lines.push_back(view.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

}  // namespace

std::string SerializeVote(const VoteDocument& vote) {
  std::string out;
  out.reserve(128 + vote.relays.size() * 480);
  out += "network-status-version 3 vote\n";
  out += "authority " + vote.authority_nickname + " " + std::to_string(vote.authority) + "\n";
  out += "valid-after " + std::to_string(vote.valid_after) + "\n";
  out += "fresh-until " + std::to_string(vote.fresh_until) + "\n";
  out += "valid-until " + std::to_string(vote.valid_until) + "\n";
  out += "known-flags Authority BadExit Exit Fast Guard HSDir Running Stable V2Dir Valid\n";
  for (const auto& relay : vote.relays) {
    AppendRelay(out, relay, /*include_measured=*/true);
  }
  out += "directory-footer\n";
  return out;
}

Result<VoteDocument> ParseVote(const std::string& text) {
  const auto lines = SplitLines(text);
  VoteDocument vote;
  size_t idx = 0;
  if (idx >= lines.size() || lines[idx] != "network-status-version 3 vote") {
    return Status::InvalidArgument("not a v3 vote document");
  }
  ++idx;
  bool saw_footer = false;
  while (idx < lines.size()) {
    const std::string_view line = lines[idx];
    if (line.rfind("authority ", 0) == 0) {
      const auto words = SplitWords(line);
      if (words.size() != 3) {
        return Status::InvalidArgument("malformed authority line");
      }
      vote.authority_nickname = words[1];
      auto id = ParseU64(words[2]);
      if (!id.ok()) {
        return Status::InvalidArgument("bad authority id");
      }
      vote.authority = static_cast<torbase::NodeId>(*id);
      ++idx;
    } else if (line.rfind("valid-after ", 0) == 0) {
      auto v = ParseU64(line.substr(12));
      if (!v.ok()) {
        return v.status();
      }
      vote.valid_after = *v;
      ++idx;
    } else if (line.rfind("fresh-until ", 0) == 0) {
      auto v = ParseU64(line.substr(12));
      if (!v.ok()) {
        return v.status();
      }
      vote.fresh_until = *v;
      ++idx;
    } else if (line.rfind("valid-until ", 0) == 0) {
      auto v = ParseU64(line.substr(12));
      if (!v.ok()) {
        return v.status();
      }
      vote.valid_until = *v;
      ++idx;
    } else if (line.rfind("known-flags", 0) == 0) {
      ++idx;
    } else if (line.rfind("r ", 0) == 0) {
      RelayStatus relay;
      if (Status s = ParseRelayEntry(lines, idx, relay); !s.ok()) {
        return s;
      }
      vote.relays.push_back(std::move(relay));
    } else if (line == "directory-footer") {
      saw_footer = true;
      ++idx;
      break;
    } else if (line.empty()) {
      ++idx;
    } else {
      return Status::InvalidArgument("unexpected line: " + std::string(line));
    }
  }
  if (!saw_footer) {
    return Status::InvalidArgument("missing directory-footer");
  }
  return vote;
}

torcrypto::Digest256 VoteDigest(const VoteDocument& vote) {
  return torcrypto::Digest256::Of(SerializeVote(vote));
}

std::string SerializeConsensusUnsigned(const ConsensusDocument& consensus) {
  std::string out;
  out.reserve(128 + consensus.relays.size() * 480);
  out += "network-status-version 3\n";
  out += "vote-status consensus\n";
  out += "votes-counted " + std::to_string(consensus.vote_count) + "\n";
  out += "valid-after " + std::to_string(consensus.valid_after) + "\n";
  out += "fresh-until " + std::to_string(consensus.fresh_until) + "\n";
  out += "valid-until " + std::to_string(consensus.valid_until) + "\n";
  for (const auto& relay : consensus.relays) {
    // Consensus bandwidth is the aggregated value in `bandwidth`; no Measured.
    AppendRelay(out, relay, /*include_measured=*/false);
  }
  out += "directory-footer\n";
  return out;
}

std::string SerializeConsensus(const ConsensusDocument& consensus) {
  std::string out = SerializeConsensusUnsigned(consensus);
  for (const auto& sig : consensus.signatures) {
    out += "directory-signature " + std::to_string(sig.signer) + " " + sig.ToHex() + "\n";
  }
  return out;
}

Result<ConsensusDocument> ParseConsensus(const std::string& text) {
  const auto lines = SplitLines(text);
  ConsensusDocument consensus;
  size_t idx = 0;
  if (idx >= lines.size() || lines[idx] != "network-status-version 3") {
    return Status::InvalidArgument("not a v3 consensus document");
  }
  ++idx;
  bool saw_footer = false;
  while (idx < lines.size()) {
    const std::string_view line = lines[idx];
    if (line == "vote-status consensus") {
      ++idx;
    } else if (line.rfind("votes-counted ", 0) == 0) {
      auto v = ParseU64(line.substr(14));
      if (!v.ok()) {
        return v.status();
      }
      consensus.vote_count = static_cast<uint32_t>(*v);
      ++idx;
    } else if (line.rfind("valid-after ", 0) == 0) {
      auto v = ParseU64(line.substr(12));
      if (!v.ok()) {
        return v.status();
      }
      consensus.valid_after = *v;
      ++idx;
    } else if (line.rfind("fresh-until ", 0) == 0) {
      auto v = ParseU64(line.substr(12));
      if (!v.ok()) {
        return v.status();
      }
      consensus.fresh_until = *v;
      ++idx;
    } else if (line.rfind("valid-until ", 0) == 0) {
      auto v = ParseU64(line.substr(12));
      if (!v.ok()) {
        return v.status();
      }
      consensus.valid_until = *v;
      ++idx;
    } else if (line.rfind("r ", 0) == 0) {
      RelayStatus relay;
      if (Status s = ParseRelayEntry(lines, idx, relay); !s.ok()) {
        return s;
      }
      consensus.relays.push_back(std::move(relay));
    } else if (line == "directory-footer") {
      saw_footer = true;
      ++idx;
      // Signature lines follow the footer.
      while (idx < lines.size()) {
        const std::string_view sig_line = lines[idx];
        if (sig_line.empty()) {
          ++idx;
          continue;
        }
        if (sig_line.rfind("directory-signature ", 0) != 0) {
          return Status::InvalidArgument("unexpected line after footer: " + std::string(sig_line));
        }
        const auto words = SplitWords(sig_line);
        if (words.size() != 3) {
          return Status::InvalidArgument("malformed directory-signature line");
        }
        auto signer = ParseU64(words[1]);
        auto bytes = torbase::HexDecode(words[2]);
        if (!signer.ok() || !bytes.has_value() || bytes->size() != 64) {
          return Status::InvalidArgument("bad signature encoding");
        }
        torcrypto::Signature sig;
        sig.signer = static_cast<torbase::NodeId>(*signer);
        std::copy(bytes->begin(), bytes->end(), sig.bytes.begin());
        consensus.signatures.push_back(sig);
        ++idx;
      }
      break;
    } else if (line.empty()) {
      ++idx;
    } else {
      return Status::InvalidArgument("unexpected line: " + std::string(line));
    }
  }
  if (!saw_footer) {
    return Status::InvalidArgument("missing directory-footer");
  }
  return consensus;
}

torcrypto::Digest256 ConsensusDigest(const ConsensusDocument& consensus) {
  return torcrypto::Digest256::Of(SerializeConsensusUnsigned(consensus));
}

size_t EstimateVoteSizeBytes(size_t relay_count) {
  // Matches the serialization above: ~100 B "r" + ~40 B "s" + ~16 B "v" +
  // ~120 B "pr" + ~35 B "w" + ~25 B "p" + ~67 B "m" per relay, plus a small
  // header/footer.
  return 170 + relay_count * 470;
}

}  // namespace tordir
