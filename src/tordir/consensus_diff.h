// Relay-row-granularity delta codec between consecutive consensus documents.
//
// Real Tor ships consensus *diffs* so caches and clients never refetch the
// whole multi-megabyte document every hour; wire size is the attack economics
// of the paper (Table 1, Fig. 6/7), and after the codec/hashing PRs made the
// cycles cheap, bytes are the dominant modeled cost of serving millions of
// clients. This codec cuts those bytes: a diff carries only the rows that
// changed between two canonical serializations (dir-spec line-oriented bytes,
// keyed by fingerprint) and patches back to the *byte-identical* full
// document.
//
// Wire format (line-oriented, canonical — ComputeConsensusDiff emits exactly
// this shape and ApplyConsensusDiff refuses everything else):
//
//   network-status-diff-version 1
//   base sha256-tree-v1 <64 lowercase hex>     sha256-tree-v1 digest of the
//   target sha256-tree-v1 <64 lowercase hex>   full signed serialization
//   target-votes-counted <n>                   (TreeSignedConsensusDigest)
//   target-valid-after <n>
//   target-fresh-until <n>
//   target-valid-until <n>
//   X <FP-40-hex>                              remove base row FP
//   C <FP-40-hex>                              replace base row FP with the
//   <canonical r/s/../m row lines>             row lines that follow
//   A <FP-40-hex>                              insert a row absent in base
//   <canonical r/s/../m row lines>
//   directory-diff-footer
//   directory-signature <id> <hex>             target's signature lines,
//   ...                                        byte-verbatim
//
// Op lines are uppercase so they can never collide with the lowercase relay
// item lines; ops are strictly increasing by fingerprint (40-char uppercase
// hex compares byte-wise in fingerprint order), which is what lets Apply run
// as one streaming merge over the base bytes with bulk copies between edit
// points. The header rewrites the target's header fields explicitly, and the
// tree digests frame the exchange: a cache verifies the patched document
// against the target digest without reserializing or parsing it, and refuses
// any corrupted diff rather than ever serving a silently wrong document.
#ifndef SRC_TORDIR_CONSENSUS_DIFF_H_
#define SRC_TORDIR_CONSENSUS_DIFF_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/crypto/digest.h"
#include "src/tordir/vote.h"

namespace torbase {
class ThreadPool;
}  // namespace torbase

namespace tordir {

struct ConsensusDiffOptions {
  // Precomputed TreeSignedConsensusDigest of base/target; zero (the default)
  // means ComputeConsensusDiff derives them itself. Callers that already hold
  // the digests (a cache naming documents by digest) skip two serializations.
  torcrypto::Digest256 base_digest;
  torcrypto::Digest256 target_digest;
  // Fans the derived digests' leaf hashing out over the pool (bit-identical
  // to serial per the sha256-tree-v1 contract); null hashes serially.
  torbase::ThreadPool* pool = nullptr;
};

// Builds the diff that patches `base`'s full serialization into `target`'s.
// Two-cursor merge over the fingerprint-sorted relay lists (the canonical
// document order); changed rows compare all consensus-serialized fields —
// `measured` is ignored because consensus rows never carry it. O(1) heap
// allocations beyond the output string.
std::string ComputeConsensusDiff(const ConsensusDocument& base, const ConsensusDocument& target,
                                 const ConsensusDiffOptions& options = {});

struct ApplyDiffOptions {
  // Check the base bytes against the diff's base digest before patching.
  // Off by default: a cache that fetched the diff by its own document's
  // digest already knows the base matches, and target verification (below)
  // subsumes output correctness either way.
  bool verify_base = false;
  // Check the patched output against the diff's target digest. This is the
  // "never a silently wrong document" guarantee — leave it on unless the
  // caller verifies the digest itself.
  bool verify_target = true;
  // Parallel leaf hashing for the verification digests; null = serial.
  torbase::ThreadPool* pool = nullptr;
};

// Streams `base`'s serialized bytes through the diff's edit list and returns
// the patched document — byte-identical to SerializeConsensus of the target
// (pinned by goldens). One pass, bulk copies between edit points, O(1) heap
// allocations (the output string plus digest verification scratch). Any
// malformed or corrupted diff is refused with an error, never applied
// wrongly: parse errors catch structural damage, the target digest catches
// everything else.
torbase::Result<std::string> ApplyConsensusDiff(std::string_view base, std::string_view diff,
                                                const ApplyDiffOptions& options = {});

// The framing header of a diff, readable without touching the edit list: a
// cache uses base_digest to pick the right diff for the document it holds and
// target_digest to verify the patched result.
struct ConsensusDiffHeader {
  torcrypto::Digest256 base_digest;
  torcrypto::Digest256 target_digest;
};

torbase::Result<ConsensusDiffHeader> ParseConsensusDiffHeader(std::string_view diff);

// Applies a *chain* of consecutive diffs to `base` — how a cache serves a
// client (or a recovering authority) N rounds behind: compose the per-round
// diffs instead of shipping the full document. The chain's framing digests
// must link up exactly: the first diff's base digest must match the digest of
// `base` (always verified here, regardless of options.verify_base — a chain
// endpoint has no other way to know the client's document is the one the
// chain starts from), and every subsequent diff's base digest must equal the
// previous diff's target digest. Each link's patched output is verified
// against its target digest per options.verify_target. Any framing-digest
// mismatch, anywhere in the chain, refuses the whole application — never a
// silently wrong document. The final output is byte-identical to the full
// serialization of the last diff's target (pinned by consensus_diff_test).
// An empty chain returns a copy of `base`.
torbase::Result<std::string> ApplyConsensusDiffChain(std::string_view base,
                                                     const std::vector<std::string_view>& diffs,
                                                     const ApplyDiffOptions& options = {});

}  // namespace tordir

#endif  // SRC_TORDIR_CONSENSUS_DIFF_H_
