// Text serialization of votes and consensus documents in the dir-spec v3 style.
//
// The wire size of these documents is what drives every bandwidth experiment in
// the paper (a vote is a few hundred bytes per relay), so the format keeps the
// realistic per-relay line structure:
//
//   r <nickname> <FP-40-hex> <digest-16-hex> <address> <orport> <dirport> <published>
//   s <flags...>
//   v <version>
//   pr <protocol versions>
//   w Bandwidth=<n> [Measured=<n>]
//   p <exit policy summary>
//   m <sha256-hex microdescriptor digest>
//
// Parsing returns Status errors for malformed input; Serialize/Parse round-trip
// exactly (tested in tests/tordir_test.cc).
#ifndef SRC_TORDIR_DIRSPEC_H_
#define SRC_TORDIR_DIRSPEC_H_

#include <string>

#include "src/common/status.h"
#include "src/crypto/digest.h"
#include "src/tordir/vote.h"

namespace torbase {
class ThreadPool;
}  // namespace torbase

namespace tordir {

// Parser knobs. Defaults match honest steady-state behavior.
struct ParseOptions {
  // When false, every relay entry is parsed by the general fallback parser
  // (ParseRelayEntry) instead of probing the strict canonical fast path
  // first. On canonical input the two are interchangeable by construction;
  // tests/codec_fuzz_test.cc parses every fuzzed mutant both ways and asserts
  // they agree on accept/reject and produce identical documents, pinning the
  // fast-path vs fallback boundary.
  bool use_relay_fast_path = true;
};

// --- votes ----------------------------------------------------------------
std::string SerializeVote(const VoteDocument& vote);
torbase::Result<VoteDocument> ParseVote(const std::string& text);
torbase::Result<VoteDocument> ParseVote(const std::string& text, const ParseOptions& options);

// Digest of the serialized vote; this is the "h_i" the dissemination
// sub-protocol signs and agrees on.
torcrypto::Digest256 VoteDigest(const VoteDocument& vote);

// --- consensus ------------------------------------------------------------
// Serializes without the signature lines; this is the byte string authorities
// sign.
std::string SerializeConsensusUnsigned(const ConsensusDocument& consensus);
// Serializes including "directory-signature" lines.
std::string SerializeConsensus(const ConsensusDocument& consensus);
torbase::Result<ConsensusDocument> ParseConsensus(const std::string& text);
torbase::Result<ConsensusDocument> ParseConsensus(const std::string& text,
                                                  const ParseOptions& options);

// Digest of the unsigned consensus body (what signatures cover).
torcrypto::Digest256 ConsensusDigest(const ConsensusDocument& consensus);

// --- tree digests ----------------------------------------------------------
// Parallel-friendly counterparts of VoteDigest/ConsensusDigest over the same
// canonical serialized bytes, using the fixed "sha256-tree-v1" shape
// (src/crypto/sha256_tree.h). NOT interchangeable with the streaming digests
// above — tree digests are a distinct domain with their own goldens — and the
// protocol-visible digests (vote identity, signature subjects) stay on the
// streaming form. With a pool, leaf hashing fans out over its workers; the
// result is bit-identical at any thread count (and to pool == nullptr, which
// streams without materializing the document).
torcrypto::Digest256 TreeVoteDigest(const VoteDocument& vote, torbase::ThreadPool* pool = nullptr);
torcrypto::Digest256 TreeConsensusDigest(const ConsensusDocument& consensus,
                                         torbase::ThreadPool* pool = nullptr);

// Tree digest of the *signed* consensus bytes (exactly what SerializeConsensus
// emits, signature lines included). This is the framing digest the consensus
// diff codec (src/tordir/consensus_diff.h) pins base and target documents
// with, so a cache can verify a patched document against the digest without
// reserializing anything. Distinct domain from TreeConsensusDigest, which
// covers only the unsigned body.
torcrypto::Digest256 TreeSignedConsensusDigest(const ConsensusDocument& consensus,
                                               torbase::ThreadPool* pool = nullptr);

// --- canonical fragment writers ---------------------------------------------
// Append the exact bytes the serializers above would emit for one relay row
// group (r/s/[v]/[pr]/w/p/m lines; include_measured selects the vote form) or
// for a document's "directory-signature" tail. The diff codec encodes
// replacement rows with these so a patched document splices byte-identically
// into the full serialization.
void AppendRelayRowText(std::string& out, const RelayStatus& relay, bool include_measured);
void AppendSignatureLinesText(std::string& out,
                              const std::vector<torcrypto::Signature>& signatures);

// Approximate serialized vote size in bytes for `relay_count` relays, without
// building the document. Used by benches for analytic sanity checks.
size_t EstimateVoteSizeBytes(size_t relay_count);

}  // namespace tordir

#endif  // SRC_TORDIR_DIRSPEC_H_
