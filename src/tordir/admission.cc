#include "src/tordir/admission.h"

#include <utility>

#include "src/tordir/dirspec.h"

namespace tordir {

const char* VoteRejectReasonName(VoteRejectReason reason) {
  switch (reason) {
    case VoteRejectReason::kMalformed:
      return "malformed";
    case VoteRejectReason::kNonCanonical:
      return "non-canonical";
    case VoteRejectReason::kStaleWindow:
      return "stale-window";
  }
  return "unknown";
}

VoteAdmission AdmitVote(const std::shared_ptr<const VoteCache>& cache, const std::string& text,
                        uint64_t period_start) {
  return AdmitVote(cache, text, torcrypto::Digest256::Of(text), period_start);
}

VoteAdmission AdmitVote(const std::shared_ptr<const VoteCache>& cache, const std::string& text,
                        const torcrypto::Digest256& digest, uint64_t period_start) {
  VoteAdmission admission;
  admission.digest = digest;
  if (const CachedVote* cached = VoteCache::FindIn(cache, digest)) {
    admission.author = cached->document->authority;
    admission.document = cached->document;
    admission.text = cached->text;
    return admission;
  }

  auto parsed = ParseVote(text);
  if (!parsed.ok()) {
    admission.status =
        torbase::Status::InvalidArgument("malformed vote: " + parsed.status().message());
    admission.reason = VoteRejectReason::kMalformed;
    return admission;
  }
  VoteDocument document = std::move(*parsed);

  // Canonicality: the exact wire bytes must be what SerializeVote would emit
  // for this document. Comparing digests (not strings) keeps the admitted
  // digest meaningful: it is the digest of the canonical encoding.
  const std::string canonical = SerializeVote(document);
  if (torcrypto::Digest256::Of(canonical) != digest) {
    admission.status =
        torbase::Status::InvalidArgument("malformed vote: non-canonical encoding");
    admission.reason = VoteRejectReason::kNonCanonical;
    return admission;
  }

  admission.author = document.authority;
  if (document.valid_until <= period_start) {
    admission.status = torbase::Status::FailedPrecondition(
        "replayed vote: validity window [" + std::to_string(document.valid_after) + ", " +
        std::to_string(document.valid_until) + ") closed before period start " +
        std::to_string(period_start));
    admission.reason = VoteRejectReason::kStaleWindow;
    return admission;
  }

  admission.document = std::make_shared<const VoteDocument>(std::move(document));
  admission.text = std::make_shared<const std::string>(text);
  return admission;
}

}  // namespace tordir
