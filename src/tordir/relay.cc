#include "src/tordir/relay.h"

#include <cctype>

#include "src/common/bytes.h"

namespace tordir {

const RelayFlag kRelayFlagOrder[10] = {
    RelayFlag::kAuthority, RelayFlag::kBadExit, RelayFlag::kExit,   RelayFlag::kFast,
    RelayFlag::kGuard,     RelayFlag::kHSDir,   RelayFlag::kRunning, RelayFlag::kStable,
    RelayFlag::kV2Dir,     RelayFlag::kValid,
};

std::string FingerprintHex(const Fingerprint& fp) { return torbase::HexEncodeUpper(fp); }

std::optional<Fingerprint> FingerprintFromHex(std::string_view hex) {
  auto decoded = torbase::HexDecode(hex);
  if (!decoded.has_value() || decoded->size() != 20) {
    return std::nullopt;
  }
  Fingerprint fp;
  std::copy(decoded->begin(), decoded->end(), fp.begin());
  return fp;
}

const char* RelayFlagName(RelayFlag flag) {
  switch (flag) {
    case RelayFlag::kAuthority:
      return "Authority";
    case RelayFlag::kBadExit:
      return "BadExit";
    case RelayFlag::kExit:
      return "Exit";
    case RelayFlag::kFast:
      return "Fast";
    case RelayFlag::kGuard:
      return "Guard";
    case RelayFlag::kHSDir:
      return "HSDir";
    case RelayFlag::kRunning:
      return "Running";
    case RelayFlag::kStable:
      return "Stable";
    case RelayFlag::kV2Dir:
      return "V2Dir";
    case RelayFlag::kValid:
      return "Valid";
  }
  return "?";
}

std::optional<RelayFlag> RelayFlagFromName(std::string_view name) {
  // First-character dispatch: the parser calls this for every flag of every
  // relay's "s" line, and a linear scan over all ten names costs ~5 string
  // compares per call. Only 'V' is ambiguous.
  if (name.empty()) {
    return std::nullopt;
  }
  switch (name[0]) {
    case 'A':
      if (name == "Authority") return RelayFlag::kAuthority;
      break;
    case 'B':
      if (name == "BadExit") return RelayFlag::kBadExit;
      break;
    case 'E':
      if (name == "Exit") return RelayFlag::kExit;
      break;
    case 'F':
      if (name == "Fast") return RelayFlag::kFast;
      break;
    case 'G':
      if (name == "Guard") return RelayFlag::kGuard;
      break;
    case 'H':
      if (name == "HSDir") return RelayFlag::kHSDir;
      break;
    case 'R':
      if (name == "Running") return RelayFlag::kRunning;
      break;
    case 'S':
      if (name == "Stable") return RelayFlag::kStable;
      break;
    case 'V':
      if (name == "V2Dir") return RelayFlag::kV2Dir;
      if (name == "Valid") return RelayFlag::kValid;
      break;
    default:
      break;
  }
  return std::nullopt;
}

std::string FlagsToString(uint16_t flags) {
  std::string out;
  for (RelayFlag flag : kRelayFlagOrder) {
    if ((flags & static_cast<uint16_t>(flag)) != 0) {
      if (!out.empty()) {
        out += ' ';
      }
      out += RelayFlagName(flag);
    }
  }
  return out;
}

bool RelayOrder(const RelayStatus& a, const RelayStatus& b) {
  return a.fingerprint < b.fingerprint;
}

int CompareVersions(std::string_view a, std::string_view b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    const bool a_digit = i < a.size() && std::isdigit(static_cast<unsigned char>(a[i])) != 0;
    const bool b_digit = j < b.size() && std::isdigit(static_cast<unsigned char>(b[j])) != 0;
    if (a_digit && b_digit) {
      // Compare the full numeric runs.
      uint64_t va = 0;
      uint64_t vb = 0;
      while (i < a.size() && std::isdigit(static_cast<unsigned char>(a[i])) != 0) {
        va = va * 10 + static_cast<uint64_t>(a[i++] - '0');
      }
      while (j < b.size() && std::isdigit(static_cast<unsigned char>(b[j])) != 0) {
        vb = vb * 10 + static_cast<uint64_t>(b[j++] - '0');
      }
      if (va != vb) {
        return va < vb ? -1 : 1;
      }
      continue;
    }
    const char ca = i < a.size() ? a[i] : '\0';
    const char cb = j < b.size() ? b[j] : '\0';
    if (ca != cb) {
      return ca < cb ? -1 : 1;
    }
    ++i;
    ++j;
  }
  return 0;
}

}  // namespace tordir
