#include "src/tordir/consensus_diff.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <cstring>
#include <vector>

#include "src/common/bytes.h"
#include "src/crypto/sha256_tree.h"
#include "src/tordir/dirspec.h"

namespace tordir {
namespace {

using torbase::Result;
using torbase::Status;

constexpr std::string_view kDiffVersionLine = "network-status-diff-version 1";
constexpr std::string_view kBasePrefix = "base sha256-tree-v1 ";
constexpr std::string_view kTargetPrefix = "target sha256-tree-v1 ";
constexpr std::string_view kVotesCountedPrefix = "target-votes-counted ";
constexpr std::string_view kValidAfterPrefix = "target-valid-after ";
constexpr std::string_view kFreshUntilPrefix = "target-fresh-until ";
constexpr std::string_view kValidUntilPrefix = "target-valid-until ";
constexpr std::string_view kDiffFooterLine = "directory-diff-footer";
constexpr std::string_view kSignaturePrefix = "directory-signature ";
constexpr std::string_view kBaseFooter = "\ndirectory-footer\n";

// Row equality in the *consensus-serialized* form: every field that reaches
// the wire. `measured` is deliberately excluded — consensus rows never carry
// it (see WriteConsensusUnsigned), so two rows differing only there serialize
// identically and must not produce a C op.
bool RowEqualInConsensusForm(const RelayStatus& a, const RelayStatus& b) {
  return a.fingerprint == b.fingerprint && a.nickname == b.nickname && a.address == b.address &&
         a.or_port == b.or_port && a.dir_port == b.dir_port && a.published == b.published &&
         a.flags == b.flags && a.version == b.version && a.protocols == b.protocols &&
         a.bandwidth == b.bandwidth && a.exit_policy == b.exit_policy &&
         a.microdesc_digest == b.microdesc_digest;
}

// Fingerprint order over the sorted relay lists; memcmp matches RelayOrder
// (byte-wise over the 20-byte fingerprint).
int CompareFingerprints(const Fingerprint& a, const Fingerprint& b) {
  return std::memcmp(a.data(), b.data(), a.size());
}

void AppendOpLine(std::string& out, char op, const Fingerprint& fp) {
  char buf[43];
  buf[0] = op;
  buf[1] = ' ';
  torbase::HexEncodeUpperTo(fp, buf + 2);
  buf[42] = '\n';
  out.append(buf, sizeof(buf));
}

void AppendU64Line(std::string& out, std::string_view prefix, uint64_t value) {
  char digits[20];
  const auto result = std::to_chars(digits, digits + sizeof(digits), value);
  out.append(prefix);
  out.append(digits, static_cast<size_t>(result.ptr - digits));
  out.push_back('\n');
}

// Canonical documents are already fingerprint-sorted; unsorted callers pay one
// shadow sort so the merge (and the op ordering Apply enforces) stays correct.
const std::vector<RelayStatus>& SortedRelays(const std::vector<RelayStatus>& relays,
                                             std::vector<RelayStatus>& scratch) {
  if (std::is_sorted(relays.begin(), relays.end(), RelayOrder)) {
    return relays;
  }
  scratch = relays;
  std::sort(scratch.begin(), scratch.end(), RelayOrder);
  return scratch;
}

// Reads the next '\n'-terminated line; refuses unterminated tails (canonical
// diffs always end in a newline).
bool NextLine(std::string_view text, size_t& pos, std::string_view& line) {
  if (pos >= text.size()) {
    return false;
  }
  const size_t nl = text.find('\n', pos);
  if (nl == std::string_view::npos) {
    return false;
  }
  line = text.substr(pos, nl - pos);
  pos = nl + 1;
  return true;
}

bool ParseDigestLine(std::string_view line, std::string_view prefix, torcrypto::Digest256& out) {
  if (line.size() != prefix.size() + 64 || line.substr(0, prefix.size()) != prefix) {
    return false;
  }
  std::array<uint8_t, 32> bytes;
  if (!torbase::HexDecodeTo(line.substr(prefix.size()), bytes)) {
    return false;
  }
  out = torcrypto::Digest256(bytes);
  return true;
}

bool ParseU64Line(std::string_view line, std::string_view prefix, uint64_t& out) {
  if (line.substr(0, prefix.size()) != prefix) {
    return false;
  }
  const std::string_view digits = line.substr(prefix.size());
  if (digits.empty()) {
    return false;
  }
  const auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), out);
  return ec == std::errc() && ptr == digits.data() + digits.size();
}

struct DiffFraming {
  torcrypto::Digest256 base_digest;
  torcrypto::Digest256 target_digest;
  uint64_t vote_count = 0;
  uint64_t valid_after = 0;
  uint64_t fresh_until = 0;
  uint64_t valid_until = 0;
};

Status ParseFraming(std::string_view diff, size_t& pos, DiffFraming& framing, bool header_only) {
  std::string_view line;
  if (!NextLine(diff, pos, line) || line != kDiffVersionLine) {
    return Status::InvalidArgument("not a v1 consensus diff");
  }
  if (!NextLine(diff, pos, line) || !ParseDigestLine(line, kBasePrefix, framing.base_digest)) {
    return Status::InvalidArgument("malformed diff base digest line");
  }
  if (!NextLine(diff, pos, line) || !ParseDigestLine(line, kTargetPrefix, framing.target_digest)) {
    return Status::InvalidArgument("malformed diff target digest line");
  }
  if (header_only) {
    return Status::Ok();
  }
  if (!NextLine(diff, pos, line) || !ParseU64Line(line, kVotesCountedPrefix, framing.vote_count) ||
      !NextLine(diff, pos, line) || !ParseU64Line(line, kValidAfterPrefix, framing.valid_after) ||
      !NextLine(diff, pos, line) || !ParseU64Line(line, kFreshUntilPrefix, framing.fresh_until) ||
      !NextLine(diff, pos, line) || !ParseU64Line(line, kValidUntilPrefix, framing.valid_until)) {
    return Status::InvalidArgument("malformed diff target header line");
  }
  return Status::Ok();
}

bool IsUppercaseHex40(std::string_view s) {
  if (s.size() != 40) {
    return false;
  }
  for (const char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'A' && c <= 'F'))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string ComputeConsensusDiff(const ConsensusDocument& base, const ConsensusDocument& target,
                                 const ConsensusDiffOptions& options) {
  const torcrypto::Digest256 base_digest = options.base_digest.IsZero()
                                               ? TreeSignedConsensusDigest(base, options.pool)
                                               : options.base_digest;
  const torcrypto::Digest256 target_digest = options.target_digest.IsZero()
                                                 ? TreeSignedConsensusDigest(target, options.pool)
                                                 : options.target_digest;

  std::vector<RelayStatus> base_scratch;
  std::vector<RelayStatus> target_scratch;
  const std::vector<RelayStatus>& b = SortedRelays(base.relays, base_scratch);
  const std::vector<RelayStatus>& t = SortedRelays(target.relays, target_scratch);

  // Count pass: exact op totals size the output in one reservation.
  size_t removed = 0;
  size_t carried = 0;  // changed + added rows, each followed by replacement bytes
  for (size_t i = 0, j = 0; i < b.size() || j < t.size();) {
    const int cmp = i == b.size()   ? 1
                    : j == t.size() ? -1
                                    : CompareFingerprints(b[i].fingerprint, t[j].fingerprint);
    if (cmp < 0) {
      ++removed;
      ++i;
    } else if (cmp > 0) {
      ++carried;
      ++j;
    } else {
      carried += RowEqualInConsensusForm(b[i], t[j]) ? 0 : 1;
      ++i;
      ++j;
    }
  }

  std::string out;
  out.reserve(512 + removed * 43 + carried * (43 + 470) + target.signatures.size() * 160);
  out.append(kDiffVersionLine);
  out.push_back('\n');
  out.append(kBasePrefix);
  out.append(base_digest.ToHex());
  out.push_back('\n');
  out.append(kTargetPrefix);
  out.append(target_digest.ToHex());
  out.push_back('\n');
  AppendU64Line(out, kVotesCountedPrefix, target.vote_count);
  AppendU64Line(out, kValidAfterPrefix, target.valid_after);
  AppendU64Line(out, kFreshUntilPrefix, target.fresh_until);
  AppendU64Line(out, kValidUntilPrefix, target.valid_until);

  for (size_t i = 0, j = 0; i < b.size() || j < t.size();) {
    const int cmp = i == b.size()   ? 1
                    : j == t.size() ? -1
                                    : CompareFingerprints(b[i].fingerprint, t[j].fingerprint);
    if (cmp < 0) {
      AppendOpLine(out, 'X', b[i].fingerprint);
      ++i;
    } else if (cmp > 0) {
      AppendOpLine(out, 'A', t[j].fingerprint);
      AppendRelayRowText(out, t[j], /*include_measured=*/false);
      ++j;
    } else {
      if (!RowEqualInConsensusForm(b[i], t[j])) {
        AppendOpLine(out, 'C', t[j].fingerprint);
        AppendRelayRowText(out, t[j], /*include_measured=*/false);
      }
      ++i;
      ++j;
    }
  }
  out.append(kDiffFooterLine);
  out.push_back('\n');
  AppendSignatureLinesText(out, target.signatures);
  return out;
}

Result<std::string> ApplyConsensusDiff(std::string_view base, std::string_view diff,
                                       const ApplyDiffOptions& options) {
  size_t pos = 0;
  DiffFraming framing;
  if (Status s = ParseFraming(diff, pos, framing, /*header_only=*/false); !s.ok()) {
    return s;
  }
  if (options.verify_base &&
      torcrypto::Digest256(torcrypto::Sha256TreeDigest(base, options.pool)) !=
          framing.base_digest) {
    return Status::FailedPrecondition("consensus diff base digest mismatch");
  }

  // Bound the base's relay-row region: everything before the first "r " line
  // is the old header (rewritten from the diff framing), everything after the
  // footer is the old signature tail (replaced by the diff's).
  const size_t footer_nl = base.find(kBaseFooter);
  if (footer_nl == std::string_view::npos) {
    return Status::InvalidArgument("base document has no directory-footer");
  }
  const size_t rows_end = footer_nl + 1;  // offset of the footer's 'd'
  size_t first_row = base.find("\nr ");
  first_row =
      (first_row == std::string_view::npos || first_row > footer_nl) ? rows_end : first_row + 1;

  std::string out;
  out.reserve(base.size() + diff.size());
  out.append("network-status-version 3\nvote-status consensus\n");
  AppendU64Line(out, "votes-counted ", framing.vote_count);
  AppendU64Line(out, "valid-after ", framing.valid_after);
  AppendU64Line(out, "fresh-until ", framing.fresh_until);
  AppendU64Line(out, "valid-until ", framing.valid_until);

  // One streaming merge over the base rows: `row` is the current row's start,
  // `copy_from` the start of the pending bulk copy. Rows between edit points
  // are never touched byte-by-byte — they flush in one append per op.
  size_t row = first_row;
  size_t copy_from = first_row;
  std::string_view row_fp;
  const auto load_fp = [&]() -> bool {
    // "r <nickname> <FP-40-hex> ..." — the fingerprint sits after the second
    // space and is followed by one.
    const size_t sp = base.find(' ', row + 2);
    if (sp == std::string_view::npos || sp + 41 >= rows_end || base[sp + 41] != ' ') {
      return false;
    }
    row_fp = base.substr(sp + 1, 40);
    return true;
  };
  const auto advance_row = [&]() -> bool {
    const size_t next = base.find("\nr ", row);
    row = (next == std::string_view::npos || next > footer_nl) ? rows_end : next + 1;
    return row == rows_end || load_fp();
  };
  if (row != rows_end && !load_fp()) {
    return Status::InvalidArgument("malformed base relay row");
  }

  char prev_fp[40];
  bool have_prev = false;
  bool saw_footer = false;
  std::string_view line;
  while (NextLine(diff, pos, line)) {
    if (line == kDiffFooterLine) {
      saw_footer = true;
      break;
    }
    if (line.size() != 42 || line[1] != ' ' ||
        (line[0] != 'X' && line[0] != 'C' && line[0] != 'A')) {
      return Status::InvalidArgument("malformed diff op line: " + std::string(line));
    }
    const char op = line[0];
    const std::string_view fp = line.substr(2);
    if (!IsUppercaseHex40(fp)) {
      return Status::InvalidArgument("bad diff op fingerprint: " + std::string(fp));
    }
    // Strictly increasing ops are what make the single forward merge valid.
    if (have_prev && fp.compare(std::string_view(prev_fp, 40)) <= 0) {
      return Status::InvalidArgument("diff ops out of fingerprint order");
    }
    std::memcpy(prev_fp, fp.data(), 40);
    have_prev = true;

    // C/A replacement bytes: every following line until the next op or the
    // footer. Relay item lines are all lowercase, so uppercase ops and the
    // footer's 'd' terminate the run unambiguously.
    std::string_view replacement;
    if (op != 'X') {
      const size_t r_begin = pos;
      while (pos < diff.size()) {
        const char c = diff[pos];
        if (c == 'X' || c == 'C' || c == 'A' || c == 'd') {
          break;
        }
        const size_t nl = diff.find('\n', pos);
        if (nl == std::string_view::npos) {
          return Status::InvalidArgument("unterminated diff row line");
        }
        pos = nl + 1;
      }
      replacement = diff.substr(r_begin, pos - r_begin);
      if (replacement.substr(0, 2) != "r ") {
        return Status::InvalidArgument("diff op carries no replacement row");
      }
    }

    if (op == 'A') {
      // Insert before the first base row with a larger fingerprint.
      while (row != rows_end && row_fp < fp) {
        if (!advance_row()) {
          return Status::InvalidArgument("malformed base relay row");
        }
      }
      if (row != rows_end && row_fp == fp) {
        return Status::InvalidArgument("diff insert collides with base row");
      }
      out.append(base.substr(copy_from, row - copy_from));
      copy_from = row;
      out.append(replacement);
    } else {
      // X/C: seek the exact base row, flush the bulk copy up to it, skip it.
      while (row != rows_end && row_fp < fp) {
        if (!advance_row()) {
          return Status::InvalidArgument("malformed base relay row");
        }
      }
      if (row == rows_end || row_fp != fp) {
        return Status::InvalidArgument("diff op fingerprint not in base document");
      }
      out.append(base.substr(copy_from, row - copy_from));
      if (!advance_row()) {
        return Status::InvalidArgument("malformed base relay row");
      }
      copy_from = row;
      if (op == 'C') {
        out.append(replacement);
      }
    }
  }
  if (!saw_footer) {
    return Status::InvalidArgument("missing directory-diff-footer");
  }

  // Remaining base rows, the footer, then the diff's signature tail verbatim
  // (shape-checked so structural damage is caught even before the digest).
  out.append(base.substr(copy_from, rows_end - copy_from));
  out.append("directory-footer\n");
  const std::string_view signatures = diff.substr(pos);
  for (size_t sig_pos = 0; sig_pos < signatures.size();) {
    if (signatures.substr(sig_pos, kSignaturePrefix.size()) != kSignaturePrefix) {
      return Status::InvalidArgument("unexpected line after directory-diff-footer");
    }
    const size_t nl = signatures.find('\n', sig_pos);
    if (nl == std::string_view::npos) {
      return Status::InvalidArgument("unterminated signature line");
    }
    sig_pos = nl + 1;
  }
  out.append(signatures);

  if (options.verify_target &&
      torcrypto::Digest256(torcrypto::Sha256TreeDigest(out, options.pool)) !=
          framing.target_digest) {
    return Status::FailedPrecondition("patched document does not match the target digest");
  }
  return out;
}

Result<ConsensusDiffHeader> ParseConsensusDiffHeader(std::string_view diff) {
  size_t pos = 0;
  DiffFraming framing;
  if (Status s = ParseFraming(diff, pos, framing, /*header_only=*/true); !s.ok()) {
    return s;
  }
  return ConsensusDiffHeader{framing.base_digest, framing.target_digest};
}

Result<std::string> ApplyConsensusDiffChain(std::string_view base,
                                            const std::vector<std::string_view>& diffs,
                                            const ApplyDiffOptions& options) {
  if (diffs.empty()) {
    return std::string(base);
  }
  // The chain anchor: the client's held document must be the one the first
  // diff patches. Verified unconditionally — this is the one link where no
  // previous target digest vouches for the base bytes.
  Result<ConsensusDiffHeader> first = ParseConsensusDiffHeader(diffs.front());
  if (!first.ok()) {
    return first.status();
  }
  if (torcrypto::Digest256(torcrypto::Sha256TreeDigest(base, options.pool)) !=
      first->base_digest) {
    return Status::FailedPrecondition("diff chain does not start at the held document");
  }

  torcrypto::Digest256 previous_target = first->base_digest;
  std::string current(base);
  for (size_t i = 0; i < diffs.size(); ++i) {
    Result<ConsensusDiffHeader> header = ParseConsensusDiffHeader(diffs[i]);
    if (!header.ok()) {
      return header.status();
    }
    if (header->base_digest != previous_target) {
      return Status::FailedPrecondition("diff chain broken at link " + std::to_string(i) +
                                        ": base digest does not match the previous target");
    }
    // The anchor check (and each link's verified target) already vouch for
    // the running document, so per-link base verification is redundant work.
    ApplyDiffOptions link_options = options;
    link_options.verify_base = false;
    Result<std::string> patched = ApplyConsensusDiff(current, diffs[i], link_options);
    if (!patched.ok()) {
      return patched.status();
    }
    current = std::move(*patched);
    previous_target = header->target_digest;
  }
  return current;
}

}  // namespace tordir
