// Interned relay strings: a process-wide, append-only string pool plus the
// 4-byte handle type (`InternedString`) that RelayStatus uses for its five
// string fields (nickname, address, version, protocols, exit_policy).
//
// Why interning: every vote row at relay count n carries the same handful of
// version/protocol/exit-policy strings and a unique nickname/address, and the
// consensus hot path (ComputeConsensus) compares and copies those strings
// O(n·a) times per round. Hash-consing them once — at workload build or parse
// time — makes every later copy a 4-byte move, every equality test an integer
// compare, and shrinks RelayStatus enough that a 64k-relay vote copies in a
// single memcpy-friendly sweep. This is the same move leap's name interning
// and libhotstuff's flat command batches use to survive production rates.
//
// Pool semantics:
//   * Entries are immutable: once an id is handed out, its bytes never move
//     and never change. The pool only grows (it is intentionally "leaky"; the
//     process-wide set of distinct relay strings is small — a few MB even for
//     64k-relay workloads).
//   * Equal strings always intern to the same id (hash-consing), so ids are
//     comparable across documents, workloads and threads — two independently
//     parsed copies of a vote produce bit-identical RelayStatus rows.
//   * Intern() resolves repeat strings through a lock-free open-addressing
//     index (append-only slots published with release stores), so the hit
//     path — all of steady-state parsing — takes no lock at all; only genuine
//     inserts fall through to the mutex. View() is lock-free. A reader may
//     resolve any id it legitimately holds: transporting an id across threads
//     requires a happens-before edge (thread-pool task handoff, a mutexed
//     cache, ...), and that same edge publishes the entry bytes. This is what
//     keeps the scenario runner's parallel sweeps (and its parallel workload
//     materialization) TSan-clean and contention-free: concurrent builders
//     mostly hit the lock-free index, and the rare concurrent insert is
//     mutex-safe, merely contended.
//   * Because the pool never evicts, adversarial inputs can grow it for the
//     process lifetime; that is an accepted simulator trade-off, and
//     exhausting the 128M-entry id space aborts loudly rather than wrapping.
//   * Id 0 is always the empty string, so a default InternedString is "".
#ifndef SRC_TORDIR_STRING_POOL_H_
#define SRC_TORDIR_STRING_POOL_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"

namespace tordir {

class StringPool {
 public:
  // The process-wide pool all InternedStrings resolve against.
  static StringPool& Global();

  StringPool();
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  // Returns the id for `s`, inserting it if new. Thread-safe: repeats (all of
  // steady-state parsing) resolve through the lock-free index probe inline;
  // only genuine inserts take the mutex.
  uint32_t Intern(std::string_view s) {
    if (s.empty()) {
      return 0;
    }
    const uint64_t hash = torbase::HashBytes(s);
    const uint32_t id = Probe(*index_.load(std::memory_order_acquire), s, hash);
    if (id != kNotFound) {
      return id;
    }
    return InternSlow(s, hash);
  }

  // Warms the index slot a subsequent Intern(s) will probe. The dir-spec
  // parser issues these for a relay's unique strings before decoding the rest
  // of the entry, hiding the (dependent-load) probe latency behind real work.
  void PrefetchIntern(std::string_view s) const {
    const IndexTable* table = index_.load(std::memory_order_acquire);
    __builtin_prefetch(&table->slots[static_cast<uint32_t>(torbase::HashBytes(s)) & table->mask]);
  }

  // Resolves an id previously returned by Intern(). Lock-free (inline: the
  // serializer resolves five ids per relay); see the header comment for the
  // cross-thread visibility contract.
  std::string_view View(uint32_t id) const {
    assert(id < count_.load(std::memory_order_acquire) && "unknown string id");
    const Chunk* chunk = chunks_[id >> kChunkBits].load(std::memory_order_acquire);
    return chunk->entries[id & (kChunkSize - 1)];
  }

  // Warms the entry cell View(id) will read; the serializer prefetches the
  // next relay's unique strings while formatting the current one.
  void PrefetchView(uint32_t id) const {
    const Chunk* chunk = chunks_[id >> kChunkBits].load(std::memory_order_acquire);
    __builtin_prefetch(&chunk->entries[id & (kChunkSize - 1)]);
  }

  // Number of distinct strings interned so far (including the empty string).
  size_t size() const { return count_.load(std::memory_order_acquire); }

 private:
  static constexpr uint32_t kChunkBits = 12;
  static constexpr uint32_t kChunkSize = 1u << kChunkBits;  // 4096 entries
  static constexpr uint32_t kMaxChunks = 1u << 15;          // 128M strings

  struct Chunk {
    std::string_view entries[kChunkSize];
  };

  // Open-addressing index with lock-free probes. A slot's tag_id is either 0
  // (empty, forever or not-yet-published) or packs {hash tag, id + 1}; the
  // key's size and leading bytes live inline in the slot (arena pointer for
  // the tail), so a warm hit costs the slot's cache line and nothing else —
  // no chunk/arena chase. Slots are write-once — the pool never deletes — and
  // tag_id is published last (release), so a reader either sees a fully
  // written slot or keeps probing. Resizing publishes a fresh table; readers
  // holding the old one see a complete prefix of the entries and miss into
  // the mutex path, which re-probes the current table before inserting.
  static constexpr size_t kInlineKeyBytes = 16;

  struct IndexSlot {
    std::atomic<uint64_t> tag_id{0};
    uint32_t size = 0;
    char head[kInlineKeyBytes] = {};
    const char* tail = nullptr;  // arena bytes past `head` for longer keys
  };

  struct IndexTable {
    explicit IndexTable(uint32_t capacity)
        : mask(capacity - 1), slots(new IndexSlot[capacity]) {}
    const uint32_t mask;  // capacity - 1; capacity is a power of two
    std::unique_ptr<IndexSlot[]> slots;
  };

  static constexpr uint32_t kNotFound = ~0u;
  static uint64_t PackSlot(uint64_t hash, uint32_t id) {
    return (hash >> 32 << 32) | (static_cast<uint64_t>(id) + 1);
  }

  // Probes `table` for `s` (pre-hashed as `hash`). Returns the id, or
  // kNotFound after an empty slot; *empty_slot (mutex path only) receives the
  // insertion point.
  uint32_t Probe(const IndexTable& table, std::string_view s, uint64_t hash,
                 uint32_t* empty_slot = nullptr) const {
    const uint32_t tag = static_cast<uint32_t>(hash >> 32);
    uint32_t idx = static_cast<uint32_t>(hash) & table.mask;
    while (true) {
      const IndexSlot& slot = table.slots[idx];
      const uint64_t tag_id = slot.tag_id.load(std::memory_order_acquire);
      if (tag_id == 0) {
        if (empty_slot != nullptr) {
          *empty_slot = idx;
        }
        return kNotFound;
      }
      if (static_cast<uint32_t>(tag_id >> 32) == tag && slot.size == s.size()) {
        const size_t head_len = s.size() < kInlineKeyBytes ? s.size() : kInlineKeyBytes;
        if (std::memcmp(slot.head, s.data(), head_len) == 0 &&
            (s.size() <= kInlineKeyBytes ||
             std::memcmp(slot.tail, s.data() + kInlineKeyBytes,
                         s.size() - kInlineKeyBytes) == 0)) {
          return static_cast<uint32_t>(tag_id) - 1;
        }
      }
      idx = (idx + 1) & table.mask;
    }
  }

  uint32_t InternSlow(std::string_view s, uint64_t hash);
  void GrowIndexLocked();

  // Copies `s` into the arena and returns a stable view of the copy.
  std::string_view ArenaCopy(std::string_view s);

  mutable std::mutex mutex_;
  std::atomic<IndexTable*> index_;
  // Replaced tables are retired here, never freed: a concurrent reader may
  // still be probing one (same leak-by-design as the arena).
  std::vector<std::unique_ptr<IndexTable>> retired_indexes_;
  uint32_t index_filled_ = 0;
  std::vector<std::unique_ptr<char[]>> arena_;
  // Bump allocator over the most recent *regular* arena block. Oversized
  // strings get dedicated blocks that never become the bump block.
  char* bump_ptr_ = nullptr;
  size_t bump_remaining_ = 0;
  std::atomic<Chunk*> chunks_[kMaxChunks] = {};
  std::atomic<uint32_t> count_{0};
};

// A 4-byte interned string handle. Implicitly converts from and compares
// against ordinary strings, so call sites read like std::string; copies and
// equality tests are integer operations.
class InternedString {
 public:
  constexpr InternedString() = default;  // the empty string
  InternedString(std::string_view s) : id_(StringPool::Global().Intern(s)) {}
  InternedString(const char* s) : InternedString(std::string_view(s)) {}
  InternedString(const std::string& s) : InternedString(std::string_view(s)) {}

  // Rewraps an id previously returned by StringPool::Global().Intern() (or
  // InternedString::id()) without re-hashing the bytes. The dir-spec parser's
  // per-document memo uses this to turn its cached ids back into handles; ids
  // from anywhere else are a bug.
  static InternedString FromId(uint32_t id) {
    InternedString s;
    s.id_ = id;
    return s;
  }

  std::string_view view() const { return StringPool::Global().View(id_); }
  operator std::string_view() const { return view(); }
  std::string str() const { return std::string(view()); }
  bool empty() const { return id_ == 0; }
  size_t size() const { return view().size(); }
  uint32_t id() const { return id_; }

  // Hash-consing makes id equality equivalent to byte equality.
  friend bool operator==(InternedString a, InternedString b) { return a.id_ == b.id_; }
  friend bool operator==(InternedString a, std::string_view b) { return a.view() == b; }
  friend bool operator==(InternedString a, const char* b) { return a.view() == b; }
  friend bool operator==(InternedString a, const std::string& b) { return a.view() == b; }

 private:
  uint32_t id_ = 0;
};

// For test failure messages and logs.
std::ostream& operator<<(std::ostream& os, InternedString s);

}  // namespace tordir

#endif  // SRC_TORDIR_STRING_POOL_H_
