// Interned relay strings: a process-wide, append-only string pool plus the
// 4-byte handle type (`InternedString`) that RelayStatus uses for its five
// string fields (nickname, address, version, protocols, exit_policy).
//
// Why interning: every vote row at relay count n carries the same handful of
// version/protocol/exit-policy strings and a unique nickname/address, and the
// consensus hot path (ComputeConsensus) compares and copies those strings
// O(n·a) times per round. Hash-consing them once — at workload build or parse
// time — makes every later copy a 4-byte move, every equality test an integer
// compare, and shrinks RelayStatus enough that a 64k-relay vote copies in a
// single memcpy-friendly sweep. This is the same move leap's name interning
// and libhotstuff's flat command batches use to survive production rates.
//
// Pool semantics:
//   * Entries are immutable: once an id is handed out, its bytes never move
//     and never change. The pool only grows (it is intentionally "leaky"; the
//     process-wide set of distinct relay strings is small — a few MB even for
//     64k-relay workloads).
//   * Equal strings always intern to the same id (hash-consing), so ids are
//     comparable across documents, workloads and threads — two independently
//     parsed copies of a vote produce bit-identical RelayStatus rows.
//   * Intern() is guarded by a mutex; View() is lock-free. A reader may
//     resolve any id it legitimately holds: transporting an id across threads
//     requires a happens-before edge (thread-pool task handoff, a mutexed
//     cache, ...), and that same edge publishes the entry bytes. This is what
//     keeps the scenario runner's parallel sweeps TSan-clean: workloads
//     intern serially at build time and cells mostly View() — run-time
//     interning happens only when a cell parses non-canonical bytes (vote-
//     cache miss), which is mutex-safe, merely contended.
//   * Because the pool never evicts, adversarial inputs can grow it for the
//     process lifetime; that is an accepted simulator trade-off, and
//     exhausting the 128M-entry id space aborts loudly rather than wrapping.
//   * Id 0 is always the empty string, so a default InternedString is "".
#ifndef SRC_TORDIR_STRING_POOL_H_
#define SRC_TORDIR_STRING_POOL_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tordir {

class StringPool {
 public:
  // The process-wide pool all InternedStrings resolve against.
  static StringPool& Global();

  StringPool();
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  // Returns the id for `s`, inserting it if new. Thread-safe (mutex).
  uint32_t Intern(std::string_view s);

  // Resolves an id previously returned by Intern(). Lock-free; see the
  // header comment for the cross-thread visibility contract.
  std::string_view View(uint32_t id) const;

  // Number of distinct strings interned so far (including the empty string).
  size_t size() const { return count_.load(std::memory_order_acquire); }

 private:
  static constexpr uint32_t kChunkBits = 12;
  static constexpr uint32_t kChunkSize = 1u << kChunkBits;  // 4096 entries
  static constexpr uint32_t kMaxChunks = 1u << 15;          // 128M strings

  struct Chunk {
    std::string_view entries[kChunkSize];
  };

  // Copies `s` into the arena and returns a stable view of the copy.
  std::string_view ArenaCopy(std::string_view s);

  mutable std::mutex mutex_;
  std::unordered_map<std::string_view, uint32_t> index_;
  std::vector<std::unique_ptr<char[]>> arena_;
  // Bump allocator over the most recent *regular* arena block. Oversized
  // strings get dedicated blocks that never become the bump block.
  char* bump_ptr_ = nullptr;
  size_t bump_remaining_ = 0;
  std::atomic<Chunk*> chunks_[kMaxChunks] = {};
  std::atomic<uint32_t> count_{0};
};

// A 4-byte interned string handle. Implicitly converts from and compares
// against ordinary strings, so call sites read like std::string; copies and
// equality tests are integer operations.
class InternedString {
 public:
  constexpr InternedString() = default;  // the empty string
  InternedString(std::string_view s) : id_(StringPool::Global().Intern(s)) {}
  InternedString(const char* s) : InternedString(std::string_view(s)) {}
  InternedString(const std::string& s) : InternedString(std::string_view(s)) {}

  std::string_view view() const { return StringPool::Global().View(id_); }
  operator std::string_view() const { return view(); }
  std::string str() const { return std::string(view()); }
  bool empty() const { return id_ == 0; }
  size_t size() const { return view().size(); }
  uint32_t id() const { return id_; }

  // Hash-consing makes id equality equivalent to byte equality.
  friend bool operator==(InternedString a, InternedString b) { return a.id_ == b.id_; }
  friend bool operator==(InternedString a, std::string_view b) { return a.view() == b; }
  friend bool operator==(InternedString a, const char* b) { return a.view() == b; }
  friend bool operator==(InternedString a, const std::string& b) { return a.view() == b; }

 private:
  uint32_t id_ = 0;
};

// For test failure messages and logs.
std::ostream& operator<<(std::ostream& os, InternedString s);

}  // namespace tordir

#endif  // SRC_TORDIR_STRING_POOL_H_
