// Consensus freshness rules and network-availability accounting (paper §2/§3.1):
// a consensus document is fresh for 1 hour, then stale (clients should avoid
// it) but usable, and invalid 3 hours after generation. Because authorities
// attempt one consensus per hour, three consecutive failed runs leave clients
// with no valid consensus — the whole network halts, which is what makes the
// 5-minute-per-hour DDoS catastrophic.
#ifndef SRC_TORDIR_FRESHNESS_H_
#define SRC_TORDIR_FRESHNESS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/crypto/signature.h"
#include "src/tordir/vote.h"

namespace tordir {

enum class ConsensusFreshness {
  kFresh,    // now < fresh_until
  kStale,    // fresh_until <= now < valid_until: discouraged but usable
  kInvalid,  // now >= valid_until: must not be used
};

const char* FreshnessName(ConsensusFreshness freshness);

ConsensusFreshness EvaluateFreshness(const ConsensusDocument& consensus, uint64_t now_unix);

// Full client-side validation: signature lines must verify over the unsigned
// body digest, come from distinct known authorities, and reach the majority
// threshold (floor(n/2)+1 of `authority_count`).
bool ValidateConsensusSignatures(const ConsensusDocument& consensus,
                                 const torcrypto::KeyDirectory& directory,
                                 uint32_t authority_count);

// --- availability timeline ---------------------------------------------------
// Given the success/failure of each hourly consensus run, derives when clients
// run out of valid consensus documents. Hour h is "covered" if any run in
// (h - validity_hours, h] succeeded.
struct AvailabilityTimeline {
  // For each hour index: did clients hold a valid (<=3h old) consensus?
  std::vector<bool> network_up;
  // First hour with no valid consensus, if any.
  std::optional<size_t> first_down_hour;
  size_t hours_down = 0;
};

AvailabilityTimeline AnalyzeAvailability(const std::vector<bool>& hourly_run_success,
                                         uint32_t validity_hours = 3);

}  // namespace tordir

#endif  // SRC_TORDIR_FRESHNESS_H_
