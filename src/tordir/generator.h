// Synthetic relay-population and vote-document generation.
//
// The paper builds its workloads from Tor Metrics history (Fig. 6) and
// tornettools-generated private networks. Without that proprietary pipeline we
// generate deterministic synthetic populations whose *document sizes* and
// *inter-authority disagreements* match the live network's shape, which is all
// the bandwidth experiments depend on (DESIGN.md §1).
#ifndef SRC_TORDIR_GENERATOR_H_
#define SRC_TORDIR_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/tordir/vote.h"

namespace tordir {

struct PopulationConfig {
  size_t relay_count = 7000;
  uint64_t seed = 1;
  // Probabilities for flag assignment, matching live-network frequencies.
  double p_fast = 0.80;
  double p_stable = 0.55;
  double p_guard = 0.35;
  double p_exit = 0.20;
  double p_hsdir = 0.40;
  double p_v2dir = 0.60;
  double p_bad_exit = 0.01;
  // Base unix time for published timestamps.
  uint64_t base_time = 1735689600;  // 2025-01-01 00:00:00 UTC
};

// The ground-truth relay population all authorities observe (with noise).
std::vector<RelayStatus> GeneratePopulation(const PopulationConfig& config);

struct VoteViewConfig {
  // Probability an authority misses a relay entirely (churn between scans).
  double p_missing = 0.02;
  // Probability each of Fast/Stable/Guard/HSDir is flipped in this authority's
  // view (measurement disagreement).
  double p_flag_flip = 0.03;
  // Fraction of authorities that run bandwidth scanners. Authorities with
  // index < ceil(measuring_fraction * n) report Measured values.
  double measuring_fraction = 0.67;
  // Relative stddev of bandwidth measurement noise.
  double measurement_noise = 0.10;
};

// Builds authority `authority`'s vote over `population`: drops some relays,
// perturbs some flags and (for measuring authorities) adds noisy Measured
// values. Deterministic given (population seed, authority, n).
VoteDocument MakeVote(torbase::NodeId authority, uint32_t authority_count,
                      const std::vector<RelayStatus>& population,
                      const PopulationConfig& population_config,
                      const VoteViewConfig& view_config = {});

// Builds all `n` votes at once.
std::vector<VoteDocument> MakeAllVotes(uint32_t authority_count,
                                       const std::vector<RelayStatus>& population,
                                       const PopulationConfig& population_config,
                                       const VoteViewConfig& view_config = {});

// --- synthetic round-to-round churn ----------------------------------------
// Deterministic consensus churn for the diff codec's benches and tests: the
// next round's document differs from `base` by a seeded set of changed,
// removed and added relay rows, with the validity window advanced by one
// directory period. Live-network churn is a few percent of rows per hour;
// change_fraction 0.01-0.03 reproduces that regime.
struct ConsensusChurnConfig {
  double change_fraction = 0.01;  // rows whose bandwidth/flags change
  double remove_fraction = 0.0;   // rows leaving the network
  double add_fraction = 0.0;      // new rows joining, as a fraction of base rows
  uint64_t seed = 1;
};

ConsensusDocument ChurnConsensus(const ConsensusDocument& base,
                                 const ConsensusChurnConfig& config);

// --- Figure 6: relay count over time ---------------------------------------
struct RelayCountPoint {
  std::string month;  // "2022-09" .. "2024-10"
  double relay_count;
};

// Deterministic synthetic reconstruction of the Tor Metrics relay-count series
// from September 2022 to October 2024. The series mean equals the paper's
// reported average of 7141.79 exactly.
std::vector<RelayCountPoint> RelayCountSeries();

// The average the paper reports under Figure 6.
constexpr double kPaperAverageRelayCount = 7141.79;

}  // namespace tordir

#endif  // SRC_TORDIR_GENERATOR_H_
