// Vote and consensus document models (dir-spec v3, as summarized in §3.1 of the
// paper). Text serialization lives in src/tordir/dirspec.h.
#ifndef SRC_TORDIR_VOTE_H_
#define SRC_TORDIR_VOTE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/ids.h"
#include "src/crypto/digest.h"
#include "src/crypto/signature.h"
#include "src/tordir/relay.h"

namespace tordir {

// One authority's status vote: its view of every relay it knows, plus the
// voting-schedule metadata.
struct VoteDocument {
  torbase::NodeId authority = torbase::kNoNode;
  std::string authority_nickname;
  uint64_t valid_after = 0;   // unix seconds
  uint64_t fresh_until = 0;   // consensus considered stale after this
  uint64_t valid_until = 0;   // consensus invalid after this (3 h horizon)
  std::vector<RelayStatus> relays;  // sorted by fingerprint

  void SortRelays();
  bool operator==(const VoteDocument&) const = default;
};

// The aggregated consensus document plus the authority signatures collected on
// it. A consensus is *valid* once it carries signatures from a majority of the
// authorities over the same digest (§4.2).
struct ConsensusDocument {
  uint64_t valid_after = 0;
  uint64_t fresh_until = 0;
  uint64_t valid_until = 0;
  uint32_t vote_count = 0;  // number of votes aggregated
  std::vector<RelayStatus> relays;

  // Signatures over UnsignedDigest(); not part of the digest itself.
  std::vector<torcrypto::Signature> signatures;

  void SortRelays();
  bool operator==(const ConsensusDocument&) const = default;
};

// --- parsed-vote cache -------------------------------------------------------
// A document together with its canonical serialized bytes, both shared and
// immutable. The scenario runner builds these once per workload; authorities
// hold references instead of private multi-megabyte copies.
struct CachedVote {
  std::shared_ptr<const VoteDocument> document;
  std::shared_ptr<const std::string> text;
};

// Immutable digest-keyed lookup of pre-parsed vote documents. Honest
// authorities only ever exchange the workload's canonical vote bytes, so a
// receiver that hashes an incoming text and hits this cache can skip
// ParseVote entirely: a digest match proves byte equality, and byte-equal
// texts parse to identical documents. Misses (mutated or adversarial texts)
// fall back to parsing.
//
// Build with Add() then Seal(); Find() is const and safe to share across
// threads once sealed.
class VoteCache {
 public:
  // Pre-sizes the index for `count` upcoming Add() calls.
  void Reserve(size_t count) { entries_.reserve(count); }
  void Add(const torcrypto::Digest256& digest, CachedVote vote);
  void Seal();  // sorts the index; required before Find()
  const CachedVote* Find(const torcrypto::Digest256& digest) const;
  // Hashes `text` and looks the digest up: the one-liner every receive path
  // uses ("digest match proves byte equality, byte-equal texts parse to
  // identical documents"). Null on miss — callers fall back to ParseVote.
  const CachedVote* FindByText(std::string_view text) const;
  // Same for callers that already hold the text's digest.
  static const CachedVote* FindIn(const std::shared_ptr<const VoteCache>& cache,
                                  const torcrypto::Digest256& digest) {
    return cache == nullptr ? nullptr : cache->Find(digest);
  }
  static const CachedVote* FindIn(const std::shared_ptr<const VoteCache>& cache,
                                  std::string_view text) {
    return cache == nullptr ? nullptr : cache->FindByText(text);
  }

 private:
  std::vector<std::pair<torcrypto::Digest256, CachedVote>> entries_;
  bool sealed_ = false;
};

}  // namespace tordir

#endif  // SRC_TORDIR_VOTE_H_
