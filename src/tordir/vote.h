// Vote and consensus document models (dir-spec v3, as summarized in §3.1 of the
// paper). Text serialization lives in src/tordir/dirspec.h.
#ifndef SRC_TORDIR_VOTE_H_
#define SRC_TORDIR_VOTE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/crypto/digest.h"
#include "src/crypto/signature.h"
#include "src/tordir/relay.h"

namespace tordir {

// One authority's status vote: its view of every relay it knows, plus the
// voting-schedule metadata.
struct VoteDocument {
  torbase::NodeId authority = torbase::kNoNode;
  std::string authority_nickname;
  uint64_t valid_after = 0;   // unix seconds
  uint64_t fresh_until = 0;   // consensus considered stale after this
  uint64_t valid_until = 0;   // consensus invalid after this (3 h horizon)
  std::vector<RelayStatus> relays;  // sorted by fingerprint

  void SortRelays();
  bool operator==(const VoteDocument&) const = default;
};

// The aggregated consensus document plus the authority signatures collected on
// it. A consensus is *valid* once it carries signatures from a majority of the
// authorities over the same digest (§4.2).
struct ConsensusDocument {
  uint64_t valid_after = 0;
  uint64_t fresh_until = 0;
  uint64_t valid_until = 0;
  uint32_t vote_count = 0;  // number of votes aggregated
  std::vector<RelayStatus> relays;

  // Signatures over UnsignedDigest(); not part of the digest itself.
  std::vector<torcrypto::Signature> signatures;

  void SortRelays();
  bool operator==(const ConsensusDocument&) const = default;
};

}  // namespace tordir

#endif  // SRC_TORDIR_VOTE_H_
