#include "src/tordir/freshness.h"

#include <set>

#include "src/tordir/dirspec.h"

namespace tordir {

const char* FreshnessName(ConsensusFreshness freshness) {
  switch (freshness) {
    case ConsensusFreshness::kFresh:
      return "fresh";
    case ConsensusFreshness::kStale:
      return "stale";
    case ConsensusFreshness::kInvalid:
      return "invalid";
  }
  return "?";
}

ConsensusFreshness EvaluateFreshness(const ConsensusDocument& consensus, uint64_t now_unix) {
  if (now_unix < consensus.fresh_until) {
    return ConsensusFreshness::kFresh;
  }
  if (now_unix < consensus.valid_until) {
    return ConsensusFreshness::kStale;
  }
  return ConsensusFreshness::kInvalid;
}

bool ValidateConsensusSignatures(const ConsensusDocument& consensus,
                                 const torcrypto::KeyDirectory& directory,
                                 uint32_t authority_count) {
  const auto digest = ConsensusDigest(consensus);
  std::set<torbase::NodeId> signers;
  for (const auto& sig : consensus.signatures) {
    if (sig.signer >= authority_count) {
      return false;  // unknown authority: reject the document outright
    }
    if (!directory.Verify(digest.span(), sig)) {
      return false;  // any bad signature taints the document
    }
    signers.insert(sig.signer);
  }
  return signers.size() >= authority_count / 2 + 1;
}

AvailabilityTimeline AnalyzeAvailability(const std::vector<bool>& hourly_run_success,
                                         uint32_t validity_hours) {
  AvailabilityTimeline timeline;
  timeline.network_up.resize(hourly_run_success.size());
  for (size_t hour = 0; hour < hourly_run_success.size(); ++hour) {
    bool covered = false;
    for (size_t back = 0; back < validity_hours && back <= hour; ++back) {
      if (hourly_run_success[hour - back]) {
        covered = true;
        break;
      }
    }
    timeline.network_up[hour] = covered;
    if (!covered) {
      ++timeline.hours_down;
      if (!timeline.first_down_hour.has_value()) {
        timeline.first_down_hour = hour;
      }
    }
  }
  return timeline;
}

}  // namespace tordir
