#include "src/tordir/string_pool.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>

namespace tordir {

StringPool& StringPool::Global() {
  // Leaked on purpose: ids live in documents whose destruction order versus a
  // static pool is unknowable, and the pool is bounded by the process's
  // distinct relay strings.
  static StringPool* pool = new StringPool();
  return *pool;
}

StringPool::StringPool() {
  // Seed id 0 = "" so a default-constructed InternedString is the empty
  // string without ever touching the index.
  Chunk* chunk = new Chunk();
  chunk->entries[0] = std::string_view();
  chunks_[0].store(chunk, std::memory_order_release);
  index_.emplace(std::string_view(), 0);
  count_.store(1, std::memory_order_release);
}

std::string_view StringPool::ArenaCopy(std::string_view s) {
  constexpr size_t kBlockSize = 64 * 1024;
  if (s.size() > kBlockSize) {
    // Oversized strings get a dedicated block, which must NOT become the bump
    // block: the current bump pointer keeps serving small strings from its
    // own block untouched.
    auto block = std::make_unique<char[]>(s.size());
    std::memcpy(block.get(), s.data(), s.size());
    std::string_view view(block.get(), s.size());
    arena_.push_back(std::move(block));
    return view;
  }
  if (s.size() > bump_remaining_) {
    arena_.push_back(std::make_unique<char[]>(kBlockSize));
    bump_ptr_ = arena_.back().get();
    bump_remaining_ = kBlockSize;
  }
  char* dst = bump_ptr_;
  std::memcpy(dst, s.data(), s.size());
  bump_ptr_ += s.size();
  bump_remaining_ -= s.size();
  return std::string_view(dst, s.size());
}

uint32_t StringPool::Intern(std::string_view s) {
  if (s.empty()) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(s);
  if (it != index_.end()) {
    return it->second;
  }
  const uint32_t id = count_.load(std::memory_order_relaxed);
  const uint32_t chunk_index = id >> kChunkBits;
  if (chunk_index >= kMaxChunks) {
    // Real guard, not an assert: the pool is append-only by design, so an
    // input that manufactures 128M distinct strings must fail loudly instead
    // of writing past chunks_[].
    std::fprintf(stderr, "tordir::StringPool exhausted (%u strings)\n", id);
    std::abort();
  }
  Chunk* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    chunks_[chunk_index].store(chunk, std::memory_order_release);
  }
  const std::string_view stable = ArenaCopy(s);
  chunk->entries[id & (kChunkSize - 1)] = stable;
  index_.emplace(stable, id);
  // Release so size() readers observe the entry; cross-thread id transport
  // supplies its own happens-before edge (see header).
  count_.store(id + 1, std::memory_order_release);
  return id;
}

std::string_view StringPool::View(uint32_t id) const {
  assert(id < count_.load(std::memory_order_acquire) && "unknown string id");
  const Chunk* chunk = chunks_[id >> kChunkBits].load(std::memory_order_acquire);
  return chunk->entries[id & (kChunkSize - 1)];
}

std::ostream& operator<<(std::ostream& os, InternedString s) { return os << s.view(); }

}  // namespace tordir
