#include "src/tordir/string_pool.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>

#include "src/common/bytes.h"

namespace tordir {

StringPool& StringPool::Global() {
  // Leaked on purpose: ids live in documents whose destruction order versus a
  // static pool is unknowable, and the pool is bounded by the process's
  // distinct relay strings.
  static StringPool* pool = new StringPool();
  return *pool;
}

StringPool::StringPool() {
  // 16k slots cover an 8k-relay workload's distinct strings without a resize;
  // the table doubles under the mutex as populations grow past that.
  index_.store(new IndexTable(1u << 14), std::memory_order_release);
  // Seed id 0 = "" so a default-constructed InternedString is the empty
  // string without ever touching the index.
  Chunk* chunk = new Chunk();
  chunk->entries[0] = std::string_view();
  chunks_[0].store(chunk, std::memory_order_release);
  count_.store(1, std::memory_order_release);
}

std::string_view StringPool::ArenaCopy(std::string_view s) {
  constexpr size_t kBlockSize = 64 * 1024;
  if (s.size() > kBlockSize) {
    // Oversized strings get a dedicated block, which must NOT become the bump
    // block: the current bump pointer keeps serving small strings from its
    // own block untouched.
    auto block = std::make_unique<char[]>(s.size());
    std::memcpy(block.get(), s.data(), s.size());
    std::string_view view(block.get(), s.size());
    arena_.push_back(std::move(block));
    return view;
  }
  if (s.size() > bump_remaining_) {
    arena_.push_back(std::make_unique<char[]>(kBlockSize));
    bump_ptr_ = arena_.back().get();
    bump_remaining_ = kBlockSize;
  }
  char* dst = bump_ptr_;
  std::memcpy(dst, s.data(), s.size());
  bump_ptr_ += s.size();
  bump_remaining_ -= s.size();
  return std::string_view(dst, s.size());
}

void StringPool::GrowIndexLocked() {
  const IndexTable* old_table = index_.load(std::memory_order_relaxed);
  auto grown = std::make_unique<IndexTable>((old_table->mask + 1) * 2);
  for (uint32_t idx = 0; idx <= old_table->mask; ++idx) {
    const IndexSlot& slot = old_table->slots[idx];
    const uint64_t tag_id = slot.tag_id.load(std::memory_order_relaxed);
    if (tag_id == 0) {
      continue;
    }
    // Recompute the full hash from the entry bytes (View of the id); the
    // slot only kept 32 tag bits.
    const std::string_view bytes = View(static_cast<uint32_t>(tag_id) - 1);
    const uint64_t hash = torbase::HashBytes(bytes);
    uint32_t new_idx = static_cast<uint32_t>(hash) & grown->mask;
    while (grown->slots[new_idx].tag_id.load(std::memory_order_relaxed) != 0) {
      new_idx = (new_idx + 1) & grown->mask;
    }
    IndexSlot& dst = grown->slots[new_idx];
    dst.size = slot.size;
    std::memcpy(dst.head, slot.head, kInlineKeyBytes);
    dst.tail = slot.tail;
    dst.tag_id.store(tag_id, std::memory_order_relaxed);
  }
  IndexTable* published = grown.get();
  retired_indexes_.emplace_back(
      const_cast<IndexTable*>(old_table));  // keep alive for concurrent readers
  grown.release();
  index_.store(published, std::memory_order_release);
}

uint32_t StringPool::InternSlow(std::string_view s, uint64_t hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Re-probe the current table under the lock: the lock-free miss may have
  // raced with another thread's insert (or a table swap).
  IndexTable* table = index_.load(std::memory_order_relaxed);
  uint32_t empty_slot = 0;
  if (const uint32_t id = Probe(*table, s, hash, &empty_slot); id != kNotFound) {
    return id;
  }
  const uint32_t id = count_.load(std::memory_order_relaxed);
  const uint32_t chunk_index = id >> kChunkBits;
  if (chunk_index >= kMaxChunks) {
    // Real guard, not an assert: the pool is append-only by design, so an
    // input that manufactures 128M distinct strings must fail loudly instead
    // of writing past chunks_[].
    std::fprintf(stderr, "tordir::StringPool exhausted (%u strings)\n", id);
    std::abort();
  }
  Chunk* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    chunks_[chunk_index].store(chunk, std::memory_order_release);
  }
  const std::string_view stable = ArenaCopy(s);
  chunk->entries[id & (kChunkSize - 1)] = stable;
  // Release so size() readers observe the entry; cross-thread id transport
  // supplies its own happens-before edge (see header).
  count_.store(id + 1, std::memory_order_release);
  // Fill the slot's key fields, then publish tag_id last (release): a
  // lock-free prober that sees the tag is guaranteed to see the key bytes and
  // the entry behind it.
  IndexSlot& slot = table->slots[empty_slot];
  slot.size = static_cast<uint32_t>(stable.size());
  const size_t head_len = stable.size() < kInlineKeyBytes ? stable.size() : kInlineKeyBytes;
  std::memcpy(slot.head, stable.data(), head_len);
  slot.tail = stable.size() > kInlineKeyBytes ? stable.data() + kInlineKeyBytes : nullptr;
  slot.tag_id.store(PackSlot(hash, id), std::memory_order_release);
  if (++index_filled_ * 2 > table->mask + 1) {
    GrowIndexLocked();
  }
  return id;
}

std::ostream& operator<<(std::ostream& os, InternedString s) { return os << s.view(); }

}  // namespace tordir
