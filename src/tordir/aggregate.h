// The consensus aggregation algorithm (Figure 2 of the paper / dir-spec §3.8):
// given the set of votes an authority holds, deterministically compute the
// consensus relay list. Every protocol in this repository — Current,
// Synchronous and the ICPS protocol — funnels its agreed vote set through this
// single implementation, mirroring how all real implementations share Tor's
// aggregation code.
//
// Rules implemented (Fig. 2):
//   * A relay is included iff it appears in at least `inclusion_threshold`
//     votes (default: strictly more than half of the votes aggregated).
//   * Its nickname is taken from the listing vote with the largest authority ID.
//   * Each flag is set by popular vote among listing votes; ties mean unset.
//   * Version / protocols: popular vote, ties broken towards the largest value
//     (CompareVersions order).
//   * Exit policy: popular vote, ties broken towards the lexicographically
//     larger summary.
//   * Bandwidth: median of the Measured values from votes that measured the
//     relay; if no vote measured it, median of the claimed bandwidths.
//   * Address/ports/published/microdesc digest: popular vote over the full
//     endpoint tuple, ties broken towards the largest authority ID.
//
// Implementation: a k-way merge over the votes' fingerprint-sorted relay
// lists with fixed-size counting scratch reused across relays — O(n·a) time,
// no per-relay map nodes, and (thanks to interned relay strings) no per-relay
// heap allocations. The allocation bound is pinned by
// tests/aggregate_alloc_test.cc and the golden digests in
// tests/consensus_golden_test.cc prove the output is byte-identical to the
// original map-based implementation.
#ifndef SRC_TORDIR_AGGREGATE_H_
#define SRC_TORDIR_AGGREGATE_H_

#include <cstddef>
#include <vector>

#include "src/tordir/vote.h"

namespace tordir {

struct AggregationParams {
  // Number of listing votes required for inclusion, as a function of how many
  // votes are being aggregated. 0 = default majority rule floor(n/2)+1.
  size_t fixed_inclusion_threshold = 0;

  size_t InclusionThreshold(size_t vote_count) const {
    if (fixed_inclusion_threshold > 0) {
      return fixed_inclusion_threshold;
    }
    return vote_count / 2 + 1;
  }
};

// Aggregates `votes` into a consensus document. Votes must come from distinct
// authorities; the result is independent of input order (tested). The
// consensus is unsigned; callers collect signatures separately.
ConsensusDocument ComputeConsensus(const std::vector<const VoteDocument*>& votes,
                                   const AggregationParams& params = {});

// Convenience overload for owned votes.
ConsensusDocument ComputeConsensus(const std::vector<VoteDocument>& votes,
                                   const AggregationParams& params = {});

}  // namespace tordir

#endif  // SRC_TORDIR_AGGREGATE_H_
