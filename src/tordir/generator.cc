#include "src/tordir/generator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <span>
#include <string_view>

#include "src/crypto/sha256.h"
#include "src/crypto/sha256_batch.h"

namespace tordir {
namespace {

const char* const kVersionPool[] = {
    "Tor 0.4.8.10",
    "Tor 0.4.8.9",
    "Tor 0.4.8.12",
    "Tor 0.4.7.16",
};

const char* const kProtocolPool[] = {
    "Cons=1-2 Desc=1-2 DirCache=2 FlowCtrl=1-2 HSDir=2 HSIntro=4-5 HSRend=1-2 Link=1-5 "
    "LinkAuth=1,3 Microdesc=1-2 Padding=2 Relay=1-4",
    "Cons=1-2 Desc=1-2 DirCache=2 FlowCtrl=1 HSDir=2 HSIntro=4-5 HSRend=1-2 Link=1-5 "
    "LinkAuth=3 Microdesc=1-2 Padding=2 Relay=1-3",
};

const char* const kExitPolicyPool[] = {
    "accept 80,443",
    "accept 20-23,43,53,79-81,88,110,143,194,220,389,443",
    "accept 443,6667",
};

// The derive helpers hash tiny fixed-shape messages once per relay; composing
// them on the stack (byte-identical to the torbase::Writer framing they
// replace: little-endian u64s, u32-length-prefixed strings) keeps population
// generation allocation-free — at 256k relays the old per-call Writer buffers
// were a measurable share of workload build.
void PutU64Le(uint8_t* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

constexpr std::string_view kFingerprintLabel = "relay-fingerprint";
using FingerprintMessage = std::array<uint8_t, 8 + 8 + 4 + kFingerprintLabel.size()>;

constexpr std::string_view kMicrodescLabel = "microdesc";
using MicrodescMessage = std::array<uint8_t, 20 + 4 + kMicrodescLabel.size()>;

FingerprintMessage ComposeFingerprintMessage(uint64_t seed, uint64_t index) {
  FingerprintMessage message{};
  PutU64Le(message.data(), seed);
  PutU64Le(message.data() + 8, index);
  message[16] = static_cast<uint8_t>(kFingerprintLabel.size());  // u32 LE length prefix
  std::memcpy(message.data() + 20, kFingerprintLabel.data(), kFingerprintLabel.size());
  return message;
}

MicrodescMessage ComposeMicrodescMessage(const Fingerprint& fp) {
  MicrodescMessage message{};
  std::memcpy(message.data(), fp.data(), fp.size());
  message[20] = static_cast<uint8_t>(kMicrodescLabel.size());  // u32 LE length prefix
  std::memcpy(message.data() + 24, kMicrodescLabel.data(), kMicrodescLabel.size());
  return message;
}

// Relay identities are pure functions of (seed, index) — the RNG never feeds
// them — so the whole population's fingerprints and microdescriptor digests
// derive in two Sha256Batch passes (lock-step hardware lanes) before the
// RNG-driven loop. Byte-identical to hashing each message individually.
struct DerivedIdentities {
  std::vector<Fingerprint> fingerprints;
  std::vector<std::array<uint8_t, 32>> microdesc_digests;
};

DerivedIdentities DeriveIdentities(uint64_t seed, size_t relay_count) {
  DerivedIdentities out;
  out.fingerprints.resize(relay_count);
  torcrypto::Sha256Batch batch;

  std::vector<FingerprintMessage> fp_messages(relay_count);
  for (size_t i = 0; i < relay_count; ++i) {
    fp_messages[i] = ComposeFingerprintMessage(seed, i);
    batch.Add(std::span<const uint8_t>(fp_messages[i]));
  }
  const auto fp_digests = batch.Finish();
  for (size_t i = 0; i < relay_count; ++i) {
    std::copy(fp_digests[i].begin(), fp_digests[i].begin() + 20, out.fingerprints[i].begin());
  }

  std::vector<MicrodescMessage> md_messages(relay_count);
  for (size_t i = 0; i < relay_count; ++i) {
    md_messages[i] = ComposeMicrodescMessage(out.fingerprints[i]);
    batch.Add(std::span<const uint8_t>(md_messages[i]));
  }
  out.microdesc_digests = batch.Finish();
  return out;
}

}  // namespace

std::vector<RelayStatus> GeneratePopulation(const PopulationConfig& config) {
  torbase::Rng rng(config.seed ^ 0x7052656c61795067ull);  // "pRelayPg"
  std::vector<RelayStatus> relays;
  relays.reserve(config.relay_count);
  const DerivedIdentities identities = DeriveIdentities(config.seed, config.relay_count);

  // Intern the shared value pools once per population instead of re-hashing
  // the same strings per relay; nicknames/addresses are unique and interned
  // inline below.
  InternedString versions[std::size(kVersionPool)];
  for (size_t i = 0; i < std::size(kVersionPool); ++i) {
    versions[i] = kVersionPool[i];
  }
  InternedString protocols[std::size(kProtocolPool)];
  for (size_t i = 0; i < std::size(kProtocolPool); ++i) {
    protocols[i] = kProtocolPool[i];
  }
  InternedString exit_policies[std::size(kExitPolicyPool)];
  for (size_t i = 0; i < std::size(kExitPolicyPool); ++i) {
    exit_policies[i] = kExitPolicyPool[i];
  }
  const InternedString reject_all = "reject 1-65535";

  for (size_t i = 0; i < config.relay_count; ++i) {
    RelayStatus relay;
    relay.fingerprint = identities.fingerprints[i];
    relay.microdesc_digest = identities.microdesc_digests[i];
    relay.nickname = "relay" + rng.AlphaNumeric(10);

    char addr[20];
    std::snprintf(addr, sizeof(addr), "%u.%u.%u.%u",
                  static_cast<unsigned>(rng.UniformRange(1, 223)),
                  static_cast<unsigned>(rng.UniformRange(0, 254)),
                  static_cast<unsigned>(rng.UniformRange(0, 254)),
                  static_cast<unsigned>(rng.UniformRange(1, 254)));
    relay.address = addr;
    relay.or_port = rng.Bernoulli(0.7) ? 9001 : static_cast<uint16_t>(rng.UniformRange(443, 9999));
    relay.dir_port = rng.Bernoulli(0.4) ? 9030 : 0;
    relay.published = config.base_time - rng.UniformRange(0, 18 * 3600);

    relay.SetFlag(RelayFlag::kRunning, true);
    relay.SetFlag(RelayFlag::kValid, true);
    relay.SetFlag(RelayFlag::kFast, rng.Bernoulli(config.p_fast));
    relay.SetFlag(RelayFlag::kStable, rng.Bernoulli(config.p_stable));
    relay.SetFlag(RelayFlag::kGuard, rng.Bernoulli(config.p_guard));
    const bool is_exit = rng.Bernoulli(config.p_exit);
    relay.SetFlag(RelayFlag::kExit, is_exit);
    relay.SetFlag(RelayFlag::kHSDir, rng.Bernoulli(config.p_hsdir));
    relay.SetFlag(RelayFlag::kV2Dir, rng.Bernoulli(config.p_v2dir));
    relay.SetFlag(RelayFlag::kBadExit, is_exit && rng.Bernoulli(config.p_bad_exit));

    relay.version = versions[rng.UniformU64(std::size(kVersionPool))];
    relay.protocols = protocols[rng.UniformU64(std::size(kProtocolPool))];
    relay.exit_policy =
        is_exit ? exit_policies[rng.UniformU64(std::size(kExitPolicyPool))] : reject_all;

    // Log-normal-ish bandwidth distribution (KB/s), clamped to a live-network
    // plausible range.
    const double log_bw = rng.Normal(8.0, 1.2);  // e^8 ~ 3000 KB/s
    relay.bandwidth =
        static_cast<uint64_t>(std::clamp(std::exp(log_bw), 20.0, 400000.0));
    relays.push_back(std::move(relay));
  }
  std::sort(relays.begin(), relays.end(), RelayOrder);
  return relays;
}

VoteDocument MakeVote(torbase::NodeId authority, uint32_t authority_count,
                      const std::vector<RelayStatus>& population,
                      const PopulationConfig& population_config,
                      const VoteViewConfig& view_config) {
  torbase::Rng rng(population_config.seed * 1000003 + authority);
  VoteDocument vote;
  vote.authority = authority;
  vote.authority_nickname = "auth" + std::to_string(authority);
  vote.valid_after = population_config.base_time;
  vote.fresh_until = population_config.base_time + 3600;       // stale after 1 h
  vote.valid_until = population_config.base_time + 3 * 3600;   // invalid after 3 h

  const uint32_t measuring_count = static_cast<uint32_t>(
      std::ceil(view_config.measuring_fraction * authority_count));
  const bool measures = authority < measuring_count;

  vote.relays.reserve(population.size());
  for (const auto& relay : population) {
    if (rng.Bernoulli(view_config.p_missing)) {
      continue;
    }
    RelayStatus view = relay;
    for (RelayFlag flag :
         {RelayFlag::kFast, RelayFlag::kStable, RelayFlag::kGuard, RelayFlag::kHSDir}) {
      if (rng.Bernoulli(view_config.p_flag_flip)) {
        view.SetFlag(flag, !view.HasFlag(flag));
      }
    }
    if (measures) {
      const double noisy = static_cast<double>(relay.bandwidth) *
                           (1.0 + rng.Normal(0.0, view_config.measurement_noise));
      view.measured = static_cast<uint64_t>(std::max(1.0, noisy));
    }
    vote.relays.push_back(std::move(view));
  }
  // Population is sorted; dropping entries preserves order.
  return vote;
}

std::vector<VoteDocument> MakeAllVotes(uint32_t authority_count,
                                       const std::vector<RelayStatus>& population,
                                       const PopulationConfig& population_config,
                                       const VoteViewConfig& view_config) {
  std::vector<VoteDocument> votes;
  votes.reserve(authority_count);
  for (uint32_t a = 0; a < authority_count; ++a) {
    votes.push_back(MakeVote(a, authority_count, population, population_config, view_config));
  }
  return votes;
}

ConsensusDocument ChurnConsensus(const ConsensusDocument& base,
                                 const ConsensusChurnConfig& config) {
  torbase::Rng rng(config.seed ^ 0x436f6e734368726eull);  // "ConsChrn"
  const uint64_t period =
      base.fresh_until > base.valid_after ? base.fresh_until - base.valid_after : 3600;

  ConsensusDocument next;
  next.valid_after = base.valid_after + period;
  next.fresh_until = base.fresh_until + period;
  next.valid_until = base.valid_until + period;
  next.vote_count = base.vote_count;
  next.signatures = base.signatures;

  next.relays.reserve(base.relays.size() + base.relays.size() / 8);
  for (const RelayStatus& relay : base.relays) {
    if (rng.Bernoulli(config.remove_fraction)) {
      continue;
    }
    RelayStatus row = relay;
    if (rng.Bernoulli(config.change_fraction)) {
      // A re-measured bandwidth and the occasional flag transition: the two
      // mutations real consensuses churn on hour over hour.
      row.bandwidth = row.bandwidth + 1 + rng.UniformU64(row.bandwidth / 8 + 16);
      if (rng.Bernoulli(0.5)) {
        row.SetFlag(RelayFlag::kStable, !row.HasFlag(RelayFlag::kStable));
      }
    }
    next.relays.push_back(std::move(row));
  }

  const size_t add_count =
      static_cast<size_t>(std::llround(config.add_fraction * base.relays.size()));
  if (add_count > 0) {
    // Joiners derive from a distinct seed domain, so their fingerprints never
    // collide with the base population's (both are SHA-256 outputs; the
    // dedupe below keeps the document canonical even if they somehow did).
    PopulationConfig add_config;
    add_config.relay_count = add_count;
    add_config.seed = config.seed ^ 0x41646452656c6179ull;  // "AddRelay"
    for (RelayStatus& relay : GeneratePopulation(add_config)) {
      relay.published = next.valid_after;
      next.relays.push_back(std::move(relay));
    }
    next.SortRelays();
    next.relays.erase(std::unique(next.relays.begin(), next.relays.end(),
                                  [](const RelayStatus& a, const RelayStatus& b) {
                                    return a.fingerprint == b.fingerprint;
                                  }),
                      next.relays.end());
  }
  return next;
}

std::vector<RelayCountPoint> RelayCountSeries() {
  // 26 monthly points, September 2022 .. October 2024: a gentle upward trend
  // with a seasonal swing and deterministic jitter, renormalized so the mean
  // equals the paper's reported 7141.79.
  constexpr int kMonths = 26;
  torbase::Rng rng(20220901);
  std::vector<double> raw(kMonths);
  double mean = 0.0;
  for (int i = 0; i < kMonths; ++i) {
    const double trend = 6500.0 + 40.0 * i;
    const double seasonal = 600.0 * std::sin(2.0 * M_PI * i / 12.0 + 0.8);
    const double jitter = rng.Normal(0.0, 220.0);
    raw[i] = trend + seasonal + jitter;
    mean += raw[i];
  }
  mean /= kMonths;

  std::vector<RelayCountPoint> series(kMonths);
  int year = 2022;
  int month = 9;
  for (int i = 0; i < kMonths; ++i) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%04u-%02u", static_cast<unsigned>(year),
                  static_cast<unsigned>(month));
    series[i].month = buf;
    series[i].relay_count = raw[i] - mean + kPaperAverageRelayCount;
    if (++month == 13) {
      month = 1;
      ++year;
    }
  }
  return series;
}

}  // namespace tordir
