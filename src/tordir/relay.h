// Relay status entries: the per-relay record carried in vote and consensus
// documents (dir-spec §3.4.1 "r"/"s"/"v"/"pr"/"w"/"p"/"m" items).
#ifndef SRC_TORDIR_RELAY_H_
#define SRC_TORDIR_RELAY_H_

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/tordir/string_pool.h"

namespace tordir {

// 20-byte relay identity fingerprint (Tor renders these as 40 uppercase hex
// characters, as in Figure 1 of the paper).
using Fingerprint = std::array<uint8_t, 20>;

std::string FingerprintHex(const Fingerprint& fp);
std::optional<Fingerprint> FingerprintFromHex(std::string_view hex);

// Router status flags (dir-spec "known-flags"). Kept as a bitmask.
enum class RelayFlag : uint16_t {
  kAuthority = 1 << 0,
  kBadExit = 1 << 1,
  kExit = 1 << 2,
  kFast = 1 << 3,
  kGuard = 1 << 4,
  kHSDir = 1 << 5,
  kRunning = 1 << 6,
  kStable = 1 << 7,
  kV2Dir = 1 << 8,
  kValid = 1 << 9,
};

constexpr uint16_t kAllRelayFlags = (1 << 10) - 1;

// Canonical dir-spec order for rendering "s" lines.
extern const RelayFlag kRelayFlagOrder[10];

const char* RelayFlagName(RelayFlag flag);
std::optional<RelayFlag> RelayFlagFromName(std::string_view name);

// Renders set flags in canonical order, space separated ("Exit Fast Running").
std::string FlagsToString(uint16_t flags);

// One relay's status as seen by one authority (a vote row) or as agreed in the
// consensus document.
//
// The five string fields are interned (src/tordir/string_pool.h): assignments
// and comparisons against ordinary strings still read naturally, but a
// RelayStatus copy moves no heap memory and equality is five integer
// compares — the property the O(n·a) consensus aggregation and the per-actor
// vote copies in the scenario runner rely on.
struct RelayStatus {
  Fingerprint fingerprint{};
  InternedString nickname;
  InternedString address;   // dotted quad
  uint16_t or_port = 0;
  uint16_t dir_port = 0;
  uint64_t published = 0;   // unix seconds
  uint16_t flags = 0;       // RelayFlag bitmask
  InternedString version;   // e.g. "Tor 0.4.8.10"
  InternedString protocols; // "pr" line payload
  uint64_t bandwidth = 0;   // claimed, in KB/s
  std::optional<uint64_t> measured;  // bwauth measurement, KB/s
  InternedString exit_policy;  // port summary, e.g. "accept 80,443"
  std::array<uint8_t, 32> microdesc_digest{};

  bool HasFlag(RelayFlag flag) const { return (flags & static_cast<uint16_t>(flag)) != 0; }
  void SetFlag(RelayFlag flag, bool on) {
    if (on) {
      flags |= static_cast<uint16_t>(flag);
    } else {
      flags &= static_cast<uint16_t>(~static_cast<uint16_t>(flag));
    }
  }

  bool operator==(const RelayStatus&) const = default;
};

// Orders by fingerprint, the canonical document order.
bool RelayOrder(const RelayStatus& a, const RelayStatus& b);

// Compares dotted version strings ("Tor 0.4.8.10" vs "Tor 0.4.8.9") by their
// numeric components; non-numeric prefixes compare lexicographically first.
// Returns <0, 0, >0.
int CompareVersions(std::string_view a, std::string_view b);

}  // namespace tordir

#endif  // SRC_TORDIR_RELAY_H_
