// Vote admission: the single accept/reject gate every protocol runs on a vote
// text it received off the wire. Admission is stricter than ParseVote:
//
//   * kMalformed    — the bytes do not parse at all.
//   * kNonCanonical — the bytes parse, but re-serializing the document does
//                     not reproduce them. Honest authorities only ever emit
//                     canonical bytes (SerializeVote/ParseVote round-trip
//                     exactly), so a non-canonical text is adversarial by
//                     construction and must not enter aggregation — two
//                     authorities holding byte-different texts of the "same"
//                     vote would otherwise disagree about its digest.
//   * kStaleWindow  — a structurally valid vote whose validity window has
//                     already closed relative to the receiver's current
//                     period: a replayed or expired document.
//
// A cache hit (digest match against the workload's canonical pre-parsed
// votes) short-circuits all three checks: byte equality against a canonical
// text proves the document is well-formed, canonical, and carries the current
// period's window.
#ifndef SRC_TORDIR_ADMISSION_H_
#define SRC_TORDIR_ADMISSION_H_

#include <memory>
#include <string>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/crypto/digest.h"
#include "src/tordir/vote.h"

namespace tordir {

enum class VoteRejectReason {
  kMalformed,     // unparseable or non-round-tripping bytes
  kNonCanonical,  // parses, but re-serialization differs from the wire bytes
  kStaleWindow,   // valid_until has passed: replayed/expired signature window
};

const char* VoteRejectReasonName(VoteRejectReason reason);

struct VoteAdmission {
  // Ok when admitted; otherwise a specific message for the protocol's log.
  torbase::Status status = torbase::Status::Ok();
  // Meaningful only when !status.ok().
  VoteRejectReason reason = VoteRejectReason::kMalformed;
  // The vote's claimed author when the document parsed (set for stale
  // rejects, where attribution is trustworthy because the bytes are
  // canonical); kNoNode otherwise.
  torbase::NodeId author = torbase::kNoNode;

  // Set when admitted.
  std::shared_ptr<const VoteDocument> document;
  std::shared_ptr<const std::string> text;
  torcrypto::Digest256 digest;
};

// Admits or rejects `text` as seen by a receiver whose current voting period
// started at `period_start` (unix seconds; receivers pass their own vote's
// valid_after). `cache` may be null.
VoteAdmission AdmitVote(const std::shared_ptr<const VoteCache>& cache, const std::string& text,
                        uint64_t period_start);

// Same, for callers that already hashed the text (saves re-hashing in
// digest-first protocols like ICPS).
VoteAdmission AdmitVote(const std::shared_ptr<const VoteCache>& cache, const std::string& text,
                        const torcrypto::Digest256& digest, uint64_t period_start);

}  // namespace tordir

#endif  // SRC_TORDIR_ADMISSION_H_
