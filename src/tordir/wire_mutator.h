// Seeded, deterministic mutations of dir-spec wire bytes.
//
// Two tiers:
//
//   * MutateWire — a general corpus mutator (byte flips, line splices, word
//     swaps, truncation...) used by tests/codec_fuzz_test.cc to shake the
//     ParseVote/ParseConsensus fast-path vs fallback boundary. Mutants may or
//     may not still parse; the test asserts the two parsers agree and that
//     anything accepted either round-trips byte-exactly or is refused by
//     AdmitVote as non-canonical.
//
//   * MutateWireStructural — a restricted mutator whose every output is
//     guaranteed to be refused by the admission layer (either it no longer
//     parses, or it parses but re-serializes differently). This is what the
//     kMalformedWire byzantine behavior feeds onto the simulated wire: the
//     bytes look plausible enough to exercise parsers, but an honest
//     authority must never aggregate them.
//
// Both are pure functions of (text, seed): the same inputs produce the same
// mutant on every platform, which is what keeps byzantine scenario cells
// bit-identical between serial and parallel sweeps.
#ifndef SRC_TORDIR_WIRE_MUTATOR_H_
#define SRC_TORDIR_WIRE_MUTATOR_H_

#include <cstdint>
#include <string>

namespace tordir {

// Applies 1-3 seeded mutations drawn from the full corpus set. Always returns
// bytes different from `text` (for non-degenerate inputs of >= 2 lines).
std::string MutateWire(const std::string& text, uint64_t seed);

// Applies one seeded mutation from the restricted set (garbage line, line
// duplication, truncation, keyword corruption). Every output is either
// unparseable or parses to a document whose re-serialization differs from the
// mutant bytes, so AdmitVote always rejects it.
std::string MutateWireStructural(const std::string& text, uint64_t seed);

}  // namespace tordir

#endif  // SRC_TORDIR_WIRE_MUTATOR_H_
