#include "src/tordir/wire_mutator.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/common/rng.h"

namespace tordir {
namespace {

// Offsets of the first byte of every line in `text`.
std::vector<size_t> LineStarts(const std::string& text) {
  std::vector<size_t> starts;
  starts.push_back(0);
  for (size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] == '\n') {
      starts.push_back(i + 1);
    }
  }
  return starts;
}

// [start, end) of line `index`, end pointing one past the trailing '\n'.
std::pair<size_t, size_t> LineSpan(const std::string& text, const std::vector<size_t>& starts,
                                   size_t index) {
  const size_t start = starts[index];
  const size_t end = index + 1 < starts.size() ? starts[index + 1] : text.size();
  return {start, end};
}

std::string GarbageLine(torbase::Rng& rng) {
  return "x-" + rng.AlphaNumeric(12) + "\n";
}

void InsertGarbageLine(std::string& s, torbase::Rng& rng) {
  const auto starts = LineStarts(s);
  // Any line boundary, including one past the last line.
  const size_t slot = rng.UniformU64(starts.size() + 1);
  const size_t pos = slot < starts.size() ? starts[slot] : s.size();
  s.insert(pos, GarbageLine(rng));
}

void DuplicateLine(std::string& s, torbase::Rng& rng) {
  const auto starts = LineStarts(s);
  const auto [start, end] = LineSpan(s, starts, rng.UniformU64(starts.size()));
  std::string line = s.substr(start, end - start);
  if (line.empty() || line.back() != '\n') {
    line.push_back('\n');
  }
  s.insert(start, line);
}

void CorruptLineKeyword(std::string& s, torbase::Rng& rng) {
  const auto starts = LineStarts(s);
  s[starts[rng.UniformU64(starts.size())]] = '#';
}

void Truncate(std::string& s, torbase::Rng& rng) {
  if (s.size() < 2) {
    return;
  }
  s.resize(rng.UniformRange(1, s.size() - 1));
}

}  // namespace

std::string MutateWire(const std::string& text, uint64_t seed) {
  torbase::Rng rng(seed);
  std::string s = text;
  const uint64_t count = 1 + rng.UniformU64(3);
  for (uint64_t i = 0; i < count && !s.empty(); ++i) {
    switch (rng.UniformU64(9)) {
      case 0: {  // flip bits in one byte
        s[rng.UniformU64(s.size())] ^= static_cast<char>(1 + rng.UniformU64(255));
        break;
      }
      case 1: {  // insert a printable byte
        const char c = static_cast<char>(' ' + rng.UniformU64(95));
        s.insert(s.begin() + static_cast<ptrdiff_t>(rng.UniformU64(s.size() + 1)), c);
        break;
      }
      case 2: {  // delete one byte
        s.erase(rng.UniformU64(s.size()), 1);
        break;
      }
      case 3:
        DuplicateLine(s, rng);
        break;
      case 4: {  // delete a whole line
        const auto starts = LineStarts(s);
        const auto [start, end] = LineSpan(s, starts, rng.UniformU64(starts.size()));
        s.erase(start, end - start);
        break;
      }
      case 5: {  // swap two space-separated words within one line
        const auto starts = LineStarts(s);
        const auto [start, end] = LineSpan(s, starts, rng.UniformU64(starts.size()));
        std::vector<std::pair<size_t, size_t>> words;
        size_t w = start;
        for (size_t j = start; j < end; ++j) {
          if (s[j] == ' ' || s[j] == '\n') {
            if (j > w) {
              words.emplace_back(w, j);
            }
            w = j + 1;
          }
        }
        if (end > w && end > start && s[end - 1] != '\n') {
          words.emplace_back(w, end);
        }
        if (words.size() >= 2) {
          const size_t a = rng.UniformU64(words.size());
          const size_t b = rng.UniformU64(words.size());
          if (a != b) {
            const auto [alo, ahi] = words[std::min(a, b)];
            const auto [blo, bhi] = words[std::max(a, b)];
            const std::string wa = s.substr(alo, ahi - alo);
            const std::string wb = s.substr(blo, bhi - blo);
            // Replace back-to-front so earlier offsets stay valid.
            s.replace(blo, bhi - blo, wa);
            s.replace(alo, ahi - alo, wb);
          }
        }
        break;
      }
      case 6: {  // increment a random digit
        std::vector<size_t> digits;
        for (size_t j = 0; j < s.size(); ++j) {
          if (s[j] >= '0' && s[j] <= '9') {
            digits.push_back(j);
          }
        }
        if (!digits.empty()) {
          char& c = s[digits[rng.UniformU64(digits.size())]];
          c = c == '9' ? '0' : static_cast<char>(c + 1);
        }
        break;
      }
      case 7:
        Truncate(s, rng);
        break;
      case 8:
        InsertGarbageLine(s, rng);
        break;
    }
  }
  if (s == text && !s.empty()) {
    s[s.size() / 2] ^= 0x01;
  }
  return s;
}

std::string MutateWireStructural(const std::string& text, uint64_t seed) {
  torbase::Rng rng(seed);
  std::string s = text;
  if (s.empty()) {
    return "x-empty\n";
  }
  switch (rng.UniformU64(4)) {
    case 0:
      InsertGarbageLine(s, rng);
      break;
    case 1:
      DuplicateLine(s, rng);
      break;
    case 2:
      Truncate(s, rng);
      break;
    case 3:
      CorruptLineKeyword(s, rng);
      break;
  }
  return s;
}

}  // namespace tordir
