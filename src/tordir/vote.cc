#include "src/tordir/vote.h"

#include <algorithm>
#include <cassert>

namespace tordir {

void VoteDocument::SortRelays() {
  std::sort(relays.begin(), relays.end(), RelayOrder);
}

void ConsensusDocument::SortRelays() {
  std::sort(relays.begin(), relays.end(), RelayOrder);
}

void VoteCache::Add(const torcrypto::Digest256& digest, CachedVote vote) {
  assert(!sealed_ && "VoteCache is immutable once sealed");
  entries_.emplace_back(digest, std::move(vote));
}

void VoteCache::Seal() {
  std::sort(entries_.begin(), entries_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  sealed_ = true;
}

const CachedVote* VoteCache::FindByText(std::string_view text) const {
  return Find(torcrypto::Digest256::Of(text));
}

const CachedVote* VoteCache::Find(const torcrypto::Digest256& digest) const {
  assert(sealed_ && "VoteCache must be sealed before lookup");
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), digest,
      [](const auto& entry, const torcrypto::Digest256& d) { return entry.first < d; });
  if (it == entries_.end() || !(it->first == digest)) {
    return nullptr;
  }
  return &it->second;
}

}  // namespace tordir
