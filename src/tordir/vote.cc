#include "src/tordir/vote.h"

#include <algorithm>

namespace tordir {

void VoteDocument::SortRelays() {
  std::sort(relays.begin(), relays.end(), RelayOrder);
}

void ConsensusDocument::SortRelays() {
  std::sort(relays.begin(), relays.end(), RelayOrder);
}

}  // namespace tordir
