#include "src/tordir/health_monitor.h"

namespace tordir {

const char* HealthAlertName(HealthAlertKind kind) {
  switch (kind) {
    case HealthAlertKind::kMissingVotes:
      return "missing-votes";
    case HealthAlertKind::kVoteEquivocation:
      return "vote-equivocation";
    case HealthAlertKind::kConsensusFork:
      return "consensus-fork";
    case HealthAlertKind::kNoConsensus:
      return "no-consensus";
  }
  return "?";
}

void HealthMonitor::RecordVote(torbase::NodeId observer, torbase::NodeId sender,
                               const torcrypto::Digest256& digest) {
  vote_digests_[sender].insert(digest);
  received_from_[observer].insert(sender);
}

void HealthMonitor::RecordConsensus(torbase::NodeId authority,
                                    std::optional<torcrypto::Digest256> digest) {
  consensus_[authority] = std::move(digest);
}

std::vector<HealthAlert> HealthMonitor::Analyze() const {
  std::vector<HealthAlert> alerts;

  // Vote equivocation: one sender, several digests.
  for (const auto& [sender, digests] : vote_digests_) {
    if (digests.size() > 1) {
      alerts.push_back(HealthAlert{
          HealthAlertKind::kVoteEquivocation,
          {sender},
          "authority " + std::to_string(sender) + " published " +
              std::to_string(digests.size()) + " distinct votes"});
    }
  }

  // Missing votes: count, per sender, how many observers never saw its vote.
  // Only meaningful once at least one observation was recorded (otherwise an
  // idle monitor would flag every authority).
  std::vector<torbase::NodeId> widely_missing;
  if (!received_from_.empty()) {
    for (torbase::NodeId sender = 0; sender < authority_count_; ++sender) {
      uint32_t missing_at = 0;
      for (torbase::NodeId observer = 0; observer < authority_count_; ++observer) {
        if (observer == sender) {
          continue;
        }
        auto it = received_from_.find(observer);
        if (it == received_from_.end() || it->second.count(sender) == 0) {
          ++missing_at;
        }
      }
      // Missing at a majority of the other authorities: the DDoS signature.
      if (missing_at >= (authority_count_ - 1) / 2 + 1) {
        widely_missing.push_back(sender);
      }
    }
  }
  if (!widely_missing.empty()) {
    alerts.push_back(HealthAlert{HealthAlertKind::kMissingVotes, widely_missing,
                                 std::to_string(widely_missing.size()) +
                                     " authorities' votes missing at a majority of peers"});
  }

  // Consensus outcome: fork or total failure.
  std::set<torcrypto::Digest256> distinct;
  std::vector<torbase::NodeId> producers;
  for (const auto& [authority, digest] : consensus_) {
    if (digest.has_value()) {
      distinct.insert(*digest);
      producers.push_back(authority);
    }
  }
  if (!consensus_.empty() && distinct.empty()) {
    alerts.push_back(HealthAlert{HealthAlertKind::kNoConsensus, {},
                                 "no authority produced a consensus this period"});
  } else if (distinct.size() > 1) {
    alerts.push_back(HealthAlert{HealthAlertKind::kConsensusFork, producers,
                                 std::to_string(distinct.size()) +
                                     " distinct consensus documents signed this period"});
  }
  return alerts;
}

void HealthMonitor::Reset() {
  vote_digests_.clear();
  received_from_.clear();
  consensus_.clear();
}

}  // namespace tordir
