#include "src/tordir/health_monitor.h"

#include <algorithm>
#include <vector>

namespace tordir {
namespace {

// min() over timestamps where -1.0 means "none yet".
double EarlierOf(double current, double candidate) {
  if (current < 0.0) {
    return candidate;
  }
  return std::min(current, candidate);
}

}  // namespace

const char* HealthAlertName(HealthAlertKind kind) {
  switch (kind) {
    case HealthAlertKind::kMissingVotes:
      return "missing-votes";
    case HealthAlertKind::kVoteEquivocation:
      return "vote-equivocation";
    case HealthAlertKind::kConsensusFork:
      return "consensus-fork";
    case HealthAlertKind::kNoConsensus:
      return "no-consensus";
    case HealthAlertKind::kMalformedVote:
      return "malformed-vote";
    case HealthAlertKind::kReplayedVote:
      return "replayed-vote";
    case HealthAlertKind::kBandwidthInflation:
      return "bandwidth-inflation";
    case HealthAlertKind::kDroppedMessages:
      return "dropped-messages";
    case HealthAlertKind::kSlowRecovery:
      return "slow-recovery";
    case HealthAlertKind::kHerdOverload:
      return "herd-overload";
  }
  return "?";
}

void HealthMonitor::RecordVote(torbase::NodeId observer, torbase::NodeId sender,
                               const torcrypto::Digest256& digest) {
  SenderStat& stat = senders_[sender];
  auto [it, inserted] = stat.first_seen.emplace(digest, 0.0);
  if (!inserted) {
    it->second = std::min(it->second, 0.0);
  }
  received_from_[observer].insert(sender);
}

void HealthMonitor::RecordObservation(torbase::NodeId observer,
                                      const VoteObservation& observation) {
  SenderStat& stat = senders_[observation.sender];
  auto [it, inserted] = stat.first_seen.emplace(observation.digest, observation.at_seconds);
  if (!inserted) {
    it->second = std::min(it->second, observation.at_seconds);
  }
  stat.max_total_bandwidth = std::max(stat.max_total_bandwidth, observation.total_bandwidth);
  stat.first_observed_seconds = EarlierOf(stat.first_observed_seconds, observation.at_seconds);
  stat.has_bandwidth = true;
  received_from_[observer].insert(observation.sender);
}

void HealthMonitor::RecordReject(torbase::NodeId observer, torbase::NodeId sender,
                                 VoteRejectReason reason, double at_seconds) {
  (void)observer;
  if (sender == torbase::kNoNode) {
    return;  // unattributable; nothing to implicate
  }
  RejectStat& stat = rejects_[sender][reason];
  ++stat.count;
  stat.earliest_seconds = EarlierOf(stat.earliest_seconds, at_seconds);
}

void HealthMonitor::RecordConsensus(torbase::NodeId authority,
                                    std::optional<torcrypto::Digest256> digest) {
  consensus_[authority] = std::move(digest);
}

void HealthMonitor::RecordUndeliverable(uint64_t count) { undeliverable_ += count; }

void HealthMonitor::RecordTimelineRound(const TimelineRoundObservation& observation) {
  timeline_rounds_.push_back(observation);
}

std::vector<HealthAlert> HealthMonitor::Analyze() const {
  std::vector<HealthAlert> alerts;

  // Vote equivocation: one sender, several digests. Evidence exists the
  // moment the *second* distinct digest is seen.
  for (const auto& [sender, stat] : senders_) {
    if (stat.first_seen.size() > 1) {
      double earliest = -1.0;
      double second = -1.0;
      for (const auto& [digest, at] : stat.first_seen) {
        if (earliest < 0.0 || at < earliest) {
          second = earliest;
          earliest = at;
        } else if (second < 0.0 || at < second) {
          second = at;
        }
      }
      alerts.push_back(HealthAlert{
          HealthAlertKind::kVoteEquivocation,
          {sender},
          "authority " + std::to_string(sender) + " published " +
              std::to_string(stat.first_seen.size()) + " distinct votes",
          second});
    }
  }

  // Admission rejects, classified. Unparseable and non-canonical bytes are
  // both "malformed wire" from the monitor's point of view; stale windows are
  // replays.
  for (const auto& [sender, by_reason] : rejects_) {
    uint32_t malformed = 0;
    double malformed_at = -1.0;
    for (VoteRejectReason reason :
         {VoteRejectReason::kMalformed, VoteRejectReason::kNonCanonical}) {
      if (auto it = by_reason.find(reason); it != by_reason.end()) {
        malformed += it->second.count;
        malformed_at = EarlierOf(malformed_at, it->second.earliest_seconds);
      }
    }
    if (malformed > 0) {
      alerts.push_back(HealthAlert{HealthAlertKind::kMalformedVote,
                                   {sender},
                                   "authority " + std::to_string(sender) + " sent " +
                                       std::to_string(malformed) + " malformed votes",
                                   malformed_at});
    }
  }
  for (const auto& [sender, by_reason] : rejects_) {
    if (auto it = by_reason.find(VoteRejectReason::kStaleWindow); it != by_reason.end()) {
      alerts.push_back(HealthAlert{
          HealthAlertKind::kReplayedVote,
          {sender},
          "authority " + std::to_string(sender) + " sent " + std::to_string(it->second.count) +
              " votes with a closed validity window",
          it->second.earliest_seconds});
    }
  }

  // Bandwidth inflation: a sender whose vote claims a total relay bandwidth
  // far above the median of its peers (TorMult-style multiplier). Needs at
  // least 3 senders with bandwidth evidence for the median to mean anything.
  {
    std::vector<uint64_t> totals;
    for (const auto& [sender, stat] : senders_) {
      if (stat.has_bandwidth && stat.max_total_bandwidth > 0) {
        totals.push_back(stat.max_total_bandwidth);
      }
    }
    if (totals.size() >= 3) {
      std::sort(totals.begin(), totals.end());
      const uint64_t median = totals[(totals.size() - 1) / 2];
      if (median > 0) {
        for (const auto& [sender, stat] : senders_) {
          if (stat.has_bandwidth && stat.max_total_bandwidth / 8 > median) {
            alerts.push_back(HealthAlert{
                HealthAlertKind::kBandwidthInflation,
                {sender},
                "authority " + std::to_string(sender) + " claims " +
                    std::to_string(stat.max_total_bandwidth / median) +
                    "x the median total vote bandwidth",
                stat.first_observed_seconds});
          }
        }
      }
    }
  }

  // Missing votes: count, per sender, how many observers never saw its vote.
  // Only meaningful once at least one observation was recorded (otherwise an
  // idle monitor would flag every authority).
  std::vector<torbase::NodeId> widely_missing;
  if (!received_from_.empty()) {
    for (torbase::NodeId sender = 0; sender < authority_count_; ++sender) {
      uint32_t missing_at = 0;
      for (torbase::NodeId observer = 0; observer < authority_count_; ++observer) {
        if (observer == sender) {
          continue;
        }
        auto it = received_from_.find(observer);
        if (it == received_from_.end() || it->second.count(sender) == 0) {
          ++missing_at;
        }
      }
      // Missing at a majority of the other authorities: the DDoS signature.
      if (missing_at >= (authority_count_ - 1) / 2 + 1) {
        widely_missing.push_back(sender);
      }
    }
  }
  if (!widely_missing.empty()) {
    alerts.push_back(HealthAlert{HealthAlertKind::kMissingVotes, widely_missing,
                                 std::to_string(widely_missing.size()) +
                                     " authorities' votes missing at a majority of peers"});
  }

  // Consensus outcome: fork or total failure.
  std::set<torcrypto::Digest256> distinct;
  std::vector<torbase::NodeId> producers;
  for (const auto& [authority, digest] : consensus_) {
    if (digest.has_value()) {
      distinct.insert(*digest);
      producers.push_back(authority);
    }
  }
  if (!consensus_.empty() && distinct.empty()) {
    alerts.push_back(HealthAlert{HealthAlertKind::kNoConsensus, {},
                                 "no authority produced a consensus this period"});
  } else if (distinct.size() > 1) {
    alerts.push_back(HealthAlert{HealthAlertKind::kConsensusFork, producers,
                                 std::to_string(distinct.size()) +
                                     " distinct consensus documents signed this period"});
  }

  // Undeliverable drops: directory messages the network could never carry
  // (flooded or dead links). Absence-style evidence — the drop counter has no
  // timestamp.
  if (undeliverable_ > 0) {
    alerts.push_back(HealthAlert{HealthAlertKind::kDroppedMessages,
                                 {},
                                 std::to_string(undeliverable_) +
                                     " directory messages dropped on flooded or dead links"});
  }

  // Timeline pathologies: scan the per-round horizon feed (empty outside
  // multi-round analyses, so single-round monitors never reach this).
  if (!timeline_rounds_.empty()) {
    // Slow recovery: after the *last* faulted round, clients should be back
    // on fresh serving within slow_recovery_rounds_ full rounds.
    uint64_t last_faulted = 0;
    bool any_fault = false;
    for (const TimelineRoundObservation& round : timeline_rounds_) {
      if (round.faulted) {
        any_fault = true;
        last_faulted = std::max(last_faulted, round.round);
      }
    }
    if (any_fault) {
      uint64_t degraded_rounds = 0;
      bool recovered = false;
      for (const TimelineRoundObservation& round : timeline_rounds_) {
        if (round.round <= last_faulted) {
          continue;
        }
        if (round.fresh_at_end) {
          recovered = true;
          break;
        }
        ++degraded_rounds;
      }
      const bool tail_rounds_exist = timeline_rounds_.back().round > last_faulted;
      if (tail_rounds_exist && (!recovered || degraded_rounds > slow_recovery_rounds_)) {
        alerts.push_back(HealthAlert{
            HealthAlertKind::kSlowRecovery,
            {},
            recovered ? "serving stayed degraded " + std::to_string(degraded_rounds) +
                            " rounds after the fault calendar cleared (round " +
                            std::to_string(last_faulted) + ")"
                      : "serving never returned to fresh after the fault calendar cleared (round " +
                            std::to_string(last_faulted) + ")"});
      }
    }

    // Herd overload: the bootstrap retry backlog peaked above the allowed
    // fraction of the population in some round.
    double peak_fraction = 0.0;
    uint64_t peak_round = 0;
    for (const TimelineRoundObservation& round : timeline_rounds_) {
      if (round.peak_backlog_fraction > peak_fraction) {
        peak_fraction = round.peak_backlog_fraction;
        peak_round = round.round;
      }
    }
    if (peak_fraction > herd_overload_fraction_) {
      alerts.push_back(
          HealthAlert{HealthAlertKind::kHerdOverload,
                      {},
                      "bootstrap retry herd peaked at " +
                          std::to_string(static_cast<int>(peak_fraction * 100.0 + 0.5)) +
                          "% of the population in round " + std::to_string(peak_round)});
    }
  }
  return alerts;
}

void HealthMonitor::Reset() {
  senders_.clear();
  received_from_.clear();
  rejects_.clear();
  consensus_.clear();
  undeliverable_ = 0;
  timeline_rounds_.clear();
}

}  // namespace tordir
