#include "src/core/digest_vector.h"

#include <algorithm>
#include <set>

namespace toricc {
namespace {

void EncodeSignature(torbase::Writer& w, const torcrypto::Signature& sig) {
  w.WriteU32(sig.signer);
  w.WriteRaw(sig.bytes);
}

torbase::Result<torcrypto::Signature> DecodeSignature(torbase::Reader& r) {
  auto signer = r.ReadU32();
  auto raw = r.ReadRaw(64);
  if (!signer.ok() || !raw.ok()) {
    return torbase::Status::InvalidArgument("truncated signature");
  }
  torcrypto::Signature sig;
  sig.signer = *signer;
  std::copy(raw->begin(), raw->end(), sig.bytes.begin());
  return sig;
}

void EncodeDigest(torbase::Writer& w, const torcrypto::Digest256& digest) {
  w.WriteRaw(digest.span());
}

torbase::Result<torcrypto::Digest256> DecodeDigest(torbase::Reader& r) {
  auto raw = r.ReadRaw(torcrypto::kSha256DigestSize);
  if (!raw.ok()) {
    return raw.status();
  }
  std::array<uint8_t, torcrypto::kSha256DigestSize> bytes;
  std::copy(raw->begin(), raw->end(), bytes.begin());
  return torcrypto::Digest256(bytes);
}

bool DistinctSigners(const std::vector<torcrypto::Signature>& sigs, size_t minimum) {
  std::set<torbase::NodeId> signers;
  for (const auto& sig : sigs) {
    signers.insert(sig.signer);
  }
  return signers.size() >= minimum;
}

}  // namespace

Bytes EntryPayload(NodeId j, const std::optional<torcrypto::Digest256>& digest) {
  torbase::Writer w;
  w.WriteString("icps-entry");
  w.WriteU32(j);
  w.WriteBool(digest.has_value());
  if (digest.has_value()) {
    w.WriteRaw(digest->span());
  }
  return w.TakeBuffer();
}

void Proposal::Encode(torbase::Writer& w) const {
  w.WriteU32(proposer);
  w.WriteU32(static_cast<uint32_t>(entries.size()));
  for (const auto& entry : entries) {
    w.WriteBool(entry.digest.has_value());
    if (entry.digest.has_value()) {
      EncodeDigest(w, *entry.digest);
      EncodeSignature(w, *entry.sender_sig);
    }
    EncodeSignature(w, entry.proposer_sig);
  }
}

torbase::Result<Proposal> Proposal::Decode(torbase::Reader& r) {
  Proposal proposal;
  auto proposer = r.ReadU32();
  auto count = r.ReadU32();
  if (!proposer.ok() || !count.ok()) {
    return torbase::Status::InvalidArgument("truncated proposal header");
  }
  if (*count > 1024) {
    return torbase::Status::InvalidArgument("absurd proposal size");
  }
  proposal.proposer = *proposer;
  for (uint32_t j = 0; j < *count; ++j) {
    ProposalEntry entry;
    auto present = r.ReadBool();
    if (!present.ok()) {
      return present.status();
    }
    if (*present) {
      auto digest = DecodeDigest(r);
      auto sender_sig = DecodeSignature(r);
      if (!digest.ok() || !sender_sig.ok()) {
        return torbase::Status::InvalidArgument("truncated proposal entry");
      }
      entry.digest = *digest;
      entry.sender_sig = *sender_sig;
    }
    auto proposer_sig = DecodeSignature(r);
    if (!proposer_sig.ok()) {
      return proposer_sig.status();
    }
    entry.proposer_sig = *proposer_sig;
    proposal.entries.push_back(std::move(entry));
  }
  return proposal;
}

bool Proposal::Verify(const torcrypto::KeyDirectory& directory, uint32_t node_count) const {
  if (proposer >= node_count || entries.size() != node_count) {
    return false;
  }
  for (NodeId j = 0; j < entries.size(); ++j) {
    const ProposalEntry& entry = entries[j];
    const Bytes payload = EntryPayload(j, entry.digest);
    if (entry.proposer_sig.signer != proposer ||
        !directory.Verify(payload, entry.proposer_sig)) {
      return false;
    }
    if (entry.digest.has_value()) {
      if (!entry.sender_sig.has_value() || entry.sender_sig->signer != j ||
          !directory.Verify(payload, *entry.sender_sig)) {
        return false;
      }
    }
  }
  return true;
}

size_t CertifiedVector::NonEmptyCount() const {
  size_t count = 0;
  for (const auto& entry : entries) {
    if (entry.NonEmpty()) {
      ++count;
    }
  }
  return count;
}

Bytes CertifiedVector::Encode() const {
  torbase::Writer w;
  w.WriteU32(static_cast<uint32_t>(entries.size()));
  for (const auto& entry : entries) {
    w.WriteU8(static_cast<uint8_t>(entry.kind));
    switch (entry.kind) {
      case VectorEntry::Kind::kOk: {
        EncodeDigest(w, *entry.digest);
        EncodeSignature(w, *entry.sender_sig);
        w.WriteU32(static_cast<uint32_t>(entry.witness_sigs.size()));
        for (const auto& sig : entry.witness_sigs) {
          EncodeSignature(w, sig);
        }
        break;
      }
      case VectorEntry::Kind::kEquivocation: {
        EncodeDigest(w, *entry.equivocation_a);
        EncodeDigest(w, *entry.equivocation_b);
        EncodeSignature(w, *entry.equivocation_sig_a);
        EncodeSignature(w, *entry.equivocation_sig_b);
        break;
      }
      case VectorEntry::Kind::kTimeout: {
        w.WriteU32(static_cast<uint32_t>(entry.witness_sigs.size()));
        for (const auto& sig : entry.witness_sigs) {
          EncodeSignature(w, sig);
        }
        break;
      }
    }
  }
  return w.TakeBuffer();
}

torbase::Result<CertifiedVector> CertifiedVector::Decode(const Bytes& bytes) {
  torbase::Reader r(bytes);
  CertifiedVector vector;
  auto count = r.ReadU32();
  if (!count.ok()) {
    return count.status();
  }
  if (*count > 1024) {
    return torbase::Status::InvalidArgument("absurd vector size");
  }
  for (uint32_t j = 0; j < *count; ++j) {
    VectorEntry entry;
    auto kind = r.ReadU8();
    if (!kind.ok() || *kind < 1 || *kind > 3) {
      return torbase::Status::InvalidArgument("bad entry kind");
    }
    entry.kind = static_cast<VectorEntry::Kind>(*kind);
    switch (entry.kind) {
      case VectorEntry::Kind::kOk: {
        auto digest = DecodeDigest(r);
        auto sender_sig = DecodeSignature(r);
        auto sig_count = r.ReadU32();
        if (!digest.ok() || !sender_sig.ok() || !sig_count.ok() || *sig_count > 1024) {
          return torbase::Status::InvalidArgument("truncated OK entry");
        }
        entry.digest = *digest;
        entry.sender_sig = *sender_sig;
        for (uint32_t s = 0; s < *sig_count; ++s) {
          auto sig = DecodeSignature(r);
          if (!sig.ok()) {
            return sig.status();
          }
          entry.witness_sigs.push_back(*sig);
        }
        break;
      }
      case VectorEntry::Kind::kEquivocation: {
        auto a = DecodeDigest(r);
        auto b = DecodeDigest(r);
        auto sig_a = DecodeSignature(r);
        auto sig_b = DecodeSignature(r);
        if (!a.ok() || !b.ok() || !sig_a.ok() || !sig_b.ok()) {
          return torbase::Status::InvalidArgument("truncated equivocation entry");
        }
        entry.equivocation_a = *a;
        entry.equivocation_b = *b;
        entry.equivocation_sig_a = *sig_a;
        entry.equivocation_sig_b = *sig_b;
        break;
      }
      case VectorEntry::Kind::kTimeout: {
        auto sig_count = r.ReadU32();
        if (!sig_count.ok() || *sig_count > 1024) {
          return torbase::Status::InvalidArgument("truncated timeout entry");
        }
        for (uint32_t s = 0; s < *sig_count; ++s) {
          auto sig = DecodeSignature(r);
          if (!sig.ok()) {
            return sig.status();
          }
          entry.witness_sigs.push_back(*sig);
        }
        break;
      }
    }
    vector.entries.push_back(std::move(entry));
  }
  if (!r.AtEnd()) {
    return torbase::Status::InvalidArgument("trailing bytes after vector");
  }
  return vector;
}

bool CertifiedVector::Verify(const torcrypto::KeyDirectory& directory, uint32_t node_count,
                             uint32_t fault_tolerance) const {
  if (entries.size() != node_count) {
    return false;
  }
  const size_t witness_quorum = fault_tolerance + 1;
  for (NodeId j = 0; j < entries.size(); ++j) {
    const VectorEntry& entry = entries[j];
    switch (entry.kind) {
      case VectorEntry::Kind::kOk: {
        if (!entry.digest.has_value() || !entry.sender_sig.has_value()) {
          return false;
        }
        const Bytes payload = EntryPayload(j, entry.digest);
        if (entry.sender_sig->signer != j || !directory.Verify(payload, *entry.sender_sig)) {
          return false;
        }
        for (const auto& sig : entry.witness_sigs) {
          if (!directory.Verify(payload, sig)) {
            return false;
          }
        }
        if (!DistinctSigners(entry.witness_sigs, witness_quorum)) {
          return false;
        }
        break;
      }
      case VectorEntry::Kind::kEquivocation: {
        if (!entry.equivocation_a.has_value() || !entry.equivocation_b.has_value() ||
            *entry.equivocation_a == *entry.equivocation_b) {
          return false;
        }
        if (!entry.equivocation_sig_a.has_value() || entry.equivocation_sig_a->signer != j ||
            !directory.Verify(EntryPayload(j, entry.equivocation_a), *entry.equivocation_sig_a)) {
          return false;
        }
        if (!entry.equivocation_sig_b.has_value() || entry.equivocation_sig_b->signer != j ||
            !directory.Verify(EntryPayload(j, entry.equivocation_b), *entry.equivocation_sig_b)) {
          return false;
        }
        break;
      }
      case VectorEntry::Kind::kTimeout: {
        const Bytes payload = EntryPayload(j, std::nullopt);
        for (const auto& sig : entry.witness_sigs) {
          if (!directory.Verify(payload, sig)) {
            return false;
          }
        }
        if (!DistinctSigners(entry.witness_sigs, witness_quorum)) {
          return false;
        }
        break;
      }
    }
  }
  return NonEmptyCount() + fault_tolerance >= node_count;
}

std::optional<CertifiedVector> BuildCertifiedVector(const std::map<NodeId, Proposal>& proposals,
                                                    uint32_t node_count,
                                                    uint32_t fault_tolerance) {
  const size_t proposal_quorum = node_count - fault_tolerance;
  const size_t witness_quorum = fault_tolerance + 1;
  if (proposals.size() < proposal_quorum) {
    return std::nullopt;
  }

  CertifiedVector vector;
  vector.entries.resize(node_count);
  for (NodeId j = 0; j < node_count; ++j) {
    VectorEntry& out = vector.entries[j];

    // Group proposer signatures by claimed digest (nullopt key = ⟂ bucket).
    std::map<std::optional<torcrypto::Digest256>, std::vector<torcrypto::Signature>> buckets;
    std::map<torcrypto::Digest256, torcrypto::Signature> sender_sigs;
    for (const auto& [proposer, proposal] : proposals) {
      if (j >= proposal.entries.size()) {
        continue;
      }
      const ProposalEntry& entry = proposal.entries[j];
      buckets[entry.digest].push_back(entry.proposer_sig);
      if (entry.digest.has_value() && entry.sender_sig.has_value()) {
        sender_sigs.emplace(*entry.digest, *entry.sender_sig);
      }
    }

    // Rule b: any two sender-signed distinct digests prove equivocation.
    if (sender_sigs.size() >= 2) {
      auto it = sender_sigs.begin();
      const auto& [digest_a, sig_a] = *it;
      ++it;
      const auto& [digest_b, sig_b] = *it;
      out.kind = VectorEntry::Kind::kEquivocation;
      out.equivocation_a = digest_a;
      out.equivocation_b = digest_b;
      out.equivocation_sig_a = sig_a;
      out.equivocation_sig_b = sig_b;
      continue;
    }

    // Rule a: (f + 1) proposers vouch for the same digest.
    bool resolved = false;
    for (const auto& [digest, sigs] : buckets) {
      if (digest.has_value() && sigs.size() >= witness_quorum) {
        out.kind = VectorEntry::Kind::kOk;
        out.digest = *digest;
        out.sender_sig = sender_sigs.at(*digest);
        out.witness_sigs.assign(sigs.begin(), sigs.begin() + static_cast<long>(witness_quorum));
        resolved = true;
        break;
      }
    }
    if (resolved) {
      continue;
    }

    // Rule c: (f + 1) proposers saw nothing from j.
    auto bot = buckets.find(std::nullopt);
    if (bot != buckets.end() && bot->second.size() >= witness_quorum) {
      out.kind = VectorEntry::Kind::kTimeout;
      out.witness_sigs.assign(bot->second.begin(),
                              bot->second.begin() + static_cast<long>(witness_quorum));
      continue;
    }

    // Unresolvable entry: not enough evidence either way yet. Treat as an
    // unprovable timeout with whatever ⟂ signatures exist; readiness below
    // decides whether the vector can be used.
    out.kind = VectorEntry::Kind::kTimeout;
    if (bot != buckets.end()) {
      out.witness_sigs = bot->second;
    }
  }

  // Readiness: at least (n - f) non-⟂ entries, and every ⟂ entry must carry a
  // valid proof (equivocation or f+1 timeout signatures) for the vector to be
  // externally valid.
  if (vector.NonEmptyCount() < proposal_quorum) {
    return std::nullopt;
  }
  for (const auto& entry : vector.entries) {
    if (entry.kind == VectorEntry::Kind::kTimeout &&
        entry.witness_sigs.size() < witness_quorum) {
      return std::nullopt;  // cannot justify this ⟂ yet; wait for proposals
    }
  }
  return vector;
}

}  // namespace toricc
