#include "src/core/icps_authority.h"

#include <algorithm>

#include "src/tordir/aggregate.h"
#include "src/tordir/dirspec.h"

namespace toricc {
namespace {

constexpr const char* kKindDocument = "DOCUMENT";
constexpr const char* kKindProposal = "PROPOSAL";
constexpr const char* kKindAgreement = "AGREEMENT";
constexpr const char* kKindDocFetch = "DOC_FETCH";
constexpr const char* kKindConsensusSig = "CONSENSUS_SIG";

}  // namespace

IcpsAuthority::IcpsAuthority(const IcpsConfig& config, const torcrypto::KeyDirectory* directory,
                             std::shared_ptr<const tordir::VoteDocument> own_vote,
                             std::shared_ptr<const std::string> own_vote_text,
                             std::shared_ptr<const tordir::VoteCache> vote_cache,
                             std::shared_ptr<const std::string> second_vote_text,
                             std::shared_ptr<const torproto::AuthorityRoundState> round_state)
    : config_(config),
      directory_(directory),
      signer_(directory->SignerFor(own_vote->authority)),
      own_vote_(std::move(own_vote)),
      own_vote_text_(std::move(own_vote_text)),
      vote_cache_(std::move(vote_cache)),
      second_vote_text_(std::move(second_vote_text)),
      round_state_(std::move(round_state)) {
  if (own_vote_text_ == nullptr) {
    own_vote_text_ = std::make_shared<const std::string>(tordir::SerializeVote(*own_vote_));
  }
  own_digest_ = torcrypto::Digest256::Of(*own_vote_text_);
}

IcpsAuthority::IcpsAuthority(const IcpsConfig& config, const torcrypto::KeyDirectory* directory,
                             tordir::VoteDocument own_vote, std::string own_vote_text)
    : IcpsAuthority(config, directory,
                    std::make_shared<const tordir::VoteDocument>(std::move(own_vote)),
                    own_vote_text.empty()
                        ? nullptr
                        : std::make_shared<const std::string>(std::move(own_vote_text))) {}

void IcpsAuthority::Start() {
  // Self-delivery of our own document.
  ReceivedDoc own;
  own.digest = own_digest_;
  own.text = own_vote_text_;
  own.sender_sig = signer_.Sign(EntryPayload(id(), own_digest_));
  documents_.emplace(id(), std::move(own));

  BroadcastDocument();
  SetTimer(config_.dissemination_timeout, [this] { OnDisseminationTimeout(); });

  // Agreement engine with dissemination glue.
  torbft::HotStuffNode::Callbacks callbacks;
  callbacks.send = [this](torbase::NodeId to, torbase::Bytes message) {
    SendTo(to, kKindAgreement, std::move(message));
  };
  callbacks.set_timer = [this](torbase::Duration d, std::function<void()> fn) {
    return SetTimer(d, std::move(fn));
  };
  callbacks.cancel_timer = [this](torsim::EventId event) { CancelTimer(event); };
  callbacks.get_proposal = [this] { return LeaderValue(); };
  callbacks.validate = [this](const torbase::Bytes& value) { return ValidateValue(value); };
  callbacks.on_decide = [this](const torbase::Bytes& value) { OnDecide(value); };
  callbacks.now = [this] { return now(); };
  agreement_.emplace(id(), config_.hotstuff, directory_, std::move(callbacks));
  agreement_->Start();
}

void IcpsAuthority::BroadcastDocument() {
  log().Notice(now(), "Disseminating vote document (" + std::to_string(own_vote_text_->size()) +
                          " bytes).");
  if (second_vote_text_ != nullptr) {
    // Equivocation: odd peers get a second, correctly signed document. Each
    // peer's direct copy verifies in isolation; the split only surfaces in
    // the PROPOSAL cross-check (possibly forcing a ⟂ entry) and in the
    // health monitor's per-peer digest comparison.
    const torcrypto::Digest256 second_digest = torcrypto::Digest256::Of(*second_vote_text_);
    const torcrypto::Signature second_sig = signer_.Sign(EntryPayload(id(), second_digest));
    const torcrypto::Signature own_sig = documents_.at(id()).sender_sig;
    for (torbase::NodeId peer = 0; peer < node_count(); ++peer) {
      if (peer == id()) {
        continue;
      }
      const bool alternate = peer % 2 == 1;
      const std::string& text = alternate ? *second_vote_text_ : *own_vote_text_;
      const torcrypto::Digest256& digest = alternate ? second_digest : own_digest_;
      const torcrypto::Signature& sig = alternate ? second_sig : own_sig;
      torbase::Writer w;
      w.Reserve(text.size() + 128);
      w.WriteU8(kDocument);
      w.WriteString(text);
      w.WriteRaw(digest.span());
      w.WriteU32(sig.signer);
      w.WriteRaw(sig.bytes);
      SendTo(peer, kKindDocument, w.TakeBuffer());
    }
    return;
  }
  torbase::Writer w;
  w.Reserve(own_vote_text_->size() + 128);
  w.WriteU8(kDocument);
  w.WriteString(*own_vote_text_);
  w.WriteRaw(own_digest_.span());
  const torcrypto::Signature sig = documents_.at(id()).sender_sig;
  w.WriteU32(sig.signer);
  w.WriteRaw(sig.bytes);
  SendToAllOthers(kKindDocument, w.buffer());
}

void IcpsAuthority::OnMessage(torbase::NodeId from, const torbase::Bytes& payload) {
  torbase::Reader r(payload);
  auto type = r.ReadU8();
  if (!type.ok()) {
    return;
  }
  if (*type >= 1 && *type <= 8) {
    // HotStuff engine message; re-feed without the tag (the engine reads its
    // own tag byte).
    if (agreement_.has_value()) {
      agreement_->OnMessage(from, payload);
    }
    return;
  }
  switch (*type) {
    case kDocument:
      HandleDocument(from, r);
      break;
    case kProposal:
      HandleProposal(from, r);
      break;
    case kDocRequest:
      HandleDocRequest(from, r);
      break;
    case kDocResponse:
      HandleDocResponse(from, r);
      break;
    case kConsensusSig:
      HandleConsensusSig(from, r);
      break;
    default:
      log().Warn(now(), "Unknown message type " + std::to_string(*type));
  }
}

void IcpsAuthority::HandleDocument(torbase::NodeId from, torbase::Reader& r) {
  auto text = r.ReadString();
  auto digest_raw = r.ReadRaw(torcrypto::kSha256DigestSize);
  auto signer = r.ReadU32();
  auto sig_raw = r.ReadRaw(64);
  if (!text.ok() || !digest_raw.ok() || !signer.ok() || !sig_raw.ok()) {
    return;
  }
  const torcrypto::Digest256 digest = torcrypto::Digest256::Of(*text);
  std::array<uint8_t, torcrypto::kSha256DigestSize> claimed;
  std::copy(digest_raw->begin(), digest_raw->end(), claimed.begin());
  if (digest != torcrypto::Digest256(claimed)) {
    log().Warn(now(), "Document digest mismatch from " + std::to_string(from));
    return;
  }
  torcrypto::Signature sig;
  sig.signer = *signer;
  std::copy(sig_raw->begin(), sig_raw->end(), sig.bytes.begin());
  if (sig.signer != from || !directory_->Verify(EntryPayload(from, digest), sig)) {
    log().Warn(now(), "Bad document signature from " + std::to_string(from));
    return;
  }
  // Admission: the sender signed these exact bytes, so all reject reasons are
  // attributable to `from` directly.
  tordir::VoteAdmission admission =
      tordir::AdmitVote(vote_cache_, *text, digest, own_vote_->valid_after);
  if (!admission.status.ok()) {
    log().Warn(now(), "Rejecting document from " + std::to_string(from) + ": " +
                          admission.status.ToString());
    rejected_votes_.push_back(torproto::RejectedVote{from, admission.reason, now()});
    return;
  }
  observed_votes_.push_back(torproto::ObservedVote{from, digest, now(), admission.document});
  StoreDocument(from, std::move(admission.text), digest, sig);
}

std::shared_ptr<const std::string> IcpsAuthority::ShareText(std::string text,
                                                            const torcrypto::Digest256& digest) {
  // A digest hit in the workload cache means these bytes are a canonical vote
  // we can reference instead of retaining a private multi-megabyte copy.
  if (const tordir::CachedVote* cached = tordir::VoteCache::FindIn(vote_cache_, digest)) {
    return cached->text;
  }
  return std::make_shared<const std::string>(std::move(text));
}

void IcpsAuthority::StoreDocument(torbase::NodeId sender, std::shared_ptr<const std::string> text,
                                  const torcrypto::Digest256& digest,
                                  const torcrypto::Signature& sender_sig) {
  auto it = documents_.find(sender);
  if (it != documents_.end()) {
    if (it->second.digest != digest && equivocations_.count(sender) == 0) {
      // The sender signed two different documents: keep the evidence. The
      // PROPOSAL cross-check in BuildCertifiedVector turns this into a ⟂ entry
      // when different nodes received different versions.
      log().Warn(now(), "Authority " + std::to_string(sender) +
                            " equivocated its vote document.");
      equivocations_.emplace(sender, ReceivedDoc{digest, std::move(text), sender_sig});
    }
    return;
  }
  documents_.emplace(sender, ReceivedDoc{digest, std::move(text), sender_sig});
  if (documents_.size() == config_.authority_count &&
      outcome_.documents_complete_at == torbase::kTimeNever) {
    outcome_.documents_complete_at = now();
  }
  MaybeSendProposal();
}

void IcpsAuthority::OnDisseminationTimeout() {
  dissemination_timed_out_ = true;
  MaybeSendProposal();
}

void IcpsAuthority::MaybeSendProposal() {
  const uint32_t quorum = config_.authority_count - config_.fault_tolerance;
  const bool have_all = documents_.size() == config_.authority_count;
  const bool have_quorum_after_timeout = dissemination_timed_out_ && documents_.size() >= quorum;
  if (proposal_sent_ || (!have_all && !have_quorum_after_timeout)) {
    return;
  }
  proposal_sent_ = true;
  outcome_.proposal_sent_at = now();

  const Proposal proposal = BuildOwnProposal();
  proposals_[id()] = proposal;
  torbase::Writer w;
  w.WriteU8(kProposal);
  proposal.Encode(w);
  log().Info(now(), "Sending PROPOSAL (" + std::to_string(documents_.size()) + " of " +
                        std::to_string(config_.authority_count) + " documents).");
  SendToAllOthers(kKindProposal, w.buffer());
  if (agreement_.has_value()) {
    agreement_->NotifyProposalReady();
  }
}

Proposal IcpsAuthority::BuildOwnProposal() const {
  Proposal proposal;
  proposal.proposer = id();
  proposal.entries.resize(config_.authority_count);
  for (torbase::NodeId j = 0; j < config_.authority_count; ++j) {
    ProposalEntry& entry = proposal.entries[j];
    auto it = documents_.find(j);
    if (it != documents_.end()) {
      entry.digest = it->second.digest;
      entry.sender_sig = it->second.sender_sig;
    }
    entry.proposer_sig = signer_.Sign(EntryPayload(j, entry.digest));
  }
  return proposal;
}

void IcpsAuthority::HandleProposal(torbase::NodeId from, torbase::Reader& r) {
  auto proposal = Proposal::Decode(r);
  if (!proposal.ok()) {
    return;
  }
  if (proposal->proposer != from || !proposal->Verify(*directory_, config_.authority_count)) {
    log().Warn(now(), "Invalid PROPOSAL from " + std::to_string(from));
    return;
  }
  proposals_[from] = std::move(*proposal);
  if (agreement_.has_value()) {
    agreement_->NotifyProposalReady();
  }
}

std::optional<torbase::Bytes> IcpsAuthority::LeaderValue() {
  auto vector =
      BuildCertifiedVector(proposals_, config_.authority_count, config_.fault_tolerance);
  if (!vector.has_value()) {
    return std::nullopt;
  }
  return vector->Encode();
}

bool IcpsAuthority::ValidateValue(const torbase::Bytes& value) {
  auto vector = CertifiedVector::Decode(value);
  if (!vector.ok()) {
    return false;
  }
  return vector->Verify(*directory_, config_.authority_count, config_.fault_tolerance);
}

void IcpsAuthority::OnDecide(const torbase::Bytes& value) {
  auto vector = CertifiedVector::Decode(value);
  if (!vector.ok()) {
    log().Err(now(), "Decided value failed to decode; this should be impossible.");
    return;
  }
  agreed_vector_ = std::move(*vector);
  outcome_.decided = true;
  outcome_.decided_at = now();
  outcome_.vector_non_empty = static_cast<uint32_t>(agreed_vector_->NonEmptyCount());
  outcome_.documents_held = static_cast<uint32_t>(documents_.size());
  log().Notice(now(), "Agreement reached on digest vector (" +
                          std::to_string(outcome_.vector_non_empty) + " of " +
                          std::to_string(config_.authority_count) + " documents included).");
  RequestMissingDocuments();
  MaybeFinishAggregation();
}

void IcpsAuthority::RequestMissingDocuments() {
  for (torbase::NodeId j = 0; j < config_.authority_count; ++j) {
    const VectorEntry& entry = agreed_vector_->entries[j];
    if (!entry.NonEmpty()) {
      continue;
    }
    auto it = documents_.find(j);
    if (it != documents_.end() && it->second.digest == *entry.digest) {
      continue;  // already have the agreed version
    }
    pending_fetches_.insert(j);
    // Ask the proof witnesses: they signed that they hold this document, and
    // at least one of them is correct (f + 1 witnesses).
    torbase::Writer w;
    w.WriteU8(kDocRequest);
    w.WriteU32(j);
    w.WriteRaw(entry.digest->span());
    for (const auto& witness : entry.witness_sigs) {
      if (witness.signer != id()) {
        SendTo(witness.signer, kKindDocFetch, w.buffer());
      }
    }
    // The sender itself also holds it.
    if (j != id()) {
      SendTo(j, kKindDocFetch, w.buffer());
    }
  }
}

void IcpsAuthority::HandleDocRequest(torbase::NodeId from, torbase::Reader& r) {
  auto j = r.ReadU32();
  auto digest_raw = r.ReadRaw(torcrypto::kSha256DigestSize);
  if (!j.ok() || !digest_raw.ok()) {
    return;
  }
  auto it = documents_.find(*j);
  if (it == documents_.end()) {
    return;
  }
  std::array<uint8_t, torcrypto::kSha256DigestSize> wanted;
  std::copy(digest_raw->begin(), digest_raw->end(), wanted.begin());
  if (it->second.digest != torcrypto::Digest256(wanted)) {
    return;  // we hold a different version; not useful
  }
  torbase::Writer w;
  w.Reserve(it->second.text->size() + 128);
  w.WriteU8(kDocResponse);
  w.WriteU32(*j);
  w.WriteString(*it->second.text);
  w.WriteU32(it->second.sender_sig.signer);
  w.WriteRaw(it->second.sender_sig.bytes);
  SendTo(from, kKindDocFetch, w.TakeBuffer());
}

void IcpsAuthority::HandleDocResponse(torbase::NodeId from, torbase::Reader& r) {
  (void)from;
  auto j = r.ReadU32();
  auto text = r.ReadString();
  auto signer = r.ReadU32();
  auto sig_raw = r.ReadRaw(64);
  if (!j.ok() || !text.ok() || !signer.ok() || !sig_raw.ok()) {
    return;
  }
  if (pending_fetches_.count(*j) == 0 || !agreed_vector_.has_value()) {
    return;  // duplicate or unsolicited
  }
  const VectorEntry& entry = agreed_vector_->entries[*j];
  const torcrypto::Digest256 digest = torcrypto::Digest256::Of(*text);
  if (!entry.digest.has_value() || digest != *entry.digest) {
    return;  // wrong document
  }
  torcrypto::Signature sig;
  sig.signer = *signer;
  std::copy(sig_raw->begin(), sig_raw->end(), sig.bytes.begin());
  if (sig.signer != *j || !directory_->Verify(EntryPayload(*j, digest), sig)) {
    return;
  }
  // Same admission as the direct dissemination path: a certified-but-faulty
  // document (only possible past the fault tolerance) must still not enter
  // aggregation.
  tordir::VoteAdmission admission =
      tordir::AdmitVote(vote_cache_, *text, digest, own_vote_->valid_after);
  if (!admission.status.ok()) {
    log().Warn(now(), "Rejecting fetched document for " + std::to_string(*j) + ": " +
                          admission.status.ToString());
    rejected_votes_.push_back(torproto::RejectedVote{*j, admission.reason, now()});
    return;
  }
  observed_votes_.push_back(torproto::ObservedVote{*j, digest, now(), admission.document});
  ReceivedDoc doc;
  doc.digest = digest;
  doc.text = std::move(admission.text);
  doc.sender_sig = sig;
  documents_[*j] = std::move(doc);
  pending_fetches_.erase(*j);
  MaybeFinishAggregation();
}

void IcpsAuthority::MaybeFinishAggregation() {
  if (!agreed_vector_.has_value() || consensus_digest_.has_value() ||
      !pending_fetches_.empty()) {
    return;
  }
  // All agreed documents present: aggregate exactly the non-⟂ entries. The
  // agreed digests are the canonical workload votes in the honest runs, so
  // the cache turns this into pointer lookups; a miss parses as before.
  std::vector<std::shared_ptr<const tordir::VoteDocument>> votes;
  votes.reserve(agreed_vector_->entries.size());
  for (torbase::NodeId j = 0; j < config_.authority_count; ++j) {
    const VectorEntry& entry = agreed_vector_->entries[j];
    if (!entry.NonEmpty()) {
      continue;
    }
    const ReceivedDoc& doc = documents_.at(j);
    // Both receive paths already admitted the document, except our own (an
    // honest authority's by definition, but a byzantine self's stale/mutated
    // one must not be laundered into the consensus through this spot).
    tordir::VoteAdmission admission =
        tordir::AdmitVote(vote_cache_, *doc.text, doc.digest, own_vote_->valid_after);
    if (!admission.status.ok()) {
      log().Err(now(), "Agreed document " + std::to_string(j) + " rejected: " +
                           admission.status.ToString());
      if (j != id()) {
        rejected_votes_.push_back(
            torproto::RejectedVote{j, admission.reason, now()});
      }
      continue;
    }
    votes.push_back(std::move(admission.document));
  }
  std::vector<const tordir::VoteDocument*> vote_ptrs;
  vote_ptrs.reserve(votes.size());
  for (const auto& vote : votes) {
    vote_ptrs.push_back(vote.get());
  }
  outcome_.consensus = tordir::ComputeConsensus(vote_ptrs, config_.aggregation);
  consensus_digest_ = tordir::ConsensusDigest(outcome_.consensus);
  log().Notice(now(), "Consensus computed from " + std::to_string(votes.size()) +
                          " documents (" + std::to_string(outcome_.consensus.relays.size()) +
                          " relays); broadcasting signature.");

  const torcrypto::Signature sig = signer_.Sign(consensus_digest_->span());
  AcceptConsensusSig(sig);
  // Replay signatures that arrived before we finished aggregating.
  std::vector<torcrypto::Signature> pending;
  pending.swap(pending_consensus_sigs_);
  for (const auto& early_sig : pending) {
    AcceptConsensusSig(early_sig);
  }
  torbase::Writer w;
  w.WriteU8(kConsensusSig);
  w.WriteRaw(consensus_digest_->span());
  w.WriteU32(sig.signer);
  w.WriteRaw(sig.bytes);
  SendToAllOthers(kKindConsensusSig, w.buffer());
}

void IcpsAuthority::HandleConsensusSig(torbase::NodeId from, torbase::Reader& r) {
  (void)from;
  auto digest_raw = r.ReadRaw(torcrypto::kSha256DigestSize);
  auto signer = r.ReadU32();
  auto sig_raw = r.ReadRaw(64);
  if (!digest_raw.ok() || !signer.ok() || !sig_raw.ok()) {
    return;
  }
  torcrypto::Signature sig;
  sig.signer = *signer;
  std::copy(sig_raw->begin(), sig_raw->end(), sig.bytes.begin());
  AcceptConsensusSig(sig);
}

void IcpsAuthority::AcceptConsensusSig(const torcrypto::Signature& sig) {
  if (!consensus_digest_.has_value()) {
    // Peers that finished aggregation first may sign before we do; keep their
    // signatures until our own consensus digest exists.
    pending_consensus_sigs_.push_back(sig);
    return;
  }
  if (sig.signer >= config_.authority_count || consensus_sigs_.count(sig.signer) > 0) {
    return;
  }
  if (!directory_->Verify(consensus_digest_->span(), sig)) {
    log().Warn(now(), "Consensus signature from " + std::to_string(sig.signer) +
                          " does not match our document.");
    return;
  }
  consensus_sigs_.emplace(sig.signer, sig);
  if (!outcome_.valid_consensus && consensus_sigs_.size() >= config_.SignatureThreshold()) {
    outcome_.valid_consensus = true;
    outcome_.finished_at = now();
    for (const auto& [signer, s] : consensus_sigs_) {
      outcome_.consensus.signatures.push_back(s);
    }
    log().Notice(now(), "Consensus valid with " + std::to_string(consensus_sigs_.size()) +
                            " signatures.");
  }
}

}  // namespace toricc
