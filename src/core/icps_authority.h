// The paper's directory protocol: Interactive Consistency under Partial
// Synchrony (§5.2), composed of three sub-protocols:
//
//   1. Dissemination — broadcast the vote document, collect peers' documents
//      (all n, or at least n - f after the timeout Δ), then broadcast a signed
//      PROPOSAL describing which digests were received.
//   2. Agreement — single-shot HotStuff over the certified digest vector
//      (H, π); the view leader assembles the vector from (n - f) proposals and
//      external validity checks the proofs.
//   3. Aggregation — fetch any documents named by the agreed vector that are
//      still missing (from their proof witnesses, one of which is correct),
//      aggregate with the standard Tor algorithm, sign, and collect a majority
//      of consensus signatures.
//
// Unlike the lock-step protocols there are no round deadlines: transfers may
// take arbitrarily long (the network may be under DDoS), and the protocol
// finishes shortly after connectivity returns — the property Figure 11
// measures.
#ifndef SRC_CORE_ICPS_AUTHORITY_H_
#define SRC_CORE_ICPS_AUTHORITY_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "src/consensus/hotstuff.h"
#include "src/core/digest_vector.h"
#include "src/protocols/common.h"
#include "src/sim/actor.h"
#include "src/tordir/vote.h"

namespace toricc {

struct IcpsConfig {
  uint32_t authority_count = 9;
  // ICPS under partial synchrony tolerates f < n/3 (2 of 9), the trade-off
  // discussed in §5.1.
  uint32_t fault_tolerance = 2;
  // Dissemination wait Δ: after this, proceed with >= n - f documents.
  torbase::Duration dissemination_timeout = torbase::Seconds(150);
  // Pacemaker settings for the agreement sub-protocol.
  torbft::HotStuffConfig hotstuff;
  uint64_t key_seed = 42;
  tordir::AggregationParams aggregation;

  // Tor validity rule: majority of all authorities must sign.
  uint32_t SignatureThreshold() const { return authority_count / 2 + 1; }

  // Resizes the protocol to `n` authorities with the largest fault tolerance
  // partial synchrony allows (f = floor((n-1)/3)).
  void SetAuthorityCount(uint32_t n) {
    authority_count = n;
    fault_tolerance = (n - 1) / 3;
    hotstuff.node_count = n;
    hotstuff.fault_tolerance = fault_tolerance;
  }

  IcpsConfig() {
    hotstuff.node_count = authority_count;
    hotstuff.fault_tolerance = fault_tolerance;
  }
};

// Per-authority result probes, extending the lock-step outcome with the
// ICPS-specific milestones.
struct IcpsOutcome {
  bool decided = false;           // agreement sub-protocol output
  bool valid_consensus = false;   // majority signatures collected
  uint32_t documents_held = 0;    // documents at decide time
  uint32_t vector_non_empty = 0;  // |H_o| non-⟂ entries
  tordir::ConsensusDocument consensus;

  torbase::TimePoint documents_complete_at = torbase::kTimeNever;  // all n docs
  torbase::TimePoint proposal_sent_at = torbase::kTimeNever;
  torbase::TimePoint decided_at = torbase::kTimeNever;
  torbase::TimePoint finished_at = torbase::kTimeNever;  // valid consensus
};

class IcpsAuthority : public torsim::Actor {
 public:
  // Shared immutable inputs: the authority's own vote document, its
  // serialized form (null = serialize here) and the workload's pre-parsed
  // vote cache (null = parse agreed documents from scratch).
  // `second_vote_text` enables equivocation (see AuthorityMaterials): when
  // set, odd peers receive those bytes (with their own digest and sender
  // signature) in the dissemination broadcast. Null for honest authorities.
  IcpsAuthority(const IcpsConfig& config, const torcrypto::KeyDirectory* directory,
                std::shared_ptr<const tordir::VoteDocument> own_vote,
                std::shared_ptr<const std::string> own_vote_text = nullptr,
                std::shared_ptr<const tordir::VoteCache> vote_cache = nullptr,
                std::shared_ptr<const std::string> second_vote_text = nullptr,
                std::shared_ptr<const torproto::AuthorityRoundState> round_state = nullptr);

  // Convenience for tests and drivers that own a plain document.
  IcpsAuthority(const IcpsConfig& config, const torcrypto::KeyDirectory* directory,
                tordir::VoteDocument own_vote, std::string own_vote_text = {});

  void Start() override;
  void OnMessage(torbase::NodeId from, const torbase::Bytes& payload) override;

  const IcpsOutcome& outcome() const { return outcome_; }
  bool finished() const { return outcome_.valid_consensus; }
  const torbft::HotStuffNode* agreement() const {
    return agreement_.has_value() ? &*agreement_ : nullptr;
  }

  // Digest of the unsigned consensus body, once computed this run.
  const std::optional<torcrypto::Digest256>& consensus_digest() const {
    return consensus_digest_;
  }

  // The round-boundary state this authority was restored with (null for a
  // cold start). Read by the protocol's SnapshotAuthority.
  const std::shared_ptr<const torproto::AuthorityRoundState>& round_state() const {
    return round_state_;
  }

  // Authorities whose vote documents this one holds (its own included) — what
  // the consensus-health monitor observes of the dissemination phase.
  std::vector<torbase::NodeId> vote_senders() const {
    std::vector<torbase::NodeId> senders;
    senders.reserve(documents_.size());
    for (const auto& [sender, doc] : documents_) {
      senders.push_back(sender);
    }
    return senders;
  }

  // Admission evidence for the consensus-health monitor: peers' documents
  // this authority admitted (own excluded) and texts it refused.
  const std::vector<torproto::ObservedVote>& observed_votes() const { return observed_votes_; }
  const std::vector<torproto::RejectedVote>& rejected_votes() const { return rejected_votes_; }

 private:
  enum MessageType : uint8_t {
    // 1..8 reserved for the HotStuff engine.
    kDocument = 0x10,
    kProposal = 0x11,
    kDocRequest = 0x12,
    kDocResponse = 0x13,
    kConsensusSig = 0x14,
  };

  // --- dissemination -------------------------------------------------------
  void BroadcastDocument();
  void HandleDocument(torbase::NodeId from, torbase::Reader& r);
  void OnDisseminationTimeout();
  // Sends (or refreshes) our PROPOSAL once the wait rule is satisfied.
  void MaybeSendProposal();
  Proposal BuildOwnProposal() const;
  void HandleProposal(torbase::NodeId from, torbase::Reader& r);

  // --- agreement glue ------------------------------------------------------
  std::optional<torbase::Bytes> LeaderValue();
  bool ValidateValue(const torbase::Bytes& value);
  void OnDecide(const torbase::Bytes& value);

  // --- aggregation ---------------------------------------------------------
  void RequestMissingDocuments();
  void HandleDocRequest(torbase::NodeId from, torbase::Reader& r);
  void HandleDocResponse(torbase::NodeId from, torbase::Reader& r);
  void MaybeFinishAggregation();
  void HandleConsensusSig(torbase::NodeId from, torbase::Reader& r);
  void AcceptConsensusSig(const torcrypto::Signature& sig);

  // Returns the canonical shared text for `text` when its digest matches a
  // workload-cache entry, otherwise wraps the received copy.
  std::shared_ptr<const std::string> ShareText(std::string text,
                                               const torcrypto::Digest256& digest);
  // Stores a received document (first version wins; a second, different
  // version is retained as equivocation evidence).
  void StoreDocument(torbase::NodeId sender, std::shared_ptr<const std::string> text,
                     const torcrypto::Digest256& digest, const torcrypto::Signature& sender_sig);

  IcpsConfig config_;
  const torcrypto::KeyDirectory* directory_;
  torcrypto::Signer signer_;
  std::shared_ptr<const tordir::VoteDocument> own_vote_;
  std::shared_ptr<const std::string> own_vote_text_;
  std::shared_ptr<const tordir::VoteCache> vote_cache_;
  std::shared_ptr<const std::string> second_vote_text_;
  std::shared_ptr<const torproto::AuthorityRoundState> round_state_;
  torcrypto::Digest256 own_digest_;

  // Admission evidence, in arrival order.
  std::vector<torproto::ObservedVote> observed_votes_;
  std::vector<torproto::RejectedVote> rejected_votes_;

  // Documents received: sender -> (digest, text). First valid one wins; a
  // second, different digest from the same sender is kept as equivocation
  // evidence. Texts are shared with the workload cache whenever the received
  // bytes match a canonical vote.
  struct ReceivedDoc {
    torcrypto::Digest256 digest;
    std::shared_ptr<const std::string> text;
    torcrypto::Signature sender_sig;
  };
  std::map<torbase::NodeId, ReceivedDoc> documents_;
  std::map<torbase::NodeId, ReceivedDoc> equivocations_;  // second digests

  bool dissemination_timed_out_ = false;
  bool proposal_sent_ = false;

  // Proposals received (leader role).
  std::map<torbase::NodeId, Proposal> proposals_;

  std::optional<torbft::HotStuffNode> agreement_;
  std::optional<CertifiedVector> agreed_vector_;

  // Aggregation state.
  std::set<torbase::NodeId> pending_fetches_;
  std::optional<torcrypto::Digest256> consensus_digest_;
  std::map<torbase::NodeId, torcrypto::Signature> consensus_sigs_;
  // Signatures received before our own aggregation finished.
  std::vector<torcrypto::Signature> pending_consensus_sigs_;

  IcpsOutcome outcome_;
};

}  // namespace toricc

#endif  // SRC_CORE_ICPS_AUTHORITY_H_
