// The certified digest vector (H, π) of the dissemination sub-protocol
// (paper §5.2.1, Figure 9).
//
// Each node i signs EntryPayload(j, h) statements: "I received node j's
// document with digest h" (or h = ⟂ for "I received nothing from j"). A
// PROPOSAL bundles node i's statements for all j. The view leader aggregates
// (n - f) proposals into a vector H with one externally verifiable proof per
// entry:
//   * OK(h):        the sender's own signature on (j, h) plus (f + 1) distinct
//                   proposer signatures on (j, h). At least one correct node
//                   holds the document, so it can be retrieved later.
//   * Equivocation: two signatures by sender j itself over different digests.
//                   Entry forced to ⟂.
//   * Timeout:      (f + 1) distinct proposer signatures on (j, ⟂). At least
//                   one correct node timed out on j, so when GST = 0 an
//                   adversarial leader cannot exclude a correct sender.
// A vector is *ready* once it has at least (n - f) non-⟂ entries; readiness is
// part of external validity in the agreement sub-protocol.
#ifndef SRC_CORE_DIGEST_VECTOR_H_
#define SRC_CORE_DIGEST_VECTOR_H_

#include <map>
#include <optional>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/ids.h"
#include "src/common/serialize.h"
#include "src/common/status.h"
#include "src/crypto/digest.h"
#include "src/crypto/signature.h"

namespace toricc {

using torbase::Bytes;
using torbase::NodeId;

// The byte string behind every dissemination signature: "node j's document has
// digest h" (h absent = ⟂).
Bytes EntryPayload(NodeId j, const std::optional<torcrypto::Digest256>& digest);

// One node's PROPOSAL row about sender j.
struct ProposalEntry {
  std::optional<torcrypto::Digest256> digest;       // nullopt = ⟂
  std::optional<torcrypto::Signature> sender_sig;   // sigma_j(j, h); present iff digest
  torcrypto::Signature proposer_sig;                // sigma_i(j, h or ⟂)
};

// A full PROPOSAL from `proposer`: one entry per sender, n total.
struct Proposal {
  NodeId proposer = torbase::kNoNode;
  std::vector<ProposalEntry> entries;

  void Encode(torbase::Writer& w) const;
  static torbase::Result<Proposal> Decode(torbase::Reader& r);

  // Checks internal consistency: every proposer signature verifies and is by
  // `proposer`, and sender signatures verify for non-empty entries.
  bool Verify(const torcrypto::KeyDirectory& directory, uint32_t node_count) const;
};

// One certified entry of the agreed vector.
struct VectorEntry {
  enum class Kind : uint8_t { kOk = 1, kEquivocation = 2, kTimeout = 3 };
  Kind kind = Kind::kTimeout;

  // kOk only:
  std::optional<torcrypto::Digest256> digest;
  std::optional<torcrypto::Signature> sender_sig;
  std::vector<torcrypto::Signature> witness_sigs;  // (f + 1) distinct proposers

  // kEquivocation only: two conflicting sender-signed digests.
  std::optional<torcrypto::Digest256> equivocation_a;
  std::optional<torcrypto::Digest256> equivocation_b;
  std::optional<torcrypto::Signature> equivocation_sig_a;
  std::optional<torcrypto::Signature> equivocation_sig_b;

  bool NonEmpty() const { return kind == Kind::kOk; }
};

// The agreement value: a digest vector with per-entry proofs.
struct CertifiedVector {
  std::vector<VectorEntry> entries;  // size n

  size_t NonEmptyCount() const;

  Bytes Encode() const;
  static torbase::Result<CertifiedVector> Decode(const Bytes& bytes);

  // External validity (agreement input check): proofs verify for every entry
  // and at least (n - f) entries are non-empty.
  bool Verify(const torcrypto::KeyDirectory& directory, uint32_t node_count,
              uint32_t fault_tolerance) const;
};

// Leader-side aggregation of proposals into a certified vector (§5.2.1 step 2).
// Returns nullopt while the proposals cannot justify a *ready* vector yet
// (fewer than n - f proposals, or not enough non-⟂ entries provable).
std::optional<CertifiedVector> BuildCertifiedVector(
    const std::map<NodeId, Proposal>& proposals, uint32_t node_count, uint32_t fault_tolerance);

}  // namespace toricc

#endif  // SRC_CORE_DIGEST_VECTOR_H_
