// Attack schedules: strategies for *when* and *whom* to flood. The fixed
// AttackWindow list the benches used historically becomes one strategy
// (WindowedAttack) among several:
//
//   * WindowedAttack  — a static list of windows, the paper's §4 attack.
//   * RollingAttack   — rotate the victim set every period (Danner et al.'s
//                       selective-DoS strategies: the adversary cannot afford
//                       to flood everyone, so it cycles).
//   * AdaptiveLeaderAttack — re-target the authority currently leading the
//                       agreement sub-protocol (leader chasing), falling back
//                       to a deterministic rotation for protocols without a
//                       leader notion.
//
// Schedules are installed once per run by the scenario runner, after the
// actors exist and before the simulation starts; dynamic schedules plant
// simulator events that clamp NICs mid-run through Network::LimitNode. Every
// schedule records the (time, victims) pairs it applied, so tests can assert
// deterministic victim sequences and figures can annotate attack phases.
#ifndef SRC_ATTACK_SCHEDULE_H_
#define SRC_ATTACK_SCHEDULE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "src/attack/ddos.h"
#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/sim/actor.h"

namespace torbase {
class Writer;
}

namespace torattack {

// What the runner tells a schedule about the run it is being installed into.
struct AttackContext {
  uint32_t authority_count = 0;
  // Simulation horizon; open-ended schedules stop planting events here.
  torbase::TimePoint horizon = 0;
  // Probe for the current agreement leader (highest in-flight view across
  // authorities), or nullopt when the protocol has no leader / has decided.
  // Unset for protocols without an agreement sub-protocol.
  std::function<std::optional<torbase::NodeId>()> current_leader;
};

// One applied clamp: at `at`, `victims` were limited to `available_bps`.
struct AttackSample {
  torbase::TimePoint at = 0;
  std::vector<torbase::NodeId> victims;
  double available_bps = 0.0;

  bool operator==(const AttackSample&) const = default;
};

class AttackSchedule {
 public:
  virtual ~AttackSchedule() = default;

  virtual std::string_view name() const = 0;

  // Installs the schedule into `harness`. Called once per run with the context
  // alive until the run's events have drained. Implementations must clamp
  // only instants at or after harness.sim().now().
  virtual void Install(torsim::Harness& harness, const AttackContext& context) = 0;

  // A fresh copy of this schedule's configuration with empty history. The
  // parallel sweep clones the spec's schedule per cell so concurrent cells
  // never share the mutable install/history state.
  virtual std::shared_ptr<AttackSchedule> Clone() const = 0;

  // Writes a canonical, field-complete description of this schedule's
  // *configuration* — the bytes torscenario::SpecDigest hashes to decide
  // whether two scenario specs would simulate identically. Contract: every
  // config field that can influence Install()'s behavior must be written
  // (tagged, in a fixed order, starting with name()); mutable per-run state
  // (history) must not be. Two schedules with equal descriptions must run
  // identically; a Clone() must describe identically to its original.
  virtual void Describe(torbase::Writer& writer) const = 0;

  // Victim history of the most recent run (cleared by the runner on install).
  const std::vector<AttackSample>& history() const { return history_; }
  void ClearHistory() { history_.clear(); }

 protected:
  void Record(torbase::TimePoint at, std::vector<torbase::NodeId> victims, double bps) {
    history_.push_back(AttackSample{at, std::move(victims), bps});
  }

 private:
  std::vector<AttackSample> history_;
};

// --- static windows ----------------------------------------------------------
class WindowedAttack : public AttackSchedule {
 public:
  explicit WindowedAttack(std::vector<AttackWindow> windows) : windows_(std::move(windows)) {}

  std::string_view name() const override { return "windowed"; }
  void Install(torsim::Harness& harness, const AttackContext& context) override;
  std::shared_ptr<AttackSchedule> Clone() const override {
    return std::make_shared<WindowedAttack>(windows_);
  }
  void Describe(torbase::Writer& writer) const override;

  std::vector<AttackWindow>& windows() { return windows_; }

 private:
  std::vector<AttackWindow> windows_;
};

// --- rolling victims ---------------------------------------------------------
struct RollingAttackConfig {
  // Victims clamped simultaneously in each epoch.
  uint32_t victim_count = 5;
  torbase::TimePoint start = 0;
  // Open-ended by default; clamped to the run horizon at install time.
  torbase::TimePoint end = torbase::kTimeNever;
  // Epoch length: how long each victim set is flooded before rotating.
  torbase::Duration period = torbase::Minutes(1);
  double available_bps = kUnderAttackBps;
  // Victims advance by `stride` authorities per epoch (mod n).
  uint32_t stride = 1;
  // seed != 0 selects a deterministic pseudo-random epoch offset instead of
  // the linear rotation — same API, scrambled victim order.
  uint64_t seed = 0;
};

class RollingAttack : public AttackSchedule {
 public:
  explicit RollingAttack(const RollingAttackConfig& config) : config_(config) {}

  std::string_view name() const override { return "rolling"; }
  void Install(torsim::Harness& harness, const AttackContext& context) override;
  std::shared_ptr<AttackSchedule> Clone() const override {
    return std::make_shared<RollingAttack>(config_);
  }
  void Describe(torbase::Writer& writer) const override;

  // The victim set of epoch `epoch` among `authority_count` authorities —
  // exposed so tests can assert the exact deterministic sequence.
  std::vector<torbase::NodeId> VictimsOf(uint64_t epoch, uint32_t authority_count) const;

 private:
  RollingAttackConfig config_;
};

// --- adaptive leader chasing -------------------------------------------------
struct AdaptiveLeaderConfig {
  // The leader plus the next (victim_count - 1) round-robin leaders are
  // clamped: flooding the pipeline of upcoming views, not just the head.
  uint32_t victim_count = 1;
  torbase::TimePoint start = 0;
  torbase::TimePoint end = torbase::kTimeNever;
  // Re-targeting cadence: how often the attacker re-reads the leader.
  torbase::Duration period = torbase::Seconds(30);
  double available_bps = kUnderAttackBps;
};

class AdaptiveLeaderAttack : public AttackSchedule {
 public:
  explicit AdaptiveLeaderAttack(const AdaptiveLeaderConfig& config) : config_(config) {}

  std::string_view name() const override { return "adaptive-leader"; }
  void Install(torsim::Harness& harness, const AttackContext& context) override;
  std::shared_ptr<AttackSchedule> Clone() const override {
    return std::make_shared<AdaptiveLeaderAttack>(config_);
  }
  void Describe(torbase::Writer& writer) const override;

 private:
  void Retarget(torsim::Harness& harness, const AttackContext& context, uint64_t epoch,
                torbase::TimePoint end);

  AdaptiveLeaderConfig config_;
};

}  // namespace torattack

#endif  // SRC_ATTACK_SCHEDULE_H_
