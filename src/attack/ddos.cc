#include "src/attack/ddos.h"

namespace torattack {

void ApplyAttack(torsim::Network& net, const AttackWindow& window) {
  for (torbase::NodeId target : window.targets) {
    net.egress(target).LimitDuring(window.start, window.end, window.available_bps);
    net.ingress(target).LimitDuring(window.start, window.end, window.available_bps);
  }
}

std::vector<torbase::NodeId> FirstTargets(uint32_t count) {
  std::vector<torbase::NodeId> targets;
  targets.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    targets.push_back(i);
  }
  return targets;
}

}  // namespace torattack
