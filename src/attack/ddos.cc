#include "src/attack/ddos.h"

namespace torattack {

void ApplyAttack(torsim::Network& net, const AttackWindow& window) {
  for (torbase::NodeId target : window.targets) {
    net.LimitNode(target, window.start, window.end, window.BpsFor(target));
  }
}

std::vector<torbase::NodeId> FirstTargets(uint32_t count) {
  std::vector<torbase::NodeId> targets;
  targets.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    targets.push_back(i);
  }
  return targets;
}

}  // namespace torattack
