// DDoS attack model and cost estimation (paper §4).
//
// Following the paper's methodology (and Jansen et al.'s "Point Break" model),
// an attack is expressed as a bandwidth clamp: during the attack window the
// victim's NIC has only `available_bps` left for protocol traffic (0.5 Mbit/s
// under a full stressor-service flood, 0 when modelled as knocked offline).
#ifndef SRC_ATTACK_DDOS_H_
#define SRC_ATTACK_DDOS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/sim/network.h"

namespace torattack {

// Residual bandwidth of a node under a full DDoS flood (paper §4.3, citing
// [22]): 0.5 Mbit/s.
constexpr double kUnderAttackBps = 0.5e6;

// Link capacity of a live directory authority (paper §4.3, citing [11]):
// 250 Mbit/s.
constexpr double kAuthorityLinkBps = 250e6;

struct AttackWindow {
  std::vector<torbase::NodeId> targets;
  torbase::TimePoint start = 0;
  torbase::TimePoint end = 0;
  // Bandwidth left to the victim during the window (both directions).
  double available_bps = kUnderAttackBps;
  // Per-target overrides of `available_bps`: an asymmetric flood leaves
  // different victims different residual rates (e.g. TorMult-style
  // heterogeneous authority links).
  std::map<torbase::NodeId, double> available_bps_by_target;

  double BpsFor(torbase::NodeId target) const {
    const auto it = available_bps_by_target.find(target);
    return it == available_bps_by_target.end() ? available_bps : it->second;
  }
};

// Clamps every target's ingress and egress schedule during the window and
// re-evaluates in-flight transfers. Callable both before the run starts and
// mid-run (dynamic schedules), as long as window.start is not in the simulated
// past. Overlapping windows on one target compose last-writer-wins over the
// overlap (BandwidthSchedule::LimitDuring semantics).
void ApplyAttack(torsim::Network& net, const AttackWindow& window);

// Returns the canonical "attack the first `count` authorities" target list.
std::vector<torbase::NodeId> FirstTargets(uint32_t count);

// --- cost model (paper §4.3) ------------------------------------------------
struct StressorCostModel {
  // Amortized stressor-service cost to flood one target with 1 Mbit/s of
  // attack traffic for one hour (Jansen et al. [22]).
  double usd_per_mbps_hour = 0.00074;
  // Traffic needed to saturate one authority: link capacity minus what the
  // directory protocol needs (250 - 10 Mbit/s in the paper).
  double flood_mbps = 240.0;
  uint32_t targets = 5;
  // The first two protocol rounds carry the votes: attack for 5 minutes.
  double attack_minutes_per_run = 5.0;
  // One consensus run per hour.
  double runs_per_day = 24.0;

  // Cost of breaking a single consensus run (the paper reports ~$0.074).
  double CostPerRunUsd() const {
    return usd_per_mbps_hour * flood_mbps * targets * (attack_minutes_per_run / 60.0);
  }
  // Cost of breaking every run for 30 days (the paper reports $53.28/month).
  double CostPerMonthUsd() const { return CostPerRunUsd() * runs_per_day * 30.0; }
};

}  // namespace torattack

#endif  // SRC_ATTACK_DDOS_H_
