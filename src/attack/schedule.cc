#include "src/attack/schedule.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "src/common/serialize.h"

namespace torattack {
namespace {

// splitmix64: deterministic, platform-independent epoch scrambling for seeded
// rolling attacks.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

torbase::TimePoint EffectiveEnd(torbase::TimePoint configured_end,
                                const AttackContext& context) {
  if (context.horizon > 0) {
    return std::min(configured_end, context.horizon);
  }
  return configured_end;
}

}  // namespace

void WindowedAttack::Install(torsim::Harness& harness, const AttackContext& /*context*/) {
  for (const AttackWindow& window : windows_) {
    ApplyAttack(harness.net(), window);
    // One history sample per distinct residual rate, so per-target overrides
    // are reported as applied, not as the window's uniform rate.
    std::map<double, std::vector<torbase::NodeId>> by_rate;
    for (torbase::NodeId target : window.targets) {
      by_rate[window.BpsFor(target)].push_back(target);
    }
    for (auto& [rate, targets] : by_rate) {
      Record(window.start, std::move(targets), rate);
    }
  }
}

std::vector<torbase::NodeId> RollingAttack::VictimsOf(uint64_t epoch,
                                                      uint32_t authority_count) const {
  const uint32_t n = authority_count;
  const uint32_t count = std::min(config_.victim_count, n);
  const uint64_t offset = config_.seed != 0
                              ? Mix(config_.seed ^ epoch) % n
                              : (epoch * config_.stride) % n;
  std::vector<torbase::NodeId> victims;
  victims.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    victims.push_back(static_cast<torbase::NodeId>((offset + i) % n));
  }
  return victims;
}

void RollingAttack::Install(torsim::Harness& harness, const AttackContext& context) {
  // The rotation is purely time-driven, so the whole schedule is known up
  // front: install every epoch's window immediately.
  const torbase::TimePoint end = EffectiveEnd(config_.end, context);
  if (end == torbase::kTimeNever) {
    // Open-ended rotation with no horizon to clamp to: there is no finite set
    // of windows to install. Refuse rather than loop for ~2^63 epochs.
    assert(false && "RollingAttack needs a finite end or a run horizon");
    return;
  }
  uint64_t epoch = 0;
  for (torbase::TimePoint t = config_.start; t < end; t += config_.period, ++epoch) {
    AttackWindow window;
    window.targets = VictimsOf(epoch, context.authority_count);
    window.start = t;
    window.end = std::min<torbase::TimePoint>(t + config_.period, end);
    window.available_bps = config_.available_bps;
    ApplyAttack(harness.net(), window);
    Record(t, std::move(window.targets), config_.available_bps);
  }
}

void AdaptiveLeaderAttack::Retarget(torsim::Harness& harness, const AttackContext& context,
                                    uint64_t epoch, torbase::TimePoint end) {
  const torbase::TimePoint now = harness.sim().now();
  const uint32_t n = context.authority_count;

  // Chase the live agreement leader; protocols without one (or before the
  // agreement starts) get a deterministic round-robin sweep instead.
  std::optional<torbase::NodeId> leader;
  if (context.current_leader) {
    leader = context.current_leader();
  }
  const torbase::NodeId head = leader.value_or(static_cast<torbase::NodeId>(epoch % n));

  AttackWindow window;
  const uint32_t count = std::min(config_.victim_count, n);
  for (uint32_t i = 0; i < count; ++i) {
    window.targets.push_back(static_cast<torbase::NodeId>((head + i) % n));
  }
  window.start = now;
  window.end = std::min<torbase::TimePoint>(now + config_.period, end);
  window.available_bps = config_.available_bps;
  if (window.start < window.end) {
    ApplyAttack(harness.net(), window);
    Record(now, std::move(window.targets), config_.available_bps);
  }

  const torbase::TimePoint next = now + config_.period;
  if (next < end) {
    harness.sim().ScheduleAt(next, [this, &harness, context, epoch, end] {
      Retarget(harness, context, epoch + 1, end);
    });
  }
}

void AdaptiveLeaderAttack::Install(torsim::Harness& harness, const AttackContext& context) {
  const torbase::TimePoint end = EffectiveEnd(config_.end, context);
  if (config_.start >= end) {
    return;
  }
  harness.sim().ScheduleAt(config_.start, [this, &harness, context, end] {
    Retarget(harness, context, 0, end);
  });
}

// --- canonical descriptions --------------------------------------------------
// Every config field that can influence Install() is written, in declaration
// order, behind the schedule's name; history never is. Keep each description
// in lock-step with its config struct — torscenario's
// SpecFieldListIsCoveredByDigest mutation sweep pins the coverage.

void WindowedAttack::Describe(torbase::Writer& writer) const {
  writer.WriteString(name());
  writer.WriteU32(static_cast<uint32_t>(windows_.size()));
  for (const AttackWindow& window : windows_) {
    writer.WriteU32(static_cast<uint32_t>(window.targets.size()));
    for (const torbase::NodeId target : window.targets) {
      writer.WriteU32(target);
    }
    writer.WriteU64(window.start);
    writer.WriteU64(window.end);
    writer.WriteF64(window.available_bps);
    writer.WriteU32(static_cast<uint32_t>(window.available_bps_by_target.size()));
    for (const auto& [target, bps] : window.available_bps_by_target) {
      writer.WriteU32(target);
      writer.WriteF64(bps);
    }
  }
}

void RollingAttack::Describe(torbase::Writer& writer) const {
  writer.WriteString(name());
  writer.WriteU32(config_.victim_count);
  writer.WriteU64(config_.start);
  writer.WriteU64(config_.end);
  writer.WriteU64(config_.period);
  writer.WriteF64(config_.available_bps);
  writer.WriteU32(config_.stride);
  writer.WriteU64(config_.seed);
}

void AdaptiveLeaderAttack::Describe(torbase::Writer& writer) const {
  writer.WriteString(name());
  writer.WriteU32(config_.victim_count);
  writer.WriteU64(config_.start);
  writer.WriteU64(config_.end);
  writer.WriteU64(config_.period);
  writer.WriteF64(config_.available_bps);
}

}  // namespace torattack
