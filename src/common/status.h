// Minimal Status / Result<T> error-handling vocabulary. The library does not use
// exceptions for control flow; fallible operations return StatusOr-style values.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace torbase {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kAlreadyExists,
  kUnavailable,
  kInternal,
};

// Returns a short name like "INVALID_ARGUMENT" for diagnostics.
constexpr const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status OutOfRange(std::string m) { return Status(StatusCode::kOutOfRange, std::move(m)); }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}             // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {      // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace torbase

#endif  // SRC_COMMON_STATUS_H_
