// Small statistics helpers used by the aggregation algorithm (median bandwidth)
// and by the bench harness (latency summaries, linear fits for complexity checks).
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace torbase {

// Median with the "low median" convention Tor uses for even-sized inputs
// (dir-spec: the middle element after sorting, lower one on ties). Input is
// copied; returns 0 for an empty vector.
uint64_t MedianLow(std::vector<uint64_t> values);

// Same convention, partially reordering `values` in place instead of copying
// — the allocation-free form the consensus aggregation hot path uses on its
// reusable scratch. Returns 0 for an empty span.
uint64_t MedianLowInPlace(std::span<uint64_t> values);

// Arithmetic mean; 0.0 for an empty vector.
double Mean(const std::vector<double>& values);

// Population standard deviation; 0.0 for fewer than two values.
double StdDev(const std::vector<double>& values);

// Percentile in [0,100] by nearest-rank; 0.0 for an empty vector.
double Percentile(std::vector<double> values, double pct);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

// Ordinary least squares of y on x. Requires xs.size() == ys.size().
LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

// Fits y = c * x^k in log-log space and returns k (the empirical growth
// exponent). Used by the Table-1 bench to confirm communication complexity
// orders. Ignores non-positive points.
double GrowthExponent(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace torbase

#endif  // SRC_COMMON_STATS_H_
