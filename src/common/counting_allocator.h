// Binary-wide allocation counting: including this header in exactly ONE
// translation unit of a binary replaces the global operator new/delete with
// counting versions. Used by the binaries that pin the simulator's
// zero-allocation event path (tests/event_alloc_test.cc, bench/perf_report.cc)
// so they share one definition of what counts as an allocation.
//
// Replaceable-function rules: these are definitions, so never include this
// from more than one TU of the same binary, and never from library code.
#ifndef SRC_COMMON_COUNTING_ALLOCATOR_H_
#define SRC_COMMON_COUNTING_ALLOCATOR_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace torbase {
namespace counting_allocator {

inline std::atomic<uint64_t> g_allocations{0};

inline uint64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace counting_allocator
}  // namespace torbase

void* operator new(std::size_t size) {
  torbase::counting_allocator::g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

// Over-aligned forms count too: InlineFunction routes over-aligned captures to
// the heap via aligned new, which must not be invisible to the guard.
void* operator new(std::size_t size, std::align_val_t align) {
  torbase::counting_allocator::g_allocations.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t alignment = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#endif  // SRC_COMMON_COUNTING_ALLOCATOR_H_
