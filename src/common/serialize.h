// Binary serialization used for protocol wire messages. Fixed-width little-endian
// integers plus length-prefixed byte strings; a Writer builds a buffer and a
// Reader consumes one with explicit bounds checking (no exceptions, no UB on
// truncated input).
#ifndef SRC_COMMON_SERIALIZE_H_
#define SRC_COMMON_SERIALIZE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace torbase {

class Writer {
 public:
  Writer() = default;

  void WriteU8(uint8_t v);
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteBool(bool v);
  // Length-prefixed (u32) byte string.
  void WriteBytes(std::span<const uint8_t> data);
  // Length-prefixed (u32) character string.
  void WriteString(std::string_view s);
  // Raw bytes with no length prefix (caller knows the framing).
  void WriteRaw(std::span<const uint8_t> data);

  // Pre-sizes the buffer for `additional` more bytes. Callers framing a
  // multi-megabyte payload (vote posts, document fetch responses) reserve
  // once instead of paying repeated geometric regrowth copies.
  void Reserve(size_t additional) { buffer_.reserve(buffer_.size() + additional); }

  const Bytes& buffer() const { return buffer_; }
  Bytes TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}
  // A Reader only views the buffer; constructing one over a temporary would
  // leave the span dangling.
  explicit Reader(Bytes&&) = delete;

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<bool> ReadBool();
  Result<Bytes> ReadBytes();
  Result<std::string> ReadString();
  // Reads exactly n raw bytes.
  Result<Bytes> ReadRaw(size_t n);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n);

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace torbase

#endif  // SRC_COMMON_SERIALIZE_H_
