// Binary serialization used for protocol wire messages. Fixed-width little-endian
// integers plus length-prefixed byte strings; a Writer builds a buffer and a
// Reader consumes one with explicit bounds checking (no exceptions, no UB on
// truncated input).
#ifndef SRC_COMMON_SERIALIZE_H_
#define SRC_COMMON_SERIALIZE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace torbase {

class Writer {
 public:
  Writer() = default;

  void WriteU8(uint8_t v);
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  // IEEE-754 bit pattern as a little-endian u64. Canonical descriptions
  // (spec_digest) need doubles to round-trip exactly; the wire protocols
  // themselves stay integer-only.
  void WriteF64(double v);
  void WriteBool(bool v);
  // Length-prefixed (u32) byte string.
  void WriteBytes(std::span<const uint8_t> data);
  // Length-prefixed (u32) character string.
  void WriteString(std::string_view s);
  // Raw bytes with no length prefix (caller knows the framing).
  void WriteRaw(std::span<const uint8_t> data);

  // Pre-sizes the buffer for `additional` more bytes. Callers framing a
  // multi-megabyte payload (vote posts, document fetch responses) reserve
  // once instead of paying repeated geometric regrowth copies.
  void Reserve(size_t additional) { buffer_.reserve(buffer_.size() + additional); }

  const Bytes& buffer() const { return buffer_; }
  Bytes TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

// --- text sinks --------------------------------------------------------------
// Streaming text output for the dir-spec codec: a fixed stack buffer in front
// of an arbitrary byte consumer. The serializer formats every field with
// inline appends into the buffer (no per-field std::string temporaries) and
// the backend sees large contiguous ~16 KB chunks — the codec's Sha256
// backend digests whole blocks without ever materializing the multi-megabyte
// document. String output uses StringCursorSink below instead (same
// interface, no bounce buffer).
//
// Backend contract: `void Write(const char* data, size_t n)`. The sink is
// move-free and lives on the caller's stack; call Flush() (or let the
// destructor do it) before reading the backend's result.
template <typename Backend>
class BufferedTextSink {
 public:
  // Upper bound a Scratch() caller may request; sized so a whole serialized
  // relay row (fixed text plus realistic variable-width strings) composes in
  // one block.
  static constexpr size_t kScratchMax = 1024;

  explicit BufferedTextSink(Backend& backend) : backend_(backend) {}
  ~BufferedTextSink() { Flush(); }

  BufferedTextSink(const BufferedTextSink&) = delete;
  BufferedTextSink& operator=(const BufferedTextSink&) = delete;

  void Append(std::string_view s) {
    if (s.empty()) {
      return;  // also sidesteps memcpy from a null data() pointer
    }
    if (s.size() > kCapacity - used_) {
      Flush();
      if (s.size() > kCapacity) {
        backend_.Write(s.data(), s.size());  // oversized: bypass the buffer
        return;
      }
    }
    __builtin_memcpy(buffer_ + used_, s.data(), s.size());
    used_ += s.size();
  }

  void Push(char c) {
    if (used_ == kCapacity) {
      Flush();
    }
    buffer_[used_++] = c;
  }

  // Returns a pointer with at least `n` (<= kScratchMax) writable chars;
  // Commit() the number actually written.
  char* Scratch(size_t n) {
    if (n > kCapacity - used_) {
      Flush();
    }
    return buffer_ + used_;
  }
  void Commit(size_t n) { used_ += n; }

  void Flush() {
    if (used_ > 0) {
      backend_.Write(buffer_, used_);
      used_ = 0;
    }
  }

 private:
  static constexpr size_t kCapacity = 16384;
  static_assert(kScratchMax <= kCapacity);

  Backend& backend_;
  size_t used_ = 0;
  char buffer_[kCapacity];
};

// Cursor sink writing straight into a pre-sized std::string — same interface
// as BufferedTextSink, no intermediate buffer and no flush copy. The string is
// resized to `size_hint` once (its fill cost is the price of skipping the
// bounce copy; callers pass a calibrated document-size estimate), grown
// geometrically on underestimates, and trimmed by Finish().
class StringCursorSink {
 public:
  static constexpr size_t kScratchMax = 1024;

  StringCursorSink(std::string& out, size_t size_hint) : out_(out) {
    Resize(size_hint > kScratchMax ? size_hint : kScratchMax);
    cursor_ = out_.data();
  }

  void Append(std::string_view s) {
    if (s.empty()) {
      return;
    }
    Ensure(s.size());
    __builtin_memcpy(cursor_, s.data(), s.size());
    cursor_ += s.size();
  }

  void Push(char c) {
    Ensure(1);
    *cursor_++ = c;
  }

  char* Scratch(size_t n) {
    Ensure(n);
    return cursor_;
  }
  void Commit(size_t n) { cursor_ += n; }

  void Flush() {}  // writes are already in place

  // Trims the string to the bytes actually written. Required before use;
  // the sink must not be written to afterwards.
  void Finish() {
    out_.resize(static_cast<size_t>(cursor_ - out_.data()));
  }

 private:
  // Sizes the string without zero-filling when the library allows it; every
  // byte up to Finish()'s cursor is overwritten by the serializer before the
  // caller can observe it.
  void Resize(size_t n) {
#ifdef __cpp_lib_string_resize_and_overwrite
    out_.resize_and_overwrite(n, [](char*, size_t count) { return count; });
#else
    out_.resize(n);
#endif
  }
  void Ensure(size_t n) {
    if (static_cast<size_t>(out_.data() + out_.size() - cursor_) < n) {
      Grow(n);
    }
  }
  void Grow(size_t n) {
    const size_t used = static_cast<size_t>(cursor_ - out_.data());
    size_t grown = out_.size() * 2;
    if (grown < used + n) {
      grown = used + n + kScratchMax;
    }
    Resize(grown);
    cursor_ = out_.data() + used;
  }

  std::string& out_;
  char* cursor_ = nullptr;
};

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}
  // A Reader only views the buffer; constructing one over a temporary would
  // leave the span dangling.
  explicit Reader(Bytes&&) = delete;

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<bool> ReadBool();
  Result<Bytes> ReadBytes();
  Result<std::string> ReadString();
  // Reads exactly n raw bytes.
  Result<Bytes> ReadRaw(size_t n);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n);

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace torbase

#endif  // SRC_COMMON_SERIALIZE_H_
