// Console table rendering for the bench harness: each bench prints rows shaped
// like the paper's tables/figure series.
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace torbase {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Convenience: formats doubles with `precision` decimals, "-" for NaN.
  static std::string Num(double v, int precision = 2);
  static std::string Int(long long v);

  // Renders with aligned columns, a header separator, and a trailing newline.
  std::string Render() const;
  void Print(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace torbase

#endif  // SRC_COMMON_TABLE_H_
