// Simulated-time primitives. The whole repository runs on a virtual clock: a
// TimePoint is a count of microseconds since the start of the simulation, and a
// Duration is a microsecond delta. Keeping these as strong integer types (rather
// than std::chrono on the system clock) makes every experiment deterministic.
#ifndef SRC_COMMON_TIME_H_
#define SRC_COMMON_TIME_H_

#include <cstdint>
#include <string>

namespace torbase {

// Microseconds since simulation start.
using TimePoint = uint64_t;
// Microsecond delta.
using Duration = uint64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;

// A TimePoint that is never reached; used as "no deadline".
constexpr TimePoint kTimeNever = ~0ull;

constexpr Duration Micros(uint64_t n) { return n; }
constexpr Duration Millis(uint64_t n) { return n * kMillisecond; }
constexpr Duration Seconds(uint64_t n) { return n * kSecond; }
constexpr Duration Minutes(uint64_t n) { return n * kMinute; }
constexpr Duration Hours(uint64_t n) { return n * kHour; }

constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / kSecond; }

// Formats a TimePoint as "HH:MM:SS.mmm" for log lines.
std::string FormatTime(TimePoint t);

}  // namespace torbase

#endif  // SRC_COMMON_TIME_H_
