#include "src/common/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace torbase {

unsigned ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = DefaultThreads();
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) {
    return;
  }
  if (thread_count() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }
  // One claiming task per worker; indices handed out in order via an atomic
  // cursor so a long cell doesn't strand the items queued behind it. A body
  // that throws poisons the cursor (skipping unclaimed indices) and its
  // exception is rethrown on the calling thread once in-flight bodies drain.
  struct State {
    std::atomic<size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<State>();
  const unsigned claimants = thread_count();
  for (unsigned w = 0; w < claimants; ++w) {
    Submit([state, n, &body] {
      for (;;) {
        const size_t i = state->next.fetch_add(1);
        if (i >= n) {
          return;
        }
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->error_mutex);
          if (!state->first_error) {
            state->first_error = std::current_exception();
          }
          state->next.store(n);  // stop claiming further indices
          return;
        }
      }
    });
  }
  Wait();
  if (state->first_error) {
    std::rethrow_exception(state->first_error);
  }
}

}  // namespace torbase
