// Byte-buffer helpers: hex encoding/decoding and byte-vector utilities shared by
// every module in the repository.
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace torbase {

using Bytes = std::vector<uint8_t>;

// Fast 64-bit content hash for short keys (interned relay strings, canonical
// flag lines): 8 bytes per multiply-xor round plus a finalizer. Not
// cryptographic and not stable across processes — use only for in-memory hash
// tables, never for wire formats or digests.
inline uint64_t HashBytes(std::string_view s) {
  constexpr uint64_t kMul = 0x9ddfea08eb382d69ull;
  uint64_t h = 0x9e3779b97f4a7c15ull ^ (static_cast<uint64_t>(s.size()) * kMul);
  size_t i = 0;
  while (i + 8 <= s.size()) {
    uint64_t chunk;
    std::memcpy(&chunk, s.data() + i, 8);
    h = (h ^ chunk) * kMul;
    h ^= h >> 29;
    i += 8;
  }
  if (i < s.size()) {
    uint64_t tail = 0;
    std::memcpy(&tail, s.data() + i, s.size() - i);
    h = (h ^ tail) * kMul;
  }
  h ^= h >> 32;
  h *= kMul;
  h ^= h >> 29;
  return h;
}

// Encodes `data` as lowercase hex ("deadbeef").
std::string HexEncode(std::span<const uint8_t> data);

// Encodes `data` as uppercase hex, the convention Tor uses for fingerprints.
std::string HexEncodeUpper(std::span<const uint8_t> data);

// Decodes a hex string (either case). Returns std::nullopt on odd length or
// non-hex characters.
std::optional<Bytes> HexDecode(std::string_view hex);

// Allocation-free forms for hot codec paths (the dir-spec text codec encodes
// and decodes ~100 hex chars per relay; going through a std::string/Bytes
// temporary per field is what these avoid). Inline so fixed-size call sites
// (20-byte fingerprints, 32-byte digests) unroll.
namespace hex_internal {

using HexPair = std::array<char, 2>;  // stored in output order, endian-neutral

constexpr std::array<HexPair, 256> MakePairTable(const char* alphabet) {
  std::array<HexPair, 256> table{};
  for (uint32_t byte = 0; byte < 256; ++byte) {
    table[byte] = {alphabet[byte >> 4], alphabet[byte & 0x0f]};
  }
  return table;
}

inline constexpr std::array<HexPair, 256> kPairsLower = MakePairTable("0123456789abcdef");
inline constexpr std::array<HexPair, 256> kPairsUpper = MakePairTable("0123456789ABCDEF");

// 256-entry nibble table: -1 for non-hex characters.
constexpr std::array<int8_t, 256> MakeNibbleTable() {
  std::array<int8_t, 256> table{};
  for (size_t i = 0; i < table.size(); ++i) {
    table[i] = -1;
  }
  for (char c = '0'; c <= '9'; ++c) {
    table[static_cast<uint8_t>(c)] = static_cast<int8_t>(c - '0');
  }
  for (char c = 'a'; c <= 'f'; ++c) {
    table[static_cast<uint8_t>(c)] = static_cast<int8_t>(c - 'a' + 10);
  }
  for (char c = 'A'; c <= 'F'; ++c) {
    table[static_cast<uint8_t>(c)] = static_cast<int8_t>(c - 'A' + 10);
  }
  return table;
}

inline constexpr std::array<int8_t, 256> kNibbles = MakeNibbleTable();

// SWAR block encode: 4 input bytes -> 8 hex chars in two shifts, two masks
// and one branch-free decimal/alpha adjust. `alpha_add` is 0x27 for
// lowercase, 0x07 for uppercase. Little-endian only (the caller falls back to
// the pair table otherwise).
inline void Encode4Swar(uint32_t x, char* out, uint64_t alpha_add) {
  // Spread byte k of x to byte 2k of t.
  uint64_t t = x;
  t = (t | (t << 16)) & 0x0000FFFF0000FFFFull;
  t = (t | (t << 8)) & 0x00FF00FF00FF00FFull;
  // High nibble of each input byte lands at even bytes, low nibble at odd —
  // exactly the memory order of the hex digits.
  const uint64_t nibbles =
      ((t >> 4) & 0x0F0F0F0F0F0F0F0Full) | ((t & 0x0F0F0F0F0F0F0F0Full) << 8);
  const uint64_t gt9 = ((nibbles + 0x0606060606060606ull) & 0x1010101010101010ull) >> 4;
  const uint64_t chars = nibbles + 0x3030303030303030ull + gt9 * alpha_add;
  std::memcpy(out, &chars, 8);
}

inline void EncodeWithCase(std::span<const uint8_t> data, char* out, bool upper) {
  size_t i = 0;
  if constexpr (std::endian::native == std::endian::little) {
    const uint64_t alpha_add = upper ? 0x07 : 0x27;
    for (; i + 4 <= data.size(); i += 4, out += 8) {
      uint32_t block;
      std::memcpy(&block, data.data() + i, 4);
      Encode4Swar(block, out, alpha_add);
    }
  }
  const auto& pairs = upper ? kPairsUpper : kPairsLower;
  for (; i < data.size(); ++i, out += 2) {
    std::memcpy(out, pairs[data[i]].data(), 2);
  }
}

}  // namespace hex_internal

// Encodes `data` into `out`, which must have room for 2 * data.size() chars.
inline void HexEncodeTo(std::span<const uint8_t> data, char* out) {
  hex_internal::EncodeWithCase(data, out, /*upper=*/false);
}

inline void HexEncodeUpperTo(std::span<const uint8_t> data, char* out) {
  hex_internal::EncodeWithCase(data, out, /*upper=*/true);
}

// Decodes `hex` (either case) into exactly `out.size()` bytes. Returns false —
// writing nothing definite — when hex.size() != 2 * out.size() or any
// character is not a hex digit; the accept set matches HexDecode plus the
// length check callers otherwise do on the returned vector.
inline bool HexDecodeTo(std::string_view hex, std::span<uint8_t> out) {
  if (hex.size() != out.size() * 2) {
    return false;
  }
  int acc = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    const int hi = hex_internal::kNibbles[static_cast<uint8_t>(hex[2 * i])];
    const int lo = hex_internal::kNibbles[static_cast<uint8_t>(hex[2 * i + 1])];
    acc |= hi | lo;
    out[i] = static_cast<uint8_t>((hi << 4) | lo);
  }
  return acc >= 0;
}

// Fixed-size form: the span overload's loop with a compile-time trip count.
template <size_t N>
inline bool HexDecodeTo(std::string_view hex, std::array<uint8_t, N>& out) {
  return HexDecodeTo(hex, std::span<uint8_t>(out));
}

// Cheap structural key for short, heavily repeated strings (version /
// protocol / exit-policy memoization): size plus the first and last 8 bytes,
// one multiply-mix. Weaker than HashBytes — callers must byte-compare on
// probe hits — but a fraction of the cost on 100+-char inputs.
inline uint64_t QuickKey(std::string_view s) {
  uint64_t head = 0;
  uint64_t tail = 0;
  if (s.size() >= 8) {
    std::memcpy(&head, s.data(), 8);
    std::memcpy(&tail, s.data() + s.size() - 8, 8);
  } else if (!s.empty()) {
    std::memcpy(&head, s.data(), s.size());
  }
  constexpr uint64_t kMul = 0x9ddfea08eb382d69ull;
  uint64_t h = (head + s.size()) * kMul;
  h ^= tail * 0x9e3779b97f4a7c15ull;
  h ^= h >> 32;
  h *= kMul;
  h ^= h >> 29;
  return h;
}

// Returns a Bytes copy of the raw characters of `s`.
Bytes BytesOfString(std::string_view s);

// Returns the raw characters of `b` as a std::string.
std::string StringOfBytes(std::span<const uint8_t> b);

// Constant-time equality; avoids leaking the mismatch position. Not strictly
// needed inside a simulator but cheap and matches how real implementations
// compare digests and MACs.
bool ConstantTimeEqual(std::span<const uint8_t> a, std::span<const uint8_t> b);

}  // namespace torbase

#endif  // SRC_COMMON_BYTES_H_
