// Byte-buffer helpers: hex encoding/decoding and byte-vector utilities shared by
// every module in the repository.
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace torbase {

using Bytes = std::vector<uint8_t>;

// Encodes `data` as lowercase hex ("deadbeef").
std::string HexEncode(std::span<const uint8_t> data);

// Encodes `data` as uppercase hex, the convention Tor uses for fingerprints.
std::string HexEncodeUpper(std::span<const uint8_t> data);

// Decodes a hex string (either case). Returns std::nullopt on odd length or
// non-hex characters.
std::optional<Bytes> HexDecode(std::string_view hex);

// Returns a Bytes copy of the raw characters of `s`.
Bytes BytesOfString(std::string_view s);

// Returns the raw characters of `b` as a std::string.
std::string StringOfBytes(std::span<const uint8_t> b);

// Constant-time equality; avoids leaking the mismatch position. Not strictly
// needed inside a simulator but cheap and matches how real implementations
// compare digests and MACs.
bool ConstantTimeEqual(std::span<const uint8_t> a, std::span<const uint8_t> b);

}  // namespace torbase

#endif  // SRC_COMMON_BYTES_H_
