// Structured logging in the style of the Tor daemon's notice/info/warn log. Log
// lines carry the *simulated* timestamp injected by the caller, so experiment
// output looks like Figure 1 of the paper and is reproducible byte-for-byte.
//
// A Logger writes to an optional stream sink and always records into an
// in-memory ring that tests and benches can inspect.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace torbase {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kNotice = 2,
  kWarn = 3,
  kErr = 4,
};

const char* LogLevelName(LogLevel level);

struct LogRecord {
  TimePoint time = 0;
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;

  // Renders "Jan 01 HH:MM:SS.mmm [notice] message" like the Tor daemon.
  std::string Format() const;
};

class Logger {
 public:
  explicit Logger(std::string component = "");

  // Messages below this level are dropped entirely.
  void set_min_level(LogLevel level) { min_level_ = level; }
  // Mirror records to this stream (e.g. &std::cout). May be nullptr.
  void set_sink(std::ostream* sink) { sink_ = sink; }
  // Caps the in-memory record buffer; 0 means unbounded.
  void set_capacity(size_t capacity) { capacity_ = capacity; }

  void Log(TimePoint now, LogLevel level, std::string message);
  void Debug(TimePoint now, std::string message) { Log(now, LogLevel::kDebug, std::move(message)); }
  void Info(TimePoint now, std::string message) { Log(now, LogLevel::kInfo, std::move(message)); }
  void Notice(TimePoint now, std::string message) {
    Log(now, LogLevel::kNotice, std::move(message));
  }
  void Warn(TimePoint now, std::string message) { Log(now, LogLevel::kWarn, std::move(message)); }
  void Err(TimePoint now, std::string message) { Log(now, LogLevel::kErr, std::move(message)); }

  const std::vector<LogRecord>& records() const { return records_; }
  void Clear() { records_.clear(); }

  // True if any retained record's message contains `needle`.
  bool Contains(const std::string& needle) const;

 private:
  std::string component_;
  LogLevel min_level_ = LogLevel::kDebug;
  std::ostream* sink_ = nullptr;
  size_t capacity_ = 0;
  std::vector<LogRecord> records_;
};

}  // namespace torbase

#endif  // SRC_COMMON_LOGGING_H_
