#include "src/common/table.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace torbase {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  if (std::isnan(v)) {
    return "-";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(long long v) { return std::to_string(v); }

std::string Table::Render() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : headers_[c];
      line += cell;
      line.append(widths[c] - cell.size(), ' ');
      if (c + 1 != headers_.size()) {
        line += "  ";
      }
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    line += "\n";
    return line;
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 != widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += "\n";
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

void Table::Print(std::ostream& os) const { os << Render(); }

}  // namespace torbase
