#include "src/common/logging.h"

#include <cstdio>
#include <ostream>

namespace torbase {

std::string FormatTime(TimePoint t) {
  const uint64_t total_ms = t / kMillisecond;
  const uint64_t ms = total_ms % 1000;
  const uint64_t total_s = total_ms / 1000;
  const uint64_t s = total_s % 60;
  const uint64_t m = (total_s / 60) % 60;
  const uint64_t h = total_s / 3600;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02llu:%02llu:%02llu.%03llu",
                static_cast<unsigned long long>(h), static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(s), static_cast<unsigned long long>(ms));
  return buf;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kNotice:
      return "notice";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kErr:
      return "err";
  }
  return "?";
}

std::string LogRecord::Format() const {
  // The Tor daemon prefixes a wall-clock date; the simulation epoch plays the
  // role of "Jan 01 00:00:00".
  std::string out = "Jan 01 ";
  out += FormatTime(time);
  out += " [";
  out += LogLevelName(level);
  out += "] ";
  if (!component.empty()) {
    out += component;
    out += ": ";
  }
  out += message;
  return out;
}

Logger::Logger(std::string component) : component_(std::move(component)) {}

void Logger::Log(TimePoint now, LogLevel level, std::string message) {
  if (level < min_level_) {
    return;
  }
  LogRecord record{now, level, component_, std::move(message)};
  if (sink_ != nullptr) {
    *sink_ << record.Format() << "\n";
  }
  if (capacity_ != 0 && records_.size() >= capacity_) {
    records_.erase(records_.begin());
  }
  records_.push_back(std::move(record));
}

bool Logger::Contains(const std::string& needle) const {
  for (const auto& record : records_) {
    if (record.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace torbase
