// A move-only callable wrapper with a small-buffer optimisation, built for the
// simulator's event hot path: a scheduled callback whose captures fit the
// inline buffer costs zero heap allocations to store, move and destroy.
// std::function cannot give that guarantee (its SBO is implementation-defined
// and tiny, and it requires copyable targets); InlineFunction makes the buffer
// size an explicit contract and accepts move-only captures.
//
// Targets larger than the buffer (or over-aligned ones) transparently fall
// back to a heap allocation, so correctness never depends on capture size —
// only performance does. `is_inline()` exposes which path a target took so
// tests and benches can pin the zero-allocation property.
#ifndef SRC_COMMON_INLINE_FUNCTION_H_
#define SRC_COMMON_INLINE_FUNCTION_H_

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace torbase {

template <typename Signature, size_t BufferSize = 64>
class InlineFunction;

template <typename R, typename... Args, size_t BufferSize>
class InlineFunction<R(Args...), BufferSize> {
 public:
  static constexpr size_t kBufferSize = BufferSize;
  static_assert(BufferSize >= sizeof(void*), "buffer must hold at least a pointer");

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  // Wraps any callable. Intentionally implicit, mirroring std::function, so
  // call sites keep passing lambdas directly.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Target = std::decay_t<F>;
    if constexpr (kFitsInline<Target>) {
      ::new (static_cast<void*>(buffer_)) Target(std::forward<F>(f));
      vtable_ = &kInlineVTable<Target>;
    } else {
      ::new (static_cast<void*>(buffer_)) Target*(new Target(std::forward<F>(f)));
      vtable_ = &kHeapVTable<Target>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(other.buffer_, buffer_);
      other.vtable_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) {
        vtable_->relocate(other.buffer_, buffer_);
        other.vtable_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  R operator()(Args... args) {
    assert(vtable_ != nullptr && "invoked an empty InlineFunction");
    return vtable_->invoke(buffer_, std::forward<Args>(args)...);
  }

  // True when the stored target lives in the inline buffer (no heap).
  bool is_inline() const { return vtable_ != nullptr && vtable_->inline_storage; }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    // Move-constructs the target from `from` into `to` and destroys the
    // source. For heap targets this just moves the owning pointer.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename Target>
  static constexpr bool kFitsInline = sizeof(Target) <= BufferSize &&
                                      alignof(Target) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<Target>;

  template <typename Target>
  static constexpr VTable kInlineVTable = {
      /*invoke=*/[](void* buf, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Target*>(buf)))(std::forward<Args>(args)...);
      },
      /*relocate=*/[](void* from, void* to) {
        Target* src = std::launder(reinterpret_cast<Target*>(from));
        ::new (to) Target(std::move(*src));
        src->~Target();
      },
      /*destroy=*/[](void* buf) { std::launder(reinterpret_cast<Target*>(buf))->~Target(); },
      /*inline_storage=*/true,
  };

  template <typename Target>
  static constexpr VTable kHeapVTable = {
      /*invoke=*/[](void* buf, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<Target**>(buf)))(std::forward<Args>(args)...);
      },
      /*relocate=*/[](void* from, void* to) {
        ::new (to) Target*(*std::launder(reinterpret_cast<Target**>(from)));
      },
      /*destroy=*/[](void* buf) { delete *std::launder(reinterpret_cast<Target**>(buf)); },
      /*inline_storage=*/false,
  };

  void Reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(buffer_);
      vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) unsigned char buffer_[BufferSize];
};

}  // namespace torbase

#endif  // SRC_COMMON_INLINE_FUNCTION_H_
