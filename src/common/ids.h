// Node identity vocabulary shared by the simulator, protocols and crypto layers.
#ifndef SRC_COMMON_IDS_H_
#define SRC_COMMON_IDS_H_

#include <cstdint>

namespace torbase {

// Index of a directory authority / protocol node: 0 .. n-1.
using NodeId = uint32_t;

constexpr NodeId kNoNode = ~0u;

}  // namespace torbase

#endif  // SRC_COMMON_IDS_H_
