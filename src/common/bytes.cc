#include "src/common/bytes.h"

#include <array>

namespace torbase {
namespace {

constexpr char kHexLower[] = "0123456789abcdef";
constexpr char kHexUpper[] = "0123456789ABCDEF";

std::string EncodeWithAlphabet(std::span<const uint8_t> data, const char* alphabet) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t byte : data) {
    out.push_back(alphabet[byte >> 4]);
    out.push_back(alphabet[byte & 0x0f]);
  }
  return out;
}

int HexValue(char c) { return hex_internal::kNibbles[static_cast<uint8_t>(c)]; }

}  // namespace

std::string HexEncode(std::span<const uint8_t> data) {
  return EncodeWithAlphabet(data, kHexLower);
}

std::string HexEncodeUpper(std::span<const uint8_t> data) {
  return EncodeWithAlphabet(data, kHexUpper);
}

std::optional<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return std::nullopt;
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return std::nullopt;
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes BytesOfString(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string StringOfBytes(std::span<const uint8_t> b) {
  return std::string(b.begin(), b.end());
}

bool ConstantTimeEqual(std::span<const uint8_t> a, std::span<const uint8_t> b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

}  // namespace torbase
