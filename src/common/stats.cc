#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace torbase {

uint64_t MedianLow(std::vector<uint64_t> values) { return MedianLowInPlace(values); }

uint64_t MedianLowInPlace(std::span<uint64_t> values) {
  if (values.empty()) {
    return 0;
  }
  const size_t mid = (values.size() - 1) / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<ptrdiff_t>(mid), values.end());
  return values[mid];
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) {
    acc += (v - mean) * (v - mean);
  }
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  pct = std::clamp(pct, 0.0, 100.0);
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  const size_t idx = static_cast<size_t>(std::llround(rank));
  return values[std::min(idx, values.size() - 1)];
}

LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys) {
  LinearFit fit;
  const size_t n = std::min(xs.size(), ys.size());
  if (n < 2) {
    return fit;
  }
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  double syy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) {
    return fit;
  }
  fit.slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / dn;
  const double ss_tot = syy - sy * sy / dn;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += e * e;
    }
    fit.r2 = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

double GrowthExponent(const std::vector<double>& xs, const std::vector<double>& ys) {
  std::vector<double> lx;
  std::vector<double> ly;
  const size_t n = std::min(xs.size(), ys.size());
  for (size_t i = 0; i < n; ++i) {
    if (xs[i] > 0.0 && ys[i] > 0.0) {
      lx.push_back(std::log(xs[i]));
      ly.push_back(std::log(ys[i]));
    }
  }
  return FitLine(lx, ly).slope;
}

}  // namespace torbase
