// A small fixed-size thread pool with one shared FIFO queue (no work
// stealing): workers block on a condition variable and pop tasks in submission
// order. Built for the scenario engine's sweep grids — hundreds of independent
//, seconds-long simulation cells — where a shared queue's contention is
// negligible and the simplicity keeps the parallel path easy to reason about.
//
// Determinism contract: the pool only schedules; tasks must not share mutable
// state (each sweep cell owns a private Simulator/Harness), so results are
// independent of interleaving.
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace torbase {

class ThreadPool {
 public:
  // `threads` == 0 picks the hardware concurrency. The workers start
  // immediately and live until destruction.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueues `task`. Tasks may submit further tasks, but must never call
  // Wait()/ParallelFor() on their own pool — a worker blocking on the pool it
  // runs in deadlocks once no other worker is free to drain the queue. Tasks
  // must not throw — an exception escaping a raw submitted task terminates
  // the process (use ParallelFor, which captures and rethrows, when the body
  // can fail).
  void Submit(std::function<void()> task);

  // Blocks until every submitted task (including ones submitted while
  // waiting) has finished. The in-flight count is pool-global: concurrent
  // waiters from different call sites wait on each other's tasks too, so give
  // independent subsystems their own pool instead of sharing one.
  void Wait();

  // Runs body(0..n-1), distributing indices over the pool, and returns when
  // all are done. Indices are claimed atomically in order, so early indices
  // start first; completion order is unspecified. With thread_count() == 1 the
  // behaviour is exactly a serial loop. If any body throws, the first
  // exception (by completion order) is rethrown here after all in-flight
  // bodies finish; remaining unclaimed indices are skipped.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  // std::thread::hardware_concurrency with a floor of 1.
  static unsigned DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace torbase

#endif  // SRC_COMMON_THREAD_POOL_H_
