// Deterministic random number generation (xoshiro256** seeded via splitmix64).
// All stochastic workload generation in the repository flows through this type so
// that any experiment is exactly reproducible from its seed.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace torbase {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Raw 64 random bits.
  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t UniformU64(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Normal(mean, stddev) via Box-Muller.
  double Normal(double mean, double stddev);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Random lowercase alphanumeric string of length `len`.
  std::string AlphaNumeric(size_t len);

  // `n` random bytes.
  std::vector<uint8_t> RandomBytes(size_t n);

  // Derives an independent child generator; useful to give each simulated node
  // its own stream without cross-coupling.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace torbase

#endif  // SRC_COMMON_RNG_H_
