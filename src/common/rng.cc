#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace torbase {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  if (lo == 0 && hi == ~0ull) {
    return NextU64();
  }
  return lo + UniformU64(hi - lo + 1);
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u;
  double v;
  double s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * mul;
  have_spare_normal_ = true;
  return mean + stddev * u * mul;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

std::string Rng::AlphaNumeric(size_t len) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[UniformU64(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

std::vector<uint8_t> Rng::RandomBytes(size_t n) {
  std::vector<uint8_t> out(n);
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t r = NextU64();
    for (int b = 0; b < 8; ++b) {
      out[i++] = static_cast<uint8_t>(r >> (8 * b));
    }
  }
  if (i < n) {
    uint64_t r = NextU64();
    while (i < n) {
      out[i++] = static_cast<uint8_t>(r);
      r >>= 8;
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace torbase
