#include "src/common/serialize.h"

namespace torbase {

void Writer::WriteU8(uint8_t v) { buffer_.push_back(v); }

void Writer::WriteU16(uint16_t v) {
  buffer_.push_back(static_cast<uint8_t>(v));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
}

void Writer::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Writer::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Writer::WriteF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void Writer::WriteBool(bool v) { WriteU8(v ? 1 : 0); }

void Writer::WriteBytes(std::span<const uint8_t> data) {
  WriteU32(static_cast<uint32_t>(data.size()));
  WriteRaw(data);
}

void Writer::WriteString(std::string_view s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void Writer::WriteRaw(std::span<const uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

Status Reader::Need(size_t n) {
  if (pos_ + n > data_.size()) {
    return Status::OutOfRange("truncated input: need " + std::to_string(n) + " bytes, have " +
                              std::to_string(data_.size() - pos_));
  }
  return Status::Ok();
}

Result<uint8_t> Reader::ReadU8() {
  if (Status s = Need(1); !s.ok()) {
    return s;
  }
  return data_[pos_++];
}

Result<uint16_t> Reader::ReadU16() {
  if (Status s = Need(2); !s.ok()) {
    return s;
  }
  uint16_t v = static_cast<uint16_t>(data_[pos_]) | static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> Reader::ReadU32() {
  if (Status s = Need(4); !s.ok()) {
    return s;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> Reader::ReadU64() {
  if (Status s = Need(8); !s.ok()) {
    return s;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<bool> Reader::ReadBool() {
  auto v = ReadU8();
  if (!v.ok()) {
    return v.status();
  }
  return *v != 0;
}

Result<Bytes> Reader::ReadBytes() {
  auto len = ReadU32();
  if (!len.ok()) {
    return len.status();
  }
  return ReadRaw(*len);
}

Result<std::string> Reader::ReadString() {
  auto raw = ReadBytes();
  if (!raw.ok()) {
    return raw.status();
  }
  return std::string(raw->begin(), raw->end());
}

Result<Bytes> Reader::ReadRaw(size_t n) {
  if (Status s = Need(n); !s.ok()) {
    return s;
  }
  Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
            data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace torbase
