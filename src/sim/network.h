// The simulated network fabric: per-node ingress/egress processor-sharing NICs
// plus a pairwise propagation-latency matrix.
//
// Delivery model for a message of S bytes from a to b:
//   1. The message drains through a's egress NIC, fair-sharing the (possibly
//      attack-clamped) rate with every other concurrent outbound transfer.
//   2. It propagates for latency(a, b).
//   3. It drains through b's ingress NIC, fair-sharing with concurrent inbound
//      transfers.
// This fluid model reproduces the bandwidth-starvation mechanism the paper uses
// to model DDoS (following Jansen et al.): when a victim's available bandwidth
// is clamped, all of its transfers slow down together and directory requests
// blow through their deadlines.
//
// Attack windows must be installed on the NIC schedules before simulated time
// reaches them; the benches configure attacks up front.
#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/ids.h"
#include "src/sim/bandwidth.h"
#include "src/sim/shared_nic.h"
#include "src/sim/simulator.h"

namespace torsim {

using torbase::Bytes;
using torbase::NodeId;

struct NetworkConfig {
  uint32_t node_count = 0;
  // Default symmetric NIC capacity for every node, bits/second.
  double default_bandwidth_bps = MegabitsPerSecond(250);
  // Default one-way propagation latency between distinct nodes.
  Duration default_latency = torbase::Millis(50);
  // Fixed framing overhead added to every message's wire size (models
  // TLS/TCP/HTTP framing of the directory connections).
  uint32_t per_message_overhead_bytes = 64;
};

// Byte/message counters, kept per node and per message kind.
struct TrafficCounters {
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_received = 0;
};

class Network {
 public:
  // Delivery callback: (sender, payload). Runs at the receiver's delivery time.
  using DeliverFn = std::function<void(NodeId, const Bytes&)>;

  Network(Simulator* sim, const NetworkConfig& config);

  uint32_t node_count() const { return static_cast<uint32_t>(nodes_.size()); }
  Simulator& sim() { return *sim_; }

  // NIC rate schedules, exposed so attack models can clamp them. Direct edits
  // are only safe before the simulation reaches the edited instants; dynamic
  // policies should go through LimitNode / SetNodeRateFrom instead.
  BandwidthSchedule& egress(NodeId node) { return nodes_[node]->egress.schedule(); }
  BandwidthSchedule& ingress(NodeId node) { return nodes_[node]->ingress.schedule(); }

  // Clamps both of `node`'s NIC directions to `bits_per_sec` during
  // [from, to), restoring the underlying rate afterwards, and re-evaluates
  // in-flight transfers. Safe to call mid-run as long as from >= sim().now();
  // this is the primitive behind every attack schedule.
  void LimitNode(NodeId node, TimePoint from, TimePoint to, double bits_per_sec);

  // Sets both of `node`'s NIC directions to `bits_per_sec` from `from`
  // onwards (crash/recover churn and heterogeneous capacities). Same timing
  // contract as LimitNode.
  void SetNodeRateFrom(NodeId node, TimePoint from, double bits_per_sec);

  void SetLatency(NodeId a, NodeId b, Duration latency);           // directed a->b
  void SetSymmetricLatency(NodeId a, NodeId b, Duration latency);  // both ways
  Duration latency(NodeId a, NodeId b) const;

  // Registers the handler that receives node `node`'s inbound messages.
  void SetHandler(NodeId node, DeliverFn handler);

  // Queues `payload` from `from` to `to`. `kind` labels the message class for
  // accounting (e.g. "VOTE", "DOCUMENT"). Self-sends deliver after a minimal
  // scheduling hop with no bandwidth cost.
  void Send(NodeId from, NodeId to, std::string kind, Bytes payload);

  // Sends `payload` to every node except `from`, sharing one underlying buffer
  // across all copies (bandwidth/accounting behave exactly like n-1 Send
  // calls; only the memory copies are elided — votes are multi-megabyte).
  void Broadcast(NodeId from, const std::string& kind, Bytes payload);

  // --- accounting ---------------------------------------------------------
  const TrafficCounters& counters(NodeId node) const { return nodes_[node]->counters; }
  // Bytes sent per message kind, across all nodes.
  const std::map<std::string, uint64_t>& bytes_by_kind() const { return bytes_by_kind_; }
  uint64_t total_bytes_sent() const;
  // Messages dropped because their NIC schedule could never carry them.
  uint64_t undeliverable_count() const;
  void ResetCounters();

 private:
  // Shared-buffer transfer path used by both Send and Broadcast.
  void SendShared(NodeId from, NodeId to, const std::string& kind,
                  std::shared_ptr<const Bytes> payload);

  struct NodeState {
    SharedNic egress;
    SharedNic ingress;
    DeliverFn handler;
    TrafficCounters counters;

    NodeState(Simulator* sim, double bandwidth_bps)
        : egress(sim, bandwidth_bps), ingress(sim, bandwidth_bps) {}
  };

  Simulator* sim_;
  NetworkConfig config_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  // latencies_[a * n + b]
  std::vector<Duration> latencies_;
  std::map<std::string, uint64_t> bytes_by_kind_;
};

}  // namespace torsim

#endif  // SRC_SIM_NETWORK_H_
