// Piecewise-constant bandwidth schedules. A NIC's available rate is a step
// function over virtual time; DDoS attacks are expressed by inserting low-rate
// (or zero-rate) segments. FinishTime() integrates the schedule to find when a
// transmission that starts at `start` completes — this is what turns "attack =
// reduced available bandwidth" (the paper's model, following Jansen et al.)
// into concrete message delays.
#ifndef SRC_SIM_BANDWIDTH_H_
#define SRC_SIM_BANDWIDTH_H_

#include <map>

#include "src/common/time.h"

namespace torsim {

using torbase::Duration;
using torbase::TimePoint;

// Convenience constructors for rates.
constexpr double BitsPerSecond(double v) { return v; }
constexpr double KilobitsPerSecond(double v) { return v * 1e3; }
constexpr double MegabitsPerSecond(double v) { return v * 1e6; }

class BandwidthSchedule {
 public:
  // `initial_bits_per_sec` may be infinity for an unconstrained link.
  explicit BandwidthSchedule(double initial_bits_per_sec);

  // Sets the available rate from `from` onwards (until the next change point).
  void SetRateFrom(TimePoint from, double bits_per_sec);

  // Clamps the rate to `bits_per_sec` during [from, to), restoring the
  // underlying rate afterwards. This is the DDoS-attack primitive.
  void LimitDuring(TimePoint from, TimePoint to, double bits_per_sec);

  double RateAt(TimePoint t) const;

  // The first rate-change point strictly after `t`, or torbase::kTimeNever if
  // the rate never changes again. The fair-share NIC uses this to re-evaluate
  // flow completions at schedule boundaries.
  TimePoint NextChangeAfter(TimePoint t) const;

  // Virtual time at which a transmission of `bits` starting at `start`
  // completes. Returns torbase::kTimeNever if the schedule never provides
  // enough capacity (e.g. rate 0 with no later change).
  TimePoint FinishTime(TimePoint start, double bits) const;

  // Total bits the schedule can carry during [from, to).
  double CapacityDuring(TimePoint from, TimePoint to) const;

  // Number of stored change points. Adjacent equal-rate segments are merged on
  // insertion, so rolling/adaptive attack schedules that clamp-and-restore the
  // same rate every epoch keep this bounded instead of growing per epoch.
  size_t segment_count() const { return rates_.size(); }

 private:
  // Inserts a change point at `t` with `rate`, erasing it (or its successor)
  // when the step function would not actually change there. Returns an
  // iterator to the segment active at `t`.
  std::map<TimePoint, double>::iterator SetPointMerged(TimePoint t, double rate);

  // Change points; rates_.begin() is always at time 0.
  std::map<TimePoint, double> rates_;
};

}  // namespace torsim

#endif  // SRC_SIM_BANDWIDTH_H_
