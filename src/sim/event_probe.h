// Shared scaffolding for benchmarking/pinning the simulator's per-event hot
// path (bench/micro.cc, bench/perf_report.cc, tests/event_alloc_test.cc): a
// capture sized to fill most of SimCallback's inline buffer, and the
// schedule-batch loops the three binaries time or count allocations around.
#ifndef SRC_SIM_EVENT_PROBE_H_
#define SRC_SIM_EVENT_PROBE_H_

#include <cstdint>

#include "src/sim/simulator.h"

namespace torsim {

// 48 bytes — modelled on the network delivery stages (a few words of routing
// state plus a pointer). Regressions that push callbacks of this size to the
// heap (or reintroduce per-event hash-map traffic) show up in every probe
// built on it.
struct EventProbeCapture {
  uint64_t a = 1, b = 2, c = 3, d = 4, e = 5;
  uint64_t* sink = nullptr;
};

// Schedules `batch` probe events (at staggered near-future instants) that
// each bump *sink when they fire.
inline void ScheduleProbeBatch(Simulator& sim, size_t batch, uint64_t* sink) {
  for (size_t i = 0; i < batch; ++i) {
    EventProbeCapture capture;
    capture.sink = sink;
    sim.ScheduleAfter(i % 7, [capture] { ++*capture.sink; });
  }
}

// Same, but every event is cancelled right after scheduling (the tombstone
// drain still costs a heap pop per event).
inline void ScheduleCancelProbeBatch(Simulator& sim, size_t batch, uint64_t* sink) {
  for (size_t i = 0; i < batch; ++i) {
    EventProbeCapture capture;
    capture.sink = sink;
    sim.Cancel(sim.ScheduleAfter(i % 7, [capture] { ++*capture.sink; }));
  }
}

// Grows the event heap and slot arena to `batch` capacity so subsequent probe
// batches run at steady state (no vector growth on the measured path).
inline void WarmUpProbe(Simulator& sim, size_t batch, uint64_t* sink) {
  for (size_t i = 0; i < batch; ++i) {
    EventProbeCapture capture;
    capture.sink = sink;
    sim.ScheduleAfter(i, [capture] { ++*capture.sink; });
  }
  sim.Run();
}

}  // namespace torsim

#endif  // SRC_SIM_EVENT_PROBE_H_
