// Processor-sharing NIC: all active transfers on an interface drain at an equal
// share of the interface's (time-varying) rate, the standard fluid model of
// concurrent TCP flows over one access link. This matters for fidelity to the
// paper's DDoS mechanism: when a victim authority must move eight vote copies
// at once through a clamped link, *every* copy slows to rate/8 and misses the
// directory-request deadline — no transfer "wins" the queue the way a FIFO
// model would allow.
#ifndef SRC_SIM_SHARED_NIC_H_
#define SRC_SIM_SHARED_NIC_H_

#include <cstdint>
#include <list>

#include "src/common/inline_function.h"
#include "src/sim/bandwidth.h"
#include "src/sim/simulator.h"

namespace torsim {

class SharedNic {
 public:
  // `sim` must outlive the NIC.
  SharedNic(Simulator* sim, double initial_bits_per_sec);

  // The rate schedule. Changes must either lie in the simulated future or be
  // followed by OnScheduleChanged() before the next event fires; editing the
  // schedule at instants the NIC has already integrated over is undefined.
  BandwidthSchedule& schedule() { return schedule_; }
  const BandwidthSchedule& schedule() const { return schedule_; }

  // Re-derives in-flight completion times after the schedule was edited at or
  // after the current instant. Dynamic attack policies (rolling victims,
  // leader chasing) clamp rates mid-run and must call this so transfers that
  // were already draining pick up the new rate.
  void OnScheduleChanged();

  // Completion callback. The 96-byte buffer keeps the network delivery
  // chain's largest stage (egress completion: latency hop + flattened ingress
  // state + shared payload pointer) inline.
  using CompleteFn = torbase::InlineFunction<void(), 96>;

  // Starts a transfer of `bits`; `on_complete` runs (via the event queue) when
  // the last bit has drained. Transfers that can never complete (zero rate
  // with no future schedule change) are dropped and counted.
  void StartTransfer(double bits, CompleteFn on_complete);

  size_t active_count() const { return flows_.size(); }
  uint64_t dropped_count() const { return dropped_; }

 private:
  struct Flow {
    double remaining_bits;
    CompleteFn on_complete;
  };

  // Drains all flows for the interval [last_update_, now] and fires
  // completions.
  void Advance();
  // Computes the next completion-or-boundary wakeup and schedules it.
  void Reschedule();
  // Per-flow capacity available over [from, to) with `k` concurrent flows.
  double SharePerFlow(TimePoint from, TimePoint to, size_t k) const;

  Simulator* sim_;
  BandwidthSchedule schedule_;
  std::list<Flow> flows_;
  TimePoint last_update_ = 0;
  EventId pending_event_ = kNoEvent;
  uint64_t dropped_ = 0;
};

}  // namespace torsim

#endif  // SRC_SIM_SHARED_NIC_H_
