// Deterministic discrete-event simulator core: a virtual clock and an event
// queue. Events scheduled for the same instant fire in schedule order, which
// makes every run reproducible.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/time.h"

namespace torsim {

using torbase::Duration;
using torbase::TimePoint;

using EventId = uint64_t;
constexpr EventId kNoEvent = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  // Schedules `fn` to run at absolute virtual time `t` (clamped to now()).
  EventId ScheduleAt(TimePoint t, std::function<void()> fn);
  // Schedules `fn` to run `delay` after now().
  EventId ScheduleAfter(Duration delay, std::function<void()> fn);

  // Cancels a pending event. Cancelling an already-fired or unknown event is a
  // no-op.
  void Cancel(EventId id);

  // Runs events until the queue empties or `limit` events fired. Returns the
  // number of events executed.
  size_t Run(size_t limit = ~size_t(0));

  // Runs all events with time <= deadline; afterwards now() == max(now, deadline)
  // if the queue drained up to it. Returns events executed.
  size_t RunUntil(TimePoint deadline);

  // Executes the single next event, if any. Returns whether one fired.
  bool RunOne();

  // Live (non-cancelled) events still queued. `cancelled_` normally only
  // tracks ids that are still in `queue_`, but that invariant is easy to break
  // from the outside (e.g. draining the queue while a cancellation is
  // recorded), so guard the unsigned subtraction instead of underflowing to
  // ~2^64.
  size_t pending_count() const {
    const size_t queued = queue_.size();
    const size_t cancelled = cancelled_.size();
    return queued > cancelled ? queued - cancelled : 0;
  }
  uint64_t executed_count() const { return executed_; }

 private:
  struct Event {
    TimePoint time;
    EventId id;
    // Min-heap by (time, id): later entries compare greater.
    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return id > other.id;
    }
  };

  TimePoint now_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace torsim

#endif  // SRC_SIM_SIMULATOR_H_
