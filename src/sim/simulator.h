// Deterministic discrete-event simulator core: a virtual clock and an event
// queue. Events scheduled for the same instant fire in schedule order, which
// makes every run reproducible.
//
// The queue is a single contiguous binary heap of (time, seq, slot) entries;
// callbacks live inline in a generation-tagged slot arena via a small-buffer
// callable (torbase::InlineFunction), so the steady-state schedule→fire path
// performs no heap allocation and Cancel() is O(1), destroying the captured
// state immediately rather than when the cancelled instant is reached.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/inline_function.h"
#include "src/common/time.h"

namespace torsim {

using torbase::Duration;
using torbase::TimePoint;

// An EventId encodes (slot index << 40) | (slot generation & (2^40 - 1));
// generations start at 1, so no live event ever has id 0. 24 bits of slot
// index bound concurrent events at ~16.7M; 40 bits of generation mean a stale
// id could only alias a live event after the *same* slot cycled 2^40 times
// (~1.1e12 events through one slot — days of nothing but event churn) while
// the holder kept the id, which no bounded-horizon run approaches.
using EventId = uint64_t;
constexpr EventId kNoEvent = 0;

// Event callback. The 64-byte inline buffer covers every capture the
// simulation layers schedule (network delivery chains carry a shared_ptr
// payload plus routing state); larger captures transparently heap-allocate.
using SimCallback = torbase::InlineFunction<void(), 64>;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  // Schedules `fn` to run at absolute virtual time `t` (clamped to now()).
  EventId ScheduleAt(TimePoint t, SimCallback fn);
  // Schedules `fn` to run `delay` after now().
  EventId ScheduleAfter(Duration delay, SimCallback fn);

  // Cancels a pending event in O(1), destroying the callback (and everything
  // it captured) immediately. Cancelling an already-fired or unknown event is
  // a no-op.
  void Cancel(EventId id);

  // Runs events until the queue empties or `limit` events fired. Returns the
  // number of events executed.
  size_t Run(size_t limit = ~size_t(0));

  // Runs all events with time <= deadline; afterwards now() == max(now, deadline)
  // if the queue drained up to it. Returns events executed.
  size_t RunUntil(TimePoint deadline);

  // Executes the single next event, if any. Returns whether one fired.
  bool RunOne();

  // Live (non-cancelled) events still queued. Exact by construction: Cancel
  // decrements it at cancel time, so no drain-time reconciliation (and no
  // underflow guard) is needed.
  size_t pending_count() const { return live_; }
  uint64_t executed_count() const { return executed_; }

 private:
  // Heap entry: 24 bytes, ordered by (time, seq) so same-instant events fire
  // in schedule order. The callback is *not* here — it stays in its slot, so
  // sift operations move only these small PODs.
  struct HeapEntry {
    TimePoint time;
    uint64_t seq;
    uint32_t slot;

    // Min-heap by (time, seq): later entries compare greater.
    bool operator>(const HeapEntry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  // One arena slot. A slot is acquired on schedule and released only when its
  // heap entry is popped (fired or skipped-as-cancelled), at which point its
  // generation bumps — so a stale EventId cannot cancel a reused slot (within
  // the 2^40 aliasing bound documented at EventId).
  struct Slot {
    SimCallback fn;
    uint64_t generation = 1;
    // True while the callback is live; cleared by Cancel (which also destroys
    // fn) and on fire.
    bool armed = false;
  };

  static constexpr int kGenerationBits = 40;
  static constexpr uint64_t kGenerationMask = (uint64_t(1) << kGenerationBits) - 1;

  static EventId MakeId(uint32_t slot, uint64_t generation) {
    return (static_cast<uint64_t>(slot) << kGenerationBits) | (generation & kGenerationMask);
  }

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t slot);
  void HeapPush(HeapEntry entry);
  void HeapPop();
  // Pops cancelled entries off the heap head; afterwards the head (if any) is
  // an armed event.
  void SkipCancelledHead();

  TimePoint now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  size_t live_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace torsim

#endif  // SRC_SIM_SIMULATOR_H_
