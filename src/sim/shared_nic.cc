#include "src/sim/shared_nic.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace torsim {
namespace {

// Bits below this threshold count as fully drained (guards float rounding).
constexpr double kEpsilonBits = 1e-6;

}  // namespace

SharedNic::SharedNic(Simulator* sim, double initial_bits_per_sec)
    : sim_(sim), schedule_(initial_bits_per_sec) {}

double SharedNic::SharePerFlow(TimePoint from, TimePoint to, size_t k) const {
  if (k == 0 || to <= from) {
    return 0.0;
  }
  const double total = schedule_.CapacityDuring(from, to);
  return total / static_cast<double>(k);
}

void SharedNic::Advance() {
  const TimePoint now = sim_->now();
  if (now <= last_update_ || flows_.empty()) {
    last_update_ = std::max(last_update_, now);
    return;
  }
  const double share = SharePerFlow(last_update_, now, flows_.size());
  last_update_ = now;
  std::vector<CompleteFn> completed;
  for (auto it = flows_.begin(); it != flows_.end();) {
    it->remaining_bits -= share;
    if (it->remaining_bits <= kEpsilonBits) {
      completed.push_back(std::move(it->on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& fn : completed) {
    fn();
  }
}

void SharedNic::Reschedule() {
  if (pending_event_ != kNoEvent) {
    sim_->Cancel(pending_event_);
    pending_event_ = kNoEvent;
  }
  if (flows_.empty()) {
    return;
  }
  // Under processor sharing every flow drains equally, so the flow with the
  // least remaining bits completes first. Integrate the schedule piecewise to
  // find its completion instant, treating concurrency as fixed (any arrival or
  // earlier completion triggers a fresh Reschedule).
  double min_remaining = flows_.front().remaining_bits;
  for (const auto& flow : flows_) {
    min_remaining = std::min(min_remaining, flow.remaining_bits);
  }
  const size_t k = flows_.size();
  TimePoint t = last_update_;
  double remaining = min_remaining;
  for (;;) {
    const double rate = schedule_.RateAt(t);
    const TimePoint boundary = schedule_.NextChangeAfter(t);
    if (std::isinf(rate)) {
      // Infinite rate: everything in flight completes instantly once the
      // schedule reaches `t`. Completing explicitly avoids a zero-elapsed
      // Advance() that would drain nothing.
      pending_event_ = sim_->ScheduleAt(t, [this] {
        pending_event_ = kNoEvent;
        std::list<Flow> done;
        done.swap(flows_);
        last_update_ = sim_->now();
        for (auto& flow : done) {
          flow.on_complete();
        }
        Reschedule();
      });
      return;
    }
    const double per_flow_rate = rate / static_cast<double>(k);
    if (per_flow_rate > 0.0) {
      const double micros_needed = remaining / per_flow_rate * 1e6;
      if (boundary == torbase::kTimeNever ||
          micros_needed <= static_cast<double>(boundary - t)) {
        const double finish = static_cast<double>(t) + micros_needed;
        if (finish >= static_cast<double>(torbase::kTimeNever)) {
          break;  // effectively never
        }
        // Fire at least 1 us ahead so Advance() always integrates a non-empty
        // interval (sub-microsecond completions round up).
        const TimePoint fire = std::max<TimePoint>(static_cast<TimePoint>(std::ceil(finish)),
                                                   last_update_ + 1);
        pending_event_ = sim_->ScheduleAt(fire, [this] {
          pending_event_ = kNoEvent;
          Advance();
          Reschedule();
        });
        return;
      }
      remaining -= per_flow_rate * static_cast<double>(boundary - t) / 1e6;
    }
    if (boundary == torbase::kTimeNever) {
      break;  // zero rate forever: flows are stuck
    }
    t = boundary;
  }
  // No completion is ever possible: the schedule ends at rate zero. Drop all
  // flows (their bytes can never arrive) and account them.
  dropped_ += flows_.size();
  flows_.clear();
}

void SharedNic::OnScheduleChanged() {
  // Drain up to now() first: edits are restricted to t >= now(), so the
  // integral over [last_update_, now] still uses the rates that were in force.
  Advance();
  Reschedule();
}

void SharedNic::StartTransfer(double bits, CompleteFn on_complete) {
  assert(bits >= 0.0);
  Advance();
  flows_.push_back(Flow{std::max(bits, kEpsilonBits), std::move(on_complete)});
  Reschedule();
}

}  // namespace torsim
