#include "src/sim/bandwidth.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace torsim {

BandwidthSchedule::BandwidthSchedule(double initial_bits_per_sec) {
  assert(initial_bits_per_sec >= 0.0);
  rates_[0] = initial_bits_per_sec;
}

std::map<TimePoint, double>::iterator BandwidthSchedule::SetPointMerged(TimePoint t, double rate) {
  auto it = rates_.lower_bound(t);
  if (it != rates_.end() && it->first == t) {
    it->second = rate;
  } else {
    it = rates_.emplace_hint(it, t, rate);
  }
  // The successor no longer changes anything if it repeats the new rate.
  const auto next = std::next(it);
  if (next != rates_.end() && next->second == rate) {
    rates_.erase(next);
  }
  // Nor does this point if the preceding segment already ran at `rate`.
  if (it != rates_.begin() && std::prev(it)->second == rate) {
    const auto prev = std::prev(it);
    rates_.erase(it);
    return prev;
  }
  return it;
}

void BandwidthSchedule::SetRateFrom(TimePoint from, double bits_per_sec) {
  assert(bits_per_sec >= 0.0);
  if (from == 0) {
    // The time-0 anchor always exists, even when later points repeat its rate.
    rates_[0] = bits_per_sec;
    const auto next = std::next(rates_.begin());
    if (next != rates_.end() && next->second == bits_per_sec) {
      rates_.erase(next);
    }
    return;
  }
  SetPointMerged(from, bits_per_sec);
}

void BandwidthSchedule::LimitDuring(TimePoint from, TimePoint to, double bits_per_sec) {
  assert(from < to);
  const double resume_rate = RateAt(to);
  // Drop change points swallowed by the window, then insert the clamp and the
  // restore point (each merged away when it would not change the function —
  // repeated same-rate clamps from rolling attacks collapse to one segment).
  auto it = rates_.lower_bound(from);
  while (it != rates_.end() && it->first < to) {
    it = rates_.erase(it);
  }
  if (from == 0) {
    rates_[0] = bits_per_sec;
  } else {
    SetPointMerged(from, bits_per_sec);
  }
  SetPointMerged(to, resume_rate);
}

double BandwidthSchedule::RateAt(TimePoint t) const {
  auto it = rates_.upper_bound(t);
  assert(it != rates_.begin());
  --it;
  return it->second;
}

TimePoint BandwidthSchedule::NextChangeAfter(TimePoint t) const {
  auto it = rates_.upper_bound(t);
  if (it == rates_.end()) {
    return torbase::kTimeNever;
  }
  return it->first;
}

TimePoint BandwidthSchedule::FinishTime(TimePoint start, double bits) const {
  assert(bits >= 0.0);
  if (bits == 0.0) {
    return start;
  }
  double remaining = bits;
  TimePoint t = start;
  auto it = rates_.upper_bound(start);
  // `it` points at the first change strictly after start; the active segment
  // begins at prev(it).
  for (;;) {
    const double rate = std::prev(it)->second;
    const TimePoint segment_end = (it == rates_.end()) ? torbase::kTimeNever : it->first;
    if (std::isinf(rate)) {
      return t;
    }
    if (rate > 0.0) {
      // Time (in microseconds) to push `remaining` bits at `rate` bits/sec.
      const double micros_needed = remaining / rate * 1e6;
      if (segment_end == torbase::kTimeNever ||
          micros_needed <= static_cast<double>(segment_end - t)) {
        const double finish = static_cast<double>(t) + micros_needed;
        if (finish >= static_cast<double>(torbase::kTimeNever)) {
          return torbase::kTimeNever;
        }
        // Round up so the transmission is never reported complete early.
        return static_cast<TimePoint>(std::ceil(finish));
      }
      remaining -= rate * static_cast<double>(segment_end - t) / 1e6;
    }
    if (segment_end == torbase::kTimeNever) {
      // Zero rate with no future change: never completes.
      return torbase::kTimeNever;
    }
    t = segment_end;
    ++it;
  }
}

double BandwidthSchedule::CapacityDuring(TimePoint from, TimePoint to) const {
  if (to <= from) {
    return 0.0;
  }
  double bits = 0.0;
  TimePoint t = from;
  auto it = rates_.upper_bound(from);
  while (t < to) {
    const double rate = std::prev(it)->second;
    const TimePoint segment_end =
        (it == rates_.end()) ? to : std::min<TimePoint>(it->first, to);
    if (std::isinf(rate)) {
      return std::numeric_limits<double>::infinity();
    }
    bits += rate * static_cast<double>(segment_end - t) / 1e6;
    t = segment_end;
    if (it != rates_.end() && segment_end == it->first) {
      ++it;
    }
  }
  return bits;
}

}  // namespace torsim
