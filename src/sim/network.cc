#include "src/sim/network.h"

#include <cassert>
#include <utility>

namespace torsim {

Network::Network(Simulator* sim, const NetworkConfig& config) : sim_(sim), config_(config) {
  assert(config.node_count > 0);
  nodes_.reserve(config.node_count);
  for (uint32_t i = 0; i < config.node_count; ++i) {
    nodes_.push_back(std::make_unique<NodeState>(sim, config.default_bandwidth_bps));
  }
  latencies_.assign(static_cast<size_t>(config.node_count) * config.node_count,
                    config.default_latency);
  for (uint32_t i = 0; i < config.node_count; ++i) {
    latencies_[static_cast<size_t>(i) * config.node_count + i] = 0;
  }
}

void Network::SetLatency(NodeId a, NodeId b, Duration latency) {
  latencies_[static_cast<size_t>(a) * node_count() + b] = latency;
}

void Network::SetSymmetricLatency(NodeId a, NodeId b, Duration latency) {
  SetLatency(a, b, latency);
  SetLatency(b, a, latency);
}

Duration Network::latency(NodeId a, NodeId b) const {
  return latencies_[static_cast<size_t>(a) * node_count() + b];
}

void Network::LimitNode(NodeId node, TimePoint from, TimePoint to, double bits_per_sec) {
  assert(node < node_count());
  assert(from >= sim_->now() && "cannot clamp instants the NICs already integrated over");
  NodeState& state = *nodes_[node];
  state.egress.schedule().LimitDuring(from, to, bits_per_sec);
  state.ingress.schedule().LimitDuring(from, to, bits_per_sec);
  state.egress.OnScheduleChanged();
  state.ingress.OnScheduleChanged();
}

void Network::SetNodeRateFrom(NodeId node, TimePoint from, double bits_per_sec) {
  assert(node < node_count());
  assert(from >= sim_->now() && "cannot edit instants the NICs already integrated over");
  NodeState& state = *nodes_[node];
  state.egress.schedule().SetRateFrom(from, bits_per_sec);
  state.ingress.schedule().SetRateFrom(from, bits_per_sec);
  state.egress.OnScheduleChanged();
  state.ingress.OnScheduleChanged();
}

void Network::SetHandler(NodeId node, DeliverFn handler) {
  nodes_[node]->handler = std::move(handler);
}

void Network::Send(NodeId from, NodeId to, std::string kind, Bytes payload) {
  SendShared(from, to, kind, std::make_shared<const Bytes>(std::move(payload)));
}

void Network::Broadcast(NodeId from, const std::string& kind, Bytes payload) {
  auto shared = std::make_shared<const Bytes>(std::move(payload));
  for (NodeId peer = 0; peer < node_count(); ++peer) {
    if (peer != from) {
      SendShared(from, peer, kind, shared);
    }
  }
}

void Network::SendShared(NodeId from, NodeId to, const std::string& kind,
                         std::shared_ptr<const Bytes> payload) {
  assert(from < node_count() && to < node_count());
  const uint64_t wire_bytes = payload->size() + config_.per_message_overhead_bytes;

  NodeState& sender = *nodes_[from];
  sender.counters.messages_sent += 1;
  sender.counters.bytes_sent += wire_bytes;
  bytes_by_kind_[kind] += wire_bytes;

  if (from == to) {
    // Local delivery: skip the NIC model entirely but still go through the
    // event queue so handlers never reenter.
    sim_->ScheduleAfter(0, [this, from, to, payload = std::move(payload)]() {
      NodeState& receiver = *nodes_[to];
      receiver.counters.messages_received += 1;
      if (receiver.handler) {
        receiver.handler(from, *payload);
      }
    });
    return;
  }

  const double bits = static_cast<double>(wire_bytes) * 8.0;
  const Duration hop_latency = latency(from, to);

  // Stage 1: egress. On completion, propagate, then stage 2: ingress, then
  // deliver. The shared payload rides along the chain of callbacks; captures
  // are flattened per stage (rather than nesting the previous closure) so
  // every stage fits its callback's inline buffer.
  sender.egress.StartTransfer(
      bits,
      [this, from, to, bits, wire_bytes, hop_latency, payload = std::move(payload)]() mutable {
        sim_->ScheduleAfter(
            hop_latency,
            [this, from, to, bits, wire_bytes, payload = std::move(payload)]() mutable {
              nodes_[to]->ingress.StartTransfer(
                  bits, [this, from, to, wire_bytes, payload = std::move(payload)]() {
                    NodeState& receiver = *nodes_[to];
                    receiver.counters.messages_received += 1;
                    receiver.counters.bytes_received += wire_bytes;
                    if (receiver.handler) {
                      receiver.handler(from, *payload);
                    }
                  });
            });
      });
}

uint64_t Network::total_bytes_sent() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->counters.bytes_sent;
  }
  return total;
}

uint64_t Network::undeliverable_count() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->egress.dropped_count() + node->ingress.dropped_count();
  }
  return total;
}

void Network::ResetCounters() {
  for (auto& node : nodes_) {
    node->counters = TrafficCounters{};
  }
  bytes_by_kind_.clear();
}

}  // namespace torsim
