#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace torsim {

EventId Simulator::ScheduleAt(TimePoint t, std::function<void()> fn) {
  if (t < now_) {
    t = now_;
  }
  const EventId id = next_id_++;
  queue_.push(Event{t, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::ScheduleAfter(Duration delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::Cancel(EventId id) {
  if (handlers_.count(id) > 0) {
    cancelled_.insert(id);
  }
}

bool Simulator::RunOne() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    auto cancelled_it = cancelled_.find(ev.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      handlers_.erase(ev.id);
      continue;
    }
    auto handler_it = handlers_.find(ev.id);
    assert(handler_it != handlers_.end());
    std::function<void()> fn = std::move(handler_it->second);
    handlers_.erase(handler_it);
    assert(ev.time >= now_ && "event queue went backwards");
    now_ = ev.time;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

size_t Simulator::Run(size_t limit) {
  size_t executed = 0;
  while (executed < limit && RunOne()) {
    ++executed;
  }
  return executed;
}

size_t Simulator::RunUntil(TimePoint deadline) {
  size_t executed = 0;
  while (!queue_.empty()) {
    // Skip cancelled events at the head so top() reflects a live event.
    const Event ev = queue_.top();
    if (cancelled_.count(ev.id) > 0) {
      queue_.pop();
      cancelled_.erase(ev.id);
      handlers_.erase(ev.id);
      continue;
    }
    if (ev.time > deadline) {
      break;
    }
    if (RunOne()) {
      ++executed;
    }
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return executed;
}

}  // namespace torsim
