#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <utility>

namespace torsim {

uint32_t Simulator::AcquireSlot() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  assert(slots_.size() <= (size_t(1) << (64 - kGenerationBits)) &&
         "concurrent event count exceeds the EventId slot-index width");
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulator::ReleaseSlot(uint32_t slot) {
  ++slots_[slot].generation;
  free_slots_.push_back(slot);
}

void Simulator::HeapPush(HeapEntry entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<HeapEntry>());
}

void Simulator::HeapPop() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<HeapEntry>());
  heap_.pop_back();
}

void Simulator::SkipCancelledHead() {
  while (!heap_.empty() && !slots_[heap_.front().slot].armed) {
    const uint32_t slot = heap_.front().slot;
    HeapPop();
    ReleaseSlot(slot);
  }
}

EventId Simulator::ScheduleAt(TimePoint t, SimCallback fn) {
  // Fail at the schedule site, where the culprit is on the stack — firing an
  // empty callback later would be a null vtable call far from the bug.
  assert(static_cast<bool>(fn) && "scheduled an empty callback");
  if (t < now_) {
    t = now_;
  }
  const uint32_t slot = AcquireSlot();
  slots_[slot].fn = std::move(fn);
  slots_[slot].armed = true;
  HeapPush(HeapEntry{t, next_seq_++, slot});
  ++live_;
  return MakeId(slot, slots_[slot].generation);
}

EventId Simulator::ScheduleAfter(Duration delay, SimCallback fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::Cancel(EventId id) {
  const uint32_t slot = static_cast<uint32_t>(id >> kGenerationBits);
  const uint64_t generation = id & kGenerationMask;
  if (slot >= slots_.size() || (slots_[slot].generation & kGenerationMask) != generation ||
      !slots_[slot].armed) {
    return;
  }
  // Free the captured state now; the heap entry stays behind as a tombstone
  // (the slot is reused only after it pops).
  slots_[slot].fn = nullptr;
  slots_[slot].armed = false;
  --live_;
}

bool Simulator::RunOne() {
  SkipCancelledHead();
  if (heap_.empty()) {
    return false;
  }
  const HeapEntry entry = heap_.front();
  const uint32_t slot = entry.slot;
  HeapPop();
  // Move the callback out before invoking: the handler may schedule events,
  // which can grow the slot arena and reuse this slot.
  SimCallback fn = std::move(slots_[slot].fn);
  slots_[slot].fn = nullptr;
  slots_[slot].armed = false;
  ReleaseSlot(slot);
  --live_;
  assert(entry.time >= now_ && "event queue went backwards");
  now_ = entry.time;
  ++executed_;
  fn();
  return true;
}

size_t Simulator::Run(size_t limit) {
  size_t executed = 0;
  while (executed < limit && RunOne()) {
    ++executed;
  }
  return executed;
}

size_t Simulator::RunUntil(TimePoint deadline) {
  size_t executed = 0;
  for (;;) {
    SkipCancelledHead();
    if (heap_.empty() || heap_.front().time > deadline) {
      break;
    }
    if (RunOne()) {
      ++executed;
    }
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return executed;
}

}  // namespace torsim
