// Actor framework: a protocol node bound to a slot in the Network. Concrete
// protocols subclass Actor and implement Start()/OnMessage(); the Harness wires
// a vector of actors to the simulator and network.
#ifndef SRC_SIM_ACTOR_H_
#define SRC_SIM_ACTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/ids.h"
#include "src/common/logging.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace torsim {

class Actor {
 public:
  virtual ~Actor() = default;

  // Called once when the simulation starts.
  virtual void Start() {}
  // Called for every inbound message.
  virtual void OnMessage(NodeId from, const Bytes& payload) = 0;

  NodeId id() const { return id_; }
  torbase::Logger& log() { return log_; }
  const torbase::Logger& log() const { return log_; }

 protected:
  Simulator& sim() { return *sim_; }
  Network& net() { return *net_; }
  TimePoint now() const { return sim_->now(); }
  uint32_t node_count() const { return net_->node_count(); }

  // Sends to a single peer.
  void SendTo(NodeId to, std::string kind, Bytes payload);
  // Sends to every node except this one.
  void SendToAllOthers(const std::string& kind, const Bytes& payload);

  // One-shot timer; returns an id usable with CancelTimer.
  EventId SetTimer(Duration delay, SimCallback fn);
  void CancelTimer(EventId id);

 private:
  friend class Harness;

  Simulator* sim_ = nullptr;
  Network* net_ = nullptr;
  NodeId id_ = torbase::kNoNode;
  torbase::Logger log_;
};

// Owns the simulator, network and actors for one experiment run.
class Harness {
 public:
  explicit Harness(const NetworkConfig& config);

  Simulator& sim() { return sim_; }
  Network& net() { return net_; }

  // Installs `actor` at node index == current actor count. Returns a non-owning
  // pointer. All actors must be added before StartAll().
  Actor* AddActor(std::unique_ptr<Actor> actor);

  template <typename T>
  T* ActorAt(NodeId id) {
    return static_cast<T*>(actors_.at(id).get());
  }
  size_t actor_count() const { return actors_.size(); }

  // Calls Start() on every actor (each via the event queue at time now()).
  void StartAll();

  // Convenience: StartAll() then run the event loop until quiescent or until
  // `deadline`.
  void RunUntil(TimePoint deadline);

 private:
  Simulator sim_;
  Network net_;
  std::vector<std::unique_ptr<Actor>> actors_;
};

}  // namespace torsim

#endif  // SRC_SIM_ACTOR_H_
