#include "src/sim/actor.h"

#include <cassert>
#include <utility>

namespace torsim {

void Actor::SendTo(NodeId to, std::string kind, Bytes payload) {
  net_->Send(id_, to, std::move(kind), std::move(payload));
}

void Actor::SendToAllOthers(const std::string& kind, const Bytes& payload) {
  net_->Broadcast(id_, kind, payload);
}

EventId Actor::SetTimer(Duration delay, SimCallback fn) {
  return sim_->ScheduleAfter(delay, std::move(fn));
}

void Actor::CancelTimer(EventId id) { sim_->Cancel(id); }

Harness::Harness(const NetworkConfig& config) : net_(&sim_, config) {}

Actor* Harness::AddActor(std::unique_ptr<Actor> actor) {
  assert(actors_.size() < net_.node_count() && "more actors than network slots");
  const NodeId id = static_cast<NodeId>(actors_.size());
  actor->sim_ = &sim_;
  actor->net_ = &net_;
  actor->id_ = id;
  Actor* raw = actor.get();
  net_.SetHandler(id, [raw](NodeId from, const Bytes& payload) { raw->OnMessage(from, payload); });
  actors_.push_back(std::move(actor));
  return raw;
}

void Harness::StartAll() {
  for (auto& actor : actors_) {
    Actor* raw = actor.get();
    sim_.ScheduleAfter(0, [raw]() { raw->Start(); });
  }
}

void Harness::RunUntil(TimePoint deadline) {
  StartAll();
  sim_.RunUntil(deadline);
}

}  // namespace torsim
