#include "src/consensus/hotstuff.h"

#include <algorithm>
#include <cassert>

namespace torbft {
namespace {

torcrypto::Digest256 DigestOf(const Bytes& value) { return torcrypto::Digest256::Of(value); }

}  // namespace

HotStuffNode::HotStuffNode(NodeId id, const HotStuffConfig& config,
                           const torcrypto::KeyDirectory* directory, Callbacks callbacks)
    : id_(id),
      config_(config),
      directory_(directory),
      signer_(directory->SignerFor(id)),
      callbacks_(std::move(callbacks)),
      log_("hotstuff" + std::to_string(id)) {
  assert(config_.node_count >= 3 * config_.fault_tolerance + 1 &&
         "partial synchrony requires n >= 3f + 1");
}

void HotStuffNode::Start() { EnterView(1); }

Duration HotStuffNode::TimeoutFor(View view) const {
  const Duration grown =
      config_.view_timeout_base + (view > 0 ? (view - 1) * config_.view_timeout_increment : 0);
  return std::min(grown, config_.view_timeout_cap);
}

void HotStuffNode::EnterView(View view) {
  if (decided_value_.has_value() || view <= current_view_) {
    return;
  }
  current_view_ = view;
  ++views_started_;
  proposed_this_view_ = false;
  sent_precommit_ = false;
  sent_commit_ = false;
  sent_decide_ = false;
  if (view_timer_ != torsim::kNoEvent) {
    callbacks_.cancel_timer(view_timer_);
  }
  view_timer_ = callbacks_.set_timer(TimeoutFor(view), [this, view] { OnViewTimeout(view); });

  // Announce the view to its leader, carrying our highest prepare QC.
  torbase::Writer w;
  w.WriteU8(kNewView);
  w.WriteU64(view);
  EncodeOptionalQc(w, prepare_qc_);
  callbacks_.send(LeaderOf(view), w.TakeBuffer());

  if (LeaderOf(view) == id_) {
    MaybePropose();
  }
}

void HotStuffNode::OnViewTimeout(View view) {
  if (decided_value_.has_value() || view != current_view_) {
    return;
  }
  log_.Info(callbacks_.now(), "view " + std::to_string(view) + " timed out");
  EnterView(view + 1);
}

void HotStuffNode::MaybePropose() {
  if (decided_value_.has_value() || proposed_this_view_ || LeaderOf(current_view_) != id_) {
    return;
  }
  // Views beyond the first need (n - f) NEW_VIEW messages so the leader is
  // guaranteed to know the highest prepare QC any correct node saw.
  std::optional<QuorumCert> high_qc = prepare_qc_;
  if (current_view_ > 1) {
    const auto it = new_views_.find(current_view_);
    if (it == new_views_.end() || it->second.size() < config_.Quorum()) {
      return;
    }
    for (const auto& [node, qc] : it->second) {
      if (qc.has_value() && (!high_qc.has_value() || qc->view > high_qc->view)) {
        high_qc = qc;
      }
    }
  }

  Bytes value;
  if (high_qc.has_value()) {
    // Single-shot safety: once any value has a prepare QC, leaders re-propose
    // that value.
    auto it = values_.find(high_qc->digest);
    if (it == values_.end()) {
      // We never saw the value behind the QC; wait for a leader that did.
      return;
    }
    value = it->second;
  } else {
    auto proposal = callbacks_.get_proposal();
    if (!proposal.has_value()) {
      // Dissemination not ready; the pacemaker will move on if this takes too
      // long (§5.2.1: the leader waits for more PROPOSAL messages).
      return;
    }
    value = std::move(*proposal);
  }

  proposed_this_view_ = true;
  CacheValue(value);
  log_.Info(callbacks_.now(),
            "proposing in view " + std::to_string(current_view_) + " (" +
                std::to_string(value.size()) + " bytes)");
  torbase::Writer w;
  w.WriteU8(kPrepare);
  w.WriteU64(current_view_);
  w.WriteBytes(value);
  EncodeOptionalQc(w, high_qc);
  BroadcastToAll(w.TakeBuffer());
}

void HotStuffNode::BroadcastToAll(const Bytes& message) {
  for (NodeId node = 0; node < config_.node_count; ++node) {
    callbacks_.send(node, message);
  }
}

void HotStuffNode::NotifyProposalReady() { MaybePropose(); }

bool HotStuffNode::OnMessage(NodeId from, const Bytes& payload) {
  torbase::Reader r(payload);
  auto type = r.ReadU8();
  if (!type.ok() || *type < kNewView || *type > kDecide) {
    return false;
  }
  if (decided_value_.has_value() && *type != kNewView) {
    return true;  // already done; stragglers are served on NEW_VIEW below
  }
  switch (static_cast<MessageType>(*type)) {
    case kNewView:
      HandleNewView(from, r);
      break;
    case kPrepare:
      HandlePrepare(from, r);
      break;
    case kPrepareVote:
    case kPreCommitVote:
    case kCommitVote:
      HandleVote(from, static_cast<MessageType>(*type), r);
      break;
    case kPreCommit:
      HandlePreCommit(from, r);
      break;
    case kCommit:
      HandleCommit(from, r);
      break;
    case kDecide:
      HandleDecide(from, r);
      break;
  }
  return true;
}

void HotStuffNode::HandleNewView(NodeId from, torbase::Reader& r) {
  auto view = r.ReadU64();
  auto qc = DecodeOptionalQc(r);
  if (!view.ok() || !qc.ok()) {
    return;
  }
  if (qc->has_value() &&
      !((*qc)->phase == Phase::kPrepare && (*qc)->Verify(*directory_, config_.Quorum()))) {
    return;  // forged or wrong-phase QC
  }
  if (decided_value_.has_value()) {
    // Serve stragglers: re-send the decision.
    auto it = values_.find(locked_qc_.has_value() ? locked_qc_->digest
                                                  : DigestOf(*decided_value_));
    torbase::Writer w;
    w.WriteU8(kDecide);
    w.WriteU64(current_view_);
    w.WriteBytes(*decided_value_);
    EncodeOptionalQc(w, decide_qc_);
    callbacks_.send(from, w.TakeBuffer());
    (void)it;
    return;
  }
  if (qc->has_value() && (!prepare_qc_.has_value() || (*qc)->view > prepare_qc_->view)) {
    prepare_qc_ = *qc;
  }
  new_views_[*view][from] = *qc;
  if (*view == current_view_ && LeaderOf(current_view_) == id_) {
    MaybePropose();
  }
}

void HotStuffNode::HandlePrepare(NodeId from, torbase::Reader& r) {
  auto view = r.ReadU64();
  auto value = r.ReadBytes();
  auto high_qc = DecodeOptionalQc(r);
  if (!view.ok() || !value.ok() || !high_qc.ok()) {
    return;
  }
  if (*view < current_view_ || from != LeaderOf(*view)) {
    return;
  }
  const torcrypto::Digest256 digest = DigestOf(*value);
  if (high_qc->has_value()) {
    const QuorumCert& qc = **high_qc;
    if (qc.phase != Phase::kPrepare || qc.digest != digest ||
        !qc.Verify(*directory_, config_.Quorum())) {
      return;  // leader must re-propose exactly the QC'd value
    }
  } else {
    if (!callbacks_.validate(*value)) {
      log_.Warn(callbacks_.now(), "rejecting invalid proposal in view " + std::to_string(*view));
      return;
    }
  }
  // Safety rule: respect the lock unless shown a newer prepare QC.
  if (locked_qc_.has_value() && locked_qc_->digest != digest) {
    if (!high_qc->has_value() || (*high_qc)->view <= locked_qc_->view) {
      return;
    }
  }
  // Catch up to the leader's view if we lag.
  if (*view > current_view_) {
    EnterView(*view);
  }
  if (voted_.count({static_cast<uint8_t>(Phase::kPrepare), *view}) > 0) {
    return;
  }
  voted_.insert({static_cast<uint8_t>(Phase::kPrepare), *view});
  CacheValue(*value);
  SendVote(Phase::kPrepare, *view, digest, from);
}

void HotStuffNode::SendVote(Phase phase, View view, const torcrypto::Digest256& digest,
                            NodeId leader) {
  const torcrypto::Signature sig = signer_.Sign(VotePayload(phase, view, digest));
  torbase::Writer w;
  switch (phase) {
    case Phase::kPrepare:
      w.WriteU8(kPrepareVote);
      break;
    case Phase::kPreCommit:
      w.WriteU8(kPreCommitVote);
      break;
    case Phase::kCommit:
      w.WriteU8(kCommitVote);
      break;
  }
  w.WriteU64(view);
  w.WriteRaw(digest.span());
  w.WriteU32(sig.signer);
  w.WriteRaw(sig.bytes);
  callbacks_.send(leader, w.TakeBuffer());
}

void HotStuffNode::HandleVote(NodeId from, MessageType type, torbase::Reader& r) {
  auto view = r.ReadU64();
  auto digest_raw = r.ReadRaw(torcrypto::kSha256DigestSize);
  auto signer = r.ReadU32();
  auto sig_raw = r.ReadRaw(64);
  if (!view.ok() || !digest_raw.ok() || !signer.ok() || !sig_raw.ok()) {
    return;
  }
  if (*view != current_view_ || LeaderOf(*view) != id_ || *signer != from) {
    return;
  }
  std::array<uint8_t, torcrypto::kSha256DigestSize> digest_bytes;
  std::copy(digest_raw->begin(), digest_raw->end(), digest_bytes.begin());
  const torcrypto::Digest256 digest{digest_bytes};

  Phase phase;
  switch (type) {
    case kPrepareVote:
      phase = Phase::kPrepare;
      break;
    case kPreCommitVote:
      phase = Phase::kPreCommit;
      break;
    case kCommitVote:
      phase = Phase::kCommit;
      break;
    default:
      return;
  }
  torcrypto::Signature sig;
  sig.signer = *signer;
  std::copy(sig_raw->begin(), sig_raw->end(), sig.bytes.begin());
  if (!directory_->Verify(VotePayload(phase, *view, digest), sig)) {
    return;
  }
  auto& vote_set = votes_[{static_cast<uint8_t>(phase), *view, digest}];
  vote_set.sigs[from] = sig;
  if (vote_set.sigs.size() < config_.Quorum()) {
    return;
  }

  // Assemble the QC and drive the next phase (once per phase per view).
  QuorumCert qc;
  qc.phase = phase;
  qc.view = *view;
  qc.digest = digest;
  for (const auto& [node, s] : vote_set.sigs) {
    qc.signatures.push_back(s);
  }

  torbase::Writer w;
  switch (phase) {
    case Phase::kPrepare: {
      if (sent_precommit_) {
        return;
      }
      sent_precommit_ = true;
      // Two-phase mode: the prepare QC is strong enough to lock on; broadcast
      // COMMIT directly and skip the pre-commit round-trip.
      w.WriteU8(config_.two_phase ? kCommit : kPreCommit);
      w.WriteU64(*view);
      qc.Encode(w);
      BroadcastToAll(w.TakeBuffer());
      break;
    }
    case Phase::kPreCommit: {
      if (sent_commit_) {
        return;
      }
      sent_commit_ = true;
      w.WriteU8(kCommit);
      w.WriteU64(*view);
      qc.Encode(w);
      BroadcastToAll(w.TakeBuffer());
      break;
    }
    case Phase::kCommit: {
      if (sent_decide_) {
        return;
      }
      sent_decide_ = true;
      auto it = values_.find(digest);
      if (it == values_.end()) {
        return;
      }
      w.WriteU8(kDecide);
      w.WriteU64(*view);
      w.WriteBytes(it->second);
      decide_qc_ = qc;
      EncodeOptionalQc(w, decide_qc_);
      BroadcastToAll(w.TakeBuffer());
      break;
    }
  }
}

void HotStuffNode::HandlePreCommit(NodeId from, torbase::Reader& r) {
  auto view = r.ReadU64();
  auto qc = QuorumCert::Decode(r);
  if (!view.ok() || !qc.ok()) {
    return;
  }
  if (from != LeaderOf(*view) || *view < current_view_) {
    return;
  }
  if (qc->phase != Phase::kPrepare || qc->view != *view ||
      !qc->Verify(*directory_, config_.Quorum())) {
    return;
  }
  if (*view > current_view_) {
    EnterView(*view);
  }
  if (!prepare_qc_.has_value() || qc->view > prepare_qc_->view) {
    prepare_qc_ = *qc;
  }
  if (voted_.count({static_cast<uint8_t>(Phase::kPreCommit), *view}) > 0) {
    return;
  }
  voted_.insert({static_cast<uint8_t>(Phase::kPreCommit), *view});
  SendVote(Phase::kPreCommit, *view, qc->digest, from);
}

void HotStuffNode::HandleCommit(NodeId from, torbase::Reader& r) {
  auto view = r.ReadU64();
  auto qc = QuorumCert::Decode(r);
  if (!view.ok() || !qc.ok()) {
    return;
  }
  if (from != LeaderOf(*view) || *view < current_view_) {
    return;
  }
  // 3-phase COMMIT carries a pre-commit QC; 2-phase carries the prepare QC.
  const Phase expected = config_.two_phase ? Phase::kPrepare : Phase::kPreCommit;
  if (qc->phase != expected || qc->view != *view ||
      !qc->Verify(*directory_, config_.Quorum())) {
    return;
  }
  if (config_.two_phase && (!prepare_qc_.has_value() || qc->view > prepare_qc_->view)) {
    prepare_qc_ = *qc;  // the prepare QC arrives via COMMIT in this mode
  }
  if (*view > current_view_) {
    EnterView(*view);
  }
  locked_qc_ = *qc;  // the lock
  if (voted_.count({static_cast<uint8_t>(Phase::kCommit), *view}) > 0) {
    return;
  }
  voted_.insert({static_cast<uint8_t>(Phase::kCommit), *view});
  SendVote(Phase::kCommit, *view, qc->digest, from);
}

void HotStuffNode::HandleDecide(NodeId from, torbase::Reader& r) {
  auto view = r.ReadU64();
  auto value = r.ReadBytes();
  auto qc = DecodeOptionalQc(r);
  (void)from;
  if (!view.ok() || !value.ok() || !qc.ok() || !qc->has_value()) {
    return;
  }
  const QuorumCert& cert = **qc;
  if (cert.phase != Phase::kCommit || !cert.Verify(*directory_, config_.Quorum())) {
    return;
  }
  if (cert.digest != DigestOf(*value)) {
    return;
  }
  decide_qc_ = cert;
  Decide(*value);
}

void HotStuffNode::Decide(const Bytes& value) {
  if (decided_value_.has_value()) {
    return;
  }
  decided_value_ = value;
  if (view_timer_ != torsim::kNoEvent) {
    callbacks_.cancel_timer(view_timer_);
    view_timer_ = torsim::kNoEvent;
  }
  log_.Info(callbacks_.now(), "decided in view " + std::to_string(current_view_));
  callbacks_.on_decide(value);
}

void HotStuffNode::CacheValue(const Bytes& value) { values_[DigestOf(value)] = value; }

}  // namespace torbft
