// Quorum certificates for the view-based BFT engine: a phase/view/digest tuple
// plus signatures from at least (n - f) distinct nodes.
#ifndef SRC_CONSENSUS_QUORUM_CERT_H_
#define SRC_CONSENSUS_QUORUM_CERT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/serialize.h"
#include "src/crypto/digest.h"
#include "src/crypto/signature.h"

namespace torbft {

using View = uint64_t;

enum class Phase : uint8_t {
  kPrepare = 1,
  kPreCommit = 2,
  kCommit = 3,
};

// The byte string a vote signature covers: (phase, view, value digest).
torbase::Bytes VotePayload(Phase phase, View view, const torcrypto::Digest256& digest);

struct QuorumCert {
  Phase phase = Phase::kPrepare;
  View view = 0;
  torcrypto::Digest256 digest;
  std::vector<torcrypto::Signature> signatures;

  bool operator==(const QuorumCert&) const = default;

  void Encode(torbase::Writer& w) const;
  static torbase::Result<QuorumCert> Decode(torbase::Reader& r);

  // True iff the certificate carries >= quorum valid signatures from distinct
  // signers over VotePayload(phase, view, digest).
  bool Verify(const torcrypto::KeyDirectory& directory, uint32_t quorum) const;
};

// Optional-QC encoding helpers (QCs are frequently absent in early views).
void EncodeOptionalQc(torbase::Writer& w, const std::optional<QuorumCert>& qc);
torbase::Result<std::optional<QuorumCert>> DecodeOptionalQc(torbase::Reader& r);

}  // namespace torbft

#endif  // SRC_CONSENSUS_QUORUM_CERT_H_
