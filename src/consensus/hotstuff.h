// Single-shot HotStuff-style Byzantine agreement under partial synchrony
// (paper §3.3, §5.2.2; Yin et al., PODC'19).
//
// The engine decides ONE value among n nodes with f < n/3 Byzantine faults.
// Each view has a round-robin leader that drives three vote phases:
//
//   NEW_VIEW*  ->  PREPARE  ->  PREPARE_VOTE  ->  PRECOMMIT  ->
//   PRECOMMIT_VOTE  ->  COMMIT  ->  COMMIT_VOTE  ->  DECIDE
//
// Safety comes from the standard two-lock rule: nodes lock on a pre-commit
// quorum certificate and only vote for a conflicting value when shown a newer
// prepare QC. Liveness comes from the pacemaker: views time out, NEW_VIEW
// messages carry the highest prepare QC to the next leader, and after GST a
// correct leader whose proposal passes external validity decides in 5 rounds
// (matching the paper's Appendix B round accounting: 4 + 5 = 9 rounds for the
// full directory protocol).
//
// The engine is transport-agnostic: the owner (an Actor, or a test double)
// provides send/broadcast/timer callbacks plus two hooks that tie it to the
// dissemination sub-protocol:
//   * get_proposal() — the leader pulls its input value when its view starts;
//     returning nullopt means "not ready yet, keep waiting" (§5.2.1 step 2).
//   * validate()     — external validity of a proposed value (proof checking).
#ifndef SRC_CONSENSUS_HOTSTUFF_H_
#define SRC_CONSENSUS_HOTSTUFF_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>

#include "src/common/bytes.h"
#include "src/common/ids.h"
#include "src/common/logging.h"
#include "src/common/serialize.h"
#include "src/common/time.h"
#include "src/consensus/quorum_cert.h"
#include "src/crypto/signature.h"
#include "src/sim/simulator.h"

namespace torbft {

using torbase::Bytes;
using torbase::Duration;
using torbase::NodeId;

struct HotStuffConfig {
  uint32_t node_count = 9;
  uint32_t fault_tolerance = 2;  // f; quorum = n - f
  // Pacemaker: view v runs for base + (v-1) * increment, capped.
  Duration view_timeout_base = torbase::Seconds(20);
  Duration view_timeout_increment = torbase::Seconds(5);
  Duration view_timeout_cap = torbase::Seconds(60);

  // Two-phase commit path (Jolteon/Tendermint style, the variant the paper's
  // prototype builds on [17]): the leader turns a prepare QC directly into the
  // COMMIT broadcast, skipping the pre-commit phase. One round-trip faster in
  // the good case (6 message rounds instead of 8); the trade-off is the
  // classic one — after a view change a locked node's QC may take an extra
  // view to resurface, costing liveness (never safety). Default remains the
  // 3-phase textbook protocol.
  bool two_phase = false;

  uint32_t Quorum() const { return node_count - fault_tolerance; }
};

class HotStuffNode {
 public:
  struct Callbacks {
    // Transport. `send` must support to == self (loopback).
    std::function<void(NodeId to, Bytes message)> send;
    // Timers.
    std::function<torsim::EventId(Duration, std::function<void()>)> set_timer;
    std::function<void(torsim::EventId)> cancel_timer;
    // Leader input: the value to propose, or nullopt if not ready yet.
    std::function<std::optional<Bytes>()> get_proposal;
    // External validity predicate for proposed values.
    std::function<bool(const Bytes& value)> validate;
    // Decision sink; called exactly once.
    std::function<void(const Bytes& value)> on_decide;
    // Simulated clock for log lines.
    std::function<torbase::TimePoint()> now;
  };

  HotStuffNode(NodeId id, const HotStuffConfig& config, const torcrypto::KeyDirectory* directory,
               Callbacks callbacks);

  // Enters view 1 and starts the pacemaker.
  void Start();

  // Feeds an inbound engine message. Returns false if the payload was not a
  // well-formed engine message (callers multiplexing several protocols can
  // route on their own tag byte before calling this).
  bool OnMessage(NodeId from, const Bytes& payload);

  // Signals that get_proposal() would now return a value; if this node is the
  // pending leader it proposes immediately (§5.2.1: "the leader waits for more
  // PROPOSAL messages before entering the agreement sub-protocol").
  void NotifyProposalReady();

  bool decided() const { return decided_value_.has_value(); }
  const std::optional<Bytes>& decided_value() const { return decided_value_; }
  View current_view() const { return current_view_; }
  uint64_t views_started() const { return views_started_; }

  NodeId LeaderOf(View view) const { return static_cast<NodeId>(view % config_.node_count); }

  torbase::Logger& log() { return log_; }

 private:
  enum MessageType : uint8_t {
    kNewView = 1,
    kPrepare = 2,
    kPrepareVote = 3,
    kPreCommit = 4,
    kPreCommitVote = 5,
    kCommit = 6,
    kCommitVote = 7,
    kDecide = 8,
  };

  // --- pacemaker ----------------------------------------------------------
  void EnterView(View view);
  void OnViewTimeout(View view);
  Duration TimeoutFor(View view) const;

  // --- leader side --------------------------------------------------------
  void MaybePropose();
  void BroadcastToAll(const Bytes& message);
  void HandleNewView(NodeId from, torbase::Reader& r);
  void HandleVote(NodeId from, MessageType type, torbase::Reader& r);

  // --- replica side -------------------------------------------------------
  void HandlePrepare(NodeId from, torbase::Reader& r);
  void HandlePreCommit(NodeId from, torbase::Reader& r);
  void HandleCommit(NodeId from, torbase::Reader& r);
  void HandleDecide(NodeId from, torbase::Reader& r);
  void SendVote(Phase phase, View view, const torcrypto::Digest256& digest, NodeId leader);
  void Decide(const Bytes& value);

  // Remembers a value by digest so later phases can recover it.
  void CacheValue(const Bytes& value);

  NodeId id_;
  HotStuffConfig config_;
  const torcrypto::KeyDirectory* directory_;
  torcrypto::Signer signer_;
  Callbacks callbacks_;
  torbase::Logger log_;

  View current_view_ = 0;
  uint64_t views_started_ = 0;
  torsim::EventId view_timer_ = torsim::kNoEvent;

  // Highest prepare QC seen (carried in NEW_VIEW; leaders re-propose it).
  std::optional<QuorumCert> prepare_qc_;
  // Lock: set when a pre-commit QC is seen.
  std::optional<QuorumCert> locked_qc_;
  // Commit QC backing the decision (re-served to stragglers).
  std::optional<QuorumCert> decide_qc_;
  std::optional<Bytes> decided_value_;

  // Leader state for the in-flight view.
  bool proposed_this_view_ = false;
  std::map<View, std::map<NodeId, std::optional<QuorumCert>>> new_views_;
  // Votes per (phase) for the current view, keyed by digest.
  struct VoteSet {
    std::map<NodeId, torcrypto::Signature> sigs;
  };
  std::map<std::tuple<uint8_t, View, torcrypto::Digest256>, VoteSet> votes_;
  bool sent_precommit_ = false;
  bool sent_commit_ = false;
  bool sent_decide_ = false;

  // Values seen, by digest (proposals survive view changes).
  std::map<torcrypto::Digest256, Bytes> values_;
  // Prepare digest voted in the current view (each phase votes once).
  std::set<std::tuple<uint8_t, View>> voted_;
};

}  // namespace torbft

#endif  // SRC_CONSENSUS_HOTSTUFF_H_
