#include "src/consensus/quorum_cert.h"

#include <set>

namespace torbft {

torbase::Bytes VotePayload(Phase phase, View view, const torcrypto::Digest256& digest) {
  torbase::Writer w;
  w.WriteString("hotstuff-vote");
  w.WriteU8(static_cast<uint8_t>(phase));
  w.WriteU64(view);
  w.WriteRaw(digest.span());
  return w.TakeBuffer();
}

void QuorumCert::Encode(torbase::Writer& w) const {
  w.WriteU8(static_cast<uint8_t>(phase));
  w.WriteU64(view);
  w.WriteRaw(digest.span());
  w.WriteU32(static_cast<uint32_t>(signatures.size()));
  for (const auto& sig : signatures) {
    w.WriteU32(sig.signer);
    w.WriteRaw(sig.bytes);
  }
}

torbase::Result<QuorumCert> QuorumCert::Decode(torbase::Reader& r) {
  QuorumCert qc;
  auto phase = r.ReadU8();
  auto view = r.ReadU64();
  auto digest_raw = r.ReadRaw(torcrypto::kSha256DigestSize);
  if (!phase.ok() || !view.ok() || !digest_raw.ok()) {
    return torbase::Status::InvalidArgument("truncated quorum cert header");
  }
  if (*phase < 1 || *phase > 3) {
    return torbase::Status::InvalidArgument("bad phase");
  }
  qc.phase = static_cast<Phase>(*phase);
  qc.view = *view;
  std::array<uint8_t, torcrypto::kSha256DigestSize> digest_bytes;
  std::copy(digest_raw->begin(), digest_raw->end(), digest_bytes.begin());
  qc.digest = torcrypto::Digest256(digest_bytes);
  auto count = r.ReadU32();
  if (!count.ok()) {
    return count.status();
  }
  if (*count > 1024) {
    return torbase::Status::InvalidArgument("absurd signature count");
  }
  for (uint32_t i = 0; i < *count; ++i) {
    auto signer = r.ReadU32();
    auto sig_raw = r.ReadRaw(64);
    if (!signer.ok() || !sig_raw.ok()) {
      return torbase::Status::InvalidArgument("truncated signature");
    }
    torcrypto::Signature sig;
    sig.signer = *signer;
    std::copy(sig_raw->begin(), sig_raw->end(), sig.bytes.begin());
    qc.signatures.push_back(sig);
  }
  return qc;
}

bool QuorumCert::Verify(const torcrypto::KeyDirectory& directory, uint32_t quorum) const {
  const torbase::Bytes payload = VotePayload(phase, view, digest);
  std::set<torbase::NodeId> signers;
  for (const auto& sig : signatures) {
    if (!directory.Verify(payload, sig)) {
      return false;
    }
    signers.insert(sig.signer);
  }
  return signers.size() >= quorum;
}

void EncodeOptionalQc(torbase::Writer& w, const std::optional<QuorumCert>& qc) {
  w.WriteBool(qc.has_value());
  if (qc.has_value()) {
    qc->Encode(w);
  }
}

torbase::Result<std::optional<QuorumCert>> DecodeOptionalQc(torbase::Reader& r) {
  auto present = r.ReadBool();
  if (!present.ok()) {
    return present.status();
  }
  if (!*present) {
    return std::optional<QuorumCert>{};
  }
  auto qc = QuorumCert::Decode(r);
  if (!qc.ok()) {
    return qc.status();
  }
  return std::optional<QuorumCert>{*qc};
}

}  // namespace torbft
