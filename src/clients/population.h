// The consensus consumption plane: an aggregate, fluid-flow model of the
// client population fetching the directory. The paper's title claim — five
// minutes of DDoS *brings down Tor* — is a statement about clients: when
// authorities miss consensus rounds the published consensus goes stale, and
// clients can no longer bootstrap or keep their directory view live. This
// module converts the directory protocol's publish timeline into that
// client-visible availability surface.
//
// Model (assumptions documented in EXPERIMENTS.md):
//
//   * Two cohorts. Steady-state clients already hold a consensus and refetch
//     once per directory period; bootstrapping clients arrive fresh and must
//     complete a fetch before they can use the network. Each cohort's fetch
//     arrivals form a Poisson process; with millions of independent clients
//     the superposed process is tracked in its fluid (mean-field) limit, so
//     demand is a deterministic rate, exact up to O(1/sqrt(N)) fluctuations.
//   * A tier of directory caches mirrors the freshest published consensus
//     (after a small mirror delay) and serves all client fetches. Each cache
//     is a torsim::BandwidthSchedule; aggregate demand is integrated against
//     aggregate cache capacity in closed form. The cost of a run is
//     O(caches + documents + schedule segments) — independent of the client
//     count, so 5M clients cost the same as 5.
//   * Clock convention: authorities start a run `vote_lead` before their
//     consensus's valid-after instant (Tor votes at :50 for the :00
//     consensus), so in healthy operation the new document lands exactly as
//     the previous one goes stale. Virtual time t corresponds to unix time
//     valid_after - vote_lead + t.
//
// Served fetches are classified by the freshness (tordir/freshness.h) of the
// best document the caches hold: *fresh* (the healthy path), *stale*
// (discouraged but usable — the client-visible degradation window), or
// *unserved* (no valid document at all, or no cache capacity). Bootstrapping
// clients that cannot be served while no valid document exists accumulate in
// a retry backlog that drains at cache capacity when a document returns —
// the post-outage thundering herd.
#ifndef SRC_CLIENTS_POPULATION_H_
#define SRC_CLIENTS_POPULATION_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/time.h"
#include "src/sim/bandwidth.h"

namespace torclients {

// What to simulate: the client population and the cache tier serving it.
// client_count == 0 disables the plane entirely.
struct ClientLoadSpec {
  // Total clients in the population. 5'000'000 is the paper's "millions of
  // users" order; the model's cost does not depend on this number.
  uint64_t client_count = 0;
  // Fraction of the population bootstrapping (first fetch) during each
  // directory period; the rest are steady-state refetchers.
  double bootstrap_fraction = 0.05;

  // Directory-cache tier mirroring the authorities' freshest consensus.
  uint32_t cache_count = 16;
  double cache_bandwidth_bps = torsim::MegabitsPerSecond(1000);
  // Publish-to-mirror delay: how long after an authority publishes until the
  // cache tier serves the new document.
  torbase::Duration cache_mirror_delay = torbase::Seconds(10);

  // Steady-state refetch cadence == the directory period (hourly consensus).
  torbase::Duration fetch_period = torbase::Hours(1);
  // Authorities start their run this long before the consensus's valid-after
  // (Tor votes at :50 for the :00 consensus). This maps document validity
  // windows, which are unix times, onto virtual run time.
  torbase::Duration vote_lead = torbase::Minutes(10);
  // A consensus is valid for this many directory periods (3 h for hourly
  // consensuses, per tordir/freshness.h).
  uint32_t validity_periods = 3;

  // Availability is evaluated over [0, evaluation_window) — one directory
  // period by default: the hour this run's consensus was supposed to cover.
  torbase::Duration evaluation_window = torbase::Hours(1);

  // Clients and caches start the run holding the previous period's document
  // (published one fetch_period earlier): fresh until vote_lead, valid for
  // validity_periods - 1 further periods. Disable for a cold-start network.
  bool prior_consensus = true;

  // Wire size used for the prior document and for runs that never published
  // (the demand integral needs a transfer size even when the round failed).
  // 0 = use the first real document's size, or 1 MB if there is none.
  double consensus_size_hint_bytes = 0.0;

  // Bootstrap fetches already blocked (queued) when the window opens — the
  // retry backlog carried in from an earlier evaluation window, so chained
  // windows reproduce one long window's thundering herd instead of resetting
  // it. 0 (the default) keeps results bit-identical to the pre-carry model;
  // ClientAvailability::end_backlog_fetches is the matching carry-out.
  double initial_backlog_fetches = 0.0;

  // Fraction of steady-state refetchers that fetch a consensus *diff*
  // (src/tordir/consensus_diff.h) instead of the full document when the
  // served document carries one (PublishedDocument::diff_size_bytes > 0).
  // Bootstrapping clients always need the full document, and documents
  // without a diff (the prior-period document, failed rounds) are served in
  // full to everyone — both conservative choices. 0 disables diff serving
  // and keeps the served-fetch arithmetic bit-identical to the pre-diff
  // model.
  double diff_capable_fraction = 0.0;
};

// One consensus document as the cache tier sees it, in virtual seconds
// (already mapped through the vote_lead clock convention).
struct PublishedDocument {
  // When the earliest authority published it (before the mirror delay).
  double published_seconds = 0.0;
  double fresh_until_seconds = 0.0;
  double valid_until_seconds = 0.0;
  double size_bytes = 0.0;
  // Wire size of the diff from the previously held document to this one;
  // 0 = no diff available, diff-capable clients fetch the full document.
  double diff_size_bytes = 0.0;
};

// One piecewise-constant segment of the availability timeline.
struct AvailabilitySlice {
  enum class State {
    kFresh,  // a fresh document is being served
    kStale,  // only stale (but valid) documents available
    kDown,   // no valid document: fetches fail outright
  };

  double begin_seconds = 0.0;
  double end_seconds = 0.0;
  State state = State::kFresh;
  // Aggregate fetches in this slice by outcome (fluid counts).
  double fresh_fetches = 0.0;
  double stale_fetches = 0.0;
  double unserved_fetches = 0.0;
  // Bytes the cache tier transferred in this slice (diff-capable steady
  // refetchers transfer the served document's diff when it has one).
  double served_bytes = 0.0;
  // Bootstrap retry backlog at the end of the slice.
  double backlog_fetches = 0.0;
};

// The client-visible availability of one run (or of a replayed multi-round
// timeline). All "seconds" are virtual; NaN marks events that never happened.
struct ClientAvailability {
  double total_fetches = 0.0;
  double fresh_fetches = 0.0;
  double stale_fetches = 0.0;
  double unserved_fetches = 0.0;
  // fresh_fetches / total_fetches; NaN when there was no demand.
  double fresh_fraction = std::numeric_limits<double>::quiet_NaN();

  // First instant the cache tier had no fresh document (NaN = fresh
  // throughout the window).
  double time_to_first_stale_seconds = std::numeric_limits<double>::quiet_NaN();

  // Client-visible outage: total time with no *fresh* document — every fetch
  // returns a document clients must treat as out of date and keep retrying
  // against. This is the headline per-run degradation window.
  double outage_seconds = 0.0;
  double outage_start_seconds = std::numeric_limits<double>::quiet_NaN();

  // Hard down: total time with no *valid* document — the paper's full halt,
  // reached three missed rounds after the first broken run.
  double hard_down_seconds = 0.0;
  double hard_down_start_seconds = std::numeric_limits<double>::quiet_NaN();

  // High-water mark of bootstrapping clients blocked waiting for a document.
  double peak_backlog_fetches = 0.0;
  // Bootstrap fetches still blocked when the window closed — the carry-out
  // matching ClientLoadSpec::initial_backlog_fetches (also counted in
  // unserved_fetches: demand this window never served).
  double end_backlog_fetches = 0.0;

  // Total bytes the cache tier transferred over the window (the served-bytes
  // integral; divide by client-hours for the serving-cost headline).
  double served_bytes = 0.0;

  std::vector<AvailabilitySlice> timeline;
};

// Integrates `spec`'s client demand against the cache tier and the published
// documents over [0, window_seconds). `documents` need not be sorted.
// Deterministic: pure closed-form arithmetic, no RNG, no simulator events.
ClientAvailability SimulateClientLoad(const ClientLoadSpec& spec,
                                      std::vector<PublishedDocument> documents,
                                      double window_seconds);

// Maps one round's published consensus — its unix validity window plus the
// publish instant within the round — onto the virtual timeline through the
// vote_lead clock convention (see the header comment). `round_start_seconds`
// is where the round sits on the stitched timeline: h * period for hour h of
// a multi-round replay, 0 for a single run. The single place this arithmetic
// lives; the scenario runner, benches and examples all go through it.
PublishedDocument MapToTimeline(double round_start_seconds, double published_in_round_seconds,
                                uint64_t valid_after, uint64_t fresh_until, uint64_t valid_until,
                                double size_bytes, torbase::Duration vote_lead);

}  // namespace torclients

#endif  // SRC_CLIENTS_POPULATION_H_
