#include "src/clients/population.h"

#include <algorithm>
#include <cmath>

namespace torclients {
namespace {

// A document as the cache tier serves it: availability (publish + mirror
// delay) plus the freshness window, all in virtual seconds.
struct ServedDoc {
  double available = 0.0;
  double fresh_until = 0.0;
  double valid_until = 0.0;
  double size_bytes = 0.0;
  double diff_size_bytes = 0.0;
};

torbase::TimePoint ToMicros(double seconds) {
  return static_cast<torbase::TimePoint>(std::llround(seconds * 1e6));
}

}  // namespace

PublishedDocument MapToTimeline(double round_start_seconds, double published_in_round_seconds,
                                uint64_t valid_after, uint64_t fresh_until, uint64_t valid_until,
                                double size_bytes, torbase::Duration vote_lead) {
  const double lead = torbase::ToSeconds(vote_lead);
  const double base = static_cast<double>(valid_after);
  PublishedDocument doc;
  doc.published_seconds = round_start_seconds + published_in_round_seconds;
  doc.fresh_until_seconds = round_start_seconds + static_cast<double>(fresh_until) - base + lead;
  doc.valid_until_seconds = round_start_seconds + static_cast<double>(valid_until) - base + lead;
  doc.size_bytes = size_bytes;
  return doc;
}

ClientAvailability SimulateClientLoad(const ClientLoadSpec& spec,
                                      std::vector<PublishedDocument> documents,
                                      double window_seconds) {
  ClientAvailability out;
  if (spec.client_count == 0 || window_seconds <= 0.0) {
    return out;
  }

  const double period = torbase::ToSeconds(spec.fetch_period);
  const double lead = torbase::ToSeconds(spec.vote_lead);
  const double mirror = torbase::ToSeconds(spec.cache_mirror_delay);

  std::sort(documents.begin(), documents.end(),
            [](const PublishedDocument& a, const PublishedDocument& b) {
              return a.published_seconds < b.published_seconds;
            });

  double default_size = spec.consensus_size_hint_bytes;
  if (default_size <= 0.0) {
    default_size = documents.empty() ? 1e6 : documents.front().size_bytes;
  }
  if (default_size <= 0.0) {
    default_size = 1e6;
  }

  std::vector<ServedDoc> docs;
  docs.reserve(documents.size() + 1);
  if (spec.prior_consensus) {
    // The previous period's document: already mirrored at t = 0, fresh until
    // this run's consensus was due (the vote_lead clock convention), valid
    // for the remaining validity_periods - 1 periods.
    docs.push_back(ServedDoc{0.0, lead, lead + (spec.validity_periods - 1) * period,
                             default_size, /*diff_size_bytes=*/0.0});
  }
  for (const PublishedDocument& doc : documents) {
    docs.push_back(ServedDoc{doc.published_seconds + mirror, doc.fresh_until_seconds,
                             doc.valid_until_seconds,
                             doc.size_bytes > 0.0 ? doc.size_bytes : default_size,
                             doc.diff_size_bytes});
  }
  std::sort(docs.begin(), docs.end(),
            [](const ServedDoc& a, const ServedDoc& b) { return a.available < b.available; });

  // Availability-state breakpoints: window edges, every instant a document
  // becomes available or crosses a freshness boundary, and every cache-rate
  // change point. Between consecutive breakpoints the state and all rates are
  // constant, so each slice integrates in closed form.
  std::vector<double> cuts = {0.0, window_seconds};
  const auto add_cut = [&cuts, window_seconds](double t) {
    if (t > 0.0 && t < window_seconds) {
      cuts.push_back(t);
    }
  };
  for (const ServedDoc& doc : docs) {
    add_cut(doc.available);
    add_cut(doc.fresh_until);
    add_cut(doc.valid_until);
  }
  torsim::BandwidthSchedule cache(spec.cache_bandwidth_bps);
  for (torbase::TimePoint t = cache.NextChangeAfter(0); t != torbase::kTimeNever;
       t = cache.NextChangeAfter(t)) {
    const double seconds = static_cast<double>(t) / 1e6;
    if (seconds >= window_seconds) {
      break;
    }
    add_cut(seconds);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  // Cohort demand rates: the fluid limit of each cohort's Poisson fetch
  // arrivals (see the header comment).
  const double boot_rate =
      static_cast<double>(spec.client_count) * spec.bootstrap_fraction / period;
  const double steady_rate =
      static_cast<double>(spec.client_count) * (1.0 - spec.bootstrap_fraction) / period;

  // The carry-in herd: bootstraps a previous window left blocked compete for
  // capacity from the first instant, exactly as if the window had never been
  // split there.
  double backlog = std::max(spec.initial_backlog_fetches, 0.0);
  out.peak_backlog_fetches = backlog;
  out.timeline.reserve(cuts.size() - 1);
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double t0 = cuts[i];
    const double t1 = cuts[i + 1];
    const double length = t1 - t0;

    // The state over [t0, t1): boundaries are breakpoints, so evaluating the
    // window edges at t0 classifies the whole slice.
    double fresh_max = -1.0;
    double valid_max = -1.0;
    double fresh_size = 0.0;
    double valid_size = 0.0;
    double fresh_diff = 0.0;
    double valid_diff = 0.0;
    for (const ServedDoc& doc : docs) {
      if (doc.available > t0) {
        break;  // sorted by availability
      }
      if (doc.fresh_until > fresh_max) {
        fresh_max = doc.fresh_until;
        fresh_size = doc.size_bytes;
        fresh_diff = doc.diff_size_bytes;
      }
      if (doc.valid_until > valid_max) {
        valid_max = doc.valid_until;
        valid_size = doc.size_bytes;
        valid_diff = doc.diff_size_bytes;
      }
    }
    AvailabilitySlice::State state = AvailabilitySlice::State::kDown;
    double serve_size = 0.0;
    double serve_diff = 0.0;
    if (fresh_max > t0) {
      state = AvailabilitySlice::State::kFresh;
      serve_size = fresh_size;
      serve_diff = fresh_diff;
    } else if (valid_max > t0) {
      state = AvailabilitySlice::State::kStale;
      serve_size = valid_size;
      serve_diff = valid_diff;
    }

    const double steady = steady_rate * length;
    const double boot = boot_rate * length;

    AvailabilitySlice slice;
    slice.begin_seconds = t0;
    slice.end_seconds = t1;
    slice.state = state;

    if (state == AvailabilitySlice::State::kDown) {
      // No valid document: steady clients keep (and retry against) their
      // expired copy — client-visibly broken; bootstrapping clients cannot
      // join and queue up for retry.
      slice.unserved_fetches = steady;
      out.unserved_fetches += steady;
      backlog += boot;
      out.hard_down_seconds += length;
      if (std::isnan(out.hard_down_start_seconds)) {
        out.hard_down_start_seconds = t0;
      }
    } else {
      // A document exists. Steady refetchers are served first: their demand
      // is paced by the fetch period, and a refetch the caches cannot carry
      // is simply missed until the next period — unmet steady demand counts
      // unserved, exactly as in the down state. Bootstrapping arrivals and
      // the bootstrap retry backlog share the remaining capacity, so the
      // backlog tracks *blocked bootstraps* only. Capacity is the cache
      // tier's aggregate schedule over the slice.
      const double capacity_bits =
          static_cast<double>(spec.cache_count) * cache.CapacityDuring(ToMicros(t0), ToMicros(t1));
      double steady_served;
      double boot_served;
      if (spec.diff_capable_fraction <= 0.0) {
        // The pre-diff arithmetic, bit for bit: with no diff cohort the
        // per-fetch size is uniform and capacity divides once.
        const double capacity_fetches = capacity_bits / (serve_size * 8.0);
        steady_served = std::min(steady, capacity_fetches);
        const double boot_offered = boot + backlog;
        boot_served = std::min(boot_offered, capacity_fetches - steady_served);
        backlog = boot_offered - boot_served;
        slice.served_bytes = (steady_served + boot_served) * serve_size;
      } else {
        // Diff-capable steady refetchers transfer the served document's diff
        // when it has one; everyone else — the rest of the steady cohort and
        // every bootstrap — transfers the full document. Capacity is spent in
        // bytes, steady demand first (same priority as above).
        const double diff_size = serve_diff > 0.0 ? serve_diff : serve_size;
        const double steady_avg = spec.diff_capable_fraction * diff_size +
                                  (1.0 - spec.diff_capable_fraction) * serve_size;
        const double capacity_bytes = capacity_bits / 8.0;
        steady_served = std::min(steady, capacity_bytes / steady_avg);
        const double boot_offered = boot + backlog;
        boot_served =
            std::min(boot_offered, (capacity_bytes - steady_served * steady_avg) / serve_size);
        backlog = boot_offered - boot_served;
        slice.served_bytes = steady_served * steady_avg + boot_served * serve_size;
      }
      out.served_bytes += slice.served_bytes;
      const double served = steady_served + boot_served;
      slice.unserved_fetches = steady - steady_served;
      out.unserved_fetches += steady - steady_served;
      if (state == AvailabilitySlice::State::kFresh) {
        slice.fresh_fetches = served;
        out.fresh_fetches += served;
      } else {
        slice.stale_fetches = served;
        out.stale_fetches += served;
      }
    }
    if (state != AvailabilitySlice::State::kFresh) {
      out.outage_seconds += length;
      if (std::isnan(out.outage_start_seconds)) {
        out.outage_start_seconds = t0;
        out.time_to_first_stale_seconds = t0;
      }
    }

    backlog = std::max(backlog, 0.0);
    out.peak_backlog_fetches = std::max(out.peak_backlog_fetches, backlog);
    slice.backlog_fetches = backlog;
    out.timeline.push_back(slice);
  }

  // Demand still queued at the window edge never got a document in time.
  out.unserved_fetches += backlog;
  out.end_backlog_fetches = backlog;
  // Carried-in backlog is demand this window must answer for, so it counts
  // toward the denominator too (fresh_fraction stays <= 1 under carry).
  out.total_fetches =
      (steady_rate + boot_rate) * window_seconds + std::max(spec.initial_backlog_fetches, 0.0);
  if (out.total_fetches > 0.0) {
    out.fresh_fraction = out.fresh_fetches / out.total_fetches;
  }
  return out;
}

}  // namespace torclients
