// Declarative experiment scenarios. A ScenarioSpec says *what* to run — which
// registered directory protocol, how many relays/authorities, per-authority
// bandwidth, the attack schedule, churn — and the ScenarioRunner (runner.h)
// executes it. Every bench and example describes its workload as a spec
// instead of hand-wiring harnesses, so a new workload is a new spec, not a new
// driver.
#ifndef SRC_SCENARIO_SCENARIO_H_
#define SRC_SCENARIO_SCENARIO_H_

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/attack/ddos.h"
#include "src/attack/schedule.h"
#include "src/clients/population.h"
#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/protocols/byzantine.h"
#include "src/tordir/health_monitor.h"
#include "src/tordir/vote.h"

namespace torscenario {

// An authority leaving or (re)joining the network mid-run, modelled as its
// link dropping to zero / returning to the spec rate — the same fluid
// mechanism as a DDoS, but permanent until the matching recover event. A
// crash overrides attack windows installed up front (the node does not come
// back when a window's clamp expires); only dynamic schedules re-clamping the
// dead node *after* the crash can briefly raise its rate again.
struct ChurnEvent {
  enum class Kind { kCrash, kRecover };

  torbase::NodeId node = 0;
  torbase::TimePoint at = 0;
  Kind kind = Kind::kCrash;
};

struct ScenarioSpec {
  // Free-form label, echoed in reports.
  std::string name;

  // DirectoryProtocol registry key: "current", "synchronous", "icps", or any
  // protocol registered by downstream code.
  std::string protocol = "current";

  uint32_t authority_count = 9;
  size_t relay_count = 7000;
  // Population/vote generation seed. Sweep cells sharing
  // (relay_count, seed, authority_count) reuse the generated workload.
  uint64_t seed = 1;

  // Uniform authority NIC capacity...
  double bandwidth_bps = torattack::kAuthorityLinkBps;
  // ...with per-authority overrides for heterogeneous deployments.
  std::map<torbase::NodeId, double> bandwidth_by_authority;

  torbase::Duration latency = torbase::Millis(50);

  // Attack schedule; null = unattacked. shared_ptr so a sweep can reuse one
  // schedule object across cells (the runner clears its history per run).
  std::shared_ptr<torattack::AttackSchedule> attack;

  std::vector<ChurnEvent> churn;

  // Simulation horizon; the ICPS protocol under heavy starvation may need
  // hours of virtual time.
  torbase::TimePoint horizon = torbase::Hours(4);

  // ICPS knobs (ignored by the lock-step protocols).
  torbase::Duration dissemination_timeout = torbase::Seconds(150);
  bool two_phase_agreement = false;

  // The consumption plane: an aggregate client population fetching this
  // run's consensus through a tier of directory caches (src/clients).
  // client_load.client_count == 0 (the default) disables it, leaving the
  // run's existing metrics untouched.
  torclients::ClientLoadSpec client_load;

  // Feed the run's observable vote/consensus record through
  // tordir::HealthMonitor and surface the alerts in the result. Post-run
  // analysis only; never perturbs the simulation.
  bool monitor_health = true;

  // The previous round's published consensus, when this run is one round of a
  // stitched multi-round timeline (client_availability's 24-hour replay).
  // When set and this run publishes, the result reports the wire size of the
  // consensus diff (src/tordir/consensus_diff.h) from this document to the
  // published one next to the full size, and the client plane's diff-capable
  // cohort is served at that size. Null (the default) = no diff baseline; the
  // run behaves exactly as before. shared_ptr so sweeps share one immutable
  // document across cells.
  std::shared_ptr<const tordir::ConsensusDocument> previous_consensus;

  // Per-authority byzantine behaviors (empty = all honest). Implemented as a
  // faulty-materials wrapper around the spec's protocol
  // (torproto::ByzantineProtocol), so it composes with any registered
  // protocol, any attack schedule, and churn.
  torproto::ByzantineSpec byzantine;

  // Retain a flat copy of the published document in
  // ScenarioResult::consensus_document even when the client plane is off.
  // The timeline engine (src/scenario/timeline.h) needs every round's actual
  // document for diff chains and rejoin accounting without paying for a
  // per-round client plane; interned relay strings make the copy cheap.
  bool retain_consensus = false;
};

// The client-visible availability of one run, distilled from
// torclients::ClientAvailability (the per-slice timeline stays in the
// library; results carry the aggregate surface).
struct ClientAvailabilityResult {
  bool enabled = false;  // the spec carried a client load

  double total_fetches = 0.0;
  double fresh_fetches = 0.0;
  double stale_fetches = 0.0;
  double unserved_fetches = 0.0;
  // Fraction of fetch demand served with a fresh consensus; NaN = no demand.
  double fresh_fraction = std::numeric_limits<double>::quiet_NaN();

  // First instant the cache tier had no fresh document; NaN = never.
  double time_to_first_stale_seconds = std::numeric_limits<double>::quiet_NaN();
  // Client-visible outage: total time with no fresh document available.
  double outage_seconds = 0.0;
  double outage_start_seconds = std::numeric_limits<double>::quiet_NaN();
  // Hard down: total time with no valid document at all (the paper's halt).
  double hard_down_seconds = 0.0;
  double hard_down_start_seconds = std::numeric_limits<double>::quiet_NaN();
  // High-water mark of bootstrapping clients blocked waiting for a document.
  double peak_backlog_fetches = 0.0;

  // Total bytes the cache tier transferred over the evaluation window, and
  // the serving-cost headline: bytes per client-hour under the spec's
  // diff_capable_fraction, and the full-document counterfactual (the same
  // run with diff serving disabled). Equal when no diff cohort exists; NaN
  // when there was no demand.
  double served_bytes = 0.0;
  double bytes_per_client_hour = std::numeric_limits<double>::quiet_NaN();
  double full_doc_bytes_per_client_hour = std::numeric_limits<double>::quiet_NaN();
};

struct ScenarioResult {
  bool succeeded = false;    // >= 1 authority assembled a valid consensus
  uint32_t valid_count = 0;  // authorities with a valid consensus

  // §6.2 network time / absolute finish of the slowest successful authority.
  // NaN when the run failed.
  double latency_seconds = std::numeric_limits<double>::quiet_NaN();
  double finish_time_seconds = std::numeric_limits<double>::quiet_NaN();

  size_t consensus_relays = 0;
  uint64_t total_bytes_sent = 0;
  std::map<std::string, uint64_t> bytes_by_kind;
  // Directory messages the network dropped because their NIC schedules could
  // never carry them (flooded or dead links) — Network::undeliverable_count.
  // Nonzero drops also raise a dropped-messages health alert.
  uint64_t undeliverable_messages = 0;
  // Authorities that ended the run holding a valid consensus, ascending. The
  // timeline engine's rejoin accounting keys off this: a crashed authority
  // absent here kept (only) the older document it held before the crash.
  std::vector<torbase::NodeId> consensus_holders;

  // (time, victims) pairs the attack schedule applied during this run; empty
  // for unattacked scenarios.
  std::vector<torattack::AttackSample> attack_history;

  // --- consumption plane ----------------------------------------------------
  // When the *earliest* authority published a valid consensus — the instant
  // directory caches can start mirroring it. NaN when the run failed.
  double consensus_published_seconds = std::numeric_limits<double>::quiet_NaN();
  // Unix validity window of the published document (all zero when none).
  uint64_t consensus_valid_after = 0;
  uint64_t consensus_fresh_until = 0;
  uint64_t consensus_valid_until = 0;
  // Serialized wire size of the published document; computed only when the
  // client plane is enabled (0 otherwise — serialization is not free).
  uint64_t consensus_size_bytes = 0;
  // Wire size of the consensus diff from spec.previous_consensus to the
  // published document; 0 when either is absent (no diff was computed).
  uint64_t consensus_diff_size_bytes = 0;
  // A flat copy of the published document, retained only when the client
  // plane is enabled — the diff baseline for the *next* round of a stitched
  // multi-round replay. Null when the run failed or the plane was off.
  std::shared_ptr<const tordir::ConsensusDocument> consensus_document;

  // Populated when spec.client_load.client_count > 0.
  ClientAvailabilityResult client_availability;

  // Consensus-health alerts for this run (spec.monitor_health); empty when
  // monitoring is off or the run looked healthy.
  std::vector<tordir::HealthAlert> health_alerts;

  // --- byzantine fault injection -------------------------------------------
  // Number of byzantine authorities the spec injected (behaviors on ids
  // >= authority_count don't count — they never instantiate).
  uint32_t byzantine_count = 0;
  // Injected byzantine authorities implicated by at least one health alert.
  // Requires spec.monitor_health; the fuzzer asserts == byzantine_count.
  uint32_t faults_detected = 0;
  // Latest first-evidence time over the alerts implicating injected
  // authorities — when the monitor had seen *every* injected fault. NaN when
  // nothing was injected or nothing was detected.
  double fault_detection_latency_seconds = std::numeric_limits<double>::quiet_NaN();
};

// Field-by-field equality with NaN == NaN (failed runs carry NaN latencies).
// This is the definition of "bit-identical" that the parallel sweep guarantees
// against serial execution; keep it in sync with ScenarioResult's fields so
// the equivalence test and perf_report keep covering all of them.
// scenario_test's ResultFieldListIsCoveredByBitIdentical pins the field list:
// adding a member to ScenarioResult (or ClientAvailabilityResult) without
// extending this comparison fails that test.
inline bool BitIdentical(const ClientAvailabilityResult& a, const ClientAvailabilityResult& b) {
  const auto same_double = [](double x, double y) {
    return (std::isnan(x) && std::isnan(y)) || x == y;
  };
  return a.enabled == b.enabled && same_double(a.total_fetches, b.total_fetches) &&
         same_double(a.fresh_fetches, b.fresh_fetches) &&
         same_double(a.stale_fetches, b.stale_fetches) &&
         same_double(a.unserved_fetches, b.unserved_fetches) &&
         same_double(a.fresh_fraction, b.fresh_fraction) &&
         same_double(a.time_to_first_stale_seconds, b.time_to_first_stale_seconds) &&
         same_double(a.outage_seconds, b.outage_seconds) &&
         same_double(a.outage_start_seconds, b.outage_start_seconds) &&
         same_double(a.hard_down_seconds, b.hard_down_seconds) &&
         same_double(a.hard_down_start_seconds, b.hard_down_start_seconds) &&
         same_double(a.peak_backlog_fetches, b.peak_backlog_fetches) &&
         same_double(a.served_bytes, b.served_bytes) &&
         same_double(a.bytes_per_client_hour, b.bytes_per_client_hour) &&
         same_double(a.full_doc_bytes_per_client_hour, b.full_doc_bytes_per_client_hour);
}

inline bool BitIdentical(const ScenarioResult& a, const ScenarioResult& b) {
  const auto same_double = [](double x, double y) {
    return (std::isnan(x) && std::isnan(y)) || x == y;
  };
  return a.succeeded == b.succeeded && a.valid_count == b.valid_count &&
         same_double(a.latency_seconds, b.latency_seconds) &&
         same_double(a.finish_time_seconds, b.finish_time_seconds) &&
         a.consensus_relays == b.consensus_relays && a.total_bytes_sent == b.total_bytes_sent &&
         a.bytes_by_kind == b.bytes_by_kind &&
         a.undeliverable_messages == b.undeliverable_messages &&
         a.consensus_holders == b.consensus_holders && a.attack_history == b.attack_history &&
         same_double(a.consensus_published_seconds, b.consensus_published_seconds) &&
         a.consensus_valid_after == b.consensus_valid_after &&
         a.consensus_fresh_until == b.consensus_fresh_until &&
         a.consensus_valid_until == b.consensus_valid_until &&
         a.consensus_size_bytes == b.consensus_size_bytes &&
         a.consensus_diff_size_bytes == b.consensus_diff_size_bytes &&
         (a.consensus_document == b.consensus_document ||
          (a.consensus_document != nullptr && b.consensus_document != nullptr &&
           *a.consensus_document == *b.consensus_document)) &&
         BitIdentical(a.client_availability, b.client_availability) &&
         a.health_alerts == b.health_alerts && a.byzantine_count == b.byzantine_count &&
         a.faults_detected == b.faults_detected &&
         same_double(a.fault_detection_latency_seconds, b.fault_detection_latency_seconds);
}

}  // namespace torscenario

#endif  // SRC_SCENARIO_SCENARIO_H_
