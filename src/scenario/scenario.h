// Declarative experiment scenarios. A ScenarioSpec says *what* to run — which
// registered directory protocol, how many relays/authorities, per-authority
// bandwidth, the attack schedule, churn — and the ScenarioRunner (runner.h)
// executes it. Every bench and example describes its workload as a spec
// instead of hand-wiring harnesses, so a new workload is a new spec, not a new
// driver.
#ifndef SRC_SCENARIO_SCENARIO_H_
#define SRC_SCENARIO_SCENARIO_H_

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/attack/ddos.h"
#include "src/attack/schedule.h"
#include "src/common/ids.h"
#include "src/common/time.h"

namespace torscenario {

// An authority leaving or (re)joining the network mid-run, modelled as its
// link dropping to zero / returning to the spec rate — the same fluid
// mechanism as a DDoS, but permanent until the matching recover event. A
// crash overrides attack windows installed up front (the node does not come
// back when a window's clamp expires); only dynamic schedules re-clamping the
// dead node *after* the crash can briefly raise its rate again.
struct ChurnEvent {
  enum class Kind { kCrash, kRecover };

  torbase::NodeId node = 0;
  torbase::TimePoint at = 0;
  Kind kind = Kind::kCrash;
};

struct ScenarioSpec {
  // Free-form label, echoed in reports.
  std::string name;

  // DirectoryProtocol registry key: "current", "synchronous", "icps", or any
  // protocol registered by downstream code.
  std::string protocol = "current";

  uint32_t authority_count = 9;
  size_t relay_count = 7000;
  // Population/vote generation seed. Sweep cells sharing
  // (relay_count, seed, authority_count) reuse the generated workload.
  uint64_t seed = 1;

  // Uniform authority NIC capacity...
  double bandwidth_bps = torattack::kAuthorityLinkBps;
  // ...with per-authority overrides for heterogeneous deployments.
  std::map<torbase::NodeId, double> bandwidth_by_authority;

  torbase::Duration latency = torbase::Millis(50);

  // Attack schedule; null = unattacked. shared_ptr so a sweep can reuse one
  // schedule object across cells (the runner clears its history per run).
  std::shared_ptr<torattack::AttackSchedule> attack;

  std::vector<ChurnEvent> churn;

  // Simulation horizon; the ICPS protocol under heavy starvation may need
  // hours of virtual time.
  torbase::TimePoint horizon = torbase::Hours(4);

  // ICPS knobs (ignored by the lock-step protocols).
  torbase::Duration dissemination_timeout = torbase::Seconds(150);
  bool two_phase_agreement = false;
};

struct ScenarioResult {
  bool succeeded = false;    // >= 1 authority assembled a valid consensus
  uint32_t valid_count = 0;  // authorities with a valid consensus

  // §6.2 network time / absolute finish of the slowest successful authority.
  // NaN when the run failed.
  double latency_seconds = std::numeric_limits<double>::quiet_NaN();
  double finish_time_seconds = std::numeric_limits<double>::quiet_NaN();

  size_t consensus_relays = 0;
  uint64_t total_bytes_sent = 0;
  std::map<std::string, uint64_t> bytes_by_kind;

  // (time, victims) pairs the attack schedule applied during this run; empty
  // for unattacked scenarios.
  std::vector<torattack::AttackSample> attack_history;
};

// Field-by-field equality with NaN == NaN (failed runs carry NaN latencies).
// This is the definition of "bit-identical" that the parallel sweep guarantees
// against serial execution; keep it in sync with ScenarioResult's fields so
// the equivalence test and perf_report keep covering all of them.
inline bool BitIdentical(const ScenarioResult& a, const ScenarioResult& b) {
  const auto same_double = [](double x, double y) {
    return (std::isnan(x) && std::isnan(y)) || x == y;
  };
  return a.succeeded == b.succeeded && a.valid_count == b.valid_count &&
         same_double(a.latency_seconds, b.latency_seconds) &&
         same_double(a.finish_time_seconds, b.finish_time_seconds) &&
         a.consensus_relays == b.consensus_relays && a.total_bytes_sent == b.total_bytes_sent &&
         a.bytes_by_kind == b.bytes_by_kind && a.attack_history == b.attack_history;
}

}  // namespace torscenario

#endif  // SRC_SCENARIO_SCENARIO_H_
