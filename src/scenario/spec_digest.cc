#include "src/scenario/spec_digest.h"

#include "src/common/serialize.h"
#include "src/tordir/dirspec.h"

namespace torscenario {
namespace {

// Bump when the description layout changes; stale memo entries must never be
// mistaken for current ones across versions of this code.
constexpr std::string_view kDomain = "scenario-spec-digest-v1";

// Field tags make the description self-framing: a field that moves, vanishes
// or changes width can never alias another field's bytes. Tag values are
// frozen — append new fields with new tags, never renumber.
enum class Tag : uint8_t {
  kProtocol = 1,
  kAuthorityCount = 2,
  kRelayCount = 3,
  kSeed = 4,
  kBandwidth = 5,
  kBandwidthByAuthority = 6,
  kLatency = 7,
  kAttack = 8,
  kChurn = 9,
  kHorizon = 10,
  kDisseminationTimeout = 11,
  kTwoPhaseAgreement = 12,
  kClientLoad = 13,
  kMonitorHealth = 14,
  kPreviousConsensus = 15,
  kByzantine = 16,
  kRetainConsensus = 17,
};

void WriteTag(torbase::Writer& writer, Tag tag) {
  writer.WriteU8(static_cast<uint8_t>(tag));
}

void DescribeClientLoad(const torclients::ClientLoadSpec& load, torbase::Writer& writer) {
  writer.WriteU64(load.client_count);
  writer.WriteF64(load.bootstrap_fraction);
  writer.WriteU32(load.cache_count);
  writer.WriteF64(load.cache_bandwidth_bps);
  writer.WriteU64(load.cache_mirror_delay);
  writer.WriteU64(load.fetch_period);
  writer.WriteU64(load.vote_lead);
  writer.WriteU32(load.validity_periods);
  writer.WriteU64(load.evaluation_window);
  writer.WriteBool(load.prior_consensus);
  writer.WriteF64(load.consensus_size_hint_bytes);
  writer.WriteF64(load.initial_backlog_fetches);
  writer.WriteF64(load.diff_capable_fraction);
}

}  // namespace

torcrypto::Digest256 SpecDigest(const ScenarioSpec& spec) {
  torbase::Writer writer;
  writer.WriteString(kDomain);

  // spec.name is intentionally not written: a display label, never simulated
  // (see header). Everything else is, in declaration order.
  WriteTag(writer, Tag::kProtocol);
  writer.WriteString(spec.protocol);
  WriteTag(writer, Tag::kAuthorityCount);
  writer.WriteU32(spec.authority_count);
  WriteTag(writer, Tag::kRelayCount);
  writer.WriteU64(spec.relay_count);
  WriteTag(writer, Tag::kSeed);
  writer.WriteU64(spec.seed);
  WriteTag(writer, Tag::kBandwidth);
  writer.WriteF64(spec.bandwidth_bps);
  WriteTag(writer, Tag::kBandwidthByAuthority);
  writer.WriteU32(static_cast<uint32_t>(spec.bandwidth_by_authority.size()));
  for (const auto& [node, bps] : spec.bandwidth_by_authority) {
    writer.WriteU32(node);
    writer.WriteF64(bps);
  }
  WriteTag(writer, Tag::kLatency);
  writer.WriteU64(spec.latency);

  WriteTag(writer, Tag::kAttack);
  writer.WriteBool(spec.attack != nullptr);
  if (spec.attack != nullptr) {
    spec.attack->Describe(writer);
  }

  WriteTag(writer, Tag::kChurn);
  writer.WriteU32(static_cast<uint32_t>(spec.churn.size()));
  for (const ChurnEvent& event : spec.churn) {
    writer.WriteU32(event.node);
    writer.WriteU64(event.at);
    writer.WriteU8(static_cast<uint8_t>(event.kind));
  }

  WriteTag(writer, Tag::kHorizon);
  writer.WriteU64(spec.horizon);
  WriteTag(writer, Tag::kDisseminationTimeout);
  writer.WriteU64(spec.dissemination_timeout);
  WriteTag(writer, Tag::kTwoPhaseAgreement);
  writer.WriteBool(spec.two_phase_agreement);

  WriteTag(writer, Tag::kClientLoad);
  DescribeClientLoad(spec.client_load, writer);

  WriteTag(writer, Tag::kMonitorHealth);
  writer.WriteBool(spec.monitor_health);

  // The diff baseline enters as the framing digest of its exact signed bytes
  // (what the diff codec pins base documents with): byte-different baselines
  // produce different diff sizes, so they must produce different spec
  // digests. Hashed per call — callers running many cells against one
  // baseline pay a streaming hash of the document, not a serialization.
  WriteTag(writer, Tag::kPreviousConsensus);
  writer.WriteBool(spec.previous_consensus != nullptr);
  if (spec.previous_consensus != nullptr) {
    writer.WriteRaw(tordir::TreeSignedConsensusDigest(*spec.previous_consensus).span());
  }

  WriteTag(writer, Tag::kByzantine);
  spec.byzantine.Describe(writer);

  WriteTag(writer, Tag::kRetainConsensus);
  writer.WriteBool(spec.retain_consensus);

  return torcrypto::Digest256::Of(writer.buffer());
}

}  // namespace torscenario
