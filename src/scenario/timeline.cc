#include "src/scenario/timeline.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <set>
#include <utility>

#include "src/crypto/sha256_tree.h"
#include "src/scenario/runner.h"
#include "src/tordir/consensus_diff.h"
#include "src/tordir/dirspec.h"

namespace torscenario {
namespace {

[[noreturn]] void CalendarError(const std::string& what) {
  std::fprintf(stderr, "timeline: malformed fault calendar: %s\n", what.c_str());
  std::abort();
}

void ValidateTimeline(const TimelineSpec& spec) {
  if (spec.rounds == 0) {
    CalendarError("rounds == 0");
  }
  if (spec.round_period <= 0) {
    CalendarError("round_period <= 0");
  }
  std::vector<uint32_t> attacked(spec.rounds, 0);
  for (const AttackCalendarEntry& entry : spec.attacks) {
    if (entry.first_round > entry.last_round || entry.last_round >= spec.rounds) {
      CalendarError("attack entry rounds out of range");
    }
    if (entry.attack == nullptr) {
      CalendarError("attack entry without a schedule");
    }
    for (uint32_t r = entry.first_round; r <= entry.last_round; ++r) {
      if (++attacked[r] > 1) {
        CalendarError("attack entries overlap at round " + std::to_string(r));
      }
    }
  }
  for (const CrashCalendarEntry& entry : spec.crashes) {
    if (entry.crash_round > entry.recover_round || entry.recover_round >= spec.rounds) {
      CalendarError("crash entry rounds out of range");
    }
    if (entry.crash_round == entry.recover_round && entry.recover_offset < entry.crash_offset) {
      CalendarError("crash entry recovers before it crashes");
    }
    if (entry.crash_offset >= spec.round_period) {
      CalendarError("crash offset outside the round");
    }
    if (entry.node >= spec.base.authority_count) {
      CalendarError("crash entry names a non-authority node");
    }
  }
  for (const ByzantineCalendarEntry& entry : spec.byzantine) {
    if (entry.first_round > entry.last_round || entry.last_round >= spec.rounds) {
      CalendarError("byzantine entry rounds out of range");
    }
  }
  for (const ChurnCalendarEntry& entry : spec.churn) {
    if (entry.round >= spec.rounds) {
      CalendarError("churn entry round out of range");
    }
  }
}

// One published document on the stitched horizon: the serving/diff state the
// stitch pass threads from round to round. Links are append-only and every
// payload is behind a shared const pointer, so snapshots alias them freely.
struct ChainLink {
  uint32_t round = 0;
  std::shared_ptr<const tordir::ConsensusDocument> doc;
  std::shared_ptr<const std::string> text;
  torcrypto::Digest256 digest;
  // Diff from the previously published document; null for the first link.
  std::shared_ptr<const std::string> diff;
};

// Rounds the calendar touches: attack windows, crash-to-recovery spans,
// byzantine windows, and churn crash blips.
std::vector<char> FaultedRounds(const TimelineSpec& spec) {
  std::vector<char> faulted(spec.rounds, 0);
  for (const AttackCalendarEntry& entry : spec.attacks) {
    std::fill(faulted.begin() + entry.first_round, faulted.begin() + entry.last_round + 1, 1);
  }
  for (const ByzantineCalendarEntry& entry : spec.byzantine) {
    std::fill(faulted.begin() + entry.first_round, faulted.begin() + entry.last_round + 1, 1);
  }
  for (const CrashCalendarEntry& entry : spec.crashes) {
    std::fill(faulted.begin() + entry.crash_round, faulted.begin() + entry.recover_round + 1, 1);
  }
  for (const ChurnCalendarEntry& entry : spec.churn) {
    if (entry.event.kind == ChurnEvent::Kind::kCrash) {
      faulted[entry.round] = 1;
    }
  }
  return faulted;
}

// The instant the calendar's last fault cleared (NaN for an empty calendar):
// attack and byzantine windows clear at the end of their last round, crashes
// at their recovery instant, churn crash blips at the end of their round (the
// next round's harness brings the node back up).
double LastFaultClearedSeconds(const TimelineSpec& spec) {
  const double period = torbase::ToSeconds(spec.round_period);
  double cleared = std::numeric_limits<double>::quiet_NaN();
  const auto raise = [&cleared](double t) {
    if (std::isnan(cleared) || t > cleared) {
      cleared = t;
    }
  };
  for (const AttackCalendarEntry& entry : spec.attacks) {
    raise(static_cast<double>(entry.last_round + 1) * period);
  }
  for (const ByzantineCalendarEntry& entry : spec.byzantine) {
    raise(static_cast<double>(entry.last_round + 1) * period);
  }
  for (const CrashCalendarEntry& entry : spec.crashes) {
    raise(static_cast<double>(entry.recover_round) * period +
          torbase::ToSeconds(entry.recover_offset));
  }
  for (const ChurnCalendarEntry& entry : spec.churn) {
    if (entry.event.kind == ChurnEvent::Kind::kCrash) {
      raise(static_cast<double>(entry.round + 1) * period);
    }
  }
  return cleared;
}

// Authorities down at the end of round `r`: calendar crashes spanning the
// boundary, plus churn blips that crashed in-round without recovering.
std::vector<torbase::NodeId> CrashedAtBoundary(const TimelineSpec& spec, uint32_t r) {
  std::set<torbase::NodeId> down;
  for (const CrashCalendarEntry& entry : spec.crashes) {
    if (entry.crash_round <= r && r < entry.recover_round) {
      down.insert(entry.node);
    }
  }
  for (const ChurnCalendarEntry& entry : spec.churn) {
    if (entry.round != r) {
      continue;
    }
    if (entry.event.kind == ChurnEvent::Kind::kCrash) {
      down.insert(entry.event.node);
    } else {
      down.erase(entry.event.node);
    }
  }
  return {down.begin(), down.end()};
}

// One crashed authority coming back: fetch the newest published document as of
// the previous boundary, via the composed diff chain when close enough behind
// (verified byte-identical against the full document, refused on any
// framing-digest mismatch), else in full.
RejoinEvent CatchUp(const TimelineSpec& spec, const std::vector<ChainLink>& chain,
                    std::optional<size_t>& held_index, torbase::NodeId node, uint32_t round) {
  RejoinEvent event;
  event.node = node;
  event.round = round;
  if (chain.empty()) {
    // Nothing was ever published; the authority rejoins as empty-handed as it
    // left (cold when it never held anything).
    event.cold = !held_index.has_value();
    return event;
  }
  const size_t head = chain.size() - 1;
  if (!held_index.has_value()) {
    event.cold = true;
    event.rounds_behind = static_cast<uint32_t>(chain.size());
    event.bytes = chain[head].text->size();
    held_index = head;
    return event;
  }
  if (*held_index >= head) {
    return event;  // already current: nothing to transfer
  }
  const uint32_t behind = static_cast<uint32_t>(head - *held_index);
  event.rounds_behind = behind;
  std::vector<std::string_view> diffs;
  uint64_t diff_bytes = 0;
  if (behind <= spec.max_diff_chain_rounds) {
    diffs.reserve(behind);
    for (size_t i = *held_index + 1; i <= head; ++i) {
      diffs.push_back(*chain[i].diff);
      diff_bytes += chain[i].diff->size();
    }
  }
  // The chain is only worth composing when it undercuts one full fetch —
  // after a round whose vote set shrank (attack, crash) the document can
  // change enough that the diffs cost more than the document itself.
  if (!diffs.empty() && diff_bytes < chain[head].text->size()) {
    const torbase::Result<std::string> patched =
        tordir::ApplyConsensusDiffChain(*chain[*held_index].text, diffs);
    if (patched.ok() && *patched == *chain[head].text) {
      event.via_diff_chain = true;
      event.bytes = diff_bytes;
    } else {
      // A broken chain is refused outright (never applied wrongly); the
      // authority falls back to the full document.
      event.chain_refused = true;
      event.bytes = chain[head].text->size();
    }
  } else {
    event.bytes = chain[head].text->size();
  }
  held_index = head;
  return event;
}

}  // namespace

std::vector<ScenarioSpec> BuildTimelineRoundSpecs(const TimelineSpec& spec) {
  ValidateTimeline(spec);
  std::vector<ScenarioSpec> rounds;
  rounds.reserve(spec.rounds);
  for (uint32_t r = 0; r < spec.rounds; ++r) {
    ScenarioSpec cell = spec.base;
    cell.name = spec.name + "/round" + std::to_string(r);
    cell.horizon = spec.round_period;
    // The stitch pass runs one client plane over the whole horizon and keeps
    // each round's actual document for the chain.
    cell.client_load.client_count = 0;
    cell.retain_consensus = true;
    cell.previous_consensus = nullptr;
    cell.attack = nullptr;
    cell.churn.clear();
    cell.byzantine = torproto::ByzantineSpec{};

    for (const AttackCalendarEntry& entry : spec.attacks) {
      if (entry.first_round <= r && r <= entry.last_round) {
        // Shared across cells on purpose: the serial path clears its history
        // per run and the parallel sweep clones per cell.
        cell.attack = entry.attack;
      }
    }
    for (const ByzantineCalendarEntry& entry : spec.byzantine) {
      if (entry.first_round <= r && r <= entry.last_round) {
        for (const auto& [node, behavior] : entry.spec.behaviors) {
          cell.byzantine.behaviors.insert_or_assign(node, behavior);
        }
        cell.byzantine.mutation_seed = entry.spec.mutation_seed;
        cell.byzantine.bandwidth_multiplier = entry.spec.bandwidth_multiplier;
      }
    }
    // Rounds are independent simulations, so a crash spanning rounds
    // decomposes into per-round churn: crash at its offset in the crash
    // round, down from t = 0 in every round in between, and down from t = 0
    // until the recover offset in the recovery round.
    for (const CrashCalendarEntry& entry : spec.crashes) {
      if (r < entry.crash_round || r > entry.recover_round) {
        continue;
      }
      const torbase::TimePoint crash_at = r == entry.crash_round ? entry.crash_offset : 0;
      cell.churn.push_back(ChurnEvent{entry.node, crash_at, ChurnEvent::Kind::kCrash});
      if (r == entry.recover_round) {
        cell.churn.push_back(
            ChurnEvent{entry.node, entry.recover_offset, ChurnEvent::Kind::kRecover});
      }
    }
    for (const ChurnCalendarEntry& entry : spec.churn) {
      if (entry.round == r) {
        cell.churn.push_back(entry.event);
      }
    }
    rounds.push_back(std::move(cell));
  }
  return rounds;
}

bool BitIdentical(const RoundSnapshot& a, const RoundSnapshot& b) {
  const auto same_text = [](const std::shared_ptr<const std::string>& x,
                            const std::shared_ptr<const std::string>& y) {
    return x == y || (x != nullptr && y != nullptr && *x == *y);
  };
  // The framing digest covers the full signed serialization, so digest
  // equality subsumes document equality.
  return a.round == b.round && a.succeeded == b.succeeded &&
         (a.consensus == nullptr) == (b.consensus == nullptr) &&
         a.consensus_digest == b.consensus_digest && a.consensus_round == b.consensus_round &&
         same_text(a.consensus_text, b.consensus_text) &&
         same_text(a.diff_from_previous, b.diff_from_previous) &&
         a.backlog_fetches == b.backlog_fetches && a.fresh_at_boundary == b.fresh_at_boundary &&
         a.crashed == b.crashed;
}

bool BitIdentical(const TimelineResult& a, const TimelineResult& b) {
  const auto same_double = [](double x, double y) {
    return (std::isnan(x) && std::isnan(y)) || x == y;
  };
  if (a.rounds.size() != b.rounds.size() || a.snapshots.size() != b.snapshots.size()) {
    return false;
  }
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    if (!BitIdentical(a.rounds[i], b.rounds[i])) {
      return false;
    }
  }
  for (size_t i = 0; i < a.snapshots.size(); ++i) {
    if (!BitIdentical(a.snapshots[i], b.snapshots[i])) {
      return false;
    }
  }
  return BitIdentical(a.client_availability, b.client_availability) &&
         a.health_alerts == b.health_alerts && a.rejoins == b.rejoins &&
         a.successful_rounds == b.successful_rounds &&
         a.undeliverable_messages == b.undeliverable_messages &&
         a.byzantine_injected == b.byzantine_injected &&
         a.byzantine_detected == b.byzantine_detected &&
         same_double(a.last_fault_cleared_seconds, b.last_fault_cleared_seconds) &&
         same_double(a.time_to_fresh_seconds, b.time_to_fresh_seconds) &&
         same_double(a.peak_retry_backlog, b.peak_retry_backlog) &&
         a.rejoin_bytes == b.rejoin_bytes;
}

TimelineResult ScenarioRunner::RunTimeline(const TimelineSpec& timeline) {
  return RunTimeline(timeline, SweepOptions{});
}

TimelineResult ScenarioRunner::RunTimeline(const TimelineSpec& timeline,
                                           const SweepOptions& options) {
  const std::vector<ScenarioSpec> specs = BuildTimelineRoundSpecs(timeline);
  TimelineResult out;
  // The fan-out: every round is an independent simulation, so the whole
  // horizon parallelizes under the sweep's bit-identity contract. Everything
  // below is the deterministic serial stitch.
  out.rounds = Sweep(specs, options);

  const double period = torbase::ToSeconds(timeline.round_period);
  const std::vector<char> faulted = FaultedRounds(timeline);
  out.last_fault_cleared_seconds = LastFaultClearedSeconds(timeline);

  // Crash recoveries in deterministic order: rejoin processing for round r
  // targets the chain head as of the end of round r - 1.
  std::vector<CrashCalendarEntry> recoveries = timeline.crashes;
  std::stable_sort(recoveries.begin(), recoveries.end(),
                   [](const CrashCalendarEntry& a, const CrashCalendarEntry& b) {
                     return std::tie(a.recover_round, a.recover_offset, a.node) <
                            std::tie(b.recover_round, b.recover_offset, b.node);
                   });

  std::vector<ChainLink> chain;
  // Per-authority position in the chain: the newest published document each
  // authority holds (nullopt until it first holds one).
  std::vector<std::optional<size_t>> held(timeline.base.authority_count);
  out.snapshots.reserve(timeline.rounds);
  size_t next_recovery = 0;
  // Stitch-side memoization mirroring the runner's: memoized quiet rounds
  // share one ScenarioResult and therefore one document *pointer*, and
  // pointer equality implies byte equality — so the serialization, framing
  // digest and round-to-round diff of a repeated document are computed once
  // and reused. Values are unchanged (the caches only ever substitute results
  // of the identical computation), so TimelineResult stays bit-identical to a
  // memo-off run, where every pointer is distinct and every link recomputes.
  struct {
    const tordir::ConsensusDocument* doc = nullptr;
    std::shared_ptr<const std::string> text;
    torcrypto::Digest256 digest;
  } last_serialized;
  struct {
    const tordir::ConsensusDocument* base = nullptr;
    const tordir::ConsensusDocument* target = nullptr;
    std::shared_ptr<const std::string> diff;
  } last_diff;
  for (uint32_t r = 0; r < timeline.rounds; ++r) {
    const ScenarioResult& round = out.rounds[r];
    // Rejoins first: a recovering authority catches up to the newest document
    // published *before* its round (its own round's consensus is not out yet
    // when it comes back mid-round).
    while (next_recovery < recoveries.size() &&
           recoveries[next_recovery].recover_round == r) {
      const CrashCalendarEntry& entry = recoveries[next_recovery++];
      RejoinEvent event = CatchUp(timeline, chain, held[entry.node], entry.node, r);
      out.rejoin_bytes += event.bytes;
      out.rejoins.push_back(std::move(event));
    }

    std::shared_ptr<const std::string> round_diff;
    if (round.succeeded && round.consensus_document != nullptr) {
      ChainLink link;
      link.round = r;
      link.doc = round.consensus_document;
      if (link.doc.get() == last_serialized.doc) {
        link.text = last_serialized.text;
        link.digest = last_serialized.digest;
      } else {
        link.text =
            std::make_shared<const std::string>(tordir::SerializeConsensus(*link.doc));
        link.digest = torcrypto::Digest256(torcrypto::Sha256TreeDigest(*link.text));
        last_serialized = {link.doc.get(), link.text, link.digest};
      }
      if (!chain.empty()) {
        if (chain.back().doc.get() == last_diff.base && link.doc.get() == last_diff.target) {
          link.diff = last_diff.diff;
        } else {
          tordir::ConsensusDiffOptions diff_options;
          diff_options.base_digest = chain.back().digest;
          diff_options.target_digest = link.digest;
          link.diff = std::make_shared<const std::string>(
              tordir::ComputeConsensusDiff(*chain.back().doc, *link.doc, diff_options));
          last_diff = {chain.back().doc.get(), link.doc.get(), link.diff};
        }
        round_diff = link.diff;
      }
      chain.push_back(std::move(link));
      ++out.successful_rounds;
      // Everyone who ended the round with a valid consensus holds this
      // round's document; crashed or starved authorities keep what they had.
      for (const torbase::NodeId holder : round.consensus_holders) {
        if (holder < held.size()) {
          held[holder] = chain.size() - 1;
        }
      }
    }

    RoundSnapshot snapshot;
    snapshot.round = r;
    snapshot.succeeded = round.succeeded;
    if (!chain.empty()) {
      const ChainLink& head = chain.back();
      snapshot.consensus = head.doc;
      snapshot.consensus_text = head.text;
      snapshot.consensus_digest = head.digest;
      snapshot.consensus_round = head.round;
    }
    snapshot.diff_from_previous = std::move(round_diff);
    snapshot.crashed = CrashedAtBoundary(timeline, r);
    // Without a client plane the boundary state degenerates to "did this
    // round publish"; the plane walk below overwrites both fields.
    snapshot.fresh_at_boundary = round.succeeded;
    out.snapshots.push_back(std::move(snapshot));

    out.undeliverable_messages += round.undeliverable_messages;
    out.byzantine_injected += round.byzantine_count;
    out.byzantine_detected += round.faults_detected;
  }

  // The whole horizon through the consumption plane in ONE call: backlog and
  // serving state evolve continuously across round boundaries, so the
  // post-outage thundering herd builds and drains exactly as in a single
  // window — no per-round resets to hide it.
  const double window = static_cast<double>(timeline.rounds) * period;
  std::vector<double> round_peak_backlog(timeline.rounds, 0.0);
  torclients::ClientLoadSpec load = timeline.base.client_load;
  if (load.client_count > 0) {
    if (load.consensus_size_hint_bytes <= 0.0) {
      load.consensus_size_hint_bytes =
          chain.empty()
              ? static_cast<double>(tordir::EstimateVoteSizeBytes(timeline.base.relay_count))
              : static_cast<double>(chain.front().text->size());
    }
    std::vector<torclients::PublishedDocument> documents;
    documents.reserve(chain.size());
    bool any_diff = false;
    for (const ChainLink& link : chain) {
      const ScenarioResult& round = out.rounds[link.round];
      torclients::PublishedDocument doc = torclients::MapToTimeline(
          static_cast<double>(link.round) * period, round.consensus_published_seconds,
          round.consensus_valid_after, round.consensus_fresh_until, round.consensus_valid_until,
          static_cast<double>(link.text->size()), load.vote_lead);
      if (link.diff != nullptr) {
        doc.diff_size_bytes = static_cast<double>(link.diff->size());
        any_diff = true;
      }
      documents.push_back(doc);
    }
    const bool diff_serving = load.diff_capable_fraction > 0.0 && any_diff;
    std::vector<torclients::PublishedDocument> full_doc_documents;
    if (diff_serving) {
      full_doc_documents = documents;
    }
    const torclients::ClientAvailability availability =
        torclients::SimulateClientLoad(load, std::move(documents), window);

    ClientAvailabilityResult& plane = out.client_availability;
    plane.enabled = true;
    plane.total_fetches = availability.total_fetches;
    plane.fresh_fetches = availability.fresh_fetches;
    plane.stale_fetches = availability.stale_fetches;
    plane.unserved_fetches = availability.unserved_fetches;
    plane.fresh_fraction = availability.fresh_fraction;
    plane.time_to_first_stale_seconds = availability.time_to_first_stale_seconds;
    plane.outage_seconds = availability.outage_seconds;
    plane.outage_start_seconds = availability.outage_start_seconds;
    plane.hard_down_seconds = availability.hard_down_seconds;
    plane.hard_down_start_seconds = availability.hard_down_start_seconds;
    plane.peak_backlog_fetches = availability.peak_backlog_fetches;
    plane.served_bytes = availability.served_bytes;
    const double client_hours = static_cast<double>(load.client_count) * window / 3600.0;
    if (client_hours > 0.0) {
      plane.bytes_per_client_hour = availability.served_bytes / client_hours;
      if (diff_serving) {
        torclients::ClientLoadSpec full_load = load;
        full_load.diff_capable_fraction = 0.0;
        const torclients::ClientAvailability full =
            torclients::SimulateClientLoad(full_load, std::move(full_doc_documents), window);
        plane.full_doc_bytes_per_client_hour = full.served_bytes / client_hours;
      } else {
        plane.full_doc_bytes_per_client_hour = plane.bytes_per_client_hour;
      }
    }
    out.peak_retry_backlog = availability.peak_backlog_fetches;

    // Walk the slice timeline once: per-round backlog peaks for the horizon
    // monitor, and the exact boundary state for each snapshot. Backlog is
    // linear within a slice (all rates constant), so the boundary value
    // interpolates between the neighboring slice ends.
    double slice_start_backlog = std::max(load.initial_backlog_fetches, 0.0);
    uint32_t boundary = 0;
    for (const torclients::AvailabilitySlice& slice : availability.timeline) {
      const uint32_t first_round = std::min(
          timeline.rounds - 1, static_cast<uint32_t>(slice.begin_seconds / period));
      const uint32_t last_round = std::min(
          timeline.rounds - 1, static_cast<uint32_t>(slice.end_seconds / period));
      const double slice_peak = std::max(slice_start_backlog, slice.backlog_fetches);
      for (uint32_t rr = first_round; rr <= last_round; ++rr) {
        round_peak_backlog[rr] = std::max(round_peak_backlog[rr], slice_peak);
      }
      while (boundary < timeline.rounds) {
        const double t = static_cast<double>(boundary + 1) * period;
        if (t <= slice.begin_seconds || t > slice.end_seconds) {
          break;
        }
        const double span = slice.end_seconds - slice.begin_seconds;
        const double fraction = span > 0.0 ? (t - slice.begin_seconds) / span : 1.0;
        out.snapshots[boundary].backlog_fetches =
            slice_start_backlog + fraction * (slice.backlog_fetches - slice_start_backlog);
        out.snapshots[boundary].fresh_at_boundary =
            slice.state == torclients::AvailabilitySlice::State::kFresh;
        ++boundary;
      }
      slice_start_backlog = slice.backlog_fetches;
    }

    // Recovery headline, client-visible flavor: the first instant at or after
    // the last fault cleared when the cache tier was serving fresh again.
    if (!std::isnan(out.last_fault_cleared_seconds)) {
      const double cleared = out.last_fault_cleared_seconds;
      for (const torclients::AvailabilitySlice& slice : availability.timeline) {
        if (slice.state == torclients::AvailabilitySlice::State::kFresh &&
            slice.end_seconds > cleared) {
          out.time_to_fresh_seconds = std::max(slice.begin_seconds - cleared, 0.0);
          break;
        }
      }
    }
  } else if (!std::isnan(out.last_fault_cleared_seconds)) {
    // No client plane: fall back to publish instants — the first consensus
    // published in or after the round the fault cleared in.
    const double cleared = out.last_fault_cleared_seconds;
    const uint32_t cleared_round = std::min(
        timeline.rounds - 1, static_cast<uint32_t>(cleared / period));
    for (const ChainLink& link : chain) {
      if (link.round < cleared_round) {
        continue;
      }
      const double published = static_cast<double>(link.round) * period +
                               out.rounds[link.round].consensus_published_seconds;
      out.time_to_fresh_seconds = std::max(published - cleared, 0.0);
      break;
    }
  }

  // Horizon health: the per-round observations feed the monitor's timeline
  // channel; drops aggregate across rounds.
  tordir::HealthMonitor monitor(timeline.base.authority_count);
  monitor.RecordUndeliverable(out.undeliverable_messages);
  for (uint32_t r = 0; r < timeline.rounds; ++r) {
    tordir::TimelineRoundObservation observation;
    observation.round = r;
    observation.faulted = faulted[r] != 0;
    observation.fresh_at_end = out.snapshots[r].fresh_at_boundary;
    observation.peak_backlog_fraction =
        load.client_count > 0
            ? round_peak_backlog[r] / static_cast<double>(load.client_count)
            : 0.0;
    monitor.RecordTimelineRound(observation);
  }
  out.health_alerts = monitor.Analyze();
  return out;
}

}  // namespace torscenario
