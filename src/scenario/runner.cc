#include "src/scenario/runner.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/common/thread_pool.h"
#include "src/protocols/directory_protocol.h"
#include "src/tordir/dirspec.h"

namespace torscenario {
namespace {

// Key seed of the authority signing directory; fixed across the repo so logs
// and digests are comparable between drivers.
constexpr uint64_t kKeyDirectorySeed = 42;

double NodeRate(const ScenarioSpec& spec, torbase::NodeId node) {
  const auto it = spec.bandwidth_by_authority.find(node);
  return it == spec.bandwidth_by_authority.end() ? spec.bandwidth_bps : it->second;
}

}  // namespace

std::shared_ptr<const ScenarioRunner::Workload> ScenarioRunner::GetWorkload(
    const ScenarioSpec& spec) {
  const WorkloadKey key{spec.relay_count, spec.seed, spec.authority_count};
  {
    std::lock_guard<std::mutex> lock(workloads_mutex_);
    const auto it = workloads_.find(key);
    if (it != workloads_.end()) {
      ++cache_hits_;
      return it->second;
    }
    ++cache_misses_;
  }
  // Generate outside the lock: workload construction is seconds of CPU at
  // large relay counts and depends only on the key. Distinct keys generate
  // concurrently; the same key can only be generated twice if two threads
  // miss on it at once, which the parallel sweep's serial pre-materialization
  // rules out (and which would only waste work, never corrupt: last insert
  // wins and both copies are equivalent).
  tordir::PopulationConfig pop_config;
  pop_config.relay_count = spec.relay_count;
  pop_config.seed = spec.seed;
  auto workload = std::make_shared<Workload>();
  workload->population = tordir::GeneratePopulation(pop_config);
  workload->votes =
      tordir::MakeAllVotes(spec.authority_count, workload->population, pop_config);
  workload->vote_texts.reserve(workload->votes.size());
  for (const tordir::VoteDocument& vote : workload->votes) {
    workload->vote_texts.push_back(tordir::SerializeVote(vote));
  }
  std::lock_guard<std::mutex> lock(workloads_mutex_);
  workloads_[key] = workload;
  return workload;
}

size_t ScenarioRunner::workload_cache_hits() const {
  std::lock_guard<std::mutex> lock(workloads_mutex_);
  return cache_hits_;
}

size_t ScenarioRunner::workload_cache_misses() const {
  std::lock_guard<std::mutex> lock(workloads_mutex_);
  return cache_misses_;
}

size_t ScenarioRunner::workload_cache_size() const {
  std::lock_guard<std::mutex> lock(workloads_mutex_);
  return workloads_.size();
}

void ScenarioRunner::ClearWorkloadCache() {
  std::lock_guard<std::mutex> lock(workloads_mutex_);
  workloads_.clear();
}

ScenarioResult ScenarioRunner::Run(const ScenarioSpec& spec) { return Run(spec, InspectFn()); }

ScenarioResult ScenarioRunner::Run(const ScenarioSpec& spec, const InspectFn& inspect) {
  const std::shared_ptr<const Workload> workload = GetWorkload(spec);
  return RunWithWorkload(spec, *workload, inspect);
}

ScenarioResult ScenarioRunner::RunWithWorkload(const ScenarioSpec& spec, const Workload& workload,
                                               const InspectFn& inspect) const {
  const torproto::DirectoryProtocol& protocol = torproto::GetProtocol(spec.protocol);

  torcrypto::KeyDirectory directory(kKeyDirectorySeed, spec.authority_count);

  torsim::NetworkConfig net_config;
  net_config.node_count = spec.authority_count;
  net_config.default_bandwidth_bps = spec.bandwidth_bps;
  net_config.default_latency = spec.latency;
  torsim::Harness harness(net_config);
  for (const auto& [node, bps] : spec.bandwidth_by_authority) {
    harness.net().SetNodeRateFrom(node, 0, bps);
  }

  torproto::ProtocolRunConfig run_config;
  run_config.authority_count = spec.authority_count;
  run_config.dissemination_timeout = spec.dissemination_timeout;
  run_config.two_phase_agreement = spec.two_phase_agreement;

  std::vector<torsim::Actor*> actors;
  actors.reserve(spec.authority_count);
  for (uint32_t a = 0; a < spec.authority_count; ++a) {
    // Copy the cached vote and its serialized bytes: the actor consumes its
    // document, the workload is shared across runs.
    actors.push_back(harness.AddActor(protocol.MakeAuthority(
        run_config, &directory, a, workload.votes[a], workload.vote_texts[a])));
  }

  torattack::AttackContext attack_context;
  if (spec.attack != nullptr) {
    attack_context.authority_count = spec.authority_count;
    attack_context.horizon = spec.horizon;
    attack_context.current_leader = [&protocol, &actors]() -> std::optional<torbase::NodeId> {
      // The leader of the highest in-flight view across authorities: the view
      // an attacker watching the wire would see being driven right now.
      std::optional<std::pair<uint64_t, torbase::NodeId>> best;
      for (const torsim::Actor* actor : actors) {
        const auto view = protocol.AgreementView(*actor);
        if (view.has_value() && (!best.has_value() || view->first > best->first)) {
          best = view;
        }
      }
      if (!best.has_value()) {
        return std::nullopt;
      }
      return best->second;
    };
    spec.attack->ClearHistory();
    spec.attack->Install(harness, attack_context);
  }

  // Churn is applied after the attack schedule, in time order, so a crash
  // erases any later attack restore points on that node: a crashed authority
  // stays down until its own recover event, not until an attack window ends.
  std::vector<ChurnEvent> churn = spec.churn;
  std::stable_sort(churn.begin(), churn.end(), [](const ChurnEvent& a, const ChurnEvent& b) {
    return a.at != b.at ? a.at < b.at : a.kind < b.kind;
  });
  for (const ChurnEvent& event : churn) {
    if (event.kind == ChurnEvent::Kind::kCrash) {
      harness.net().LimitNode(event.node, event.at, torbase::kTimeNever, 0.0);
    } else {
      harness.net().SetNodeRateFrom(event.node, event.at, NodeRate(spec, event.node));
    }
  }

  harness.StartAll();
  harness.sim().RunUntil(spec.horizon);

  ScenarioResult result;
  result.total_bytes_sent = harness.net().total_bytes_sent();
  result.bytes_by_kind = harness.net().bytes_by_kind();

  double latency = 0.0;
  double finish = 0.0;
  for (const torsim::Actor* actor : actors) {
    const torproto::UnifiedOutcome outcome = protocol.ProbeOutcome(*actor);
    if (!outcome.valid_consensus) {
      continue;
    }
    ++result.valid_count;
    result.consensus_relays = outcome.consensus_relays;
    latency = std::max(latency, outcome.network_time_seconds);
    finish = std::max(finish, outcome.finish_seconds);
  }
  result.succeeded = result.valid_count > 0;
  if (result.succeeded) {
    result.latency_seconds = latency;
    result.finish_time_seconds = finish;
  }
  if (spec.attack != nullptr) {
    result.attack_history = spec.attack->history();
  }

  if (inspect) {
    inspect(harness, actors);
  }
  return result;
}

std::vector<ScenarioResult> ScenarioRunner::Sweep(const std::vector<ScenarioSpec>& specs) {
  std::vector<ScenarioResult> results;
  results.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    results.push_back(Run(spec));
  }
  return results;
}

std::vector<ScenarioResult> ScenarioRunner::Sweep(const std::vector<ScenarioSpec>& specs,
                                                  const SweepOptions& options) {
  // No point spinning up more workers than cells.
  const unsigned threads = std::min<unsigned>(
      options.threads == 0 ? torbase::ThreadPool::DefaultThreads() : options.threads,
      static_cast<unsigned>(specs.size()));
  if (threads <= 1 || specs.size() <= 1) {
    return Sweep(specs);
  }

  // Pre-materialize workloads serially, in spec order: telemetry counts
  // exactly one GetWorkload per cell — the same hits/misses a serial sweep
  // records — and the parallel phase below never touches the cache.
  std::vector<std::shared_ptr<const Workload>> workloads;
  workloads.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    workloads.push_back(GetWorkload(spec));
  }

  // Each cell gets a private copy of the spec with a cloned attack schedule:
  // specs may share one schedule object (cheap for serial sweeps), but
  // Install/history are mutable per-run state that concurrent cells must not
  // share. Results stay bit-identical — a clone runs exactly as the original
  // would after its per-run ClearHistory().
  std::vector<ScenarioSpec> cells(specs.begin(), specs.end());
  for (ScenarioSpec& cell : cells) {
    if (cell.attack != nullptr) {
      cell.attack = cell.attack->Clone();
    }
  }

  std::vector<ScenarioResult> results(cells.size());
  torbase::ThreadPool pool(threads);
  pool.ParallelFor(cells.size(), [this, &cells, &workloads, &results](size_t i) {
    results[i] = RunWithWorkload(cells[i], *workloads[i], InspectFn());
  });
  return results;
}

}  // namespace torscenario
